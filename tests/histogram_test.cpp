// Log-bucketed latency histogram: exactness for small values, bounded
// relative error for percentiles, clamping and weighted recording.
#include "stats/histogram.hpp"

#include <gtest/gtest.h>

namespace pocc::stats {
namespace {

TEST(Histogram, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(50), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 42.0);
  EXPECT_EQ(h.min(), 42);
  EXPECT_EQ(h.max(), 42);
  EXPECT_EQ(h.percentile(0), 42);
  EXPECT_EQ(h.percentile(100), 42);
}

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  for (int i = 0; i < 16; ++i) h.record(i);
  EXPECT_EQ(h.percentile(0), 0);
  EXPECT_EQ(h.percentile(100), 15);
}

TEST(Histogram, MeanIsExact) {
  Histogram h;
  h.record(100);
  h.record(200);
  h.record(300);
  EXPECT_DOUBLE_EQ(h.mean(), 200.0);
}

TEST(Histogram, PercentileWithinRelativeError) {
  Histogram h;
  for (std::int64_t v = 1; v <= 100000; ++v) h.record(v);
  // Log-bucketed: <= ~6.25% relative error.
  EXPECT_NEAR(static_cast<double>(h.percentile(50)), 50000.0, 50000.0 * 0.07);
  EXPECT_NEAR(static_cast<double>(h.percentile(99)), 99000.0, 99000.0 * 0.07);
  EXPECT_NEAR(static_cast<double>(h.percentile(10)), 10000.0, 10000.0 * 0.07);
}

TEST(Histogram, NegativeValuesClampToZero) {
  Histogram h;
  h.record(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0);
}

TEST(Histogram, LargeValues) {
  Histogram h;
  const std::int64_t big = 1LL << 40;
  h.record(big);
  EXPECT_NEAR(static_cast<double>(h.percentile(50)),
              static_cast<double>(big), static_cast<double>(big) * 0.07);
}

TEST(Histogram, RecordNWeightsCount) {
  Histogram h;
  h.record_n(10, 5);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.mean(), 10.0);
}

TEST(Histogram, MergeCombines) {
  Histogram a;
  Histogram b;
  a.record(10);
  b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
  EXPECT_DOUBLE_EQ(a.mean(), 505.0);
}

TEST(Histogram, MergeIntoEmpty) {
  Histogram a;
  Histogram b;
  b.record(7);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 7);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record(5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, PercentilesAreMonotone) {
  Histogram h;
  std::uint64_t x = 88172645463325252ULL;
  for (int i = 0; i < 10000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    h.record(static_cast<std::int64_t>(x % 1'000'000));
  }
  std::int64_t prev = 0;
  for (double p = 0; p <= 100.0; p += 5.0) {
    const std::int64_t v = h.percentile(p);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

}  // namespace
}  // namespace pocc::stats
