// Wire-level chaos layer (net/chaos.hpp): seed determinism of schedules and
// links, the epoch-wrapped projection of FaultPlans onto wall-clock time,
// the per-link FIFO release clamp that keeps injected delay faithful to
// TCP's in-order delivery, and the token-bucket serialization model.
#include "net/chaos.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace pocc::net {
namespace {

TopologyConfig topo(std::uint32_t dcs = 3, std::uint32_t parts = 2) {
  TopologyConfig t;
  t.num_dcs = dcs;
  t.partitions_per_dc = parts;
  return t;
}

constexpr Duration kHorizon = 600'000;

TEST(ChaosScheduleTest, SameSeedSameScheduleAndHash) {
  const ChaosSchedule a(42, topo(), kHorizon, 3 * kHorizon);
  const ChaosSchedule b(42, topo(), kHorizon, 3 * kHorizon);
  EXPECT_EQ(a.plan_hash(), b.plan_hash());
  EXPECT_EQ(a.plan_text(), b.plan_text());
  // The projected fault state must agree everywhere, not just on epoch 0.
  for (DcId src = 0; src < 3; ++src) {
    for (DcId dst = 0; dst < 3; ++dst) {
      if (src == dst) continue;
      for (Timestamp t = 0; t < 3 * kHorizon; t += 7'000) {
        const ChaosLinkState sa = a.state(src, dst, t);
        const ChaosLinkState sb = b.state(src, dst, t);
        ASSERT_EQ(sa.blocked, sb.blocked);
        ASSERT_EQ(sa.extra_delay_us, sb.extra_delay_us);
        ASSERT_EQ(sa.delay_multiplier, sb.delay_multiplier);
      }
    }
  }
}

TEST(ChaosScheduleTest, DifferentSeedsProduceDifferentPlans) {
  const ChaosSchedule a(1, topo(), kHorizon, kHorizon);
  const ChaosSchedule b(2, topo(), kHorizon, kHorizon);
  EXPECT_NE(a.plan_hash(), b.plan_hash());
}

TEST(ChaosScheduleTest, EveryEpochEndsFaultFree) {
  // FaultPlan::random guarantees all windows clear by ~90% of the horizon;
  // the tail of every epoch must therefore be calm — the campaign relies on
  // this to let the cluster re-converge between epochs.
  const ChaosSchedule s(7, topo(), kHorizon, 4 * kHorizon);
  for (std::size_t e = 0; e < 4; ++e) {
    const Timestamp t = static_cast<Timestamp>(e + 1) * kHorizon - 1;
    for (DcId src = 0; src < 3; ++src) {
      for (DcId dst = 0; dst < 3; ++dst) {
        if (src == dst) continue;
        const ChaosLinkState st = s.state(src, dst, t);
        EXPECT_FALSE(st.blocked);
        EXPECT_EQ(st.extra_delay_us, 0);
        EXPECT_EQ(st.delay_multiplier, 1.0);
      }
    }
  }
}

TEST(ChaosScheduleTest, CalmPastThePlannedWindowAndBeforeZero) {
  const ChaosSchedule s(7, topo(), kHorizon, kHorizon);
  EXPECT_FALSE(s.state(0, 1, -5).blocked);
  EXPECT_FALSE(s.state(0, 1, 100 * kHorizon).blocked);
}

TEST(ChaosScheduleTest, CrashWindowsSortedAndWithinTopology) {
  // Long duration so several epochs contribute crash windows.
  const ChaosSchedule s(11, topo(), kHorizon, 20 * kHorizon);
  Timestamp prev = 0;
  for (const ChaosSchedule::CrashWindow& w : s.crashes()) {
    EXPECT_GE(w.at, prev);
    prev = w.at;
    EXPECT_LT(w.node.dc, 3u);
    EXPECT_LT(w.node.part, 2u);
    EXPECT_GT(w.duration, 0);
  }
}

TEST(ChaosLinkTest, VerdictsAreSeedDeterministic) {
  ChaosProfile p;
  p.base_delay_us = 500;
  p.jitter_mean_us = 300;
  p.loss_p = 0.05;
  p.rto_penalty_us = 10'000;
  p.reorder_window_us = 2'000;
  p.dup_p = 0.1;
  p.reset_p = 0.01;
  ChaosLink a(99, p);
  ChaosLink b(99, p);
  for (int i = 0; i < 500; ++i) {
    const Timestamp now = 1'000 * i;
    const ChaosVerdict va = a.on_frame(1'000, now);
    const ChaosVerdict vb = b.on_frame(1'000, now);
    ASSERT_EQ(va.delay_us, vb.delay_us);
    ASSERT_EQ(va.duplicate, vb.duplicate);
    ASSERT_EQ(va.reset, vb.reset);
  }
}

TEST(ChaosLinkTest, ReleaseTimesAreFifoMonotone) {
  // Jitter, loss stalls and reordering hand every frame a different delay,
  // but a lucky frame must never overtake an unlucky predecessor: TCP
  // delivers in order, so release times must be monotone.
  ChaosProfile p;
  p.jitter_mean_us = 2'000;
  p.loss_p = 0.2;
  p.rto_penalty_us = 50'000;
  p.reorder_window_us = 10'000;
  ChaosLink link(7, p);
  Timestamp prev_release = 0;
  for (int i = 0; i < 1'000; ++i) {
    const Timestamp now = 100 * i;
    const ChaosVerdict v = link.on_frame(5'000, now);
    const Timestamp release = now + v.delay_us;
    ASSERT_GE(release, prev_release);
    prev_release = release;
  }
}

TEST(ChaosLinkTest, TokenBucketBuildsQueueingDelay) {
  // 1 MB/s link, three 100 KB frames injected at the same instant: each
  // must queue behind the previous frame's ~100 ms serialization time.
  ChaosProfile p;
  p.bandwidth_bytes_per_s = 1e6;
  ChaosLink link(1, p);
  const Timestamp d1 = link.on_frame(100'000, 0).delay_us;
  const Timestamp d2 = link.on_frame(100'000, 0).delay_us;
  const Timestamp d3 = link.on_frame(100'000, 0).delay_us;
  EXPECT_NEAR(static_cast<double>(d1), 100'000.0, 1'000.0);
  EXPECT_NEAR(static_cast<double>(d2), 200'000.0, 1'000.0);
  EXPECT_NEAR(static_cast<double>(d3), 300'000.0, 1'000.0);
  // The bucket drains: a frame arriving after the backlog cleared pays
  // only its own serialization time again.
  const Timestamp d4 = link.on_frame(100'000, 1'000'000).delay_us;
  EXPECT_NEAR(static_cast<double>(d4), 100'000.0, 1'000.0);
}

TEST(ChaosLinkTest, DupAndResetFollowProfileProbabilities) {
  ChaosProfile p;
  p.dup_p = 1.0;
  ChaosLink dup_link(3, p);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(dup_link.on_frame(100, i).duplicate);
  }
  ChaosProfile q;
  q.reset_p = 1.0;
  ChaosLink reset_link(3, q);
  EXPECT_TRUE(reset_link.on_frame(100, 0).reset);
  ChaosLink calm(3, ChaosProfile{});
  const ChaosVerdict v = calm.on_frame(100, 0);
  EXPECT_FALSE(v.duplicate);
  EXPECT_FALSE(v.reset);
  EXPECT_EQ(v.delay_us, 0);
}

TEST(ChaosLinkTest, BlockedTracksScheduleWindowsUnderClockOffset) {
  // Find a partition window in some seeded plan, then check the link —
  // bound with a non-zero monotonic-clock origin — reports blocked exactly
  // inside the translated window.
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    auto sched = std::make_shared<ChaosSchedule>(seed, topo(), kHorizon,
                                                 kHorizon);
    for (DcId src = 0; src < 3; ++src) {
      for (DcId dst = 0; dst < 3; ++dst) {
        if (src == dst) continue;
        for (Timestamp t = 0; t < kHorizon; t += 1'000) {
          if (!sched->state(src, dst, t).blocked) continue;
          const Timestamp start = 5'000'000;  // link armed at clock=5s
          ChaosLink link(seed, ChaosProfile{});
          link.bind_schedule(sched, src, dst, start);
          EXPECT_TRUE(link.blocked(start + t));
          EXPECT_FALSE(link.blocked(start + kHorizon - 1));
          EXPECT_FALSE(link.blocked(start - 1));
          return;  // one window is enough
        }
      }
    }
  }
  FAIL() << "no seed in [1,32] produced a partition window";
}

TEST(ChaosLinkTest, DegradeWindowScalesDelay) {
  // A link with deterministic base delay under a kLinkDegrade window must
  // produce a strictly larger verdict inside the window than outside it.
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    auto sched = std::make_shared<ChaosSchedule>(seed, topo(), kHorizon,
                                                 kHorizon);
    for (DcId src = 0; src < 3; ++src) {
      for (DcId dst = 0; dst < 3; ++dst) {
        if (src == dst) continue;
        for (Timestamp t = 0; t < kHorizon; t += 1'000) {
          const ChaosLinkState st = sched->state(src, dst, t);
          if (st.extra_delay_us == 0 && st.delay_multiplier == 1.0) continue;
          ChaosProfile p;
          p.base_delay_us = 1'000;
          ChaosLink link(seed, p);
          link.bind_schedule(sched, src, dst, 0);
          // Calm tail of the horizon: base delay only.
          ChaosLink calm(seed, p);
          calm.bind_schedule(sched, src, dst, 0);
          const Timestamp degraded = link.on_frame(100, t).delay_us;
          const Timestamp baseline = calm.on_frame(100, kHorizon - 1).delay_us;
          EXPECT_GT(degraded, baseline);
          return;
        }
      }
    }
  }
  FAIL() << "no seed in [1,32] produced a degrade window";
}

}  // namespace
}  // namespace pocc::net
