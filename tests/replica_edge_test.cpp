// Edge cases of the shared replica machinery that the protocol-level suites
// do not isolate: idempotent replication, tie handling, degenerate
// transactions, GC corner cases, parking-lot interactions — plus
// injector-driven asymmetric-partition and crash/restart interleavings at
// the engine boundary (fault layer, src/fault/).
#include <gtest/gtest.h>

#include "cluster/sim_cluster.hpp"
#include "cure/cure_server.hpp"
#include "fault/fault_injector.hpp"
#include "pocc/pocc_server.hpp"
#include "store/key_space.hpp"
#include "test_util.hpp"

namespace pocc {
namespace {

KeyId K(const std::string& key) { return store::intern_key(key); }

using testutil::MockContext;
using testutil::test_topology;

class ReplicaEdgeTest : public ::testing::Test {
 protected:
  ReplicaEdgeTest()
      : server_(NodeId{0, 1}, test_topology(), protocol_, service_, ctx_) {
    ctx_.now = 1'000'000;
  }

  store::Version remote_version(const std::string& key, Timestamp ut, DcId sr,
                                VersionVector dv = VersionVector(3)) {
    store::Version v;
    v.key = K(key);
    v.value = "v@" + std::to_string(ut);
    v.sr = sr;
    v.ut = ut;
    v.dv = std::move(dv);
    return v;
  }

  MockContext ctx_;
  ProtocolConfig protocol_;
  ServiceConfig service_;
  PoccServer server_;
};

TEST_F(ReplicaEdgeTest, DuplicateReplicationIsIdempotent) {
  const auto v = remote_version("1:a", 500'000, 1);
  server_.handle_message(NodeId{1, 1}, proto::Replicate{v});
  server_.handle_message(NodeId{1, 1}, proto::Replicate{v});  // redelivery
  EXPECT_EQ(server_.partition_store().find(K("1:a"))->size(), 1u);
  EXPECT_EQ(server_.version_vector()[1], 500'000);
}

TEST_F(ReplicaEdgeTest, HeartbeatNeverRegressesVersionVector) {
  server_.handle_message(NodeId{1, 1}, proto::Heartbeat{1, 500'000});
  server_.handle_message(NodeId{1, 1}, proto::Heartbeat{1, 500'000});
  EXPECT_EQ(server_.version_vector()[1], 500'000);
}

TEST_F(ReplicaEdgeTest, ConcurrentTimestampTieServesLowestSr) {
  // Three DCs write the same key with the same timestamp: LWW must be total.
  for (DcId sr : {2u, 1u}) {
    server_.handle_message(NodeId{sr, 1},
                           proto::Replicate{remote_version("1:k", 700'000,
                                                           sr)});
  }
  proto::GetReq req;
  req.client = 1;
  req.key = K("1:k");
  req.rdv = VersionVector(3);
  server_.handle_message(NodeId{0, 1}, req);
  const auto replies = ctx_.replies_of<proto::GetReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].second.item.sr, 1u);
}

TEST_F(ReplicaEdgeTest, RoTxWithDuplicateKeysReturnsEachOccurrence) {
  proto::PutReq put;
  put.client = 1;
  put.key = K("1:dup");
  put.value = "x";
  put.dv = VersionVector(3);
  server_.handle_message(NodeId{0, 1}, put);
  proto::RoTxReq tx;
  tx.client = 2;
  tx.keys = {K("1:dup"), K("1:dup")};
  tx.rdv = VersionVector(3);
  server_.handle_message(NodeId{0, 1}, tx);
  const auto replies = ctx_.replies_of<proto::RoTxReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].second.items.size(), 2u);
  EXPECT_EQ(replies[0].second.items[0].ut, replies[0].second.items[1].ut);
}

TEST_F(ReplicaEdgeTest, RoTxEntirelyOnRemotePartition) {
  proto::RoTxReq tx;
  tx.client = 3;
  tx.keys = {K("0:a"), K("0:b")};  // both on partition 0; coordinator is partition 1
  tx.rdv = VersionVector(3);
  server_.handle_message(NodeId{0, 1}, tx);
  const auto slices = ctx_.sent_of<proto::SliceReq>();
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].second.keys.size(), 2u);
  // The coordinator holds the pending transaction until the slice returns.
  EXPECT_TRUE(ctx_.replies_of<proto::RoTxReply>().empty());
}

TEST_F(ReplicaEdgeTest, StaleSliceReplyForUnknownTxIsDropped) {
  proto::SliceReply stale;
  stale.tx_id = 0xdeadbeef;
  server_.handle_message(NodeId{0, 0}, stale);  // must not crash or reply
  EXPECT_TRUE(ctx_.replies.empty());
}

TEST_F(ReplicaEdgeTest, GcVectorOnEmptyStoreIsHarmless) {
  server_.handle_message(NodeId{0, 0},
                         proto::GcVector{VersionVector{1, 1, 1}});
  EXPECT_EQ(server_.partition_store().stats().gc_removed, 0u);
}

TEST_F(ReplicaEdgeTest, GcAggregatorWaitsForAllPartitions) {
  MockContext agg_ctx;
  agg_ctx.now = 1'000'000;
  PoccServer aggregator(NodeId{0, 0}, test_topology(), protocol_, service_,
                        agg_ctx);
  // Only its own report: no broadcast yet (2 partitions in the topology).
  aggregator.on_timer(server::kTimerGc);
  EXPECT_TRUE(agg_ctx.sent_of<proto::GcVector>().empty());
  aggregator.handle_message(
      NodeId{0, 1}, proto::GcReport{NodeId{0, 1}, VersionVector(3)});
  EXPECT_EQ(agg_ctx.sent_of<proto::GcVector>().size(), 1u);
}

TEST_F(ReplicaEdgeTest, ParkedGetCountsExactlyOncePerOperation) {
  server_.handle_message(
      NodeId{0, 1},
      [&] {
        proto::GetReq r;
        r.client = 1;
        r.key = K("1:x");
        r.rdv = VersionVector{0, 900'000, 0};
        return r;
      }());
  EXPECT_EQ(server_.blocking_stats().operations, 0u);  // not served yet
  ctx_.now += 1'000;
  server_.handle_message(NodeId{1, 1}, proto::Heartbeat{1, 900'000});
  EXPECT_EQ(server_.blocking_stats().operations, 1u);
  EXPECT_EQ(server_.blocking_stats().blocked, 1u);
}

TEST_F(ReplicaEdgeTest, MultipleParkedRequestsResumeFifoOnOneEvent) {
  for (ClientId c = 1; c <= 3; ++c) {
    proto::GetReq r;
    r.client = c;
    r.key = K("1:x");
    r.rdv = VersionVector{0, 800'000, 0};
    server_.handle_message(NodeId{0, 1}, r);
  }
  EXPECT_EQ(server_.parked_requests(), 3u);
  server_.handle_message(NodeId{1, 1}, proto::Heartbeat{1, 800'000});
  const auto replies = ctx_.replies_of<proto::GetReply>();
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_EQ(replies[0].first, 1u);
  EXPECT_EQ(replies[1].first, 2u);
  EXPECT_EQ(replies[2].first, 3u);
}

TEST_F(ReplicaEdgeTest, ResetStatsClearsBlockingAndStaleness) {
  proto::PutReq put;
  put.client = 1;
  put.key = K("1:a");
  put.value = "v";
  put.dv = VersionVector(3);
  server_.handle_message(NodeId{0, 1}, put);
  EXPECT_GT(server_.blocking_stats().operations, 0u);
  server_.reset_stats();
  EXPECT_EQ(server_.blocking_stats().operations, 0u);
  EXPECT_EQ(server_.staleness_stats().reads, 0u);
}

TEST_F(ReplicaEdgeTest, CureGetOnEmptyChainCountsNoStaleness) {
  MockContext cure_ctx;
  cure_ctx.now = 1'000'000;
  CureServer cure(NodeId{0, 0}, test_topology(), protocol_, service_,
                  cure_ctx);
  proto::GetReq req;
  req.client = 1;
  req.key = K("0:nothing");
  req.rdv = VersionVector(3);
  cure.handle_message(NodeId{0, 0}, req);
  EXPECT_EQ(cure.staleness_stats().reads, 1u);
  EXPECT_EQ(cure.staleness_stats().old_reads, 0u);
  EXPECT_EQ(cure.staleness_stats().unmerged_reads, 0u);
}

// ------------------------------------------------------------------------
// Injector-driven interleavings at the engine boundary: the cluster host
// drives real engines through crash/restart and one-directional partitions,
// asserting the engine-visible consequences (parked requests, VV catch-up,
// replication continuity) rather than end metrics only.

cluster::SimClusterConfig edge_cluster(cluster::SystemKind system) {
  cluster::SimClusterConfig cfg;
  cfg.topology.num_dcs = 3;
  cfg.topology.partitions_per_dc = 2;
  cfg.topology.partition_scheme = PartitionScheme::kPrefix;
  cfg.latency = LatencyConfig::uniform(200, 0);
  cfg.latency.inter_dc_base_us = {
      {0, 5'000, 8'000}, {5'000, 0, 6'000}, {8'000, 6'000, 0}};
  cfg.clock = ClockConfig::perfect();
  cfg.system = system;
  cfg.seed = 9;
  cfg.enable_checker = true;
  return cfg;
}

TEST(ReplicaFaultEdgeTest, AsymmetricPartitionStallsExactlyOneDirection) {
  // One-way cut dc1->dc0: dc1 keeps serving (its own writes and dc0's
  // inbound replication), dc0 serves stale reads of dc1 data until the heal
  // flush delivers the buffered stream — in order, with a clean history.
  cluster::SimCluster cluster(edge_cluster(cluster::SystemKind::kPocc));
  auto& writer = cluster.create_manual_client(1, 0);
  auto& reader = cluster.create_manual_client(0, 0);
  ASSERT_TRUE(writer.put("0:dep", "v").ok);
  cluster.network().block_link(1, 0);          // dc1 -> dc0 cut
  ASSERT_TRUE(writer.put("0:dep", "v2").ok);   // buffered toward dc0
  ASSERT_TRUE(reader.put("0:rev", "r").ok);    // dc0 -> dc1 still open
  cluster.run_for(30'000);
  EXPECT_EQ(writer.get("0:dep").value, "v2");  // dc1 sees its own write
  EXPECT_TRUE(writer.get("0:rev").found);      // reverse direction flowed
  const auto stale = reader.get("0:dep");
  ASSERT_TRUE(stale.ok);
  EXPECT_EQ(stale.value, "v");  // dc0 still on the pre-cut version

  cluster.network().unblock_link(1, 0);
  cluster.run_for(50'000);
  EXPECT_EQ(reader.get("0:dep").value, "v2");
  EXPECT_TRUE(cluster.checker()->violations().empty());
  EXPECT_TRUE(cluster.divergent_keys().empty());
}

TEST(ReplicaFaultEdgeTest, CrashDuringReplicationThenRestartConverges) {
  // Writes land at two DCs while the third's replica is dead; the restart
  // backlog replay must bring its store and VV level with the others.
  cluster::SimCluster cluster(edge_cluster(cluster::SystemKind::kPocc));
  const NodeId victim{2, 0};
  auto& c0 = cluster.create_manual_client(0, 0);
  auto& c1 = cluster.create_manual_client(1, 0);
  ASSERT_TRUE(c0.put("0:a", "a1").ok);
  cluster.run_for(20'000);

  cluster.crash_node(victim);
  ASSERT_TRUE(c0.put("0:a", "a2").ok);
  ASSERT_TRUE(c1.put("0:b", "b1").ok);
  cluster.run_for(40'000);
  // The dead replica held its pre-crash state only.
  EXPECT_EQ(cluster.engine(victim).partition_store().find(
                store::intern_key("0:b")),
            nullptr);

  const std::uint64_t recovered = cluster.restart_node(victim);
  EXPECT_GE(recovered, 2u);  // both missed writes replayed from the backlog
  cluster.run_for(50'000);
  const auto* chain =
      cluster.engine(victim).partition_store().find(store::intern_key("0:a"));
  ASSERT_NE(chain, nullptr);
  EXPECT_EQ(chain->freshest()->value, "a2");
  EXPECT_TRUE(cluster.divergent_keys().empty());
  EXPECT_TRUE(cluster.checker()->violations().empty());
}

TEST(ReplicaFaultEdgeTest, CrashClearsParkedRequestsWithoutReplies) {
  // Requests parked on the victim die with its RAM: no stray replies after
  // restart, and the parking lot is empty.
  cluster::SimCluster cluster(edge_cluster(cluster::SystemKind::kPocc));
  const NodeId victim{0, 0};
  cluster.run_for(5'000);
  // Park a GET whose RDV names a future remote timestamp.
  proto::GetReq req;
  req.client = 4242;  // never registered: any reply would trip the harness
  req.key = store::intern_key("0:x");
  req.rdv = VersionVector{0, 10'000'000, 0};
  cluster.engine(victim).handle_message(victim, req);
  EXPECT_EQ(cluster.engine(victim).parked_requests(), 1u);

  cluster.crash_node(victim);
  cluster.restart_node(victim);
  EXPECT_EQ(cluster.engine(victim).parked_requests(), 0u);
  cluster.run_for(20'000);
  EXPECT_TRUE(cluster.divergent_keys().empty());
}

TEST(ReplicaFaultEdgeTest, CrashInsideAsymmetricPartitionInterleaving) {
  // Crash overlapping a one-way partition: buffered traffic toward the
  // victim flushes into its backlog (link heals first), then the restart
  // replays it — the ordering the fault injector produces routinely.
  cluster::SimCluster cluster(edge_cluster(cluster::SystemKind::kCure));
  const NodeId victim{0, 0};
  auto& writer = cluster.create_manual_client(1, 0);
  cluster.run_for(5'000);

  cluster.network().block_link(1, 0);
  cluster.crash_node(victim);
  ASSERT_TRUE(writer.put("0:k", "v").ok);  // buffered on the blocked link
  cluster.run_for(30'000);
  cluster.network().unblock_link(1, 0);  // flush lands in the crash backlog
  cluster.run_for(30'000);
  EXPECT_EQ(cluster.engine(victim).partition_store().find(
                store::intern_key("0:k")),
            nullptr);

  EXPECT_GE(cluster.restart_node(victim), 1u);
  cluster.run_for(60'000);
  ASSERT_NE(cluster.engine(victim).partition_store().find(
                store::intern_key("0:k")),
            nullptr);
  EXPECT_TRUE(cluster.divergent_keys().empty());
  EXPECT_TRUE(cluster.checker()->violations().empty());
}

TEST_F(ReplicaEdgeTest, PutClockWaitBoundaryIsStrict) {
  // Alg. 2 line 7 requires max(DV) < Clock strictly: equal is not enough.
  server_.handle_message(NodeId{1, 1}, proto::Heartbeat{1, 2'000'000});
  proto::PutReq put;
  put.client = 1;
  put.key = K("1:a");
  put.value = "v";
  put.dv = VersionVector{0, 2'000'000, 0};  // == beyond current clock (1s)
  server_.handle_message(NodeId{0, 1}, put);
  EXPECT_TRUE(ctx_.replies_of<proto::PutReply>().empty());
  ctx_.now = 2'000'001;
  server_.on_timer(server::kTimerClockWait);
  const auto replies = ctx_.replies_of<proto::PutReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_GT(replies[0].second.ut, 2'000'000);
}

TEST_F(ReplicaEdgeTest, HeartbeatsMuteDuringPeerRecoveryAndResumeAfter) {
  // A heartbeat promises "every update <= ts was sent"; right after a
  // crash-restart some of those sends died in flight, and broadcasting the
  // WAL-restored clock before the RecoveryDone push-back would raise peer
  // VVs past versions they never received (a causal hole). The gate must
  // hold exactly until every sibling's Done is in.
  server_.begin_peer_recovery(/*heartbeat_gate_us=*/500'000);
  EXPECT_EQ(ctx_.sent_of<proto::RecoveryReq>().size(), 2u);
  ctx_.clear_traffic();
  ctx_.now += 10'000;  // idle for 10 ms >> Δ = 1 ms: a heartbeat is due
  server_.on_timer(server::kTimerHeartbeat);
  EXPECT_TRUE(ctx_.sent_of<proto::Heartbeat>().empty());
  EXPECT_FALSE(ctx_.timers.empty());  // the timer re-arms while muted

  server_.handle_message(
      NodeId{1, 1}, proto::RecoveryDone{NodeId{1, 1}, VersionVector(3)});
  ctx_.now += 10'000;
  server_.on_timer(server::kTimerHeartbeat);
  EXPECT_TRUE(ctx_.sent_of<proto::Heartbeat>().empty());  // one Done missing

  server_.handle_message(
      NodeId{2, 1}, proto::RecoveryDone{NodeId{2, 1}, VersionVector(3)});
  EXPECT_TRUE(server_.recovery_complete());
  ctx_.clear_traffic();
  ctx_.now += 10'000;
  server_.on_timer(server::kTimerHeartbeat);
  EXPECT_EQ(ctx_.sent_of<proto::Heartbeat>().size(), 2u);
}

TEST_F(ReplicaEdgeTest, HeartbeatGateExpiresSoADeadPeerCannotMuteForever) {
  server_.begin_peer_recovery(/*heartbeat_gate_us=*/50'000);
  ctx_.clear_traffic();
  ctx_.now += 60'000;  // past the gate with a RecoveryDone still outstanding
  server_.on_timer(server::kTimerHeartbeat);
  EXPECT_EQ(ctx_.sent_of<proto::Heartbeat>().size(), 2u);
}

TEST_F(ReplicaEdgeTest, RecoveryDonePushesBackOwnSuffixThePeerNeverGot) {
  // This replica's own replication stream may have holes on the PEER side:
  // Replicates that died in flight at the crash. The Done's VV tells this
  // node how far the peer really got; everything fresher of its own source
  // replica must be re-sent as tolerantly-restored RecoveryVersions.
  server_.restore_version(remote_version("1:a", 500'000, 0));
  server_.restore_version(remote_version("1:b", 900'000, 0));
  server_.begin_peer_recovery();
  ctx_.clear_traffic();
  VersionVector peer_vv(3);
  peer_vv.raise(0, 600'000);  // the peer saw our stream through 600 ms only
  server_.handle_message(NodeId{1, 1},
                         proto::RecoveryDone{NodeId{1, 1}, peer_vv});
  const auto pushed = ctx_.sent_of<proto::RecoveryVersion>();
  ASSERT_EQ(pushed.size(), 1u);
  EXPECT_EQ(pushed[0].first, (NodeId{1, 1}));
  EXPECT_EQ(pushed[0].second.version.sr, 0u);
  EXPECT_EQ(pushed[0].second.version.ut, 900'000);
  // The Done's VV is merged so replication resumes from the peer's view.
  EXPECT_EQ(server_.version_vector()[0], 900'000);
}

}  // namespace
}  // namespace pocc
