// Cure* engine: GSS stabilization (aggregate min, monotone), pessimistic
// visibility (remote versions hidden until stable), stable-version GETs.
#include "cure/cure_server.hpp"

#include <gtest/gtest.h>

#include "store/key_space.hpp"
#include "test_util.hpp"

namespace pocc {
namespace {

KeyId K(const std::string& key) { return store::intern_key(key); }

using testutil::MockContext;
using testutil::test_topology;

class CureServerTest : public ::testing::Test {
 protected:
  CureServerTest()
      : server_(NodeId{0, 0}, test_topology(), protocol_, service_, ctx_) {
    ctx_.now = 1'000'000;
  }

  store::Version remote_version(const std::string& key, Timestamp ut, DcId sr,
                                VersionVector dv = VersionVector(3)) {
    store::Version v;
    v.key = K(key);
    v.value = "v@" + std::to_string(ut);
    v.sr = sr;
    v.ut = ut;
    v.dv = std::move(dv);
    return v;
  }

  proto::GetReq get_req(ClientId c, const std::string& key,
                        VersionVector rdv = VersionVector(3)) {
    proto::GetReq r;
    r.client = c;
    r.key = K(key);
    r.rdv = std::move(rdv);
    return r;
  }

  /// Run one stabilization round with the sibling partition reporting `vv`.
  void stabilize_with_sibling(const VersionVector& vv) {
    server_.on_timer(server::kTimerStabilization);  // own report (aggregator)
    server_.handle_message(NodeId{0, 1}, proto::StabReport{NodeId{0, 1}, vv});
  }

  MockContext ctx_;
  ProtocolConfig protocol_;
  ServiceConfig service_;
  CureServer server_;
};

TEST_F(CureServerTest, GssStartsAtZero) {
  EXPECT_EQ(server_.gss(), VersionVector(3));
}

TEST_F(CureServerTest, StabilizationComputesAggregateMinimum) {
  server_.handle_message(NodeId{1, 0},
                         proto::Replicate{remote_version("0:a", 700'000, 1)});
  server_.handle_message(NodeId{2, 0}, proto::Heartbeat{2, 400'000});
  // Sibling has seen less from DC1.
  stabilize_with_sibling(VersionVector{0, 500'000, 450'000});
  // GSS = entry-wise min over the DC's version vectors.
  EXPECT_EQ(server_.gss()[1], 500'000);
  EXPECT_EQ(server_.gss()[2], 400'000);
  // The GSS is broadcast to the sibling partition.
  const auto bcasts = ctx_.sent_of<proto::GssBroadcast>();
  ASSERT_EQ(bcasts.size(), 1u);
  EXPECT_EQ(bcasts[0].first, (NodeId{0, 1}));
}

TEST_F(CureServerTest, GssIsMonotonePerNode) {
  server_.handle_message(NodeId{0, 1},
                         proto::GssBroadcast{VersionVector{0, 500, 500}});
  server_.handle_message(NodeId{0, 1},
                         proto::GssBroadcast{VersionVector{0, 300, 800}});
  EXPECT_EQ(server_.gss(), (VersionVector{0, 500, 800}));
}

TEST_F(CureServerTest, GetHidesUnstableRemoteVersion) {
  // Fresh remote version, GSS has not caught up: Cure* must not expose it.
  server_.handle_message(NodeId{1, 0},
                         proto::Replicate{remote_version("0:a", 900'000, 1)});
  server_.handle_message(NodeId{0, 0}, get_req(1, "0:a"));
  const auto replies = ctx_.replies_of<proto::GetReply>();
  ASSERT_EQ(replies.size(), 1u);
  // Falls back to the implicit initial version...
  EXPECT_FALSE(replies[0].second.item.found);
  // ...and the read is both old and unmerged (§V-B definitions).
  EXPECT_EQ(replies[0].second.item.fresher_versions, 1u);
  EXPECT_EQ(replies[0].second.item.unmerged_versions, 1u);
  EXPECT_EQ(server_.staleness_stats().old_reads, 1u);
  EXPECT_EQ(server_.staleness_stats().unmerged_reads, 1u);
}

TEST_F(CureServerTest, GetExposesVersionOnceStable) {
  server_.handle_message(NodeId{1, 0},
                         proto::Replicate{remote_version("0:a", 900'000, 1)});
  stabilize_with_sibling(VersionVector{0, 950'000, 0});
  server_.handle_message(NodeId{0, 0}, get_req(1, "0:a"));
  const auto replies = ctx_.replies_of<proto::GetReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(replies[0].second.item.found);
  EXPECT_EQ(replies[0].second.item.ut, 900'000);
  EXPECT_EQ(replies[0].second.item.fresher_versions, 0u);
}

TEST_F(CureServerTest, StabilityRequiresDependenciesBelowGss) {
  // Version received AND its own timestamp below GSS[sr], but with a
  // dependency above the GSS: still unstable (cv(d) <= GSS fails).
  VersionVector dv{0, 0, 800'000};
  server_.handle_message(
      NodeId{1, 0}, proto::Replicate{remote_version("0:a", 500'000, 1, dv)});
  stabilize_with_sibling(VersionVector{0, 600'000, 100'000});
  server_.handle_message(NodeId{0, 0}, get_req(1, "0:a"));
  const auto replies = ctx_.replies_of<proto::GetReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_FALSE(replies[0].second.item.found);
}

TEST_F(CureServerTest, LocalVersionsAlwaysVisible) {
  proto::PutReq put;
  put.client = 1;
  put.key = K("0:local");
  put.value = "mine";
  put.dv = VersionVector(3);
  server_.handle_message(NodeId{0, 0}, put);
  server_.handle_message(NodeId{0, 0}, get_req(1, "0:local"));
  const auto replies = ctx_.replies_of<proto::GetReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(replies[0].second.item.found);
  EXPECT_EQ(replies[0].second.item.value, "mine");
}

TEST_F(CureServerTest, GetWaitsForGssToCoverRdv) {
  server_.handle_message(NodeId{0, 0},
                         get_req(1, "0:a", VersionVector{0, 700'000, 0}));
  EXPECT_TRUE(ctx_.replies.empty());
  EXPECT_EQ(server_.parked_requests(), 1u);
  // Replication alone is not enough for Cure*: the GSS must advance.
  server_.handle_message(NodeId{1, 0},
                         proto::Replicate{remote_version("0:zz", 800'000, 1)});
  EXPECT_TRUE(ctx_.replies.empty());
  stabilize_with_sibling(VersionVector{0, 800'000, 0});
  EXPECT_EQ(ctx_.replies_of<proto::GetReply>().size(), 1u);
}

TEST_F(CureServerTest, ChainSearchReturnsFreshestStable) {
  server_.handle_message(NodeId{1, 0},
                         proto::Replicate{remote_version("0:k", 100'000, 1)});
  server_.handle_message(NodeId{1, 0},
                         proto::Replicate{remote_version("0:k", 200'000, 1)});
  server_.handle_message(NodeId{1, 0},
                         proto::Replicate{remote_version("0:k", 900'000, 1)});
  stabilize_with_sibling(VersionVector{0, 250'000, 0});
  ctx_.clear_traffic();
  server_.handle_message(NodeId{0, 0}, get_req(1, "0:k"));
  const auto replies = ctx_.replies_of<proto::GetReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].second.item.ut, 200'000);  // freshest stable
  EXPECT_EQ(replies[0].second.item.fresher_versions, 1u);
  EXPECT_EQ(replies[0].second.item.unmerged_versions, 1u);
}

TEST_F(CureServerTest, TxSnapshotBoundedByGss) {
  server_.handle_message(NodeId{1, 0},
                         proto::Replicate{remote_version("0:k", 900'000, 1)});
  stabilize_with_sibling(VersionVector{0, 300'000, 0});
  proto::RoTxReq tx;
  tx.client = 5;
  tx.keys = {K("0:k")};
  tx.rdv = VersionVector(3);
  ctx_.clear_traffic();
  server_.handle_message(NodeId{0, 0}, tx);
  const auto replies = ctx_.replies_of<proto::RoTxReply>();
  ASSERT_EQ(replies.size(), 1u);
  // Remote entries come from the GSS, not the VV: the 900k version invisible.
  EXPECT_LE(replies[0].second.tv[1], 300'000);
  ASSERT_EQ(replies[0].second.items.size(), 1u);
  EXPECT_FALSE(replies[0].second.items[0].found);
}

TEST_F(CureServerTest, TxSnapshotLocalEntryFollowsVv) {
  proto::PutReq put;
  put.client = 1;
  put.key = K("0:mine");
  put.value = "fresh-local";
  put.dv = VersionVector(3);
  server_.handle_message(NodeId{0, 0}, put);
  proto::RoTxReq tx;
  tx.client = 5;
  tx.keys = {K("0:mine")};
  tx.rdv = VersionVector(3);
  ctx_.clear_traffic();
  server_.handle_message(NodeId{0, 0}, tx);
  const auto replies = ctx_.replies_of<proto::RoTxReply>();
  ASSERT_EQ(replies.size(), 1u);
  // Local items are always visible in Cure (§IV-C): the local snapshot entry
  // tracks the VV, so the fresh local write is returned.
  ASSERT_EQ(replies[0].second.items.size(), 1u);
  EXPECT_TRUE(replies[0].second.items[0].found);
  EXPECT_EQ(replies[0].second.items[0].value, "fresh-local");
}

TEST_F(CureServerTest, StartArmsStabilizationTimer) {
  server_.start();
  bool has_stab_timer = false;
  for (const auto& [at, id] : ctx_.timers) {
    if (id == server::kTimerStabilization) has_stab_timer = true;
  }
  EXPECT_TRUE(has_stab_timer);
}

TEST_F(CureServerTest, NonAggregatorSendsReportToPartitionZero) {
  MockContext ctx2;
  ctx2.now = 1'000'000;
  CureServer other(NodeId{0, 1}, test_topology(), protocol_, service_, ctx2);
  other.on_timer(server::kTimerStabilization);
  const auto reports = ctx2.sent_of<proto::StabReport>();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].first, (NodeId{0, 0}));
}

}  // namespace
}  // namespace pocc
