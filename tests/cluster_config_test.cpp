// Cluster config parser: round trip, validation errors, defaults.
#include "net/cluster_config.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace pocc::net {
namespace {

const char* kGoodConfig = R"(# a 2x2 deployment
dcs 2
partitions 2
system cure
heartbeat_us 2500
node 0 0 127.0.0.1:7000
node 0 1 127.0.0.1:7001
node 1 0 localhost:7002   # hostnames are fine too
node 1 1 127.0.0.1:7003
)";

TEST(ClusterConfig, ParsesAValidFile) {
  std::istringstream in(kGoodConfig);
  std::string error;
  const auto layout = parse_cluster_config(in, &error);
  ASSERT_TRUE(layout.has_value()) << error;
  EXPECT_EQ(layout->topology.num_dcs, 2u);
  EXPECT_EQ(layout->topology.partitions_per_dc, 2u);
  EXPECT_EQ(layout->system, rt::System::kCure);
  EXPECT_EQ(layout->protocol.heartbeat_interval_us, 2'500);
  ASSERT_TRUE(layout->complete());
  const NodeAddress* addr = layout->find(NodeId{1, 0});
  ASSERT_NE(addr, nullptr);
  EXPECT_EQ(addr->host, "localhost");
  EXPECT_EQ(addr->port, 7002);
}

TEST(ClusterConfig, FormatRoundTrips) {
  std::istringstream in(kGoodConfig);
  std::string error;
  const auto layout = parse_cluster_config(in, &error);
  ASSERT_TRUE(layout.has_value()) << error;
  std::istringstream again(format_cluster_config(*layout));
  const auto reparsed = parse_cluster_config(again, &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_EQ(reparsed->topology.num_dcs, layout->topology.num_dcs);
  EXPECT_EQ(reparsed->system, layout->system);
  EXPECT_EQ(reparsed->nodes.size(), layout->nodes.size());
  for (std::size_t i = 0; i < layout->nodes.size(); ++i) {
    EXPECT_EQ(reparsed->nodes[i].node, layout->nodes[i].node);
    EXPECT_EQ(reparsed->nodes[i].host, layout->nodes[i].host);
    EXPECT_EQ(reparsed->nodes[i].port, layout->nodes[i].port);
  }
}

TEST(ClusterConfig, RejectsMissingNodes) {
  std::istringstream in("dcs 2\npartitions 2\nnode 0 0 h:1\n");
  std::string error;
  EXPECT_FALSE(parse_cluster_config(in, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(ClusterConfig, RejectsNodeOutsideTopology) {
  std::istringstream in(
      "dcs 1\npartitions 1\nnode 0 0 h:1\nnode 5 0 h:2\n");
  std::string error;
  EXPECT_FALSE(parse_cluster_config(in, &error).has_value());
  EXPECT_NE(error.find("outside"), std::string::npos);
}

TEST(ClusterConfig, RejectsBadKeywordAndBadAddress) {
  {
    std::istringstream in("dcs 1\npartitions 1\nbogus 3\nnode 0 0 h:1\n");
    std::string error;
    EXPECT_FALSE(parse_cluster_config(in, &error).has_value());
    EXPECT_NE(error.find("unknown keyword"), std::string::npos);
  }
  {
    std::istringstream in("dcs 1\npartitions 1\nnode 0 0 noport\n");
    std::string error;
    EXPECT_FALSE(parse_cluster_config(in, &error).has_value());
    EXPECT_NE(error.find("bad address"), std::string::npos);
  }
  {
    std::istringstream in("dcs 1\npartitions 1\nsystem eventual\n");
    std::string error;
    EXPECT_FALSE(parse_cluster_config(in, &error).has_value());
    EXPECT_NE(error.find("unknown system"), std::string::npos);
  }
}

const char* kGroupConfig = R"(# a 3-process deployment, one per DC
dcs 3
partitions 4
system pocc
node dc=0 parts=0-3 threads=4 addr=127.0.0.1:7450
node dc=1 parts=0,1,2,3 threads=2 addr=127.0.0.1:7451
node dc=2 parts=0-3 addr=host2:7452   # threads defaults to 1
)";

TEST(ClusterConfig, ParsesGroupNodes) {
  std::istringstream in(kGroupConfig);
  std::string error;
  const auto layout = parse_cluster_config(in, &error);
  ASSERT_TRUE(layout.has_value()) << error;
  ASSERT_EQ(layout->processes.size(), 3u);
  EXPECT_TRUE(layout->complete());
  EXPECT_EQ(layout->nodes.size(), 12u);

  const ProcessSpec& p0 = layout->processes[0];
  EXPECT_EQ(p0.dc, 0u);
  EXPECT_EQ(p0.parts, (std::vector<PartitionId>{0, 1, 2, 3}));
  EXPECT_EQ(p0.threads, 4u);
  EXPECT_EQ(p0.port, 7450);
  EXPECT_EQ(layout->processes[1].threads, 2u);
  EXPECT_EQ(layout->processes[2].threads, 1u);
  EXPECT_EQ(layout->processes[2].host, "host2");

  // Per-node addresses derive from the hosting process.
  const NodeAddress* addr = layout->find(NodeId{1, 3});
  ASSERT_NE(addr, nullptr);
  EXPECT_EQ(addr->port, 7451);
  const ProcessSpec* owner = layout->process_for(NodeId{2, 1});
  ASSERT_NE(owner, nullptr);
  EXPECT_EQ(owner->port, 7452);
}

TEST(ClusterConfig, GroupFormatRoundTrips) {
  std::istringstream in(kGroupConfig);
  std::string error;
  const auto layout = parse_cluster_config(in, &error);
  ASSERT_TRUE(layout.has_value()) << error;
  std::istringstream again(format_cluster_config(*layout));
  const auto reparsed = parse_cluster_config(again, &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  ASSERT_EQ(reparsed->processes.size(), layout->processes.size());
  for (std::size_t i = 0; i < layout->processes.size(); ++i) {
    EXPECT_EQ(reparsed->processes[i].dc, layout->processes[i].dc);
    EXPECT_EQ(reparsed->processes[i].parts, layout->processes[i].parts);
    EXPECT_EQ(reparsed->processes[i].threads, layout->processes[i].threads);
    EXPECT_EQ(reparsed->processes[i].host, layout->processes[i].host);
    EXPECT_EQ(reparsed->processes[i].port, layout->processes[i].port);
  }
}

TEST(ClusterConfig, RejectsBadGroupNodes) {
  {  // partition hosted twice
    std::istringstream in(
        "dcs 1\npartitions 2\n"
        "node dc=0 parts=0-1 addr=h:1\nnode dc=0 parts=1 addr=h:2\n");
    std::string error;
    EXPECT_FALSE(parse_cluster_config(in, &error).has_value());
  }
  {  // inverted range
    std::istringstream in(
        "dcs 1\npartitions 4\nnode dc=0 parts=3-1 addr=h:1\n");
    std::string error;
    EXPECT_FALSE(parse_cluster_config(in, &error).has_value());
    EXPECT_NE(error.find("bad parts"), std::string::npos);
  }
  {  // missing addr
    std::istringstream in("dcs 1\npartitions 1\nnode dc=0 parts=0\n");
    std::string error;
    EXPECT_FALSE(parse_cluster_config(in, &error).has_value());
    EXPECT_NE(error.find("addr"), std::string::npos);
  }
  {  // unknown key
    std::istringstream in(
        "dcs 1\npartitions 1\nnode dc=0 parts=0 cores=2 addr=h:1\n");
    std::string error;
    EXPECT_FALSE(parse_cluster_config(in, &error).has_value());
    EXPECT_NE(error.find("unknown key"), std::string::npos);
  }
  {  // group node outside topology
    std::istringstream in(
        "dcs 1\npartitions 2\nnode dc=0 parts=0-2 addr=h:1\n");
    std::string error;
    EXPECT_FALSE(parse_cluster_config(in, &error).has_value());
    EXPECT_NE(error.find("outside"), std::string::npos);
  }
}

TEST(ClusterConfig, RejectsOutOfRangePartsRange) {
  // Range values beyond the 4096 partition cap must be rejected, not
  // silently truncated through the u32 cast (a typo'd huge number would
  // otherwise remap to small partition ids and parse "successfully").
  std::istringstream in(
      "dcs 1\npartitions 2\nnode dc=0 parts=4294967296-4294967297 "
      "addr=h:1\n");
  std::string error;
  EXPECT_FALSE(parse_cluster_config(in, &error).has_value());
  EXPECT_NE(error.find("bad parts"), std::string::npos);
}

TEST(ClusterConfig, RejectsU64OverflowValues) {
  // Values past 2^64 must fail parsing (from_chars overflow), not wrap —
  // `parts=2^64..2^64+1` would otherwise alias parts 0-1 and "succeed".
  {
    std::istringstream in(
        "dcs 1\npartitions 2\n"
        "node dc=0 parts=18446744073709551616-18446744073709551617 "
        "addr=h:1\n");
    std::string error;
    EXPECT_FALSE(parse_cluster_config(in, &error).has_value());
    EXPECT_NE(error.find("bad parts"), std::string::npos);
  }
  {
    std::istringstream in(
        "dcs 1\npartitions 1\n"
        "node dc=18446744073709551617 parts=0 addr=h:1\n");
    std::string error;
    EXPECT_FALSE(parse_cluster_config(in, &error).has_value());
    EXPECT_NE(error.find("bad dc"), std::string::npos);
  }
  {
    std::istringstream in(
        "dcs 1\npartitions 1\n"
        "node dc=0 parts=0 threads=18446744073709551617 addr=h:1\n");
    std::string error;
    EXPECT_FALSE(parse_cluster_config(in, &error).has_value());
    EXPECT_NE(error.find("threads"), std::string::npos);
  }
}

TEST(ClusterConfig, SystemNamesRoundTrip) {
  for (const auto system :
       {rt::System::kPocc, rt::System::kCure, rt::System::kHaPocc}) {
    const auto parsed = parse_system(system_name(system));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, system);
  }
}

}  // namespace
}  // namespace pocc::net
