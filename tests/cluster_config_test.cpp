// Cluster config parser: round trip, validation errors, defaults.
#include "net/cluster_config.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace pocc::net {
namespace {

const char* kGoodConfig = R"(# a 2x2 deployment
dcs 2
partitions 2
system cure
heartbeat_us 2500
node 0 0 127.0.0.1:7000
node 0 1 127.0.0.1:7001
node 1 0 localhost:7002   # hostnames are fine too
node 1 1 127.0.0.1:7003
)";

TEST(ClusterConfig, ParsesAValidFile) {
  std::istringstream in(kGoodConfig);
  std::string error;
  const auto layout = parse_cluster_config(in, &error);
  ASSERT_TRUE(layout.has_value()) << error;
  EXPECT_EQ(layout->topology.num_dcs, 2u);
  EXPECT_EQ(layout->topology.partitions_per_dc, 2u);
  EXPECT_EQ(layout->system, rt::System::kCure);
  EXPECT_EQ(layout->protocol.heartbeat_interval_us, 2'500);
  ASSERT_TRUE(layout->complete());
  const NodeAddress* addr = layout->find(NodeId{1, 0});
  ASSERT_NE(addr, nullptr);
  EXPECT_EQ(addr->host, "localhost");
  EXPECT_EQ(addr->port, 7002);
}

TEST(ClusterConfig, FormatRoundTrips) {
  std::istringstream in(kGoodConfig);
  std::string error;
  const auto layout = parse_cluster_config(in, &error);
  ASSERT_TRUE(layout.has_value()) << error;
  std::istringstream again(format_cluster_config(*layout));
  const auto reparsed = parse_cluster_config(again, &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_EQ(reparsed->topology.num_dcs, layout->topology.num_dcs);
  EXPECT_EQ(reparsed->system, layout->system);
  EXPECT_EQ(reparsed->nodes.size(), layout->nodes.size());
  for (std::size_t i = 0; i < layout->nodes.size(); ++i) {
    EXPECT_EQ(reparsed->nodes[i].node, layout->nodes[i].node);
    EXPECT_EQ(reparsed->nodes[i].host, layout->nodes[i].host);
    EXPECT_EQ(reparsed->nodes[i].port, layout->nodes[i].port);
  }
}

TEST(ClusterConfig, RejectsMissingNodes) {
  std::istringstream in("dcs 2\npartitions 2\nnode 0 0 h:1\n");
  std::string error;
  EXPECT_FALSE(parse_cluster_config(in, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(ClusterConfig, RejectsNodeOutsideTopology) {
  std::istringstream in(
      "dcs 1\npartitions 1\nnode 0 0 h:1\nnode 5 0 h:2\n");
  std::string error;
  EXPECT_FALSE(parse_cluster_config(in, &error).has_value());
  EXPECT_NE(error.find("outside"), std::string::npos);
}

TEST(ClusterConfig, RejectsBadKeywordAndBadAddress) {
  {
    std::istringstream in("dcs 1\npartitions 1\nbogus 3\nnode 0 0 h:1\n");
    std::string error;
    EXPECT_FALSE(parse_cluster_config(in, &error).has_value());
    EXPECT_NE(error.find("unknown keyword"), std::string::npos);
  }
  {
    std::istringstream in("dcs 1\npartitions 1\nnode 0 0 noport\n");
    std::string error;
    EXPECT_FALSE(parse_cluster_config(in, &error).has_value());
    EXPECT_NE(error.find("bad address"), std::string::npos);
  }
  {
    std::istringstream in("dcs 1\npartitions 1\nsystem eventual\n");
    std::string error;
    EXPECT_FALSE(parse_cluster_config(in, &error).has_value());
    EXPECT_NE(error.find("unknown system"), std::string::npos);
  }
}

TEST(ClusterConfig, SystemNamesRoundTrip) {
  for (const auto system :
       {rt::System::kPocc, rt::System::kCure, rt::System::kHaPocc}) {
    const auto parsed = parse_system(system_name(system));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, system);
  }
}

}  // namespace
}  // namespace pocc::net
