// Seed-deterministic codec fuzzing (ctest label `fuzz`, like the cluster
// fuzz suites — see docs/TESTING.md).
//
// Three lanes:
//   * random well-formed messages -> encode -> decode -> field equality,
//   * truncation: every well-formed frame cut at every length must decode as
//     kNeedMore or kError — never crash, never mis-decode as a full frame,
//   * corruption: random byte flips / random garbage must yield kOk with a
//     plausible frame, kNeedMore or kError — never a crash or an OOM.
#include "proto/codec.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "store/key_space.hpp"

namespace pocc::proto {
namespace {

constexpr std::uint64_t kCampaignSeed = 0xC0DEC0DEULL;

std::string random_string(Rng& rng, std::size_t max_len) {
  const std::size_t n = rng.uniform(max_len + 1);
  std::string s;
  s.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    s.push_back(static_cast<char>(rng.uniform(256)));
  }
  return s;
}

KeyId random_key(Rng& rng) {
  // Mix canonical workload keys with arbitrary (even empty/binary) strings.
  if (rng.uniform(2) == 0) {
    return store::KeySpace::global().intern_partition_key(
        static_cast<PartitionId>(rng.uniform(8)), rng.uniform(512));
  }
  return store::intern_key("fz:" + random_string(rng, 24));
}

VersionVector random_vv(Rng& rng) {
  const std::uint32_t n = static_cast<std::uint32_t>(rng.uniform(kMaxDcs + 1));
  if (n == 0) return {};
  VersionVector vv(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    vv.set(i, static_cast<Timestamp>(rng.uniform(1'000'000'000)));
  }
  return vv;
}

ReadItem random_item(Rng& rng) {
  ReadItem it;
  it.key = random_key(rng);
  it.found = rng.uniform(2) == 0;
  it.value = random_string(rng, 64);
  it.sr = static_cast<DcId>(rng.uniform(8));
  it.ut = static_cast<Timestamp>(rng.uniform(1'000'000'000));
  it.dv = random_vv(rng);
  it.fresher_versions = static_cast<std::uint32_t>(rng.uniform(100));
  it.unmerged_versions = static_cast<std::uint32_t>(rng.uniform(100));
  return it;
}

std::vector<ReadItem> random_items(Rng& rng, std::size_t max_n) {
  std::vector<ReadItem> items;
  const std::size_t n = rng.uniform(max_n + 1);
  for (std::size_t i = 0; i < n; ++i) items.push_back(random_item(rng));
  return items;
}

std::vector<KeyId> random_keys(Rng& rng, std::size_t max_n) {
  std::vector<KeyId> keys;
  const std::size_t n = rng.uniform(max_n + 1);
  for (std::size_t i = 0; i < n; ++i) keys.push_back(random_key(rng));
  return keys;
}

Message random_message(Rng& rng) {
  switch (rng.uniform(19)) {
    case 0: {
      GetReq m;
      m.client = rng.next();
      m.key = random_key(rng);
      m.rdv = random_vv(rng);
      m.pessimistic = rng.uniform(2) == 0;
      m.op_id = rng.next();
      return Message{std::move(m)};
    }
    case 1: {
      PutReq m;
      m.client = rng.next();
      m.key = random_key(rng);
      m.value = random_string(rng, 64);
      m.dv = random_vv(rng);
      m.pessimistic = rng.uniform(2) == 0;
      m.op_id = rng.next();
      return Message{std::move(m)};
    }
    case 2: {
      RoTxReq m;
      m.client = rng.next();
      m.keys = random_keys(rng, 16);
      m.rdv = random_vv(rng);
      m.pessimistic = rng.uniform(2) == 0;
      m.op_id = rng.next();
      return Message{std::move(m)};
    }
    case 3: {
      GetReply m;
      m.client = rng.next();
      m.item = random_item(rng);
      m.blocked_us = static_cast<Duration>(rng.uniform(1'000'000));
      m.op_id = rng.next();
      return Message{std::move(m)};
    }
    case 4: {
      PutReply m;
      m.client = rng.next();
      m.key = random_key(rng);
      m.ut = static_cast<Timestamp>(rng.uniform(1'000'000'000));
      m.sr = static_cast<DcId>(rng.uniform(8));
      m.blocked_us = static_cast<Duration>(rng.uniform(1'000'000));
      m.op_id = rng.next();
      return Message{std::move(m)};
    }
    case 5: {
      RoTxReply m;
      m.client = rng.next();
      m.items = random_items(rng, 8);
      m.tv = random_vv(rng);
      m.blocked_us = static_cast<Duration>(rng.uniform(1'000'000));
      m.op_id = rng.next();
      return Message{std::move(m)};
    }
    case 6: {
      SessionClosed m;
      m.client = rng.next();
      m.reason = random_string(rng, 48);
      return Message{std::move(m)};
    }
    case 7: {
      Replicate m;
      m.version.key = random_key(rng);
      m.version.value = random_string(rng, 64);
      m.version.sr = static_cast<DcId>(rng.uniform(8));
      m.version.ut = static_cast<Timestamp>(rng.uniform(1'000'000'000));
      m.version.dv = random_vv(rng);
      m.version.opt_origin = rng.uniform(2) == 0;
      return Message{std::move(m)};
    }
    case 8: {
      Heartbeat m;
      m.src_dc = static_cast<DcId>(rng.uniform(8));
      m.ts = static_cast<Timestamp>(rng.uniform(1'000'000'000));
      return Message{m};
    }
    case 9: {
      SliceReq m;
      m.tx_id = rng.next();
      m.coordinator = NodeId{static_cast<DcId>(rng.uniform(8)),
                             static_cast<PartitionId>(rng.uniform(32))};
      m.keys = random_keys(rng, 16);
      m.tv = random_vv(rng);
      m.pessimistic = rng.uniform(2) == 0;
      return Message{std::move(m)};
    }
    case 10: {
      SliceReply m;
      m.tx_id = rng.next();
      m.items = random_items(rng, 8);
      m.blocked_us = static_cast<Duration>(rng.uniform(1'000'000));
      m.aborted = rng.uniform(2) == 0;
      return Message{std::move(m)};
    }
    case 11: {
      GcReport m;
      m.from = NodeId{static_cast<DcId>(rng.uniform(8)),
                      static_cast<PartitionId>(rng.uniform(32))};
      m.low_watermark = random_vv(rng);
      return Message{std::move(m)};
    }
    case 12: {
      GcVector m;
      m.gv = random_vv(rng);
      return Message{std::move(m)};
    }
    case 13: {
      StabReport m;
      m.from = NodeId{static_cast<DcId>(rng.uniform(8)),
                      static_cast<PartitionId>(rng.uniform(32))};
      m.vv = random_vv(rng);
      return Message{std::move(m)};
    }
    case 14: {
      GssBroadcast m;
      m.gss = random_vv(rng);
      return Message{std::move(m)};
    }
    case 15: {
      RecoveryReq m;
      m.from = NodeId{static_cast<DcId>(rng.uniform(8)),
                      static_cast<PartitionId>(rng.uniform(32))};
      m.durable_vv = random_vv(rng);
      return Message{std::move(m)};
    }
    case 16: {
      RecoveryVersion m;
      m.version.key = random_key(rng);
      m.version.value = random_string(rng, 64);
      m.version.sr = static_cast<DcId>(rng.uniform(8));
      m.version.ut = static_cast<Timestamp>(rng.uniform(1'000'000'000));
      m.version.dv = random_vv(rng);
      m.version.opt_origin = rng.uniform(2) == 0;
      return Message{std::move(m)};
    }
    case 17: {
      RecoveryDone m;
      m.from = NodeId{static_cast<DcId>(rng.uniform(8)),
                      static_cast<PartitionId>(rng.uniform(32))};
      m.vv = random_vv(rng);
      return Message{std::move(m)};
    }
    default: {
      Overloaded m;
      m.client = rng.next();
      m.retry_after_us = static_cast<Duration>(rng.uniform(10'000'000));
      m.op_id = rng.next();
      return Message{m};
    }
  }
}

bool items_equal(const ReadItem& a, const ReadItem& b) {
  return a.key == b.key && a.found == b.found && a.value == b.value &&
         a.sr == b.sr && a.ut == b.ut && a.dv == b.dv &&
         a.fresher_versions == b.fresher_versions &&
         a.unmerged_versions == b.unmerged_versions;
}

bool item_lists_equal(const std::vector<ReadItem>& a,
                      const std::vector<ReadItem>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!items_equal(a[i], b[i])) return false;
  }
  return true;
}

struct EqualVisitor {
  const Message& rhs;

  bool operator()(const GetReq& a) const {
    const auto& b = std::get<GetReq>(rhs);
    return a.client == b.client && a.key == b.key && a.rdv == b.rdv &&
           a.pessimistic == b.pessimistic && a.op_id == b.op_id;
  }
  bool operator()(const PutReq& a) const {
    const auto& b = std::get<PutReq>(rhs);
    return a.client == b.client && a.key == b.key && a.value == b.value &&
           a.dv == b.dv && a.pessimistic == b.pessimistic &&
           a.op_id == b.op_id;
  }
  bool operator()(const RoTxReq& a) const {
    const auto& b = std::get<RoTxReq>(rhs);
    return a.client == b.client && a.keys == b.keys && a.rdv == b.rdv &&
           a.pessimistic == b.pessimistic && a.op_id == b.op_id;
  }
  bool operator()(const GetReply& a) const {
    const auto& b = std::get<GetReply>(rhs);
    return a.client == b.client && items_equal(a.item, b.item) &&
           a.blocked_us == b.blocked_us && a.op_id == b.op_id;
  }
  bool operator()(const PutReply& a) const {
    const auto& b = std::get<PutReply>(rhs);
    return a.client == b.client && a.key == b.key && a.ut == b.ut &&
           a.sr == b.sr && a.blocked_us == b.blocked_us && a.op_id == b.op_id;
  }
  bool operator()(const RoTxReply& a) const {
    const auto& b = std::get<RoTxReply>(rhs);
    return a.client == b.client && item_lists_equal(a.items, b.items) &&
           a.tv == b.tv && a.blocked_us == b.blocked_us && a.op_id == b.op_id;
  }
  bool operator()(const SessionClosed& a) const {
    const auto& b = std::get<SessionClosed>(rhs);
    return a.client == b.client && a.reason == b.reason;
  }
  bool operator()(const Replicate& a) const {
    const auto& b = std::get<Replicate>(rhs);
    return a.version.key == b.version.key &&
           a.version.value == b.version.value &&
           a.version.sr == b.version.sr && a.version.ut == b.version.ut &&
           a.version.dv == b.version.dv &&
           a.version.opt_origin == b.version.opt_origin;
  }
  bool operator()(const Heartbeat& a) const {
    const auto& b = std::get<Heartbeat>(rhs);
    return a.src_dc == b.src_dc && a.ts == b.ts;
  }
  bool operator()(const SliceReq& a) const {
    const auto& b = std::get<SliceReq>(rhs);
    return a.tx_id == b.tx_id && a.coordinator == b.coordinator &&
           a.keys == b.keys && a.tv == b.tv &&
           a.pessimistic == b.pessimistic;
  }
  bool operator()(const SliceReply& a) const {
    const auto& b = std::get<SliceReply>(rhs);
    return a.tx_id == b.tx_id && item_lists_equal(a.items, b.items) &&
           a.blocked_us == b.blocked_us && a.aborted == b.aborted;
  }
  bool operator()(const GcReport& a) const {
    const auto& b = std::get<GcReport>(rhs);
    return a.from == b.from && a.low_watermark == b.low_watermark;
  }
  bool operator()(const GcVector& a) const {
    return a.gv == std::get<GcVector>(rhs).gv;
  }
  bool operator()(const StabReport& a) const {
    const auto& b = std::get<StabReport>(rhs);
    return a.from == b.from && a.vv == b.vv;
  }
  bool operator()(const GssBroadcast& a) const {
    return a.gss == std::get<GssBroadcast>(rhs).gss;
  }
  bool operator()(const RecoveryReq& a) const {
    const auto& b = std::get<RecoveryReq>(rhs);
    return a.from == b.from && a.durable_vv == b.durable_vv;
  }
  bool operator()(const RecoveryVersion& a) const {
    const auto& b = std::get<RecoveryVersion>(rhs);
    return a.version.key == b.version.key &&
           a.version.value == b.version.value &&
           a.version.sr == b.version.sr && a.version.ut == b.version.ut &&
           a.version.dv == b.version.dv &&
           a.version.opt_origin == b.version.opt_origin;
  }
  bool operator()(const RecoveryDone& a) const {
    const auto& b = std::get<RecoveryDone>(rhs);
    return a.from == b.from && a.vv == b.vv;
  }
  bool operator()(const Overloaded& a) const {
    const auto& b = std::get<Overloaded>(rhs);
    return a.client == b.client && a.retry_after_us == b.retry_after_us &&
           a.op_id == b.op_id;
  }
  bool operator()(const RouteProbe&) const { return false; }
};

bool messages_equal(const Message& a, const Message& b) {
  if (a.index() != b.index()) return false;
  return std::visit(EqualVisitor{b}, a);
}

TEST(CodecFuzz, RandomMessagesRoundTripExactly) {
  Rng rng(kCampaignSeed);
  for (int i = 0; i < 2'000; ++i) {
    const Message m = random_message(rng);
    std::vector<std::uint8_t> buf;
    encode(m, buf);
    const DecodeResult res = decode_frame(buf.data(), buf.size());
    ASSERT_EQ(res.status, DecodeResult::Status::kOk)
        << "iteration " << i << " (" << message_name(m) << "): " << res.error;
    ASSERT_EQ(res.consumed, buf.size());
    ASSERT_TRUE(messages_equal(m, std::get<Message>(res.frame)))
        << "iteration " << i << ": " << message_name(m)
        << " did not round-trip";
  }
}

BatchFrame random_batch(Rng& rng) {
  BatchFrame batch;
  const std::size_t n = 1 + rng.uniform(5);
  for (std::size_t i = 0; i < n; ++i) {
    RoutedMessage item;
    item.from = NodeId{static_cast<DcId>(rng.uniform(8)),
                       static_cast<PartitionId>(rng.uniform(32))};
    item.to = NodeId{static_cast<DcId>(rng.uniform(8)),
                     static_cast<PartitionId>(rng.uniform(32))};
    item.msg = random_message(rng);
    batch.items.push_back(std::move(item));
  }
  return batch;
}

TEST(CodecFuzz, RandomBatchesRoundTripExactly) {
  Rng rng(kCampaignSeed + 4);
  for (int i = 0; i < 500; ++i) {
    const BatchFrame batch = random_batch(rng);
    std::vector<std::uint8_t> buf;
    BatchEncodeStats stats;
    encode(batch, buf, &stats);
    // Overhead model must hold for every composition.
    ASSERT_EQ(stats.overhead_bytes,
              kBatchHeaderOverheadBytes + kFrameHeaderBytes +
                  batch.items.size() * kBatchItemOverheadBytes);
    const DecodeResult res = decode_frame(buf.data(), buf.size());
    ASSERT_EQ(res.status, DecodeResult::Status::kOk)
        << "iteration " << i << ": " << res.error;
    ASSERT_EQ(res.consumed, buf.size());
    const auto& decoded = std::get<BatchFrame>(res.frame);
    ASSERT_EQ(decoded.items.size(), batch.items.size());
    for (std::size_t j = 0; j < batch.items.size(); ++j) {
      ASSERT_EQ(decoded.items[j].from, batch.items[j].from);
      ASSERT_EQ(decoded.items[j].to, batch.items[j].to);
      ASSERT_TRUE(messages_equal(decoded.items[j].msg, batch.items[j].msg))
          << "iteration " << i << " item " << j << ": "
          << message_name(batch.items[j].msg) << " did not round-trip";
    }
  }
}

TEST(CodecFuzz, TruncatedBatchesNeverDecode) {
  Rng rng(kCampaignSeed + 5);
  for (int i = 0; i < 60; ++i) {
    const BatchFrame batch = random_batch(rng);
    std::vector<std::uint8_t> buf;
    encode(batch, buf);
    for (std::size_t cut = 0; cut < buf.size(); ++cut) {
      const DecodeResult res = decode_frame(buf.data(), cut);
      ASSERT_EQ(res.status, DecodeResult::Status::kNeedMore)
          << "batch cut at " << cut;
    }
  }
}

TEST(CodecFuzz, BatchByteFlipsNeverCrash) {
  Rng rng(kCampaignSeed + 6);
  for (int i = 0; i < 1'000; ++i) {
    const BatchFrame batch = random_batch(rng);
    std::vector<std::uint8_t> buf;
    encode(batch, buf);
    const std::size_t flips = 1 + rng.uniform(4);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t at = rng.uniform(buf.size());
      buf[at] ^= static_cast<std::uint8_t>(1 + rng.uniform(255));
    }
    const DecodeResult res = decode_frame(buf.data(), buf.size());
    if (res.status == DecodeResult::Status::kOk) {
      ASSERT_LE(res.consumed, buf.size());
    }
  }
}

TEST(CodecFuzz, TruncatedFramesNeverDecode) {
  Rng rng(kCampaignSeed + 1);
  for (int i = 0; i < 300; ++i) {
    const Message m = random_message(rng);
    std::vector<std::uint8_t> buf;
    encode(m, buf);
    // Every strict prefix must report kNeedMore (frame not complete yet).
    for (std::size_t cut = 0; cut < buf.size(); ++cut) {
      const DecodeResult res = decode_frame(buf.data(), cut);
      ASSERT_EQ(res.status, DecodeResult::Status::kNeedMore)
          << message_name(m) << " cut at " << cut;
    }
  }
}

TEST(CodecFuzz, ByteFlipsNeverCrash) {
  Rng rng(kCampaignSeed + 2);
  std::uint64_t survived = 0;
  for (int i = 0; i < 2'000; ++i) {
    const Message m = random_message(rng);
    std::vector<std::uint8_t> buf;
    encode(m, buf);
    // Flip 1-4 random bytes anywhere in the frame (including the prefix).
    const std::size_t flips = 1 + rng.uniform(4);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t at = rng.uniform(buf.size());
      buf[at] ^= static_cast<std::uint8_t>(1 + rng.uniform(255));
    }
    const DecodeResult res = decode_frame(buf.data(), buf.size());
    // Any status is legal — a flip in an uninterpreted byte still decodes —
    // but the decoder must neither crash nor return a bogus consumed count.
    if (res.status == DecodeResult::Status::kOk) {
      ASSERT_LE(res.consumed, buf.size());
      ++survived;
    }
  }
  // Sanity: some flips (e.g. in value bytes) must survive decoding.
  EXPECT_GT(survived, 0u);
}

TEST(CodecFuzz, RandomGarbageNeverCrashes) {
  Rng rng(kCampaignSeed + 3);
  for (int i = 0; i < 5'000; ++i) {
    std::vector<std::uint8_t> buf;
    const std::size_t n = rng.uniform(256);
    buf.reserve(n);
    for (std::size_t b = 0; b < n; ++b) {
      buf.push_back(static_cast<std::uint8_t>(rng.uniform(256)));
    }
    const DecodeResult res = decode_frame(buf.data(), buf.size());
    if (res.status == DecodeResult::Status::kOk) {
      ASSERT_LE(res.consumed, buf.size());
    }
  }
}

}  // namespace
}  // namespace pocc::proto
