// FaultInjector driving a live SimCluster: each fault kind takes effect at
// its scheduled time, clears on schedule, and the cluster converges with a
// clean causal history afterwards. Complements tests/cluster_fuzz_test.cpp
// (random plans) with hand-written single-fault scenarios whose effects are
// asserted directly.
#include "fault/fault_injector.hpp"

#include <gtest/gtest.h>

#include "fault/fuzz_runner.hpp"

namespace pocc::fault {
namespace {

using cluster::SimCluster;
using cluster::SimClusterConfig;
using cluster::SystemKind;

SimClusterConfig small_cluster(SystemKind system, std::uint64_t seed = 7) {
  SimClusterConfig cfg;
  cfg.topology.num_dcs = 3;
  cfg.topology.partitions_per_dc = 2;
  cfg.topology.partition_scheme = PartitionScheme::kPrefix;
  cfg.latency = LatencyConfig::uniform(200, 0);
  cfg.latency.inter_dc_base_us = {
      {0, 5'000, 8'000}, {5'000, 0, 6'000}, {8'000, 6'000, 0}};
  cfg.clock = ClockConfig::perfect();
  cfg.system = system;
  cfg.seed = seed;
  cfg.enable_checker = true;
  return cfg;
}

FaultEvent event_at(FaultKind kind, Timestamp at, Duration dur) {
  FaultEvent e;
  e.kind = kind;
  e.at = at;
  e.duration = dur;
  return e;
}

FaultPlan plan_of(std::vector<FaultEvent> events, Duration horizon) {
  FaultPlan p;
  p.events = std::move(events);
  p.horizon_us = horizon;
  return p;
}

TEST(FaultInjectorTest, PartitionWindowOpensAndHeals) {
  SimCluster cluster(small_cluster(SystemKind::kPocc));
  FaultEvent e = event_at(FaultKind::kPartition, 50'000, 100'000);
  e.dc_a = 0;
  e.dc_b = 1;
  FaultInjector inj(cluster, plan_of({e}, 300'000));
  inj.arm();

  cluster.run_for(60'000);
  EXPECT_TRUE(cluster.network().is_partitioned(0, 1));
  EXPECT_FALSE(cluster.network().is_partitioned(0, 2));
  EXPECT_EQ(inj.injected(), 1u);
  EXPECT_EQ(inj.cleared(), 0u);

  cluster.run_for(120'000);
  EXPECT_FALSE(cluster.network().is_partitioned(0, 1));
  EXPECT_TRUE(inj.all_cleared());
}

TEST(FaultInjectorTest, AsymmetricPartitionBlocksOneDirectionOnly) {
  SimCluster cluster(small_cluster(SystemKind::kPocc));
  FaultEvent e = event_at(FaultKind::kAsymPartition, 10'000, 200'000);
  e.dc_a = 0;
  e.dc_b = 1;
  FaultInjector inj(cluster, plan_of({e}, 300'000));
  inj.arm();
  cluster.run_for(20'000);

  net::SimNetwork& net = cluster.network();
  EXPECT_TRUE(net.link_blocked(0, 1));
  EXPECT_FALSE(net.link_blocked(1, 0));

  // dc1's writes replicate into dc0 while dc0's writes stay buffered.
  auto& dc0_client = cluster.create_manual_client(0, 0);
  auto& dc1_client = cluster.create_manual_client(1, 0);
  ASSERT_TRUE(dc1_client.put("0:from-dc1", "v1").ok);
  ASSERT_TRUE(dc0_client.put("0:from-dc0", "v0").ok);
  cluster.run_for(50'000);
  // dc0 sees dc1's write (link dc1->dc0 is open).
  EXPECT_TRUE(dc0_client.get("0:from-dc1").found);
  // dc1 must not see dc0's write yet (dc0->dc1 is blocked). A fresh dc1
  // client has no dependency on it, so the read serves immediately.
  auto& dc1_probe = cluster.create_manual_client(1, 0);
  EXPECT_FALSE(dc1_probe.get("0:from-dc0").found);

  cluster.run_for(160'000);  // heal + flush
  EXPECT_FALSE(net.link_blocked(0, 1));
  EXPECT_TRUE(dc1_probe.get("0:from-dc0").found);
  EXPECT_TRUE(cluster.divergent_keys().empty());
  EXPECT_TRUE(cluster.checker()->violations().empty());
}

TEST(FaultInjectorTest, LinkDegradeStretchesDeliveryWithoutLoss) {
  SimCluster cluster(small_cluster(SystemKind::kPocc));
  FaultEvent e = event_at(FaultKind::kLinkDegrade, 10'000, 150'000);
  e.dc_a = 0;
  e.dc_b = 1;
  e.extra_delay_us = 30'000;
  e.delay_multiplier = 2.0;
  FaultInjector inj(cluster, plan_of({e}, 300'000));
  inj.arm();
  cluster.run_for(20'000);

  // A write in dc0 reaches dc1 only after the degraded delay (base 5 ms
  // doubled + 30 ms extra = 40 ms), not after the healthy 5 ms.
  auto& dc0_client = cluster.create_manual_client(0, 0);
  auto& dc1_probe = cluster.create_manual_client(1, 0);
  ASSERT_TRUE(dc0_client.put("0:slow", "v").ok);
  cluster.run_for(20'000);
  EXPECT_FALSE(dc1_probe.get("0:slow").found);  // 20 ms < degraded delay
  cluster.run_for(40'000);
  EXPECT_TRUE(dc1_probe.get("0:slow").found);  // arrived, nothing lost
}

TEST(FaultInjectorTest, CrashDropsClientRequestsAndRestartRecovers) {
  SimCluster cluster(small_cluster(SystemKind::kPocc));
  FaultEvent e = event_at(FaultKind::kCrash, 30'000, 100'000);
  e.node = NodeId{0, 0};
  FaultInjector inj(cluster, plan_of({e}, 300'000));
  inj.arm();

  // A write in another DC lands before the crash window.
  auto& dc1_client = cluster.create_manual_client(1, 0);
  ASSERT_TRUE(dc1_client.put("0:pre", "v").ok);
  cluster.run_for(40'000);
  EXPECT_TRUE(cluster.node_down(NodeId{0, 0}));

  // Requests to the dead node bounce: a manual GET never completes.
  auto& dc0_client = cluster.create_manual_client(0, 0);
  EXPECT_FALSE(dc0_client.get("0:pre", /*max_wait=*/20'000).ok);

  // Writes replicated toward the dead node ride the peers' durable logs.
  ASSERT_TRUE(dc1_client.put("0:during", "v").ok);

  cluster.run_for(120'000);  // restart at 130 ms
  EXPECT_FALSE(cluster.node_down(NodeId{0, 0}));
  EXPECT_GT(inj.versions_recovered(), 0u);
  // After the backlog replays, the rebooted node serves both versions.
  EXPECT_TRUE(dc0_client.get("0:pre").found);
  EXPECT_TRUE(dc0_client.get("0:during").found);
  EXPECT_TRUE(cluster.divergent_keys().empty());
  EXPECT_TRUE(cluster.checker()->violations().empty());
}

TEST(FaultInjectorTest, HeartbeatLossStallsRemoteVersionVectors) {
  SimCluster cluster(small_cluster(SystemKind::kPocc));
  FaultEvent e = event_at(FaultKind::kHeartbeatLoss, 10'000, 150'000);
  e.node = NodeId{0, 0};
  FaultInjector inj(cluster, plan_of({e}, 300'000));
  inj.arm();
  cluster.run_for(30'000);
  EXPECT_TRUE(cluster.network().heartbeats_suppressed(NodeId{0, 0}));

  // With dc0/p0 idle (no PUTs) and its heartbeats destroyed, the remote
  // replicas' VV[0] freezes while the suppression lasts.
  const Timestamp frozen =
      cluster.engine(NodeId{1, 0}).version_vector()[0];
  cluster.run_for(50'000);
  EXPECT_EQ(cluster.engine(NodeId{1, 0}).version_vector()[0], frozen);
  EXPECT_GT(cluster.network().stats().dropped_messages, 0u);

  cluster.run_for(100'000);  // suppression lifted at 160 ms
  EXPECT_FALSE(cluster.network().heartbeats_suppressed(NodeId{0, 0}));
  cluster.run_for(20'000);
  EXPECT_GT(cluster.engine(NodeId{1, 0}).version_vector()[0], frozen);
}

TEST(FaultInjectorTest, ClockSkewRampAppliesBoundedSlewAndUnwindsDrift) {
  SimCluster cluster(small_cluster(SystemKind::kPocc));
  FaultEvent e = event_at(FaultKind::kClockSkewRamp, 20'000, 80'000);
  e.node = NodeId{1, 1};
  e.skew_delta_us = 12'000;
  e.drift_delta_ppm = 40.0;
  FaultInjector inj(cluster, plan_of({e}, 300'000));
  inj.arm();

  const double drift_before = cluster.clock_at(NodeId{1, 1}).drift_ppm();
  const Timestamp offset_before = cluster.clock_at(NodeId{1, 1}).offset_us();
  cluster.run_for(50'000);  // mid-window: drift applied, slew partial
  EXPECT_DOUBLE_EQ(cluster.clock_at(NodeId{1, 1}).drift_ppm(),
                   drift_before + 40.0);
  cluster.run_for(60'000);  // window over
  EXPECT_DOUBLE_EQ(cluster.clock_at(NodeId{1, 1}).drift_ppm(), drift_before);
  EXPECT_EQ(cluster.clock_at(NodeId{1, 1}).offset_us(),
            offset_before + 12'000);
  EXPECT_TRUE(inj.all_cleared());
}

// HA-POCC end-to-end failover under an injector-driven partition: sessions
// blocked across the cut are closed, clients fall back to the pessimistic
// protocol, and promotion happens after heal (§III-B).
TEST(FaultInjectorTest, HaFailoverUnderInjectedPartition) {
  SimClusterConfig cfg = small_cluster(SystemKind::kHaPocc, 21);
  cfg.protocol.block_timeout_us = 40'000;
  cfg.protocol.ha_stabilization_interval_us = 20'000;
  SimCluster cluster(cfg);
  FaultEvent e = event_at(FaultKind::kPartition, 100'000, 200'000);
  e.dc_a = 0;
  e.dc_b = 1;
  FaultInjector inj(cluster, plan_of({e}, 400'000));
  inj.arm();

  workload::WorkloadConfig wl;
  wl.pattern = workload::Pattern::kGetPut;
  wl.gets_per_put = 2;
  wl.think_time_us = 2'000;
  wl.keys_per_partition = 10;
  wl.op_timeout_us = 150'000;
  cluster.add_workload_clients(2, wl);
  cluster.begin_measurement();
  cluster.run_for(400'000);
  const cluster::ClusterMetrics m = cluster.end_measurement();

  // The partition outlasted the block timeout: some sessions were closed
  // (server side) and fell back (client side).
  EXPECT_GT(m.session_fallbacks, 0u);
  cluster.stop_clients();
  cluster.run_for(3'000'000);
  EXPECT_TRUE(cluster.checker()->violations().empty());
  EXPECT_TRUE(cluster.divergent_keys().empty());
  EXPECT_EQ(cluster.total_parked_requests(), 0u);
}

}  // namespace
}  // namespace pocc::fault
