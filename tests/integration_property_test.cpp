// Property-based sweep: every (system, seed, skew, workload) combination must
// satisfy causal consistency, the RO-TX snapshot property and convergence.
// The checker tracks exact causal pasts, so any protocol bug that leaks an
// inconsistent read in *any* of these schedules fails the suite.
#include <gtest/gtest.h>

#include <tuple>

#include "cluster/sim_cluster.hpp"

namespace pocc::cluster {
namespace {

struct PropertyCase {
  SystemKind system;
  std::uint64_t seed;
  double clock_skew_us;
  workload::Pattern pattern;
};

class CausalPropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(CausalPropertyTest, NoViolationsAndConvergence) {
  const PropertyCase& param = GetParam();

  SimClusterConfig cfg;
  cfg.topology.num_dcs = 3;
  cfg.topology.partitions_per_dc = 3;
  cfg.topology.partition_scheme = PartitionScheme::kPrefix;
  cfg.latency = LatencyConfig::uniform(200, 100);
  cfg.latency.inter_dc_base_us = {
      {0, 5'000, 11'000}, {5'000, 0, 7'000}, {11'000, 7'000, 0}};
  cfg.clock.offset_sigma_us = param.clock_skew_us;
  cfg.clock.drift_ppm_sigma = 50.0;
  cfg.system = param.system;
  cfg.seed = param.seed;
  cfg.enable_checker = true;

  SimCluster cluster(cfg);
  workload::WorkloadConfig wl;
  wl.pattern = param.pattern;
  wl.gets_per_put = 2;
  wl.tx_partitions = 3;
  wl.think_time_us = 2'000;
  wl.keys_per_partition = 15;  // heavy contention stresses the protocols
  wl.zipf_theta = 0.99;
  cluster.add_workload_clients(2, wl);

  cluster.run_for(50'000);
  cluster.begin_measurement();
  cluster.run_for(300'000);
  const ClusterMetrics m = cluster.end_measurement();
  EXPECT_GT(m.completed_ops, 0u);

  cluster.stop_clients();
  cluster.run_for(5'000'000);

  ASSERT_NE(cluster.checker(), nullptr);
  for (const auto& v : cluster.checker()->violations()) {
    ADD_FAILURE() << v;
  }
  EXPECT_TRUE(cluster.divergent_keys().empty());
  EXPECT_EQ(cluster.total_parked_requests(), 0u);
}

std::string case_name(const ::testing::TestParamInfo<PropertyCase>& info) {
  std::string n;
  switch (info.param.system) {
    case SystemKind::kPocc:
      n += "Pocc";
      break;
    case SystemKind::kCure:
      n += "Cure";
      break;
    case SystemKind::kHaPocc:
      n += "HaPocc";
      break;
    case SystemKind::kScalarPocc:
      n += "ScalarPocc";
      break;
  }
  n += info.param.pattern == workload::Pattern::kGetPut ? "GetPut" : "TxPut";
  n += "Skew" + std::to_string(static_cast<int>(info.param.clock_skew_us));
  n += "Seed" + std::to_string(info.param.seed);
  return n;
}

std::vector<PropertyCase> make_cases() {
  std::vector<PropertyCase> cases;
  const SystemKind systems[] = {SystemKind::kPocc, SystemKind::kCure,
                                SystemKind::kHaPocc,
                                SystemKind::kScalarPocc};
  const std::uint64_t seeds[] = {101, 202};
  const double skews[] = {0.0, 2'000.0};
  const workload::Pattern patterns[] = {workload::Pattern::kGetPut,
                                        workload::Pattern::kTxPut};
  for (auto sys : systems) {
    for (auto seed : seeds) {
      for (double skew : skews) {
        for (auto pat : patterns) {
          cases.push_back({sys, seed, skew, pat});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CausalPropertyTest,
                         ::testing::ValuesIn(make_cases()), case_name);

// Determinism: identical configuration and seed must reproduce the exact
// same measurement, event for event.
TEST(Determinism, SameSeedSameResults) {
  auto run_once = [] {
    SimClusterConfig cfg;
    cfg.topology.num_dcs = 3;
    cfg.topology.partitions_per_dc = 2;
    cfg.topology.partition_scheme = PartitionScheme::kPrefix;
    cfg.latency = LatencyConfig::uniform(300, 100);
    cfg.clock.offset_sigma_us = 1'000.0;
    cfg.system = SystemKind::kPocc;
    cfg.seed = 777;
    SimCluster cluster(cfg);
    workload::WorkloadConfig wl;
    wl.think_time_us = 2'000;
    wl.keys_per_partition = 20;
    cluster.add_workload_clients(2, wl);
    cluster.run_for(50'000);
    cluster.begin_measurement();
    cluster.run_for(200'000);
    const ClusterMetrics m = cluster.end_measurement();
    cluster.stop_clients();
    return std::make_tuple(m.completed_ops, m.network.messages,
                           cluster.simulator().executed_events());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Determinism, DifferentSeedsDiffer) {
  auto run_once = [](std::uint64_t seed) {
    SimClusterConfig cfg;
    cfg.topology.num_dcs = 2;
    cfg.topology.partitions_per_dc = 2;
    cfg.topology.partition_scheme = PartitionScheme::kPrefix;
    cfg.latency = LatencyConfig::uniform(300, 100);
    cfg.system = SystemKind::kPocc;
    cfg.seed = seed;
    SimCluster cluster(cfg);
    workload::WorkloadConfig wl;
    wl.think_time_us = 2'000;
    wl.keys_per_partition = 20;
    cluster.add_workload_clients(2, wl);
    cluster.run_for(200'000);
    return cluster.simulator().executed_events();
  };
  EXPECT_NE(run_once(1), run_once(2));
}

}  // namespace
}  // namespace pocc::cluster
