// Concurrency stress for the one-writer/concurrent-reader store contract
// (ctest label `concurrency`; run under ThreadSanitizer in CI).
//
// The multi-partition runtime pins each PartitionStore to one worker (the
// single writer) while other threads may sample it live through the
// shared-locked reader API, and every worker interns keys into the shared
// KeySpace concurrently. These tests hammer exactly those two boundaries and
// assert structural invariants that would break under a torn read.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "store/key_space.hpp"
#include "store/partition_store.hpp"
#include "store/version_chain.hpp"

namespace pocc::store {
namespace {

TEST(StoreConcurrency, OneWriterManyReaders) {
  PartitionStore store;
  constexpr std::uint64_t kKeys = 512;
  constexpr int kReaders = 4;

  std::vector<KeyId> keys;
  keys.reserve(kKeys);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    keys.push_back(intern_key("conc:" + std::to_string(k)));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};

  // Foreign readers: live sampling through the shared-locked API only.
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(0xBEEF + static_cast<std::uint64_t>(r));
      while (!stop.load(std::memory_order_relaxed)) {
        const KeyId key = keys[rng.uniform(kKeys)];
        store.read_chain(key, [&](const VersionChain* chain) {
          if (chain == nullptr) return;
          // Invariants that tear under a racing mutation: chains are
          // freshest-first and never empty.
          ASSERT_GT(chain->size(), 0u);
          const auto& versions = chain->versions();
          for (std::size_t i = 1; i < versions.size(); ++i) {
            ASSERT_TRUE(versions[i - 1].fresher_than(versions[i]));
          }
        });
        const StoreStats s = store.stats();
        ASSERT_GE(s.versions + s.gc_removed, s.multi_version_keys);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // The single writer: inserts and periodic GC, like a worker thread.
  Rng rng(42);
  std::uint64_t inserted = 0;
  for (int round = 0; round < 40'000; ++round) {
    Version v;
    v.key = keys[rng.uniform(kKeys)];
    v.value = "v" + std::to_string(round);
    v.sr = static_cast<DcId>(rng.uniform(3));
    v.ut = static_cast<Timestamp>(round + 1);
    v.dv = VersionVector(3);
    store.insert(std::move(v));
    ++inserted;
    if (round % 4'096 == 4'095) {
      // GC down to the freshest version of every chain.
      store.gc([](const Version&) { return true; });
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  const StoreStats s = store.stats();
  EXPECT_EQ(s.versions + s.gc_removed, inserted);
  EXPECT_GT(reads.load(), 0u);
  // Post-join, the owner API must agree with the locked stats.
  EXPECT_EQ(s.keys, store.chains().size());
}

TEST(StoreConcurrency, ConcurrentInternAndLookup) {
  // Worker threads intern overlapping key ranges (idempotence under the
  // intern mutex) while concurrently resolving ids they already own through
  // the lock-free per-id lookups.
  constexpr int kThreads = 8;
  constexpr std::uint64_t kRange = 4'000;
  KeySpace& ks = KeySpace::global();

  std::vector<std::thread> threads;
  std::vector<std::vector<KeyId>> ids(kThreads);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0x5EED + static_cast<std::uint64_t>(t));
      ids[t].reserve(kRange);
      for (std::uint64_t i = 0; i < kRange; ++i) {
        // Overlapping ranges: every key is interned by several threads.
        const std::string name =
            "ci:" + std::to_string((i * 7 + static_cast<std::uint64_t>(t)) %
                                   kRange);
        const KeyId id = ks.intern(name);
        ids[t].push_back(id);
        // Lock-free lookups on ids this thread legitimately holds.
        ASSERT_EQ(ks.name(id), name);
        ASSERT_EQ(ks.hash_of(id), ks.hash_of(id));
        const KeyId other = ids[t][rng.uniform(ids[t].size())];
        ASSERT_FALSE(ks.name(other).empty());
      }
    });
  }
  for (auto& t : threads) t.join();

  // Idempotence across threads: same string -> same id everywhere.
  for (std::uint64_t i = 0; i < kRange; ++i) {
    const std::string name = "ci:" + std::to_string(i);
    const KeyId id = ks.find(name);
    ASSERT_NE(id, kInvalidKeyId);
    for (int t = 0; t < kThreads; ++t) {
      // Every thread that interned `name` must have received `id`; verify by
      // re-interning (pure lookup now).
      ASSERT_EQ(ks.intern(name), id);
    }
  }
}

TEST(StoreConcurrency, ReadersSeeConsistentStatsDuringPurge) {
  // purge_if rewrites every chain (HA-POCC lost-update discard); foreign
  // stats sampling must never observe an intermediate count.
  PartitionStore store;
  const KeyId key = intern_key("purge:key");
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const StoreStats s = store.stats();
      ASSERT_LE(s.multi_version_keys, s.keys);
    }
  });
  Rng rng(7);
  for (int round = 0; round < 2'000; ++round) {
    for (int i = 0; i < 8; ++i) {
      Version v;
      v.key = key;
      v.ut = static_cast<Timestamp>(round * 100 + i + 1);
      v.dv = VersionVector(3);
      v.opt_origin = (i % 2) == 0;
      store.insert(std::move(v));
    }
    store.purge_if([](const Version& v) { return v.opt_origin; });
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();
}

}  // namespace
}  // namespace pocc::store
