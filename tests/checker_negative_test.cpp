// Negative-path histories for the causal-consistency checker: every class of
// violation the fuzz harness relies on must be *detected* — a silently
// broken checker would make every fuzz campaign vacuously green. Each test
// hand-crafts a history that genuinely violates causal consistency (or a
// protocol invariant) and asserts the checker flags it with the right
// violation class; paired positive variants prove the detection is the
// boundary, not noise. Complements tests/checker_test.cpp (which focuses on
// clean histories plus one example per rule).
#include <gtest/gtest.h>

#include "checker/history_checker.hpp"
#include "store/key_space.hpp"

namespace pocc::checker {
namespace {

KeyId K(const std::string& key) { return store::intern_key(key); }

class CheckerNegativeTest : public ::testing::Test {
 protected:
  CheckerNegativeTest() : chk_(3) {
    chk_.register_client(1, 0);              // optimistic POCC session, dc0
    chk_.register_client(2, 1);              // optimistic POCC session, dc1
    chk_.register_client(3, 2, /*snapshot_rdv=*/true);  // Cure-style, dc2
  }

  void put(ClientId c, const std::string& key, Timestamp ut, DcId sr,
           VersionVector dv, std::uint64_t op_id = 0) {
    proto::PutReq req;
    req.client = c;
    req.key = K(key);
    req.value = "v";
    req.dv = dv;
    req.op_id = op_id;
    chk_.on_put_issued(c, req);
    chk_.on_version_created(c, op_id, K(key), ut, sr, dv);
    proto::PutReply reply;
    reply.client = c;
    reply.key = K(key);
    reply.ut = ut;
    reply.sr = sr;
    reply.op_id = op_id;
    chk_.on_put_reply(c, reply);
  }

  void get(ClientId c, const std::string& key, Timestamp ut, DcId sr,
           VersionVector dv, bool found = true) {
    proto::GetReq req;
    req.client = c;
    req.key = K(key);
    req.rdv = rdv_of(c);
    chk_.on_get_issued(c, req);
    proto::GetReply r;
    r.client = c;
    r.item.key = K(key);
    r.item.found = found;
    r.item.ut = ut;
    r.item.sr = sr;
    r.item.dv = std::move(dv);
    chk_.on_get_reply(c, r);
  }

  void get_initial(ClientId c, const std::string& key) {
    get(c, key, 0, 0, VersionVector(3), /*found=*/false);
  }

  /// The session RDV mirror the checker expects on the wire (kept in lockstep
  /// manually: these tests replay Algorithm 1 faithfully except where a
  /// violation is the point).
  VersionVector rdv_of(ClientId c) {
    auto it = rdvs_.find(c);
    return it == rdvs_.end() ? VersionVector(3) : it->second;
  }
  void absorb_rdv(ClientId c, const VersionVector& item_dv, DcId sr,
                  Timestamp ut, bool snapshot) {
    auto [it, unused] = rdvs_.try_emplace(c, VersionVector(3));
    it->second.merge_max(item_dv);
    if (snapshot) it->second.raise(sr, ut);
  }

  [[nodiscard]] bool has_violation(const std::string& needle) const {
    for (const std::string& v : chk_.violations()) {
      if (v.find(needle) != std::string::npos) return true;
    }
    return false;
  }

  HistoryChecker chk_;
  std::unordered_map<ClientId, VersionVector> rdvs_;
};

// --- read-your-writes -----------------------------------------------------

TEST_F(CheckerNegativeTest, ReadYourWritesLostWriteDetected) {
  put(1, "k", 100, 0, VersionVector(3));
  // The same session then reads the key as if the write never happened.
  get_initial(1, "k");
  EXPECT_TRUE(has_violation("causal GET rule"));
}

TEST_F(CheckerNegativeTest, ReadYourWritesOlderConcurrentVersionDetected) {
  put(2, "k", 90, 1, VersionVector(3));  // a concurrent remote write
  put(1, "k", 100, 0, VersionVector(3));
  // Client 1 is served the remote version that LWW-loses to its own write.
  get(1, "k", 90, 1, VersionVector(3));
  EXPECT_TRUE(has_violation("causal GET rule"));
}

// --- monotonic reads ------------------------------------------------------

TEST_F(CheckerNegativeTest, MonotonicReadsRegressionDetected) {
  put(2, "k", 200, 1, VersionVector(3));
  put(2, "k", 300, 1, VersionVector{0, 200, 0});
  get(1, "k", 300, 1, VersionVector{0, 200, 0});  // fresh read
  absorb_rdv(1, VersionVector{0, 200, 0}, 1, 300, false);
  get(1, "k", 200, 1, VersionVector(3));  // regressed read
  EXPECT_TRUE(has_violation("causal GET rule"));
}

TEST_F(CheckerNegativeTest, RereadingSameVersionIsNotARegression) {
  put(2, "k", 200, 1, VersionVector(3));
  get(1, "k", 200, 1, VersionVector(3));
  get(1, "k", 200, 1, VersionVector(3));  // same version again: fine
  EXPECT_TRUE(chk_.violations().empty());
}

// --- causal order across DCs (writes-follow-reads chains) ----------------

TEST_F(CheckerNegativeTest, CrossDcCausalChainViolationDetected) {
  // dc1: client 2 writes x, reads it, then writes y (y causally follows x).
  put(2, "x", 100, 1, VersionVector(3));
  get(2, "x", 100, 1, VersionVector(3));
  put(2, "y", 150, 1, VersionVector{0, 100, 0});
  // dc2: the Cure-style client reads y (absorbing the chain), so a
  // subsequent read of x must return x@100 or fresher — serving the initial
  // version means dc2 applied y before its dependency x: causal-order
  // violation across DCs.
  get(3, "y", 150, 1, VersionVector{0, 100, 0});
  absorb_rdv(3, VersionVector{0, 100, 0}, 1, 150, true);
  EXPECT_TRUE(chk_.violations().empty());  // so far, a clean history
  get_initial(3, "x");
  EXPECT_TRUE(has_violation("causal GET rule"));
}

TEST_F(CheckerNegativeTest, ThreeHopCrossDcChainDetected) {
  // x@dc0 -> read by dc1 writer -> y@dc1 -> read by dc2 writer -> z@dc2.
  put(1, "x", 100, 0, VersionVector(3));
  get(2, "x", 100, 0, VersionVector(3));
  absorb_rdv(2, VersionVector(3), 0, 100, false);
  put(2, "y", 150, 1, VersionVector{100, 0, 0});
  get(3, "y", 150, 1, VersionVector{100, 0, 0});
  absorb_rdv(3, VersionVector{100, 0, 0}, 1, 150, true);
  put(3, "z", 200, 2, VersionVector{100, 150, 0});

  // A fourth client reads z, then the *middle* of the chain regresses.
  chk_.register_client(4, 0);
  get(4, "z", 200, 2, VersionVector{100, 150, 0});
  absorb_rdv(4, VersionVector{100, 150, 0}, 2, 200, false);
  get_initial(4, "y");
  EXPECT_TRUE(has_violation("causal GET rule"));
}

// --- RO-TX snapshot -------------------------------------------------------

TEST_F(CheckerNegativeTest, TxReturningStaleItemAgainstOwnPastDetected) {
  put(1, "a", 100, 0, VersionVector(3));
  proto::RoTxReq req;
  req.client = 1;
  req.keys = {K("a")};
  req.rdv = VersionVector{100, 0, 0};  // client DV after its own write
  chk_.on_tx_issued(1, req);
  proto::RoTxReply reply;
  reply.client = 1;
  proto::ReadItem a;
  a.key = K("a");
  a.found = false;  // the client's own write is missing from the snapshot
  a.dv = VersionVector(3);
  reply.items = {a};
  chk_.on_tx_reply(1, reply);
  EXPECT_TRUE(has_violation("causal GET rule"));
}

TEST_F(CheckerNegativeTest, TxFractturedSnapshotAcrossPartitionsDetected) {
  // Writer chain on dc1: x@100, then y@200 whose past holds x@100.
  put(2, "0:x", 100, 1, VersionVector(3));
  get(2, "0:x", 100, 1, VersionVector(3));
  absorb_rdv(2, VersionVector(3), 1, 100, false);
  put(2, "1:y", 200, 1, VersionVector{0, 100, 0});
  // A transaction returns fresh y but the initial version of x: the two
  // slices disagree about the cut — fractured snapshot.
  proto::RoTxReq req;
  req.client = 1;
  req.keys = {K("0:x"), K("1:y")};
  req.rdv = VersionVector(3);
  chk_.on_tx_issued(1, req);
  proto::RoTxReply reply;
  reply.client = 1;
  proto::ReadItem x;
  x.key = K("0:x");
  x.found = false;
  x.dv = VersionVector(3);
  proto::ReadItem y;
  y.key = K("1:y");
  y.found = true;
  y.ut = 200;
  y.sr = 1;
  y.dv = VersionVector{0, 100, 0};
  reply.items = {x, y};
  chk_.on_tx_reply(1, reply);
  EXPECT_TRUE(has_violation("RO-TX snapshot"));
}

// --- Algorithm 1 conformance ---------------------------------------------

TEST_F(CheckerNegativeTest, PutCarryingForeignDvDetected) {
  proto::PutReq req;
  req.client = 1;
  req.key = K("k");
  req.value = "v";
  req.dv = VersionVector{7, 7, 7};  // the session never read anything
  chk_.on_put_issued(1, req);
  EXPECT_TRUE(has_violation("Alg1"));
}

TEST_F(CheckerNegativeTest, TxCarryingStaleDvDetected) {
  put(1, "k", 100, 0, VersionVector(3));  // DV is now [100,0,0]
  proto::RoTxReq req;
  req.client = 1;
  req.keys = {K("k")};
  req.rdv = VersionVector(3);  // must carry the DV, not zeros
  chk_.on_tx_issued(1, req);
  EXPECT_TRUE(has_violation("Alg1"));
}

// --- Proposition 2 --------------------------------------------------------

TEST_F(CheckerNegativeTest, Prop2EqualityIsAViolation) {
  // ut must *strictly* exceed every dependency entry; equality is the bug
  // boundary (a server using >= instead of > would produce exactly this).
  chk_.on_version_created(1, 0, K("k"), 150, 0, VersionVector{0, 150, 0});
  EXPECT_TRUE(has_violation("Prop2"));
}

TEST_F(CheckerNegativeTest, Prop2StrictDominationIsClean) {
  chk_.on_version_created(1, 0, K("k2"), 151, 0, VersionVector{0, 150, 0});
  EXPECT_TRUE(chk_.violations().empty());
}

// --- unregistered versions (torn observer wiring) -------------------------

TEST_F(CheckerNegativeTest, ReadOfUnregisteredVersionDetected) {
  // A reply naming a version no server ever reported: either the observer
  // wiring is torn or the server fabricated data. Both must surface.
  get(1, "ghost", 500, 1, VersionVector(3));
  EXPECT_TRUE(has_violation("unregistered version"));
}

// --- session reset / promotion edges --------------------------------------

TEST_F(CheckerNegativeTest, ViolationAfterPromotionStillDetected) {
  // After an HA reset the old past is forgiven — but a *new* past built by
  // the pessimistic session must be enforced again after promotion.
  put(1, "k", 100, 0, VersionVector(3));
  chk_.on_session_reset(1);
  rdvs_.erase(1);
  get(1, "k", 100, 0, VersionVector(3));  // re-read under the new session
  absorb_rdv(1, VersionVector(3), 0, 100, true);  // pessimistic: snapshot rdv
  chk_.on_session_promoted(1);
  get_initial(1, "k");  // regression after promotion
  EXPECT_TRUE(has_violation("causal GET rule"));
}

TEST_F(CheckerNegativeTest, ResetForgivesButOnlyOnce) {
  put(1, "k", 100, 0, VersionVector(3));
  chk_.on_session_reset(1);
  rdvs_.erase(1);
  get_initial(1, "k");  // forgiven: pre-reset write forgotten
  EXPECT_TRUE(chk_.violations().empty());
  get(1, "k", 100, 0, VersionVector(3));  // new session reads k@100
  absorb_rdv(1, VersionVector(3), 0, 100, true);
  get_initial(1, "k");  // but a regression within the new session is real
  EXPECT_TRUE(has_violation("causal GET rule"));
}

// --- no vacuous passes ----------------------------------------------------

TEST_F(CheckerNegativeTest, EveryCheckClassCounts) {
  // checks_performed must move for each rule family, so a no-op checker
  // cannot slip through a green fuzz campaign.
  const std::uint64_t c0 = chk_.checks_performed();
  put(1, "k", 100, 0, VersionVector(3));  // Prop2 + Alg1(put)
  EXPECT_GT(chk_.checks_performed(), c0);
  const std::uint64_t c1 = chk_.checks_performed();
  get(1, "k", 100, 0, VersionVector(3));  // Alg1(get) + causal rule
  EXPECT_GT(chk_.checks_performed(), c1);
  EXPECT_EQ(chk_.versions_registered(), 1u);
}

}  // namespace
}  // namespace pocc::checker
