// Deterministic RNG: seed reproducibility, stream splitting and uniformity
// of the primitive samplers.
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace pocc {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(7);
  Rng child = a.split();
  // The child stream must not replay the parent stream.
  Rng parent_copy(7);
  (void)parent_copy.next();  // same position as `a`
  bool all_equal = true;
  for (int i = 0; i < 64; ++i) {
    if (child.next() != parent_copy.next()) all_equal = false;
  }
  EXPECT_FALSE(all_equal);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Rng, UniformRespectsBound) {
  Rng r(11);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(r.uniform(bound), bound);
    }
  }
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng r(5);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[r.uniform(kBuckets)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(Rng, UniformRangeInclusive) {
  Rng r(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = r.uniform_range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceEdgeCases) {
  Rng r(17);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
  EXPECT_FALSE(r.chance(-1.0));
  EXPECT_TRUE(r.chance(2.0));
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng r(19);
  const double mean = 25.0;
  double sum = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) sum += r.exponential(mean);
  EXPECT_NEAR(sum / kSamples, mean, mean * 0.03);
}

TEST(Rng, NormalHasRequestedMoments) {
  Rng r(23);
  const double mu = 5.0;
  const double sigma = 2.0;
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const double v = r.normal(mu, sigma);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kSamples;
  const double var = sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, mu, 0.05);
  EXPECT_NEAR(std::sqrt(var), sigma, 0.05);
}

}  // namespace
}  // namespace pocc
