// Client-history replay: the dependency-aware scheduler must tolerate
// arbitrary cross-session interleavings of the recorded logs (a reader's
// reply can be logged before the writer's), detect incomplete histories, and
// still surface real consistency violations.
#include "checker/client_history.hpp"

#include <gtest/gtest.h>

#include <string>

#include "checker/history_checker.hpp"
#include "store/key_space.hpp"

namespace pocc::checker {
namespace {

constexpr std::uint32_t kDcs = 2;

proto::PutReq put_req(ClientId c, KeyId key, const std::string& value,
                      VersionVector dv, std::uint64_t op) {
  proto::PutReq req;
  req.client = c;
  req.key = key;
  req.value = value;
  req.dv = std::move(dv);
  req.op_id = op;
  return req;
}

proto::PutReply put_reply(ClientId c, KeyId key, Timestamp ut, DcId sr,
                          std::uint64_t op) {
  proto::PutReply rep;
  rep.client = c;
  rep.key = key;
  rep.ut = ut;
  rep.sr = sr;
  rep.op_id = op;
  return rep;
}

proto::GetReq get_req(ClientId c, KeyId key, VersionVector rdv,
                      std::uint64_t op) {
  proto::GetReq req;
  req.client = c;
  req.key = key;
  req.rdv = std::move(rdv);
  req.op_id = op;
  return req;
}

proto::GetReply get_reply(ClientId c, KeyId key, bool found, Timestamp ut,
                          DcId sr, VersionVector dv, std::uint64_t op) {
  proto::GetReply rep;
  rep.client = c;
  rep.item.key = key;
  rep.item.found = found;
  rep.item.value = found ? "v" : "";
  rep.item.ut = ut;
  rep.item.sr = sr;
  rep.item.dv = std::move(dv);
  rep.op_id = op;
  return rep;
}

TEST(ClientHistory, ReaderLoggedBeforeWriterStillReplays) {
  // Session 2 read the version session 1 wrote, and session 2 sits FIRST in
  // the vector: the scheduler must stall its reply until the writer's
  // PutReply registered the version.
  const KeyId k = store::intern_key("hist:k");
  SessionHistory writer;
  writer.client = 1;
  writer.dc = 0;
  writer.events.push_back(put_req(1, k, "v", VersionVector(kDcs), 1));
  writer.events.push_back(put_reply(1, k, 100, 0, 1));

  SessionHistory reader;
  reader.client = 2;
  reader.dc = 1;
  reader.events.push_back(get_req(2, k, VersionVector(kDcs), 1));
  reader.events.push_back(get_reply(2, k, true, 100, 0, VersionVector(kDcs), 1));

  HistoryChecker checker(kDcs);
  const auto result = replay_history({reader, writer}, checker);
  EXPECT_TRUE(result.complete) << result.error;
  EXPECT_EQ(result.events_replayed, 4u);
  EXPECT_TRUE(checker.violations().empty())
      << checker.violations().front();
  EXPECT_EQ(checker.versions_registered(), 1u);
}

TEST(ClientHistory, ReadOfUnwrittenVersionReportsIncomplete) {
  // A read returned a version no recorded session wrote (missing writer log
  // or an invented version): replay must wedge and say so, not loop.
  const KeyId k = store::intern_key("hist:orphan");
  SessionHistory reader;
  reader.client = 7;
  reader.dc = 0;
  reader.events.push_back(get_req(7, k, VersionVector(kDcs), 1));
  reader.events.push_back(
      get_reply(7, k, true, 999, 1, VersionVector(kDcs), 1));

  HistoryChecker checker(kDcs);
  const auto result = replay_history({reader}, checker);
  EXPECT_FALSE(result.complete);
  EXPECT_NE(result.error.find("stuck"), std::string::npos);
}

TEST(ClientHistory, ReadYourWritesViolationSurvivesReplay) {
  // The writer's own later GET returns "not found": the causal GET rule is
  // violated and the checker must say so after replay.
  const KeyId k = store::intern_key("hist:ryw");
  SessionHistory s;
  s.client = 3;
  s.dc = 0;
  s.events.push_back(put_req(3, k, "v", VersionVector(kDcs), 1));
  s.events.push_back(put_reply(3, k, 50, 0, 1));
  s.events.push_back(get_req(3, k, VersionVector(kDcs), 2));
  s.events.push_back(get_reply(3, k, false, 0, 0, VersionVector(), 2));

  HistoryChecker checker(kDcs);
  const auto result = replay_history({s}, checker);
  EXPECT_TRUE(result.complete) << result.error;
  ASSERT_FALSE(checker.violations().empty());
  EXPECT_NE(checker.violations().front().find("causal GET rule"),
            std::string::npos);
}

TEST(ClientHistory, SessionResetDropsCausalPast) {
  // After a SessionReset (HA-POCC §III-B) the fresh session may legally miss
  // items the old session wrote — no violation.
  const KeyId k = store::intern_key("hist:reset");
  SessionHistory s;
  s.client = 4;
  s.dc = 0;
  s.events.push_back(put_req(4, k, "v", VersionVector(kDcs), 1));
  s.events.push_back(put_reply(4, k, 70, 0, 1));
  s.events.push_back(SessionReset{});
  s.events.push_back(get_req(4, k, VersionVector(kDcs), 2));
  s.events.push_back(get_reply(4, k, false, 0, 0, VersionVector(), 2));

  HistoryChecker checker(kDcs);
  const auto result = replay_history({s}, checker);
  EXPECT_TRUE(result.complete) << result.error;
  EXPECT_TRUE(checker.violations().empty())
      << checker.violations().front();
}

}  // namespace
}  // namespace pocc::checker
