// CPU queueing station: FIFO service, multi-core parallelism,
// work-dependent service times and utilization accounting.
#include "sim/cpu_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pocc::sim {
namespace {

TEST(CpuQueue, SingleCoreRunsJobsSequentially) {
  Simulator sim;
  CpuQueue cpu(sim, 1);
  std::vector<Timestamp> starts;
  for (int i = 0; i < 3; ++i) {
    cpu.submit([&starts, &sim] {
      starts.push_back(sim.now());
      return Duration{100};
    });
  }
  sim.run_all();
  // Jobs start back-to-back: 0, 100, 200.
  ASSERT_EQ(starts.size(), 3u);
  EXPECT_EQ(starts[0], 0);
  EXPECT_EQ(starts[1], 100);
  EXPECT_EQ(starts[2], 200);
}

TEST(CpuQueue, TwoCoresRunInParallel) {
  Simulator sim;
  CpuQueue cpu(sim, 2);
  std::vector<Timestamp> starts;
  for (int i = 0; i < 4; ++i) {
    cpu.submit([&starts, &sim] {
      starts.push_back(sim.now());
      return Duration{100};
    });
  }
  sim.run_all();
  ASSERT_EQ(starts.size(), 4u);
  EXPECT_EQ(starts[0], 0);
  EXPECT_EQ(starts[1], 0);
  EXPECT_EQ(starts[2], 100);
  EXPECT_EQ(starts[3], 100);
}

TEST(CpuQueue, WorkDependentServiceTime) {
  Simulator sim;
  CpuQueue cpu(sim, 1);
  Timestamp second_start = -1;
  cpu.submit([] { return Duration{250}; });
  cpu.submit([&] {
    second_start = sim.now();
    return Duration{1};
  });
  sim.run_all();
  EXPECT_EQ(second_start, 250);
}

TEST(CpuQueue, JobsSubmittedLaterQueueBehindBusyCore) {
  Simulator sim;
  CpuQueue cpu(sim, 1);
  Timestamp b_start = -1;
  cpu.submit([] { return Duration{100}; });
  sim.schedule(50, [&] {
    cpu.submit([&] {
      b_start = sim.now();
      return Duration{10};
    });
  });
  sim.run_all();
  EXPECT_EQ(b_start, 100);
}

TEST(CpuQueue, IdleCoreStartsJobImmediately) {
  Simulator sim;
  CpuQueue cpu(sim, 1);
  sim.schedule(500, [&] {
    cpu.submit([&]() -> Duration {
      EXPECT_EQ(sim.now(), 500);
      return 10;
    });
  });
  sim.run_all();
  EXPECT_EQ(cpu.jobs_executed(), 1u);
}

TEST(CpuQueue, TracksBusyTimeAndUtilization) {
  Simulator sim;
  CpuQueue cpu(sim, 1);
  cpu.submit([] { return Duration{300}; });
  cpu.submit([] { return Duration{200}; });
  sim.run_all();
  EXPECT_EQ(cpu.busy_time(), 500);
  EXPECT_DOUBLE_EQ(cpu.utilization(0, 1000), 0.5);
  EXPECT_DOUBLE_EQ(cpu.utilization(0, 500), 1.0);
}

TEST(CpuQueue, UtilizationAccountsForCores) {
  Simulator sim;
  CpuQueue cpu(sim, 2);
  cpu.submit([] { return Duration{100}; });
  cpu.submit([] { return Duration{100}; });
  sim.run_all();
  EXPECT_DOUBLE_EQ(cpu.utilization(0, 100), 1.0);
}

TEST(CpuQueue, ResetStatsClearsCounters) {
  Simulator sim;
  CpuQueue cpu(sim, 1);
  cpu.submit([] { return Duration{100}; });
  sim.run_all();
  cpu.reset_stats();
  EXPECT_EQ(cpu.busy_time(), 0);
  EXPECT_EQ(cpu.jobs_executed(), 0u);
}

TEST(CpuQueue, ZeroServiceTimeJobsComplete) {
  Simulator sim;
  CpuQueue cpu(sim, 1);
  int done = 0;
  for (int i = 0; i < 10; ++i) {
    cpu.submit([&done] {
      ++done;
      return Duration{0};
    });
  }
  sim.run_all();
  EXPECT_EQ(done, 10);
}

TEST(CpuQueue, QueueLengthObservable) {
  Simulator sim;
  CpuQueue cpu(sim, 1);
  cpu.submit([] { return Duration{100}; });
  cpu.submit([] { return Duration{100}; });
  cpu.submit([] { return Duration{100}; });
  EXPECT_EQ(cpu.queue_length(), 2u);  // one running, two waiting
  sim.run_all();
  EXPECT_EQ(cpu.queue_length(), 0u);
}

}  // namespace
}  // namespace pocc::sim
