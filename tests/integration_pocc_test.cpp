// End-to-end POCC integration: mixed workloads on a simulated geo-replicated
// cluster, verified by the causal-consistency checker, with convergence and
// drain checks.
#include <gtest/gtest.h>

#include "cluster/sim_cluster.hpp"

namespace pocc::cluster {
namespace {

SimClusterConfig base_config(std::uint64_t seed) {
  SimClusterConfig cfg;
  cfg.topology.num_dcs = 3;
  cfg.topology.partitions_per_dc = 4;
  cfg.topology.partition_scheme = PartitionScheme::kPrefix;
  cfg.latency = LatencyConfig::uniform(300, 50);
  cfg.latency.inter_dc_base_us = {
      {0, 8'000, 14'000}, {8'000, 0, 9'000}, {14'000, 9'000, 0}};
  cfg.clock.offset_sigma_us = 500.0;
  cfg.clock.drift_ppm_sigma = 20.0;
  cfg.system = SystemKind::kPocc;
  cfg.seed = seed;
  cfg.enable_checker = true;
  return cfg;
}

void run_and_verify(SimCluster& cluster, Duration run_us) {
  cluster.run_for(50'000);
  cluster.begin_measurement();
  cluster.run_for(run_us);
  const ClusterMetrics m = cluster.end_measurement();
  EXPECT_GT(m.completed_ops, 0u);

  cluster.stop_clients();
  cluster.run_for(5'000'000);  // drain: all replication settles

  ASSERT_NE(cluster.checker(), nullptr);
  for (const auto& v : cluster.checker()->violations()) {
    ADD_FAILURE() << v;
  }
  const auto divergent = cluster.divergent_keys();
  EXPECT_TRUE(divergent.empty())
      << divergent.size() << " divergent keys, first: " << divergent.front();
  EXPECT_EQ(cluster.total_parked_requests(), 0u);
}

TEST(IntegrationPocc, GetPutWorkloadIsCausallyConsistent) {
  SimCluster cluster(base_config(11));
  workload::WorkloadConfig wl;
  wl.pattern = workload::Pattern::kGetPut;
  wl.gets_per_put = 4;
  wl.think_time_us = 3'000;
  wl.keys_per_partition = 40;  // small key space => heavy conflicts
  wl.zipf_theta = 0.99;
  cluster.add_workload_clients(2, wl);
  run_and_verify(cluster, 400'000);
}

TEST(IntegrationPocc, WriteHeavyWorkloadIsCausallyConsistent) {
  SimCluster cluster(base_config(12));
  workload::WorkloadConfig wl;
  wl.pattern = workload::Pattern::kGetPut;
  wl.gets_per_put = 1;  // 1:1 GET:PUT — the paper's most write-intensive mix
  wl.think_time_us = 2'000;
  wl.keys_per_partition = 20;
  cluster.add_workload_clients(2, wl);
  run_and_verify(cluster, 400'000);
}

TEST(IntegrationPocc, TransactionalWorkloadIsCausallyConsistent) {
  SimCluster cluster(base_config(13));
  workload::WorkloadConfig wl;
  wl.pattern = workload::Pattern::kTxPut;
  wl.tx_partitions = 3;
  wl.think_time_us = 3'000;
  wl.keys_per_partition = 30;
  cluster.add_workload_clients(2, wl);
  run_and_verify(cluster, 400'000);
}

TEST(IntegrationPocc, PoccGetsAreNeverStale) {
  // §V-B: POCC always returns the freshest received version on GETs.
  SimCluster cluster(base_config(14));
  workload::WorkloadConfig wl;
  wl.pattern = workload::Pattern::kGetPut;
  wl.gets_per_put = 4;
  wl.think_time_us = 3'000;
  wl.keys_per_partition = 40;
  cluster.add_workload_clients(2, wl);
  cluster.run_for(50'000);
  cluster.begin_measurement();
  cluster.run_for(300'000);
  const ClusterMetrics m = cluster.end_measurement();
  EXPECT_EQ(m.staleness.old_reads, 0u);
  EXPECT_EQ(m.staleness.unmerged_reads, 0u);
  cluster.stop_clients();
  cluster.run_for(1'000'000);
}

TEST(IntegrationPocc, ClockSkewDoesNotBreakConsistency) {
  // "The correctness of our protocol does not depend on the synchronization
  // precision" (§IV) — crank the skew way up.
  SimClusterConfig cfg = base_config(15);
  cfg.clock.offset_sigma_us = 50'000.0;  // 50 ms offsets
  cfg.clock.drift_ppm_sigma = 200.0;
  SimCluster cluster(cfg);
  workload::WorkloadConfig wl;
  wl.pattern = workload::Pattern::kGetPut;
  wl.gets_per_put = 2;
  wl.think_time_us = 3'000;
  wl.keys_per_partition = 30;
  cluster.add_workload_clients(2, wl);
  run_and_verify(cluster, 400'000);
}

TEST(IntegrationPocc, GarbageCollectionPreservesConsistency) {
  SimClusterConfig cfg = base_config(16);
  cfg.protocol.gc_interval_us = 20'000;  // aggressive GC
  SimCluster cluster(cfg);
  workload::WorkloadConfig wl;
  wl.pattern = workload::Pattern::kGetPut;
  wl.gets_per_put = 2;
  wl.think_time_us = 2'000;
  wl.keys_per_partition = 10;  // few keys -> long chains -> GC pressure
  cluster.add_workload_clients(2, wl);
  run_and_verify(cluster, 500'000);
  // GC must actually have removed something under this churn.
  std::uint64_t gc_removed = 0;
  for (DcId dc = 0; dc < 3; ++dc) {
    for (PartitionId p = 0; p < 4; ++p) {
      gc_removed +=
          cluster.engine(NodeId{dc, p}).partition_store().stats().gc_removed;
    }
  }
  EXPECT_GT(gc_removed, 0u);
}

}  // namespace
}  // namespace pocc::cluster
