// Version records and chains: LWW order (timestamp, then source replica),
// freshest-first insertion and stable-version lookup.
#include "store/version_chain.hpp"

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "store/key_space.hpp"

namespace pocc::store {
namespace {

Version make_version(Timestamp ut, DcId sr, std::string value = "v",
                     VersionVector dv = VersionVector(3)) {
  Version v;
  v.key = intern_key("k");
  v.value = std::move(value);
  v.sr = sr;
  v.ut = ut;
  v.dv = std::move(dv);
  return v;
}

TEST(Version, LwwOrderPrefersHigherTimestamp) {
  EXPECT_TRUE(make_version(10, 0).fresher_than(make_version(5, 0)));
  EXPECT_FALSE(make_version(5, 0).fresher_than(make_version(10, 0)));
}

TEST(Version, LwwTieBreaksOnLowestSourceReplica) {
  // §IV-B: "Ties are broken by looking at the source replica id (lowest wins)."
  EXPECT_TRUE(make_version(10, 0).fresher_than(make_version(10, 2)));
  EXPECT_FALSE(make_version(10, 2).fresher_than(make_version(10, 0)));
}

TEST(Version, CommitVectorRaisesOwnEntry) {
  Version v = make_version(100, 1, "v", VersionVector{50, 60, 70});
  const VersionVector cv = v.commit_vector();
  EXPECT_EQ(cv, (VersionVector{50, 100, 70}));
}

TEST(Version, InitialVersionHasNoDeps) {
  const Version v = initial_version(intern_key("x"), 3);
  EXPECT_EQ(v.ut, 0);
  EXPECT_EQ(v.sr, 0u);
  EXPECT_EQ(v.dv, VersionVector(3));
}

TEST(VersionChain, InsertKeepsFreshestFirst) {
  VersionChain c;
  c.insert(make_version(10, 0));
  c.insert(make_version(30, 0));
  c.insert(make_version(20, 0));
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.versions()[0].ut, 30);
  EXPECT_EQ(c.versions()[1].ut, 20);
  EXPECT_EQ(c.versions()[2].ut, 10);
  EXPECT_EQ(c.freshest()->ut, 30);
}

TEST(VersionChain, InsertAtHeadReturnsZero) {
  VersionChain c;
  EXPECT_EQ(c.insert(make_version(10, 0)), 0u);
  EXPECT_EQ(c.insert(make_version(20, 0)), 0u);
  EXPECT_EQ(c.insert(make_version(15, 0)), 1u);
}

TEST(VersionChain, DuplicateInsertIsIdempotent) {
  VersionChain c;
  c.insert(make_version(10, 1));
  c.insert(make_version(10, 1));
  EXPECT_EQ(c.size(), 1u);
}

TEST(VersionChain, ConcurrentSameTimestampOrdersBySr) {
  VersionChain c;
  c.insert(make_version(10, 2));
  c.insert(make_version(10, 0));
  c.insert(make_version(10, 1));
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.versions()[0].sr, 0u);
  EXPECT_EQ(c.versions()[1].sr, 1u);
  EXPECT_EQ(c.versions()[2].sr, 2u);
}

TEST(VersionChain, EmptyChain) {
  VersionChain c;
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.freshest(), nullptr);
  const auto r = c.freshest_where([](const Version&) { return true; });
  EXPECT_EQ(r.version, nullptr);
  EXPECT_EQ(r.hops, 0u);
}

TEST(VersionChain, FreshestWhereSkipsInvisible) {
  VersionChain c;
  c.insert(make_version(10, 0, "old"));
  c.insert(make_version(20, 0, "mid"));
  c.insert(make_version(30, 0, "new"));
  const auto r = c.freshest_where(
      [](const Version& v) { return v.ut <= 20; });
  ASSERT_NE(r.version, nullptr);
  EXPECT_EQ(r.version->value, "mid");
  EXPECT_EQ(r.hops, 2u);     // inspected 30 then 20
  EXPECT_EQ(r.fresher, 1u);  // one fresher (invisible) version
}

TEST(VersionChain, FreshestWhereNoneVisible) {
  VersionChain c;
  c.insert(make_version(10, 0));
  const auto r = c.freshest_where([](const Version&) { return false; });
  EXPECT_EQ(r.version, nullptr);
  EXPECT_EQ(r.fresher, 1u);
}

TEST(VersionChain, CountUnstable) {
  VersionChain c;
  c.insert(make_version(10, 0));
  c.insert(make_version(20, 0));
  c.insert(make_version(30, 0));
  EXPECT_EQ(c.count_unstable([](const Version& v) { return v.ut <= 10; }), 2u);
  EXPECT_EQ(c.count_unstable([](const Version&) { return true; }), 0u);
}

TEST(VersionChain, GcKeepsFloorAndEverythingFresher) {
  VersionChain c;
  for (Timestamp t : {10, 20, 30, 40}) c.insert(make_version(t, 0));
  // Floor: first version (freshest-to-oldest) with ut <= 30 is 30.
  const std::size_t removed = c.gc([](const Version& v) { return v.ut <= 30; });
  EXPECT_EQ(removed, 2u);  // 20 and 10 removed
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.versions()[0].ut, 40);
  EXPECT_EQ(c.versions()[1].ut, 30);
}

TEST(VersionChain, GcNoFloorKeepsEverything) {
  VersionChain c;
  c.insert(make_version(10, 0));
  c.insert(make_version(20, 0));
  EXPECT_EQ(c.gc([](const Version&) { return false; }), 0u);
  EXPECT_EQ(c.size(), 2u);
}

TEST(VersionChain, EraseIf) {
  VersionChain c;
  for (Timestamp t : {10, 20, 30}) c.insert(make_version(t, 0));
  EXPECT_EQ(c.erase_if([](const Version& v) { return v.ut == 20; }), 1u);
  EXPECT_EQ(c.size(), 2u);
}

// Fuzz: arbitrary insertion orders (with duplicates and LWW ties) must always
// yield a strictly-descending, duplicate-free chain.
class VersionChainFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(VersionChainFuzzTest, InsertionOrderIndependence) {
  std::uint64_t s = static_cast<std::uint64_t>(GetParam()) * 0x9e3779b9u + 1;
  auto next = [&s] {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };
  VersionChain c;
  std::set<std::pair<Timestamp, DcId>> inserted;
  for (int i = 0; i < 300; ++i) {
    const auto ut = static_cast<Timestamp>(next() % 50);  // force collisions
    const auto sr = static_cast<DcId>(next() % 3);
    c.insert(make_version(ut, sr));
    inserted.insert({ut, sr});
  }
  ASSERT_EQ(c.size(), inserted.size());  // duplicates ignored
  for (std::size_t i = 1; i < c.versions().size(); ++i) {
    // Strict LWW descending order, no equal (ut, sr) pairs.
    EXPECT_TRUE(c.versions()[i - 1].fresher_than(c.versions()[i]))
        << "position " << i;
  }
  // The head is the LWW winner over everything inserted.
  for (const auto& [ut, sr] : inserted) {
    EXPECT_FALSE(make_version(ut, sr).fresher_than(*c.freshest()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VersionChainFuzzTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace pocc::store
