// Crash-recovery battery (ctest label `recovery`), three layers deep:
//
//  * Engine level: a PoccServer journaling to a real on-disk PartitionWal is
//    killed at randomized points mid-workload (checkpoints landing
//    mid-stream included) and rebuilt from snapshot + log; its final state
//    digest must be bit-identical to a never-crashed same-seed run.
//  * Sim level: the cluster-fuzz harness in DurabilityMode::kWal — fail-stop
//    crash plans exercise the real recovery path (engine rebuild + WAL
//    replay) under the causal checker, and seed replay stays bit-identical.
//  * Deployment level: a TcpNodeHost is crash_stopped (kill -9 equivalent:
//    unsynced WAL tail and staged frames die), restarted on the same
//    data_dir, replays its WAL, rebuilds the missed replication suffix from
//    the peer DC via the recovery handshake, and serves both old and missed
//    writes. scripts/e2e_local_cluster.sh covers the same flow across real
//    process boundaries.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "fault/fault_plan.hpp"
#include "fault/fuzz_runner.hpp"
#include "net/tcp_client.hpp"
#include "net/tcp_node_host.hpp"
#include "pocc/pocc_server.hpp"
#include "store/key_space.hpp"
#include "test_util.hpp"
#include "wal/partition_wal.hpp"
#include "wal/wal_format.hpp"

namespace pocc {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("pocc_recovery_test_" + std::to_string(::getpid())) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// ===================================================== engine level =====

/// MockContext with the WAL durability seam the runtime host provides.
class WalContext : public testutil::MockContext {
 public:
  wal::PartitionWal* wal = nullptr;
  server::DurabilityLog* durability() override { return wal; }
};

/// Digest of everything recovery must preserve: the VV and the full
/// multiversion store (same fields SimCluster::state_digest mixes).
std::uint64_t engine_digest(const server::ReplicaBase& e) {
  std::uint64_t h = 0x517cc1b727220a95ULL;
  auto mix = [&h](std::uint64_t x) { h = splitmix64(h ^ x); };
  auto mix_str = [&](const std::string& s) {
    mix(s.size());
    for (const char c : s) mix(static_cast<std::uint8_t>(c));
  };
  const VersionVector& vv = e.version_vector();
  for (std::uint32_t i = 0; i < vv.size(); ++i) {
    mix(static_cast<std::uint64_t>(vv[i]));
  }
  for (const auto& [key, chain] : e.partition_store().chains()) {
    mix_str(store::key_name(key));
    for (const store::Version& v : chain.versions()) {
      mix(static_cast<std::uint64_t>(v.ut));
      mix(v.sr);
      mix_str(v.value);
      for (std::uint32_t i = 0; i < v.dv.size(); ++i) {
        mix(static_cast<std::uint64_t>(v.dv[i]));
      }
    }
  }
  return h;
}

/// One deterministic workload event against the engine under test.
struct EngineEvent {
  NodeId from;
  proto::Message msg;
};

/// Seed-derived mixed stream: local PUTs/GETs, per-DC monotonic replicate
/// streams, heartbeats — everything the WAL must carry across a crash.
std::vector<EngineEvent> build_events(std::uint64_t seed, int count) {
  Rng rng(seed);
  std::vector<EngineEvent> events;
  Timestamp next_ut[3] = {0, 500'000, 500'000};  // remote DC clocks
  for (int i = 0; i < count; ++i) {
    const std::uint64_t kind = rng.uniform(10);
    if (kind < 4) {
      proto::PutReq r;
      r.client = 1 + static_cast<ClientId>(rng.uniform(5));
      r.op_id = static_cast<std::uint64_t>(i);
      r.key = store::intern_key("1:k" + std::to_string(rng.uniform(16)));
      r.value = "v" + std::to_string(i);
      r.dv = VersionVector(3);
      events.push_back({NodeId{0, 1}, r});
    } else if (kind < 8) {
      const DcId j = kind < 6 ? 1 : 2;
      next_ut[j] += 1 + rng.uniform(2'000);
      store::Version v;
      v.key = store::intern_key("1:r" + std::to_string(rng.uniform(16)));
      v.value = "r" + std::to_string(i);
      v.sr = j;
      v.ut = next_ut[j];
      v.dv = VersionVector(3);
      events.push_back({NodeId{j, 1}, proto::Replicate{v}});
    } else if (kind == 8) {
      const DcId j = 1 + static_cast<DcId>(rng.uniform(2));
      next_ut[j] += 1 + rng.uniform(2'000);
      events.push_back({NodeId{j, 1}, proto::Heartbeat{j, next_ut[j]}});
    } else {
      proto::GetReq r;
      r.client = 1 + static_cast<ClientId>(rng.uniform(5));
      r.op_id = static_cast<std::uint64_t>(i);
      r.key = store::intern_key("1:k" + std::to_string(rng.uniform(16)));
      r.rdv = VersionVector(3);  // never parks: parked requests are volatile
      events.push_back({NodeId{0, 1}, r});
    }
  }
  return events;
}

class EngineRecoveryTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineRecoveryTest, CrashAtRandomPointsMatchesUncrashedDigest) {
  const std::uint64_t seed = GetParam();
  const int kEvents = 400;
  const std::vector<EngineEvent> events = build_events(seed, kEvents);
  const TopologyConfig topo = testutil::test_topology();
  const ProtocolConfig protocol;
  const ServiceConfig service;

  // Reference: the same stream, never crashed, no durability at all.
  testutil::MockContext ref_ctx;
  ref_ctx.now = 1'000'000;
  PoccServer ref(NodeId{0, 1}, topo, protocol, service, ref_ctx);
  for (const EngineEvent& ev : events) {
    ref_ctx.now += 10;
    ref.handle_message(ev.from, ev.msg);
  }

  // Crashed run: group commit after every event (the host syncs per drained
  // batch), checkpoints landing mid-stream, and 4 random full crashes where
  // engine + WAL object are destroyed and rebuilt from disk.
  Rng rng(seed ^ 0xdead);
  std::vector<int> crash_at;
  for (int i = 0; i < 4; ++i) {
    crash_at.push_back(40 + static_cast<int>(rng.uniform(kEvents - 80)));
  }
  std::sort(crash_at.begin(), crash_at.end());

  const std::string dir = fresh_dir("engine_" + std::to_string(seed));
  wal::PartitionWal::Options wal_opt;
  wal_opt.checkpoint_bytes = 4096;  // several checkpoints over the run
  WalContext ctx;
  ctx.now = 1'000'000;
  auto wal = std::make_unique<wal::PartitionWal>(dir, wal_opt);
  ctx.wal = wal.get();
  auto engine =
      std::make_unique<PoccServer>(NodeId{0, 1}, topo, protocol, service, ctx);
  std::uint64_t checkpoints = 0;
  std::uint64_t crashes = 0;
  for (int i = 0; i < kEvents; ++i) {
    if (!crash_at.empty() && crash_at.front() == i) {
      crash_at.erase(crash_at.begin());
      ++crashes;
      // Fail-stop: drop the process image, reopen the directory, rebuild.
      engine.reset();
      wal.reset();
      wal = std::make_unique<wal::PartitionWal>(dir, wal_opt);
      ctx.wal = wal.get();
      engine = std::make_unique<PoccServer>(NodeId{0, 1}, topo, protocol,
                                            service, ctx);
      wal->replay(
          [&](const store::Version& v) { engine->restore_version(v); },
          [&](const VersionVector& vv) { engine->restore_vv(vv); });
    }
    ctx.now += 10;
    engine->handle_message(events[i].from, events[i].msg);
    if (wal->unsynced_bytes() > 0) wal->sync();
    if (wal->wants_checkpoint()) {
      const std::uint64_t cp_seq = wal->begin_checkpoint();
      ASSERT_TRUE(wal->commit_checkpoint(
          cp_seq, wal::encode_snapshot(engine->partition_store(),
                                       engine->version_vector())));
      ++checkpoints;
    }
  }
  EXPECT_EQ(crashes, 4u);
  EXPECT_GT(checkpoints, 0u) << "run too small to exercise checkpoints";
  EXPECT_EQ(engine_digest(*engine), engine_digest(ref))
      << "recovered state diverged from the never-crashed run (seed "
      << seed << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineRecoveryTest,
                         ::testing::Values(11ull, 23ull, 47ull));

// ======================================================== sim level =====

TEST(SimWalRecovery, CrashPlansPassCheckerAndReplayBitIdentical) {
  // Pick the first seeds whose derived fault plans contain fail-stop
  // crashes, so the WAL rebuild path actually runs.
  std::vector<std::uint64_t> crash_seeds;
  for (std::uint64_t seed = 400; seed < 440 && crash_seeds.size() < 3;
       ++seed) {
    fault::FuzzCase c;
    c.durability = cluster::DurabilityMode::kWal;
    c.seed = seed;
    const fault::FaultPlan plan = fault::plan_for_case(c);
    for (const fault::FaultEvent& ev : plan.events) {
      if (ev.kind == fault::FaultKind::kCrash) {
        crash_seeds.push_back(seed);
        break;
      }
    }
  }
  ASSERT_EQ(crash_seeds.size(), 3u)
      << "fault-plan generator stopped producing crash events";
  for (const std::uint64_t seed : crash_seeds) {
    fault::FuzzCase c;
    c.durability = cluster::DurabilityMode::kWal;
    c.seed = seed;
    const fault::FuzzOutcome first = fault::run_fuzz_case(c);
    EXPECT_TRUE(first.ok) << fault::repro_line(c, first)
                          << (first.failures.empty()
                                  ? ""
                                  : "\n  " + first.failures.front());
    const fault::FuzzOutcome replay = fault::run_fuzz_case(c);
    EXPECT_EQ(first.digest, replay.digest)
        << "WAL-mode replay diverged: " << fault::repro_line(c, first);
  }
}

// ================================================= deployment level =====

TEST(TcpRecovery, CrashStopRestartReplaysWalAndRebuildsFromPeer) {
  net::ClusterLayout layout;
  layout.topology.num_dcs = 2;
  layout.topology.partitions_per_dc = 1;
  layout.topology.partition_scheme = PartitionScheme::kHash;
  layout.system = rt::System::kPocc;
  layout.protocol.heartbeat_interval_us = 5'000;
  layout.protocol.stabilization_interval_us = 20'000;
  layout.protocol.gc_interval_us = 200'000;
  layout.protocol.block_timeout_us = 2'000'000;

  const std::string d0 = fresh_dir("tcp_d0");
  const std::string d1 = fresh_dir("tcp_d1");
  std::vector<std::unique_ptr<net::TcpNodeHost>> hosts;
  for (DcId dc = 0; dc < 2; ++dc) {
    net::ProcessSpec spec;
    spec.dc = dc;
    spec.parts.push_back(0);
    spec.threads = 1;
    spec.host = "127.0.0.1";
    net::TcpNodeHost::Options opt;
    opt.listen_port = 0;
    opt.seed = 10 + dc;
    opt.data_dir = dc == 0 ? d0 : d1;
    hosts.push_back(
        std::make_unique<net::TcpNodeHost>(spec, layout, opt));
    spec.port = hosts.back()->port();
    layout.processes.push_back(spec);
    layout.nodes.push_back(
        net::NodeAddress{NodeId{dc, 0}, "127.0.0.1", spec.port});
  }
  const std::uint16_t dc0_port = layout.processes[0].port;
  for (auto& host : hosts) host->start(layout.processes);

  auto wait_recovered = [](net::TcpNodeHost& host) {
    for (int i = 0; i < 300 && host.recovering(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return !host.recovering();
  };
  ASSERT_TRUE(wait_recovered(*hosts[0]));  // fresh cluster: instant handshake
  ASSERT_TRUE(wait_recovered(*hosts[1]));

  auto pool0 = std::make_unique<net::TcpClientPool>(layout, 0);
  pool0->start();
  ASSERT_TRUE(pool0->wait_connected(10'000'000));
  net::TcpClientPool pool1(layout, 1);
  pool1.start();
  ASSERT_TRUE(pool1.wait_connected(10'000'000));

  // Durable local write at DC0, then kill -9 the DC0 process.
  net::TcpSession& s0 = pool0->connect(1);
  ASSERT_TRUE(s0.put("alpha", "before-crash").ok);
  ASSERT_TRUE(s0.get("alpha").ok);
  pool0->stop();
  pool0.reset();
  hosts[0]->crash_stop();
  hosts[0].reset();

  // A write this DC misses entirely while it is down: only the recovery
  // handshake with the peer can deliver it.
  net::TcpSession& s1 = pool1.connect(2);
  ASSERT_TRUE(s1.put("beta", "written-while-down").ok);

  // Restart on the same port + data dir: WAL replay, then peer recovery.
  {
    net::ProcessSpec spec = layout.processes[0];
    spec.port = 0;  // the option carries the bind port
    net::TcpNodeHost::Options opt;
    opt.listen_port = dc0_port;
    opt.seed = 99;
    opt.data_dir = d0;
    hosts[0] = std::make_unique<net::TcpNodeHost>(spec, layout, opt);
    ASSERT_EQ(hosts[0]->port(), dc0_port);
    hosts[0]->start(layout.processes);
  }
  ASSERT_TRUE(wait_recovered(*hosts[0]))
      << "recovery gate never opened after restart";
  ASSERT_EQ(hosts[0]->replay_stats().size(), 1u);
  EXPECT_GE(hosts[0]->replay_stats()[0].log_versions, 1u)
      << "the pre-crash put must be in the replayed WAL";

  pool0 = std::make_unique<net::TcpClientPool>(layout, 0);
  pool0->start();
  ASSERT_TRUE(pool0->wait_connected(10'000'000));
  net::TcpSession& s2 = pool0->connect(3);
  const auto local = s2.get("alpha");
  ASSERT_TRUE(local.ok);
  ASSERT_TRUE(local.found) << "WAL replay lost a durable local write";
  EXPECT_EQ(local.value, "before-crash");
  // The missed remote write may still be in flight right after the gate
  // opens only on pathological schedulers; poll briefly.
  std::string beta;
  for (int i = 0; i < 100; ++i) {
    const auto remote = s2.get("beta");
    ASSERT_TRUE(remote.ok);
    if (remote.found) {
      beta = remote.value;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(beta, "written-while-down")
      << "peer recovery did not rebuild the missed replication suffix";

  pool0->stop();
  pool1.stop();
  for (auto& host : hosts) {
    if (host != nullptr) host->stop();
  }
}

}  // namespace
}  // namespace pocc
