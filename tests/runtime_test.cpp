// Threaded-runtime integration: the same engines running as a real
// in-process store (wall-clock time, one thread per node). Timing assertions
// are deliberately generous — this suite runs on loaded CI machines.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "runtime/rt_cluster.hpp"

namespace pocc::rt {
namespace {

RtClusterConfig small_config(System system) {
  RtClusterConfig cfg;
  cfg.topology.num_dcs = 2;
  cfg.topology.partitions_per_dc = 2;
  cfg.topology.partition_scheme = PartitionScheme::kHash;
  cfg.system = system;
  cfg.intra_dc_delay_us = 100;
  cfg.inter_dc_delay_us = 5'000;
  cfg.protocol.heartbeat_interval_us = 5'000;  // gentle on single-core CI
  cfg.protocol.stabilization_interval_us = 20'000;
  cfg.protocol.gc_interval_us = 200'000;
  cfg.protocol.block_timeout_us = 300'000;
  return cfg;
}

TEST(Runtime, PutThenGetReadsOwnWrite) {
  Cluster cluster(small_config(System::kPocc));
  Session& s = cluster.connect(0);
  const auto put = s.put("user:1", "alice");
  ASSERT_TRUE(put.ok);
  EXPECT_GT(put.ut, 0);
  const auto get = s.get("user:1");
  ASSERT_TRUE(get.ok);
  EXPECT_TRUE(get.found);
  EXPECT_EQ(get.value, "alice");
}

TEST(Runtime, UnwrittenKeyNotFound) {
  Cluster cluster(small_config(System::kPocc));
  Session& s = cluster.connect(0);
  const auto get = s.get("missing");
  ASSERT_TRUE(get.ok);
  EXPECT_FALSE(get.found);
}

TEST(Runtime, RemoteDcSeesWriteAfterReplication) {
  Cluster cluster(small_config(System::kPocc));
  Session& writer = cluster.connect(0);
  Session& reader = cluster.connect(1);
  ASSERT_TRUE(writer.put("geo", "hello").ok);
  // One inter-DC hop (5 ms) plus scheduling slack.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const auto get = reader.get("geo");
  ASSERT_TRUE(get.ok);
  EXPECT_TRUE(get.found);
  EXPECT_EQ(get.value, "hello");
}

TEST(Runtime, CausalChainVisibleAcrossDcs) {
  Cluster cluster(small_config(System::kPocc));
  Session& alice = cluster.connect(0);
  Session& bob = cluster.connect(1);
  ASSERT_TRUE(alice.put("photo", "img").ok);
  ASSERT_TRUE(alice.put("comment", "look!").ok);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const auto comment = bob.get("comment");
  ASSERT_TRUE(comment.ok);
  if (comment.found) {
    const auto photo = bob.get("photo");
    ASSERT_TRUE(photo.ok);
    EXPECT_TRUE(photo.found) << "causality: comment seen => photo seen";
  }
}

TEST(Runtime, RoTxReturnsConsistentItems) {
  Cluster cluster(small_config(System::kPocc));
  Session& s = cluster.connect(0);
  ASSERT_TRUE(s.put("a", "1").ok);
  ASSERT_TRUE(s.put("b", "2").ok);
  const auto tx = s.ro_tx({"a", "b"});
  ASSERT_TRUE(tx.ok);
  ASSERT_EQ(tx.items.size(), 2u);
  for (const auto& item : tx.items) {
    EXPECT_TRUE(item.found) << item.key;
  }
}

TEST(Runtime, CureServesStableDataOnly) {
  Cluster cluster(small_config(System::kCure));
  Session& writer = cluster.connect(0);
  Session& reader = cluster.connect(1);
  ASSERT_TRUE(writer.put("k", "v").ok);
  // After replication + a stabilization round the value must be visible.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  const auto get = reader.get("k");
  ASSERT_TRUE(get.ok);
  EXPECT_TRUE(get.found);
  EXPECT_EQ(get.value, "v");
}

TEST(Runtime, SequentialSessionsObserveMonotonicTimestamps) {
  Cluster cluster(small_config(System::kPocc));
  Session& s = cluster.connect(0);
  Timestamp prev = 0;
  for (int i = 0; i < 5; ++i) {
    const auto put = s.put("counter", std::to_string(i));
    ASSERT_TRUE(put.ok);
    EXPECT_GT(put.ut, prev);
    prev = put.ut;
  }
  const auto get = s.get("counter");
  ASSERT_TRUE(get.ok);
  EXPECT_EQ(get.value, "4");
}

TEST(Runtime, HaPoccFallsBackDuringPartitionAndRecovers) {
  RtClusterConfig cfg = small_config(System::kHaPocc);
  cfg.protocol.block_timeout_us = 150'000;
  Cluster cluster(cfg);
  Session& alice = cluster.connect(0);
  Session& carol = cluster.connect(1);

  // Carol reads Alice's item so later updates create dependencies.
  ASSERT_TRUE(alice.put("item", "v1").ok);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  ASSERT_TRUE(carol.get("item").ok);

  cluster.partition_dcs(0, 1);
  ASSERT_TRUE(alice.put("item", "v2-during-partition").ok);

  // Bob (DC1) establishes a dependency on unreplicated DC0 data through a
  // fresh local write chain: simplest trigger is a read of a key whose
  // dependency cannot arrive. Build it via carol's session: she reads the old
  // item (fine), then tries to read a key that blocks long enough to trip the
  // timeout only if a dependency exists — here we simply verify the
  // partitioned cluster keeps serving independent data.
  const auto during = carol.get("item", 2'000'000);
  ASSERT_TRUE(during.ok);
  EXPECT_EQ(during.value, "v1") << "DC1 must still see the pre-partition value";

  cluster.heal_dcs(0, 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  const auto after = carol.get("item", 2'000'000);
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(after.value, "v2-during-partition");
}

TEST(Runtime, ShutdownIsIdempotent) {
  Cluster cluster(small_config(System::kPocc));
  Session& s = cluster.connect(0);
  ASSERT_TRUE(s.put("k", "v").ok);
  cluster.shutdown();
  cluster.shutdown();  // second call is a no-op
}

}  // namespace
}  // namespace pocc::rt
