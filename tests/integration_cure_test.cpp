// End-to-end Cure* integration: the pessimistic baseline must also be
// causally consistent, converge, and exhibit the staleness the paper
// measures (Fig. 2b) that POCC avoids.
#include <gtest/gtest.h>

#include "cluster/sim_cluster.hpp"

namespace pocc::cluster {
namespace {

SimClusterConfig base_config(std::uint64_t seed) {
  SimClusterConfig cfg;
  cfg.topology.num_dcs = 3;
  cfg.topology.partitions_per_dc = 4;
  cfg.topology.partition_scheme = PartitionScheme::kPrefix;
  cfg.latency = LatencyConfig::uniform(300, 50);
  cfg.latency.inter_dc_base_us = {
      {0, 8'000, 14'000}, {8'000, 0, 9'000}, {14'000, 9'000, 0}};
  cfg.clock.offset_sigma_us = 500.0;
  cfg.system = SystemKind::kCure;
  cfg.seed = seed;
  cfg.enable_checker = true;
  return cfg;
}

void run_and_verify(SimCluster& cluster, Duration run_us) {
  cluster.run_for(50'000);
  cluster.begin_measurement();
  cluster.run_for(run_us);
  const ClusterMetrics m = cluster.end_measurement();
  EXPECT_GT(m.completed_ops, 0u);
  cluster.stop_clients();
  cluster.run_for(5'000'000);
  ASSERT_NE(cluster.checker(), nullptr);
  for (const auto& v : cluster.checker()->violations()) {
    ADD_FAILURE() << v;
  }
  EXPECT_TRUE(cluster.divergent_keys().empty());
  EXPECT_EQ(cluster.total_parked_requests(), 0u);
}

TEST(IntegrationCure, GetPutWorkloadIsCausallyConsistent) {
  SimCluster cluster(base_config(21));
  workload::WorkloadConfig wl;
  wl.pattern = workload::Pattern::kGetPut;
  wl.gets_per_put = 4;
  wl.think_time_us = 3'000;
  wl.keys_per_partition = 40;
  cluster.add_workload_clients(2, wl);
  run_and_verify(cluster, 400'000);
}

TEST(IntegrationCure, TransactionalWorkloadIsCausallyConsistent) {
  SimCluster cluster(base_config(22));
  workload::WorkloadConfig wl;
  wl.pattern = workload::Pattern::kTxPut;
  wl.tx_partitions = 3;
  wl.think_time_us = 3'000;
  wl.keys_per_partition = 30;
  cluster.add_workload_clients(2, wl);
  run_and_verify(cluster, 400'000);
}

TEST(IntegrationCure, CureExhibitsStalenessUnderWriteChurn) {
  // With a deliberately slow stabilization the visible snapshot lags, so some
  // reads must return old/unmerged items (the effect POCC eliminates, §V-B).
  SimClusterConfig cfg = base_config(23);
  cfg.protocol.stabilization_interval_us = 50'000;
  SimCluster cluster(cfg);
  workload::WorkloadConfig wl;
  wl.pattern = workload::Pattern::kGetPut;
  wl.gets_per_put = 2;
  wl.think_time_us = 1'000;
  wl.keys_per_partition = 5;  // tiny key space -> constant cross-DC updates
  wl.zipf_theta = 0.99;
  cluster.add_workload_clients(4, wl);
  cluster.run_for(100'000);
  cluster.begin_measurement();
  cluster.run_for(500'000);
  const ClusterMetrics m = cluster.end_measurement();
  EXPECT_GT(m.staleness.unmerged_reads, 0u)
      << "Cure* should observe unmerged chains under churn";
  cluster.stop_clients();
  cluster.run_for(2'000'000);
  for (const auto& v : cluster.checker()->violations()) {
    ADD_FAILURE() << v;
  }
}

TEST(IntegrationCure, SlowerStabilizationMeansMoreStaleness) {
  // Ablation of §V-B's observation: longer stabilization period -> staler
  // reads. (POCC is immune to this trade-off by construction.)
  auto run_with_interval = [](Duration stab_us) {
    SimClusterConfig cfg = base_config(24);
    cfg.enable_checker = false;
    cfg.protocol.stabilization_interval_us = stab_us;
    SimCluster cluster(cfg);
    workload::WorkloadConfig wl;
    wl.pattern = workload::Pattern::kGetPut;
    wl.gets_per_put = 2;
    wl.think_time_us = 1'000;
    wl.keys_per_partition = 5;
    cluster.add_workload_clients(4, wl);
    cluster.run_for(100'000);
    cluster.begin_measurement();
    cluster.run_for(400'000);
    const ClusterMetrics m = cluster.end_measurement();
    cluster.stop_clients();
    return m.staleness.pct_unmerged();
  };
  const double fast = run_with_interval(5'000);
  const double slow = run_with_interval(100'000);
  EXPECT_GT(slow, fast);
}

}  // namespace
}  // namespace pocc::cluster
