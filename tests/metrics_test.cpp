// Blocking/staleness/op statistics: probabilities, percentages, merge and
// reset semantics used by the benchmark aggregation — plus the unified
// stats registry (shard merging, Prometheus/human renders, escaping).
#include "stats/metrics.hpp"

#include <gtest/gtest.h>

#include <string>

#include "stats/registry.hpp"

namespace pocc::stats {
namespace {

TEST(BlockingStats, ProbabilityAndTime) {
  BlockingStats b;
  b.record_op(0);
  b.record_op(0);
  b.record_op(100);
  b.record_op(300);
  EXPECT_EQ(b.operations, 4u);
  EXPECT_EQ(b.blocked, 2u);
  EXPECT_DOUBLE_EQ(b.blocking_probability(), 0.5);
  EXPECT_DOUBLE_EQ(b.avg_blocking_time_us(), 200.0);
}

TEST(BlockingStats, EmptyIsZero) {
  BlockingStats b;
  EXPECT_DOUBLE_EQ(b.blocking_probability(), 0.0);
  EXPECT_DOUBLE_EQ(b.avg_blocking_time_us(), 0.0);
}

TEST(BlockingStats, MergeAccumulates) {
  BlockingStats a;
  BlockingStats b;
  a.record_op(0);
  b.record_op(50);
  a.merge(b);
  EXPECT_EQ(a.operations, 2u);
  EXPECT_EQ(a.blocked, 1u);
}

TEST(BlockingStats, ResetClears) {
  BlockingStats a;
  a.record_op(10);
  a.reset();
  EXPECT_EQ(a.operations, 0u);
  EXPECT_EQ(a.blocked, 0u);
}

TEST(StalenessStats, OldAndUnmergedPercentages) {
  StalenessStats s;
  s.record_read(0, 0);  // fresh
  s.record_read(2, 3);  // old and unmerged
  s.record_read(0, 1);  // fresh but unmerged
  s.record_read(1, 1);  // old and unmerged
  EXPECT_EQ(s.reads, 4u);
  EXPECT_EQ(s.old_reads, 2u);
  EXPECT_EQ(s.unmerged_reads, 3u);
  EXPECT_DOUBLE_EQ(s.pct_old(), 50.0);
  EXPECT_DOUBLE_EQ(s.pct_unmerged(), 75.0);
  EXPECT_DOUBLE_EQ(s.avg_fresher_versions(), 1.5);   // (2+1)/2
  EXPECT_DOUBLE_EQ(s.avg_unmerged_versions(), 5.0 / 3.0);
}

TEST(StalenessStats, EmptyIsZero) {
  StalenessStats s;
  EXPECT_DOUBLE_EQ(s.pct_old(), 0.0);
  EXPECT_DOUBLE_EQ(s.pct_unmerged(), 0.0);
  EXPECT_DOUBLE_EQ(s.avg_fresher_versions(), 0.0);
}

TEST(StalenessStats, MergeAccumulates) {
  StalenessStats a;
  StalenessStats b;
  a.record_read(1, 0);
  b.record_read(0, 2);
  a.merge(b);
  EXPECT_EQ(a.reads, 2u);
  EXPECT_EQ(a.old_reads, 1u);
  EXPECT_EQ(a.unmerged_reads, 1u);
}

TEST(OpStats, TotalsAndAverage) {
  OpStats o;
  ++o.gets;
  o.get_latency_us.record(100);
  ++o.puts;
  o.put_latency_us.record(300);
  EXPECT_EQ(o.total_ops(), 2u);
  EXPECT_DOUBLE_EQ(o.avg_latency_us(), 200.0);
}

TEST(OpStats, MergeAndReset) {
  OpStats a;
  OpStats b;
  ++a.gets;
  a.get_latency_us.record(10);
  ++b.ro_txs;
  b.tx_latency_us.record(50);
  a.merge(b);
  EXPECT_EQ(a.total_ops(), 2u);
  a.reset();
  EXPECT_EQ(a.total_ops(), 0u);
}

TEST(FormatDouble, Formats) {
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_EQ(format_double(123456.0, 4), "1.235e+05");
}

// ---------------------------------------------------------------------------
// Registry: shard merging, scrape-time callbacks, and both renders.

TEST(Registry, CounterShardsMergeInSnapshot) {
  Registry r;
  // Same (name, labels) registered twice = two per-thread shards; the
  // snapshot folds them into ONE series.
  Counter* a = r.counter("pocc_ops_total");
  Counter* b = r.counter("pocc_ops_total");
  a->inc(3);
  b->inc(4);
  const Snapshot snap = r.snapshot();
  ASSERT_EQ(snap.samples.size(), 1u);
  EXPECT_EQ(snap.samples[0].name, "pocc_ops_total");
  EXPECT_DOUBLE_EQ(snap.samples[0].value, 7.0);
}

TEST(Registry, DistinctLabelsAreDistinctSeries) {
  Registry r;
  r.counter("pocc_ops_total", {{"op", "get"}})->inc(1);
  r.counter("pocc_ops_total", {{"op", "put"}})->inc(2);
  const Snapshot snap = r.snapshot();
  ASSERT_EQ(snap.samples.size(), 2u);
  // First-registration order is preserved.
  EXPECT_EQ(snap.samples[0].labels[0].second, "get");
  EXPECT_DOUBLE_EQ(snap.samples[0].value, 1.0);
  EXPECT_EQ(snap.samples[1].labels[0].second, "put");
  EXPECT_DOUBLE_EQ(snap.samples[1].value, 2.0);
}

TEST(Registry, GaugeAndCallbacks) {
  Registry r;
  r.gauge("pocc_depth")->set(-5);
  r.counter_fn("pocc_fn_total", {}, [] { return std::uint64_t{42}; });
  r.gauge_fn("pocc_fn_gauge", {}, [] { return std::int64_t{-7}; });
  const Snapshot snap = r.snapshot();
  ASSERT_EQ(snap.samples.size(), 3u);
  EXPECT_DOUBLE_EQ(snap.samples[0].value, -5.0);
  EXPECT_DOUBLE_EQ(snap.samples[1].value, 42.0);
  EXPECT_DOUBLE_EQ(snap.samples[2].value, -7.0);
}

TEST(Registry, CallbackShardsSumLikeInstruments) {
  // Split counters (e.g. per-shard transport stats) fold into one series.
  Registry r;
  r.counter_fn("pocc_split_total", {}, [] { return std::uint64_t{10}; });
  r.counter_fn("pocc_split_total", {}, [] { return std::uint64_t{32}; });
  const Snapshot snap = r.snapshot();
  ASSERT_EQ(snap.samples.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.samples[0].value, 42.0);
}

TEST(Registry, HistogramShardsMerge) {
  Registry r;
  HistogramCell* a = r.histogram("pocc_lat_us", {{"op", "get"}});
  HistogramCell* b = r.histogram("pocc_lat_us", {{"op", "get"}});
  a->record(100);
  b->record(200);
  b->record(300);
  const Snapshot snap = r.snapshot();
  ASSERT_EQ(snap.samples.size(), 1u);
  EXPECT_EQ(snap.samples[0].hist.count(), 3u);
  EXPECT_DOUBLE_EQ(snap.samples[0].hist.sum(), 600.0);
}

TEST(RenderPrometheus, TypeOncePerFamilyAndCumulativeBuckets) {
  Registry r;
  r.counter("pocc_ops_total", {{"op", "get"}}, "Operations served.")->inc(5);
  r.counter("pocc_ops_total", {{"op", "put"}})->inc(6);
  HistogramCell* h = r.histogram("pocc_lat_us");
  h->record(60);       // lands in the 100us bucket...
  h->record(2'000'000);  // ...and one past every finite bound
  const std::string out = render_prometheus(r.snapshot());

  // HELP/TYPE exactly once for the two-sample counter family.
  EXPECT_NE(out.find("# HELP pocc_ops_total Operations served.\n"),
            std::string::npos);
  std::size_t first = out.find("# TYPE pocc_ops_total counter");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(out.find("# TYPE pocc_ops_total counter", first + 1),
            std::string::npos);
  EXPECT_NE(out.find("pocc_ops_total{op=\"get\"} 5\n"), std::string::npos);
  EXPECT_NE(out.find("pocc_ops_total{op=\"put\"} 6\n"), std::string::npos);

  EXPECT_NE(out.find("# TYPE pocc_lat_us histogram"), std::string::npos);
  // 60us <= le=100 bucket; the 2s sample only reaches +Inf.
  EXPECT_NE(out.find("pocc_lat_us_bucket{le=\"100\"} 1\n"), std::string::npos);
  EXPECT_NE(out.find("pocc_lat_us_bucket{le=\"1000000\"} 1\n"),
            std::string::npos);
  EXPECT_NE(out.find("pocc_lat_us_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(out.find("pocc_lat_us_count 2\n"), std::string::npos);
}

TEST(RenderPrometheus, EscapesLabelValues) {
  Registry r;
  r.counter("pocc_esc_total", {{"path", "a\\b\"c\nd"}})->inc(1);
  const std::string out = render_prometheus(r.snapshot());
  EXPECT_NE(out.find("pocc_esc_total{path=\"a\\\\b\\\"c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(RenderHuman, StripsPrefixAndRendersHistograms) {
  Registry r;
  r.counter("pocc_transport_reconnects_total")->inc(2);
  r.gauge("pocc_inbox_depth", {{"part", "1"}})->set(9);
  r.histogram("pocc_server_op_us", {{"op", "get"}})->record(100);
  const std::string line = render_human(r.snapshot());
  // `pocc_` prefix and counter `_total` suffix stripped; labels inline.
  EXPECT_NE(line.find("transport_reconnects=2"), std::string::npos);
  EXPECT_NE(line.find("inbox_depth{part=1}=9"), std::string::npos);
  EXPECT_NE(line.find("server_op_us{op=get}_count=1"), std::string::npos);
  EXPECT_NE(line.find("server_op_us{op=get}_p99="), std::string::npos);
  EXPECT_EQ(line.find("pocc_"), std::string::npos);
}

TEST(HistogramCountLe, CumulativeAndMonotone) {
  Histogram h;
  h.record(10);
  h.record(600);
  h.record(100'000'000);
  EXPECT_EQ(h.count_le(-1), 0u);
  EXPECT_EQ(h.count_le(50), 1u);
  EXPECT_EQ(h.count_le(1'000), 2u);
  std::uint64_t prev = 0;
  for (std::int64_t bound : {50, 100, 1'000, 1'000'000, 2'000'000'000}) {
    const std::uint64_t c = h.count_le(bound);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_EQ(h.count_le(std::int64_t{1} << 40), 3u);
}

TEST(LatencyJsonFields, EmitsP50P99P999) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(i);
  const std::string json = latency_json_fields("get", h);
  EXPECT_NE(json.find("\"get_p50_us\":"), std::string::npos);
  EXPECT_NE(json.find("\"get_p99_us\":"), std::string::npos);
  EXPECT_NE(json.find("\"get_p999_us\":"), std::string::npos);
  // Three fields, comma-separated, no trailing comma.
  EXPECT_EQ(json.front(), '"');
  EXPECT_NE(json.back(), ',');
}

}  // namespace
}  // namespace pocc::stats
