// Blocking/staleness/op statistics: probabilities, percentages, merge and
// reset semantics used by the benchmark aggregation.
#include "stats/metrics.hpp"

#include <gtest/gtest.h>

namespace pocc::stats {
namespace {

TEST(BlockingStats, ProbabilityAndTime) {
  BlockingStats b;
  b.record_op(0);
  b.record_op(0);
  b.record_op(100);
  b.record_op(300);
  EXPECT_EQ(b.operations, 4u);
  EXPECT_EQ(b.blocked, 2u);
  EXPECT_DOUBLE_EQ(b.blocking_probability(), 0.5);
  EXPECT_DOUBLE_EQ(b.avg_blocking_time_us(), 200.0);
}

TEST(BlockingStats, EmptyIsZero) {
  BlockingStats b;
  EXPECT_DOUBLE_EQ(b.blocking_probability(), 0.0);
  EXPECT_DOUBLE_EQ(b.avg_blocking_time_us(), 0.0);
}

TEST(BlockingStats, MergeAccumulates) {
  BlockingStats a;
  BlockingStats b;
  a.record_op(0);
  b.record_op(50);
  a.merge(b);
  EXPECT_EQ(a.operations, 2u);
  EXPECT_EQ(a.blocked, 1u);
}

TEST(BlockingStats, ResetClears) {
  BlockingStats a;
  a.record_op(10);
  a.reset();
  EXPECT_EQ(a.operations, 0u);
  EXPECT_EQ(a.blocked, 0u);
}

TEST(StalenessStats, OldAndUnmergedPercentages) {
  StalenessStats s;
  s.record_read(0, 0);  // fresh
  s.record_read(2, 3);  // old and unmerged
  s.record_read(0, 1);  // fresh but unmerged
  s.record_read(1, 1);  // old and unmerged
  EXPECT_EQ(s.reads, 4u);
  EXPECT_EQ(s.old_reads, 2u);
  EXPECT_EQ(s.unmerged_reads, 3u);
  EXPECT_DOUBLE_EQ(s.pct_old(), 50.0);
  EXPECT_DOUBLE_EQ(s.pct_unmerged(), 75.0);
  EXPECT_DOUBLE_EQ(s.avg_fresher_versions(), 1.5);   // (2+1)/2
  EXPECT_DOUBLE_EQ(s.avg_unmerged_versions(), 5.0 / 3.0);
}

TEST(StalenessStats, EmptyIsZero) {
  StalenessStats s;
  EXPECT_DOUBLE_EQ(s.pct_old(), 0.0);
  EXPECT_DOUBLE_EQ(s.pct_unmerged(), 0.0);
  EXPECT_DOUBLE_EQ(s.avg_fresher_versions(), 0.0);
}

TEST(StalenessStats, MergeAccumulates) {
  StalenessStats a;
  StalenessStats b;
  a.record_read(1, 0);
  b.record_read(0, 2);
  a.merge(b);
  EXPECT_EQ(a.reads, 2u);
  EXPECT_EQ(a.old_reads, 1u);
  EXPECT_EQ(a.unmerged_reads, 1u);
}

TEST(OpStats, TotalsAndAverage) {
  OpStats o;
  ++o.gets;
  o.get_latency_us.record(100);
  ++o.puts;
  o.put_latency_us.record(300);
  EXPECT_EQ(o.total_ops(), 2u);
  EXPECT_DOUBLE_EQ(o.avg_latency_us(), 200.0);
}

TEST(OpStats, MergeAndReset) {
  OpStats a;
  OpStats b;
  ++a.gets;
  a.get_latency_us.record(10);
  ++b.ro_txs;
  b.tx_latency_us.record(50);
  a.merge(b);
  EXPECT_EQ(a.total_ops(), 2u);
  a.reset();
  EXPECT_EQ(a.total_ops(), 0u);
}

TEST(FormatDouble, Formats) {
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_EQ(format_double(123456.0, 4), "1.235e+05");
}

}  // namespace
}  // namespace pocc::stats
