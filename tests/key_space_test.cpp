// KeySpace interner: dense idempotent ids, by-id round trips, partition
// placement parity with the string-hashing path, and the empty-key-zero
// invariant that keeps default-constructed messages valid.
#include "store/key_space.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/hash.hpp"

namespace pocc::store {
namespace {

TEST(KeySpace, EmptyKeyIsAlwaysIdZero) {
  EXPECT_EQ(KeySpace::global().intern(""), 0u);
  EXPECT_EQ(KeySpace::global().name(0), "");
  EXPECT_EQ(KeySpace::global().name_size(0), 0u);
}

TEST(KeySpace, InternIsIdempotent) {
  const KeyId a = intern_key("ks-idem");
  const KeyId b = intern_key("ks-idem");
  EXPECT_EQ(a, b);
  EXPECT_EQ(intern_key(std::string("ks-idem")), a);
}

TEST(KeySpace, IdsAreDense) {
  // Fresh keys get consecutive ids starting at the current size.
  const std::size_t base = KeySpace::global().size();
  const KeyId a = intern_key("ks-dense-a");
  const KeyId b = intern_key("ks-dense-b");
  const KeyId c = intern_key("ks-dense-c");
  EXPECT_EQ(a, base);
  EXPECT_EQ(b, base + 1);
  EXPECT_EQ(c, base + 2);
  EXPECT_EQ(KeySpace::global().size(), base + 3);
}

TEST(KeySpace, NameRoundTrip) {
  const std::string original = "42:12345678901234567890";
  const KeyId id = intern_key(original);
  EXPECT_EQ(KeySpace::global().name(id), original);
  EXPECT_EQ(KeySpace::global().name_size(id), original.size());
  EXPECT_EQ(key_name(id), original);
}

TEST(KeySpace, FindReturnsInvalidForUnknown) {
  EXPECT_EQ(KeySpace::global().find("ks-never-interned-key-xyzzy"),
            kInvalidKeyId);
  const KeyId id = intern_key("ks-find-me");
  EXPECT_EQ(KeySpace::global().find("ks-find-me"), id);
}

TEST(KeySpace, HashMatchesFnv1a) {
  const KeyId id = intern_key("ks-hash-probe");
  EXPECT_EQ(KeySpace::global().hash_of(id), fnv1a("ks-hash-probe"));
}

TEST(KeySpace, InternPartitionKeyMatchesStringForm) {
  const KeyId a = KeySpace::global().intern_partition_key(17, 987654321);
  const KeyId b = intern_key("17:987654321");
  EXPECT_EQ(a, b);
  EXPECT_EQ(KeySpace::global().name(a), "17:987654321");
}

TEST(KeySpace, PartitionPlacementMatchesStringPath) {
  // partition(id) must agree with partition_of(name) for both schemes,
  // including non-canonical keys (no prefix, junk prefix).
  const std::vector<std::string> keys = {
      "3:77",  "0:0",     "31:999999", "no-prefix-key", ":leading-colon",
      "x7:zz", "123abc:q", "9",        "ks partition spaces",
      // Largest valid u32 prefix: must not collide with the interner's
      // no-prefix sentinel.
      "4294967295:x"};
  for (const std::string& k : keys) {
    const KeyId id = intern_key(k);
    for (std::uint32_t parts : {1u, 4u, 32u, 64u}) {
      EXPECT_EQ(KeySpace::global().partition(id, parts, PartitionScheme::kHash),
                partition_of(k, parts, PartitionScheme::kHash))
          << k << " / " << parts;
      EXPECT_EQ(
          KeySpace::global().partition(id, parts, PartitionScheme::kPrefix),
          partition_of(k, parts, PartitionScheme::kPrefix))
          << k << " / " << parts;
    }
  }
}

TEST(KeySpace, SurvivesTableGrowth) {
  // Push through several rehash cycles; earlier ids must stay valid.
  const KeyId first = intern_key("ks-grow-first");
  std::vector<KeyId> ids;
  for (int i = 0; i < 5000; ++i) {
    ids.push_back(intern_key("ks-grow-" + std::to_string(i)));
  }
  EXPECT_EQ(KeySpace::global().name(first), "ks-grow-first");
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(intern_key("ks-grow-" + std::to_string(i)), ids[i]);
  }
}

TEST(KeySpace, ConcurrentInternIsConsistent) {
  // The threaded runtime interns from several session threads; the same key
  // must resolve to one id everywhere.
  constexpr int kThreads = 4;
  constexpr int kKeys = 500;
  std::vector<std::vector<KeyId>> seen(kThreads, std::vector<KeyId>(kKeys));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &seen] {
      for (int i = 0; i < kKeys; ++i) {
        seen[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)] =
            intern_key("ks-conc-" + std::to_string(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<std::size_t>(t)], seen[0]) << "thread " << t;
  }
  for (int i = 0; i < kKeys; ++i) {
    EXPECT_EQ(key_name(seen[0][static_cast<std::size_t>(i)]),
              "ks-conc-" + std::to_string(i));
  }
}

}  // namespace
}  // namespace pocc::store
