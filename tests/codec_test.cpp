// Wire codec: exhaustive per-variant round trips, charged-bytes == wire_size
// verification against an independent framing model, version/type rejection,
// and key re-interning semantics.
#include "proto/codec.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "store/key_space.hpp"

namespace pocc::proto {
namespace {

KeyId K(const std::string& key) { return store::intern_key(key); }

VersionVector vv3() { return VersionVector{101, 202, 303}; }

ReadItem sample_item(const std::string& key, const std::string& value) {
  ReadItem it;
  it.key = K(key);
  it.found = true;
  it.value = value;
  it.sr = 2;
  it.ut = 777'001;
  it.dv = vv3();
  it.fresher_versions = 3;
  it.unmerged_versions = 1;
  return it;
}

/// Encode + decode one message and return the decoded copy.
Message round_trip(const Message& m) {
  std::vector<std::uint8_t> buf;
  const std::size_t body = encode(m, buf);
  EXPECT_EQ(buf.size(), body + kFrameHeaderBytes);
  const DecodeResult res = decode_frame(buf.data(), buf.size());
  EXPECT_EQ(res.status, DecodeResult::Status::kOk) << res.error;
  EXPECT_EQ(res.consumed, buf.size());
  EXPECT_TRUE(std::holds_alternative<Message>(res.frame));
  return std::get<Message>(res.frame);
}

bool items_equal(const ReadItem& a, const ReadItem& b) {
  return a.key == b.key && a.found == b.found && a.value == b.value &&
         a.sr == b.sr && a.ut == b.ut && a.dv == b.dv &&
         a.fresher_versions == b.fresher_versions &&
         a.unmerged_versions == b.unmerged_versions;
}

/// Transport-framing bytes the codec carries beyond wire_size(): op_id,
/// blocked_us and the per-item measurement fields (frame length prefix is
/// accounted separately). Independent model for the charged-bytes test.
std::size_t framing_bytes(const Message& m) {
  switch (m.index()) {
    case 0:  // GetReq: op_id
    case 1:  // PutReq: op_id
    case 2:  // RoTxReq: op_id
      return 8;
    case 3:  // GetReply: blocked_us + op_id + item measurement fields
      return 8 + 8 + 8;
    case 4:  // PutReply: blocked_us + op_id
      return 8 + 8;
    case 5:  // RoTxReply: blocked_us + op_id + per-item measurement fields
      return 8 + 8 + 8 * std::get<RoTxReply>(m).items.size();
    case 10:  // SliceReply: blocked_us + per-item measurement fields
      return 8 + 8 * std::get<SliceReply>(m).items.size();
    case 18:  // Overloaded: op_id
      return 8;
    default:
      return 0;
  }
}

/// Encoded body must be exactly wire_size() + documented transport framing.
void expect_honest_accounting(const Message& m) {
  std::vector<std::uint8_t> buf;
  const std::size_t body = encode(m, buf);
  EXPECT_EQ(body, wire_size(m) + framing_bytes(m)) << message_name(m);
}

TEST(Codec, GetReqRoundTrip) {
  GetReq m;
  m.client = 42;
  m.key = K("codec:get");
  m.rdv = vv3();
  m.pessimistic = true;
  m.op_id = 9'001;
  const auto d = std::get<GetReq>(round_trip(Message{m}));
  EXPECT_EQ(d.client, m.client);
  EXPECT_EQ(d.key, m.key);
  EXPECT_EQ(d.rdv, m.rdv);
  EXPECT_EQ(d.pessimistic, m.pessimistic);
  EXPECT_EQ(d.op_id, m.op_id);
  expect_honest_accounting(Message{m});
}

TEST(Codec, PutReqRoundTrip) {
  PutReq m;
  m.client = 7;
  m.key = K("codec:put");
  m.value = "value-bytes";
  m.dv = vv3();
  m.op_id = 3;
  const auto d = std::get<PutReq>(round_trip(Message{m}));
  EXPECT_EQ(d.client, m.client);
  EXPECT_EQ(d.key, m.key);
  EXPECT_EQ(d.value, m.value);
  EXPECT_EQ(d.dv, m.dv);
  EXPECT_FALSE(d.pessimistic);
  EXPECT_EQ(d.op_id, m.op_id);
  expect_honest_accounting(Message{m});
}

TEST(Codec, RoTxReqRoundTrip) {
  RoTxReq m;
  m.client = 11;
  m.keys = {K("codec:a"), K("codec:b"), K("codec:c")};
  m.rdv = vv3();
  m.pessimistic = true;
  m.op_id = 5;
  const auto d = std::get<RoTxReq>(round_trip(Message{m}));
  EXPECT_EQ(d.client, m.client);
  EXPECT_EQ(d.keys, m.keys);
  EXPECT_EQ(d.rdv, m.rdv);
  EXPECT_EQ(d.pessimistic, m.pessimistic);
  expect_honest_accounting(Message{m});
}

TEST(Codec, GetReplyRoundTrip) {
  GetReply m;
  m.client = 42;
  m.item = sample_item("codec:item", "payload");
  m.blocked_us = 1'234;
  m.op_id = 77;
  const auto d = std::get<GetReply>(round_trip(Message{m}));
  EXPECT_EQ(d.client, m.client);
  EXPECT_TRUE(items_equal(d.item, m.item));
  EXPECT_EQ(d.blocked_us, m.blocked_us);
  EXPECT_EQ(d.op_id, m.op_id);
  expect_honest_accounting(Message{m});
}

TEST(Codec, PutReplyRoundTrip) {
  PutReply m;
  m.client = 8;
  m.key = K("codec:putreply");
  m.ut = 555'000;
  m.sr = 1;
  m.blocked_us = 9;
  m.op_id = 12;
  const auto d = std::get<PutReply>(round_trip(Message{m}));
  EXPECT_EQ(d.client, m.client);
  EXPECT_EQ(d.key, m.key);
  EXPECT_EQ(d.ut, m.ut);
  EXPECT_EQ(d.sr, m.sr);
  EXPECT_EQ(d.blocked_us, m.blocked_us);
  EXPECT_EQ(d.op_id, m.op_id);
  expect_honest_accounting(Message{m});
}

TEST(Codec, RoTxReplyRoundTrip) {
  RoTxReply m;
  m.client = 13;
  m.items = {sample_item("codec:x", "1"), sample_item("codec:y", "22")};
  m.tv = vv3();
  m.blocked_us = 3;
  m.op_id = 6;
  const auto d = std::get<RoTxReply>(round_trip(Message{m}));
  EXPECT_EQ(d.client, m.client);
  ASSERT_EQ(d.items.size(), m.items.size());
  for (std::size_t i = 0; i < m.items.size(); ++i) {
    EXPECT_TRUE(items_equal(d.items[i], m.items[i]));
  }
  EXPECT_EQ(d.tv, m.tv);
  expect_honest_accounting(Message{m});
}

TEST(Codec, SessionClosedRoundTrip) {
  SessionClosed m;
  m.client = 21;
  m.reason = "partition suspected";
  const auto d = std::get<SessionClosed>(round_trip(Message{m}));
  EXPECT_EQ(d.client, m.client);
  EXPECT_EQ(d.reason, m.reason);
  expect_honest_accounting(Message{m});
}

TEST(Codec, ReplicateRoundTrip) {
  Replicate m;
  m.version.key = K("codec:repl");
  m.version.value = "replicated";
  m.version.sr = 2;
  m.version.ut = 31'337;
  m.version.dv = vv3();
  m.version.opt_origin = true;
  const auto d = std::get<Replicate>(round_trip(Message{m}));
  EXPECT_EQ(d.version.key, m.version.key);
  EXPECT_EQ(d.version.value, m.version.value);
  EXPECT_EQ(d.version.sr, m.version.sr);
  EXPECT_EQ(d.version.ut, m.version.ut);
  EXPECT_EQ(d.version.dv, m.version.dv);
  EXPECT_EQ(d.version.opt_origin, m.version.opt_origin);
  expect_honest_accounting(Message{m});
}

TEST(Codec, HeartbeatRoundTrip) {
  Heartbeat m;
  m.src_dc = 2;
  m.ts = 123'456'789;
  const auto d = std::get<Heartbeat>(round_trip(Message{m}));
  EXPECT_EQ(d.src_dc, m.src_dc);
  EXPECT_EQ(d.ts, m.ts);
  expect_honest_accounting(Message{m});
}

TEST(Codec, SliceReqRoundTrip) {
  SliceReq m;
  m.tx_id = 99;
  m.coordinator = NodeId{1, 3};
  m.keys = {K("codec:s1"), K("codec:s2")};
  m.tv = vv3();
  m.pessimistic = true;
  const auto d = std::get<SliceReq>(round_trip(Message{m}));
  EXPECT_EQ(d.tx_id, m.tx_id);
  EXPECT_EQ(d.coordinator, m.coordinator);
  EXPECT_EQ(d.keys, m.keys);
  EXPECT_EQ(d.tv, m.tv);
  EXPECT_EQ(d.pessimistic, m.pessimistic);
  expect_honest_accounting(Message{m});
}

TEST(Codec, SliceReplyRoundTrip) {
  SliceReply m;
  m.tx_id = 100;
  m.items = {sample_item("codec:sr", "v")};
  m.blocked_us = 17;
  m.aborted = true;
  const auto d = std::get<SliceReply>(round_trip(Message{m}));
  EXPECT_EQ(d.tx_id, m.tx_id);
  ASSERT_EQ(d.items.size(), 1u);
  EXPECT_TRUE(items_equal(d.items[0], m.items[0]));
  EXPECT_EQ(d.blocked_us, m.blocked_us);
  EXPECT_EQ(d.aborted, m.aborted);
  expect_honest_accounting(Message{m});
}

TEST(Codec, GcAndStabilizationRoundTrips) {
  GcReport rep;
  rep.from = NodeId{2, 5};
  rep.low_watermark = vv3();
  const auto drep = std::get<GcReport>(round_trip(Message{rep}));
  EXPECT_EQ(drep.from, rep.from);
  EXPECT_EQ(drep.low_watermark, rep.low_watermark);
  expect_honest_accounting(Message{rep});

  GcVector gv;
  gv.gv = vv3();
  EXPECT_EQ(std::get<GcVector>(round_trip(Message{gv})).gv, gv.gv);
  expect_honest_accounting(Message{gv});

  StabReport sr;
  sr.from = NodeId{0, 1};
  sr.vv = vv3();
  const auto dsr = std::get<StabReport>(round_trip(Message{sr}));
  EXPECT_EQ(dsr.from, sr.from);
  EXPECT_EQ(dsr.vv, sr.vv);
  expect_honest_accounting(Message{sr});

  GssBroadcast gss;
  gss.gss = vv3();
  EXPECT_EQ(std::get<GssBroadcast>(round_trip(Message{gss})).gss, gss.gss);
  expect_honest_accounting(Message{gss});
}

TEST(Codec, OverloadedRoundTrip) {
  Overloaded m;
  m.client = 4'242;
  m.retry_after_us = 25'000;
  m.op_id = 77;
  const auto d = std::get<Overloaded>(round_trip(Message{m}));
  EXPECT_EQ(d.client, m.client);
  EXPECT_EQ(d.retry_after_us, m.retry_after_us);
  EXPECT_EQ(d.op_id, m.op_id);
  expect_honest_accounting(Message{m});
}

TEST(Codec, EmptyAndDefaultMessagesRoundTrip) {
  // Default-constructed messages (empty vectors, empty strings, key id 0 =
  // the pre-interned empty key) must survive the wire too.
  const Message variants[] = {
      Message{GetReq{}},        Message{PutReq{}},     Message{RoTxReq{}},
      Message{GetReply{}},      Message{PutReply{}},   Message{RoTxReply{}},
      Message{SessionClosed{}}, Message{Replicate{}},  Message{Heartbeat{}},
      Message{SliceReq{}},      Message{SliceReply{}}, Message{GcReport{}},
      Message{GcVector{}},      Message{StabReport{}}, Message{GssBroadcast{}},
      Message{RecoveryReq{}},   Message{RecoveryDone{}}, Message{Overloaded{}},
  };
  for (const Message& m : variants) {
    const Message d = round_trip(m);
    EXPECT_EQ(d.index(), m.index()) << message_name(m);
    expect_honest_accounting(m);
  }
}

TEST(Codec, NodeHelloRoundTrip) {
  std::vector<std::uint8_t> buf;
  encode(NodeHello{NodeId{2, 7}}, buf);
  const DecodeResult res = decode_frame(buf.data(), buf.size());
  ASSERT_EQ(res.status, DecodeResult::Status::kOk) << res.error;
  const auto& hello = std::get<NodeHello>(res.frame);
  EXPECT_EQ(hello.node, (NodeId{2, 7}));
}

TEST(Codec, ClientHelloRoundTrip) {
  std::vector<std::uint8_t> buf;
  encode(ClientHello{12'345}, buf);
  const DecodeResult res = decode_frame(buf.data(), buf.size());
  ASSERT_EQ(res.status, DecodeResult::Status::kOk) << res.error;
  EXPECT_EQ(std::get<ClientHello>(res.frame).client, 12'345u);
  // Omitted preferred_part decodes as the explicit "no preference" marker —
  // hosts must not mistake it for partition 0.
  EXPECT_EQ(std::get<ClientHello>(res.frame).preferred_part,
            kNoPreferredPart);

  buf.clear();
  encode(ClientHello{99, 3}, buf);
  const DecodeResult pinned = decode_frame(buf.data(), buf.size());
  ASSERT_EQ(pinned.status, DecodeResult::Status::kOk) << pinned.error;
  EXPECT_EQ(std::get<ClientHello>(pinned.frame).client, 99u);
  EXPECT_EQ(std::get<ClientHello>(pinned.frame).preferred_part, 3u);
}

TEST(Codec, KeysAreReinternedByString) {
  // The receiving side must resolve the *string*, not trust the sender's id:
  // the same id maps to different strings in different processes. Simulate a
  // remote peer by checking the decoded id resolves to the original bytes.
  PutReq m;
  m.key = K("reintern:me");
  m.value = "v";
  std::vector<std::uint8_t> buf;
  encode(Message{m}, buf);
  const DecodeResult res = decode_frame(buf.data(), buf.size());
  ASSERT_EQ(res.status, DecodeResult::Status::kOk);
  const auto& d = std::get<PutReq>(std::get<Message>(res.frame));
  EXPECT_EQ(store::KeySpace::global().name(d.key), "reintern:me");
}

TEST(Codec, StreamOfFramesDecodesSequentially) {
  // Several frames back to back in one buffer — the transport's read path.
  std::vector<std::uint8_t> buf;
  GetReq get;
  get.key = K("stream:a");
  get.rdv = vv3();
  PutReq put;
  put.key = K("stream:b");
  put.value = "x";
  put.dv = vv3();
  encode(Message{get}, buf);
  encode(Message{put}, buf);
  encode(Message{Heartbeat{1, 99}}, buf);

  std::size_t off = 0;
  std::vector<std::size_t> seen;
  while (off < buf.size()) {
    const DecodeResult res = decode_frame(buf.data() + off, buf.size() - off);
    ASSERT_EQ(res.status, DecodeResult::Status::kOk) << res.error;
    seen.push_back(std::get<Message>(res.frame).index());
    off += res.consumed;
  }
  EXPECT_EQ(off, buf.size());
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 8}));
}

TEST(Codec, PartialFrameNeedsMore) {
  std::vector<std::uint8_t> buf;
  GetReply m;
  m.item = sample_item("partial", "value");
  encode(Message{m}, buf);
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    const DecodeResult res = decode_frame(buf.data(), cut);
    EXPECT_EQ(res.status, DecodeResult::Status::kNeedMore)
        << "prefix of " << cut << " bytes must not decode";
  }
}

TEST(Codec, RejectsWrongWireVersion) {
  std::vector<std::uint8_t> buf;
  encode(Message{Heartbeat{0, 1}}, buf);
  buf[kFrameHeaderBytes] = kWireVersion + 1;
  const DecodeResult res = decode_frame(buf.data(), buf.size());
  EXPECT_EQ(res.status, DecodeResult::Status::kError);
  EXPECT_NE(res.error.find("version"), std::string::npos);
}

TEST(Codec, RejectsUnknownType) {
  std::vector<std::uint8_t> buf;
  encode(Message{Heartbeat{0, 1}}, buf);
  buf[kFrameHeaderBytes + 1] = 180;  // not a WireType
  const DecodeResult res = decode_frame(buf.data(), buf.size());
  EXPECT_EQ(res.status, DecodeResult::Status::kError);
}

TEST(Codec, RejectsOversizedFrameLength) {
  std::vector<std::uint8_t> buf(kFrameHeaderBytes, 0xff);
  const DecodeResult res = decode_frame(buf.data(), buf.size());
  EXPECT_EQ(res.status, DecodeResult::Status::kError);
}

TEST(Codec, RejectsTrailingGarbageInsideFrame) {
  std::vector<std::uint8_t> buf;
  encode(Message{Heartbeat{0, 1}}, buf);
  // Grow the body by one byte and patch the length prefix to cover it: a
  // well-framed but overlong body must be rejected, not silently accepted.
  buf.push_back(0xab);
  const std::size_t body = buf.size() - kFrameHeaderBytes;
  for (std::size_t i = 0; i < kFrameHeaderBytes; ++i) {
    buf[i] = static_cast<std::uint8_t>(body >> (8 * i));
  }
  const DecodeResult res = decode_frame(buf.data(), buf.size());
  EXPECT_EQ(res.status, DecodeResult::Status::kError);
  EXPECT_NE(res.error.find("trailing"), std::string::npos);
}

TEST(Codec, RejectsImplausibleKeyCount) {
  // Hand-build a RoTxReq frame whose key count claims 2^31 entries.
  std::vector<std::uint8_t> body;
  body.push_back(kWireVersion);
  body.push_back(static_cast<std::uint8_t>(WireType::kRoTxReq));
  for (int i = 0; i < 8; ++i) body.push_back(0);  // client
  body.push_back(0x00);                           // key count LE...
  body.push_back(0x00);
  body.push_back(0x00);
  body.push_back(0x80);  // ... = 2^31
  std::vector<std::uint8_t> buf;
  for (std::size_t i = 0; i < kFrameHeaderBytes; ++i) {
    buf.push_back(static_cast<std::uint8_t>(body.size() >> (8 * i)));
  }
  buf.insert(buf.end(), body.begin(), body.end());
  const DecodeResult res = decode_frame(buf.data(), buf.size());
  EXPECT_EQ(res.status, DecodeResult::Status::kError);
}

// ------------------------------------------------------------ Batch frames --

bool messages_equivalent(const Message& a, const Message& b) {
  // Structural equality via re-encoding: two messages that serialize to the
  // same bytes are the same message.
  std::vector<std::uint8_t> ba;
  std::vector<std::uint8_t> bb;
  encode(a, ba);
  encode(b, bb);
  return ba == bb;
}

TEST(Codec, BatchRoundTripsRoutedMessages) {
  BatchFrame batch;
  Replicate repl;
  repl.version.key = K("batch:repl");
  repl.version.value = "payload";
  repl.version.sr = 1;
  repl.version.ut = 42;
  repl.version.dv = vv3();
  batch.items.push_back(
      RoutedMessage{NodeId{0, 1}, NodeId{2, 1}, Message{repl}});
  batch.items.push_back(
      RoutedMessage{NodeId{0, 0}, NodeId{2, 0}, Message{Heartbeat{0, 99}}});
  StabReport sr;
  sr.from = NodeId{0, 1};
  sr.vv = vv3();
  batch.items.push_back(
      RoutedMessage{NodeId{0, 1}, NodeId{0, 0}, Message{sr}});

  std::vector<std::uint8_t> buf;
  BatchEncodeStats stats;
  const std::size_t body = encode(batch, buf, &stats);
  EXPECT_EQ(buf.size(), body + kFrameHeaderBytes);

  const DecodeResult res = decode_frame(buf.data(), buf.size());
  ASSERT_EQ(res.status, DecodeResult::Status::kOk) << res.error;
  EXPECT_EQ(res.consumed, buf.size());
  const auto& decoded = std::get<BatchFrame>(res.frame);
  ASSERT_EQ(decoded.items.size(), batch.items.size());
  for (std::size_t i = 0; i < batch.items.size(); ++i) {
    EXPECT_EQ(decoded.items[i].from, batch.items[i].from) << i;
    EXPECT_EQ(decoded.items[i].to, batch.items[i].to) << i;
    EXPECT_TRUE(
        messages_equivalent(decoded.items[i].msg, batch.items[i].msg))
        << i;
  }
}

TEST(Codec, BatchAccountingSplitsProtocolFromOverhead) {
  // The §V-charged bytes of a batch must equal the sum of the members'
  // wire_size() — batching adds framing, never protocol metadata — and the
  // overhead must be exactly the documented envelope model.
  BatchFrame batch;
  std::size_t protocol = 0;
  for (int i = 0; i < 5; ++i) {
    Replicate repl;
    repl.version.key = K("batch:acct:" + std::to_string(i));
    repl.version.value = "v";
    repl.version.dv = vv3();
    protocol += wire_size(Message{repl});
    batch.items.push_back(
        RoutedMessage{NodeId{0, 0}, NodeId{1, 0}, Message{repl}});
  }
  std::vector<std::uint8_t> buf;
  BatchEncodeStats stats;
  const std::size_t body = encode(batch, buf, &stats);
  EXPECT_EQ(stats.protocol_bytes, protocol);
  EXPECT_EQ(stats.overhead_bytes,
            kBatchHeaderOverheadBytes +
                batch.items.size() * kBatchItemOverheadBytes +
                kFrameHeaderBytes);
  // Replicate carries no uncharged transport fields, so the split is exact.
  EXPECT_EQ(body + kFrameHeaderBytes,
            stats.protocol_bytes + stats.overhead_bytes);
}

TEST(Codec, BatchWriterMatchesOneShotEncode) {
  BatchWriter w;
  EXPECT_TRUE(w.empty());
  BatchFrame batch;
  for (int i = 0; i < 3; ++i) {
    Heartbeat hb{static_cast<DcId>(i), 1'000 + i};
    batch.items.push_back(
        RoutedMessage{NodeId{0, 0}, NodeId{1, 1}, Message{hb}});
    w.add(NodeId{0, 0}, NodeId{1, 1}, Message{hb});
  }
  EXPECT_EQ(w.count(), 3u);
  std::vector<std::uint8_t> incremental;
  w.flush_to(incremental);
  EXPECT_TRUE(w.empty());  // reset for reuse
  std::vector<std::uint8_t> oneshot;
  encode(batch, oneshot);
  EXPECT_EQ(incremental, oneshot);
}

TEST(Codec, BatchRejectsEmptyNestedAndControlItems) {
  // Hand-build malformed batches: count 0, a nested batch, a NodeHello item.
  const auto frame_with_body = [](const std::vector<std::uint8_t>& body) {
    std::vector<std::uint8_t> buf;
    for (std::size_t i = 0; i < kFrameHeaderBytes; ++i) {
      buf.push_back(static_cast<std::uint8_t>(body.size() >> (8 * i)));
    }
    buf.insert(buf.end(), body.begin(), body.end());
    return buf;
  };
  const auto header = [] {
    std::vector<std::uint8_t> body;
    body.push_back(kWireVersion);
    body.push_back(static_cast<std::uint8_t>(WireType::kBatch));
    return body;
  };

  {  // count = 0
    auto body = header();
    body.insert(body.end(), 4, 0);
    const auto buf = frame_with_body(body);
    const DecodeResult res = decode_frame(buf.data(), buf.size());
    EXPECT_EQ(res.status, DecodeResult::Status::kError);
    EXPECT_NE(res.error.find("empty batch"), std::string::npos);
  }
  {  // one item whose sub-body is a control frame (NodeHello)
    auto body = header();
    body.push_back(1);  // count LE
    body.insert(body.end(), 3, 0);
    body.insert(body.end(), 16, 0);  // from/to envelope
    std::vector<std::uint8_t> sub;
    sub.push_back(kWireVersion);
    sub.push_back(static_cast<std::uint8_t>(WireType::kNodeHello));
    sub.insert(sub.end(), 8, 0);  // NodeId
    body.push_back(static_cast<std::uint8_t>(sub.size()));
    body.insert(body.end(), 3, 0);
    body.insert(body.end(), sub.begin(), sub.end());
    const auto buf = frame_with_body(body);
    const DecodeResult res = decode_frame(buf.data(), buf.size());
    EXPECT_EQ(res.status, DecodeResult::Status::kError);
    EXPECT_NE(res.error.find("not a protocol message"), std::string::npos);
  }
  {  // nested batch inside a batch
    auto body = header();
    body.push_back(1);
    body.insert(body.end(), 3, 0);
    body.insert(body.end(), 16, 0);
    std::vector<std::uint8_t> sub = header();  // a batch sub-body
    sub.insert(sub.end(), 4, 0);
    body.push_back(static_cast<std::uint8_t>(sub.size()));
    body.insert(body.end(), 3, 0);
    body.insert(body.end(), sub.begin(), sub.end());
    const auto buf = frame_with_body(body);
    const DecodeResult res = decode_frame(buf.data(), buf.size());
    EXPECT_EQ(res.status, DecodeResult::Status::kError);
  }
  {  // implausible item count
    auto body = header();
    body.push_back(0xff);
    body.push_back(0xff);
    body.push_back(0xff);
    body.push_back(0x7f);
    const auto buf = frame_with_body(body);
    const DecodeResult res = decode_frame(buf.data(), buf.size());
    EXPECT_EQ(res.status, DecodeResult::Status::kError);
    EXPECT_NE(res.error.find("implausible batch count"), std::string::npos);
  }
}

TEST(Codec, BatchTruncationNeedsMore) {
  BatchFrame batch;
  for (int i = 0; i < 3; ++i) {
    Replicate repl;
    repl.version.key = K("batch:trunc");
    repl.version.value = "vvvv";
    repl.version.dv = vv3();
    batch.items.push_back(
        RoutedMessage{NodeId{0, 0}, NodeId{1, 0}, Message{repl}});
  }
  std::vector<std::uint8_t> buf;
  encode(batch, buf);
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    const DecodeResult res = decode_frame(buf.data(), cut);
    EXPECT_EQ(res.status, DecodeResult::Status::kNeedMore)
        << "batch prefix of " << cut << " bytes must not decode";
  }
}

}  // namespace
}  // namespace pocc::proto
