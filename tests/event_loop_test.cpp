// net::EventLoop unit tests — all backends (epoll where the platform has
// it, the poll(2) fallback everywhere, io_uring multishot poll where the
// kernel permits) run the same readiness contract:
// level-triggered readable/writable edges on pipes and socketpairs, timeout
// behavior, idempotent watch/unwatch, and the EINTR discipline (an
// interrupted wait returns an EMPTY ready set instead of acting on
// unspecified revents — the regression behind this test file).
#include <fcntl.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/event_loop.hpp"

namespace pocc::net {
namespace {

std::vector<EventLoop::Backend> backends_under_test() {
  std::vector<EventLoop::Backend> b{EventLoop::Backend::kPoll};
  // The platform default is kEpoll everywhere we build; comparing against
  // it keeps a hypothetical poll-only platform from instantiating a
  // duplicate leg. The env override must not hide backends from the matrix.
#if defined(__linux__)
  b.push_back(EventLoop::Backend::kEpoll);
#endif
  if (EventLoop::uring_available()) {
    b.push_back(EventLoop::Backend::kUring);
  }
  return b;
}

struct PipePair {
  int r = -1;
  int w = -1;
  PipePair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::pipe(fds), 0);
    r = fds[0];
    w = fds[1];
    ::fcntl(r, F_SETFL, O_NONBLOCK);
    ::fcntl(w, F_SETFL, O_NONBLOCK);
  }
  ~PipePair() {
    if (r >= 0) ::close(r);
    if (w >= 0) ::close(w);
  }
};

const EventLoop::Event* find_fd(const std::vector<EventLoop::Event>& evs,
                                int fd) {
  for (const auto& e : evs) {
    if (e.fd == fd) return &e;
  }
  return nullptr;
}

// Surfaces the io_uring coverage decision in the test log: a green run
// without Uring legs must say WHY they were absent (kernel/seccomp denial),
// so CI summaries can distinguish "skipped" from "silently untested".
TEST(EventLoopBackends, UringCoverageReported) {
  if (!EventLoop::uring_available()) {
    GTEST_SKIP() << "io_uring denied by kernel/seccomp — kUring legs not "
                    "instantiated; kEpoll fallback covers the transport";
  }
  EventLoop loop(EventLoop::Backend::kUring);
  EXPECT_EQ(loop.backend(), EventLoop::Backend::kUring);
}

// A kUring request on a kernel without io_uring must degrade to a working
// backend, not crash — callers pick backends from flags/env.
TEST(EventLoopBackends, UringRequestDegradesGracefully) {
  EventLoop loop(EventLoop::Backend::kUring);
  if (EventLoop::uring_available()) {
    EXPECT_EQ(loop.backend(), EventLoop::Backend::kUring);
  } else {
    EXPECT_NE(loop.backend(), EventLoop::Backend::kUring);
  }
  // Whatever it degraded to must actually work.
  PipePair p;
  loop.watch(p.r, true, false);
  ASSERT_EQ(::write(p.w, "x", 1), 1);
  std::vector<EventLoop::Event> evs;
  ASSERT_GT(loop.wait(1000, evs), 0u);
}

TEST(EventLoopBackends, ParseAndNameRoundTrip) {
  EventLoop::Backend b{};
  ASSERT_TRUE(EventLoop::parse_backend("epoll", &b));
  EXPECT_EQ(b, EventLoop::Backend::kEpoll);
  ASSERT_TRUE(EventLoop::parse_backend("poll", &b));
  EXPECT_EQ(b, EventLoop::Backend::kPoll);
  ASSERT_TRUE(EventLoop::parse_backend("uring", &b));
  EXPECT_EQ(b, EventLoop::Backend::kUring);
  EXPECT_FALSE(EventLoop::parse_backend("io_uring", &b));
  EXPECT_FALSE(EventLoop::parse_backend("", &b));
  for (auto x : {EventLoop::Backend::kEpoll, EventLoop::Backend::kPoll,
                 EventLoop::Backend::kUring}) {
    EventLoop::Backend parsed{};
    ASSERT_TRUE(EventLoop::parse_backend(EventLoop::backend_name(x), &parsed));
    EXPECT_EQ(parsed, x);
  }
}

class EventLoopTest : public ::testing::TestWithParam<EventLoop::Backend> {};

TEST_P(EventLoopTest, ReportsReadableWhenBytesArrive) {
  EventLoop loop(GetParam());
  ASSERT_EQ(loop.backend(), GetParam());
  PipePair p;
  loop.watch(p.r, /*read=*/true, /*write=*/false);
  EXPECT_EQ(loop.watched(), 1u);

  std::vector<EventLoop::Event> evs;
  EXPECT_EQ(loop.wait(0, evs), 0u);  // nothing pending yet

  ASSERT_EQ(::write(p.w, "x", 1), 1);
  ASSERT_GT(loop.wait(1000, evs), 0u);
  const EventLoop::Event* e = find_fd(evs, p.r);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->readable);
  EXPECT_FALSE(e->writable);
}

TEST_P(EventLoopTest, ReportsWritableOnIdleSocketButNotPipeReadEnd) {
  EventLoop loop(GetParam());
  int sv[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  loop.watch(sv[0], /*read=*/true, /*write=*/true);

  std::vector<EventLoop::Event> evs;
  ASSERT_GT(loop.wait(1000, evs), 0u);
  const EventLoop::Event* e = find_fd(evs, sv[0]);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->writable);  // empty send buffer
  EXPECT_FALSE(e->readable);

  // Dropping write interest must stop the level-triggered writable storm.
  loop.watch(sv[0], /*read=*/true, /*write=*/false);
  EXPECT_EQ(loop.wait(0, evs), 0u);

  loop.unwatch(sv[0]);
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST_P(EventLoopTest, PeerCloseReportsReadableEof) {
  EventLoop loop(GetParam());
  int sv[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  loop.watch(sv[0], /*read=*/true, /*write=*/false);
  ::close(sv[1]);

  // EOF surfaces as readable (recv returning 0), whether the backend tags
  // it EPOLLRDHUP/POLLHUP or plain IN — the transport just needs a wakeup.
  std::vector<EventLoop::Event> evs;
  ASSERT_GT(loop.wait(1000, evs), 0u);
  const EventLoop::Event* e = find_fd(evs, sv[0]);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->readable || e->error);

  loop.unwatch(sv[0]);
  ::close(sv[0]);
}

TEST_P(EventLoopTest, WaitHonorsTimeout) {
  EventLoop loop(GetParam());
  PipePair p;
  loop.watch(p.r, /*read=*/true, /*write=*/false);

  // The wait contract allows spurious early returns with zero events
  // (EINTR-class interruptions — e.g. kernel task-work from an io_uring
  // ring torn down by an earlier test leg interrupts this thread's next
  // syscall). Callers re-enter for the remaining budget; so does the test.
  const auto start = std::chrono::steady_clock::now();
  std::vector<EventLoop::Event> evs;
  long elapsed_ms = 0;
  for (;;) {
    EXPECT_EQ(loop.wait(static_cast<int>(50 - elapsed_ms), evs), 0u);
    elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    if (elapsed_ms >= 50 || !evs.empty()) break;
  }
  EXPECT_GE(elapsed_ms, 40);  // scheduler slop allowed, not a busy spin
}

TEST_P(EventLoopTest, UnwatchRemovesAndRewatchRestores) {
  EventLoop loop(GetParam());
  PipePair p;
  loop.watch(p.r, true, false);
  ASSERT_EQ(::write(p.w, "x", 1), 1);

  loop.unwatch(p.r);
  EXPECT_EQ(loop.watched(), 0u);
  std::vector<EventLoop::Event> evs;
  EXPECT_EQ(loop.wait(0, evs), 0u);

  // Re-watching the same fd must work (epoll ADD-after-DEL path) and the
  // level-triggered byte is still there.
  loop.watch(p.r, true, false);
  ASSERT_GT(loop.wait(1000, evs), 0u);
  EXPECT_NE(find_fd(evs, p.r), nullptr);

  // watch() is idempotent: repeating the same interest is a no-op, changing
  // it is a MOD — neither may error or duplicate events.
  loop.watch(p.r, true, false);
  loop.watch(p.r, true, true);
  loop.watch(p.r, true, false);
  ASSERT_GT(loop.wait(1000, evs), 0u);
  std::size_t hits = 0;
  for (const auto& e : evs) {
    if (e.fd == p.r) ++hits;
  }
  EXPECT_EQ(hits, 1u);
}

TEST_P(EventLoopTest, InterruptedWaitReturnsEmptySetAndSurvives) {
  // The EINTR contract: a signal landing inside wait() yields ZERO events
  // (never unspecified garbage), and the loop keeps working afterwards.
  struct sigaction sa{};
  sa.sa_handler = [](int) {};
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART — the wait must actually take the EINTR
  struct sigaction old{};
  ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);

  EventLoop loop(GetParam());
  PipePair p;
  loop.watch(p.r, true, false);

  std::atomic<bool> done{false};
  const pthread_t waiter = pthread_self();
  std::thread pepper([&] {
    while (!done.load()) {
      pthread_kill(waiter, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // Interrupted waits return 0 events; eventually the write lands and the
  // loop still reports it despite the ongoing signal storm.
  std::vector<EventLoop::Event> evs;
  for (int i = 0; i < 20; ++i) {
    loop.wait(5, evs);
    for (const auto& e : evs) EXPECT_EQ(e.fd, p.r);
  }
  ASSERT_EQ(::write(p.w, "x", 1), 1);
  bool saw = false;
  for (int i = 0; i < 200 && !saw; ++i) {
    loop.wait(10, evs);
    saw = find_fd(evs, p.r) != nullptr;
  }
  done.store(true);
  pepper.join();
  ASSERT_EQ(sigaction(SIGUSR1, &old, nullptr), 0);
  EXPECT_TRUE(saw);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, EventLoopTest, ::testing::ValuesIn(backends_under_test()),
    [](const ::testing::TestParamInfo<EventLoop::Backend>& param) {
      switch (param.param) {
        case EventLoop::Backend::kEpoll:
          return "Epoll";
        case EventLoop::Backend::kUring:
          return "Uring";
        case EventLoop::Backend::kPoll:
          break;
      }
      return "Poll";
    });

}  // namespace
}  // namespace pocc::net
