// FaultPlan generation: seed determinism, content hashing, and the validity
// invariants that make random plans safe to assert convergence on (every
// fault clears within the horizon, crash windows never overlap per node,
// bounded skew/drift magnitudes).
#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>

namespace pocc::fault {
namespace {

TopologyConfig topo(std::uint32_t dcs = 3, std::uint32_t parts = 2) {
  TopologyConfig t;
  t.num_dcs = dcs;
  t.partitions_per_dc = parts;
  return t;
}

bool plans_equal(const FaultPlan& a, const FaultPlan& b) {
  if (a.horizon_us != b.horizon_us || a.events.size() != b.events.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    const FaultEvent& x = a.events[i];
    const FaultEvent& y = b.events[i];
    if (x.kind != y.kind || x.at != y.at || x.duration != y.duration ||
        x.dc_a != y.dc_a || x.dc_b != y.dc_b || !(x.node == y.node) ||
        x.extra_delay_us != y.extra_delay_us ||
        x.delay_multiplier != y.delay_multiplier ||
        x.skew_delta_us != y.skew_delta_us ||
        x.drift_delta_ppm != y.drift_delta_ppm) {
      return false;
    }
  }
  return true;
}

TEST(FaultPlanTest, SameSeedSamePlanAndHash) {
  const FaultPlan a = FaultPlan::random(42, topo(), 600'000);
  const FaultPlan b = FaultPlan::random(42, topo(), 600'000);
  EXPECT_TRUE(plans_equal(a, b));
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(FaultPlanTest, DifferentSeedsProduceDifferentPlans) {
  const FaultPlan a = FaultPlan::random(1, topo(), 600'000);
  const FaultPlan b = FaultPlan::random(2, topo(), 600'000);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(FaultPlanTest, HashCoversEveryEventField) {
  const FaultPlan base = FaultPlan::random(7, topo(), 600'000);
  ASSERT_FALSE(base.events.empty());
  // Mutating any scheduling-relevant field must change the digest — a repro
  // whose plan silently drifted must not masquerade as the original.
  FaultPlan m = base;
  m.events[0].at += 1;
  EXPECT_NE(m.hash(), base.hash());
  m = base;
  m.events[0].duration += 1;
  EXPECT_NE(m.hash(), base.hash());
  m = base;
  m.events[0].kind = m.events[0].kind == FaultKind::kPartition
                         ? FaultKind::kCrash
                         : FaultKind::kPartition;
  EXPECT_NE(m.hash(), base.hash());
  m = base;
  m.horizon_us += 1;
  EXPECT_NE(m.hash(), base.hash());
}

TEST(FaultPlanTest, GeneratedPlansSatisfyInvariantsAcrossManySeeds) {
  const TopologyConfig t = topo();
  const FaultPlanLimits limits;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const FaultPlan plan = FaultPlan::random(seed, t, 500'000, limits);
    plan.validate(t);  // aborts on violation
    EXPECT_GE(plan.events.size(), limits.min_events);
    EXPECT_LE(plan.events.size(), limits.max_events);
    for (const FaultEvent& e : plan.events) {
      // Clears inside the horizon with a fault-free tail.
      EXPECT_LE(e.clears_at(), plan.horizon_us - plan.horizon_us / 10);
      EXPECT_GE(e.at, plan.horizon_us / 20);
      if (e.kind == FaultKind::kClockSkewRamp) {
        EXPECT_LE(std::llabs(e.skew_delta_us), limits.max_abs_skew_us);
        EXPECT_LE(std::abs(e.drift_delta_ppm), limits.max_abs_drift_ppm);
      }
      if (e.kind == FaultKind::kLinkDegrade) {
        EXPECT_GT(e.extra_delay_us, 0);
        EXPECT_LE(e.extra_delay_us, limits.max_extra_delay_us);
        EXPECT_GE(e.delay_multiplier, 1.0);
        EXPECT_LE(e.delay_multiplier, limits.max_delay_multiplier);
      }
    }
  }
}

TEST(FaultPlanTest, CrashWindowsNeverOverlapPerNode) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const FaultPlan plan = FaultPlan::random(seed, topo(2, 1), 500'000);
    std::map<std::pair<DcId, PartitionId>,
             std::vector<std::pair<Timestamp, Timestamp>>>
        windows;
    for (const FaultEvent& e : plan.events) {
      if (e.kind != FaultKind::kCrash) continue;
      auto& claimed = windows[{e.node.dc, e.node.part}];
      for (const auto& w : claimed) {
        EXPECT_FALSE(e.at < w.second && w.first < e.clears_at())
            << "seed " << seed << ": overlapping crash windows";
      }
      claimed.emplace_back(e.at, e.clears_at());
    }
  }
}

TEST(FaultPlanTest, ToStringNamesEveryEvent) {
  FaultPlan plan = FaultPlan::random(3, topo(), 600'000);
  const std::string s = plan.to_string();
  for (const FaultEvent& e : plan.events) {
    EXPECT_NE(s.find(fault_kind_name(e.kind)), std::string::npos);
  }
}

TEST(FaultPlanTest, ValidateRejectsUnsortedEvents) {
  FaultPlan plan = FaultPlan::random(5, topo(), 600'000);
  ASSERT_GE(plan.events.size(), 2u);
  std::swap(plan.events.front(), plan.events.back());
  if (plan.events.front().at == plan.events.back().at) {
    GTEST_SKIP() << "degenerate draw: equal timestamps";
  }
  EXPECT_DEATH(plan.validate(topo()), "time-sorted");
}

}  // namespace
}  // namespace pocc::fault
