// Network-partition behaviour (§III-B): POCC blocks on unresolvable
// dependencies during a partition and resumes on heal; HA-POCC detects the
// partition, falls back to pessimistic sessions, keeps serving, and promotes
// back after the heal. Includes the lost-update discard after a permanent DC
// failure.
#include <gtest/gtest.h>

#include "store/key_space.hpp"

#include "cluster/sim_cluster.hpp"

namespace pocc::cluster {
namespace {

SimClusterConfig partition_config(SystemKind system) {
  SimClusterConfig cfg;
  cfg.topology.num_dcs = 3;
  cfg.topology.partitions_per_dc = 2;
  cfg.topology.partition_scheme = PartitionScheme::kPrefix;
  cfg.latency = LatencyConfig::uniform(300, 0);
  cfg.latency.inter_dc_base_us = {
      {0, 5'000, 5'000}, {5'000, 0, 5'000}, {5'000, 5'000, 0}};
  cfg.clock = ClockConfig::perfect();
  cfg.system = system;
  cfg.seed = 31;
  cfg.protocol.block_timeout_us = 100'000;  // HA partition suspicion
  return cfg;
}

/// Builds the blocking scenario from §III-B: DC0–DC1 are partitioned; DC2
/// still talks to both. A fresh item X2 is written in DC0 (reaches DC2 but
/// not DC1); a client in DC2 reads it and writes Y on another partition; Y
/// reaches DC1. A DC1 client that reads Y now potentially depends on X2,
/// which DC1 cannot receive until the partition heals.
struct BlockingScenario {
  explicit BlockingScenario(SimCluster& cluster)
      : writer0(cluster.create_manual_client(0)),
        relay2(cluster.create_manual_client(2)),
        reader1(cluster.create_manual_client(1)) {
    cluster.run_for(10'000);
    cluster.partition_dcs(0, 1);
    // X2 on partition 0, created in DC0 during the partition.
    EXPECT_TRUE(writer0.put("0:x", "x2").ok);
    cluster.run_for(50'000);  // X2 reaches DC2 (but not DC1)
    const auto x = relay2.get("0:x");
    EXPECT_TRUE(x.ok);
    EXPECT_TRUE(x.found);
    // Y on partition 1, created in DC2, depends on X2.
    EXPECT_TRUE(relay2.put("1:y", "y-depends-on-x2").ok);
    cluster.run_for(50'000);  // Y reaches DC1
    const auto y = reader1.get("1:y");
    EXPECT_TRUE(y.ok);
    EXPECT_TRUE(y.found);
    // reader1's RDV now covers X2's timestamp at the DC0 entry.
  }

  SimClient& writer0;
  SimClient& relay2;
  SimClient& reader1;
};

TEST(Partition, PoccGetBlocksDuringPartitionAndResumesOnHeal) {
  SimCluster cluster(partition_config(SystemKind::kPocc));
  BlockingScenario scenario(cluster);

  // Reading any key on partition 0 in DC1 must block: VV[0] cannot cover the
  // dependency on X2 while the partition is up.
  auto blocked = scenario.reader1.get("0:other", /*max_wait=*/300'000);
  EXPECT_FALSE(blocked.ok) << "GET must stall during the partition";
  EXPECT_GE(cluster.total_parked_requests(), 1u);

  cluster.heal_dcs(0, 1);
  // The manual client is still awaiting that reply; pump for it.
  const bool served = cluster.pump_until(
      [&] { return cluster.total_parked_requests() == 0; }, 1'000'000);
  EXPECT_TRUE(served) << "heal must release the stalled request";
}

TEST(Partition, PoccWithoutDependencyNotBlocked) {
  // Operations not depending on partitioned data proceed normally.
  SimCluster cluster(partition_config(SystemKind::kPocc));
  cluster.run_for(10'000);
  cluster.partition_dcs(0, 1);
  auto& client1 = cluster.create_manual_client(1);
  const auto put = client1.put("0:independent", "v", 500'000);
  EXPECT_TRUE(put.ok);
  const auto get = client1.get("0:independent", 500'000);
  EXPECT_TRUE(get.ok);
  EXPECT_TRUE(get.found);
}

TEST(Partition, HaPoccClosesSessionAndFallsBackPessimistic) {
  SimCluster cluster(partition_config(SystemKind::kHaPocc));
  BlockingScenario scenario(cluster);

  // The blocked GET times out server-side (block_timeout 100 ms), the session
  // is closed and re-initialized pessimistically.
  auto r = scenario.reader1.get("0:other", /*max_wait=*/400'000);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(scenario.reader1.engine().pessimistic());

  // The pessimistic session keeps operating during the partition (§III-B).
  const auto pess_get = scenario.reader1.get("0:other", 500'000);
  EXPECT_TRUE(pess_get.ok);
  const auto pess_put = scenario.reader1.put("1:during", "ok", 500'000);
  EXPECT_TRUE(pess_put.ok);

  // After the heal the session is promoted back to optimistic.
  cluster.heal_dcs(0, 1);
  cluster.run_for(300'000);
  const auto after = scenario.reader1.get("0:x", 500'000);
  EXPECT_TRUE(after.ok);
  EXPECT_FALSE(scenario.reader1.engine().pessimistic())
      << "session must be promoted once the partition heals";
}

TEST(Partition, HaPoccWorkloadSurvivesPartitionCycle) {
  SimClusterConfig cfg = partition_config(SystemKind::kHaPocc);
  cfg.enable_checker = true;
  SimCluster cluster(cfg);
  workload::WorkloadConfig wl;
  wl.pattern = workload::Pattern::kGetPut;
  wl.gets_per_put = 2;
  wl.think_time_us = 2'000;
  wl.keys_per_partition = 20;
  cluster.add_workload_clients(2, wl);

  cluster.run_for(100'000);
  cluster.partition_dcs(0, 1);
  cluster.run_for(500'000);  // sessions fall back under the partition
  cluster.heal_dcs(0, 1);
  cluster.run_for(500'000);  // sessions recover

  cluster.stop_clients();
  cluster.run_for(5'000'000);
  for (const auto& v : cluster.checker()->violations()) {
    ADD_FAILURE() << v;
  }
  EXPECT_TRUE(cluster.divergent_keys().empty());
}

TEST(Partition, CureToleratesPartitionWithoutBlocking) {
  // The pessimistic baseline stays available during partitions: reads serve
  // stable versions and never stall on remote dependencies.
  SimCluster cluster(partition_config(SystemKind::kCure));
  cluster.run_for(50'000);
  cluster.partition_dcs(0, 1);
  auto& client1 = cluster.create_manual_client(1);
  for (int i = 0; i < 5; ++i) {
    const auto get = client1.get("0:k" + std::to_string(i), 500'000);
    EXPECT_TRUE(get.ok);
    const auto put =
        client1.put("1:k" + std::to_string(i), "v", 500'000);
    EXPECT_TRUE(put.ok);
  }
  EXPECT_EQ(cluster.total_parked_requests(), 0u);
}

// Chaos sweep: random partition/heal cycles while an HA-POCC workload runs.
// Whatever the schedule, no execution may violate causal consistency, and
// once the network stays healed the cluster must converge.
class PartitionChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionChaosTest, RandomPartitionCyclesStayConsistent) {
  SimClusterConfig cfg = partition_config(SystemKind::kHaPocc);
  cfg.enable_checker = true;
  cfg.seed = GetParam();
  SimCluster cluster(cfg);
  workload::WorkloadConfig wl;
  wl.pattern = workload::Pattern::kGetPut;
  wl.gets_per_put = 2;
  wl.think_time_us = 2'000;
  wl.keys_per_partition = 15;
  cluster.add_workload_clients(2, wl);
  cluster.run_for(50'000);

  Rng rng(GetParam() * 7919);
  for (int cycle = 0; cycle < 4; ++cycle) {
    const DcId a = static_cast<DcId>(rng.uniform(3));
    DcId b = static_cast<DcId>(rng.uniform(3));
    if (a == b) b = (b + 1) % 3;
    cluster.partition_dcs(a, b);
    cluster.run_for(100'000 + static_cast<Duration>(rng.uniform(200'000)));
    cluster.heal_dcs(a, b);
    cluster.run_for(100'000 + static_cast<Duration>(rng.uniform(100'000)));
  }

  cluster.stop_clients();
  cluster.run_for(5'000'000);
  for (const auto& v : cluster.checker()->violations()) {
    ADD_FAILURE() << v;
  }
  EXPECT_TRUE(cluster.divergent_keys().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionChaosTest,
                         ::testing::Values(11, 22, 33, 44));

TEST(Partition, LostUpdateDiscardAfterDcFailure) {
  SimCluster cluster(partition_config(SystemKind::kHaPocc));
  BlockingScenario scenario(cluster);
  // DC0 never comes back: declare it lost. DC1 discards Y (it depends on X2,
  // which DC1 never received) — the "lost update" cost of §III-B.
  cluster.isolate_dc(0);
  const auto discarded = cluster.declare_dc_lost(0);
  EXPECT_GE(discarded, 1u);
  const auto* y_chain_dc1 =
      cluster.engine(NodeId{1, 1}).partition_store().find(store::intern_key("1:y"));
  ASSERT_NE(y_chain_dc1, nullptr);
  EXPECT_TRUE(y_chain_dc1->empty())
      << "DC1 must discard the update that depends on lost DC0 data";
  // DC2 received X2 directly, so its copy of Y survives.
  const auto* y_chain_dc2 =
      cluster.engine(NodeId{2, 1}).partition_store().find(store::intern_key("1:y"));
  ASSERT_NE(y_chain_dc2, nullptr);
  EXPECT_FALSE(y_chain_dc2->empty());
}

}  // namespace
}  // namespace pocc::cluster
