// TcpTransport: framing across real sockets, greeting-before-traffic,
// reconnect with FIFO-preserving buffering, and stats accounting.
#include "net/tcp_transport.hpp"

#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "store/key_space.hpp"

namespace pocc::net {
namespace {

using namespace std::chrono_literals;

std::vector<std::uint8_t> heartbeat_frame(DcId dc, Timestamp ts) {
  std::vector<std::uint8_t> buf;
  proto::encode(proto::Message{proto::Heartbeat{dc, ts}}, buf);
  return buf;
}

/// Collects decoded frames thread-safely.
struct FrameSink {
  std::mutex mu;
  std::vector<proto::Frame> frames;
  std::atomic<int> connects{0};
  std::atomic<int> disconnects{0};

  TcpTransport::Callbacks callbacks() {
    return TcpTransport::Callbacks{
        [this](ConnId, proto::Frame f) {
          std::lock_guard lk(mu);
          frames.push_back(std::move(f));
        },
        [this](ConnId) { ++connects; },
        [this](ConnId) { ++disconnects; },
        nullptr,
        nullptr,
        nullptr,
    };
  }

  std::size_t size() {
    std::lock_guard lk(mu);
    return frames.size();
  }

  std::optional<proto::Message> message_at(std::size_t i) {
    std::lock_guard lk(mu);
    if (i >= frames.size()) return std::nullopt;
    if (auto* m = std::get_if<proto::Message>(&frames[i])) return *m;
    return std::nullopt;
  }

  bool wait_for_frames(std::size_t n, Duration timeout_us = 5'000'000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(timeout_us);
    while (std::chrono::steady_clock::now() < deadline) {
      if (size() >= n) return true;
      std::this_thread::sleep_for(1ms);
    }
    return size() >= n;
  }
};

TEST(TcpTransport, FramesCrossASocketInOrder) {
  FrameSink server_sink;
  TcpTransport server(server_sink.callbacks(), TcpTransport::Options{});
  const std::uint16_t port = server.listen(0);
  ASSERT_GT(port, 0);
  server.start();

  FrameSink client_sink;
  TcpTransport client(client_sink.callbacks(), TcpTransport::Options{});
  const ConnId conn = client.connect_peer("127.0.0.1", port);
  client.start();

  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(client.send(conn, heartbeat_frame(1, 1'000 + i)));
  }
  ASSERT_TRUE(server_sink.wait_for_frames(50));
  for (int i = 0; i < 50; ++i) {
    const auto m = server_sink.message_at(i);
    ASSERT_TRUE(m.has_value());
    const auto& hb = std::get<proto::Heartbeat>(*m);
    EXPECT_EQ(hb.ts, 1'000 + i) << "FIFO order violated at " << i;
  }
  EXPECT_EQ(server.stats().frames_in, 50u);
  EXPECT_EQ(client.stats().frames_out, 50u);
  client.stop();
  server.stop();
}

TEST(TcpTransport, GreetingPrecedesBufferedTraffic) {
  // Frames sent while the link is down must arrive AFTER the greeting once
  // the link comes up — peers must always know who is talking first.
  FrameSink server_sink;
  TcpTransport server(server_sink.callbacks(), TcpTransport::Options{});
  const std::uint16_t port = server.listen(0);

  FrameSink client_sink;
  TcpTransport client(client_sink.callbacks(), TcpTransport::Options{});
  const ConnId conn = client.connect_peer("127.0.0.1", port);
  std::vector<std::uint8_t> hello;
  proto::encode(proto::NodeHello{NodeId{1, 2}}, hello);
  client.set_greeting(conn, hello);
  client.start();
  // The server is not started yet: sends buffer while dialing fails.
  ASSERT_TRUE(client.send(conn, heartbeat_frame(7, 42)));
  std::this_thread::sleep_for(50ms);
  server.start();

  ASSERT_TRUE(server_sink.wait_for_frames(2));
  const auto first = [&] {
    std::lock_guard lk(server_sink.mu);
    return server_sink.frames[0];
  }();
  ASSERT_TRUE(std::holds_alternative<proto::NodeHello>(first));
  EXPECT_EQ(std::get<proto::NodeHello>(first).node, (NodeId{1, 2}));
  const auto second = server_sink.message_at(1);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(std::get<proto::Heartbeat>(*second).ts, 42);
  client.stop();
  server.stop();
}

TEST(TcpTransport, ReconnectsAndPreservesPendingFrames) {
  FrameSink client_sink;
  TcpTransport client(client_sink.callbacks(), TcpTransport::Options{});

  // First server instance.
  FrameSink sink1;
  auto server = std::make_unique<TcpTransport>(sink1.callbacks(),
                                               TcpTransport::Options{});
  const std::uint16_t port = server->listen(0);
  server->start();

  const ConnId conn = client.connect_peer("127.0.0.1", port);
  client.start();
  ASSERT_TRUE(client.send(conn, heartbeat_frame(0, 1)));
  ASSERT_TRUE(sink1.wait_for_frames(1));

  // Kill the server; the OS releases the port only after close, so rebind on
  // the same port for the second instance.
  server.reset();
  std::this_thread::sleep_for(30ms);
  // Frames sent while the peer is down are buffered by the outbound link.
  ASSERT_TRUE(client.send(conn, heartbeat_frame(0, 2)));
  ASSERT_TRUE(client.send(conn, heartbeat_frame(0, 3)));

  FrameSink sink2;
  auto server2 =
      std::make_unique<TcpTransport>(sink2.callbacks(),
                                     TcpTransport::Options{});
  // SO_REUSEADDR makes the immediate rebind reliable.
  ASSERT_EQ(server2->listen(port), port);
  server2->start();

  ASSERT_TRUE(sink2.wait_for_frames(2, 10'000'000))
      << "buffered frames were not delivered after reconnect";
  const auto m0 = sink2.message_at(0);
  const auto m1 = sink2.message_at(1);
  ASSERT_TRUE(m0.has_value() && m1.has_value());
  EXPECT_EQ(std::get<proto::Heartbeat>(*m0).ts, 2);
  EXPECT_EQ(std::get<proto::Heartbeat>(*m1).ts, 3);
  EXPECT_GE(client.stats().reconnects, 1u);
  client.stop();
  server2.reset();
}

TEST(TcpTransport, ReconnectDuringHandshakeReplaysGreetingFirst) {
  // The peer dies right after consuming the greeting. On the replacement
  // socket the greeting must be replayed BEFORE any buffered payload — a
  // restarted peer that never saw it could not attribute the traffic.
  FrameSink client_sink;
  TcpTransport client(client_sink.callbacks(), TcpTransport::Options{});

  FrameSink sink1;
  auto server = std::make_unique<TcpTransport>(sink1.callbacks(),
                                               TcpTransport::Options{});
  const std::uint16_t port = server->listen(0);
  server->start();

  const ConnId conn = client.connect_peer("127.0.0.1", port);
  std::vector<std::uint8_t> hello;
  proto::encode(proto::NodeHello{NodeId{2, 1}}, hello);
  client.set_greeting(conn, hello);
  client.start();
  ASSERT_TRUE(client.send(conn, heartbeat_frame(0, 1)));
  // First server saw greeting + one payload, then dies mid-handshake.
  ASSERT_TRUE(sink1.wait_for_frames(2));
  server.reset();
  std::this_thread::sleep_for(30ms);
  ASSERT_TRUE(client.send(conn, heartbeat_frame(0, 2)));
  ASSERT_TRUE(client.send(conn, heartbeat_frame(0, 3)));

  FrameSink sink2;
  auto server2 = std::make_unique<TcpTransport>(sink2.callbacks(),
                                                TcpTransport::Options{});
  ASSERT_EQ(server2->listen(port), port);
  server2->start();

  ASSERT_TRUE(sink2.wait_for_frames(3, 10'000'000))
      << "greeting + buffered frames not delivered after reconnect";
  const auto first = [&] {
    std::lock_guard lk(sink2.mu);
    return sink2.frames[0];
  }();
  ASSERT_TRUE(std::holds_alternative<proto::NodeHello>(first))
      << "replacement socket must open with the greeting";
  EXPECT_EQ(std::get<proto::NodeHello>(first).node, (NodeId{2, 1}));
  const auto m1 = sink2.message_at(1);
  const auto m2 = sink2.message_at(2);
  ASSERT_TRUE(m1.has_value() && m2.has_value());
  EXPECT_EQ(std::get<proto::Heartbeat>(*m1).ts, 2);
  EXPECT_EQ(std::get<proto::Heartbeat>(*m2).ts, 3);
  client.stop();
  server2.reset();
}

TEST(TcpTransport, DownBufferCapDropsWhileDisconnected) {
  // While a link has no socket, buffering is bounded by the tighter
  // down-buffer cap: overflow is dropped and counted, never queued forever.
  FrameSink sink;
  TcpTransport::Options opt;
  opt.max_down_buffer_bytes = 64;  // one heartbeat frame fits, ten do not
  TcpTransport client(sink.callbacks(), opt);
  const ConnId conn = client.connect_peer("127.0.0.1", 1);  // never answers
  client.start();
  bool rejected = false;
  for (int i = 0; i < 10; ++i) {
    rejected = !client.send(conn, heartbeat_frame(0, i)) || rejected;
  }
  EXPECT_TRUE(rejected);
  EXPECT_GT(client.stats().down_buffer_drops, 0u);
  client.stop();
}

TEST(TcpTransport, ChaosLinkDuplicatesAndDelaysAreAccounted) {
  // A dup_p=1 chaos link on the client connection: every frame transmits
  // twice; FIFO order of the originals is preserved and the injection is
  // visible in the transport stats.
  FrameSink server_sink;
  TcpTransport server(server_sink.callbacks(), TcpTransport::Options{});
  const std::uint16_t port = server.listen(0);
  server.start();

  FrameSink client_sink;
  TcpTransport client(client_sink.callbacks(), TcpTransport::Options{});
  const ConnId conn = client.connect_peer("127.0.0.1", port);
  client.start();
  ChaosProfile p;
  p.base_delay_us = 1'000;
  p.dup_p = 1.0;
  client.set_chaos(conn, std::make_shared<ChaosLink>(5, p));

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.send(conn, heartbeat_frame(0, 100 + i)));
  }
  ASSERT_TRUE(server_sink.wait_for_frames(10))
      << "duplicated frames never arrived";
  EXPECT_EQ(client.stats().chaos_duplicates, 5u);
  EXPECT_EQ(client.stats().chaos_delayed, 5u);
  // Dedup the doubled stream: the surviving order must still be FIFO.
  std::vector<Timestamp> seq;
  {
    std::lock_guard lk(server_sink.mu);
    for (const proto::Frame& f : server_sink.frames) {
      if (const auto* m = std::get_if<proto::Message>(&f)) {
        const auto& hb = std::get<proto::Heartbeat>(*m);
        if (seq.empty() || seq.back() != hb.ts) seq.push_back(hb.ts);
      }
    }
  }
  ASSERT_EQ(seq.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(seq[i], 100 + i);
  client.stop();
  server.stop();
}

TEST(TcpTransport, BackpressureCapsOutbox) {
  FrameSink sink;
  TcpTransport::Options tight;
  tight.max_outbox_bytes = 256;  // tiny cap
  TcpTransport client(sink.callbacks(), tight);
  // Dial a port that never answers: everything queues against the cap.
  const ConnId conn = client.connect_peer("127.0.0.1", 1);
  client.start();
  bool rejected = false;
  for (int i = 0; i < 100 && !rejected; ++i) {
    rejected = !client.send(conn, heartbeat_frame(0, i));
  }
  EXPECT_TRUE(rejected) << "overflow must reject sends, not grow unbounded";
  EXPECT_GT(client.stats().send_overflows, 0u);
  client.stop();
}

TEST(TcpTransport, SendToUnknownConnectionFails) {
  FrameSink sink;
  TcpTransport t(sink.callbacks(), TcpTransport::Options{});
  EXPECT_FALSE(t.send(12'345, heartbeat_frame(0, 0)));
}

TEST(TcpTransport, TickFiresPeriodically) {
  FrameSink sink;
  std::atomic<int> ticks{0};
  auto callbacks = sink.callbacks();
  callbacks.on_tick = [&ticks] { ++ticks; };
  TcpTransport::Options opt;
  opt.tick_interval_us = 2'000;
  TcpTransport t(std::move(callbacks), opt);
  t.start();
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (ticks.load() < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  t.stop();
  EXPECT_GE(ticks.load(), 3) << "flush tick never fired";
}

TEST(TcpTransport, SignalStormDoesNotTearConnections) {
  // The EINTR regression test: pepper every loop thread with SIGUSR1 (no
  // SA_RESTART, so recv/send/epoll_wait really return EINTR) during a
  // checked transfer. Interrupted syscalls must be retried, not treated as
  // socket errors — the connection survives with FIFO intact and ZERO
  // reconnects.
  struct sigaction sa{};
  sa.sa_handler = [](int) {};
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART
  struct sigaction old{};
  ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);

  FrameSink server_sink;
  TcpTransport::Options sopt;
  sopt.num_loops = 2;
  TcpTransport server(server_sink.callbacks(), sopt);
  const std::uint16_t port = server.listen(0);
  server.start();

  FrameSink client_sink;
  TcpTransport client(client_sink.callbacks(), TcpTransport::Options{});
  const ConnId conn = client.connect_peer("127.0.0.1", port);
  client.start();

  std::atomic<bool> storm{true};
  std::vector<std::thread::native_handle_type> victims;
  for (const auto h : server.loop_thread_handles()) victims.push_back(h);
  for (const auto h : client.loop_thread_handles()) victims.push_back(h);
  std::thread pepper([&] {
    while (storm.load()) {
      for (const auto h : victims) {
        pthread_kill(h, SIGUSR1);
      }
      std::this_thread::sleep_for(200us);
    }
  });

  constexpr int kFrames = 400;
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(client.send(conn, heartbeat_frame(1, 1'000 + i)));
    if (i % 50 == 0) std::this_thread::sleep_for(1ms);  // overlap the storm
  }
  const bool all = server_sink.wait_for_frames(kFrames, 20'000'000);
  storm.store(false);
  pepper.join();
  ASSERT_TRUE(all) << "frames lost under the signal storm";

  for (int i = 0; i < kFrames; ++i) {
    const auto m = server_sink.message_at(i);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(std::get<proto::Heartbeat>(*m).ts, 1'000 + i)
        << "FIFO order violated at " << i;
  }
  EXPECT_EQ(client.stats().reconnects, 0u)
      << "a signal tore a healthy connection down";
  EXPECT_EQ(server_sink.disconnects.load(), 0);
  EXPECT_EQ(client_sink.disconnects.load(), 0);
  client.stop();
  server.stop();
  ASSERT_EQ(sigaction(SIGUSR1, &old, nullptr), 0);
}

TEST(TcpTransport, ShardedLoopsPreserveFifoPerStream) {
  // Several clients against a 4-shard server: the SO_REUSEPORT listeners
  // spread the accepts, and every stream keeps its own FIFO regardless of
  // which shard owns it.
  FrameSink server_sink;
  TcpTransport::Options sopt;
  sopt.num_loops = 4;
  TcpTransport server(server_sink.callbacks(), sopt);
  ASSERT_EQ(server.num_loops(), 4u);
  const std::uint16_t port = server.listen(0);
  server.start();

  constexpr int kClients = 6;
  constexpr int kPerClient = 100;
  std::vector<std::unique_ptr<TcpTransport>> clients;
  std::vector<FrameSink> sinks(kClients);
  std::vector<ConnId> conns;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(std::make_unique<TcpTransport>(
        sinks[c].callbacks(), TcpTransport::Options{}));
    conns.push_back(clients.back()->connect_peer("127.0.0.1", port));
    clients.back()->start();
  }
  // The heartbeat's dc field names the stream, ts carries the sequence.
  for (int i = 0; i < kPerClient; ++i) {
    for (int c = 0; c < kClients; ++c) {
      ASSERT_TRUE(clients[c]->send(
          conns[c], heartbeat_frame(static_cast<DcId>(c), 1 + i)));
    }
  }
  ASSERT_TRUE(server_sink.wait_for_frames(kClients * kPerClient, 20'000'000));

  std::unordered_map<DcId, Timestamp> last_ts;
  {
    std::lock_guard lk(server_sink.mu);
    for (const proto::Frame& f : server_sink.frames) {
      const auto* m = std::get_if<proto::Message>(&f);
      ASSERT_NE(m, nullptr);
      const auto& hb = std::get<proto::Heartbeat>(*m);
      EXPECT_EQ(hb.ts, last_ts[hb.src_dc] + 1)
          << "per-stream FIFO violated on stream " << hb.src_dc;
      last_ts[hb.src_dc] = hb.ts;
    }
  }
  EXPECT_EQ(last_ts.size(), static_cast<std::size_t>(kClients));
  EXPECT_EQ(server.stats().accepts, static_cast<std::uint64_t>(kClients));
  for (auto& c : clients) c->stop();
  server.stop();
}

TEST(TcpTransport, MigrateRehomesInboundConnectionPreservingFifo) {
  // Connection pinning: mid-stream the server migrates the inbound
  // connection to the other shard (as a host does on ClientHello). The
  // socket keeps delivering in order under a new ConnId on the target
  // loop — no disconnect, no reconnect, one migration accounted.
  std::mutex mu;
  std::vector<std::pair<ConnId, Timestamp>> received;
  std::vector<std::pair<ConnId, ConnId>> renames;
  std::atomic<int> connects{0};
  std::atomic<int> disconnects{0};
  TcpTransport* server_ptr = nullptr;

  TcpTransport::Callbacks cb{
      [&](ConnId conn, proto::Frame f) {
        const auto* m = std::get_if<proto::Message>(&f);
        ASSERT_NE(m, nullptr);
        const auto& hb = std::get<proto::Heartbeat>(*m);
        {
          std::lock_guard lk(mu);
          received.emplace_back(conn, hb.ts);
        }
        if (hb.ts == 1) {
          // Pin to the shard the connection is NOT on (from the owning
          // shard's on_frame, like the ClientHello path).
          const std::uint32_t target = 1 - TcpTransport::loop_of(conn);
          EXPECT_TRUE(server_ptr->migrate(conn, target));
        }
      },
      [&](ConnId) { ++connects; },
      [&](ConnId) { ++disconnects; },
      nullptr,
      nullptr,
      [&](ConnId from, ConnId to) {
        std::lock_guard lk(mu);
        renames.emplace_back(from, to);
      },
  };
  TcpTransport::Options sopt;
  sopt.num_loops = 2;
  TcpTransport server(std::move(cb), sopt);
  server_ptr = &server;
  const std::uint16_t port = server.listen(0);
  server.start();

  FrameSink client_sink;
  TcpTransport client(client_sink.callbacks(), TcpTransport::Options{});
  const ConnId conn = client.connect_peer("127.0.0.1", port);
  client.start();

  constexpr int kFrames = 50;
  // First frame triggers the pin; wait for the handoff to complete so the
  // rest of the stream demonstrably crosses it.
  ASSERT_TRUE(client.send(conn, heartbeat_frame(0, 1)));
  const auto rename_deadline = std::chrono::steady_clock::now() + 10s;
  while (std::chrono::steady_clock::now() < rename_deadline) {
    {
      std::lock_guard lk(mu);
      if (!renames.empty()) break;
    }
    std::this_thread::sleep_for(1ms);
  }
  for (int i = 2; i <= kFrames; ++i) {
    ASSERT_TRUE(client.send(conn, heartbeat_frame(0, i)));
  }
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (std::chrono::steady_clock::now() < deadline) {
    {
      std::lock_guard lk(mu);
      if (received.size() >= static_cast<std::size_t>(kFrames)) break;
    }
    std::this_thread::sleep_for(1ms);
  }

  std::lock_guard lk(mu);
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kFrames));
  for (int i = 0; i < kFrames; ++i) {
    EXPECT_EQ(received[i].second, i + 1) << "FIFO broke across the handoff";
  }
  ASSERT_EQ(renames.size(), 1u) << "exactly one migration expected";
  const auto [from, to] = renames[0];
  EXPECT_EQ(TcpTransport::loop_of(to), 1 - TcpTransport::loop_of(from));
  // Frames after the handoff arrive under the new id (the handoff point
  // itself is wherever the decode pass cut the stream).
  EXPECT_EQ(received.front().first, from);
  EXPECT_EQ(received.back().first, to);
  EXPECT_EQ(server.stats().migrations, 1u);
  EXPECT_EQ(connects.load(), 1) << "migration must not re-announce";
  EXPECT_EQ(disconnects.load(), 0) << "migration must not announce a loss";
  client.stop();
  server.stop();
}

TEST(TcpTransport, PollBackendCarriesTrafficAcrossShards) {
  // The poll(2) fallback must behave identically to epoll — run a sharded
  // transfer on it explicitly (CI otherwise only exercises the default).
  FrameSink server_sink;
  TcpTransport::Options sopt;
  sopt.num_loops = 2;
  sopt.backend = EventLoop::Backend::kPoll;
  TcpTransport server(server_sink.callbacks(), sopt);
  const std::uint16_t port = server.listen(0);
  server.start();

  FrameSink client_sink;
  TcpTransport::Options copt;
  copt.backend = EventLoop::Backend::kPoll;
  TcpTransport client(client_sink.callbacks(), copt);
  const ConnId conn = client.connect_peer("127.0.0.1", port);
  client.start();

  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(client.send(conn, heartbeat_frame(0, 1'000 + i)));
  }
  ASSERT_TRUE(server_sink.wait_for_frames(50));
  for (int i = 0; i < 50; ++i) {
    const auto m = server_sink.message_at(i);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(std::get<proto::Heartbeat>(*m).ts, 1'000 + i);
  }
  client.stop();
  server.stop();
}

TEST(TcpTransport, UringBackendCarriesTrafficAcrossShards) {
  // Same sharded transfer on the io_uring backend: multishot-poll readiness
  // must be indistinguishable from epoll at the framing layer, and the
  // backend's counters must show up in the aggregated transport stats.
  if (!EventLoop::uring_available()) {
    GTEST_SKIP() << "io_uring denied by kernel/seccomp — kUring transport "
                    "leg not runnable here";
  }
  FrameSink server_sink;
  TcpTransport::Options sopt;
  sopt.num_loops = 2;
  sopt.backend = EventLoop::Backend::kUring;
  TcpTransport server(server_sink.callbacks(), sopt);
  const std::uint16_t port = server.listen(0);
  server.start();

  FrameSink client_sink;
  TcpTransport::Options copt;
  copt.backend = EventLoop::Backend::kUring;
  TcpTransport client(client_sink.callbacks(), copt);
  const ConnId conn = client.connect_peer("127.0.0.1", port);
  client.start();

  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(client.send(conn, heartbeat_frame(0, 1'000 + i)));
  }
  ASSERT_TRUE(server_sink.wait_for_frames(50));
  for (int i = 0; i < 50; ++i) {
    const auto m = server_sink.message_at(i);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(std::get<proto::Heartbeat>(*m).ts, 1'000 + i);
  }
  const TransportStats st = server.stats();
  EXPECT_GT(st.uring_enters, 0u);
  EXPECT_GT(st.uring_sqes, 0u);
  EXPECT_GT(st.uring_cqes, 0u);
  client.stop();
  server.stop();
}

TEST(TcpTransport, UringBackendMigratesInboundConnection) {
  // Connection pinning across shards on kUring: the unwatch on the source
  // loop must cancel the armed multishot poll (no stale CQE can touch the
  // recycled fd slot) and the target loop re-arms it — FIFO holds.
  if (!EventLoop::uring_available()) {
    GTEST_SKIP() << "io_uring denied by kernel/seccomp — kUring migrate "
                    "leg not runnable here";
  }
  std::mutex mu;
  std::vector<Timestamp> received;
  std::vector<std::pair<ConnId, ConnId>> renames;
  TcpTransport* server_ptr = nullptr;
  TcpTransport::Callbacks cb{
      [&](ConnId conn, proto::Frame f) {
        const auto* m = std::get_if<proto::Message>(&f);
        ASSERT_NE(m, nullptr);
        const auto& hb = std::get<proto::Heartbeat>(*m);
        {
          std::lock_guard lk(mu);
          received.push_back(hb.ts);
        }
        if (hb.ts == 1) {
          const std::uint32_t target = 1 - TcpTransport::loop_of(conn);
          EXPECT_TRUE(server_ptr->migrate(conn, target));
        }
      },
      nullptr,
      nullptr,
      nullptr,
      nullptr,
      [&](ConnId from, ConnId to) {
        std::lock_guard lk(mu);
        renames.emplace_back(from, to);
      },
  };
  TcpTransport::Options sopt;
  sopt.num_loops = 2;
  sopt.backend = EventLoop::Backend::kUring;
  TcpTransport server(std::move(cb), sopt);
  server_ptr = &server;
  const std::uint16_t port = server.listen(0);
  server.start();

  FrameSink client_sink;
  TcpTransport::Options copt;
  copt.backend = EventLoop::Backend::kUring;
  TcpTransport client(client_sink.callbacks(), copt);
  const ConnId conn = client.connect_peer("127.0.0.1", port);
  client.start();

  constexpr int kFrames = 50;
  ASSERT_TRUE(client.send(conn, heartbeat_frame(0, 1)));
  const auto rename_deadline = std::chrono::steady_clock::now() + 10s;
  while (std::chrono::steady_clock::now() < rename_deadline) {
    {
      std::lock_guard lk(mu);
      if (!renames.empty()) break;
    }
    std::this_thread::sleep_for(1ms);
  }
  for (int i = 2; i <= kFrames; ++i) {
    ASSERT_TRUE(client.send(conn, heartbeat_frame(0, i)));
  }
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (std::chrono::steady_clock::now() < deadline) {
    {
      std::lock_guard lk(mu);
      if (received.size() >= static_cast<std::size_t>(kFrames)) break;
    }
    std::this_thread::sleep_for(1ms);
  }
  std::lock_guard lk(mu);
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kFrames));
  for (int i = 0; i < kFrames; ++i) {
    EXPECT_EQ(received[i], i + 1) << "FIFO broke across the uring handoff";
  }
  ASSERT_EQ(renames.size(), 1u);
  EXPECT_EQ(server.stats().migrations, 1u);
  client.stop();
  server.stop();
}

// ------------------------------------------------------------ LinkBatcher --

/// Extracts the heartbeat timestamps of every frame in arrival order,
/// unwrapping batches — the cross-frame FIFO order the protocol relies on.
std::vector<Timestamp> heartbeat_sequence(FrameSink& sink) {
  std::vector<Timestamp> seq;
  std::lock_guard lk(sink.mu);
  for (const proto::Frame& f : sink.frames) {
    if (const auto* m = std::get_if<proto::Message>(&f)) {
      if (const auto* hb = std::get_if<proto::Heartbeat>(m)) {
        seq.push_back(hb->ts);
      }
    } else if (const auto* batch = std::get_if<proto::BatchFrame>(&f)) {
      for (const auto& item : batch->items) {
        if (const auto* hb = std::get_if<proto::Heartbeat>(&item.msg)) {
          seq.push_back(hb->ts);
        }
      }
    }
  }
  return seq;
}

std::size_t batch_frames_seen(FrameSink& sink) {
  std::lock_guard lk(sink.mu);
  std::size_t n = 0;
  for (const proto::Frame& f : sink.frames) {
    n += std::holds_alternative<proto::BatchFrame>(f) ? 1 : 0;
  }
  return n;
}

TEST(TcpTransport, BatcherFlushesOnMessageThreshold) {
  FrameSink server_sink;
  TcpTransport server(server_sink.callbacks(), TcpTransport::Options{});
  const std::uint16_t port = server.listen(0);
  server.start();

  FrameSink client_sink;
  TcpTransport client(client_sink.callbacks(), TcpTransport::Options{});
  const ConnId conn = client.connect_peer("127.0.0.1", port);
  client.start();

  BatchPolicy policy;
  policy.max_messages = 8;
  policy.max_bytes = 1u << 20;
  LinkBatcher batcher(client, conn, policy);
  const NodeId from{0, 0};
  const NodeId to{1, 0};
  for (int i = 0; i < 24; ++i) {
    batcher.add(from, to, proto::Message{proto::Heartbeat{0, 100 + i}});
  }
  // 24 messages at a threshold of 8 = exactly 3 inline flushes, no tick.
  ASSERT_TRUE(server_sink.wait_for_frames(3));
  EXPECT_EQ(batch_frames_seen(server_sink), 3u);
  const auto seq = heartbeat_sequence(server_sink);
  ASSERT_EQ(seq.size(), 24u);
  for (int i = 0; i < 24; ++i) EXPECT_EQ(seq[i], 100 + i);
  const BatchStats stats = batcher.stats();
  EXPECT_EQ(stats.batches, 3u);
  EXPECT_EQ(stats.messages, 24u);
  EXPECT_GT(stats.protocol_bytes, 0u);
  EXPECT_GT(stats.overhead_bytes, 0u);
  client.stop();
  server.stop();
}

TEST(TcpTransport, BatcherTimeFlushDrainsStragglers) {
  // A message below every size threshold must still leave within ~one tick.
  FrameSink server_sink;
  TcpTransport server(server_sink.callbacks(), TcpTransport::Options{});
  const std::uint16_t port = server.listen(0);
  server.start();

  FrameSink client_sink;
  BatchPolicy policy;  // defaults: far above 1 message
  std::shared_ptr<LinkBatcher> batcher;
  std::mutex batcher_mu;
  auto callbacks = client_sink.callbacks();
  callbacks.on_tick = [&] {
    std::lock_guard lk(batcher_mu);
    if (batcher) batcher->flush();
  };
  TcpTransport::Options opt;
  opt.tick_interval_us = policy.max_delay_us;
  TcpTransport client(std::move(callbacks), opt);
  const ConnId conn = client.connect_peer("127.0.0.1", port);
  {
    std::lock_guard lk(batcher_mu);
    batcher = std::make_shared<LinkBatcher>(client, conn, policy);
  }
  client.start();

  batcher->add(NodeId{0, 0}, NodeId{1, 0},
               proto::Message{proto::Heartbeat{3, 777}});
  ASSERT_TRUE(server_sink.wait_for_frames(1))
      << "staged straggler never flushed by the tick";
  const auto seq = heartbeat_sequence(server_sink);
  ASSERT_EQ(seq.size(), 1u);
  EXPECT_EQ(seq[0], 777);
  client.stop();
  server.stop();
}

TEST(TcpTransport, BatchFlushPreservesFifoAcrossReconnects) {
  // The per-link FIFO the protocol assumes (§II-C) must hold through a peer
  // restart even when traffic is a mix of threshold flushes, tick flushes
  // and frames staged while the link is down.
  FrameSink client_sink;
  TcpTransport client(client_sink.callbacks(), TcpTransport::Options{});

  FrameSink sink1;
  auto server = std::make_unique<TcpTransport>(sink1.callbacks(),
                                               TcpTransport::Options{});
  const std::uint16_t port = server->listen(0);
  server->start();

  const ConnId conn = client.connect_peer("127.0.0.1", port);
  client.start();

  BatchPolicy policy;
  policy.max_messages = 4;
  LinkBatcher batcher(client, conn, policy);
  const NodeId from{0, 0};
  const NodeId to{1, 0};
  Timestamp ts = 0;
  for (int i = 0; i < 8; ++i) {  // two full batches before the crash
    batcher.add(from, to, proto::Message{proto::Heartbeat{0, ++ts}});
  }
  ASSERT_TRUE(sink1.wait_for_frames(2));

  // Kill the server; stage more traffic while the link is down — one partial
  // batch flushed manually (as the tick would) plus two threshold flushes.
  server.reset();
  std::this_thread::sleep_for(30ms);
  batcher.add(from, to, proto::Message{proto::Heartbeat{0, ++ts}});
  batcher.flush();
  for (int i = 0; i < 8; ++i) {
    batcher.add(from, to, proto::Message{proto::Heartbeat{0, ++ts}});
  }

  FrameSink sink2;
  auto server2 = std::make_unique<TcpTransport>(sink2.callbacks(),
                                                TcpTransport::Options{});
  ASSERT_EQ(server2->listen(port), port);
  server2->start();

  // One more batch after the peer is back.
  for (int i = 0; i < 4; ++i) {
    batcher.add(from, to, proto::Message{proto::Heartbeat{0, ++ts}});
  }
  ASSERT_TRUE(sink2.wait_for_frames(4, 10'000'000))
      << "buffered batches were not delivered after reconnect";
  const auto seq = heartbeat_sequence(sink2);
  ASSERT_EQ(seq.size(), 13u);  // 1 + 8 + 4 staged since the crash
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i], static_cast<Timestamp>(9 + i))
        << "FIFO order violated at " << i;
  }
  EXPECT_GE(client.stats().reconnects, 1u);
  client.stop();
  server2.reset();
}

}  // namespace
}  // namespace pocc::net
