// Skewed physical clock: strict monotonicity under stalled/regressing
// reference time, offset and drift models, peek vs read.
#include "clock/physical_clock.hpp"

#include <gtest/gtest.h>

namespace pocc {
namespace {

TEST(PhysicalClock, PerfectClockTracksReference) {
  PhysicalClock c(0, 0.0);
  EXPECT_EQ(c.read(1000), 1000);
  EXPECT_EQ(c.read(2000), 2000);
}

TEST(PhysicalClock, StrictMonotonicityUnderStalledReference) {
  PhysicalClock c(0, 0.0);
  const Timestamp t1 = c.read(500);
  const Timestamp t2 = c.read(500);
  const Timestamp t3 = c.read(500);
  EXPECT_LT(t1, t2);
  EXPECT_LT(t2, t3);
}

TEST(PhysicalClock, MonotonicEvenIfReferenceRegresses) {
  PhysicalClock c(0, 0.0);
  const Timestamp t1 = c.read(1000);
  const Timestamp t2 = c.read(900);  // reference went backwards
  EXPECT_GT(t2, t1);
}

TEST(PhysicalClock, OffsetShiftsReadings) {
  PhysicalClock ahead(2500, 0.0);
  PhysicalClock behind(-2500, 0.0);
  EXPECT_EQ(ahead.read(10'000), 12'500);
  EXPECT_EQ(behind.read(10'000), 7'500);
}

TEST(PhysicalClock, DriftAccumulates) {
  PhysicalClock c(0, 100.0);  // +100 ppm
  // After 10 seconds of reference time, drift adds ~1ms.
  const Timestamp t = c.read(10'000'000);
  EXPECT_NEAR(static_cast<double>(t), 10'001'000.0, 1.0);
}

TEST(PhysicalClock, PeekDoesNotAdvanceState) {
  PhysicalClock c(0, 0.0);
  (void)c.read(1000);
  const Timestamp p1 = c.peek(1000);
  const Timestamp p2 = c.peek(1000);
  EXPECT_EQ(p1, p2);
  // peek never returns less than the last read() value.
  EXPECT_GE(p1, 1000);
}

TEST(PhysicalClock, ResyncPullsOffsetTowardZero) {
  PhysicalClock c(10'000, 0.0);
  c.resync(0.5);
  EXPECT_EQ(c.offset_us(), 5'000);
  c.resync(1.0);
  EXPECT_EQ(c.offset_us(), 0);
}

TEST(PhysicalClock, ConfigDrawsBoundedSkew) {
  ClockConfig cfg;
  cfg.offset_sigma_us = 1000.0;
  cfg.drift_ppm_sigma = 10.0;
  Rng rng(99);
  for (int i = 0; i < 100; ++i) {
    PhysicalClock c(cfg, rng);
    // 6-sigma sanity bounds.
    EXPECT_LT(std::abs(static_cast<double>(c.offset_us())), 6000.0);
    EXPECT_LT(std::abs(c.drift_ppm()), 60.0);
  }
}

TEST(PhysicalClock, ReadJitterStaysMonotonic) {
  ClockConfig cfg = ClockConfig::perfect();
  cfg.read_jitter_us = 50;
  Rng rng(1);
  PhysicalClock c(cfg, rng);
  Timestamp prev = c.read(0);
  for (Timestamp t = 1; t < 2000; ++t) {
    const Timestamp v = c.read(t);
    ASSERT_GT(v, prev);
    prev = v;
  }
}

}  // namespace
}  // namespace pocc
