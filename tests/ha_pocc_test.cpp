// HA-POCC engine tests (§III-B, §IV-C): partition detection via parked-request
// timeouts, pessimistic-session visibility, opt-origin tagging, infrequent
// stabilization, lost-update discard — plus injector-driven failover
// scenarios on a live cluster (fault layer, src/fault/).
#include "ha/ha_pocc_server.hpp"

#include <gtest/gtest.h>

#include "cluster/sim_cluster.hpp"
#include "fault/fault_injector.hpp"
#include "store/key_space.hpp"
#include "test_util.hpp"

namespace pocc {
namespace {

KeyId K(const std::string& key) { return store::intern_key(key); }

using testutil::MockContext;
using testutil::test_topology;

class HaPoccTest : public ::testing::Test {
 protected:
  HaPoccTest()
      : server_(NodeId{0, 0}, test_topology(), make_protocol(), service_,
                ctx_) {
    ctx_.now = 1'000'000;
  }

  static ProtocolConfig make_protocol() {
    ProtocolConfig p;
    p.block_timeout_us = 50'000;
    return p;
  }

  proto::GetReq get_req(ClientId c, const std::string& key, VersionVector rdv,
                        bool pessimistic) {
    proto::GetReq r;
    r.client = c;
    r.key = K(key);
    r.rdv = std::move(rdv);
    r.pessimistic = pessimistic;
    return r;
  }

  void replicate(const std::string& key, Timestamp ut, DcId sr,
                 VersionVector dv = VersionVector(3)) {
    store::Version v;
    v.key = K(key);
    v.value = "v@" + std::to_string(ut);
    v.sr = sr;
    v.ut = ut;
    v.dv = std::move(dv);
    server_.handle_message(NodeId{sr, 0}, proto::Replicate{v});
  }

  void put_local(ClientId c, const std::string& key, std::string value,
                 bool pessimistic) {
    proto::PutReq r;
    r.client = c;
    r.key = K(key);
    r.value = std::move(value);
    r.dv = VersionVector(3);
    r.pessimistic = pessimistic;
    server_.handle_message(NodeId{0, 0}, r);
  }

  MockContext ctx_;
  ServiceConfig service_;
  HaPoccServer server_;
};

TEST_F(HaPoccTest, OptimisticPathBehavesLikePocc) {
  replicate("0:a", 900'000, 1);
  server_.handle_message(NodeId{0, 0},
                         get_req(1, "0:a", VersionVector(3), false));
  const auto replies = ctx_.replies_of<proto::GetReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(replies[0].second.item.found);
  EXPECT_EQ(replies[0].second.item.ut, 900'000);  // freshest, stability-free
}

TEST_F(HaPoccTest, BlockedGetTimesOutAndClosesSession) {
  server_.handle_message(
      NodeId{0, 0}, get_req(1, "0:a", VersionVector{0, 500'000, 0}, false));
  EXPECT_EQ(server_.parked_requests(), 1u);
  // An expiry timer was armed for the parked request.
  Timestamp expire_at = 0;
  for (const auto& [at, id] : ctx_.timers) {
    if (id == server::kTimerExpire) expire_at = at;
  }
  ASSERT_GT(expire_at, 0);
  ctx_.now = expire_at;
  server_.on_timer(server::kTimerExpire);
  const auto closed = ctx_.replies_of<proto::SessionClosed>();
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].first, 1u);
  EXPECT_EQ(server_.parked_requests(), 0u);
  EXPECT_EQ(server_.sessions_closed(), 1u);
}

TEST_F(HaPoccTest, PessimisticGetServedFromStableVersions) {
  replicate("0:a", 200'000, 1);
  replicate("0:a", 900'000, 1);
  server_.handle_message(NodeId{0, 1},
                         proto::GssBroadcast{VersionVector{0, 250'000, 0}});
  server_.handle_message(NodeId{0, 0},
                         get_req(2, "0:a", VersionVector(3), true));
  const auto replies = ctx_.replies_of<proto::GetReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].second.item.ut, 200'000);  // freshest *stable*
  EXPECT_EQ(replies[0].second.item.fresher_versions, 1u);
}

TEST_F(HaPoccTest, OptimisticPutsAreTagged) {
  put_local(1, "0:opt", "v", /*pessimistic=*/false);
  put_local(2, "0:pess", "v", /*pessimistic=*/true);
  EXPECT_TRUE(
      server_.partition_store().find(K("0:opt"))->freshest()->opt_origin);
  EXPECT_FALSE(
      server_.partition_store().find(K("0:pess"))->freshest()->opt_origin);
}

TEST_F(HaPoccTest, OptOriginLocalItemHiddenFromPessimisticUntilStable) {
  // An optimistic client writes a local item depending on a remote item this
  // DC received but which is not stable yet.
  replicate("0:dep", 500'000, 1);  // received, GSS still at 0 => unstable
  proto::PutReq put;
  put.client = 1;
  put.key = K("0:opt");
  put.value = "optimistic-write";
  put.dv = VersionVector{0, 500'000, 0};
  put.pessimistic = false;
  server_.handle_message(NodeId{0, 0}, put);

  // Pessimistic session reads it: must fall back to the initial version.
  server_.handle_message(NodeId{0, 0},
                         get_req(2, "0:opt", VersionVector(3), true));
  auto replies = ctx_.replies_of<proto::GetReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_FALSE(replies[0].second.item.found);

  // An optimistic session sees it immediately.
  server_.handle_message(NodeId{0, 0},
                         get_req(3, "0:opt", VersionVector(3), false));
  replies = ctx_.replies_of<proto::GetReply>();
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_TRUE(replies[1].second.item.found);

  // Once the GSS covers the dependency and the item, pessimistic reads see it.
  const Timestamp item_ut =
      server_.partition_store().find(K("0:opt"))->freshest()->ut;
  server_.handle_message(
      NodeId{0, 1},
      proto::GssBroadcast{VersionVector{item_ut, 600'000, 0}});
  server_.handle_message(NodeId{0, 0},
                         get_req(2, "0:opt", VersionVector(3), true));
  replies = ctx_.replies_of<proto::GetReply>();
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_TRUE(replies[2].second.item.found);
}

TEST_F(HaPoccTest, PessimisticGetWaitsOnGssNotVv) {
  replicate("0:zz", 800'000, 1);  // VV[1] = 800k, GSS[1] = 0
  server_.handle_message(
      NodeId{0, 0}, get_req(2, "0:a", VersionVector{0, 700'000, 0}, true));
  EXPECT_EQ(server_.parked_requests(), 1u);
  server_.handle_message(NodeId{0, 1},
                         proto::GssBroadcast{VersionVector{0, 750'000, 0}});
  EXPECT_EQ(ctx_.replies_of<proto::GetReply>().size(), 1u);
}

TEST_F(HaPoccTest, RemoteSliceTimeoutSendsAbortToCoordinator) {
  proto::SliceReq slice;
  slice.tx_id = 7;
  slice.coordinator = NodeId{0, 1};
  slice.keys = {K("0:k")};
  slice.tv = VersionVector{0, 999'000, 0};  // unreachable during partition
  server_.handle_message(NodeId{0, 1}, slice);
  EXPECT_EQ(server_.parked_requests(), 1u);
  ctx_.now += 60'000;
  server_.on_timer(server::kTimerExpire);
  const auto aborts = ctx_.sent_of<proto::SliceReply>();
  ASSERT_EQ(aborts.size(), 1u);
  EXPECT_TRUE(aborts[0].second.aborted);
  EXPECT_EQ(aborts[0].first, (NodeId{0, 1}));
}

TEST_F(HaPoccTest, CoordinatorAbortsTxOnAbortedSlice) {
  proto::RoTxReq tx;
  tx.client = 9;
  tx.keys = {K("1:far")};  // remote partition -> pending coordinator state
  tx.rdv = VersionVector(3);
  server_.handle_message(NodeId{0, 0}, tx);
  const auto slices = ctx_.sent_of<proto::SliceReq>();
  ASSERT_EQ(slices.size(), 1u);
  proto::SliceReply abort;
  abort.tx_id = slices[0].second.tx_id;
  abort.aborted = true;
  server_.handle_message(NodeId{0, 1}, abort);
  const auto closed = ctx_.replies_of<proto::SessionClosed>();
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].first, 9u);
}

TEST_F(HaPoccTest, InfrequentStabilizationMaintainsGss) {
  server_.start();
  // The HA stabilization interval is much longer than Cure's (§IV-C).
  Timestamp stab_at = 0;
  for (const auto& [at, id] : ctx_.timers) {
    if (id == server::kTimerStabilization) stab_at = at;
  }
  EXPECT_GE(stab_at - ctx_.now, ProtocolConfig{}.ha_stabilization_interval_us);

  replicate("0:a", 400'000, 1);
  server_.on_timer(server::kTimerStabilization);
  server_.handle_message(
      NodeId{0, 1},
      proto::StabReport{NodeId{0, 1}, VersionVector{0, 300'000, 0}});
  EXPECT_EQ(server_.gss()[1], 300'000);
}

// ------------------------------------------------------------------------
// Injector-driven failover on a live cluster.

cluster::SimClusterConfig ha_cluster_config() {
  cluster::SimClusterConfig cfg;
  cfg.topology.num_dcs = 3;
  cfg.topology.partitions_per_dc = 2;
  cfg.topology.partition_scheme = PartitionScheme::kPrefix;
  cfg.latency = LatencyConfig::uniform(200, 0);
  cfg.latency.inter_dc_base_us = {
      {0, 5'000, 8'000}, {5'000, 0, 6'000}, {8'000, 6'000, 0}};
  cfg.clock = ClockConfig::perfect();
  cfg.protocol.block_timeout_us = 30'000;
  cfg.protocol.ha_stabilization_interval_us = 20'000;
  cfg.system = cluster::SystemKind::kHaPocc;
  cfg.seed = 5;
  cfg.enable_checker = true;
  return cfg;
}

TEST(HaPoccClusterTest, HeartbeatLossDrivesFailoverAndPromotion) {
  // §III-B end to end, triggered by *heartbeat* loss rather than a data
  // partition: an idle replica's suppressed heartbeats freeze remote VV
  // entries, a dependent GET blocks past the timeout, the session is closed,
  // the client falls back to the pessimistic protocol, and — once the fault
  // clears — is promoted back on its next reply.
  cluster::SimCluster cluster(ha_cluster_config());
  cluster.run_for(5'000);
  // Freeze the (idle) dc1/p0 -> dc0/p0 heartbeat stream first, so
  // everything written next stays ahead of dc0/p0's frozen VV[1].
  cluster.network().suppress_heartbeats(NodeId{1, 0});

  // dc1 writer builds a cross-partition dependency chain on partition 1.
  auto& writer = cluster.create_manual_client(1, 1);
  ASSERT_TRUE(writer.put("1:a", "a").ok);
  ASSERT_TRUE(writer.get("1:a").found);          // DV[1] = ut(a)
  ASSERT_TRUE(writer.put("1:c", "c").ok);        // carries that DV
  cluster.run_for(20'000);                        // replicate into dc0

  auto& reader = cluster.create_manual_client(0, 1);
  ASSERT_TRUE(reader.get("1:c").found);  // RDV[1] = ut(a) now
  // Partition-0 key: served by dc0/p0 whose VV[1] is frozen below ut(a).
  const auto blocked = reader.get("0:q", /*max_wait=*/200'000);
  EXPECT_FALSE(blocked.ok);  // session closed by the block timeout
  EXPECT_TRUE(reader.engine().pessimistic());
  auto* ha = dynamic_cast<HaPoccServer*>(&cluster.engine(NodeId{0, 0}));
  ASSERT_NE(ha, nullptr);
  EXPECT_GT(ha->sessions_closed(), 0u);

  cluster.network().resume_heartbeats(NodeId{1, 0});
  cluster.run_for(100'000);  // VV + GSS catch up
  const auto after = reader.get("0:q");
  EXPECT_TRUE(after.ok);  // pessimistic path serves
  // No partitions active: the reply promotes the session back (§III-B).
  EXPECT_FALSE(reader.engine().pessimistic());
  EXPECT_TRUE(cluster.checker()->violations().empty());
  EXPECT_EQ(cluster.total_parked_requests(), 0u);
}

TEST(HaPoccClusterTest, InjectedCrashClosesBlockedSessionsAndRecovers) {
  // A crash window long enough to trip the block timeout: requests parked on
  // live nodes waiting for the dead replica's stream get their sessions
  // closed; after restart the cluster drains clean.
  cluster::SimCluster cluster(ha_cluster_config());
  fault::FaultEvent e;
  e.kind = fault::FaultKind::kCrash;
  e.at = 50'000;
  e.duration = 100'000;
  e.node = NodeId{1, 0};
  fault::FaultPlan plan;
  plan.events = {e};
  plan.horizon_us = 300'000;
  fault::FaultInjector inj(cluster, std::move(plan));
  inj.arm();

  workload::WorkloadConfig wl;
  wl.pattern = workload::Pattern::kGetPut;
  wl.gets_per_put = 2;
  wl.think_time_us = 2'000;
  wl.keys_per_partition = 10;
  wl.op_timeout_us = 120'000;
  cluster.add_workload_clients(2, wl);
  cluster.begin_measurement();
  cluster.run_for(300'000);
  const cluster::ClusterMetrics m = cluster.end_measurement();
  EXPECT_GT(m.completed_ops, 0u);
  EXPECT_TRUE(inj.all_cleared());

  cluster.stop_clients();
  cluster.run_for(3'000'000);
  EXPECT_TRUE(cluster.checker()->violations().empty());
  EXPECT_TRUE(cluster.divergent_keys().empty());
  EXPECT_EQ(cluster.total_parked_requests(), 0u);
}

TEST_F(HaPoccTest, DiscardLostUpdatesPurgesDependentVersions) {
  // Received from DC1 directly: survives. A DC2 version depending on unseen
  // DC1 data: discarded.
  replicate("0:direct", 300'000, 1);
  replicate("0:dependent", 400'000, 2, VersionVector{0, 350'000, 0});
  // DC1 is lost; this node received DC1 updates only up to 300k.
  const auto discarded = server_.discard_lost_updates(1);
  EXPECT_EQ(discarded, 1u);
  EXPECT_EQ(server_.partition_store().find(K("0:direct"))->size(), 1u);
  EXPECT_EQ(server_.partition_store().find(K("0:dependent"))->size(), 0u);
}

}  // namespace
}  // namespace pocc
