// Simulated network: latency-matrix delivery, per-channel FIFO (also under
// jitter), and DC partition buffering with in-order flush on heal.
#include "net/sim_network.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pocc::net {
namespace {

struct Recorder : Endpoint {
  struct Event {
    Timestamp at;
    NodeId from;
    proto::Message msg;
  };
  explicit Recorder(sim::Simulator& s) : sim(s) {}
  void deliver(NodeId from, proto::Message m) override {
    events.push_back({sim.now(), from, std::move(m)});
  }
  sim::Simulator& sim;
  std::vector<Event> events;
};

proto::Message heartbeat(Timestamp ts) {
  return proto::Heartbeat{0, ts};
}

class SimNetworkTest : public ::testing::Test {
 protected:
  SimNetworkTest()
      : net_(sim_, LatencyConfig::uniform(1000), Rng(1)),
        a_(sim_),
        b_(sim_),
        remote_(sim_) {
    net_.register_node(NodeId{0, 0}, &a_);
    net_.register_node(NodeId{0, 1}, &b_);
    net_.register_node(NodeId{1, 0}, &remote_);
  }

  sim::Simulator sim_;
  SimNetwork net_;
  Recorder a_, b_, remote_;
};

TEST_F(SimNetworkTest, DeliversWithConfiguredLatency) {
  net_.send(NodeId{0, 0}, NodeId{0, 1}, heartbeat(1));
  sim_.run_all();
  ASSERT_EQ(b_.events.size(), 1u);
  EXPECT_EQ(b_.events[0].at, 1000);
  EXPECT_EQ(b_.events[0].from, (NodeId{0, 0}));
}

TEST_F(SimNetworkTest, FifoOrderPreservedPerChannel) {
  for (Timestamp i = 0; i < 20; ++i) {
    net_.send(NodeId{0, 0}, NodeId{0, 1}, heartbeat(i));
  }
  sim_.run_all();
  ASSERT_EQ(b_.events.size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(std::get<proto::Heartbeat>(b_.events[i].msg).ts,
              static_cast<Timestamp>(i));
  }
}

TEST_F(SimNetworkTest, FifoHoldsUnderJitter) {
  SimNetwork jittery(sim_, LatencyConfig::uniform(1000, 5000), Rng(7));
  Recorder dst(sim_);
  jittery.register_node(NodeId{0, 0}, &dst);
  jittery.register_node(NodeId{0, 1}, &dst);
  for (Timestamp i = 0; i < 50; ++i) {
    jittery.send(NodeId{0, 1}, NodeId{0, 0}, heartbeat(i));
  }
  sim_.run_all();
  ASSERT_EQ(dst.events.size(), 50u);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(std::get<proto::Heartbeat>(dst.events[i].msg).ts,
              static_cast<Timestamp>(i));
  }
}

TEST_F(SimNetworkTest, InterDcUsesMatrixLatency) {
  SimNetwork geo(sim_, LatencyConfig::aws_three_dc(), Rng(3));
  Recorder oregon(sim_);
  Recorder ireland(sim_);
  geo.register_node(NodeId{0, 0}, &oregon);
  geo.register_node(NodeId{2, 0}, &ireland);
  geo.send(NodeId{0, 0}, NodeId{2, 0}, heartbeat(1));
  sim_.run_all();
  ASSERT_EQ(ireland.events.size(), 1u);
  EXPECT_GE(ireland.events[0].at, 62'000);
  EXPECT_LT(ireland.events[0].at, 70'000);
}

TEST_F(SimNetworkTest, PartitionBuffersAndHealFlushes) {
  net_.partition_dcs(0, 1);
  EXPECT_TRUE(net_.is_partitioned(0, 1));
  EXPECT_TRUE(net_.any_partitions());
  net_.send(NodeId{0, 0}, NodeId{1, 0}, heartbeat(1));
  net_.send(NodeId{0, 0}, NodeId{1, 0}, heartbeat(2));
  sim_.run_until(100'000);
  EXPECT_TRUE(remote_.events.empty());

  net_.heal_dcs(0, 1);
  EXPECT_FALSE(net_.any_partitions());
  sim_.run_all();
  ASSERT_EQ(remote_.events.size(), 2u);
  EXPECT_EQ(std::get<proto::Heartbeat>(remote_.events[0].msg).ts, 1);
  EXPECT_EQ(std::get<proto::Heartbeat>(remote_.events[1].msg).ts, 2);
}

TEST_F(SimNetworkTest, PartitionDoesNotAffectIntraDcTraffic) {
  net_.partition_dcs(0, 1);
  net_.send(NodeId{0, 0}, NodeId{0, 1}, heartbeat(5));
  sim_.run_all();
  EXPECT_EQ(b_.events.size(), 1u);
}

TEST_F(SimNetworkTest, IsolateDcCutsAllPairs) {
  net_.isolate_dc(0, 3);
  EXPECT_TRUE(net_.is_partitioned(0, 1));
  EXPECT_TRUE(net_.is_partitioned(0, 2));
  EXPECT_FALSE(net_.is_partitioned(1, 2));
  net_.heal_dc(0, 3);
  EXPECT_FALSE(net_.any_partitions());
}

// Regression (fault-injection PR): the heal flush must preserve per-channel
// FIFO order end to end — including messages sent at the heal instant, after
// the flush scheduled the backlog but before any of it was delivered. The
// per-channel last_delivery clamp is what slots them behind the backlog.
TEST_F(SimNetworkTest, HealFlushKeepsFifoWithMessagesSentDuringHeal) {
  net_.partition_dcs(0, 1);
  net_.send(NodeId{0, 0}, NodeId{1, 0}, heartbeat(1));
  net_.send(NodeId{0, 0}, NodeId{1, 0}, heartbeat(2));
  sim_.run_until(30'000);
  net_.heal_dcs(0, 1);
  // Enqueued while the heal's flushed backlog is still in flight:
  net_.send(NodeId{0, 0}, NodeId{1, 0}, heartbeat(3));
  net_.send(NodeId{0, 0}, NodeId{1, 0}, heartbeat(4));
  sim_.run_all();
  ASSERT_EQ(remote_.events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(std::get<proto::Heartbeat>(remote_.events[i].msg).ts,
              static_cast<Timestamp>(i + 1));
  }
}

// Re-partitioning while the flushed backlog is in flight must not lose or
// reorder anything: in-flight messages arrive (they were on the wire), newly
// sent ones buffer until the second heal.
TEST_F(SimNetworkTest, RepartitionDuringHealPreservesOrder) {
  net_.partition_dcs(0, 1);
  net_.send(NodeId{0, 0}, NodeId{1, 0}, heartbeat(1));
  net_.heal_dcs(0, 1);
  net_.partition_dcs(0, 1);  // immediately cut again
  net_.send(NodeId{0, 0}, NodeId{1, 0}, heartbeat(2));
  sim_.run_until(100'000);
  ASSERT_EQ(remote_.events.size(), 1u);  // flushed msg was on the wire
  net_.heal_dcs(0, 1);
  sim_.run_all();
  ASSERT_EQ(remote_.events.size(), 2u);
  EXPECT_EQ(std::get<proto::Heartbeat>(remote_.events[1].msg).ts, 2);
}

TEST_F(SimNetworkTest, AsymmetricBlockAffectsOneDirection) {
  net_.block_link(0, 1);
  EXPECT_TRUE(net_.link_blocked(0, 1));
  EXPECT_FALSE(net_.link_blocked(1, 0));
  EXPECT_TRUE(net_.is_partitioned(0, 1));  // either direction counts
  net_.send(NodeId{0, 0}, NodeId{1, 0}, heartbeat(1));   // blocked
  net_.send(NodeId{1, 0}, NodeId{0, 0}, heartbeat(2));   // flows
  sim_.run_all();
  EXPECT_TRUE(remote_.events.empty());
  ASSERT_EQ(a_.events.size(), 1u);
  net_.unblock_link(0, 1);
  sim_.run_all();
  ASSERT_EQ(remote_.events.size(), 1u);
  EXPECT_FALSE(net_.any_partitions());
}

// Overlapping fault windows compose: the link opens only when every injected
// block has been lifted.
TEST_F(SimNetworkTest, LinkBlocksAreRefCounted) {
  net_.block_link(0, 1);
  net_.block_link(0, 1);  // second overlapping window
  net_.unblock_link(0, 1);
  EXPECT_TRUE(net_.link_blocked(0, 1));
  net_.send(NodeId{0, 0}, NodeId{1, 0}, heartbeat(1));
  sim_.run_all();
  EXPECT_TRUE(remote_.events.empty());
  net_.unblock_link(0, 1);
  EXPECT_FALSE(net_.link_blocked(0, 1));
  sim_.run_all();
  EXPECT_EQ(remote_.events.size(), 1u);
}

TEST_F(SimNetworkTest, DegradedLinkStretchesDelayOneWay) {
  net_.degrade_link(0, 1, 7'000, 3.0);
  net_.send(NodeId{0, 0}, NodeId{1, 0}, heartbeat(1));  // degraded direction
  net_.send(NodeId{1, 0}, NodeId{0, 0}, heartbeat(2));  // healthy direction
  sim_.run_all();
  ASSERT_EQ(remote_.events.size(), 1u);
  EXPECT_EQ(remote_.events[0].at, 1000 * 3 + 7'000);
  ASSERT_EQ(a_.events.size(), 1u);
  EXPECT_EQ(a_.events[0].at, 1000);
  net_.clear_link_degrade(0, 1);
  net_.send(NodeId{0, 0}, NodeId{1, 0}, heartbeat(3));
  sim_.run_all();
  ASSERT_EQ(remote_.events.size(), 2u);
  EXPECT_EQ(remote_.events[1].at - remote_.events[0].at, 1000);
}

TEST_F(SimNetworkTest, SuppressedHeartbeatsAreDestroyedNotBuffered) {
  net_.suppress_heartbeats(NodeId{0, 0});
  net_.send(NodeId{0, 0}, NodeId{1, 0}, heartbeat(1));    // destroyed
  net_.send(NodeId{0, 0}, NodeId{1, 0}, proto::Replicate{});  // unaffected
  net_.send(NodeId{0, 1}, NodeId{1, 0}, heartbeat(2));    // other node: flows
  sim_.run_all();
  ASSERT_EQ(remote_.events.size(), 2u);
  EXPECT_EQ(net_.stats().dropped_messages, 1u);
  net_.resume_heartbeats(NodeId{0, 0});
  net_.send(NodeId{0, 0}, NodeId{1, 0}, heartbeat(3));
  sim_.run_all();
  EXPECT_EQ(remote_.events.size(), 3u);
}

TEST_F(SimNetworkTest, ClientRouting) {
  Recorder client(sim_);
  net_.register_client(7, 0, NodeId{0, 0}, &client);
  net_.client_send(7, NodeId{0, 1}, proto::GetReq{});
  sim_.run_all();
  ASSERT_EQ(b_.events.size(), 1u);
  net_.send_to_client(NodeId{0, 1}, 7, proto::GetReply{});
  sim_.run_all();
  ASSERT_EQ(client.events.size(), 1u);
}

TEST_F(SimNetworkTest, CollocatedClientGetsLoopbackLatency) {
  LatencyConfig lat = LatencyConfig::uniform(1000);
  lat.loopback_us = 10;
  SimNetwork n2(sim_, lat, Rng(5));
  Recorder server(sim_);
  Recorder client(sim_);
  n2.register_node(NodeId{0, 0}, &server);
  n2.register_client(9, 0, NodeId{0, 0}, &client);
  const Timestamp t0 = sim_.now();
  n2.client_send(9, NodeId{0, 0}, proto::GetReq{});
  sim_.run_all();
  ASSERT_EQ(server.events.size(), 1u);
  EXPECT_LE(server.events[0].at - t0, 20);
}

TEST_F(SimNetworkTest, StatsAccounting) {
  net_.send(NodeId{0, 0}, NodeId{1, 0}, proto::Replicate{});
  net_.send(NodeId{0, 0}, NodeId{1, 0}, heartbeat(1));
  net_.send(NodeId{0, 0}, NodeId{0, 1}, proto::StabReport{});
  sim_.run_all();
  const NetworkStats& s = net_.stats();
  EXPECT_EQ(s.messages, 3u);
  EXPECT_EQ(s.replication_messages, 1u);
  EXPECT_EQ(s.heartbeat_messages, 1u);
  EXPECT_EQ(s.stabilization_messages, 1u);
  EXPECT_GT(s.bytes, 0u);
}

TEST_F(SimNetworkTest, ResetStatsClears) {
  net_.send(NodeId{0, 0}, NodeId{0, 1}, heartbeat(1));
  sim_.run_all();
  net_.reset_stats();
  EXPECT_EQ(net_.stats().messages, 0u);
}

}  // namespace
}  // namespace pocc::net
