// End-to-end TCP deployment: a 3-DC x 2-partition cluster hosted by THREE
// multi-partition TcpNodeHosts (one per DC, two worker threads each — the
// poccd group topology) behind real localhost sockets (ephemeral ports),
// driven by TcpClientPool sessions — the same classes poccd / pocc_loadgen
// are built from, minus the process boundary (scripts/e2e_local_cluster.sh
// covers that in CI). Verifies read-your-writes, the cross-DC WC-DEP causal
// chain, and a concurrent mixed load whose full client history replays
// through the HistoryChecker with zero violations — all riding coalesced
// Batch frames between the hosts and in-process queues within them.
//
// Timing assertions are deliberately generous — this suite runs on loaded CI
// machines.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "checker/client_history.hpp"
#include "checker/history_checker.hpp"
#include "common/rng.hpp"
#include "net/chaos.hpp"
#include "net/tcp_client.hpp"
#include "net/tcp_node_host.hpp"
#include "runtime/rt_node.hpp"
#include "store/key_space.hpp"

namespace pocc::net {
namespace {

/// Deployment-unique client ids across all tests in this binary.
std::atomic<ClientId> g_next_client{1};

ClusterLayout small_layout(rt::System system) {
  ClusterLayout layout;
  layout.topology.num_dcs = 3;
  layout.topology.partitions_per_dc = 2;
  layout.topology.partition_scheme = PartitionScheme::kHash;
  layout.system = system;
  layout.protocol.heartbeat_interval_us = 5'000;  // gentle on single-core CI
  layout.protocol.stabilization_interval_us = 20'000;
  layout.protocol.gc_interval_us = 200'000;
  layout.protocol.block_timeout_us = 2'000'000;
  // Addresses are filled in by Deployment once the ephemeral ports are known.
  return layout;
}

/// A whole cluster + per-DC client pools, in one process over real TCP:
/// one multi-partition host per DC, all partitions on 2 worker threads.
class Deployment {
 public:
  explicit Deployment(rt::System system,
                      const ClientResilience* resilience = nullptr)
      : layout_(small_layout(system)) {
    const auto& topo = layout_.topology;
    std::uint64_t seed = 1;
    for (DcId dc = 0; dc < topo.num_dcs; ++dc) {
      ProcessSpec spec;
      spec.dc = dc;
      for (PartitionId p = 0; p < topo.partitions_per_dc; ++p) {
        spec.parts.push_back(p);
      }
      spec.threads = 2;
      spec.host = "127.0.0.1";
      TcpNodeHost::Options opt;
      opt.listen_port = 0;  // ephemeral
      opt.seed = seed++;
      hosts_.push_back(std::make_unique<TcpNodeHost>(spec, layout_, opt));
      spec.port = hosts_.back()->port();
      layout_.processes.push_back(spec);
      for (PartitionId p = 0; p < topo.partitions_per_dc; ++p) {
        layout_.nodes.push_back(
            NodeAddress{NodeId{dc, p}, "127.0.0.1", spec.port});
      }
    }
    for (auto& host : hosts_) host->start(layout_.processes);
    for (DcId dc = 0; dc < topo.num_dcs; ++dc) {
      pools_.push_back(std::make_unique<TcpClientPool>(layout_, dc));
      if (resilience != nullptr) pools_.back()->set_resilience(*resilience);
      pools_.back()->start();
    }
    for (auto& pool : pools_) {
      EXPECT_TRUE(pool->wait_connected(10'000'000))
          << "client pool failed to reach all partitions";
    }
  }

  ~Deployment() {
    for (auto& pool : pools_) pool->stop();
    for (auto& host : hosts_) host->stop();
  }

  TcpSession& connect(DcId dc) {
    return pools_[dc]->connect(g_next_client.fetch_add(1));
  }

  std::vector<checker::SessionHistory> histories() const {
    std::vector<checker::SessionHistory> all;
    for (const auto& pool : pools_) {
      auto h = pool->histories();
      all.insert(all.end(), h.begin(), h.end());
    }
    return all;
  }

  const ClusterLayout& layout() const { return layout_; }

  std::uint64_t dropped_frames() const {
    std::uint64_t n = 0;
    for (const auto& host : hosts_) n += host->dropped_frames();
    return n;
  }

  std::uint64_t local_deliveries() const {
    std::uint64_t n = 0;
    for (const auto& host : hosts_) n += host->group().local_deliveries();
    return n;
  }

  std::uint64_t batched_messages() const {
    std::uint64_t n = 0;
    for (const auto& host : hosts_) n += host->batch_stats().messages;
    return n;
  }

  std::uint64_t batch_send_failures() const {
    std::uint64_t n = 0;
    for (const auto& host : hosts_) n += host->batch_stats().send_failures;
    return n;
  }

  std::uint64_t deduped_requests() const {
    std::uint64_t n = 0;
    for (const auto& host : hosts_) n += host->deduped_requests();
    return n;
  }

  ClientResilienceStats resilience_stats() const {
    ClientResilienceStats s;
    for (const auto& pool : pools_) s += pool->resilience_stats();
    return s;
  }

  /// Arm every inter-DC replication link with a schedule-bound ChaosLink:
  /// the profile's delay/jitter plus the seed's timed partition and degrade
  /// windows, exactly as chaos_campaign does.
  void arm_server_chaos(std::uint64_t seed, const ChaosProfile& profile) {
    schedule_ = std::make_shared<ChaosSchedule>(
        seed, layout_.topology, /*horizon_us=*/2'000'000,
        /*duration_us=*/60'000'000);
    const Timestamp start = rt::steady_now_us();
    std::uint64_t n = 0;
    for (DcId src = 0; src < layout_.topology.num_dcs; ++src) {
      for (DcId dst = 0; dst < layout_.topology.num_dcs; ++dst) {
        if (src == dst) continue;
        auto link = std::make_shared<ChaosLink>(
            seed ^ (0x9e3779b97f4a7c15ULL * ++n), profile);
        link->bind_schedule(schedule_, src, dst, start);
        hosts_[src]->arm_chaos(dst, link);
      }
    }
  }

  /// Arm every dialed client connection (both replicas when resilience
  /// dialed siblings) with an unscheduled ChaosLink — client links may
  /// carry dup/reset chaos because the op_id idempotency cache absorbs it.
  void arm_client_chaos(std::uint64_t seed, const ChaosProfile& profile) {
    std::uint64_t n = 0;
    for (auto& pool : pools_) {
      for (PartitionId p = 0; p < layout_.topology.partitions_per_dc; ++p) {
        for (unsigned replica = 0; replica < 2; ++replica) {
          const ConnId conn = pool->conn_of(p, replica);
          if (conn == kInvalidConn) continue;
          pool->transport().set_chaos(
              conn, std::make_shared<ChaosLink>(
                        seed ^ (0x9e3779b97f4a7c15ULL * ++n), profile));
        }
      }
    }
  }

 private:
  ClusterLayout layout_;
  std::vector<std::unique_ptr<TcpNodeHost>> hosts_;
  std::vector<std::unique_ptr<TcpClientPool>> pools_;
  std::shared_ptr<ChaosSchedule> schedule_;
};

/// Poll `fn` until it returns true or the deadline passes.
bool eventually(Duration timeout_us, const std::function<bool()>& fn) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(timeout_us);
  while (std::chrono::steady_clock::now() < deadline) {
    if (fn()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return fn();
}

void expect_clean_replay(const Deployment& cluster) {
  checker::HistoryChecker checker(cluster.layout().topology.num_dcs);
  const auto result = checker::replay_history(cluster.histories(), checker);
  EXPECT_TRUE(result.complete) << result.error;
  EXPECT_TRUE(checker.violations().empty())
      << checker.violations().size() << " violations, first: "
      << checker.violations().front();
  EXPECT_GT(checker.checks_performed(), 0u);
}

TEST(E2eTcp, ReadYourWritesSingleDc) {
  Deployment cluster(rt::System::kPocc);
  TcpSession& s = cluster.connect(0);
  const auto put = s.put("e2e:ryw", "v1");
  ASSERT_TRUE(put.ok);
  EXPECT_GT(put.ut, 0);
  const auto get = s.get("e2e:ryw");
  ASSERT_TRUE(get.ok);
  EXPECT_TRUE(get.found);
  EXPECT_EQ(get.value, "v1");

  // Overwrites stay monotonic under the same session.
  ASSERT_TRUE(s.put("e2e:ryw", "v2").ok);
  const auto get2 = s.get("e2e:ryw");
  ASSERT_TRUE(get2.ok);
  EXPECT_EQ(get2.value, "v2");
  expect_clean_replay(cluster);
}

TEST(E2eTcp, WcDepChainAcrossDcs) {
  // The paper's write-chain scenario (§II-A): Alice posts a photo (x) in
  // DC0; Bob in DC1 sees it and comments (y); Carol in DC2 who sees the
  // comment MUST see the photo — y's dependency vector forces the GET on x
  // to block until x's replication arrives.
  Deployment cluster(rt::System::kPocc);
  TcpSession& alice = cluster.connect(0);
  TcpSession& bob = cluster.connect(1);
  TcpSession& carol = cluster.connect(2);

  ASSERT_TRUE(alice.put("e2e:photo", "selfie").ok);

  // Bob polls until the photo replicated into DC1, then comments.
  ASSERT_TRUE(eventually(10'000'000, [&] {
    const auto got = bob.get("e2e:photo");
    return got.ok && got.found;
  })) << "photo never replicated to DC1";
  ASSERT_TRUE(bob.put("e2e:comment", "nice!").ok);

  // Carol polls for the comment; the instant she sees it, causality demands
  // the photo be visible too (the GET may block, but must not miss).
  ASSERT_TRUE(eventually(10'000'000, [&] {
    const auto got = carol.get("e2e:comment");
    return got.ok && got.found;
  })) << "comment never replicated to DC2";
  const auto photo = carol.get("e2e:photo");
  ASSERT_TRUE(photo.ok);
  EXPECT_TRUE(photo.found) << "WC-DEP violated: comment seen, photo missing";
  EXPECT_EQ(photo.value, "selfie");
  expect_clean_replay(cluster);
}

TEST(E2eTcp, RoTxReturnsCompleteSnapshot) {
  Deployment cluster(rt::System::kPocc);
  TcpSession& s = cluster.connect(0);
  ASSERT_TRUE(s.put("e2e:tx:a", "1").ok);
  ASSERT_TRUE(s.put("e2e:tx:b", "2").ok);
  const auto tx = s.ro_tx({"e2e:tx:a", "e2e:tx:b"});
  ASSERT_TRUE(tx.ok);
  ASSERT_EQ(tx.items.size(), 2u);
  for (const auto& item : tx.items) {
    EXPECT_TRUE(item.found) << store::key_name(item.key);
  }
  expect_clean_replay(cluster);
}

/// Closed-loop mixed workload on a deliberately tiny keyspace (maximum
/// cross-session conflict), all three DCs concurrently.
void run_load(Deployment& cluster, int sessions_per_dc, int ops_per_session) {
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (DcId dc = 0; dc < cluster.layout().topology.num_dcs; ++dc) {
    for (int i = 0; i < sessions_per_dc; ++i) {
      TcpSession& s = cluster.connect(dc);
      threads.emplace_back([&, dc, i, ops_per_session] {
        Rng rng((static_cast<std::uint64_t>(dc) << 8) | i);
        for (int op = 0; op < ops_per_session; ++op) {
          const std::string key =
              "e2e:load:" + std::to_string(rng.uniform(12));
          const std::uint64_t kind = rng.uniform(10);
          if (kind < 5) {
            if (!s.get(key).ok) ++failures;
          } else if (kind < 9) {
            const std::string value =
                "v" + std::to_string(dc) + "." + std::to_string(op);
            if (!s.put(key, value).ok) ++failures;
          } else {
            const std::string other =
                "e2e:load:" + std::to_string(rng.uniform(12));
            if (!s.ro_tx({key, other}).ok) ++failures;
          }
        }
      });
    }
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0) << "some operations timed out";
}

TEST(E2eTcp, ConcurrentLoadReplaysCleanlyPocc) {
  Deployment cluster(rt::System::kPocc);
  run_load(cluster, /*sessions_per_dc=*/2, /*ops_per_session=*/120);
  EXPECT_EQ(cluster.dropped_frames(), 0u);
  // The multi-partition topology must actually exercise both transports:
  // intra-DC traffic (GC reports, sibling slices) as in-process pushes,
  // inter-DC replication as coalesced Batch frames.
  EXPECT_GT(cluster.local_deliveries(), 0u);
  EXPECT_GT(cluster.batched_messages(), 0u);
  EXPECT_EQ(cluster.batch_send_failures(), 0u)
      << "backpressure dropped replication batches";
  expect_clean_replay(cluster);
}

TEST(E2eTcp, ConcurrentLoadReplaysCleanlyCure) {
  Deployment cluster(rt::System::kCure);
  run_load(cluster, /*sessions_per_dc=*/2, /*ops_per_session=*/80);
  EXPECT_EQ(cluster.dropped_frames(), 0u);
  expect_clean_replay(cluster);
}

TEST(E2eTcp, ChaosOnReplicationLinksReplaysClean) {
  // Delay, jitter, loss stalls and the seed's timed partition windows on
  // every inter-DC link: replication gets late and bursty but stays a
  // lossless FIFO, so the full history must still replay with zero causal
  // violations — the core claim of the chaos model (net/chaos.hpp).
  Deployment cluster(rt::System::kPocc);
  ChaosProfile profile;
  profile.base_delay_us = 1'000;
  profile.jitter_mean_us = 500;
  profile.loss_p = 0.005;
  profile.rto_penalty_us = 20'000;
  profile.reorder_window_us = 1'000;
  cluster.arm_server_chaos(/*seed=*/7, profile);
  run_load(cluster, /*sessions_per_dc=*/2, /*ops_per_session=*/100);
  EXPECT_EQ(cluster.dropped_frames(), 0u);
  expect_clean_replay(cluster);
}

TEST(E2eTcp, ResilientSessionsAbsorbDuplicatedClientFrames) {
  // Dup-heavy chaos on the CLIENT links (the one place duplication is
  // legal): the per-client op_id idempotency cache must absorb every
  // duplicate — all ops succeed, the servers count dedups, and the replayed
  // history stays clean (no double-applied PUT).
  ClientResilience resilience;
  resilience.enabled = true;
  Deployment cluster(rt::System::kPocc, &resilience);
  ChaosProfile profile;
  profile.base_delay_us = 200;
  profile.jitter_mean_us = 200;
  profile.dup_p = 0.05;
  cluster.arm_client_chaos(/*seed=*/11, profile);
  run_load(cluster, /*sessions_per_dc=*/2, /*ops_per_session=*/100);
  EXPECT_GT(cluster.deduped_requests(), 0u)
      << "dup_p=0.05 over 1200 ops should have produced duplicates";
  expect_clean_replay(cluster);
}

TEST(E2eTcp, PipelinedSessionsReplayCleanly) {
  // The pipelined client path: one driver thread per DC interleaves many
  // sessions through the non-blocking start_*/pump/finish_* API, so each
  // pool connection carries several in-flight ops at once (what
  // pocc_loadgen --pipeline does). Every session stays serial, so the full
  // history must still replay with zero causal violations.
  Deployment cluster(rt::System::kPocc);
  constexpr int kSessionsPerDc = 8;
  constexpr int kOpsPerSession = 60;
  std::vector<std::thread> drivers;
  std::atomic<int> failures{0};
  for (DcId dc = 0; dc < cluster.layout().topology.num_dcs; ++dc) {
    std::vector<TcpSession*> sessions;
    for (int i = 0; i < kSessionsPerDc; ++i) {
      sessions.push_back(&cluster.connect(dc));
    }
    drivers.emplace_back([&, dc, sessions] {
      struct Slot {
        TcpSession* s = nullptr;
        Rng rng{0};
        int started = 0;
        int completed = 0;
        std::uint64_t kind = 0;
      };
      std::vector<Slot> slots;
      for (int i = 0; i < kSessionsPerDc; ++i) {
        Slot sl;
        sl.s = sessions[i];
        sl.rng = Rng((static_cast<std::uint64_t>(dc) << 8) | i);
        slots.push_back(sl);
      }
      for (;;) {
        bool progress = false;
        bool all_done = true;
        for (Slot& sl : slots) {
          if (!sl.s->op_pending() && sl.started < kOpsPerSession) {
            const std::string key =
                "e2e:pipe:" + std::to_string(sl.rng.uniform(12));
            sl.kind = sl.rng.uniform(10);
            bool ok = false;
            if (sl.kind < 5) {
              ok = sl.s->start_get(key);
            } else if (sl.kind < 9) {
              ok = sl.s->start_put(
                  key, "v" + std::to_string(dc) + "." +
                           std::to_string(sl.started));
            } else {
              const std::string other =
                  "e2e:pipe:" + std::to_string(sl.rng.uniform(12));
              ok = sl.s->start_ro_tx({key, other});
            }
            EXPECT_TRUE(ok);
            ++sl.started;
            progress = true;
          }
          if (sl.s->op_pending() && sl.s->pump()) {
            bool ok = false;
            if (sl.kind < 5) {
              ok = sl.s->finish_get().ok;
            } else if (sl.kind < 9) {
              ok = sl.s->finish_put().ok;
            } else {
              ok = sl.s->finish_tx().ok;
            }
            if (!ok) ++failures;
            ++sl.completed;
            progress = true;
          }
          all_done = all_done && sl.completed >= kOpsPerSession;
        }
        if (all_done) break;
        if (!progress) {
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
      }
    });
  }
  for (auto& t : drivers) t.join();
  EXPECT_EQ(failures.load(), 0) << "pipelined operations timed out";
  EXPECT_EQ(cluster.dropped_frames(), 0u);
  expect_clean_replay(cluster);
}

TEST(E2eTcp, CrossDcVisibilityEventuallyConverges) {
  Deployment cluster(rt::System::kPocc);
  TcpSession& writer = cluster.connect(0);
  ASSERT_TRUE(writer.put("e2e:geo", "hello").ok);
  for (DcId dc = 1; dc < 3; ++dc) {
    TcpSession& reader = cluster.connect(dc);
    EXPECT_TRUE(eventually(10'000'000, [&] {
      const auto got = reader.get("e2e:geo");
      return got.ok && got.found && got.value == "hello";
    })) << "value never visible in DC " << dc;
  }
  expect_clean_replay(cluster);
}

}  // namespace
}  // namespace pocc::net
