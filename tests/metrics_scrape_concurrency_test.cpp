// Live /metrics + /readyz scraping under load, across real sockets: a 2-DC
// TcpNodeHost deployment with the embedded HTTP endpoint enabled, a client
// session driving GET/PUT traffic, and a scrape thread tight-looping HTTP
// requests the whole time. The point is the CONCURRENCY contract of the
// stats registry — every registered callback must be safe to call from the
// scrape thread while the engines, transport loops and WAL run full tilt —
// so this test carries the `concurrency` ctest label and is the TSan proof
// of the sharded-registry design.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/tcp_client.hpp"
#include "net/tcp_node_host.hpp"
#include "runtime/rt_node.hpp"

namespace pocc::net {
namespace {

/// Minimal blocking HTTP/1.0 GET against the embedded metrics server.
/// Returns the full response (status line + headers + body), empty on any
/// socket error.
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  std::size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return {};
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string resp;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return resp;
}

bool is_200(const std::string& resp) {
  return resp.rfind("HTTP/1.0 200", 0) == 0;
}

std::string body_of(const std::string& resp) {
  const auto pos = resp.find("\r\n\r\n");
  return pos == std::string::npos ? std::string() : resp.substr(pos + 4);
}

/// Two DCs x two partitions on two workers each, every host with the
/// embedded observability endpoint on an ephemeral port — the poccd
/// topology, minus the process boundary.
class MetricsDeployment {
 public:
  MetricsDeployment() {
    layout_.topology.num_dcs = 2;
    layout_.topology.partitions_per_dc = 2;
    layout_.topology.partition_scheme = PartitionScheme::kHash;
    layout_.system = rt::System::kPocc;
    layout_.protocol.heartbeat_interval_us = 5'000;
    layout_.protocol.stabilization_interval_us = 20'000;
    std::uint64_t seed = 1;
    for (DcId dc = 0; dc < layout_.topology.num_dcs; ++dc) {
      ProcessSpec spec;
      spec.dc = dc;
      for (PartitionId p = 0; p < layout_.topology.partitions_per_dc; ++p) {
        spec.parts.push_back(p);
      }
      spec.threads = 2;
      spec.host = "127.0.0.1";
      TcpNodeHost::Options opt;
      opt.listen_port = 0;
      opt.seed = seed++;
      opt.metrics_addr = "127.0.0.1:0";  // ephemeral scrape endpoint
      hosts_.push_back(std::make_unique<TcpNodeHost>(spec, layout_, opt));
      spec.port = hosts_.back()->port();
      layout_.processes.push_back(spec);
      for (PartitionId p = 0; p < layout_.topology.partitions_per_dc; ++p) {
        layout_.nodes.push_back(
            NodeAddress{NodeId{dc, p}, "127.0.0.1", spec.port});
      }
    }
    for (auto& host : hosts_) host->start(layout_.processes);
    pool_ = std::make_unique<TcpClientPool>(layout_, 0);
    pool_->start();
    EXPECT_TRUE(pool_->wait_connected(10'000'000));
  }

  ~MetricsDeployment() {
    pool_->stop();
    for (auto& host : hosts_) host->stop();
  }

  TcpNodeHost& host(DcId dc) { return *hosts_[dc]; }
  TcpSession& connect(ClientId id) { return pool_->connect(id); }

 private:
  ClusterLayout layout_;
  std::vector<std::unique_ptr<TcpNodeHost>> hosts_;
  std::unique_ptr<TcpClientPool> pool_;
};

TEST(MetricsScrapeConcurrency, EndpointsAnswerWhenIdle) {
  MetricsDeployment cluster;
  const std::uint16_t port = cluster.host(0).metrics_port();
  ASSERT_NE(port, 0) << "metrics server failed to bind";

  const std::string health = http_get(port, "/healthz");
  EXPECT_TRUE(is_200(health)) << health;
  EXPECT_EQ(body_of(health), "ok\n");

  // All links are up and there is no recovery — ready.
  const std::string ready = http_get(port, "/readyz");
  EXPECT_TRUE(is_200(ready)) << ready;

  const std::string metrics = http_get(port, "/metrics");
  ASSERT_TRUE(is_200(metrics)) << metrics;
  const std::string body = body_of(metrics);
  EXPECT_NE(body.find("# TYPE pocc_transport_frames_in_total counter"),
            std::string::npos);
  EXPECT_NE(body.find("pocc_host_ready 1"), std::string::npos);
  EXPECT_NE(body.find("pocc_server_op_us_bucket{op=\"get\",le=\"50\"}"),
            std::string::npos);

  EXPECT_EQ(http_get(port, "/nope").rfind("HTTP/1.0 404", 0), 0u);
}

TEST(MetricsScrapeConcurrency, TightScrapeLoopUnderLoad) {
  MetricsDeployment cluster;
  const std::uint16_t port = cluster.host(0).metrics_port();
  ASSERT_NE(port, 0);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> scrapes{0};
  std::atomic<std::uint64_t> scrape_failures{0};
  // Scrape thread: hammer /metrics and /readyz for the whole load. Every
  // registered callback runs on this thread while the engines serve — the
  // race, if any, is here.
  std::thread scraper([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const std::string metrics = http_get(port, "/metrics");
      if (!is_200(metrics) ||
          body_of(metrics).find("pocc_engine_puts_total") ==
              std::string::npos) {
        ++scrape_failures;
      }
      if (!is_200(http_get(port, "/readyz"))) ++scrape_failures;
      ++scrapes;
    }
  });

  TcpSession& session = cluster.connect(9001);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "scrape:" + std::to_string(i % 17);
    ASSERT_TRUE(session.put(key, "v" + std::to_string(i)).ok);
    const auto got = session.get(key);
    ASSERT_TRUE(got.ok);
    ASSERT_TRUE(got.found);
  }
  done.store(true, std::memory_order_relaxed);
  scraper.join();

  EXPECT_GT(scrapes.load(), 0u);
  EXPECT_EQ(scrape_failures.load(), 0u);

  // The final snapshot must show the load: server-side op histograms and
  // engine counters advanced while being scraped.
  const std::string body = body_of(http_get(port, "/metrics"));
  const auto count_pos = body.find("pocc_server_op_us_count{op=\"put\"}");
  ASSERT_NE(count_pos, std::string::npos);
  EXPECT_EQ(body.find("pocc_server_op_us_count{op=\"put\"} 0\n", count_pos),
            std::string::npos)
      << "put latency histogram never recorded";
  EXPECT_EQ(body.find("pocc_host_client_requests_total 0\n"),
            std::string::npos);
}

}  // namespace
}  // namespace pocc::net
