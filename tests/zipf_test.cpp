// Zipfian sampler: range, theta=0 uniformity, skew toward small ranks and
// agreement with the analytical distribution.
#include "common/zipf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <tuple>
#include <vector>

namespace pocc {
namespace {

TEST(Zipf, SingleElementAlwaysZero) {
  Rng rng(1);
  ZipfGenerator z(1, 0.99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.next(rng), 0u);
}

TEST(Zipf, SamplesWithinRange) {
  Rng rng(2);
  ZipfGenerator z(1000, 0.99);
  for (int i = 0; i < 100000; ++i) {
    ASSERT_LT(z.next(rng), 1000u);
  }
}

TEST(Zipf, ThetaZeroIsUniform) {
  Rng rng(3);
  constexpr std::uint64_t kN = 10;
  constexpr int kSamples = 200000;
  ZipfGenerator z(kN, 0.0);
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[z.next(rng)];
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kN, kSamples / kN * 0.1);
  }
}

TEST(Zipf, SkewFavorsSmallRanks) {
  Rng rng(4);
  ZipfGenerator z(1'000'000, 0.99);
  constexpr int kSamples = 200000;
  int rank0 = 0;
  int top100 = 0;
  for (int i = 0; i < kSamples; ++i) {
    const std::uint64_t v = z.next(rng);
    if (v == 0) ++rank0;
    if (v < 100) ++top100;
  }
  // With theta=0.99 over 1M keys, the head is heavily favored.
  EXPECT_GT(rank0, kSamples / 100);
  EXPECT_GT(top100, kSamples / 5);
}

TEST(Zipf, MatchesAnalyticalDistribution) {
  // Compare empirical frequencies against the exact zipf pmf for a small n.
  constexpr std::uint64_t kN = 50;
  const double theta = 0.8;
  Rng rng(5);
  ZipfGenerator z(kN, theta);
  constexpr int kSamples = 500000;
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[z.next(rng)];

  double harmonic = 0.0;
  for (std::uint64_t k = 1; k <= kN; ++k) {
    harmonic += 1.0 / std::pow(static_cast<double>(k), theta);
  }
  for (std::uint64_t k = 0; k < kN; ++k) {
    const double expected =
        kSamples / std::pow(static_cast<double>(k + 1), theta) / harmonic;
    EXPECT_NEAR(counts[k], expected, std::max(60.0, expected * 0.08))
        << "rank " << k;
  }
}

class ZipfParamTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(ZipfParamTest, RankZeroIsModalValue) {
  const auto [n, theta] = GetParam();
  Rng rng(6);
  ZipfGenerator z(n, theta);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[z.next(rng)];
  // Rank 0 must be (weakly) the most frequent for any skew > 0.
  int max_count = 0;
  for (const auto& [rank, c] : counts) max_count = std::max(max_count, c);
  EXPECT_EQ(counts[0], max_count);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ZipfParamTest,
    ::testing::Combine(::testing::Values(10ULL, 1000ULL, 1'000'000ULL),
                       ::testing::Values(0.5, 0.99, 1.0, 1.2)));

}  // namespace
}  // namespace pocc
