// Parking lot: FIFO resume when predicates turn true, re-parking, deadline
// expiry (HA-POCC partition suspicion) and drain semantics.
#include "server/parking_lot.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pocc::server {
namespace {

TEST(ParkingLot, ResumesWhenPredicateHolds) {
  ParkingLot lot;
  bool ready = false;
  Duration observed = -1;
  lot.park(
      100, [&] { return ready; },
      [&](Duration blocked) { observed = blocked; });
  EXPECT_EQ(lot.poke(200), 0u);
  ready = true;
  EXPECT_EQ(lot.poke(350), 1u);
  EXPECT_EQ(observed, 250);
  EXPECT_TRUE(lot.empty());
}

TEST(ParkingLot, FifoResumeOrder) {
  ParkingLot lot;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    lot.park(
        0, [] { return true; }, [&order, i](Duration) { order.push_back(i); });
  }
  lot.poke(10);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParkingLot, OnlyReadyEntriesResume) {
  ParkingLot lot;
  bool first_ready = false;
  int resumed = 0;
  lot.park(0, [&] { return first_ready; }, [&](Duration) { ++resumed; });
  lot.park(0, [] { return true; }, [&](Duration) { ++resumed; });
  EXPECT_EQ(lot.poke(1), 1u);
  EXPECT_EQ(resumed, 1);
  EXPECT_EQ(lot.size(), 1u);
  first_ready = true;
  EXPECT_EQ(lot.poke(2), 1u);
  EXPECT_EQ(resumed, 2);
}

TEST(ParkingLot, ResumeMayParkAgain) {
  // A resumed callback parking a new entry must not be re-examined within the
  // same poke (snapshot semantics).
  ParkingLot lot;
  int resumes = 0;
  lot.park(
      0, [] { return true; },
      [&](Duration) {
        ++resumes;
        lot.park(5, [] { return true; }, [&](Duration) { ++resumes; });
      });
  EXPECT_EQ(lot.poke(1), 1u);
  EXPECT_EQ(resumes, 1);
  EXPECT_EQ(lot.size(), 1u);
  EXPECT_EQ(lot.poke(2), 1u);
  EXPECT_EQ(resumes, 2);
}

TEST(ParkingLot, ExpireFiresTimeoutNotResume) {
  ParkingLot lot;
  bool resumed = false;
  Duration timeout_blocked = -1;
  lot.park(
      100, [] { return false; }, [&](Duration) { resumed = true; },
      500, [&](Duration blocked) { timeout_blocked = blocked; });
  EXPECT_EQ(lot.expire(599), 0u);
  EXPECT_EQ(lot.expire(600), 1u);
  EXPECT_FALSE(resumed);
  EXPECT_EQ(timeout_blocked, 500);
  EXPECT_TRUE(lot.empty());
}

TEST(ParkingLot, NoDeadlineNeverExpires) {
  ParkingLot lot;
  lot.park(0, [] { return false; }, [](Duration) {});
  EXPECT_EQ(lot.expire(kTimestampMax - 1), 0u);
  EXPECT_EQ(lot.size(), 1u);
  EXPECT_EQ(lot.next_deadline(), kTimestampMax);
}

TEST(ParkingLot, NextDeadlineIsEarliest) {
  ParkingLot lot;
  lot.park(0, [] { return false; }, [](Duration) {}, 300, [](Duration) {});
  lot.park(0, [] { return false; }, [](Duration) {}, 100, [](Duration) {});
  EXPECT_EQ(lot.next_deadline(), 100);
}

TEST(ParkingLot, DrainInvokesTimeoutHandlers) {
  ParkingLot lot;
  int timeouts = 0;
  lot.park(0, [] { return false; }, [](Duration) {}, 1000,
           [&](Duration) { ++timeouts; });
  lot.park(0, [] { return false; }, [](Duration) {});  // no handler
  lot.drain(50);
  EXPECT_EQ(timeouts, 1);
  EXPECT_TRUE(lot.empty());
}

TEST(ParkingLot, ClearDiscardsSilently) {
  // Crash recovery (fault layer): a dead process answers nothing — neither
  // resume nor timeout handlers may fire.
  ParkingLot lot;
  int calls = 0;
  lot.park(0, [] { return true; }, [&](Duration) { ++calls; }, 1000,
           [&](Duration) { ++calls; });
  lot.park(0, [] { return false; }, [&](Duration) { ++calls; });
  lot.clear();
  EXPECT_TRUE(lot.empty());
  EXPECT_EQ(lot.poke(10), 0u);
  EXPECT_EQ(lot.expire(10'000), 0u);
  EXPECT_EQ(calls, 0);
}

TEST(ParkingLot, ReadyEntryStillExpiresIfNotPoked) {
  // Expiry is driven by deadlines regardless of readiness; the host decides
  // when to poke. This models a request whose dependency arrived exactly at
  // the timeout boundary: expire wins if it runs first.
  ParkingLot lot;
  bool resumed = false;
  bool timed_out = false;
  lot.park(
      0, [] { return true; }, [&](Duration) { resumed = true; }, 10,
      [&](Duration) { timed_out = true; });
  EXPECT_EQ(lot.expire(10), 1u);
  EXPECT_TRUE(timed_out);
  EXPECT_FALSE(resumed);
}

}  // namespace
}  // namespace pocc::server
