// POCC engine (Alg. 2) against a MockContext: PUT path (timestamps, clock
// waits, replication), optimistic GET visibility, parking on missing
// dependencies, RO-TX snapshots, heartbeats and GC.
#include "pocc/pocc_server.hpp"

#include <gtest/gtest.h>

#include "store/key_space.hpp"
#include "test_util.hpp"

namespace pocc {
namespace {

KeyId K(const std::string& key) { return store::intern_key(key); }

using testutil::MockContext;
using testutil::test_topology;

class PoccServerTest : public ::testing::Test {
 protected:
  PoccServerTest()
      : server_(NodeId{0, 1}, test_topology(), protocol_, service_, ctx_) {
    ctx_.now = 1'000'000;  // physical clocks well past zero
  }

  proto::PutReq put_req(ClientId c, const std::string& key, std::string value,
                        VersionVector dv = VersionVector(3)) {
    proto::PutReq r;
    r.client = c;
    r.key = K(key);
    r.value = std::move(value);
    r.dv = std::move(dv);
    return r;
  }

  proto::GetReq get_req(ClientId c, const std::string& key,
                        VersionVector rdv = VersionVector(3)) {
    proto::GetReq r;
    r.client = c;
    r.key = K(key);
    r.rdv = std::move(rdv);
    return r;
  }

  store::Version remote_version(const std::string& key, Timestamp ut, DcId sr,
                                VersionVector dv = VersionVector(3)) {
    store::Version v;
    v.key = K(key);
    v.value = "remote";
    v.sr = sr;
    v.ut = ut;
    v.dv = std::move(dv);
    return v;
  }

  MockContext ctx_;
  ProtocolConfig protocol_;
  ServiceConfig service_;
  PoccServer server_;
};

TEST_F(PoccServerTest, PutCreatesVersionAndReplies) {
  server_.handle_message(NodeId{0, 1}, put_req(1, "1:a", "v1"));
  const auto replies = ctx_.replies_of<proto::PutReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].first, 1u);
  EXPECT_GT(replies[0].second.ut, 0);
  EXPECT_EQ(replies[0].second.sr, 0u);
  // The version vector's local entry advanced to the new timestamp.
  EXPECT_EQ(server_.version_vector()[0], replies[0].second.ut);
  EXPECT_EQ(server_.puts_served(), 1u);
}

TEST_F(PoccServerTest, PutReplicatesToSiblingReplicasOnly) {
  server_.handle_message(NodeId{0, 1}, put_req(1, "1:a", "v1"));
  const auto reps = ctx_.sent_of<proto::Replicate>();
  ASSERT_EQ(reps.size(), 2u);  // DCs 1 and 2, same partition index
  EXPECT_EQ(reps[0].first, (NodeId{1, 1}));
  EXPECT_EQ(reps[1].first, (NodeId{2, 1}));
  EXPECT_EQ(reps[0].second.version.key, K("1:a"));
  EXPECT_EQ(reps[0].second.version.sr, 0u);
}

TEST_F(PoccServerTest, PutTimestampExceedsDependencies) {
  // Alg. 2 line 7: wait until max(DV_c) < Clock.
  server_.handle_message(NodeId{1, 1}, proto::Heartbeat{1, 600'000});
  VersionVector dv{0, 500'000, 0};
  server_.handle_message(NodeId{0, 1}, put_req(1, "1:a", "v", dv));
  const auto replies = ctx_.replies_of<proto::PutReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_GT(replies[0].second.ut, 500'000);
}

TEST_F(PoccServerTest, PutWithFutureDependencyParksUntilClockPasses) {
  const Timestamp future = ctx_.now + 10'000;
  // Satisfy the dependency-wait (Alg. 2 line 6) so only the clock condition
  // (line 7) keeps the request parked.
  server_.handle_message(NodeId{1, 1}, proto::Heartbeat{1, future});
  VersionVector dv{0, future, 0};
  server_.handle_message(NodeId{0, 1}, put_req(1, "1:a", "v", dv));
  EXPECT_TRUE(ctx_.replies.empty());
  EXPECT_EQ(server_.parked_requests(), 1u);
  // A clock wakeup timer was armed.
  bool has_clock_timer = false;
  for (const auto& [at, id] : ctx_.timers) {
    if (id == server::kTimerClockWait) has_clock_timer = true;
  }
  EXPECT_TRUE(has_clock_timer);
  // Advance past the dependency and fire the wakeup.
  ctx_.now = future + 10;
  server_.on_timer(server::kTimerClockWait);
  const auto replies = ctx_.replies_of<proto::PutReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_GT(replies[0].second.ut, future);
  EXPECT_GT(replies[0].second.blocked_us, 0);
}

TEST_F(PoccServerTest, PutWithUnsatisfiedRemoteDependencyParks) {
  // put_dependency_wait is on (§V-A): a dependency *ahead* of the local VV
  // but behind the clock parks on the VV condition (Alg. 2 line 6) and is
  // resumed by replication.
  VersionVector dv{0, 900'000, 0};
  server_.handle_message(NodeId{0, 1}, put_req(2, "1:b", "w", dv));
  EXPECT_TRUE(ctx_.replies_of<proto::PutReply>().empty());
  EXPECT_EQ(server_.parked_requests(), 1u);
  server_.handle_message(NodeId{1, 1},
                         proto::Replicate{remote_version("1:zzz", 900'000, 1)});
  ASSERT_EQ(ctx_.replies_of<proto::PutReply>().size(), 1u);
  EXPECT_EQ(server_.parked_requests(), 0u);
}

TEST_F(PoccServerTest, GetReturnsFreshestVersionEvenIfUnstable) {
  // An unstable remote version (dependencies not received) is still returned:
  // that is the optimism of OCC (§III-A).
  VersionVector dv{0, 0, 777'777};  // depends on DC2 data we do not have
  server_.handle_message(NodeId{1, 1},
                         proto::Replicate{remote_version("1:a", 950'000, 1, dv)});
  server_.handle_message(NodeId{0, 1}, get_req(5, "1:a"));
  const auto replies = ctx_.replies_of<proto::GetReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(replies[0].second.item.found);
  EXPECT_EQ(replies[0].second.item.ut, 950'000);
  EXPECT_EQ(replies[0].second.item.fresher_versions, 0u);
  EXPECT_EQ(replies[0].second.blocked_us, 0);
}

TEST_F(PoccServerTest, GetUnknownKeyReturnsImplicitInitialVersion) {
  server_.handle_message(NodeId{0, 1}, get_req(5, "1:never-written"));
  const auto replies = ctx_.replies_of<proto::GetReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_FALSE(replies[0].second.item.found);
  EXPECT_EQ(replies[0].second.item.ut, 0);
}

TEST_F(PoccServerTest, GetBlocksOnMissingRemoteDependency) {
  // Alg. 2 line 2: RDV[1] ahead of VV[1] — the server must stall.
  server_.handle_message(NodeId{0, 1},
                         get_req(5, "1:a", VersionVector{0, 500'000, 0}));
  EXPECT_TRUE(ctx_.replies.empty());
  EXPECT_EQ(server_.parked_requests(), 1u);
  // The missing dependency arrives (heartbeat raises VV[1]) 5 ms later.
  ctx_.now += 5'000;
  server_.handle_message(NodeId{1, 1}, proto::Heartbeat{1, 600'000});
  const auto replies = ctx_.replies_of<proto::GetReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_GT(replies[0].second.blocked_us, 0);
  EXPECT_EQ(server_.blocking_stats().blocked, 1u);
}

TEST_F(PoccServerTest, GetIgnoresLocalEntryOfRdv) {
  // Local dependencies are trivially satisfied (Alg. 2 line 2: i != m).
  server_.handle_message(
      NodeId{0, 1}, get_req(5, "1:a", VersionVector{999'999'999, 0, 0}));
  EXPECT_EQ(ctx_.replies_of<proto::GetReply>().size(), 1u);
}

TEST_F(PoccServerTest, ReplicateAdvancesVersionVector) {
  server_.handle_message(NodeId{1, 1},
                         proto::Replicate{remote_version("1:a", 300'000, 1)});
  EXPECT_EQ(server_.version_vector()[1], 300'000);
  server_.handle_message(NodeId{1, 1},
                         proto::Replicate{remote_version("1:b", 400'000, 1)});
  EXPECT_EQ(server_.version_vector()[1], 400'000);
}

TEST_F(PoccServerTest, HeartbeatAdvancesVersionVector) {
  server_.handle_message(NodeId{2, 1}, proto::Heartbeat{2, 123'456});
  EXPECT_EQ(server_.version_vector()[2], 123'456);
}

TEST_F(PoccServerTest, HeartbeatTimerBroadcastsWhenIdle) {
  server_.start();
  ctx_.clear_traffic();
  ctx_.now += 10'000;  // idle for 10 ms >> Δ = 1 ms
  server_.on_timer(server::kTimerHeartbeat);
  const auto hbs = ctx_.sent_of<proto::Heartbeat>();
  ASSERT_EQ(hbs.size(), 2u);
  EXPECT_EQ(hbs[0].first, (NodeId{1, 1}));
  EXPECT_EQ(hbs[1].first, (NodeId{2, 1}));
  EXPECT_EQ(hbs[0].second.src_dc, 0u);
  EXPECT_GT(hbs[0].second.ts, 0);
  // VV[m] advanced to the broadcast clock value.
  EXPECT_EQ(server_.version_vector()[0], hbs[0].second.ts);
}

TEST_F(PoccServerTest, HeartbeatSuppressedAfterRecentPut) {
  server_.handle_message(NodeId{0, 1}, put_req(1, "1:a", "v"));
  ctx_.clear_traffic();
  // Less than Δ since the put advanced VV[m].
  server_.on_timer(server::kTimerHeartbeat);
  EXPECT_TRUE(ctx_.sent_of<proto::Heartbeat>().empty());
}

TEST_F(PoccServerTest, LwwOrderAppliedOnConcurrentWrites) {
  // Two concurrent versions with the same timestamp: lowest sr wins (§IV-B).
  server_.handle_message(NodeId{1, 1},
                         proto::Replicate{remote_version("1:k", 500'000, 1)});
  store::Version v2 = remote_version("1:k", 500'000, 2);
  v2.value = "from-dc2";
  server_.handle_message(NodeId{2, 1}, proto::Replicate{v2});
  server_.handle_message(NodeId{0, 1}, get_req(5, "1:k"));
  const auto replies = ctx_.replies_of<proto::GetReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].second.item.sr, 1u);  // lower sr wins the tie
}

TEST_F(PoccServerTest, RoTxSinglePartitionLocal) {
  server_.handle_message(NodeId{0, 1}, put_req(1, "1:a", "va"));
  server_.handle_message(NodeId{0, 1}, put_req(1, "1:b", "vb"));
  ctx_.clear_traffic();
  proto::RoTxReq tx;
  tx.client = 9;
  tx.keys = {K("1:a"), K("1:b")};
  tx.rdv = VersionVector(3);
  server_.handle_message(NodeId{0, 1}, tx);
  const auto replies = ctx_.replies_of<proto::RoTxReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].second.items.size(), 2u);
  // TV = max(VV, RDV) (Alg. 2 line 32).
  EXPECT_EQ(replies[0].second.tv, server_.version_vector());
}

TEST_F(PoccServerTest, RoTxFansOutSliceRequests) {
  proto::RoTxReq tx;
  tx.client = 9;
  tx.keys = {K("0:x"), K("1:y")};  // partition 0 remote, partition 1 local
  tx.rdv = VersionVector(3);
  server_.handle_message(NodeId{0, 1}, tx);
  const auto slices = ctx_.sent_of<proto::SliceReq>();
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].first, (NodeId{0, 0}));  // same DC, partition 0
  EXPECT_EQ(slices[0].second.keys, std::vector<KeyId>{K("0:x")});
  EXPECT_EQ(slices[0].second.coordinator, (NodeId{0, 1}));
  // No reply yet: awaiting the remote slice.
  EXPECT_TRUE(ctx_.replies_of<proto::RoTxReply>().empty());

  proto::SliceReply sr;
  sr.tx_id = slices[0].second.tx_id;
  proto::ReadItem item;
  item.key = K("0:x");
  item.found = false;
  item.dv = VersionVector(3);
  sr.items = {item};
  server_.handle_message(NodeId{0, 0}, sr);
  const auto replies = ctx_.replies_of<proto::RoTxReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].second.items.size(), 2u);
}

TEST_F(PoccServerTest, SliceWaitsUntilVvCoversSnapshot) {
  proto::SliceReq slice;
  slice.tx_id = 42;
  slice.coordinator = NodeId{0, 0};
  slice.keys = {K("1:a")};
  slice.tv = VersionVector{0, 800'000, 0};  // ahead of VV[1]
  server_.handle_message(NodeId{0, 0}, slice);
  EXPECT_TRUE(ctx_.sent_of<proto::SliceReply>().empty());
  EXPECT_EQ(server_.parked_requests(), 1u);
  ctx_.now += 2'000;
  server_.handle_message(NodeId{1, 1}, proto::Heartbeat{1, 900'000});
  // Still parked: TV[0] (local) and TV[2] must also be covered; they are 0.
  const auto replies = ctx_.sent_of<proto::SliceReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_GT(replies[0].second.blocked_us, 0);
}

TEST_F(PoccServerTest, SliceVisibilityFiltersBySnapshot) {
  // Version with dv beyond TV must be invisible (Alg. 2 line 43).
  VersionVector dv_low(3);
  VersionVector dv_high{0, 0, 999'999'999};
  server_.handle_message(
      NodeId{1, 1}, proto::Replicate{remote_version("1:k", 500'000, 1, dv_low)});
  server_.handle_message(
      NodeId{1, 1},
      proto::Replicate{remote_version("1:k", 600'000, 1, dv_high)});

  proto::SliceReq slice;
  slice.tx_id = 43;
  slice.coordinator = NodeId{0, 0};
  slice.keys = {K("1:k")};
  slice.tv = server_.version_vector();
  server_.handle_message(NodeId{0, 0}, slice);
  const auto replies = ctx_.sent_of<proto::SliceReply>();
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_EQ(replies[0].second.items.size(), 1u);
  const proto::ReadItem& item = replies[0].second.items[0];
  EXPECT_EQ(item.ut, 500'000);          // the 600k version is outside TV
  EXPECT_EQ(item.fresher_versions, 1u);  // ...and counted as fresher
}

TEST_F(PoccServerTest, BlockingStatsCountAllOperations) {
  server_.handle_message(NodeId{0, 1}, get_req(1, "1:a"));
  server_.handle_message(NodeId{0, 1}, put_req(1, "1:b", "v"));
  EXPECT_EQ(server_.blocking_stats().operations, 2u);
  EXPECT_EQ(server_.blocking_stats().blocked, 0u);
}

TEST_F(PoccServerTest, VersionObserverFiresOnPut) {
  ClientId observed_client = 0;
  KeyId observed_key = kInvalidKeyId;
  server_.set_version_observer(
      [&](ClientId c, std::uint64_t op_id, const store::Version& v) {
        (void)op_id;
        observed_client = c;
        observed_key = v.key;
      });
  server_.handle_message(NodeId{0, 1}, put_req(77, "1:obs", "v"));
  EXPECT_EQ(observed_client, 77u);
  EXPECT_EQ(observed_key, K("1:obs"));
}

}  // namespace
}  // namespace pocc
