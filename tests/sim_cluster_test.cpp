// Whole-cluster integration on the simulator: session guarantees, POCC's
// immediate remote visibility vs Cure*'s stabilization delay, and causal
// consistency across DCs under the online checker.
#include "cluster/sim_cluster.hpp"

#include <gtest/gtest.h>

#include "store/key_space.hpp"

#include "pocc/api.hpp"  // umbrella header must stay self-contained

namespace pocc::cluster {
namespace {

SimClusterConfig small_config(SystemKind system, std::uint64_t seed = 1) {
  SimClusterConfig cfg;
  cfg.topology.num_dcs = 3;
  cfg.topology.partitions_per_dc = 2;
  cfg.topology.partition_scheme = PartitionScheme::kPrefix;
  cfg.latency = LatencyConfig::uniform(500, 50);
  cfg.latency.inter_dc_base_us = {
      {0, 10'000, 15'000}, {10'000, 0, 12'000}, {15'000, 12'000, 0}};
  cfg.latency.default_inter_dc_us = 12'000;
  cfg.clock.offset_sigma_us = 200.0;
  cfg.system = system;
  cfg.seed = seed;
  cfg.enable_checker = true;
  return cfg;
}

TEST(SimCluster, ReadYourOwnWrite) {
  SimCluster cluster(small_config(SystemKind::kPocc));
  auto& client = cluster.create_manual_client(0);
  cluster.run_for(10'000);  // let clocks/heartbeats settle

  const auto put = client.put("0:hello", "world");
  ASSERT_TRUE(put.ok);
  EXPECT_GT(put.ut, 0);

  const auto get = client.get("0:hello");
  ASSERT_TRUE(get.ok);
  EXPECT_TRUE(get.found);
  EXPECT_EQ(get.value, "world");
  EXPECT_EQ(get.ut, put.ut);
  ASSERT_NE(cluster.checker(), nullptr);
  EXPECT_TRUE(cluster.checker()->violations().empty());
}

TEST(SimCluster, UnwrittenKeyReadsAsNotFound) {
  SimCluster cluster(small_config(SystemKind::kPocc));
  auto& client = cluster.create_manual_client(1);
  cluster.run_for(10'000);
  const auto get = client.get("1:nothing");
  ASSERT_TRUE(get.ok);
  EXPECT_FALSE(get.found);
}

TEST(SimCluster, RemoteDcEventuallySeesWrite) {
  SimCluster cluster(small_config(SystemKind::kPocc));
  auto& writer = cluster.create_manual_client(0);
  auto& reader = cluster.create_manual_client(2);
  cluster.run_for(10'000);

  ASSERT_TRUE(writer.put("1:geo", "replicated").ok);
  // POCC exposes the remote update as soon as it arrives (one inter-DC hop).
  cluster.run_for(100'000);
  const auto get = reader.get("1:geo");
  ASSERT_TRUE(get.ok);
  EXPECT_TRUE(get.found);
  EXPECT_EQ(get.value, "replicated");
  EXPECT_TRUE(cluster.checker()->violations().empty());
}

TEST(SimCluster, PoccExposesFreshRemoteVersionImmediately) {
  // The key OCC property (§III-A): a remote version is visible the moment it
  // is received, before it is stable.
  SimClusterConfig cfg = small_config(SystemKind::kPocc);
  cfg.protocol.stabilization_interval_us = 1'000'000;  // irrelevant for POCC
  SimCluster cluster(cfg);
  auto& writer = cluster.create_manual_client(0);
  auto& reader = cluster.create_manual_client(1);
  cluster.run_for(10'000);
  ASSERT_TRUE(writer.put("0:fresh", "hot").ok);
  // Wait just past the one-way DC0->DC1 latency (10 ms + jitter).
  cluster.run_for(30'000);
  const auto get = reader.get("0:fresh");
  ASSERT_TRUE(get.ok);
  EXPECT_TRUE(get.found);
  EXPECT_EQ(get.value, "hot");
}

TEST(SimCluster, CureHidesRemoteVersionUntilStabilization) {
  SimClusterConfig cfg = small_config(SystemKind::kCure);
  cfg.protocol.stabilization_interval_us = 400'000;  // slow GSS on purpose
  SimCluster cluster(cfg);
  auto& writer = cluster.create_manual_client(0);
  auto& reader = cluster.create_manual_client(1);
  cluster.run_for(10'000);
  ASSERT_TRUE(writer.put("0:fresh", "hot").ok);
  cluster.run_for(30'000);  // received in DC1 but not stable yet
  const auto early = reader.get("0:fresh");
  ASSERT_TRUE(early.ok);
  EXPECT_FALSE(early.found) << "Cure* must hide the unstable remote version";
  // After a stabilization round the version becomes visible.
  cluster.run_for(900'000);
  const auto late = reader.get("0:fresh");
  ASSERT_TRUE(late.ok);
  EXPECT_TRUE(late.found);
  EXPECT_EQ(late.value, "hot");
  EXPECT_TRUE(cluster.checker()->violations().empty());
}

TEST(SimCluster, CausalDependencyNeverViolatedAcrossDcs) {
  SimCluster cluster(small_config(SystemKind::kPocc));
  auto& alice = cluster.create_manual_client(0);
  auto& bob = cluster.create_manual_client(1);
  cluster.run_for(10'000);

  ASSERT_TRUE(alice.put("0:photo", "img.jpg").ok);
  const auto photo = alice.get("0:photo");
  ASSERT_TRUE(photo.ok);
  ASSERT_TRUE(alice.put("1:comment", "nice pic").ok);

  cluster.run_for(200'000);
  const auto comment = bob.get("1:comment");
  ASSERT_TRUE(comment.ok);
  if (comment.found) {
    // Having seen the comment, Bob must see the photo (causality).
    const auto photo_bob = bob.get("0:photo");
    ASSERT_TRUE(photo_bob.ok);
    EXPECT_TRUE(photo_bob.found);
  }
  EXPECT_TRUE(cluster.checker()->violations().empty());
}

TEST(SimCluster, RoTxReturnsAllItems) {
  SimCluster cluster(small_config(SystemKind::kPocc));
  auto& client = cluster.create_manual_client(0);
  cluster.run_for(10'000);
  ASSERT_TRUE(client.put("0:a", "1").ok);
  ASSERT_TRUE(client.put("1:b", "2").ok);
  const auto tx = client.ro_tx({"0:a", "1:b", "0:c"});
  ASSERT_TRUE(tx.ok);
  EXPECT_EQ(tx.items.size(), 3u);
  int found = 0;
  for (const auto& item : tx.items) {
    if (item.found) ++found;
  }
  EXPECT_EQ(found, 2);
  EXPECT_TRUE(cluster.checker()->violations().empty());
}

TEST(SimCluster, WorkloadRunProducesThroughputAndConverges) {
  SimClusterConfig cfg = small_config(SystemKind::kPocc);
  SimCluster cluster(cfg);
  workload::WorkloadConfig wl;
  wl.pattern = workload::Pattern::kGetPut;
  wl.gets_per_put = 2;
  wl.think_time_us = 5'000;
  wl.keys_per_partition = 50;
  cluster.add_workload_clients(2, wl);

  cluster.run_for(100'000);  // warmup
  cluster.begin_measurement();
  cluster.run_for(300'000);
  const ClusterMetrics m = cluster.end_measurement();
  EXPECT_GT(m.completed_ops, 0u);
  EXPECT_GT(m.throughput_ops_per_sec, 0.0);
  EXPECT_GT(m.client_ops.gets, m.client_ops.puts);
  EXPECT_LE(m.blocking.blocking_probability(), 1.0);

  cluster.stop_clients();
  cluster.run_for(3'000'000);  // drain replication
  EXPECT_TRUE(cluster.checker()->violations().empty());
  EXPECT_TRUE(cluster.divergent_keys().empty());
  EXPECT_EQ(cluster.total_parked_requests(), 0u);
}

TEST(SimCluster, MetricsWindowIsolatesCounts) {
  SimClusterConfig cfg = small_config(SystemKind::kPocc);
  SimCluster cluster(cfg);
  workload::WorkloadConfig wl;
  wl.think_time_us = 5'000;
  wl.keys_per_partition = 50;
  cluster.add_workload_clients(1, wl);
  cluster.run_for(50'000);
  cluster.begin_measurement();
  const ClusterMetrics empty = cluster.end_measurement();
  EXPECT_EQ(empty.completed_ops, 0u);
  cluster.begin_measurement();
  cluster.run_for(200'000);
  const ClusterMetrics m = cluster.end_measurement();
  EXPECT_GT(m.completed_ops, 0u);
  EXPECT_EQ(m.window_us, 200'000);
  cluster.stop_clients();
}

TEST(SimCluster, SystemNames) {
  EXPECT_STREQ(system_name(SystemKind::kPocc), "POCC");
  EXPECT_STREQ(system_name(SystemKind::kCure), "Cure*");
  EXPECT_STREQ(system_name(SystemKind::kHaPocc), "HA-POCC");
  EXPECT_STREQ(system_name(SystemKind::kScalarPocc), "Scalar-OCC");
}

TEST(SimCluster, RoTxAcrossEveryPartitionIsSnapshotConsistent) {
  SimCluster cluster(small_config(SystemKind::kPocc, 5));
  auto& writer = cluster.create_manual_client(0);
  auto& reader = cluster.create_manual_client(1);
  cluster.run_for(10'000);
  // A causal chain spanning both partitions, written twice.
  for (int round = 1; round <= 2; ++round) {
    ASSERT_TRUE(writer.put("0:cfg", "cfg-v" + std::to_string(round)).ok);
    ASSERT_TRUE(writer.put("1:data", "data-v" + std::to_string(round)).ok);
  }
  cluster.run_for(150'000);
  const auto tx = reader.ro_tx({"0:cfg", "1:data"});
  ASSERT_TRUE(tx.ok);
  ASSERT_EQ(tx.items.size(), 2u);
  // data-v2 causally follows cfg-v2: a snapshot containing data-v2 must
  // contain cfg-v2 (checker enforces this too; assert the visible values).
  std::string cfg_val;
  std::string data_val;
  for (const auto& item : tx.items) {
    if (item.key == store::intern_key("0:cfg")) cfg_val = item.value;
    if (item.key == store::intern_key("1:data")) data_val = item.value;
  }
  if (data_val == "data-v2") {
    EXPECT_EQ(cfg_val, "cfg-v2");
  }
  EXPECT_TRUE(cluster.checker()->violations().empty());
}

TEST(SimCluster, ScalarSystemRunsWorkloadsConsistently) {
  SimClusterConfig cfg = small_config(SystemKind::kScalarPocc, 6);
  SimCluster cluster(cfg);
  workload::WorkloadConfig wl;
  wl.pattern = workload::Pattern::kGetPut;
  wl.gets_per_put = 2;
  wl.think_time_us = 4'000;
  wl.keys_per_partition = 30;
  cluster.add_workload_clients(2, wl);
  cluster.run_for(300'000);
  cluster.stop_clients();
  cluster.run_for(2'000'000);
  EXPECT_TRUE(cluster.checker()->violations().empty());
  EXPECT_TRUE(cluster.divergent_keys().empty());
}

TEST(SimCluster, HotKeyContentionConvergesToLwwWinner) {
  // Every DC hammers the same key; after drain all replicas must agree on
  // the single LWW winner (§II-B convergent conflict handling).
  SimCluster cluster(small_config(SystemKind::kPocc, 7));
  std::vector<SimClient*> writers;
  for (DcId dc = 0; dc < 3; ++dc) {
    writers.push_back(&cluster.create_manual_client(dc));
  }
  cluster.run_for(10'000);
  for (int round = 0; round < 5; ++round) {
    for (auto* w : writers) {
      ASSERT_TRUE(
          w->put("0:hot", "dc" + std::to_string(w->dc()) + "-r" +
                              std::to_string(round))
              .ok);
    }
  }
  cluster.run_for(2'000'000);
  EXPECT_TRUE(cluster.divergent_keys().empty());
  // The winner is identical at every DC and carries the highest (ut, sr).
  const auto* head0 =
      cluster.engine(NodeId{0, 0}).partition_store().find(store::intern_key("0:hot"))->freshest();
  for (DcId dc = 1; dc < 3; ++dc) {
    const auto* head =
        cluster.engine(NodeId{dc, 0}).partition_store().find(store::intern_key("0:hot"))
            ->freshest();
    ASSERT_NE(head, nullptr);
    EXPECT_EQ(head->ut, head0->ut);
    EXPECT_EQ(head->sr, head0->sr);
    EXPECT_EQ(head->value, head0->value);
  }
}

}  // namespace
}  // namespace pocc::cluster
