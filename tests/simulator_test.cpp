// Discrete-event core: time-ordered execution, deterministic tie-breaking,
// self-scheduling events and run_until boundary semantics.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pocc::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule(30, [&] { order.push_back(3); });
  s.schedule(10, [&] { order.push_back(1); });
  s.schedule(20, [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Simulator, TiesBreakInSchedulingOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule(5, [&order, i] { order.push_back(i); });
  }
  s.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator s;
  int fired = 0;
  s.schedule(1, [&] {
    ++fired;
    s.schedule(1, [&] {
      ++fired;
      s.schedule(1, [&] { ++fired; });
    });
  });
  s.run_all();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(s.now(), 3);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator s;
  int fired = 0;
  s.schedule(10, [&] { ++fired; });
  s.schedule(100, [&] { ++fired; });
  const auto n = s.run_until(50);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), 50);  // clock advances to the boundary
  s.run_until(100);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilIncludesBoundaryEvents) {
  Simulator s;
  int fired = 0;
  s.schedule(50, [&] { ++fired; });
  s.run_until(50);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, StepExecutesSingleEvent) {
  Simulator s;
  int fired = 0;
  s.schedule(1, [&] { ++fired; });
  s.schedule(2, [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(s.step());
}

TEST(Simulator, ScheduleAtAbsoluteTime) {
  Simulator s;
  Timestamp seen = -1;
  s.schedule_at(123, [&] { seen = s.now(); });
  s.run_all();
  EXPECT_EQ(seen, 123);
}

TEST(Simulator, ClearDropsPendingEvents) {
  Simulator s;
  int fired = 0;
  s.schedule(1, [&] { ++fired; });
  s.clear();
  s.run_all();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, RunAllRespectsEventBudget) {
  Simulator s;
  std::function<void()> reschedule = [&] { s.schedule(1, reschedule); };
  s.schedule(1, reschedule);
  const auto n = s.run_all(1000);
  EXPECT_EQ(n, 1000u);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator s;
  for (int i = 0; i < 5; ++i) s.schedule(i, [] {});
  s.run_all();
  EXPECT_EQ(s.executed_events(), 5u);
}

}  // namespace
}  // namespace pocc::sim
