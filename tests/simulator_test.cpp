// Discrete-event core: time-ordered execution, deterministic tie-breaking,
// self-scheduling events and run_until boundary semantics.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

namespace pocc::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule(30, [&] { order.push_back(3); });
  s.schedule(10, [&] { order.push_back(1); });
  s.schedule(20, [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Simulator, TiesBreakInSchedulingOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule(5, [&order, i] { order.push_back(i); });
  }
  s.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator s;
  int fired = 0;
  s.schedule(1, [&] {
    ++fired;
    s.schedule(1, [&] {
      ++fired;
      s.schedule(1, [&] { ++fired; });
    });
  });
  s.run_all();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(s.now(), 3);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator s;
  int fired = 0;
  s.schedule(10, [&] { ++fired; });
  s.schedule(100, [&] { ++fired; });
  const auto n = s.run_until(50);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), 50);  // clock advances to the boundary
  s.run_until(100);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilIncludesBoundaryEvents) {
  Simulator s;
  int fired = 0;
  s.schedule(50, [&] { ++fired; });
  s.run_until(50);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, StepExecutesSingleEvent) {
  Simulator s;
  int fired = 0;
  s.schedule(1, [&] { ++fired; });
  s.schedule(2, [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(s.step());
}

TEST(Simulator, ScheduleAtAbsoluteTime) {
  Simulator s;
  Timestamp seen = -1;
  s.schedule_at(123, [&] { seen = s.now(); });
  s.run_all();
  EXPECT_EQ(seen, 123);
}

TEST(Simulator, ClearDropsPendingEvents) {
  Simulator s;
  int fired = 0;
  s.schedule(1, [&] { ++fired; });
  s.clear();
  s.run_all();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, RunAllRespectsEventBudget) {
  Simulator s;
  std::function<void()> reschedule = [&] { s.schedule(1, reschedule); };
  s.schedule(1, reschedule);
  const auto n = s.run_all(1000);
  EXPECT_EQ(n, 1000u);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator s;
  for (int i = 0; i < 5; ++i) s.schedule(i, [] {});
  s.run_all();
  EXPECT_EQ(s.executed_events(), 5u);
}

// ----- timing-wheel specifics -----

TEST(Simulator, DelaysAcrossAllWheelLevels) {
  // One event per wheel level (64^k boundaries) plus one far beyond the
  // horizon (overflow heap). All must fire in time order at exact times.
  Simulator s;
  const std::vector<Timestamp> ats = {
      3,          64,           65,          4096,        4100,
      262'144,    16'777'216,   1'073'741'824,
      68'719'476'736,  // 64^6 = horizon: overflow
      100'000'000'000};
  std::vector<Timestamp> fired;
  for (const Timestamp at : ats) {
    s.schedule_at(at, [&fired, &s] { fired.push_back(s.now()); });
  }
  s.run_all();
  EXPECT_EQ(fired, ats);
}

TEST(Simulator, IdleJumpThenLateEventsStillFire) {
  // run_until jumps now() past pending-free stretches; events left in
  // higher wheel levels (and re-stranded buckets) must still fire correctly.
  Simulator s;
  std::vector<Timestamp> fired;
  s.schedule_at(500'000, [&] { fired.push_back(s.now()); });
  s.schedule_at(500'001, [&] { fired.push_back(s.now()); });
  s.run_until(499'990);  // long idle jump, no events
  EXPECT_EQ(s.now(), 499'990);
  s.schedule_at(499'995, [&] { fired.push_back(s.now()); });
  s.run_all();
  EXPECT_EQ(fired, (std::vector<Timestamp>{499'995, 500'000, 500'001}));
}

TEST(Simulator, SameInstantFifoAcrossLevels) {
  // Two events for the same timestamp, one scheduled while the target is in
  // a high wheel level and one after time advanced close to it: scheduling
  // order must still win the tie.
  Simulator s;
  std::vector<int> order;
  s.schedule_at(10'000, [&] { order.push_back(1); });  // far: level >= 2
  s.schedule_at(9'000, [&] {
    // Close to the target now: same timestamp, later seq.
    s.schedule_at(10'000, [&] { order.push_back(2); });
  });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, PendingEventsTracksWheelAndOverflow) {
  Simulator s;
  s.schedule(10, [] {});
  s.schedule_at(100'000'000'000, [] {});  // overflow
  EXPECT_EQ(s.pending_events(), 2u);
  s.step();
  EXPECT_EQ(s.pending_events(), 1u);
  s.clear();
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_FALSE(s.step());
}

TEST(Simulator, ClearReleasesOverflowAndWheelCaptures) {
  Simulator s;
  auto token = std::make_shared<int>(7);
  s.schedule(5, [token] {});
  s.schedule_at(100'000'000'000, [token] {});
  EXPECT_EQ(token.use_count(), 3);
  s.clear();
  EXPECT_EQ(token.use_count(), 1);  // captures destroyed, not leaked
}

// Fuzz: random schedules (clustered and far timestamps, same-instant ties,
// events scheduling events, interleaved run_until jumps) must fire in exact
// (timestamp, scheduling-order) sequence — the determinism contract.
class SimulatorFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SimulatorFuzzTest, MatchesReferenceOrder) {
  std::uint64_t state = static_cast<std::uint64_t>(GetParam()) * 2654435761u + 1;
  auto rnd = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  Simulator s;
  // Reference: every scheduled event gets an increasing id; expected firing
  // order is stable-sort by timestamp (stable == scheduling order on ties).
  struct Ref {
    Timestamp at;
    int id;
  };
  std::vector<Ref> expected;
  std::vector<int> fired;
  int next_id = 0;
  std::function<void()> schedule_random = [&] {
    const Timestamp base = s.now();
    Duration delay;
    switch (rnd() % 6) {
      case 0: delay = 0; break;                                  // same instant
      case 1: delay = static_cast<Duration>(rnd() % 8); break;   // level 0
      case 2: delay = static_cast<Duration>(rnd() % 4096); break;
      case 3: delay = static_cast<Duration>(rnd() % 300'000); break;
      case 4: delay = static_cast<Duration>(rnd() % 40'000'000); break;
      default:  // occasionally beyond the wheel horizon (overflow heap)
        delay = static_cast<Duration>(68'719'476'736ULL + rnd() % 1000);
        break;
    }
    const int id = next_id++;
    expected.push_back(Ref{base + delay, id});
    const bool chain = rnd() % 8 == 0;
    s.schedule(delay, [&, id, chain] {
      fired.push_back(id);
      if (chain && fired.size() < 3000) schedule_random();
    });
  };
  for (int i = 0; i < 500; ++i) schedule_random();
  // Interleave bounded runs (forcing idle jumps) with full drains.
  s.run_until(1000);
  s.run_until(500'000);
  for (int i = 0; i < 200; ++i) schedule_random();
  s.run_all();

  // All events fired, in stable (at, seq) order.
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Ref& a, const Ref& b) { return a.at < b.at; });
  ASSERT_EQ(fired.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(fired[i], expected[i].id) << "position " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorFuzzTest, ::testing::Range(1, 13));

}  // namespace
}  // namespace pocc::sim
