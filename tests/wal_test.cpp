// Per-partition WAL unit tests: record framing round-trips, log + group
// commit + replay across reopens (the process-restart path), checkpoint
// rotation, corrupt-snapshot fallback to the older recovery line, and the
// prune policy. Adversarial torn-tail / bit-flip sweeps live in
// wal_fuzz_test.cpp; the full crash battery in recovery_test.cpp.
#include "wal/partition_wal.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "store/key_space.hpp"
#include "store/partition_store.hpp"
#include "store/version.hpp"
#include "wal/wal_format.hpp"

namespace pocc::wal {
namespace {

namespace fs = std::filesystem;

/// A fresh, empty scratch directory unique to this process + test.
std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() /
                       ("pocc_wal_test_" + std::to_string(::getpid())) / name;
  fs::remove_all(dir);
  return dir.string();
}

store::Version make_version(const std::string& key, Timestamp ut, DcId sr,
                            const std::string& value) {
  store::Version v;
  v.key = store::intern_key(key);
  v.value = value;
  v.sr = sr;
  v.ut = ut;
  v.dv = VersionVector(3);
  if (ut > 0) v.dv.raise(sr, ut - 1);
  return v;
}

/// Replays `wal` and returns the recovered versions in replay order.
std::vector<store::Version> replay_versions(
    PartitionWal& wal, PartitionWal::ReplayStats* stats = nullptr,
    VersionVector* vv_out = nullptr) {
  std::vector<store::Version> got;
  const PartitionWal::ReplayStats s = wal.replay(
      [&](const store::Version& v) { got.push_back(v); },
      [&](const VersionVector& vv) {
        if (vv_out != nullptr) vv_out->merge_max(vv);
      });
  if (stats != nullptr) *stats = s;
  return got;
}

TEST(WalFormat, RecordRoundTrip) {
  std::vector<std::uint8_t> buf;
  const store::Version v = make_version("1:a", 42, 1, "hello");
  append_version_record(buf, v);
  VersionVector vv(3);
  vv.raise(0, 7);
  vv.raise(2, 99);
  append_vv_record(buf, vv);

  std::vector<Record> records;
  const ScanResult scan = scan_records(
      buf.data(), buf.size(), [&](const Record& r) { records.push_back(r); });
  EXPECT_FALSE(scan.torn);
  EXPECT_EQ(scan.records, 2u);
  EXPECT_EQ(scan.valid_bytes, buf.size());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].kind, RecordKind::kVersion);
  EXPECT_EQ(records[0].version.key, v.key);
  EXPECT_EQ(records[0].version.value, "hello");
  EXPECT_EQ(records[0].version.ut, 42);
  EXPECT_EQ(records[0].version.sr, 1u);
  EXPECT_EQ(records[0].version.dv, v.dv);
  EXPECT_EQ(records[1].kind, RecordKind::kVv);
  EXPECT_EQ(records[1].vv, vv);
}

TEST(WalFormat, SnapshotRoundTrip) {
  store::PartitionStore store;
  VersionVector vv(3);
  for (int i = 0; i < 20; ++i) {
    const store::Version v = make_version("1:snap" + std::to_string(i % 5),
                                          100 + i, static_cast<DcId>(i % 3),
                                          "v" + std::to_string(i));
    store.insert(v);
    vv.raise(v.sr, v.ut);
  }
  const std::vector<std::uint8_t> body = encode_snapshot(store, vv);
  const auto snap = decode_snapshot(body.data(), body.size());
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->vv, vv);
  EXPECT_EQ(snap->versions.size(), 20u);
  // Any corruption (here: one flipped body byte) must fail validation, not
  // hand back garbage — the caller falls back to the older recovery line.
  std::vector<std::uint8_t> bad = body;
  bad[bad.size() / 2] ^= 0x40;
  EXPECT_FALSE(decode_snapshot(bad.data(), bad.size()).has_value());
}

TEST(WalTest, LogSyncReplayAcrossReopen) {
  const std::string dir = fresh_dir("reopen");
  std::vector<store::Version> logged;
  VersionVector final_vv(3);
  {
    PartitionWal wal(dir);
    for (int i = 0; i < 50; ++i) {
      const store::Version v =
          make_version("1:k" + std::to_string(i), 1'000 + i,
                       static_cast<DcId>(i % 3), "val" + std::to_string(i));
      wal.log_version(v);
      logged.push_back(v);
      final_vv.raise(v.sr, v.ut);
      if (i % 10 == 9) {
        EXPECT_GT(wal.unsynced_bytes(), 0u);
        wal.sync();  // group commit every 10 appends
        EXPECT_EQ(wal.unsynced_bytes(), 0u);
      }
    }
    final_vv.raise(2, 9'999);  // a heartbeat-driven raise with no version
    wal.log_vv(final_vv);
    wal.sync();
  }
  PartitionWal reopened(dir);
  PartitionWal::ReplayStats stats;
  VersionVector vv(3);
  const std::vector<store::Version> got =
      replay_versions(reopened, &stats, &vv);
  ASSERT_EQ(got.size(), logged.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].key, logged[i].key);
    EXPECT_EQ(got[i].value, logged[i].value);
    EXPECT_EQ(got[i].ut, logged[i].ut);
    EXPECT_EQ(got[i].sr, logged[i].sr);
    EXPECT_EQ(got[i].dv, logged[i].dv);
  }
  EXPECT_EQ(vv, final_vv);
  EXPECT_FALSE(stats.snapshot_loaded);
  EXPECT_EQ(stats.log_versions, 50u);
  EXPECT_EQ(stats.vv_records, 1u);
  EXPECT_EQ(stats.torn_bytes, 0u);
}

TEST(WalTest, DiscardedUnsyncedTailIsLost) {
  const std::string dir = fresh_dir("discard");
  {
    PartitionWal wal(dir);
    wal.log_version(make_version("1:durable", 10, 0, "kept"));
    wal.sync();
    wal.log_version(make_version("1:volatile", 11, 0, "lost"));
    // kill -9: the userland buffer dies without reaching the segment.
    wal.discard_unsynced();
    EXPECT_EQ(wal.unsynced_bytes(), 0u);
  }
  PartitionWal reopened(dir);
  const std::vector<store::Version> got = replay_versions(reopened);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].value, "kept");
}

TEST(WalTest, CheckpointRotatesSnapshotsAndReplaysTheSuffix) {
  const std::string dir = fresh_dir("checkpoint");
  PartitionWal::Options opt;
  opt.checkpoint_bytes = 1;  // every synced byte crosses the threshold
  store::PartitionStore store;
  VersionVector vv(3);
  {
    PartitionWal wal(dir, opt);
    for (int i = 0; i < 8; ++i) {
      const store::Version v = make_version("1:c" + std::to_string(i), 50 + i,
                                            0, "v" + std::to_string(i));
      wal.log_version(v);
      store.insert(v);
      vv.raise(v.sr, v.ut);
    }
    wal.sync();
    ASSERT_TRUE(wal.wants_checkpoint());
    const std::uint64_t seq = wal.begin_checkpoint();
    EXPECT_EQ(wal.active_segment_seq(), seq);
    EXPECT_FALSE(wal.wants_checkpoint());  // pending until the commit lands
    ASSERT_TRUE(wal.commit_checkpoint(seq, encode_snapshot(store, vv)));
    // Post-checkpoint suffix: replayed from the log on top of the snapshot.
    wal.log_version(make_version("1:suffix", 99, 1, "tail"));
    wal.sync();
  }
  PartitionWal reopened(dir, opt);
  PartitionWal::ReplayStats stats;
  const std::vector<store::Version> got = replay_versions(reopened, &stats);
  EXPECT_TRUE(stats.snapshot_loaded);
  EXPECT_EQ(stats.snapshot_versions, 8u);
  EXPECT_EQ(stats.log_versions, 1u);
  ASSERT_EQ(got.size(), 9u);
  EXPECT_EQ(got.back().value, "tail");
}

/// Drives `count` checkpoints through wal, appending two versions before
/// each; returns every version logged (ut increasing across calls).
std::vector<store::Version> drive_checkpoints(PartitionWal& wal,
                                              store::PartitionStore& store,
                                              VersionVector& vv, int count,
                                              Timestamp* next_ut) {
  std::vector<store::Version> logged;
  for (int c = 0; c < count; ++c) {
    for (int i = 0; i < 2; ++i) {
      const Timestamp ut = (*next_ut)++;
      const store::Version v = make_version("1:p" + std::to_string(ut), ut, 0,
                                            "x" + std::to_string(c));
      wal.log_version(v);
      store.insert(v);
      vv.raise(v.sr, v.ut);
      logged.push_back(v);
    }
    wal.sync();
    EXPECT_TRUE(wal.wants_checkpoint());
    const std::uint64_t seq = wal.begin_checkpoint();
    EXPECT_TRUE(wal.commit_checkpoint(seq, encode_snapshot(store, vv)));
  }
  return logged;
}

TEST(WalTest, PruneKeepsTwoNewestSnapshotsAndTheirSegments) {
  const std::string dir = fresh_dir("prune");
  PartitionWal::Options opt;
  opt.checkpoint_bytes = 1;
  store::PartitionStore store;
  VersionVector vv(3);
  Timestamp next_ut = 200;
  {
    PartitionWal wal(dir, opt);
    drive_checkpoints(wal, store, vv, 4, &next_ut);
  }
  std::vector<std::string> snaps;
  std::vector<std::string> segments;
  for (const auto& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.ends_with(".snap")) snaps.push_back(name);
    if (name.ends_with(".log")) segments.push_back(name);
  }
  std::sort(snaps.begin(), snaps.end());
  // The newest snapshot plus one older fallback line survive; everything
  // their coverage obsoletes is gone.
  ASSERT_EQ(snaps.size(), 2u);
  const std::string older_floor =
      snaps.front().substr(5, 8);  // "snap-XXXXXXXX.snap"
  for (const std::string& seg : segments) {
    EXPECT_GE(seg.substr(4, 8), older_floor) << seg;
  }
}

TEST(WalTest, CorruptNewestSnapshotFallsBackToOlderLine) {
  const std::string dir = fresh_dir("snap_fallback");
  PartitionWal::Options opt;
  opt.checkpoint_bytes = 1;
  store::PartitionStore store;
  VersionVector vv(3);
  Timestamp next_ut = 300;
  std::vector<store::Version> logged;
  {
    PartitionWal wal(dir, opt);
    logged = drive_checkpoints(wal, store, vv, 2, &next_ut);
    wal.log_version(make_version("1:tail", next_ut, 1, "tail"));
    logged.push_back(make_version("1:tail", next_ut, 1, "tail"));
    wal.sync();
  }
  // Corrupt the newest snapshot's body: recovery must reject it and rebuild
  // from the older snapshot + retained segment suffix — zero data loss.
  std::vector<std::string> snaps;
  for (const auto& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.ends_with(".snap")) snaps.push_back(name);
  }
  std::sort(snaps.begin(), snaps.end());
  ASSERT_EQ(snaps.size(), 2u);
  const fs::path newest = fs::path(dir) / snaps.back();
  {
    std::fstream f(newest, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(f.tellg());
    f.seekg(size - 3);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);  // guaranteed corruption
    f.seekp(size - 3);
    f.write(&byte, 1);
  }
  PartitionWal reopened(dir, opt);
  PartitionWal::ReplayStats stats;
  const std::vector<store::Version> got = replay_versions(reopened, &stats);
  EXPECT_TRUE(stats.snapshot_loaded);
  ASSERT_EQ(got.size(), logged.size());
  std::vector<Timestamp> got_uts;
  std::vector<Timestamp> want_uts;
  for (const auto& v : got) got_uts.push_back(v.ut);
  for (const auto& v : logged) want_uts.push_back(v.ut);
  std::sort(got_uts.begin(), got_uts.end());
  std::sort(want_uts.begin(), want_uts.end());
  EXPECT_EQ(got_uts, want_uts);
}

}  // namespace
}  // namespace pocc::wal
