// Multi-version partition store: insert/find, stats upkeep, GC of
// multi-version chains and targeted purging (lost-update discard) — plus a
// randomized parity check of the flat KeyId-keyed map against a
// std::unordered_map reference model.
#include "store/partition_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "store/key_space.hpp"

namespace pocc::store {
namespace {

KeyId K(const std::string& key) { return intern_key(key); }

Version make_version(const std::string& key, Timestamp ut, DcId sr = 0) {
  Version v;
  v.key = K(key);
  v.value = "val" + std::to_string(ut);
  v.sr = sr;
  v.ut = ut;
  v.dv = VersionVector(3);
  return v;
}

TEST(PartitionStore, FindUnknownKeyReturnsNull) {
  PartitionStore s;
  EXPECT_EQ(s.find(K("nope")), nullptr);
}

TEST(PartitionStore, InsertAndFind) {
  PartitionStore s;
  s.insert(make_version("a", 10));
  const VersionChain* c = s.find(K("a"));
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->freshest()->ut, 10);
}

TEST(PartitionStore, StatsTrackKeysAndVersions) {
  PartitionStore s;
  s.insert(make_version("a", 10));
  s.insert(make_version("a", 20));
  s.insert(make_version("b", 5));
  const StoreStats st = s.stats();
  EXPECT_EQ(st.keys, 2u);
  EXPECT_EQ(st.versions, 3u);
  EXPECT_EQ(st.multi_version_keys, 1u);
}

TEST(PartitionStore, DuplicateInsertDoesNotDoubleCount) {
  PartitionStore s;
  s.insert(make_version("a", 10));
  s.insert(make_version("a", 10));
  EXPECT_EQ(s.stats().versions, 1u);
}

TEST(PartitionStore, GcOnlyTouchesMultiVersionKeys) {
  PartitionStore s;
  s.insert(make_version("single", 10));
  s.insert(make_version("multi", 10));
  s.insert(make_version("multi", 20));
  s.insert(make_version("multi", 30));
  const auto removed = s.gc([](const Version& v) { return v.ut <= 20; });
  EXPECT_EQ(removed, 1u);  // only ut=10 of "multi"
  EXPECT_EQ(s.find(K("single"))->size(), 1u);
  EXPECT_EQ(s.find(K("multi"))->size(), 2u);
  EXPECT_EQ(s.stats().gc_removed, 1u);
  EXPECT_EQ(s.stats().versions, 3u);
}

TEST(PartitionStore, GcDropsKeyFromDirtySetWhenSingleVersionRemains) {
  PartitionStore s;
  s.insert(make_version("k", 10));
  s.insert(make_version("k", 20));
  (void)s.gc([](const Version& v) { return v.ut <= 20; });
  EXPECT_EQ(s.multi_version_keys().size(), 0u);
  // Subsequent GC passes are no-ops.
  EXPECT_EQ(s.gc([](const Version&) { return true; }), 0u);
}

TEST(PartitionStore, MultiVersionSetHasNoDuplicatesAcrossGcCycles) {
  PartitionStore s;
  // The key enters the multi-version set, leaves it via GC, and re-enters:
  // the set must hold it exactly once each time.
  s.insert(make_version("k", 10));
  s.insert(make_version("k", 20));
  EXPECT_EQ(s.multi_version_keys().size(), 1u);
  (void)s.gc([](const Version&) { return true; });
  EXPECT_EQ(s.multi_version_keys().size(), 0u);
  s.insert(make_version("k", 30));
  EXPECT_EQ(s.multi_version_keys().size(), 1u);
  s.insert(make_version("k", 40));
  EXPECT_EQ(s.multi_version_keys().size(), 1u);
}

TEST(PartitionStore, PurgeIfRemovesMatchingVersions) {
  PartitionStore s;
  s.insert(make_version("a", 10));
  s.insert(make_version("a", 20));
  s.insert(make_version("b", 30));
  const auto removed =
      s.purge_if([](const Version& v) { return v.ut >= 20; });
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(s.stats().versions, 1u);
  EXPECT_EQ(s.find(K("a"))->size(), 1u);
  EXPECT_EQ(s.find(K("b"))->size(), 0u);
}

TEST(PartitionStore, ChainsAccessorExposesAllKeys) {
  PartitionStore s;
  s.insert(make_version("x", 1));
  s.insert(make_version("y", 2));
  EXPECT_EQ(s.chains().size(), 2u);
}

// ---------------------------------------------------------------------------
// Randomized parity: the flat-map store must behave exactly like a reference
// model (std::unordered_map of version lists) under interleaved insert / GC /
// purge traffic.

class PartitionStoreFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(PartitionStoreFuzzTest, FlatStoreMatchesReferenceModel) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  PartitionStore store;
  // Reference: key -> versions, freshest first, duplicate (ut, sr) ignored.
  std::unordered_map<KeyId, std::vector<Version>> model;
  std::uint64_t model_versions = 0;

  auto model_insert = [&](const Version& v) {
    auto& chain = model[v.key];
    auto it = std::find_if(chain.begin(), chain.end(), [&](const Version& o) {
      return o.ut == v.ut && o.sr == v.sr;
    });
    if (it != chain.end()) return;
    chain.push_back(v);
    std::sort(chain.begin(), chain.end(),
              [](const Version& a, const Version& b) {
                return a.fresher_than(b);
              });
    ++model_versions;
  };

  const std::uint32_t kKeys = 64;
  for (int round = 0; round < 2000; ++round) {
    const std::uint64_t dice = rng.uniform(100);
    if (dice < 80) {  // insert (possibly duplicate)
      Version v = make_version("fuzz" + std::to_string(rng.uniform(kKeys)),
                               static_cast<Timestamp>(rng.uniform(50)) + 1,
                               static_cast<DcId>(rng.uniform(3)));
      model_insert(v);
      store.insert(v);
    } else if (dice < 90) {  // GC below a random floor
      const auto floor = static_cast<Timestamp>(rng.uniform(50));
      store.gc([&](const Version& v) { return v.ut <= floor; });
      for (auto& [key, chain] : model) {
        if (chain.size() <= 1) continue;  // GC only walks multi-version keys
        for (std::size_t i = 0; i < chain.size(); ++i) {
          if (chain[i].ut <= floor) {
            model_versions -= chain.size() - (i + 1);
            chain.resize(i + 1);
            break;
          }
        }
      }
    } else {  // purge a random timestamp (erase_if path)
      const auto target = static_cast<Timestamp>(rng.uniform(50)) + 1;
      store.purge_if([&](const Version& v) { return v.ut == target; });
      for (auto& [key, chain] : model) {
        const auto before = chain.size();
        std::erase_if(chain, [&](const Version& v) { return v.ut == target; });
        model_versions -= before - chain.size();
      }
    }
  }

  // Full-state comparison.
  EXPECT_EQ(store.stats().versions, model_versions);
  std::uint64_t model_multi = 0;
  for (const auto& [key, chain] : model) {
    if (chain.size() > 1) ++model_multi;
    const VersionChain* actual = store.find(key);
    if (chain.empty()) {
      // Key may exist with an empty chain (purged) or never inserted at all.
      if (actual != nullptr) {
        EXPECT_EQ(actual->size(), 0u);
      }
      continue;
    }
    ASSERT_NE(actual, nullptr) << "missing key " << key_name(key);
    ASSERT_EQ(actual->size(), chain.size()) << "key " << key_name(key);
    for (std::size_t i = 0; i < chain.size(); ++i) {
      EXPECT_EQ(actual->versions()[i].ut, chain[i].ut);
      EXPECT_EQ(actual->versions()[i].sr, chain[i].sr);
      EXPECT_EQ(actual->versions()[i].value, chain[i].value);
    }
  }
  EXPECT_EQ(store.stats().multi_version_keys, model_multi);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionStoreFuzzTest,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace pocc::store
