// Multi-version partition store: insert/find, stats upkeep, GC of
// multi-version chains and targeted purging (lost-update discard).
#include "store/partition_store.hpp"

#include <gtest/gtest.h>

namespace pocc::store {
namespace {

Version make_version(std::string key, Timestamp ut, DcId sr = 0) {
  Version v;
  v.key = std::move(key);
  v.value = "val" + std::to_string(ut);
  v.sr = sr;
  v.ut = ut;
  v.dv = VersionVector(3);
  return v;
}

TEST(PartitionStore, FindUnknownKeyReturnsNull) {
  PartitionStore s;
  EXPECT_EQ(s.find("nope"), nullptr);
}

TEST(PartitionStore, InsertAndFind) {
  PartitionStore s;
  s.insert(make_version("a", 10));
  const VersionChain* c = s.find("a");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->freshest()->ut, 10);
}

TEST(PartitionStore, StatsTrackKeysAndVersions) {
  PartitionStore s;
  s.insert(make_version("a", 10));
  s.insert(make_version("a", 20));
  s.insert(make_version("b", 5));
  const StoreStats st = s.stats();
  EXPECT_EQ(st.keys, 2u);
  EXPECT_EQ(st.versions, 3u);
  EXPECT_EQ(st.multi_version_keys, 1u);
}

TEST(PartitionStore, DuplicateInsertDoesNotDoubleCount) {
  PartitionStore s;
  s.insert(make_version("a", 10));
  s.insert(make_version("a", 10));
  EXPECT_EQ(s.stats().versions, 1u);
}

TEST(PartitionStore, GcOnlyTouchesMultiVersionKeys) {
  PartitionStore s;
  s.insert(make_version("single", 10));
  s.insert(make_version("multi", 10));
  s.insert(make_version("multi", 20));
  s.insert(make_version("multi", 30));
  const auto removed = s.gc([](const Version& v) { return v.ut <= 20; });
  EXPECT_EQ(removed, 1u);  // only ut=10 of "multi"
  EXPECT_EQ(s.find("single")->size(), 1u);
  EXPECT_EQ(s.find("multi")->size(), 2u);
  EXPECT_EQ(s.stats().gc_removed, 1u);
  EXPECT_EQ(s.stats().versions, 3u);
}

TEST(PartitionStore, GcDropsKeyFromDirtySetWhenSingleVersionRemains) {
  PartitionStore s;
  s.insert(make_version("k", 10));
  s.insert(make_version("k", 20));
  (void)s.gc([](const Version& v) { return v.ut <= 20; });
  EXPECT_EQ(s.multi_version_keys().size(), 0u);
  // Subsequent GC passes are no-ops.
  EXPECT_EQ(s.gc([](const Version&) { return true; }), 0u);
}

TEST(PartitionStore, PurgeIfRemovesMatchingVersions) {
  PartitionStore s;
  s.insert(make_version("a", 10));
  s.insert(make_version("a", 20));
  s.insert(make_version("b", 30));
  const auto removed =
      s.purge_if([](const Version& v) { return v.ut >= 20; });
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(s.stats().versions, 1u);
  EXPECT_EQ(s.find("a")->size(), 1u);
  EXPECT_EQ(s.find("b")->size(), 0u);
}

TEST(PartitionStore, ChainsAccessorExposesAllKeys) {
  PartitionStore s;
  s.insert(make_version("x", 1));
  s.insert(make_version("y", 2));
  EXPECT_EQ(s.chains().size(), 2u);
}

}  // namespace
}  // namespace pocc::store
