// Cluster-fuzz smoke campaign (ctest label: fuzz).
//
// Runs seed-deterministic FaultPlans — partitions (symmetric and
// one-directional), gray slowdowns, fail-stop crashes with rebuild,
// heartbeat suppression, clock skew ramps — against all four engines under
// mixed Zipf workloads and asserts the fuzz pass criteria: zero
// HistoryChecker violations, post-fault convergence, no leaked parked
// requests, non-vacuous runs, and bit-identical same-seed replays. The
// nightly CI campaign (bench/fuzz_campaign) runs the same harness with many
// more rotating-seed plans; this suite keeps a representative slice in the
// regular test run. On failure the repro line replays the identical run:
//   fuzz_campaign --engine <e> --seed <s> --plan-hash <h>
#include <gtest/gtest.h>

#include "fault/fuzz_runner.hpp"

namespace pocc::fault {
namespace {

class ClusterFuzzTest
    : public ::testing::TestWithParam<std::pair<cluster::SystemKind,
                                                std::uint64_t>> {};

TEST_P(ClusterFuzzTest, SeededFaultPlanRunsClean) {
  FuzzCase c;
  c.system = GetParam().first;
  c.seed = GetParam().second;
  const FuzzOutcome o = run_fuzz_case(c);
  for (const std::string& f : o.failures) {
    ADD_FAILURE() << f;
  }
  if (!o.ok) {
    ADD_FAILURE() << "REPRO: " << repro_line(c, o) << "\n" << o.plan_text;
  }
  // Non-vacuity: the harness really drove traffic through the fault windows.
  EXPECT_GT(o.completed_ops, 0u);
  EXPECT_GT(o.checks_performed, 0u);
  EXPECT_GT(o.faults_injected, 0u);
}

std::string fuzz_case_name(
    const ::testing::TestParamInfo<ClusterFuzzTest::ParamType>& info) {
  std::string n = engine_flag(info.param.first);
  // ctest-safe identifier: engine + seed.
  for (char& ch : n) {
    if (ch == '_') ch = 'x';
  }
  return n + "Seed" + std::to_string(info.param.second);
}

std::vector<ClusterFuzzTest::ParamType> make_fuzz_cases() {
  // Two seeds per engine: one Get-Put (even) and one transactional (odd)
  // workload mix (see fuzz_runner), distinct plans per seed.
  const cluster::SystemKind systems[] = {
      cluster::SystemKind::kPocc, cluster::SystemKind::kScalarPocc,
      cluster::SystemKind::kHaPocc, cluster::SystemKind::kCure};
  std::vector<ClusterFuzzTest::ParamType> cases;
  for (const auto s : systems) {
    cases.emplace_back(s, 11);
    cases.emplace_back(s, 20);
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Campaign, ClusterFuzzTest,
                         ::testing::ValuesIn(make_fuzz_cases()),
                         fuzz_case_name);

// Same seed, same engine => bit-identical end state. This is the property
// that makes the one-line repro trustworthy: a failing campaign run replays
// exactly, event for event.
TEST(ClusterFuzzReplay, SameSeedReplaysBitIdentically) {
  FuzzCase c;
  c.system = cluster::SystemKind::kHaPocc;  // exercises every fault hook
  c.seed = 11;
  const FuzzOutcome first = run_fuzz_case(c);
  const FuzzOutcome second = run_fuzz_case(c);
  EXPECT_EQ(first.plan_hash, second.plan_hash);
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.completed_ops, second.completed_ops);
  EXPECT_EQ(first.checks_performed, second.checks_performed);
  EXPECT_EQ(first.messages_dropped, second.messages_dropped);
}

TEST(ClusterFuzzReplay, DifferentSeedsDiverge) {
  FuzzCase a;
  a.seed = 11;
  FuzzCase b;
  b.seed = 12;
  EXPECT_NE(run_fuzz_case(a).digest, run_fuzz_case(b).digest);
}

}  // namespace
}  // namespace pocc::fault
