// Key-to-partition mapping: hash scheme spread/stability and the explicit
// "<partition>:" prefix scheme used by the workload generators.
#include "common/hash.hpp"

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "common/config.hpp"

namespace pocc {
namespace {

TEST(Fnv1a, KnownVectors) {
  // Standard FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a, IsConstexpr) {
  static_assert(fnv1a("pocc") != 0);
  SUCCEED();
}

TEST(PartitionOf, StableAndInRange) {
  for (std::uint32_t parts : {1u, 2u, 8u, 32u, 97u}) {
    for (int i = 0; i < 1000; ++i) {
      const std::string key = "key" + std::to_string(i);
      const PartitionId p = partition_of(key, parts);
      EXPECT_LT(p, parts);
      EXPECT_EQ(p, partition_of(key, parts));  // deterministic
    }
  }
}

TEST(PartitionOf, HashSchemeSpreadsKeys) {
  constexpr std::uint32_t kParts = 16;
  std::vector<int> counts(kParts, 0);
  for (int i = 0; i < 16000; ++i) {
    ++counts[partition_of("user:" + std::to_string(i), kParts)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 1000, 150);
  }
}

TEST(PartitionOf, PrefixSchemeParsesPartition) {
  EXPECT_EQ(partition_of("5:12345", 8, PartitionScheme::kPrefix), 5u);
  EXPECT_EQ(partition_of("0:1", 8, PartitionScheme::kPrefix), 0u);
  EXPECT_EQ(partition_of("7:x", 8, PartitionScheme::kPrefix), 7u);
  // Out-of-range prefixes wrap.
  EXPECT_EQ(partition_of("9:1", 8, PartitionScheme::kPrefix), 1u);
}

TEST(PartitionOf, PrefixSchemeFallsBackToHash) {
  const PartitionId hashed = partition_of("no-prefix-here", 8);
  EXPECT_EQ(partition_of("no-prefix-here", 8, PartitionScheme::kPrefix),
            hashed);
  EXPECT_EQ(partition_of(":empty", 8, PartitionScheme::kPrefix),
            partition_of(":empty", 8));
}

TEST(MakePartitionKey, RoundTripsThroughPrefixScheme) {
  for (PartitionId p = 0; p < 32; ++p) {
    for (std::uint64_t rank : {0ULL, 1ULL, 999'999ULL}) {
      const std::string key = make_partition_key(p, rank);
      EXPECT_EQ(partition_of(key, 32, PartitionScheme::kPrefix), p) << key;
    }
  }
}

TEST(Mix64, BijectiveOnSamples) {
  // mix64 must not collide on a modest sample (it is a bijection).
  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    EXPECT_TRUE(seen.insert(mix64(i)).second);
  }
}

}  // namespace
}  // namespace pocc
