// Key-to-partition mapping: hash scheme spread/stability and the explicit
// "<partition>:" prefix scheme used by the workload generators.
#include "common/hash.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/config.hpp"

namespace pocc {
namespace {

TEST(Fnv1a, KnownVectors) {
  // Standard FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a, IsConstexpr) {
  static_assert(fnv1a("pocc") != 0);
  SUCCEED();
}

TEST(PartitionOf, StableAndInRange) {
  for (std::uint32_t parts : {1u, 2u, 8u, 32u, 97u}) {
    for (int i = 0; i < 1000; ++i) {
      const std::string key = "key" + std::to_string(i);
      const PartitionId p = partition_of(key, parts);
      EXPECT_LT(p, parts);
      EXPECT_EQ(p, partition_of(key, parts));  // deterministic
    }
  }
}

TEST(PartitionOf, HashSchemeSpreadsKeys) {
  constexpr std::uint32_t kParts = 16;
  std::vector<int> counts(kParts, 0);
  for (int i = 0; i < 16000; ++i) {
    ++counts[partition_of("user:" + std::to_string(i), kParts)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 1000, 150);
  }
}

TEST(PartitionOf, PrefixSchemeParsesPartition) {
  EXPECT_EQ(partition_of("5:12345", 8, PartitionScheme::kPrefix), 5u);
  EXPECT_EQ(partition_of("0:1", 8, PartitionScheme::kPrefix), 0u);
  EXPECT_EQ(partition_of("7:x", 8, PartitionScheme::kPrefix), 7u);
  // Out-of-range prefixes wrap.
  EXPECT_EQ(partition_of("9:1", 8, PartitionScheme::kPrefix), 1u);
}

TEST(PartitionOf, PrefixSchemeFallsBackToHash) {
  const PartitionId hashed = partition_of("no-prefix-here", 8);
  EXPECT_EQ(partition_of("no-prefix-here", 8, PartitionScheme::kPrefix),
            hashed);
  EXPECT_EQ(partition_of(":empty", 8, PartitionScheme::kPrefix),
            partition_of(":empty", 8));
}

TEST(MakePartitionKey, RoundTripsThroughPrefixScheme) {
  for (PartitionId p = 0; p < 32; ++p) {
    for (std::uint64_t rank : {0ULL, 1ULL, 999'999ULL}) {
      const std::string key = make_partition_key(p, rank);
      EXPECT_EQ(partition_of(key, 32, PartitionScheme::kPrefix), p) << key;
    }
  }
}

TEST(Mix64, BijectiveOnSamples) {
  // mix64 must not collide on a modest sample (it is a bijection).
  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    EXPECT_TRUE(seen.insert(mix64(i)).second);
  }
}

TEST(Splitmix64, KnownVectorsAndInjectivityOnSamples) {
  // Reference value from the splitmix64 reference implementation (state 0,
  // first output).
  EXPECT_EQ(splitmix64(0), 0xe220a8397b1dcdafULL);
  static_assert(splitmix64(1) != splitmix64(2));
  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    EXPECT_TRUE(seen.insert(splitmix64(i)).second);  // bijection, no collisions
  }
}

// The channel-key hash feeds power-of-two bucket tables, so its *low* bits
// must carry entropy from both halves of the (from, to) address pair.
// Regression for the old `from * φ ^ to` mix: node addresses are
// (dc << 32) | part, and (dc << 32) * φ contributes nothing to the low 16
// bits — all channels with the same (part, destination) collided D-fold.
TEST(Splitmix64, ChannelStyleKeysSpreadAcrossLowBits) {
  constexpr std::uint32_t kDcs = 4;
  constexpr std::uint32_t kParts = 64;
  constexpr std::uint32_t kMask = 1024 - 1;  // power-of-two bucket table
  auto addr = [](std::uint32_t dc, std::uint32_t part) {
    return (static_cast<std::uint64_t>(dc) << 32) | part;
  };
  auto channel_hash = [&](std::uint64_t from, std::uint64_t to) {
    return splitmix64(splitmix64(from) ^ to);
  };

  // (a) Structural case: same source partition, same destination, varying
  // only the source DC. The old mix put all of these in ONE bucket.
  for (std::uint32_t part = 0; part < 8; ++part) {
    std::unordered_set<std::uint64_t> buckets;
    for (std::uint32_t dc = 0; dc < kDcs; ++dc) {
      buckets.insert(channel_hash(addr(dc, part), addr(0, 0)) & kMask);
    }
    EXPECT_GT(buckets.size(), 1u) << "source-DC bits lost for part " << part;
  }

  // (b) Distribution: all replication channels of a kDcs x kParts topology.
  // With 1024 buckets and 16k keys, a uniform hash gives ~16 per bucket;
  // bound the maximum load far below the old hash's structural pileups.
  std::vector<std::uint32_t> load(kMask + 1, 0);
  std::uint32_t keys = 0;
  for (std::uint32_t fdc = 0; fdc < kDcs; ++fdc) {
    for (std::uint32_t tdc = 0; tdc < kDcs; ++tdc) {
      for (std::uint32_t part = 0; part < kParts; ++part) {
        if (fdc == tdc) continue;
        for (std::uint32_t tpart = 0; tpart < 4; ++tpart) {
          ++load[channel_hash(addr(fdc, part), addr(tdc, tpart)) & kMask];
          ++keys;
        }
      }
    }
  }
  std::uint32_t max_load = 0;
  for (std::uint32_t l : load) max_load = std::max(max_load, l);
  const double expected = static_cast<double>(keys) / (kMask + 1);
  EXPECT_LT(max_load, expected * 5.0)
      << keys << " keys, worst bucket " << max_load;
  // Symmetric channel pairs (a->b vs b->a) must hash differently in general.
  std::uint32_t symmetric_equal = 0;
  for (std::uint32_t part = 0; part < kParts; ++part) {
    const auto ab = channel_hash(addr(0, part), addr(1, part));
    const auto ba = channel_hash(addr(1, part), addr(0, part));
    if (ab == ba) ++symmetric_equal;
  }
  EXPECT_EQ(symmetric_equal, 0u);
}

}  // namespace
}  // namespace pocc
