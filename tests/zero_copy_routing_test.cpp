// Zero-copy message routing: a proto::Message handed to SimNetwork::send is
// moved — never copied — on its way to the destination endpoint, including
// the client paths and the partition buffer + heal flush. Enforced with the
// copy-counting RouteProbe payload.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/sim_network.hpp"

namespace pocc::net {
namespace {

struct Sink : Endpoint {
  std::vector<proto::Message> received;
  void deliver(NodeId from, proto::Message m) override {
    (void)from;
    received.push_back(std::move(m));
  }
};

class ZeroCopyRoutingTest : public ::testing::Test {
 protected:
  ZeroCopyRoutingTest() : net_(sim_, LatencyConfig::uniform(1000), Rng(1)) {
    net_.register_node(NodeId{0, 0}, &a_);
    net_.register_node(NodeId{1, 0}, &b_);
    net_.register_client(7, 0, NodeId{0, 0}, &client_);
  }

  std::shared_ptr<proto::RouteProbe::Counters> counters_ =
      std::make_shared<proto::RouteProbe::Counters>();
  proto::Message probe() { return proto::RouteProbe{counters_}; }

  sim::Simulator sim_;
  SimNetwork net_;
  Sink a_, b_, client_;
};

TEST_F(ZeroCopyRoutingTest, ServerToServerNeverCopies) {
  net_.send(NodeId{0, 0}, NodeId{1, 0}, probe());
  sim_.run_all();
  ASSERT_EQ(b_.received.size(), 1u);
  EXPECT_EQ(counters_->copies, 0u);
  EXPECT_GT(counters_->moves, 0u);  // it did travel by move
}

TEST_F(ZeroCopyRoutingTest, ServerToClientNeverCopies) {
  net_.send_to_client(NodeId{0, 0}, 7, probe());
  sim_.run_all();
  ASSERT_EQ(client_.received.size(), 1u);
  EXPECT_EQ(counters_->copies, 0u);
}

TEST_F(ZeroCopyRoutingTest, ClientToServerNeverCopies) {
  net_.client_send(7, NodeId{0, 0}, probe());
  sim_.run_all();
  ASSERT_EQ(a_.received.size(), 1u);
  EXPECT_EQ(counters_->copies, 0u);
}

TEST_F(ZeroCopyRoutingTest, PartitionBufferAndHealFlushNeverCopy) {
  net_.partition_dcs(0, 1);
  net_.send(NodeId{0, 0}, NodeId{1, 0}, probe());
  net_.send(NodeId{0, 0}, NodeId{1, 0}, probe());
  sim_.run_until(50'000);
  EXPECT_TRUE(b_.received.empty());  // buffered while partitioned
  net_.heal_dcs(0, 1);
  sim_.run_all();
  ASSERT_EQ(b_.received.size(), 2u);
  EXPECT_EQ(counters_->copies, 0u);
}

TEST_F(ZeroCopyRoutingTest, BurstOfMessagesNeverCopies) {
  for (int i = 0; i < 100; ++i) {
    net_.send(NodeId{0, 0}, NodeId{1, 0}, probe());
    net_.send_to_client(NodeId{0, 0}, 7, probe());
  }
  sim_.run_all();
  EXPECT_EQ(b_.received.size(), 100u);
  EXPECT_EQ(client_.received.size(), 100u);
  EXPECT_EQ(counters_->copies, 0u);
}

}  // namespace
}  // namespace pocc::net
