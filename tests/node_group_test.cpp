// rt::NodeGroup: several partition engines of one DC pinned onto a worker
// pool behind per-worker MPSC inboxes (ctest label `concurrency`; runs under
// ThreadSanitizer in CI).
//
// A single-DC topology makes the routing seam fully observable: with no
// remote replicas, NOTHING may leave the group through Router::route — every
// cross-partition message (RO-TX slices, GC reports, loopbacks) must be an
// in-process queue push.
#include "runtime/node_group.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "pocc/pocc_server.hpp"
#include "store/key_space.hpp"

namespace pocc::rt {
namespace {

/// Thread-safe Router double: collects client replies, flags any external
/// server-to-server route (illegal in a 1-DC group).
class RecordingRouter final : public Router {
 public:
  void route(NodeId /*from*/, NodeId /*to*/, proto::Message /*m*/) override {
    ++external_routes_;
  }
  void route_to_client(NodeId /*from*/, ClientId client,
                       proto::Message m) override {
    {
      std::lock_guard lk(mu_);
      replies_.emplace_back(client, std::move(m));
    }
    cv_.notify_all();
  }

  /// Wait until `n` client replies arrived (false on timeout).
  bool wait_replies(std::size_t n, Duration timeout_us = 10'000'000) {
    std::unique_lock lk(mu_);
    return cv_.wait_for(lk, std::chrono::microseconds(timeout_us),
                        [&] { return replies_.size() >= n; });
  }

  std::vector<std::pair<ClientId, proto::Message>> replies() {
    std::lock_guard lk(mu_);
    return replies_;
  }

  [[nodiscard]] std::uint64_t external_routes() const {
    return external_routes_.load();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::pair<ClientId, proto::Message>> replies_;
  std::atomic<std::uint64_t> external_routes_{0};
};

constexpr std::uint32_t kParts = 4;

TopologyConfig one_dc_topology() {
  return TopologyConfig{1, kParts, PartitionScheme::kHash};
}

std::unique_ptr<NodeGroup> make_group(Router& router, std::uint32_t threads) {
  NodeGroup::Options opt;
  opt.threads = threads;
  opt.seed = 7;
  auto group = std::make_unique<NodeGroup>(
      /*dc=*/0, std::vector<PartitionId>{0, 1, 2, 3}, router, opt);
  group->install_engines([](NodeId id, server::Context& ctx) {
    return std::make_unique<PoccServer>(id, one_dc_topology(),
                                        ProtocolConfig{}, ServiceConfig{},
                                        ctx);
  });
  return group;
}

PartitionId part_of(KeyId key) {
  return store::KeySpace::global().partition(key, kParts,
                                             PartitionScheme::kHash);
}

proto::PutReq put_req(ClientId client, KeyId key, const std::string& value,
                      std::uint64_t op_id) {
  proto::PutReq req;
  req.client = client;
  req.key = key;
  req.value = value;
  req.dv = VersionVector(1);
  req.op_id = op_id;
  return req;
}

TEST(NodeGroup, ServesEveryPartitionAcrossFewerWorkers) {
  RecordingRouter router;
  auto group = make_group(router, /*threads=*/2);
  EXPECT_EQ(group->threads(), 2u);
  EXPECT_TRUE(group->hosts(NodeId{0, 3}));
  EXPECT_FALSE(group->hosts(NodeId{0, kParts}));
  EXPECT_FALSE(group->hosts(NodeId{1, 0}));
  group->start();

  // One PUT per partition; every engine must answer through the router.
  std::uint64_t op = 0;
  for (PartitionId p = 0; p < kParts; ++p) {
    // Find a key hashing onto partition p.
    KeyId key = 0;
    for (std::uint64_t i = 0;; ++i) {
      key = store::intern_key("ng:" + std::to_string(p) + ":" +
                              std::to_string(i));
      if (part_of(key) == p) break;
    }
    const NodeId to{0, p};
    group->enqueue(to, to,
                   proto::Message{put_req(100 + p, key, "v", ++op)});
  }
  ASSERT_TRUE(router.wait_replies(kParts));
  group->stop();

  const auto replies = router.replies();
  ASSERT_EQ(replies.size(), kParts);
  for (const auto& [client, m] : replies) {
    EXPECT_TRUE(std::holds_alternative<proto::PutReply>(m));
  }
  const NodeGroupStats stats = group->stats();
  EXPECT_EQ(stats.puts, kParts);
  EXPECT_EQ(router.external_routes(), 0u)
      << "a 1-DC group must never route outside the process";
}

TEST(NodeGroup, CrossPartitionTxIsAnInProcessQueuePush) {
  RecordingRouter router;
  auto group = make_group(router, /*threads=*/2);
  group->start();

  // Two keys on two different partitions, then an RO-TX spanning both,
  // coordinated by partition 0 (the collocated coordinator, §II-C). The
  // SliceReq/SliceReply exchange must ride the in-process path.
  KeyId key_a = 0;
  KeyId key_b = 0;
  for (std::uint64_t i = 0;; ++i) {
    const KeyId k = store::intern_key("ngtx:" + std::to_string(i));
    if (key_a == 0 && part_of(k) == 1) key_a = k;
    if (key_b == 0 && part_of(k) == 2) key_b = k;
    if (key_a != 0 && key_b != 0) break;
  }
  const NodeId coord{0, 0};
  std::uint64_t op = 0;
  group->enqueue(coord, NodeId{0, 1},
                 proto::Message{put_req(7, key_a, "a", ++op)});
  group->enqueue(coord, NodeId{0, 2},
                 proto::Message{put_req(7, key_b, "b", ++op)});
  ASSERT_TRUE(router.wait_replies(2));

  proto::RoTxReq tx;
  tx.client = 7;
  tx.keys = {key_a, key_b};
  tx.rdv = VersionVector(1);
  tx.op_id = ++op;
  group->enqueue(coord, coord, proto::Message{std::move(tx)});
  ASSERT_TRUE(router.wait_replies(3));
  group->stop();

  const auto replies = router.replies();
  const auto* reply = std::get_if<proto::RoTxReply>(&replies.back().second);
  ASSERT_NE(reply, nullptr);
  ASSERT_EQ(reply->items.size(), 2u);
  for (const auto& item : reply->items) {
    EXPECT_TRUE(item.found) << store::key_name(item.key);
  }
  EXPECT_GT(group->local_deliveries(), 0u)
      << "slice traffic must use the in-process path";
  EXPECT_EQ(router.external_routes(), 0u);
  const NodeGroupStats stats = group->stats();
  EXPECT_GT(stats.slices, 0u);
}

TEST(NodeGroup, WorkerCountClampsToPartitions) {
  RecordingRouter router;
  NodeGroup::Options opt;
  opt.threads = 64;
  NodeGroup group(/*dc=*/2, std::vector<PartitionId>{1, 3}, router, opt);
  EXPECT_EQ(group.threads(), 2u);
  EXPECT_TRUE(group.hosts(NodeId{2, 1}));
  EXPECT_TRUE(group.hosts(NodeId{2, 3}));
  EXPECT_FALSE(group.hosts(NodeId{2, 0}));
  EXPECT_FALSE(group.hosts(NodeId{2, 2}));

  NodeGroup::Options one;
  one.threads = 0;  // 0 = one worker per partition
  NodeGroup per_part(/*dc=*/0, std::vector<PartitionId>{0, 1, 2}, router,
                     one);
  EXPECT_EQ(per_part.threads(), 3u);
}

TEST(NodeGroup, TimersFirePerPartition) {
  // Engines arm periodic GC timers at start(); with 4 partitions on one
  // worker the per-slot timer bookkeeping must drive every engine (the GC
  // exchange reaches the partition-0 aggregator and returns GcVectors, all
  // in-process).
  RecordingRouter router;
  auto group = make_group(router, /*threads=*/1);
  group->start();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  // ProtocolConfig defaults arm GC on a short interval; wait until the
  // in-process GC exchange shows up as local deliveries.
  while (group->local_deliveries() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  group->stop();
  EXPECT_GT(group->local_deliveries(), 0u)
      << "periodic GC reports never reached the aggregator in-process";
  EXPECT_EQ(router.external_routes(), 0u);
}

TEST(NodeGroup, BoundedAdmissionRefusesOnlyDroppableWork) {
  RecordingRouter router;
  NodeGroup::Options opt;
  opt.threads = 1;
  opt.seed = 7;
  opt.max_inbox_messages = 4;
  NodeGroup group(/*dc=*/0, std::vector<PartitionId>{0, 1, 2, 3}, router,
                  opt);
  group.install_engines([](NodeId id, server::Context& ctx) {
    return std::make_unique<PoccServer>(id, one_dc_topology(),
                                        ProtocolConfig{}, ServiceConfig{},
                                        ctx);
  });
  // Workers not started: nothing drains, so the cap is hit deterministically.
  KeyId key = 0;
  for (std::uint64_t i = 0;; ++i) {
    key = store::intern_key("adm:" + std::to_string(i));
    if (part_of(key) == 0) break;
  }
  const NodeId to{0, 0};
  std::uint64_t op = 0;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(
        group.try_enqueue(to, to, proto::Message{put_req(1, key, "v", ++op)}));
  }
  EXPECT_FALSE(
      group.try_enqueue(to, to, proto::Message{put_req(1, key, "v", ++op)}))
      << "the admission cap must refuse droppable work";
  EXPECT_EQ(group.inbox_depth(0), 4u);
  // enqueue() — the lossless server-to-server class — is never refused:
  // shedding replication would tear the FIFO channel the protocol assumes.
  group.enqueue(to, to, proto::Message{put_req(2, key, "v", ++op)});
  EXPECT_EQ(group.inbox_depth(0), 5u);
  // Draining reopens admission.
  group.start();
  ASSERT_TRUE(router.wait_replies(5));
  EXPECT_TRUE(
      group.try_enqueue(to, to, proto::Message{put_req(3, key, "v", ++op)}));
  ASSERT_TRUE(router.wait_replies(6));
  group.stop();
}

TEST(NodeGroup, DrivenModeServicesWorkersOnCallerThreads) {
  // Driven mode is the sharded-transport integration seam: the group spawns
  // NO threads; whoever owns each worker's event loop calls service() and
  // gets woken through Options::wake when work lands in the inbox.
  RecordingRouter router;
  std::mutex wake_mu;
  std::vector<std::uint32_t> wakes;
  NodeGroup::Options opt;
  opt.threads = 2;
  opt.seed = 7;
  opt.driven = true;
  opt.wake = [&](std::uint32_t w) {
    std::lock_guard lk(wake_mu);
    wakes.push_back(w);
  };
  NodeGroup group(/*dc=*/0, std::vector<PartitionId>{0, 1, 2, 3}, router,
                  opt);
  group.install_engines([](NodeId id, server::Context& ctx) {
    return std::make_unique<PoccServer>(id, one_dc_topology(),
                                        ProtocolConfig{}, ServiceConfig{},
                                        ctx);
  });
  group.start();  // must not spawn workers

  // Every partition maps onto one of the two driven workers.
  std::vector<std::uint32_t> hosted(group.threads(), 0);
  for (PartitionId p = 0; p < kParts; ++p) {
    const std::uint32_t w = group.worker_of(p);
    ASSERT_LT(w, group.threads());
    ++hosted[w];
  }
  EXPECT_EQ(hosted[0] + hosted[1], kParts);
  EXPECT_GT(hosted[0], 0u);
  EXPECT_GT(hosted[1], 0u);

  // Enqueue one PUT per partition: each enqueue must wake the worker that
  // owns the partition, and nothing is processed until service() runs.
  std::uint64_t op = 0;
  for (PartitionId p = 0; p < kParts; ++p) {
    KeyId key = 0;
    for (std::uint64_t i = 0;; ++i) {
      key = store::intern_key("drv:" + std::to_string(p) + ":" +
                              std::to_string(i));
      if (part_of(key) == p) break;
    }
    const NodeId to{0, p};
    group.enqueue(to, to, proto::Message{put_req(200 + p, key, "v", ++op)});
    std::lock_guard lk(wake_mu);
    ASSERT_FALSE(wakes.empty());
    EXPECT_EQ(wakes.back(), group.worker_of(p))
        << "enqueue must wake the owning worker";
  }
  EXPECT_TRUE(router.replies().empty()) << "no thread may drain undriven";

  // Drive both workers from this thread — replies arrive synchronously.
  for (std::uint32_t w = 0; w < group.threads(); ++w) group.service(w);
  const auto replies = router.replies();
  ASSERT_EQ(replies.size(), kParts);
  for (const auto& [client, m] : replies) {
    EXPECT_TRUE(std::holds_alternative<proto::PutReply>(m));
  }
  EXPECT_EQ(router.external_routes(), 0u);
  group.stop();
}

}  // namespace
}  // namespace pocc::rt
