// Shared helpers for engine-level tests: a mock server Context that records
// outbound traffic and lets tests control the clock directly.
#pragma once

#include <utility>
#include <vector>

#include "common/config.hpp"
#include "proto/messages.hpp"
#include "server/context.hpp"

namespace pocc::testutil {

class MockContext : public server::Context {
 public:
  /// Reference time, fully controlled by the test.
  Timestamp now = 0;
  /// The node's physical clock reads now + clock_offset (monotonic).
  Timestamp clock_offset = 0;

  std::vector<std::pair<NodeId, proto::Message>> sent;
  std::vector<std::pair<ClientId, proto::Message>> replies;
  std::vector<std::pair<Timestamp, std::uint64_t>> timers;  // (fire_at, id)

  Timestamp clock_now() override {
    last_clock_ = std::max(last_clock_ + 1, now + clock_offset);
    return last_clock_;
  }
  Timestamp clock_peek() override {
    return std::max(last_clock_, now + clock_offset);
  }
  Timestamp time() override { return now; }
  void send(NodeId to, proto::Message m) override {
    sent.emplace_back(to, std::move(m));
  }
  void reply(ClientId client, proto::Message m) override {
    replies.emplace_back(client, std::move(m));
  }
  void set_timer(Duration delay, std::uint64_t timer_id) override {
    timers.emplace_back(now + delay, timer_id);
  }

  /// All sent messages of type T, with destinations.
  template <typename T>
  std::vector<std::pair<NodeId, T>> sent_of() const {
    std::vector<std::pair<NodeId, T>> out;
    for (const auto& [to, m] : sent) {
      if (std::holds_alternative<T>(m)) out.emplace_back(to, std::get<T>(m));
    }
    return out;
  }

  /// All replies of type T, with client ids.
  template <typename T>
  std::vector<std::pair<ClientId, T>> replies_of() const {
    std::vector<std::pair<ClientId, T>> out;
    for (const auto& [c, m] : replies) {
      if (std::holds_alternative<T>(m)) out.emplace_back(c, std::get<T>(m));
    }
    return out;
  }

  void clear_traffic() {
    sent.clear();
    replies.clear();
    timers.clear();
  }

 private:
  Timestamp last_clock_ = 0;
};

/// Topology used across engine tests: 3 DCs, 2 partitions per DC, prefix keys.
inline TopologyConfig test_topology() {
  TopologyConfig t;
  t.num_dcs = 3;
  t.partitions_per_dc = 2;
  t.partition_scheme = PartitionScheme::kPrefix;
  return t;
}

}  // namespace pocc::testutil
