// VersionVector: construction, lattice operations (merge/max_of/min_of),
// dominates/leq with the skip-local index, and width/empty edge cases.
#include "vclock/version_vector.hpp"

#include <gtest/gtest.h>

namespace pocc {
namespace {

TEST(VersionVector, ConstructsZeroed) {
  VersionVector v(3);
  EXPECT_EQ(v.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) EXPECT_EQ(v[i], 0);
}

TEST(VersionVector, InitializerList) {
  VersionVector v{10, 20, 30};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 10);
  EXPECT_EQ(v[1], 20);
  EXPECT_EQ(v[2], 30);
}

TEST(VersionVector, SetAndRaise) {
  VersionVector v(2);
  v.set(0, 5);
  EXPECT_EQ(v[0], 5);
  v.raise(0, 3);  // lower: no-op
  EXPECT_EQ(v[0], 5);
  v.raise(0, 9);
  EXPECT_EQ(v[0], 9);
}

TEST(VersionVector, MergeMax) {
  VersionVector a{1, 5, 3};
  VersionVector b{2, 4, 3};
  a.merge_max(b);
  EXPECT_EQ(a, (VersionVector{2, 5, 3}));
}

TEST(VersionVector, MergeMin) {
  VersionVector a{1, 5, 3};
  VersionVector b{2, 4, 3};
  a.merge_min(b);
  EXPECT_EQ(a, (VersionVector{1, 4, 3}));
}

TEST(VersionVector, DominatesIsEntrywiseGeq) {
  VersionVector a{2, 5, 3};
  VersionVector b{1, 5, 3};
  EXPECT_TRUE(a.dominates(b));
  EXPECT_FALSE(b.dominates(a));
  EXPECT_TRUE(a.dominates(a));
}

TEST(VersionVector, DominatesWithSkipIndex) {
  // The paper's GET check skips the local DC entry (Alg. 2 line 2).
  VersionVector vv{0, 5, 3};
  VersionVector rdv{100, 5, 3};
  EXPECT_FALSE(vv.dominates(rdv));
  EXPECT_TRUE(vv.dominates(rdv, 0));
  EXPECT_FALSE(vv.dominates(rdv, 1));
}

TEST(VersionVector, LeqMirrorsDominates) {
  VersionVector small{1, 2, 3};
  VersionVector big{2, 2, 4};
  EXPECT_TRUE(small.leq(big));
  EXPECT_FALSE(big.leq(small));
}

TEST(VersionVector, IncomparableVectors) {
  VersionVector a{5, 1};
  VersionVector b{1, 5};
  EXPECT_FALSE(a.dominates(b));
  EXPECT_FALSE(b.dominates(a));
  EXPECT_FALSE(a.leq(b));
  EXPECT_FALSE(b.leq(a));
}

TEST(VersionVector, MaxMinEntries) {
  VersionVector v{7, 2, 9};
  EXPECT_EQ(v.max_entry(), 9);
  EXPECT_EQ(v.min_entry(), 2);
}

TEST(VersionVector, StaticMaxMin) {
  VersionVector a{1, 9};
  VersionVector b{3, 4};
  EXPECT_EQ(VersionVector::max_of(a, b), (VersionVector{3, 9}));
  EXPECT_EQ(VersionVector::min_of(a, b), (VersionVector{1, 4}));
}

TEST(VersionVector, EqualityRequiresSameSize) {
  VersionVector a(2);
  VersionVector b(3);
  EXPECT_FALSE(a == b);
}

TEST(VersionVector, ToString) {
  VersionVector v{1, 2};
  EXPECT_EQ(v.to_string(), "[1,2]");
}

TEST(VersionVector, SkipIndexOutOfRangeBehavesLikePlainDominates) {
  // skip_index is the local DC id; values outside [0, size) skip nothing.
  VersionVector a{1, 2};
  VersionVector b{2, 2};
  EXPECT_FALSE(a.dominates(b, 5));
  EXPECT_FALSE(a.dominates(b, -1));
  EXPECT_TRUE(b.dominates(a, 5));
}

TEST(VersionVector, SkipOnlyIndexMakesSingleEntryVectorsComparable) {
  // A 1-DC deployment: the GET check skips the only entry, so every RDV is
  // trivially satisfied.
  VersionVector vv{0};
  VersionVector rdv{1000};
  EXPECT_FALSE(vv.dominates(rdv));
  EXPECT_TRUE(vv.dominates(rdv, 0));
}

TEST(VersionVector, SkipIndexIgnoresArbitrarilyLargeSkippedEntry) {
  VersionVector vv{5, 5, 5};
  VersionVector rdv{5, kTimestampMax, 5};
  EXPECT_FALSE(vv.dominates(rdv));
  EXPECT_TRUE(vv.dominates(rdv, 1));
}

TEST(VersionVector, EmptyVectorsAreTriviallyOrdered) {
  // Default-constructed vectors have size 0 (a "not yet sized" sentinel);
  // all entry-wise comparisons hold vacuously.
  VersionVector a;
  VersionVector b;
  EXPECT_EQ(a.size(), 0u);
  EXPECT_TRUE(a.dominates(b));
  EXPECT_TRUE(a.leq(b));
  EXPECT_TRUE(a == b);
  a.merge_max(b);  // no-op, must not touch storage
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(a.to_string(), "[]");
}

TEST(VersionVectorDeathTest, UnequalWidthsAssertInComparisons) {
  // Mixed-width vectors indicate a topology mix-up; the protocol invariant
  // assertion stays on in release builds and aborts.
  VersionVector a(2);
  VersionVector b(3);
  EXPECT_DEATH((void)a.dominates(b), "POCC_ASSERT failed");
  EXPECT_DEATH((void)b.leq(a), "POCC_ASSERT failed");
  EXPECT_DEATH(a.merge_max(b), "POCC_ASSERT failed");
  EXPECT_DEATH(a.merge_min(b), "POCC_ASSERT failed");
  // Equality is the one width-tolerant comparison (it must work on
  // heterogeneous containers): unequal widths are just unequal.
  EXPECT_FALSE(a == b);
}

TEST(VersionVectorDeathTest, EmptyVectorExtremaAssert) {
  VersionVector v;
  EXPECT_DEATH((void)v.max_entry(), "POCC_ASSERT failed");
  EXPECT_DEATH((void)v.min_entry(), "POCC_ASSERT failed");
}

TEST(VersionVectorDeathTest, OutOfRangeAccessAsserts) {
  VersionVector v(2);
  EXPECT_DEATH((void)v.at(2), "POCC_ASSERT failed");
  EXPECT_DEATH(v.set(2, 1), "POCC_ASSERT failed");
  EXPECT_DEATH(v.raise(2, 1), "POCC_ASSERT failed");
}

TEST(VersionVectorDeathTest, OversizedConstructionAsserts) {
  EXPECT_DEATH(VersionVector v(kMaxDcs + 1), "POCC_ASSERT failed");
}

// Property sweep: max_of is an upper bound, min_of a lower bound.
class VvLatticeTest : public ::testing::TestWithParam<int> {};

TEST_P(VvLatticeTest, MaxOfDominatesBothAndMinOfIsDominated) {
  const int seed = GetParam();
  std::uint64_t s = static_cast<std::uint64_t>(seed) * 2654435761u + 1;
  auto next = [&s] {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };
  for (int round = 0; round < 200; ++round) {
    VersionVector a(4);
    VersionVector b(4);
    for (std::uint32_t i = 0; i < 4; ++i) {
      a.set(i, static_cast<Timestamp>(next() % 1000));
      b.set(i, static_cast<Timestamp>(next() % 1000));
    }
    const VersionVector hi = VersionVector::max_of(a, b);
    const VersionVector lo = VersionVector::min_of(a, b);
    EXPECT_TRUE(hi.dominates(a));
    EXPECT_TRUE(hi.dominates(b));
    EXPECT_TRUE(lo.leq(a));
    EXPECT_TRUE(lo.leq(b));
    // Lattice absorption: max(a, min(a,b)) == a.
    EXPECT_EQ(VersionVector::max_of(a, lo), a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VvLatticeTest, ::testing::Range(1, 6));

}  // namespace
}  // namespace pocc
