// Wire messages: distinct names, wire-size model (scales with payload and
// vector width), and POCC/Cure* metadata parity (fair-comparison claim, §V).
#include "proto/messages.hpp"

#include <gtest/gtest.h>

#include "store/key_space.hpp"

namespace pocc::proto {
namespace {

KeyId K(const std::string& key) { return store::intern_key(key); }

TEST(Messages, NamesAreDistinctive) {
  EXPECT_STREQ(message_name(Message{GetReq{}}), "GetReq");
  EXPECT_STREQ(message_name(Message{PutReq{}}), "PutReq");
  EXPECT_STREQ(message_name(Message{RoTxReq{}}), "RoTxReq");
  EXPECT_STREQ(message_name(Message{GetReply{}}), "GetReply");
  EXPECT_STREQ(message_name(Message{PutReply{}}), "PutReply");
  EXPECT_STREQ(message_name(Message{RoTxReply{}}), "RoTxReply");
  EXPECT_STREQ(message_name(Message{SessionClosed{}}), "SessionClosed");
  EXPECT_STREQ(message_name(Message{Replicate{}}), "Replicate");
  EXPECT_STREQ(message_name(Message{Heartbeat{}}), "Heartbeat");
  EXPECT_STREQ(message_name(Message{SliceReq{}}), "SliceReq");
  EXPECT_STREQ(message_name(Message{SliceReply{}}), "SliceReply");
  EXPECT_STREQ(message_name(Message{GcReport{}}), "GcReport");
  EXPECT_STREQ(message_name(Message{GcVector{}}), "GcVector");
  EXPECT_STREQ(message_name(Message{StabReport{}}), "StabReport");
  EXPECT_STREQ(message_name(Message{GssBroadcast{}}), "GssBroadcast");
  EXPECT_STREQ(message_name(Message{Overloaded{}}), "Overloaded");
  EXPECT_STREQ(message_name(Message{RouteProbe{}}), "RouteProbe");
}

TEST(Messages, WireSizeChargesInternedKeyBytes) {
  // Interning must not change the byte accounting: the charged size tracks
  // the original key's length exactly.
  GetReq a;
  a.key = K("ab");
  a.rdv = VersionVector(3);
  GetReq b;
  b.key = K("abcd");
  b.rdv = VersionVector(3);
  EXPECT_EQ(wire_size(Message{b}) - wire_size(Message{a}), 2u);
}

TEST(Messages, RouteProbeCountsCopiesAndMoves) {
  auto counters = std::make_shared<RouteProbe::Counters>();
  RouteProbe probe(counters);
  RouteProbe copy = probe;            // copy
  RouteProbe moved = std::move(copy); // move
  EXPECT_EQ(counters->copies, 1u);
  EXPECT_EQ(counters->moves, 1u);
  (void)moved;
}

TEST(Messages, WireSizeScalesWithPayload) {
  GetReq small;
  small.key = K("k");
  small.rdv = VersionVector(3);
  GetReq big = small;
  big.key = K("a-much-longer-key-name");
  EXPECT_GT(wire_size(Message{big}), wire_size(Message{small}));
}

TEST(Messages, WireSizeCountsVectorEntries) {
  // Meta-data overhead is linear in the number of DCs (§IV: dependency
  // vectors have one entry per DC).
  GetReq three;
  three.rdv = VersionVector(3);
  GetReq eight;
  eight.rdv = VersionVector(8);
  EXPECT_EQ(wire_size(Message{eight}) - wire_size(Message{three}),
            5 * sizeof(Timestamp));
}

TEST(Messages, ReplicateCarriesFullVersion) {
  Replicate r;
  r.version.key = K("key");
  r.version.value = "value";
  r.version.dv = VersionVector(3);
  EXPECT_GE(wire_size(Message{r}), 3u + 5u + 3u * sizeof(Timestamp));
}

TEST(Messages, HeartbeatIsSmall) {
  // Heartbeats must be cheap; they are broadcast every Δ when idle.
  EXPECT_LE(wire_size(Message{Heartbeat{}}), 16u);
}

TEST(Messages, RoTxSizeScalesWithKeyCount) {
  RoTxReq one;
  one.rdv = VersionVector(3);
  one.keys = {K("a")};
  RoTxReq many = one;
  for (int i = 0; i < 31; ++i) {
    // Built with append, not operator+: the rvalue-concat pattern trips
    // GCC 12's -Wrestrict false positive (PR 105329) under -O2.
    std::string k = "k";
    k += std::to_string(i);
    many.keys.push_back(K(k));
  }
  EXPECT_GT(wire_size(Message{many}), wire_size(Message{one}));
}

TEST(Messages, PoccAndCureMetadataIdentical) {
  // §V: "the amount of meta-data exchanged by clients and servers to
  // implement the operations is the same" — both systems use the same message
  // types, so equal-shaped requests have equal sizes by construction.
  GetReq pocc_req;
  pocc_req.key = K("key");
  pocc_req.rdv = VersionVector{1, 2, 3};
  GetReq cure_req;
  cure_req.key = K("key");
  cure_req.rdv = VersionVector{4, 5, 6};
  EXPECT_EQ(wire_size(Message{pocc_req}), wire_size(Message{cure_req}));
}

}  // namespace
}  // namespace pocc::proto
