// Scalar-granularity OCC ablation engine (pocc/scalar_pocc_server.hpp):
// coarser dependencies must stall *more* than vector POCC (spurious
// dependencies) while remaining causally consistent.
#include "pocc/scalar_pocc_server.hpp"

#include <gtest/gtest.h>

#include "store/key_space.hpp"
#include "test_util.hpp"

namespace pocc {
namespace {

KeyId K(const std::string& key) { return store::intern_key(key); }

using testutil::MockContext;
using testutil::test_topology;

class ScalarPoccTest : public ::testing::Test {
 protected:
  ScalarPoccTest()
      : scalar_(NodeId{0, 1}, test_topology(), protocol_, service_, ctx_),
        vector_(NodeId{0, 1}, test_topology(), protocol_, service_,
                vector_ctx_) {
    ctx_.now = 1'000'000;
    vector_ctx_.now = 1'000'000;
  }

  proto::GetReq get_req(ClientId c, const std::string& key,
                        VersionVector rdv) {
    proto::GetReq r;
    r.client = c;
    r.key = K(key);
    r.rdv = std::move(rdv);
    return r;
  }

  void feed_heartbeats(server::ReplicaBase& s, Timestamp dc1, Timestamp dc2) {
    s.handle_message(NodeId{1, 1}, proto::Heartbeat{1, dc1});
    s.handle_message(NodeId{2, 1}, proto::Heartbeat{2, dc2});
  }

  MockContext ctx_;
  MockContext vector_ctx_;
  ProtocolConfig protocol_;
  ServiceConfig service_;
  ScalarPoccServer scalar_;
  PoccServer vector_;
};

TEST_F(ScalarPoccTest, SatisfiedScalarDependencyServesImmediately) {
  feed_heartbeats(scalar_, 500'000, 500'000);
  scalar_.handle_message(NodeId{0, 1},
                         get_req(1, "1:a", VersionVector{0, 400'000, 0}));
  EXPECT_EQ(ctx_.replies_of<proto::GetReply>().size(), 1u);
}

TEST_F(ScalarPoccTest, SpuriousStallOnUnrelatedDcEntry) {
  // Dependency on DC1 only; DC2's VV entry lags behind the scalar. Vector
  // POCC serves; scalar OCC stalls — the "(uselessly) stalled" case of §IV.
  feed_heartbeats(scalar_, 500'000, 100'000);
  feed_heartbeats(vector_, 500'000, 100'000);
  const VersionVector rdv{0, 400'000, 0};

  vector_.handle_message(NodeId{0, 1}, get_req(1, "1:a", rdv));
  EXPECT_EQ(vector_ctx_.replies_of<proto::GetReply>().size(), 1u);

  scalar_.handle_message(NodeId{0, 1}, get_req(1, "1:a", rdv));
  EXPECT_TRUE(ctx_.replies_of<proto::GetReply>().empty());
  EXPECT_EQ(scalar_.parked_requests(), 1u);

  // The lagging DC catches up past the scalar: the stall resolves.
  scalar_.handle_message(NodeId{2, 1}, proto::Heartbeat{2, 450'000});
  EXPECT_EQ(ctx_.replies_of<proto::GetReply>().size(), 1u);
}

TEST_F(ScalarPoccTest, LocalEntryExcludedFromScalar) {
  // Local dependencies stay trivially satisfied even at scalar granularity.
  feed_heartbeats(scalar_, 500'000, 500'000);
  scalar_.handle_message(
      NodeId{0, 1}, get_req(1, "1:a", VersionVector{999'999'999, 0, 0}));
  EXPECT_EQ(ctx_.replies_of<proto::GetReply>().size(), 1u);
}

TEST_F(ScalarPoccTest, TxSnapshotIsScalarCut) {
  scalar_.on_timer(server::kTimerHeartbeat);  // advance the local VV entry
  // VV = [local, 450k, 300k] -> scalar cut = 300k on remote entries.
  feed_heartbeats(scalar_, 400'000, 300'000);
  store::Version fresh;
  fresh.key = K("1:k");
  fresh.value = "fresh";
  fresh.sr = 1;
  fresh.ut = 450'000;
  fresh.dv = VersionVector{0, 400'000, 0};  // deps above the scalar cut
  scalar_.handle_message(NodeId{1, 1}, proto::Replicate{fresh});

  proto::RoTxReq tx;
  tx.client = 9;
  tx.keys = {K("1:k")};
  tx.rdv = VersionVector(3);
  scalar_.handle_message(NodeId{0, 1}, tx);
  const auto replies = ctx_.replies_of<proto::RoTxReply>();
  ASSERT_EQ(replies.size(), 1u);
  // The snapshot is the uniform scalar cut (min across remote entries)...
  EXPECT_EQ(replies[0].second.tv[1], 300'000);
  EXPECT_EQ(replies[0].second.tv[2], 300'000);
  // ...so the fresh version (visible to vector POCC's max(VV,DV) snapshot)
  // is outside it: the read returns the implicit initial version.
  ASSERT_EQ(replies[0].second.items.size(), 1u);
  EXPECT_FALSE(replies[0].second.items[0].found);
}

TEST_F(ScalarPoccTest, TxSnapshotStillCoversClientDependencies) {
  scalar_.on_timer(server::kTimerHeartbeat);  // advance the local VV entry
  feed_heartbeats(scalar_, 500'000, 300'000);
  proto::RoTxReq tx;
  tx.client = 9;
  tx.keys = {K("1:k")};
  tx.rdv = VersionVector{0, 480'000, 0};  // client dependency above the cut
  scalar_.handle_message(NodeId{0, 1}, tx);
  // Snapshot raised to the dependency: the slice must wait for DC2 to pass
  // it (no reply yet — parked).
  EXPECT_TRUE(ctx_.replies_of<proto::RoTxReply>().empty());
  EXPECT_EQ(scalar_.parked_requests(), 1u);
  scalar_.handle_message(NodeId{2, 1}, proto::Heartbeat{2, 480'000});
  EXPECT_EQ(ctx_.replies_of<proto::RoTxReply>().size(), 1u);
}

TEST_F(ScalarPoccTest, GetStillReturnsFreshestVersion) {
  // Granularity changes the wait, not the visibility rule: GETs still return
  // the freshest received version (OCC's defining property).
  feed_heartbeats(scalar_, 500'000, 500'000);
  store::Version v;
  v.key = K("1:a");
  v.value = "freshest";
  v.sr = 1;
  v.ut = 550'000;  // after the heartbeat (FIFO timestamp order)
  v.dv = VersionVector{0, 0, 777'777};  // unstable: deps not received
  scalar_.handle_message(NodeId{1, 1}, proto::Replicate{v});
  scalar_.handle_message(NodeId{0, 1}, get_req(1, "1:a", VersionVector(3)));
  const auto replies = ctx_.replies_of<proto::GetReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].second.item.value, "freshest");
}

}  // namespace
}  // namespace pocc
