// Client engine (Alg. 1): DV/RDV start at zero, requests carry the right
// vectors, and replies are absorbed per the paper's dependency-update rules.
#include "client/client_engine.hpp"

#include <gtest/gtest.h>

#include "store/key_space.hpp"

namespace pocc::client {
namespace {

KeyId K(const std::string& key) { return store::intern_key(key); }

proto::GetReply make_get_reply(ClientId c, const std::string& key,
                               Timestamp ut, DcId sr, VersionVector dv) {
  proto::GetReply r;
  r.client = c;
  r.item.key = K(key);
  r.item.found = true;
  r.item.ut = ut;
  r.item.sr = sr;
  r.item.dv = std::move(dv);
  return r;
}

TEST(ClientEngine, StartsWithZeroVectors) {
  ClientEngine c(1, 0, 3);
  EXPECT_EQ(c.dv(), VersionVector(3));
  EXPECT_EQ(c.rdv(), VersionVector(3));
  EXPECT_FALSE(c.pessimistic());
}

TEST(ClientEngine, GetRequestCarriesRdv) {
  ClientEngine c(1, 0, 3);
  c.absorb_get(make_get_reply(1, "x", 100, 1, VersionVector{10, 20, 30}));
  const proto::GetReq req = c.make_get(K("y"));
  EXPECT_EQ(req.client, 1u);
  EXPECT_EQ(req.key, K("y"));
  // Alg. 1 line 4: RDV absorbs the read item's dependency vector (not its ut).
  EXPECT_EQ(req.rdv, (VersionVector{10, 20, 30}));
}

TEST(ClientEngine, AbsorbGetUpdatesDvWithDirectDependency) {
  ClientEngine c(1, 0, 3);
  c.absorb_get(make_get_reply(1, "x", 100, 1, VersionVector{10, 20, 30}));
  // Alg. 1 lines 5-6: DV = max(RDV, DV), then DV[sr] raised to ut.
  EXPECT_EQ(c.dv(), (VersionVector{10, 100, 30}));
  EXPECT_EQ(c.rdv(), (VersionVector{10, 20, 30}));
}

TEST(ClientEngine, RdvExcludesDirectlyReadVersionTimestamp) {
  // The RDV tracks dependencies *of* read items; the read item itself goes
  // into DV only. The same-key re-read case is covered by partition
  // stickiness (§IV-B discussion).
  ClientEngine c(1, 0, 3);
  c.absorb_get(make_get_reply(1, "x", 500, 2, VersionVector(3)));
  EXPECT_EQ(c.rdv(), VersionVector(3));
  EXPECT_EQ(c.dv(), (VersionVector{0, 0, 500}));
}

TEST(ClientEngine, AbsorbNotFoundIsNoOp) {
  ClientEngine c(1, 0, 3);
  proto::GetReply r;
  r.client = 1;
  r.item.found = false;
  c.absorb_get(r);
  EXPECT_EQ(c.dv(), VersionVector(3));
  EXPECT_EQ(c.rdv(), VersionVector(3));
}

TEST(ClientEngine, PutRequestCarriesDv) {
  ClientEngine c(1, 0, 3);
  c.absorb_get(make_get_reply(1, "x", 100, 1, VersionVector{10, 20, 30}));
  const proto::PutReq req = c.make_put(K("k"), "v");
  EXPECT_EQ(req.dv, c.dv());
  EXPECT_EQ(req.value, "v");
}

TEST(ClientEngine, AbsorbPutRaisesLocalEntry) {
  ClientEngine c(1, 0, 3);
  proto::PutReply r;
  r.client = 1;
  r.key = K("k");
  r.ut = 777;
  r.sr = 0;
  c.absorb_put(r);
  EXPECT_EQ(c.dv(), (VersionVector{777, 0, 0}));
  EXPECT_EQ(c.rdv(), VersionVector(3));  // writes do not touch the RDV
}

TEST(ClientEngine, TxAbsorbsEveryItemLikeAGet) {
  ClientEngine c(1, 0, 3);
  proto::RoTxReply r;
  r.client = 1;
  proto::ReadItem a;
  a.key = K("a");
  a.found = true;
  a.ut = 50;
  a.sr = 1;
  a.dv = VersionVector{5, 0, 0};
  proto::ReadItem b;
  b.key = K("b");
  b.found = true;
  b.ut = 70;
  b.sr = 2;
  b.dv = VersionVector{0, 60, 0};
  r.items = {a, b};
  c.absorb_ro_tx(r);
  EXPECT_EQ(c.rdv(), (VersionVector{5, 60, 0}));
  EXPECT_EQ(c.dv(), (VersionVector{5, 60, 70}));
}

TEST(ClientEngine, RdvMonotonicallyGrows) {
  ClientEngine c(1, 0, 3);
  c.absorb_get(make_get_reply(1, "x", 10, 1, VersionVector{5, 5, 5}));
  c.absorb_get(make_get_reply(1, "y", 20, 2, VersionVector{3, 9, 1}));
  EXPECT_EQ(c.rdv(), (VersionVector{5, 9, 5}));
}

TEST(ClientEngine, ReinitializePessimisticResetsState) {
  ClientEngine c(1, 0, 3);
  c.absorb_get(make_get_reply(1, "x", 100, 1, VersionVector{10, 20, 30}));
  const auto gen_before = c.session_generation();
  c.reinitialize_pessimistic();
  EXPECT_TRUE(c.pessimistic());
  EXPECT_EQ(c.dv(), VersionVector(3));
  EXPECT_EQ(c.rdv(), VersionVector(3));
  EXPECT_GT(c.session_generation(), gen_before);
  EXPECT_TRUE(c.make_get(K("x")).pessimistic);
  EXPECT_TRUE(c.make_put(K("x"), "v").pessimistic);
}

TEST(ClientEngine, PromotionKeepsVectors) {
  ClientEngine c(1, 0, 3);
  c.reinitialize_pessimistic();
  c.absorb_get(make_get_reply(1, "x", 100, 1, VersionVector{10, 20, 30}));
  const VersionVector dv_before = c.dv();
  c.promote_optimistic();
  EXPECT_FALSE(c.pessimistic());
  EXPECT_EQ(c.dv(), dv_before);
  EXPECT_FALSE(c.make_get(K("x")).pessimistic);
}

TEST(ClientEngine, SnapshotRdvModeAbsorbsReadCommitTimes) {
  // Cure* sessions gate visibility on commit vectors, so their read vector
  // must cover the commit time of every read item (like Cure's snapshot
  // vector). POCC sessions (default) must NOT include it (Alg. 1 verbatim).
  ClientEngine cure(1, 0, 3, /*snapshot_rdv=*/true);
  cure.absorb_get(make_get_reply(1, "x", 500, 2, VersionVector{10, 0, 0}));
  EXPECT_EQ(cure.rdv(), (VersionVector{10, 0, 500}));
  ClientEngine pocc(2, 0, 3, /*snapshot_rdv=*/false);
  pocc.absorb_get(make_get_reply(2, "x", 500, 2, VersionVector{10, 0, 0}));
  EXPECT_EQ(pocc.rdv(), (VersionVector{10, 0, 0}));
}

TEST(ClientEngine, PessimisticSessionsAbsorbReadCommitTimes) {
  // HA-POCC fallback sessions read under commit-vector visibility too.
  ClientEngine c(1, 0, 3);
  c.reinitialize_pessimistic();
  c.absorb_get(make_get_reply(1, "x", 500, 2, VersionVector(3)));
  EXPECT_EQ(c.rdv(), (VersionVector{0, 0, 500}));
}

TEST(ClientEngine, PromoteWhenOptimisticIsNoOp) {
  ClientEngine c(1, 0, 3);
  const auto gen = c.session_generation();
  c.promote_optimistic();
  EXPECT_EQ(c.session_generation(), gen);
}

}  // namespace
}  // namespace pocc::client
