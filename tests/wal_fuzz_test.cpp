// Adversarial WAL recovery sweeps (ctest label `fuzz`):
//
//  * Torn tail at EVERY byte offset: a crash can cut the active segment at
//    any point inside an in-flight group commit. For each prefix length the
//    reopened WAL must recover exactly the complete records inside the
//    prefix, truncate the torn bytes, and accept fresh appends afterwards.
//  * Random byte flips: corruption anywhere in a segment is detected by the
//    per-record CRC; recovery yields a strict prefix of the original record
//    stream — never a crash, never a fabricated or reordered record.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "store/key_space.hpp"
#include "store/version.hpp"
#include "wal/partition_wal.hpp"
#include "wal/wal_format.hpp"

namespace pocc::wal {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("pocc_wal_fuzz_" + std::to_string(::getpid())) / name;
  fs::remove_all(dir);
  return dir.string();
}

/// Writes `bytes` as the WAL's first (and only) segment file.
void write_segment(const std::string& dir, const std::uint8_t* data,
                   std::size_t len) {
  fs::create_directories(dir);
  std::ofstream f(fs::path(dir) / "wal-00000001.log",
                  std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(data), static_cast<std::streamsize>(len));
}

/// A deterministic mixed record stream; `uts` receives each version
/// record's ut (the identity used to check the prefix property).
std::vector<std::uint8_t> build_stream(std::uint64_t seed, int records,
                                       std::vector<Timestamp>* uts) {
  Rng rng(seed);
  std::vector<std::uint8_t> buf;
  VersionVector vv(3);
  for (int i = 0; i < records; ++i) {
    if (rng.uniform(4) == 0) {
      vv.raise(static_cast<DcId>(rng.uniform(3)), 1'000 + i);
      append_vv_record(buf, vv);
      continue;
    }
    store::Version v;
    v.key = store::intern_key("1:f" + std::to_string(rng.uniform(8)));
    v.value = std::string(rng.uniform(24), 'x') + std::to_string(i);
    v.sr = static_cast<DcId>(rng.uniform(3));
    v.ut = 1'000 + i;
    v.dv = vv;
    append_version_record(buf, v);
    if (uts != nullptr) uts->push_back(v.ut);
  }
  return buf;
}

TEST(WalFuzz, TornTailAtEveryByteOffsetRecoversThePrefix) {
  std::vector<Timestamp> all_uts;
  const std::vector<std::uint8_t> bytes = build_stream(0xfeed, 14, &all_uts);
  const std::string dir = fresh_dir("torn");
  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    // The ground truth for this prefix, from the (separately unit-tested)
    // scanner: how many complete records fit in `cut` bytes.
    std::uint64_t want_versions = 0;
    std::uint64_t want_records = 0;
    const ScanResult truth =
        scan_records(bytes.data(), cut, [&](const Record& r) {
          ++want_records;
          if (r.kind == RecordKind::kVersion) ++want_versions;
        });
    ASSERT_EQ(truth.torn, cut != truth.valid_bytes);

    fs::remove_all(dir);
    write_segment(dir, bytes.data(), cut);
    std::vector<Timestamp> got_uts;
    {
      PartitionWal wal(dir);
      PartitionWal::ReplayStats stats = wal.replay(
          [&](const store::Version& v) { got_uts.push_back(v.ut); },
          [](const VersionVector&) {});
      ASSERT_EQ(stats.log_versions, want_versions) << "cut=" << cut;
      ASSERT_EQ(stats.log_versions + stats.vv_records, want_records);
      ASSERT_EQ(stats.torn_bytes, cut - truth.valid_bytes) << "cut=" << cut;
      // Nothing durable before the tear may be lost: the recovered version
      // stream is exactly the prefix of the original one.
      ASSERT_EQ(got_uts.size(), want_versions);
      for (std::size_t i = 0; i < got_uts.size(); ++i) {
        ASSERT_EQ(got_uts[i], all_uts[i]) << "cut=" << cut;
      }
      if (cut % 13 == 0) {
        // The healed segment must accept appends: log one more record and
        // prove a second reopen sees prefix + 1.
        store::Version extra;
        extra.key = store::intern_key("1:extra");
        extra.value = "after-heal";
        extra.sr = 0;
        extra.ut = 50'000;
        extra.dv = VersionVector(3);
        wal.log_version(extra);
        wal.sync();
      } else {
        continue;
      }
    }
    PartitionWal reopened(dir);
    std::uint64_t versions = 0;
    Timestamp last_ut = 0;
    reopened.replay(
        [&](const store::Version& v) {
          ++versions;
          last_ut = v.ut;
        },
        [](const VersionVector&) {});
    ASSERT_EQ(versions, want_versions + 1) << "cut=" << cut;
    ASSERT_EQ(last_ut, 50'000) << "cut=" << cut;
  }
}

TEST(WalFuzz, RandomByteFlipsYieldAStrictPrefixAndNeverCrash) {
  std::vector<Timestamp> all_uts;
  const std::vector<std::uint8_t> bytes = build_stream(0xbeef, 24, &all_uts);
  const std::string dir = fresh_dir("flip");
  Rng rng(0xc0ffee);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> mutated = bytes;
    const std::size_t pos = rng.uniform(mutated.size());
    const auto mask = static_cast<std::uint8_t>(1 + rng.uniform(255));
    mutated[pos] ^= mask;

    fs::remove_all(dir);
    write_segment(dir, mutated.data(), mutated.size());
    PartitionWal wal(dir);  // must not crash on any corruption
    std::vector<Timestamp> got_uts;
    wal.replay([&](const store::Version& v) { got_uts.push_back(v.ut); },
               [](const VersionVector&) {});
    // Strict prefix property: whatever survives is the original stream up
    // to the first record the corruption touched — garbage is never
    // silently replayed as data.
    ASSERT_LE(got_uts.size(), all_uts.size()) << "trial=" << trial;
    for (std::size_t i = 0; i < got_uts.size(); ++i) {
      ASSERT_EQ(got_uts[i], all_uts[i])
          << "trial=" << trial << " pos=" << pos;
    }
  }
}

}  // namespace
}  // namespace pocc::wal
