// Garbage-collection exchange tests (§IV-B): low-watermark reports, aggregate
// minimum GV, retention of the newest version at or below the floor, and
// protection of versions still needed by active transactions.
#include <gtest/gtest.h>

#include "cure/cure_server.hpp"
#include "pocc/pocc_server.hpp"
#include "store/key_space.hpp"
#include "test_util.hpp"

namespace pocc {
namespace {

KeyId K(const std::string& key) { return store::intern_key(key); }

using testutil::MockContext;
using testutil::test_topology;

class GcTest : public ::testing::Test {
 protected:
  GcTest()
      : server_(NodeId{0, 0}, test_topology(), protocol_, service_, ctx_) {
    ctx_.now = 1'000'000;
  }

  void replicate(const std::string& key, Timestamp ut, DcId sr,
                 VersionVector dv = VersionVector(3)) {
    store::Version v;
    v.key = K(key);
    v.value = "v";
    v.sr = sr;
    v.ut = ut;
    v.dv = std::move(dv);
    server_.handle_message(NodeId{sr, 0}, proto::Replicate{v});
  }

  MockContext ctx_;
  ProtocolConfig protocol_;
  ServiceConfig service_;
  PoccServer server_;
};

TEST_F(GcTest, TimerSendsReportToAggregator) {
  MockContext ctx2;
  ctx2.now = 1'000'000;
  PoccServer other(NodeId{0, 1}, test_topology(), protocol_, service_, ctx2);
  other.on_timer(server::kTimerGc);
  const auto reports = ctx2.sent_of<proto::GcReport>();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].first, (NodeId{0, 0}));
  // Idle node reports its VV (§IV-B).
  EXPECT_EQ(reports[0].second.low_watermark, other.version_vector());
}

TEST_F(GcTest, AggregatorBroadcastsMinimumWhenAllReported) {
  replicate("0:a", 500'000, 1);
  server_.on_timer(server::kTimerGc);  // aggregator's own report
  EXPECT_TRUE(ctx_.sent_of<proto::GcVector>().empty());
  server_.handle_message(
      NodeId{0, 1},
      proto::GcReport{NodeId{0, 1}, VersionVector{0, 300'000, 0}});
  const auto gvs = ctx_.sent_of<proto::GcVector>();
  ASSERT_EQ(gvs.size(), 1u);
  EXPECT_EQ(gvs[0].first, (NodeId{0, 1}));
  EXPECT_EQ(gvs[0].second.gv, (VersionVector{0, 300'000, 0}));
}

TEST_F(GcTest, GcRemovesVersionsBelowFloor) {
  // Chain: 100k, 200k, 300k (all dependency-free).
  for (Timestamp t : {100'000, 200'000, 300'000}) replicate("0:k", t, 1);
  // GV dominating every dv: the floor is the freshest version whose dv <= GV;
  // older versions are unreachable by any future transaction.
  server_.handle_message(NodeId{0, 1},
                         proto::GcVector{VersionVector{0, 250'000, 0}});
  const auto* chain = server_.partition_store().find(K("0:k"));
  ASSERT_NE(chain, nullptr);
  // All three versions have dv = 0 <= GV, so only the newest is kept (it is
  // the floor version itself).
  EXPECT_EQ(chain->size(), 1u);
  EXPECT_EQ(chain->freshest()->ut, 300'000);
}

TEST_F(GcTest, GcKeepsVersionsWithDepsAboveFloor) {
  replicate("0:k", 100'000, 1);                                // floor
  replicate("0:k", 200'000, 1, VersionVector{0, 0, 400'000});  // dv above GV
  replicate("0:k", 300'000, 1, VersionVector{0, 0, 500'000});  // dv above GV
  server_.handle_message(NodeId{0, 1},
                         proto::GcVector{VersionVector{0, 350'000, 0}});
  const auto* chain = server_.partition_store().find(K("0:k"));
  ASSERT_NE(chain, nullptr);
  // 200k/300k have dependencies outside GV; the first version with dv <= GV
  // (walking freshest-to-oldest) is 100k — everything is retained.
  EXPECT_EQ(chain->size(), 3u);
}

TEST_F(GcTest, ActiveTransactionLowersWatermark) {
  // Open a transaction with a remote slice so it stays pending.
  proto::RoTxReq tx;
  tx.client = 9;
  tx.keys = {K("1:far")};
  tx.rdv = VersionVector(3);
  server_.handle_message(NodeId{0, 0}, tx);
  // Raise the VV well above the snapshot.
  server_.handle_message(NodeId{1, 0}, proto::Heartbeat{1, 800'000});
  ctx_.clear_traffic();
  server_.on_timer(server::kTimerGc);
  // The aggregator recorded its own report; inspect via a sibling round.
  server_.handle_message(
      NodeId{0, 1},
      proto::GcReport{NodeId{0, 1}, VersionVector{1'000'000, 1'000'000,
                                                  1'000'000}});
  const auto gvs = ctx_.sent_of<proto::GcVector>();
  ASSERT_EQ(gvs.size(), 1u);
  // GV[1] is capped by the active transaction's snapshot (== VV at tx start,
  // which had VV[1] = 0), not by the current VV[1] = 800k.
  EXPECT_EQ(gvs[0].second.gv[1], 0);
}

TEST_F(GcTest, CureGcUsesCommitVectorFloor) {
  MockContext ctx2;
  ctx2.now = 1'000'000;
  CureServer cure(NodeId{0, 0}, test_topology(), protocol_, service_, ctx2);
  auto replicate_cure = [&](Timestamp ut) {
    store::Version v;
    v.key = K("0:k");
    v.value = "v";
    v.sr = 1;
    v.ut = ut;
    v.dv = VersionVector(3);
    cure.handle_message(NodeId{1, 0}, proto::Replicate{v});
  };
  replicate_cure(100'000);
  replicate_cure(200'000);
  replicate_cure(300'000);
  // GV covers commit vectors up to 200k only: versions 100k and 200k are at
  // or below the floor; 200k is the newest such, so 100k is dropped.
  cure.handle_message(NodeId{0, 1},
                      proto::GcVector{VersionVector{0, 250'000, 0}});
  const auto* chain = cure.partition_store().find(K("0:k"));
  ASSERT_NE(chain, nullptr);
  EXPECT_EQ(chain->size(), 2u);
  EXPECT_EQ(chain->versions()[1].ut, 200'000);
}

TEST_F(GcTest, CureWatermarkIsGss) {
  MockContext ctx2;
  ctx2.now = 1'000'000;
  CureServer cure(NodeId{0, 1}, test_topology(), protocol_, service_, ctx2);
  cure.handle_message(NodeId{0, 0},
                      proto::GssBroadcast{VersionVector{0, 111, 222}});
  cure.on_timer(server::kTimerGc);
  const auto reports = ctx2.sent_of<proto::GcReport>();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].second.low_watermark, (VersionVector{0, 111, 222}));
}

}  // namespace
}  // namespace pocc
