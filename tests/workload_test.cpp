// Workload generators: the paper's GET/PUT cycle shape (§V-B), distinct
// partitions per GET, and transaction-mix clamping.
#include "workload/workload.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/hash.hpp"
#include "store/key_space.hpp"

namespace pocc::workload {
namespace {

PartitionId part_of(KeyId key, std::uint32_t parts) {
  return store::KeySpace::global().partition(key, parts,
                                             PartitionScheme::kPrefix);
}

TEST(Workload, GetPutCycleShape) {
  WorkloadConfig cfg;
  cfg.pattern = Pattern::kGetPut;
  cfg.gets_per_put = 4;
  Generator gen(cfg, 8, 1);
  // One full cycle: 4 GETs then 1 PUT.
  for (int i = 0; i < 4; ++i) {
    const Op op = gen.next();
    EXPECT_EQ(op.type, OpType::kGet) << i;
    EXPECT_EQ(op.keys.size(), 1u);
  }
  const Op put = gen.next();
  EXPECT_EQ(put.type, OpType::kPut);
  EXPECT_FALSE(put.value.empty());
  // Next cycle starts with GETs again.
  EXPECT_EQ(gen.next().type, OpType::kGet);
}

TEST(Workload, GetsTargetDistinctPartitions) {
  WorkloadConfig cfg;
  cfg.pattern = Pattern::kGetPut;
  cfg.gets_per_put = 8;
  Generator gen(cfg, 8, 2);
  for (int cycle = 0; cycle < 20; ++cycle) {
    std::set<PartitionId> parts;
    for (int i = 0; i < 8; ++i) {
      const Op op = gen.next();
      ASSERT_EQ(op.type, OpType::kGet);
      parts.insert(part_of(op.keys[0], 8));
    }
    EXPECT_EQ(parts.size(), 8u) << "cycle " << cycle;
    (void)gen.next();  // the PUT
  }
}

TEST(Workload, GetsPerPutClampedToPartitionCount) {
  WorkloadConfig cfg;
  cfg.pattern = Pattern::kGetPut;
  cfg.gets_per_put = 32;
  Generator gen(cfg, 4, 3);
  int gets = 0;
  while (gen.next().type == OpType::kGet) ++gets;
  EXPECT_EQ(gets, 4);
}

TEST(Workload, PutTargetsAnyPartitionUniformly) {
  WorkloadConfig cfg;
  cfg.pattern = Pattern::kGetPut;
  cfg.gets_per_put = 1;
  Generator gen(cfg, 4, 4);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 8000; ++i) {
    const Op op = gen.next();
    if (op.type == OpType::kPut) {
      ++counts[part_of(op.keys[0], 4)];
    }
  }
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(Workload, TxPutAlternates) {
  WorkloadConfig cfg;
  cfg.pattern = Pattern::kTxPut;
  cfg.tx_partitions = 4;
  Generator gen(cfg, 8, 5);
  for (int i = 0; i < 10; ++i) {
    const Op tx = gen.next();
    ASSERT_EQ(tx.type, OpType::kRoTx);
    EXPECT_EQ(tx.keys.size(), 4u);
    std::set<PartitionId> parts;
    for (const auto& k : tx.keys) parts.insert(part_of(k, 8));
    EXPECT_EQ(parts.size(), 4u);  // p distinct partitions (§V-C)
    const Op put = gen.next();
    ASSERT_EQ(put.type, OpType::kPut);
  }
}

TEST(Workload, TxPartitionsClamped) {
  WorkloadConfig cfg;
  cfg.pattern = Pattern::kTxPut;
  cfg.tx_partitions = 32;
  Generator gen(cfg, 8, 6);
  const Op tx = gen.next();
  EXPECT_EQ(tx.keys.size(), 8u);
}

TEST(Workload, ZipfKeySkewWithinPartition) {
  WorkloadConfig cfg;
  cfg.pattern = Pattern::kGetPut;
  cfg.gets_per_put = 1;
  cfg.keys_per_partition = 1000;
  cfg.zipf_theta = 0.99;
  Generator gen(cfg, 1, 7);
  std::map<KeyId, int> counts;
  for (int i = 0; i < 20000; ++i) {
    const Op op = gen.next();
    ++counts[op.keys[0]];
  }
  // The hottest key must be the zipf head "0:0".
  int max_count = 0;
  KeyId max_key = kInvalidKeyId;
  for (const auto& [k, c] : counts) {
    if (c > max_count) {
      max_count = c;
      max_key = k;
    }
  }
  EXPECT_EQ(store::key_name(max_key), "0:0");
}

TEST(Workload, ValuesHaveConfiguredSize) {
  WorkloadConfig cfg;
  cfg.pattern = Pattern::kGetPut;
  cfg.gets_per_put = 1;
  cfg.value_size = 8;
  Generator gen(cfg, 2, 8);
  for (int i = 0; i < 10; ++i) {
    const Op op = gen.next();
    if (op.type == OpType::kPut) {
      EXPECT_EQ(op.value.size(), 8u);
    }
  }
}

TEST(Workload, DeterministicForSeed) {
  WorkloadConfig cfg;
  Generator a(cfg, 8, 42);
  Generator b(cfg, 8, 42);
  for (int i = 0; i < 100; ++i) {
    const Op x = a.next();
    const Op y = b.next();
    EXPECT_EQ(x.type, y.type);
    EXPECT_EQ(x.keys, y.keys);
  }
}

TEST(Workload, ThinkTimeExposed) {
  WorkloadConfig cfg;
  cfg.think_time_us = 25'000;
  Generator gen(cfg, 2, 9);
  EXPECT_EQ(gen.think_time(), 25'000);
}

}  // namespace
}  // namespace pocc::workload
