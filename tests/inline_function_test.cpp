// InlineFunction: inline storage for small captures (the allocation-free
// event-loop guarantee), heap fallback for oversized ones, move-only
// ownership semantics and capture destruction.
#include "common/inline_function.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

namespace pocc::common {
namespace {

using Fn = InlineFunction<int(), 48>;

TEST(InlineFunction, EmptyIsFalsy) {
  Fn f;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InlineFunction, SmallCaptureStoredInline) {
  int x = 41;
  Fn f = [x] { return x + 1; };
  EXPECT_TRUE(static_cast<bool>(f));
  EXPECT_TRUE(f.is_inline());
  EXPECT_EQ(f(), 42);
}

TEST(InlineFunction, CapacityBoundaryStaysInline) {
  struct Cap {
    char bytes[48];
  };
  Cap c{};
  c.bytes[0] = 7;
  Fn f = [c] { return static_cast<int>(c.bytes[0]); };
  EXPECT_TRUE(f.is_inline());
  EXPECT_EQ(f(), 7);
}

TEST(InlineFunction, OversizedCaptureFallsBackToHeap) {
  struct Big {
    char bytes[64];
  };
  Big b{};
  b.bytes[63] = 9;
  Fn f = [b] { return static_cast<int>(b.bytes[63]); };
  EXPECT_FALSE(f.is_inline());
  EXPECT_EQ(f(), 9);  // still callable
}

TEST(InlineFunction, MoveTransfersOwnership) {
  auto counter = std::make_shared<int>(0);
  Fn a = [counter] { return ++*counter; };
  EXPECT_EQ(counter.use_count(), 2);
  Fn b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  EXPECT_EQ(counter.use_count(), 2);  // no duplicate capture
  EXPECT_EQ(b(), 1);
}

TEST(InlineFunction, MoveAssignReleasesPreviousCapture) {
  auto old_capture = std::make_shared<int>(1);
  auto new_capture = std::make_shared<int>(2);
  Fn f = [old_capture] { return *old_capture; };
  f = Fn([new_capture] { return *new_capture; });
  EXPECT_EQ(old_capture.use_count(), 1);  // old capture destroyed
  EXPECT_EQ(f(), 2);
}

TEST(InlineFunction, DestructionReleasesCapture) {
  auto capture = std::make_shared<int>(5);
  {
    Fn f = [capture] { return *capture; };
    EXPECT_EQ(capture.use_count(), 2);
  }
  EXPECT_EQ(capture.use_count(), 1);
}

TEST(InlineFunction, HeapFallbackMoveTransfersPointer) {
  struct Big {
    char pad[64];
    std::shared_ptr<int> p;
  };
  auto capture = std::make_shared<int>(3);
  Fn a = [b = Big{{}, capture}] { return *b.p; };
  EXPECT_FALSE(a.is_inline());
  Fn b = std::move(a);
  EXPECT_EQ(capture.use_count(), 2);  // moved, not copied
  EXPECT_EQ(b(), 3);
}

TEST(InlineFunction, ArgumentsAndReturnForwarded) {
  InlineFunction<int(int, int), 16> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(20, 22), 42);
}

TEST(InlineFunction, MutableStateAccumulates) {
  InlineFunction<int(), 16> f = [n = 0]() mutable { return ++n; };
  EXPECT_EQ(f(), 1);
  EXPECT_EQ(f(), 2);
  EXPECT_EQ(f(), 3);
}

}  // namespace
}  // namespace pocc::common
