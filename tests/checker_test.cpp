// Online causal-consistency checker: clean histories pass; violations of
// read-your-writes, monotonic reads, cross-key causal chains, the RO-TX
// snapshot rule, Alg. 1 conformance and Prop. 2 are detected.
#include "checker/history_checker.hpp"

#include <gtest/gtest.h>

#include "store/key_space.hpp"

namespace pocc::checker {
namespace {

/// Tests name keys as strings; the checker runs on interned ids.
KeyId K(const std::string& key) { return store::intern_key(key); }

class CheckerTest : public ::testing::Test {
 protected:
  CheckerTest() : chk_(3) {
    chk_.register_client(1, 0);
    chk_.register_client(2, 1);
  }

  /// Simulate a full PUT by client `c` (issue + server-side creation + reply).
  proto::PutReply do_put(ClientId c, const std::string& key, Timestamp ut,
                         DcId sr, const VersionVector& dv) {
    proto::PutReq req;
    req.client = c;
    req.key = K(key);
    req.value = "v";
    req.dv = dv;
    chk_.on_put_issued(c, req);
    chk_.on_version_created(c, req.op_id, K(key), ut, sr, dv);
    proto::PutReply reply;
    reply.client = c;
    reply.key = K(key);
    reply.ut = ut;
    reply.sr = sr;
    chk_.on_put_reply(c, reply);
    return reply;
  }

  proto::GetReply make_get_reply(ClientId c, const std::string& key,
                                 Timestamp ut, DcId sr,
                                 const VersionVector& dv) {
    proto::GetReply r;
    r.client = c;
    r.item.key = K(key);
    r.item.found = true;
    r.item.ut = ut;
    r.item.sr = sr;
    r.item.dv = dv;
    return r;
  }

  void do_get(ClientId c, const std::string& key, const VersionVector& rdv,
              const proto::GetReply& reply) {
    proto::GetReq req;
    req.client = c;
    req.key = K(key);
    req.rdv = rdv;
    chk_.on_get_issued(c, req);
    chk_.on_get_reply(c, reply);
  }

  HistoryChecker chk_;
};

TEST_F(CheckerTest, CleanHistoryHasNoViolations) {
  const auto put = do_put(1, "k", 100, 0, VersionVector(3));
  do_get(1, "k", VersionVector(3),
         make_get_reply(1, "k", put.ut, put.sr, VersionVector(3)));
  EXPECT_TRUE(chk_.violations().empty());
  EXPECT_GT(chk_.checks_performed(), 0u);
  EXPECT_EQ(chk_.versions_registered(), 1u);
}

TEST_F(CheckerTest, ReadYourWritesViolationDetected) {
  do_put(1, "k", 100, 0, VersionVector(3));
  // The same client then reads an *older* version of k: violation.
  // (The RDV is still zero: writes do not raise it, Alg. 1.)
  proto::GetReply stale = make_get_reply(1, "k", 0, 0, VersionVector(3));
  stale.item.found = false;  // implicit initial version
  do_get(1, "k", VersionVector(3), stale);
  ASSERT_FALSE(chk_.violations().empty());
  EXPECT_NE(chk_.violations()[0].find("causal GET rule"), std::string::npos);
}

TEST_F(CheckerTest, MonotonicReadsViolationDetected) {
  // Another client's write.
  do_put(2, "k", 200, 1, VersionVector(3));
  // Client 1 reads the fresh version, then an older one: violation.
  do_get(1, "k", VersionVector(3),
         make_get_reply(1, "k", 200, 1, VersionVector(3)));
  proto::GetReply stale = make_get_reply(1, "k", 0, 0, VersionVector(3));
  stale.item.found = false;
  do_get(1, "k", VersionVector(3), stale);
  EXPECT_FALSE(chk_.violations().empty());
}

TEST_F(CheckerTest, CausalChainThroughAnotherKeyDetected) {
  // Client 2 writes X of x, reads it, then writes Y of y (so X is in Y's
  // causal past). Client 1 reads Y, then reads an older version of x.
  do_put(2, "x", 100, 1, VersionVector(3));
  do_get(2, "x", VersionVector(3),
         make_get_reply(2, "x", 100, 1, VersionVector(3)));
  do_put(2, "y", 150, 1, VersionVector{0, 100, 0});

  do_get(1, "y", VersionVector(3),
         make_get_reply(1, "y", 150, 1, VersionVector{0, 100, 0}));
  EXPECT_TRUE(chk_.violations().empty());
  proto::GetReply stale_x = make_get_reply(1, "x", 0, 0, VersionVector(3));
  stale_x.item.found = false;
  do_get(1, "x", VersionVector{0, 100, 0}, stale_x);
  ASSERT_FALSE(chk_.violations().empty());
}

TEST_F(CheckerTest, FreshReadAfterCausalChainIsClean) {
  do_put(2, "x", 100, 1, VersionVector(3));
  do_get(2, "x", VersionVector(3),
         make_get_reply(2, "x", 100, 1, VersionVector(3)));
  do_put(2, "y", 150, 1, VersionVector{0, 100, 0});
  do_get(1, "y", VersionVector(3),
         make_get_reply(1, "y", 150, 1, VersionVector{0, 100, 0}));
  // Reading x at its causal-past version (or fresher) is fine.
  do_get(1, "x", VersionVector{0, 100, 0},
         make_get_reply(1, "x", 100, 1, VersionVector(3)));
  EXPECT_TRUE(chk_.violations().empty());
}

TEST_F(CheckerTest, Alg1ConformanceMismatchDetected) {
  // A GET carrying an RDV that diverges from the mirrored Algorithm 1 state.
  proto::GetReq req;
  req.client = 1;
  req.key = K("k");
  req.rdv = VersionVector{9, 9, 9};  // client never read anything
  chk_.on_get_issued(1, req);
  ASSERT_FALSE(chk_.violations().empty());
  EXPECT_NE(chk_.violations()[0].find("Alg1"), std::string::npos);
}

TEST_F(CheckerTest, Prop2ViolationDetected) {
  // ut must strictly exceed every dv entry.
  chk_.on_version_created(1, 0, K("k"), 100, 0, VersionVector{0, 150, 0});
  ASSERT_FALSE(chk_.violations().empty());
  EXPECT_NE(chk_.violations()[0].find("Prop2"), std::string::npos);
}

TEST_F(CheckerTest, TxSnapshotViolationDetected) {
  // Build X(100) -> X''(200) -> Y(300): Y's past contains x@200.
  do_put(2, "x", 100, 1, VersionVector(3));
  do_put(2, "x", 200, 1, VersionVector{0, 100, 0});
  do_put(2, "y", 300, 1, VersionVector{0, 200, 0});

  // A transaction returning Y together with the *old* x@100 breaks the
  // snapshot property.
  proto::RoTxReq req;
  req.client = 1;
  req.keys = {K("x"), K("y")};
  req.rdv = VersionVector(3);
  chk_.on_tx_issued(1, req);
  proto::RoTxReply reply;
  reply.client = 1;
  proto::ReadItem x;
  x.key = K("x");
  x.found = true;
  x.ut = 100;
  x.sr = 1;
  x.dv = VersionVector(3);
  proto::ReadItem y;
  y.key = K("y");
  y.found = true;
  y.ut = 300;
  y.sr = 1;
  y.dv = VersionVector{0, 200, 0};
  reply.items = {x, y};
  chk_.on_tx_reply(1, reply);
  ASSERT_FALSE(chk_.violations().empty());
  EXPECT_NE(chk_.violations()[0].find("RO-TX snapshot"), std::string::npos);
}

TEST_F(CheckerTest, ConsistentTxSnapshotIsClean) {
  do_put(2, "x", 100, 1, VersionVector(3));
  do_put(2, "x", 200, 1, VersionVector{0, 100, 0});
  do_put(2, "y", 300, 1, VersionVector{0, 200, 0});
  proto::RoTxReq req;
  req.client = 1;
  req.keys = {K("x"), K("y")};
  req.rdv = VersionVector(3);
  chk_.on_tx_issued(1, req);
  proto::RoTxReply reply;
  reply.client = 1;
  proto::ReadItem x;
  x.key = K("x");
  x.found = true;
  x.ut = 200;
  x.sr = 1;
  x.dv = VersionVector{0, 100, 0};
  proto::ReadItem y;
  y.key = K("y");
  y.found = true;
  y.ut = 300;
  y.sr = 1;
  y.dv = VersionVector{0, 200, 0};
  reply.items = {x, y};
  chk_.on_tx_reply(1, reply);
  EXPECT_TRUE(chk_.violations().empty());
}

TEST_F(CheckerTest, SessionResetForgetsCausalPast) {
  do_put(1, "k", 100, 0, VersionVector(3));
  chk_.on_session_reset(1);
  // After the HA reset, reading an old version of k is permitted (§III-B).
  proto::GetReply stale = make_get_reply(1, "k", 0, 0, VersionVector(3));
  stale.item.found = false;
  do_get(1, "k", VersionVector(3), stale);
  EXPECT_TRUE(chk_.violations().empty());
}

TEST_F(CheckerTest, ConcurrentWritesAreNotViolations) {
  // Two clients write the same key concurrently; each reading its own write
  // is consistent even though LWW will eventually pick one winner.
  do_put(1, "k", 100, 0, VersionVector(3));
  do_put(2, "k", 100, 1, VersionVector(3));  // same ut, different sr
  // Client 2 reads its own write: version (100, sr=1). Client 1's write
  // (100, sr=0) is fresher in LWW order but NOT in client 2's causal past.
  do_get(2, "k", VersionVector(3),
         make_get_reply(2, "k", 100, 1, VersionVector(3)));
  EXPECT_TRUE(chk_.violations().empty());
}

}  // namespace
}  // namespace pocc::checker
