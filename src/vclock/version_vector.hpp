// Physical-time version/dependency vectors — the metadata POCC tracks
// causality with (paper §IV-A).
//
// One entry per data center. When attached to an item version it is the
// "dependency vector" dv (dv[i] = highest update time of any item from DC i
// that this version potentially depends on). When kept by a server it is the
// "version vector" VV (VV[i] = all updates from DC i with timestamp <= VV[i]
// have been received; VV[m] = highest local update timestamp). Clients keep
// two of these: DV (write dependencies) and RDV (read dependencies).
//
// Dependencies are tracked at DC granularity, so the vector encodes
// *potential* dependencies: a cheap over-approximation (paper §IV, "they might
// cause a client's request to be (uselessly) stalled").
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace pocc {

/// Maximum number of data centers supported without heap allocation. The
/// paper's deployments use 3; we allow up to 8 for sensitivity experiments.
inline constexpr std::uint32_t kMaxDcs = 8;

/// Fixed-capacity vector of physical timestamps, one entry per DC.
class VersionVector {
 public:
  VersionVector() = default;

  /// A vector of `num_dcs` zero entries.
  explicit VersionVector(std::uint32_t num_dcs) : size_(num_dcs) {
    POCC_ASSERT(num_dcs >= 1 && num_dcs <= kMaxDcs);
    entries_.fill(0);
  }

  VersionVector(std::initializer_list<Timestamp> init) {
    POCC_ASSERT(init.size() >= 1 && init.size() <= kMaxDcs);
    size_ = static_cast<std::uint32_t>(init.size());
    entries_.fill(0);
    std::uint32_t i = 0;
    for (Timestamp t : init) entries_[i++] = t;
  }

  [[nodiscard]] std::uint32_t size() const { return size_; }

  [[nodiscard]] Timestamp at(std::uint32_t i) const {
    POCC_ASSERT(i < size_);
    return entries_[i];
  }
  Timestamp& operator[](std::uint32_t i) {
    POCC_ASSERT(i < size_);
    return entries_[i];
  }
  Timestamp operator[](std::uint32_t i) const { return at(i); }

  void set(std::uint32_t i, Timestamp t) {
    POCC_ASSERT(i < size_);
    entries_[i] = t;
  }

  /// entries_[i] = max(entries_[i], t).
  void raise(std::uint32_t i, Timestamp t) {
    POCC_ASSERT(i < size_);
    if (t > entries_[i]) entries_[i] = t;
  }

  /// Entry-wise maximum with `other` (both vectors must have equal size).
  void merge_max(const VersionVector& other);

  /// Entry-wise minimum with `other`.
  void merge_min(const VersionVector& other);

  /// True iff this[i] >= other[i] for every i (optionally skipping one index —
  /// the paper's dependency checks skip the local DC entry, Alg. 2 line 2).
  [[nodiscard]] bool dominates(const VersionVector& other,
                               std::int32_t skip_index = -1) const;

  /// True iff this[i] <= other[i] for every i (the "DV <= TV" visibility test).
  [[nodiscard]] bool leq(const VersionVector& other) const {
    return other.dominates(*this);
  }

  /// Largest entry (used for the PUT clock wait, Alg. 2 line 7).
  [[nodiscard]] Timestamp max_entry() const;

  /// Smallest entry.
  [[nodiscard]] Timestamp min_entry() const;

  friend bool operator==(const VersionVector& a, const VersionVector& b) {
    if (a.size_ != b.size_) return false;
    for (std::uint32_t i = 0; i < a.size_; ++i) {
      if (a.entries_[i] != b.entries_[i]) return false;
    }
    return true;
  }

  /// Entry-wise max of two vectors.
  static VersionVector max_of(const VersionVector& a, const VersionVector& b);
  /// Entry-wise min of two vectors.
  static VersionVector min_of(const VersionVector& a, const VersionVector& b);

  [[nodiscard]] std::string to_string() const;

 private:
  std::array<Timestamp, kMaxDcs> entries_{};
  std::uint32_t size_ = 0;
};

}  // namespace pocc
