#include "vclock/version_vector.hpp"

#include <algorithm>

namespace pocc {

void VersionVector::merge_max(const VersionVector& other) {
  POCC_ASSERT(size_ == other.size_);
  for (std::uint32_t i = 0; i < size_; ++i) {
    entries_[i] = std::max(entries_[i], other.entries_[i]);
  }
}

void VersionVector::merge_min(const VersionVector& other) {
  POCC_ASSERT(size_ == other.size_);
  for (std::uint32_t i = 0; i < size_; ++i) {
    entries_[i] = std::min(entries_[i], other.entries_[i]);
  }
}

bool VersionVector::dominates(const VersionVector& other,
                              std::int32_t skip_index) const {
  POCC_ASSERT(size_ == other.size_);
  for (std::uint32_t i = 0; i < size_; ++i) {
    if (static_cast<std::int32_t>(i) == skip_index) continue;
    if (entries_[i] < other.entries_[i]) return false;
  }
  return true;
}

Timestamp VersionVector::max_entry() const {
  POCC_ASSERT(size_ >= 1);
  return *std::max_element(entries_.begin(), entries_.begin() + size_);
}

Timestamp VersionVector::min_entry() const {
  POCC_ASSERT(size_ >= 1);
  return *std::min_element(entries_.begin(), entries_.begin() + size_);
}

VersionVector VersionVector::max_of(const VersionVector& a,
                                    const VersionVector& b) {
  VersionVector r = a;
  r.merge_max(b);
  return r;
}

VersionVector VersionVector::min_of(const VersionVector& a,
                                    const VersionVector& b) {
  VersionVector r = a;
  r.merge_min(b);
  return r;
}

std::string VersionVector::to_string() const {
  std::string s = "[";
  for (std::uint32_t i = 0; i < size_; ++i) {
    if (i > 0) s += ",";
    s += std::to_string(entries_[i]);
  }
  s += "]";
  return s;
}

}  // namespace pocc
