#include "cure/cure_server.hpp"

namespace pocc {

CureServer::CureServer(NodeId self, const TopologyConfig& topology,
                       const ProtocolConfig& protocol,
                       const ServiceConfig& service, server::Context& ctx)
    : server::ReplicaBase(self, topology, protocol, service, ctx),
      gss_(topology.num_dcs) {}

void CureServer::start() {
  server::ReplicaBase::start();
  ctx_.set_timer(stabilization_interval(), server::kTimerStabilization);
}

Duration CureServer::on_timer(std::uint64_t timer_id) {
  if (timer_id != server::kTimerStabilization) {
    return server::ReplicaBase::on_timer(timer_id);
  }
  work_ = 0;
  // Stabilization round: report this node's VV to the DC-local aggregator,
  // which computes the aggregate minimum (the GSS) and broadcasts it.
  charge(service_.stabilization_us);
  if (is_stab_aggregator()) {
    on_stab_report(proto::StabReport{self_, vv_});
  } else {
    ctx_.send(NodeId{local_dc(), 0}, proto::StabReport{self_, vv_});
  }
  ctx_.set_timer(stabilization_interval(), server::kTimerStabilization);
  return work_;
}

Duration CureServer::on_stab_report(const proto::StabReport& msg) {
  charge(service_.stabilization_us);
  POCC_ASSERT(is_stab_aggregator());
  stab_reports_[msg.from.part] = msg.vv;
  if (stab_reports_.size() == topology_.partitions_per_dc) {
    VersionVector gss = stab_reports_.begin()->second;
    for (const auto& [part, vv] : stab_reports_) gss.merge_min(vv);
    for (PartitionId p = 0; p < topology_.partitions_per_dc; ++p) {
      if (p == self_.part) continue;
      ctx_.send(NodeId{local_dc(), p}, proto::GssBroadcast{gss});
    }
    on_gss_broadcast(proto::GssBroadcast{gss});
  }
  return work_;
}

Duration CureServer::on_gss_broadcast(const proto::GssBroadcast& msg) {
  charge(service_.stabilization_us);
  gss_.merge_max(msg.gss);  // the GSS is monotone per node
  poke();                   // reads waiting on the GSS may now be ready
  return work_;
}

proto::ReadItem CureServer::choose_get_version(const proto::GetReq& req) {
  proto::ReadItem item;
  item.key = req.key;
  const store::VersionChain* chain = store_.find(req.key);
  if (chain == nullptr || chain->empty()) {
    item.found = false;
    item.sr = 0;
    item.ut = 0;
    item.dv = VersionVector(topology_.num_dcs);
    charge(service_.version_hop_us);
    return item;
  }
  const auto lookup = chain->freshest_where([this](const store::Version& v) {
    return stable(v);
  });
  charge(service_.version_hop_us * static_cast<Duration>(lookup.hops));
  if (lookup.version == nullptr) {
    // Every explicit version is unstable; fall back to the implicit initial
    // version (dependency-free, hence trivially stable).
    item.found = false;
    item.sr = 0;
    item.ut = 0;
    item.dv = VersionVector(topology_.num_dcs);
  } else {
    item.found = true;
    item.value = lookup.version->value;
    item.sr = lookup.version->sr;
    item.ut = lookup.version->ut;
    item.dv = lookup.version->dv;
  }
  item.fresher_versions = lookup.fresher;
  item.unmerged_versions = count_unmerged(*chain);
  return item;
}

VersionVector CureServer::compute_tx_snapshot(
    const proto::RoTxReq& req) const {
  VersionVector tv = VersionVector::max_of(gss_, req.rdv);
  // Local items are always visible in Cure (§IV-C): the local boundary is the
  // coordinator's VV entry, not the (lagging) GSS entry.
  tv.raise(local_dc(), vv_[local_dc()]);
  return tv;
}

}  // namespace pocc
