// Cure* — the pessimistic baseline (paper §V: "a reimplementation of Cure
// [ICDCS'16], a state-of-the-art causally consistent system based on vector
// clocks", augmented with GET/PUT support).
//
// Pessimistic visibility: nodes within a DC periodically exchange their
// version vectors and compute the aggregate minimum, the Global Stable
// Snapshot (GSS). A remote item d becomes visible only once it is *stable*:
// all of its dependencies (and d itself) lie below the GSS. Local items are
// always visible. A GET therefore has to search the version chain for the
// freshest stable version — the chain-traversal and stabilization overheads
// that POCC eliminates, and the source of the data staleness measured in
// Fig. 2b / 3d.
//
// Meta-data is identical to POCC's (one physical timestamp per DC in every
// message), making the comparison fair (§V).
#pragma once

#include "server/replica_base.hpp"

namespace pocc {

class CureServer : public server::ReplicaBase {
 public:
  CureServer(NodeId self, const TopologyConfig& topology,
             const ProtocolConfig& protocol, const ServiceConfig& service,
             server::Context& ctx);

  void start() override;
  void recover() override {
    ReplicaBase::recover();
    stab_reports_.clear();  // per-round aggregation is RAM; GSS survives
  }
  Duration on_timer(std::uint64_t timer_id) override;

  [[nodiscard]] const VersionVector& gss() const { return gss_; }

 protected:
  /// A version is stable in this DC iff its commit vector (dv with the source
  /// entry raised to ut) is below the GSS on every *remote* coordinate.
  /// Local items are always visible, and — for the same reason — the local
  /// coordinate of a remote version's commit vector is skipped: it names
  /// dependencies on this DC's own items, which are visible here regardless
  /// of stabilization progress. Testing it against the (lagging) GSS made
  /// GET visibility stricter than the RO-TX rule (whose TV raises the local
  /// entry to the coordinator's VV): a transaction could return a version
  /// that a later GET hides — a monotonic-reads violation the cluster-fuzz
  /// harness caught when a crashed partition froze the DC's GSS minimum.
  [[nodiscard]] bool stable(const store::Version& v) const {
    if (v.sr == local_dc()) return true;
    return gss_.dominates(v.commit_vector(), skip_local());
  }

  /// Reads wait until the GSS covers the client's read dependencies
  /// (remote entries only; local dependencies are trivially satisfied).
  [[nodiscard]] bool get_ready(const proto::GetReq& req) const override {
    return gss_.dominates(req.rdv, skip_local());
  }

  /// Freshest *stable* version: traverses the chain, skipping unstable
  /// versions (the returned item may be "old" — Fig. 2b).
  proto::ReadItem choose_get_version(const proto::GetReq& req) override;

  /// Transaction snapshots are bounded by the GSS for remote entries (items
  /// must be stable) and by the node's VV locally (local items are always
  /// visible), raised by the client's read dependencies.
  [[nodiscard]] VersionVector compute_tx_snapshot(
      const proto::RoTxReq& req) const override;

  /// Pessimistic slice visibility: the version and all its dependencies must
  /// lie inside the (stable) snapshot — the FULL commit vector, local
  /// coordinate included. The local bound is what keeps sibling slices
  /// mutually consistent (a local item written after the transaction started
  /// must not leak into a late slice — cluster fuzz caught exactly that when
  /// this test briefly skipped the local coordinate). Unlike the GET path,
  /// no monotonic-reads hazard arises from the full test: TV includes the
  /// client's read vector, and RDV dominance is transitive along read/write
  /// chains, so every version in the client's causal past is coordinate-wise
  /// covered by TV.
  [[nodiscard]] bool slice_visible(const store::Version& v,
                                   const VersionVector& tv,
                                   bool pessimistic) const override {
    (void)pessimistic;  // every Cure* session is pessimistic
    return v.commit_vector().leq(tv);
  }

  /// Staleness metric: number of not-yet-stable versions in the chain.
  [[nodiscard]] std::uint32_t count_unmerged(
      const store::VersionChain& chain) const override {
    return chain.count_unstable([this](const store::Version& v) {
      return stable(v);
    });
  }

  /// GC floor follows the GSS: any future snapshot is >= the DC-wide minimum
  /// of the GSS, so the newest version with cv <= GV plus everything fresher
  /// must be retained.
  [[nodiscard]] VersionVector gc_watermark() const override { return gss_; }
  [[nodiscard]] bool gc_version_at_floor(
      const store::Version& v, const VersionVector& gv) const override {
    return v.commit_vector().leq(gv);
  }

  Duration on_stab_report(const proto::StabReport& msg) override;
  Duration on_gss_broadcast(const proto::GssBroadcast& msg) override;

  [[nodiscard]] bool is_stab_aggregator() const { return self_.part == 0; }

  /// Interval between stabilization rounds (HA-POCC reuses this machinery
  /// with a much longer interval, §IV-C).
  [[nodiscard]] virtual Duration stabilization_interval() const {
    return protocol_.stabilization_interval_us;
  }

  VersionVector gss_;
  std::unordered_map<PartitionId, VersionVector> stab_reports_;
};

}  // namespace pocc
