// Workload generators reproducing §V of the paper.
//
// Get-Put workload (§V-B): "a GET:PUT ratio of N:M means that each client
// issues N consecutive GETs followed by one PUT. Each GET operation targets a
// different partition. The PUT operation is issued against a key in a
// partition chosen uniformly at random."
//
// Transactional workload (§V-C): "each client first issues a RO-TX to read p
// items corresponding to p distinct partitions, and then performs a random
// PUT."
//
// Keys within a partition are chosen with a zipfian distribution
// (theta = 0.99, §V-A); clients operate in closed loop with a think time
// between operations (25 ms in the paper).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "common/zipf.hpp"
#include "store/key_space.hpp"

namespace pocc::workload {

enum class OpType { kGet, kPut, kRoTx };

/// One operation to issue. Keys are interned against the global KeySpace at
/// generation time — the only place the simulation ever builds key strings.
struct Op {
  OpType type = OpType::kGet;
  std::vector<KeyId> keys;  // 1 key for GET/PUT, p keys for RO-TX
  std::string value;        // PUT payload
};

enum class Pattern {
  kGetPut,  // N GETs on distinct partitions, then 1 PUT (Fig. 1/2)
  kTxPut,   // 1 RO-TX over p distinct partitions, then 1 PUT (Fig. 3)
};

struct WorkloadConfig {
  Pattern pattern = Pattern::kGetPut;
  /// N in the N:1 GET:PUT ratio (pattern kGetPut).
  std::uint32_t gets_per_put = 32;
  /// p = partitions contacted per RO-TX (pattern kTxPut).
  std::uint32_t tx_partitions = 16;
  /// Closed-loop think time between operations (paper: 25 ms).
  Duration think_time_us = 25'000;
  /// Zipf skew for key choice within a partition.
  double zipf_theta = 0.99;
  /// Key-space size per partition (paper: 1M).
  std::uint64_t keys_per_partition = 1'000'000;
  /// Constant added to every generated key rank. Successive runs against a
  /// LIVE cluster use distinct offsets so their keyspaces are disjoint —
  /// a fresh run reading a leftover version from an earlier run's clients
  /// would (correctly) fail its history replay. The "<partition>:" prefix
  /// routes the key, so the offset never changes partition placement.
  std::uint64_t key_offset = 0;
  /// PUT payload size in bytes (paper: 8).
  std::uint32_t value_size = 8;
  /// When > value_size, payload sizes are SKEWED instead of fixed: each PUT
  /// draws a size octave zipfianly (theta = zipf_theta), so most values stay
  /// at value_size while a heavy tail doubles up to value_size_max — the
  /// realistic "mostly-small, occasionally-huge" distribution production
  /// stores see. 0 (or <= value_size) keeps the paper's fixed size.
  std::uint32_t value_size_max = 0;
  /// Give-up timeout for an in-flight operation (0 = wait forever, the
  /// paper's failure-free closed loop). Under fault injection a server crash
  /// destroys requests outright; after this long without a reply the client
  /// library re-initializes its session (as after a SessionClosed) and
  /// retries, so the closed loop survives fail-stop faults.
  Duration op_timeout_us = 0;
};

/// Per-client deterministic operation stream.
class Generator {
 public:
  Generator(const WorkloadConfig& cfg, std::uint32_t partitions,
            std::uint64_t seed);

  /// Next operation in the client's cycle.
  Op next();

  /// Think time before issuing the next operation.
  [[nodiscard]] Duration think_time() const { return cfg_.think_time_us; }

  [[nodiscard]] const WorkloadConfig& config() const { return cfg_; }

 private:
  [[nodiscard]] KeyId pick_key(PartitionId part);
  [[nodiscard]] std::string make_value();
  /// `count` distinct partitions, uniformly at random.
  [[nodiscard]] std::vector<PartitionId> distinct_partitions(
      std::uint32_t count);

  WorkloadConfig cfg_;
  std::uint32_t partitions_;
  Rng rng_;
  ZipfGenerator zipf_;
  ZipfGenerator size_zipf_;  // over value-size octaves (value_size_max)
  std::uint32_t phase_ = 0;  // position within the N-GETs-then-PUT cycle
  std::vector<PartitionId> cycle_partitions_;  // GET targets for this cycle
  std::vector<PartitionId> scratch_;           // partition shuffle buffer
};

}  // namespace pocc::workload
