#include "workload/workload.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"
#include "common/hash.hpp"

namespace pocc::workload {

Generator::Generator(const WorkloadConfig& cfg, std::uint32_t partitions,
                     std::uint64_t seed)
    : cfg_(cfg),
      partitions_(partitions),
      rng_(seed),
      zipf_(cfg.keys_per_partition, cfg.zipf_theta),
      scratch_(partitions) {
  POCC_ASSERT(partitions > 0);
  POCC_ASSERT(cfg.keys_per_partition > 0);
  std::iota(scratch_.begin(), scratch_.end(), 0);
}

KeyId Generator::pick_key(PartitionId part) {
  // Interned without building a std::string (hot path: one call per GET/PUT).
  return store::KeySpace::global().intern_partition_key(
      part, cfg_.key_offset + zipf_.next(rng_));
}

std::string Generator::make_value() {
  std::string v(cfg_.value_size, '\0');
  for (char& c : v) {
    c = static_cast<char>('a' + rng_.uniform(26));
  }
  return v;
}

std::vector<PartitionId> Generator::distinct_partitions(std::uint32_t count) {
  count = std::min(count, partitions_);
  // Partial Fisher-Yates over the scratch permutation.
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto j =
        i + static_cast<std::uint32_t>(rng_.uniform(partitions_ - i));
    std::swap(scratch_[i], scratch_[j]);
  }
  return {scratch_.begin(), scratch_.begin() + count};
}

Op Generator::next() {
  Op op;
  switch (cfg_.pattern) {
    case Pattern::kGetPut: {
      const std::uint32_t gets =
          std::min(cfg_.gets_per_put, partitions_);
      if (phase_ == 0) {
        cycle_partitions_ = distinct_partitions(gets);
      }
      if (phase_ < gets) {
        op.type = OpType::kGet;
        op.keys.push_back(pick_key(cycle_partitions_[phase_]));
        ++phase_;
      } else {
        op.type = OpType::kPut;
        op.keys.push_back(pick_key(
            static_cast<PartitionId>(rng_.uniform(partitions_))));
        op.value = make_value();
        phase_ = 0;
      }
      break;
    }
    case Pattern::kTxPut: {
      if (phase_ == 0) {
        op.type = OpType::kRoTx;
        for (PartitionId p : distinct_partitions(cfg_.tx_partitions)) {
          op.keys.push_back(pick_key(p));
        }
        phase_ = 1;
      } else {
        op.type = OpType::kPut;
        op.keys.push_back(pick_key(
            static_cast<PartitionId>(rng_.uniform(partitions_))));
        op.value = make_value();
        phase_ = 0;
      }
      break;
    }
  }
  return op;
}

}  // namespace pocc::workload
