#include "workload/workload.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"
#include "common/hash.hpp"

namespace pocc::workload {

namespace {

/// Number of doublings from value_size up to (at most) value_size_max:
/// 1 when sizes are fixed, so the size zipf degenerates to "always rank 0".
std::uint64_t size_octaves(const WorkloadConfig& cfg) {
  std::uint64_t octaves = 1;
  if (cfg.value_size > 0) {
    std::uint64_t size = cfg.value_size;
    while (size * 2 <= cfg.value_size_max) {
      size *= 2;
      ++octaves;
    }
  }
  return octaves;
}

}  // namespace

Generator::Generator(const WorkloadConfig& cfg, std::uint32_t partitions,
                     std::uint64_t seed)
    : cfg_(cfg),
      partitions_(partitions),
      rng_(seed),
      zipf_(cfg.keys_per_partition, cfg.zipf_theta),
      size_zipf_(size_octaves(cfg), cfg.zipf_theta),
      scratch_(partitions) {
  POCC_ASSERT(partitions > 0);
  POCC_ASSERT(cfg.keys_per_partition > 0);
  std::iota(scratch_.begin(), scratch_.end(), 0);
}

KeyId Generator::pick_key(PartitionId part) {
  // Interned without building a std::string (hot path: one call per GET/PUT).
  return store::KeySpace::global().intern_partition_key(
      part, cfg_.key_offset + zipf_.next(rng_));
}

std::string Generator::make_value() {
  // Skewed payload sizes: rank 0 (the common case) is value_size, each
  // higher rank doubles it, capped by value_size_max. With value_size_max
  // unset the zipf has one rank and the size is fixed (paper behavior).
  std::size_t size = cfg_.value_size;
  const std::uint64_t octave = size_zipf_.next(rng_);
  size <<= octave;
  std::string v(size, 'x');
  // Randomize a short prefix for uniqueness; filling megabyte tails with
  // per-char rng draws would dominate the client loop for no extra signal.
  const std::size_t random_prefix = std::min<std::size_t>(v.size(), 16);
  for (std::size_t i = 0; i < random_prefix; ++i) {
    v[i] = static_cast<char>('a' + rng_.uniform(26));
  }
  return v;
}

std::vector<PartitionId> Generator::distinct_partitions(std::uint32_t count) {
  count = std::min(count, partitions_);
  // Partial Fisher-Yates over the scratch permutation.
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto j =
        i + static_cast<std::uint32_t>(rng_.uniform(partitions_ - i));
    std::swap(scratch_[i], scratch_[j]);
  }
  return {scratch_.begin(), scratch_.begin() + count};
}

Op Generator::next() {
  Op op;
  switch (cfg_.pattern) {
    case Pattern::kGetPut: {
      const std::uint32_t gets =
          std::min(cfg_.gets_per_put, partitions_);
      if (phase_ == 0) {
        cycle_partitions_ = distinct_partitions(gets);
      }
      if (phase_ < gets) {
        op.type = OpType::kGet;
        op.keys.push_back(pick_key(cycle_partitions_[phase_]));
        ++phase_;
      } else {
        op.type = OpType::kPut;
        op.keys.push_back(pick_key(
            static_cast<PartitionId>(rng_.uniform(partitions_))));
        op.value = make_value();
        phase_ = 0;
      }
      break;
    }
    case Pattern::kTxPut: {
      if (phase_ == 0) {
        op.type = OpType::kRoTx;
        for (PartitionId p : distinct_partitions(cfg_.tx_partitions)) {
          op.keys.push_back(pick_key(p));
        }
        phase_ = 1;
      } else {
        op.type = OpType::kPut;
        op.keys.push_back(pick_key(
            static_cast<PartitionId>(rng_.uniform(partitions_))));
        op.value = make_value();
        phase_ = 0;
      }
      break;
    }
  }
  return op;
}

}  // namespace pocc::workload
