#include "store/key_space.hpp"

#include <charconv>

#include "common/assert.hpp"
#include "common/hash.hpp"

namespace pocc::store {

KeySpace::KeySpace()
    : chunks_(new std::atomic<Entry*>[kMaxChunks]) {
  for (std::size_t i = 0; i < kMaxChunks; ++i) {
    chunks_[i].store(nullptr, std::memory_order_relaxed);
  }
  // Id 0 is always the empty key, so default-constructed messages and
  // versions (key = 0) are valid and charge zero key bytes on the wire.
  intern(std::string_view{});
}

KeySpace::~KeySpace() {
  const std::size_t n = count_.load(std::memory_order_acquire);
  for (std::size_t c = 0; c * kChunkSize < n; ++c) {
    delete[] chunks_[c].load(std::memory_order_relaxed);
  }
}

const KeySpace::Entry& KeySpace::entry(KeyId id) const {
  POCC_ASSERT_MSG(id < count_.load(std::memory_order_acquire),
                  "KeyId was never interned");
  Entry* chunk = chunks_[id >> kChunkShift].load(std::memory_order_acquire);
  return chunk[id & (kChunkSize - 1)];
}

void KeySpace::rehash_locked(std::size_t buckets) {
  table_.assign(buckets, 0);
  mask_ = buckets - 1;
  const std::size_t n = count_.load(std::memory_order_relaxed);
  for (std::size_t id = 0; id < n; ++id) {
    const Entry& e =
        chunks_[id >> kChunkShift].load(std::memory_order_relaxed)
               [id & (kChunkSize - 1)];
    std::size_t i = e.hash & mask_;
    while (table_[i] != 0) i = (i + 1) & mask_;
    table_[i] = static_cast<std::uint32_t>(id) + 1;
  }
}

KeyId KeySpace::insert_locked(std::string_view key, std::uint64_t h) {
  const std::size_t n = count_.load(std::memory_order_relaxed);
  // Grow at ~70% load (or on first use).
  if (table_.empty() || (n + 1) * 10 >= table_.size() * 7) {
    rehash_locked(table_.empty() ? 1024 : table_.size() * 2);
  }
  std::size_t i = h & mask_;
  while (table_[i] != 0) {
    const KeyId id = table_[i] - 1;
    const Entry& e =
        chunks_[id >> kChunkShift].load(std::memory_order_relaxed)
               [id & (kChunkSize - 1)];
    if (e.hash == h && e.key == key) return id;  // idempotent intern
    i = (i + 1) & mask_;
  }
  POCC_ASSERT_MSG(n < kMaxChunks * kChunkSize, "key space exhausted");
  const std::size_t chunk_idx = n >> kChunkShift;
  Entry* chunk = chunks_[chunk_idx].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Entry[kChunkSize];
    chunks_[chunk_idx].store(chunk, std::memory_order_release);
  }
  Entry& e = chunk[n & (kChunkSize - 1)];
  e.key.assign(key.data(), key.size());
  e.hash = h;
  std::uint32_t prefix = 0;
  e.prefix_part =
      parse_partition_prefix(key, &prefix) ? prefix : kNoPrefix;
  table_[i] = static_cast<std::uint32_t>(n) + 1;
  count_.store(n + 1, std::memory_order_release);
  return static_cast<KeyId>(n);
}

KeyId KeySpace::intern(std::string_view key) {
  const std::uint64_t h = fnv1a(key);
  std::lock_guard lk(mu_);
  return insert_locked(key, h);
}

KeyId KeySpace::intern_partition_key(PartitionId part, std::uint64_t rank) {
  // to_chars, not snprintf: this runs once per generated workload operation.
  char buf[48];
  auto [colon, ec1] = std::to_chars(buf, buf + sizeof(buf), part);
  POCC_ASSERT(ec1 == std::errc{});
  *colon = ':';
  auto [end, ec2] = std::to_chars(colon + 1, buf + sizeof(buf), rank);
  POCC_ASSERT(ec2 == std::errc{});
  return intern(std::string_view(buf, static_cast<std::size_t>(end - buf)));
}

KeyId KeySpace::find(std::string_view key) const {
  const std::uint64_t h = fnv1a(key);
  std::lock_guard lk(mu_);
  if (table_.empty()) return kInvalidKeyId;
  std::size_t i = h & mask_;
  while (table_[i] != 0) {
    const KeyId id = table_[i] - 1;
    const Entry& e =
        chunks_[id >> kChunkShift].load(std::memory_order_relaxed)
               [id & (kChunkSize - 1)];
    if (e.hash == h && e.key == key) return id;
    i = (i + 1) & mask_;
  }
  return kInvalidKeyId;
}

KeySpace& KeySpace::global() {
  static KeySpace instance;
  return instance;
}

}  // namespace pocc::store
