#include "store/partition_store.hpp"

#include <utility>

namespace pocc::store {

std::size_t PartitionStore::insert(Version v) {
  auto [it, created] = chains_.try_emplace(v.key);
  const std::size_t before = it->second.size();
  const std::size_t pos = it->second.insert(std::move(v));
  if (it->second.size() != before) ++versions_;  // not a duplicate
  if (it->second.size() > 1) multi_version_.insert(it->first);
  return pos;
}

const VersionChain* PartitionStore::find(const std::string& key) const {
  auto it = chains_.find(key);
  return it == chains_.end() ? nullptr : &it->second;
}

StoreStats PartitionStore::stats() const {
  StoreStats s;
  s.keys = chains_.size();
  s.versions = versions_;
  s.gc_removed = gc_removed_;
  s.multi_version_keys = multi_version_.size();
  return s;
}

}  // namespace pocc::store
