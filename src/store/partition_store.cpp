#include "store/partition_store.hpp"

#include <utility>

namespace pocc::store {

std::size_t PartitionStore::insert(Version v) {
  std::unique_lock lk(mu_);
  auto [chain, created] = chains_.try_emplace(v.key);
  const KeyId key = v.key;
  const std::size_t before = chain->size();
  const std::size_t pos = chain->insert(std::move(v));
  if (chain->size() != before) {  // not a duplicate
    ++versions_;
    // Exact 1 -> 2 transition: the key enters the multi-version set once.
    if (chain->size() == 2) multi_version_.push_back(key);
  }
  return pos;
}

const VersionChain* PartitionStore::find(KeyId key) const {
  return chains_.find(key);
}

void PartitionStore::rebuild_multi_version() {
  multi_version_.clear();
  for (const auto& [key, chain] : chains_.entries()) {
    if (chain.size() > 1) multi_version_.push_back(key);
  }
}

StoreStats PartitionStore::stats() const {
  std::shared_lock lk(mu_);
  StoreStats s;
  s.keys = chains_.size();
  s.versions = versions_;
  s.gc_removed = gc_removed_;
  s.multi_version_keys = multi_version_.size();
  return s;
}

}  // namespace pocc::store
