#include "store/version_chain.hpp"

#include <utility>

namespace pocc::store {

std::size_t VersionChain::insert(Version v) {
  // Common case: the new version is the freshest (updates replicate in
  // timestamp order), so scan from the head.
  std::size_t pos = 0;
  while (pos < versions_.size() && versions_[pos].fresher_than(v)) ++pos;
  if (pos < versions_.size() && versions_[pos].ut == v.ut &&
      versions_[pos].sr == v.sr) {
    return pos;  // duplicate delivery: idempotent
  }
  versions_.insert(versions_.begin() + static_cast<std::ptrdiff_t>(pos),
                   std::move(v));
  return pos;
}

}  // namespace pocc::store
