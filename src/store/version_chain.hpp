// Per-key chain of versions, ordered freshest-first by the LWW (ut, sr) order.
//
// POCC reads only ever touch the head (the freshest version); Cure* reads
// search the chain for the freshest *stable* version, paying one hop per
// version skipped — the resource-efficiency difference §V-B measures.
#pragma once

#include <cstdint>
#include <vector>

#include "store/version.hpp"

namespace pocc::store {

/// Result of a visibility-filtered lookup.
struct ChainLookup {
  const Version* version = nullptr;  // chosen version (nullptr: none visible)
  std::uint32_t hops = 0;            // versions inspected (CPU cost proxy)
  std::uint32_t fresher = 0;         // versions fresher than the chosen one
};

class VersionChain {
 public:
  /// Insert a version, keeping freshest-first order. Duplicate (ut, sr) pairs
  /// are idempotently ignored (replication is at-least-once safe).
  /// Returns the insert position (0 == new head).
  std::size_t insert(Version v);

  /// Freshest version, or nullptr when the chain is empty.
  [[nodiscard]] const Version* freshest() const {
    return versions_.empty() ? nullptr : &versions_.front();
  }

  /// Freshest version satisfying `visible`. Counts hops and fresher-but-
  /// invisible versions for the staleness statistics of §V-B.
  template <typename Pred>
  [[nodiscard]] ChainLookup freshest_where(Pred&& visible) const {
    ChainLookup r;
    for (const Version& v : versions_) {
      ++r.hops;
      if (visible(v)) {
        r.version = &v;
        return r;
      }
      ++r.fresher;
    }
    return r;
  }

  /// Number of versions NOT satisfying `stable` (the "unmerged" count of
  /// §V-B's staleness definition).
  template <typename Pred>
  [[nodiscard]] std::uint32_t count_unstable(Pred&& stable) const {
    std::uint32_t n = 0;
    for (const Version& v : versions_) {
      if (!stable(v)) ++n;
    }
    return n;
  }

  /// Garbage collection (§IV-B): walk freshest-to-oldest and keep everything
  /// up to and including the first version satisfying `reachable_floor`
  /// (the oldest version that an active transaction could still read);
  /// drop the rest. Returns the number of versions removed.
  template <typename Pred>
  std::size_t gc(Pred&& reachable_floor) {
    for (std::size_t i = 0; i < versions_.size(); ++i) {
      if (reachable_floor(versions_[i])) {
        const std::size_t removed = versions_.size() - (i + 1);
        versions_.resize(i + 1);
        return removed;
      }
    }
    return 0;  // no version is at/below the floor yet: keep everything
  }

  /// Remove all versions matching `pred`. Returns the number removed.
  template <typename Pred>
  std::size_t erase_if(Pred&& pred) {
    const std::size_t before = versions_.size();
    std::erase_if(versions_, pred);
    return before - versions_.size();
  }

  [[nodiscard]] std::size_t size() const { return versions_.size(); }
  [[nodiscard]] bool empty() const { return versions_.empty(); }
  [[nodiscard]] const std::vector<Version>& versions() const {
    return versions_;
  }

 private:
  std::vector<Version> versions_;  // freshest first
};

}  // namespace pocc::store
