// Item version record (paper §IV-A): d = <k, v, sr, ut, dv>.
#pragma once

#include <string>

#include "common/types.hpp"
#include "vclock/version_vector.hpp"

namespace pocc::store {

/// One version of a data item. The key travels as an interned KeyId (see
/// key_space.hpp) — wire-size accounting still charges the original key
/// bytes, so the protocol's metadata model is unchanged.
struct Version {
  KeyId key = 0;      // k: item key (interned)
  std::string value;  // v: item value
  DcId sr = 0;        // source replica: DC where the PUT was executed
  Timestamp ut = 0;   // update time: physical timestamp at creation
  VersionVector dv;   // dependency vector: potential deps, one entry per DC
  /// HA-POCC (§IV-C): true if created by a client operating optimistically.
  /// Pessimistic sessions may only see such local items once they are stable.
  bool opt_origin = false;

  /// Last-writer-wins total order (§IV-B): higher update time wins; ties are
  /// broken by source replica id, *lowest* wins.
  [[nodiscard]] bool fresher_than(const Version& other) const {
    if (ut != other.ut) return ut > other.ut;
    return sr < other.sr;
  }

  /// Effective commit vector: dv with the source-replica entry raised to the
  /// version's own update time. `cv(d) <= GSS` is Cure's stability test —
  /// all dependencies received *and* the version itself within the stable cut.
  [[nodiscard]] VersionVector commit_vector() const {
    VersionVector cv = dv;
    cv.raise(sr, ut);
    return cv;
  }
};

/// The implicit initial version of an unwritten key: empty value, zero
/// timestamp, no dependencies. Keys are logically pre-loaded with this (the
/// paper pre-populates 1M keys per partition; representing them implicitly
/// keeps memory bounded at simulation scale).
inline Version initial_version(KeyId key, std::uint32_t num_dcs) {
  Version v;
  v.key = key;
  v.sr = 0;
  v.ut = 0;
  v.dv = VersionVector(num_dcs);
  return v;
}

}  // namespace pocc::store
