// Multi-version key-value storage for one partition (paper §II-C: "We assume
// a multiversion data store... The system periodically garbage-collects old
// versions of items.").
//
// Keys that were never written are logically present with an implicit initial
// version (empty value, zero timestamp) so the paper's pre-loaded 1M-key
// dataset does not need to be materialized.
//
// Chains are keyed by interned KeyId in an open-addressing flat map (see
// flat_key_map.hpp): a lookup costs one u32 mix and a short linear probe,
// instead of hashing and comparing a heap-allocated string.
//
// Concurrency (one-writer / concurrent-reader): each partition is owned by
// exactly one worker thread (rt::NodeGroup pins partitions to workers), and
// only the owner ever mutates the store. Mutators (insert/gc/purge_if) take
// the per-shard writer lock; foreign threads read through the shared-locked
// read_chain()/read_chains()/stats() APIs. The owner's plain reads
// (find()/chains()/multi_version_keys()) stay lock-free: the owner is the
// only writer, so its unlocked reads can never race a mutation. There is no
// global lock anywhere — contention is per shard, and in steady state the
// writer lock is uncontended. The single-threaded simulator pays the
// uncontended lock on mutators too; measured on perf_smoke this is inside
// run-to-run noise (~0-2% of wall), so one store serves every host rather
// than templating the lock away.
#pragma once

#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "store/flat_key_map.hpp"
#include "store/version_chain.hpp"

namespace pocc::store {

/// Aggregate storage statistics (feeds the staleness/occupancy metrics).
struct StoreStats {
  std::uint64_t keys = 0;            // keys with at least one explicit version
  std::uint64_t versions = 0;        // total explicit versions
  std::uint64_t gc_removed = 0;      // versions removed by GC so far
  std::uint64_t multi_version_keys = 0;
};

class PartitionStore {
 public:
  // ----- owner-thread API (the one writer) -----

  /// Insert a version into its key's chain. Returns the insert position
  /// (0 == the new version is the key's freshest).
  std::size_t insert(Version v);

  /// Chain for `key`, or nullptr if the key has never been written.
  /// Owner-thread only: unlocked (the owner is the sole writer); foreign
  /// threads must use read_chain().
  [[nodiscard]] const VersionChain* find(KeyId key) const;

  /// GC pass over keys with more than one version: for each chain, retain the
  /// newest version whose `reachable_floor` holds plus everything fresher
  /// (see VersionChain::gc). Returns versions removed.
  template <typename Pred>
  std::uint64_t gc(Pred&& reachable_floor) {
    std::unique_lock lk(mu_);
    std::uint64_t total_removed = 0;
    for (std::size_t i = 0; i < multi_version_.size();) {
      VersionChain* chain = chains_.find(multi_version_[i]);
      POCC_ASSERT(chain != nullptr);
      total_removed += chain->gc(reachable_floor);
      if (chain->size() <= 1) {
        multi_version_[i] = multi_version_.back();
        multi_version_.pop_back();
      } else {
        ++i;
      }
    }
    gc_removed_ += total_removed;
    versions_ -= total_removed;
    return total_removed;
  }

  /// Remove every version matching `pred` from every chain (HA-POCC's
  /// lost-update discard, §III-B). Returns versions removed.
  template <typename Pred>
  std::uint64_t purge_if(Pred&& pred) {
    std::unique_lock lk(mu_);
    std::uint64_t removed = 0;
    for (auto& [key, chain] : chains_.entries()) {
      removed += chain.erase_if(pred);
    }
    rebuild_multi_version();
    versions_ -= removed;
    return removed;
  }

  /// All chains, densely packed (checker/convergence inspection).
  /// Owner-thread (or post-shutdown) only.
  [[nodiscard]] const std::vector<std::pair<KeyId, VersionChain>>& chains()
      const {
    return chains_.entries();
  }

  /// Keys with >1 version (staleness denominator; unordered). Owner-thread
  /// only.
  [[nodiscard]] const std::vector<KeyId>& multi_version_keys() const {
    return multi_version_;
  }

  // ----- foreign-reader API (any thread, concurrent with the writer) -----

  /// Read `key`'s chain under the shared lock: `fn(const VersionChain*)` is
  /// invoked with nullptr when the key was never written. The pointer is
  /// valid only inside `fn` — a concurrent insert may grow the map after.
  template <typename Fn>
  void read_chain(KeyId key, Fn&& fn) const {
    std::shared_lock lk(mu_);
    fn(static_cast<const VersionChain*>(chains_.find(key)));
  }

  /// Visit every chain under the shared lock (live convergence probes).
  template <typename Fn>
  void read_chains(Fn&& fn) const {
    std::shared_lock lk(mu_);
    fn(chains_.entries());
  }

  /// Safe from any thread (shared-locked against the writer).
  [[nodiscard]] StoreStats stats() const;

 private:
  void rebuild_multi_version();

  // Writer lock: exclusive on mutation, shared for foreign readers, not
  // taken by owner reads (single-writer invariant, see file header).
  mutable std::shared_mutex mu_;
  FlatKeyMap<VersionChain> chains_;
  std::vector<KeyId> multi_version_;
  std::uint64_t versions_ = 0;
  std::uint64_t gc_removed_ = 0;
};

}  // namespace pocc::store
