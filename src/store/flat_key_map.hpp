// Open-addressing hash map keyed by KeyId.
//
// Replaces std::unordered_map<std::string, T> on the PartitionStore hot path:
// no per-node allocation, no string hashing/compare — a Fibonacci-mixed u32
// probe into a flat index table pointing at densely packed entries. Entries
// are never erased (version chains outlive their contents), which keeps the
// table tombstone-free; dense packing makes full scans (GC, convergence
// checks) cache-friendly.
//
// Growth invalidates pointers into the map (like unordered_map iterators);
// callers hold lookup results only within one handler, never across inserts.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace pocc::store {

template <typename T>
class FlatKeyMap {
 public:
  using Entry = std::pair<KeyId, T>;

  /// Value for `key`, default-constructing it if absent. Second: `true` when
  /// the entry was created by this call. The hit path (steady-state inserts
  /// to existing keys) never grows or rehashes.
  std::pair<T*, bool> try_emplace(KeyId key) {
    std::size_t i = 0;
    if (!index_.empty()) {
      i = bucket_of(key);
      while (index_[i] != kEmpty) {
        Entry& e = dense_[index_[i]];
        if (e.first == key) return {&e.second, false};
        i = (i + 1) & mask_;
      }
    }
    if (index_.empty() || (dense_.size() + 1) * 10 >= index_.size() * 7) {
      grow();
      i = bucket_of(key);
      while (index_[i] != kEmpty) i = (i + 1) & mask_;
    }
    index_[i] = static_cast<std::uint32_t>(dense_.size());
    dense_.emplace_back(key, T{});
    return {&dense_.back().second, true};
  }

  [[nodiscard]] T* find(KeyId key) {
    return const_cast<T*>(std::as_const(*this).find(key));
  }
  [[nodiscard]] const T* find(KeyId key) const {
    if (index_.empty()) return nullptr;
    std::size_t i = bucket_of(key);
    while (index_[i] != kEmpty) {
      const Entry& e = dense_[index_[i]];
      if (e.first == key) return &e.second;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  /// Densely packed entries in insertion order (iteration, GC sweeps).
  [[nodiscard]] const std::vector<Entry>& entries() const { return dense_; }
  [[nodiscard]] std::vector<Entry>& entries() { return dense_; }

  [[nodiscard]] std::size_t size() const { return dense_.size(); }
  [[nodiscard]] bool empty() const { return dense_.empty(); }

 private:
  static constexpr std::uint32_t kEmpty = 0xffffffffu;

  [[nodiscard]] std::size_t bucket_of(KeyId key) const {
    // Fibonacci mix: dense ids spread over the table's high-entropy bits.
    return (static_cast<std::uint64_t>(key) * 0x9e3779b97f4a7c15ULL >> 32) &
           mask_;
  }

  void grow() {
    const std::size_t buckets = index_.empty() ? 64 : index_.size() * 2;
    index_.assign(buckets, kEmpty);
    mask_ = buckets - 1;
    for (std::size_t d = 0; d < dense_.size(); ++d) {
      std::size_t i = bucket_of(dense_[d].first);
      while (index_[i] != kEmpty) i = (i + 1) & mask_;
      index_[i] = static_cast<std::uint32_t>(d);
    }
  }

  std::vector<Entry> dense_;
  std::vector<std::uint32_t> index_;
  std::size_t mask_ = 0;
};

}  // namespace pocc::store
