// Key interner: maps key strings to dense KeyIds (simulation-host
// optimization, see docs/DESIGN.md).
//
// Before interning, every simulated operation re-allocated, copied and
// re-hashed its std::string key at each hop of
//   workload -> client -> message -> server -> PartitionStore.
// The interner pays the string cost exactly once per unique key; every later
// hop carries a 4-byte KeyId. The original key bytes stay recorded per id, so
// wire-size accounting (§V metadata fairness) and partition placement are
// byte-for-byte identical to the uninterned system. Nothing protocol-visible
// changes: dependency/version vectors, timestamps and values are untouched.
//
// Concurrency: `intern` (and the string-keyed `find`) serialize on a mutex.
// Callers span threads freely — the workload/client boundary, the TCP
// transport thread (codec re-interning on decode) and every rt::NodeGroup
// worker. Per-id lookups (`name`, `hash_of`, `partition`) are lock-free:
// entries live in fixed-size chunks whose pointers are published with
// release semantics before the entry count is (release-)advanced, so any
// thread that obtained an id — through a queue, a lock, or directly from
// intern() — observes the fully-constructed entry. Stressed under TSan by
// tests/store_concurrency_test.cpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"

namespace pocc::store {

class KeySpace {
 public:
  KeySpace();
  ~KeySpace();

  KeySpace(const KeySpace&) = delete;
  KeySpace& operator=(const KeySpace&) = delete;

  /// Id for `key`, interning it first if unseen. Idempotent: the same string
  /// always yields the same id. Ids are dense: 0, 1, 2, ... — id 0 is always
  /// the empty key (pre-interned), so zero-initialized KeyId fields are valid.
  KeyId intern(std::string_view key);

  /// Intern the canonical workload key "<partition>:<rank>" without building
  /// a std::string (hot path of the workload generators).
  KeyId intern_partition_key(PartitionId part, std::uint64_t rank);

  /// Id for `key` if already interned, kInvalidKeyId otherwise.
  [[nodiscard]] KeyId find(std::string_view key) const;

  /// Original key bytes for `id`. The view stays valid for the interner's
  /// lifetime (entries are never moved or freed).
  [[nodiscard]] std::string_view name(KeyId id) const {
    return entry(id).key;
  }

  /// Byte length of the original key (wire-size accounting).
  [[nodiscard]] std::size_t name_size(KeyId id) const {
    return entry(id).key.size();
  }

  /// FNV-1a hash of the original key bytes, computed once at intern time.
  [[nodiscard]] std::uint64_t hash_of(KeyId id) const { return entry(id).hash; }

  /// Partition placement for `id` — identical to
  /// partition_of(name(id), partitions, scheme) but O(1): the decimal
  /// "<partition>:" prefix and the hash are parsed/computed at intern time.
  [[nodiscard]] PartitionId partition(KeyId id, std::uint32_t partitions,
                                      PartitionScheme scheme) const {
    const Entry& e = entry(id);
    if (scheme == PartitionScheme::kPrefix && e.prefix_part != kNoPrefix) {
      return static_cast<PartitionId>(e.prefix_part % partitions);
    }
    return static_cast<PartitionId>(e.hash % partitions);
  }

  /// Number of interned keys.
  [[nodiscard]] std::size_t size() const {
    return count_.load(std::memory_order_acquire);
  }

  /// Process-wide interner shared by every host (simulator and runtime).
  static KeySpace& global();

 private:
  struct Entry {
    std::string key;
    std::uint64_t hash = 0;
    // Parsed "<part>:" prefix. 64-bit so the sentinel cannot collide with a
    // legitimate 32-bit prefix value.
    std::uint64_t prefix_part = kNoPrefix;
  };

  static constexpr std::uint64_t kNoPrefix = ~std::uint64_t{0};
  static constexpr std::size_t kChunkShift = 16;  // 65536 entries per chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
  static constexpr std::size_t kMaxChunks = 1 << 15;  // ~2.1B keys

  [[nodiscard]] const Entry& entry(KeyId id) const;
  KeyId insert_locked(std::string_view key, std::uint64_t hash);
  void rehash_locked(std::size_t buckets);

  mutable std::mutex mu_;
  // Open-addressing id lookup (guarded by mu_): bucket holds id + 1, 0 empty.
  std::vector<std::uint32_t> table_;
  std::size_t mask_ = 0;
  std::atomic<std::size_t> count_{0};
  std::unique_ptr<std::atomic<Entry*>[]> chunks_;
};

/// Shorthand for interning against the global KeySpace (tests, examples).
inline KeyId intern_key(std::string_view key) {
  return KeySpace::global().intern(key);
}

/// Original key bytes of `id` as an owned string (diagnostics, test output).
inline std::string key_name(KeyId id) {
  return std::string(KeySpace::global().name(id));
}

}  // namespace pocc::store
