// HA-POCC — highly available POCC (paper §III-B and §IV-C).
//
// Normal operation is plain POCC. In addition:
//   * An infrequent stabilization protocol (the same VV-min exchange Cure
//     runs, but at a much longer period) maintains a Global Stable Snapshot,
//     kept only so the system can *fall back* to a pessimistic protocol.
//   * Requests parked for longer than a configurable timeout indicate a
//     suspected network partition: the server closes the client's session
//     (SessionClosed); the client re-initializes in pessimistic mode.
//   * Pessimistic sessions are served with Cure's visibility rules. Local
//     items created by *optimistic* clients may depend on unreplicated remote
//     items, so they carry an opt_origin tag and are visible to pessimistic
//     sessions only once stable (§IV-C).
//   * Garbage collection follows Cure's rule (keep the oldest version the
//     pessimistic protocol could access).
//   * After an unrecoverable DC loss, discard_lost_updates() drops versions
//     that depend on updates that will never arrive (the "lost update"
//     phenomenon, §III-B), letting the system resume optimistic operation.
#pragma once

#include "pocc/pocc_server.hpp"

namespace pocc {

class HaPoccServer : public PoccServer {
 public:
  HaPoccServer(NodeId self, const TopologyConfig& topology,
               const ProtocolConfig& protocol, const ServiceConfig& service,
               server::Context& ctx);

  void start() override;
  void recover() override {
    PoccServer::recover();
    stab_reports_.clear();  // per-round aggregation is RAM; GSS survives
  }
  Duration on_timer(std::uint64_t timer_id) override;

  [[nodiscard]] const VersionVector& gss() const { return gss_; }
  [[nodiscard]] std::uint64_t sessions_closed() const {
    return sessions_closed_;
  }

  /// §III-B lost-update recovery: drop every version that depends on an
  /// update from `lost_dc` that this node never received, and cap the version
  /// vector entry so the system can operate without the failed DC. Returns
  /// the number of versions discarded.
  std::uint64_t discard_lost_updates(DcId lost_dc);

 protected:
  // --- per-session protocol switch ---
  [[nodiscard]] bool get_ready(const proto::GetReq& req) const override;
  proto::ReadItem choose_get_version(const proto::GetReq& req) override;
  [[nodiscard]] VersionVector compute_tx_snapshot(
      const proto::RoTxReq& req) const override;
  [[nodiscard]] bool slice_visible(const store::Version& v,
                                   const VersionVector& tv,
                                   bool pessimistic) const override;
  [[nodiscard]] std::uint32_t count_unmerged(
      const store::VersionChain& chain) const override;

  /// §IV-C: a local item created by an optimistic client is shown to
  /// pessimistic sessions only once it is stable. Slices test stability
  /// against the transaction snapshot TV (whose remote entries are
  /// max(GSS at coordination time, client-observed RDV)) rather than this
  /// node's current GSS — a node-local test breaks snapshot consistency
  /// when sibling slice nodes hold skewed GSS views (see ReplicaBase).
  [[nodiscard]] bool visible_to_pessimistic(
      const store::Version& v, const VersionVector& tv) const override;
  [[nodiscard]] bool mark_opt_origin(const proto::PutReq& req) const override {
    return !req.pessimistic;
  }

  // --- partition detection (§III-B) ---
  [[nodiscard]] Duration park_deadline() const override {
    return protocol_.block_timeout_us;
  }
  void on_park_timeout(ClientId client, Duration blocked_us) override;
  void on_slice_timeout(std::uint64_t tx_id, NodeId coordinator,
                        Duration blocked_us) override;

  // --- Cure-style GC (§IV-C) ---
  [[nodiscard]] VersionVector gc_watermark() const override { return gss_; }
  [[nodiscard]] bool gc_version_at_floor(
      const store::Version& v, const VersionVector& gv) const override {
    return v.commit_vector().leq(gv);
  }

  // --- infrequent stabilization ---
  Duration on_stab_report(const proto::StabReport& msg) override;
  Duration on_gss_broadcast(const proto::GssBroadcast& msg) override;

  [[nodiscard]] bool stable(const store::Version& v) const;

  VersionVector gss_;
  std::unordered_map<PartitionId, VersionVector> stab_reports_;
  std::uint64_t sessions_closed_ = 0;
};

}  // namespace pocc
