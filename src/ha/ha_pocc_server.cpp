#include "ha/ha_pocc_server.hpp"

namespace pocc {

HaPoccServer::HaPoccServer(NodeId self, const TopologyConfig& topology,
                           const ProtocolConfig& protocol,
                           const ServiceConfig& service, server::Context& ctx)
    : PoccServer(self, topology, protocol, service, ctx),
      gss_(topology.num_dcs) {}

void HaPoccServer::start() {
  PoccServer::start();
  ctx_.set_timer(protocol_.ha_stabilization_interval_us,
                 server::kTimerStabilization);
}

Duration HaPoccServer::on_timer(std::uint64_t timer_id) {
  if (timer_id != server::kTimerStabilization) {
    return PoccServer::on_timer(timer_id);
  }
  work_ = 0;
  // Same stabilization exchange Cure runs, but at ha_stabilization_interval
  // (§IV-C: "HA-POCC runs this stabilization protocol much less frequently
  // than Cure, because HA-POCC only needs the GSS ... during a partition").
  charge(service_.stabilization_us);
  if (self_.part == 0) {
    on_stab_report(proto::StabReport{self_, vv_});
  } else {
    ctx_.send(NodeId{local_dc(), 0}, proto::StabReport{self_, vv_});
  }
  ctx_.set_timer(protocol_.ha_stabilization_interval_us,
                 server::kTimerStabilization);
  return work_;
}

Duration HaPoccServer::on_stab_report(const proto::StabReport& msg) {
  charge(service_.stabilization_us);
  POCC_ASSERT(self_.part == 0);
  stab_reports_[msg.from.part] = msg.vv;
  if (stab_reports_.size() == topology_.partitions_per_dc) {
    VersionVector gss = stab_reports_.begin()->second;
    for (const auto& [part, vv] : stab_reports_) gss.merge_min(vv);
    for (PartitionId p = 0; p < topology_.partitions_per_dc; ++p) {
      if (p == self_.part) continue;
      ctx_.send(NodeId{local_dc(), p}, proto::GssBroadcast{gss});
    }
    on_gss_broadcast(proto::GssBroadcast{gss});
  }
  return work_;
}

Duration HaPoccServer::on_gss_broadcast(const proto::GssBroadcast& msg) {
  charge(service_.stabilization_us);
  gss_.merge_max(msg.gss);
  poke();  // pessimistic reads waiting on the GSS may now proceed
  return work_;
}

bool HaPoccServer::stable(const store::Version& v) const {
  if (v.sr == local_dc() && !v.opt_origin) return true;
  // Skip the local coordinate (see CureServer::stable): it names dependencies
  // on this DC's own items, visible here regardless of stabilization lag.
  // For opt-origin local items this is exactly the §IV-C condition — every
  // *remote* dependency replicated and stable in this DC.
  return gss_.dominates(v.commit_vector(), skip_local());
}

bool HaPoccServer::visible_to_pessimistic(const store::Version& v,
                                          const VersionVector& tv) const {
  // §IV-C: "servers can recognize a local item d created by an optimistic
  // client and make d visible to pessimistic clients only if d is stable
  // according to the pessimistic protocol." Stability is judged against the
  // transaction snapshot, not this node's GSS: TV's remote entries are
  // bounded by max(GSS at the coordinator, the client's own observed RDV),
  // so the §IV-C hazard (depending on unreplicated remote items) stays
  // excluded while every slice node of one transaction applies the same
  // predicate — required for the snapshot property.
  if (v.sr == local_dc() && v.opt_origin) {
    return v.commit_vector().leq(tv);
  }
  return true;
}

bool HaPoccServer::get_ready(const proto::GetReq& req) const {
  if (req.pessimistic) {
    return gss_.dominates(req.rdv, skip_local());
  }
  return PoccServer::get_ready(req);
}

proto::ReadItem HaPoccServer::choose_get_version(const proto::GetReq& req) {
  if (!req.pessimistic) {
    return PoccServer::choose_get_version(req);
  }
  // Pessimistic session: serve like Cure — freshest *stable* version, with
  // the opt-origin restriction folded into stability.
  proto::ReadItem item;
  item.key = req.key;
  const store::VersionChain* chain = store_.find(req.key);
  if (chain == nullptr || chain->empty()) {
    item.found = false;
    item.sr = 0;
    item.ut = 0;
    item.dv = VersionVector(topology_.num_dcs);
    charge(service_.version_hop_us);
    return item;
  }
  const auto lookup = chain->freshest_where([this](const store::Version& v) {
    return stable(v);
  });
  charge(service_.version_hop_us * static_cast<Duration>(lookup.hops));
  if (lookup.version == nullptr) {
    item.found = false;
    item.sr = 0;
    item.ut = 0;
    item.dv = VersionVector(topology_.num_dcs);
  } else {
    item.found = true;
    item.value = lookup.version->value;
    item.sr = lookup.version->sr;
    item.ut = lookup.version->ut;
    item.dv = lookup.version->dv;
  }
  item.fresher_versions = lookup.fresher;
  item.unmerged_versions = count_unmerged(*chain);
  return item;
}

VersionVector HaPoccServer::compute_tx_snapshot(
    const proto::RoTxReq& req) const {
  if (!req.pessimistic) {
    return PoccServer::compute_tx_snapshot(req);
  }
  VersionVector tv = VersionVector::max_of(gss_, req.rdv);
  tv.raise(local_dc(), vv_[local_dc()]);
  return tv;
}

bool HaPoccServer::slice_visible(const store::Version& v,
                                 const VersionVector& tv,
                                 bool pessimistic) const {
  if (pessimistic) {
    // Full commit-vector rule — see CureServer::slice_visible for why the
    // local coordinate must be part of the cut (sibling-slice consistency)
    // and why that cannot hide the client's causal past (TV covers RDV).
    return v.commit_vector().leq(tv);
  }
  return PoccServer::slice_visible(v, tv, pessimistic);
}

std::uint32_t HaPoccServer::count_unmerged(
    const store::VersionChain& chain) const {
  return chain.count_unstable([this](const store::Version& v) {
    return stable(v);
  });
}

void HaPoccServer::on_park_timeout(ClientId client, Duration blocked_us) {
  // §III-B: blocking beyond the timeout indicates a network partition; close
  // the session so the client re-initializes pessimistically.
  blocking_.record_op(blocked_us);
  ++sessions_closed_;
  ctx_.reply(client,
             proto::SessionClosed{client, "request blocked beyond timeout"});
}

void HaPoccServer::on_slice_timeout(std::uint64_t tx_id, NodeId coordinator,
                                    Duration blocked_us) {
  ++sessions_closed_;
  if (coordinator == self_) {
    auto it = pending_tx_.find(tx_id);
    if (it != pending_tx_.end()) {
      ctx_.reply(it->second.client,
                 proto::SessionClosed{it->second.client,
                                      "transaction slice timed out"});
      pending_tx_.erase(it);
    }
    return;
  }
  proto::SliceReply reply;
  reply.tx_id = tx_id;
  reply.blocked_us = blocked_us;
  reply.aborted = true;
  ctx_.send(coordinator, std::move(reply));
}

std::uint64_t HaPoccServer::discard_lost_updates(DcId lost_dc) {
  POCC_ASSERT(lost_dc < topology_.num_dcs);
  const Timestamp received_up_to = vv_[lost_dc];
  // Drop versions depending on updates from the lost DC that never arrived
  // here. Updates *from* healthy DCs can be discarded too — exactly the cost
  // §III-B describes for optimistic operation after a DC loss.
  return store_.purge_if([&](const store::Version& v) {
    return v.dv[lost_dc] > received_up_to;
  });
}

}  // namespace pocc
