// Loosely synchronized per-node physical clocks (paper §IV: "each server is
// equipped with a physical clock, which provides monotonically increasing
// timestamps ... loosely synchronized by a time synchronization protocol,
// such as NTP. The correctness of our protocol does not depend on the
// synchronization precision.")
//
// The clock model adds a constant per-node offset, a linear drift and optional
// per-read jitter to a reference time source, then enforces strict
// monotonicity (consecutive reads differ by at least 1 microsecond), which the
// last-writer-wins timestamp order relies on.
#pragma once

#include <cstdint>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace pocc {

/// A skewed, strictly monotonic physical clock.
///
/// `read(reference_now)` maps a reference ("true") time to this node's local
/// clock value. In the simulator the reference is virtual time; in the
/// threaded runtime it is steady_clock microseconds.
class PhysicalClock {
 public:
  /// Draws offset/drift for this node from `cfg` using `rng`.
  PhysicalClock(const ClockConfig& cfg, Rng& rng);

  /// Construct with explicit skew parameters (tests).
  PhysicalClock(Timestamp offset_us, double drift_ppm);

  /// Local clock value for reference time `reference_now`. Strictly monotonic:
  /// consecutive calls return strictly increasing values even if the
  /// reference time stalls.
  Timestamp read(Timestamp reference_now);

  /// Same as read() but never advances past what skew dictates; used when the
  /// caller only needs to *observe* the clock without creating a timestamp.
  [[nodiscard]] Timestamp peek(Timestamp reference_now) const;

  /// NTP-style resynchronization: slews the offset toward zero by `fraction`.
  void resync(double fraction = 1.0);

  // --- fault injection (src/fault/): bounded skew/drift ramps ---
  /// Shift the constant offset by `delta_us` (positive or negative). Reads
  /// stay strictly monotonic: a backwards slew makes the clock crawl
  /// (+1 us per read) until true time catches up, like a slewing NTP daemon.
  void slew(Timestamp delta_us) { offset_us_ += delta_us; }
  /// Adjust the drift rate by `delta_ppm` (ramps are applied and later
  /// removed by the fault injector, so drift stays bounded).
  void adjust_drift(double delta_ppm) { drift_ppm_ += delta_ppm; }

  [[nodiscard]] Timestamp offset_us() const { return offset_us_; }
  [[nodiscard]] double drift_ppm() const { return drift_ppm_; }

 private:
  [[nodiscard]] Timestamp skewed(Timestamp reference_now) const;

  Timestamp offset_us_ = 0;
  double drift_ppm_ = 0.0;
  Duration read_jitter_us_ = 0;
  Rng jitter_rng_;
  Timestamp last_ = kTimestampMin;
};

}  // namespace pocc
