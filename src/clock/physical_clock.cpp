#include "clock/physical_clock.hpp"

#include <algorithm>
#include <cmath>

namespace pocc {

PhysicalClock::PhysicalClock(const ClockConfig& cfg, Rng& rng)
    : offset_us_(cfg.offset_bias_us +
                 static_cast<Timestamp>(rng.normal(0.0, cfg.offset_sigma_us))),
      drift_ppm_(rng.normal(0.0, cfg.drift_ppm_sigma)),
      read_jitter_us_(cfg.read_jitter_us),
      jitter_rng_(rng.split()) {}

PhysicalClock::PhysicalClock(Timestamp offset_us, double drift_ppm)
    : offset_us_(offset_us), drift_ppm_(drift_ppm), jitter_rng_(0) {}

Timestamp PhysicalClock::skewed(Timestamp reference_now) const {
  const double drifted =
      static_cast<double>(reference_now) * (drift_ppm_ * 1e-6);
  return reference_now + offset_us_ + static_cast<Timestamp>(drifted);
}

Timestamp PhysicalClock::read(Timestamp reference_now) {
  Timestamp t = skewed(reference_now);
  if (read_jitter_us_ > 0) {
    t += static_cast<Timestamp>(
        jitter_rng_.uniform(static_cast<std::uint64_t>(read_jitter_us_) + 1));
  }
  last_ = std::max(last_ + 1, t);
  return last_;
}

Timestamp PhysicalClock::peek(Timestamp reference_now) const {
  return std::max(last_, skewed(reference_now));
}

void PhysicalClock::resync(double fraction) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  offset_us_ -= static_cast<Timestamp>(
      std::round(static_cast<double>(offset_us_) * fraction));
}

}  // namespace pocc
