#include "net/chaos.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace pocc::net {

namespace {

/// Ethernet-ish payload per TCP segment; frames are charged loss and
/// reordering per segment, so a 1 MB value transfer faces more exposure
/// than a 40-byte heartbeat — as on a real path.
constexpr std::size_t kSegmentBytes = 1448;

std::size_t segments_of(std::size_t frame_bytes) {
  return frame_bytes == 0 ? 1 : (frame_bytes + kSegmentBytes - 1) / kSegmentBytes;
}

}  // namespace

// ------------------------------------------------------------ ChaosSchedule

ChaosSchedule::ChaosSchedule(std::uint64_t seed,
                             const TopologyConfig& topology,
                             Duration horizon_us, Duration duration_us,
                             const fault::FaultPlanLimits& limits)
    : seed_(seed), horizon_us_(horizon_us) {
  POCC_ASSERT_MSG(horizon_us > 0, "chaos schedule needs a positive horizon");
  const std::size_t n_epochs = std::max<std::size_t>(
      1, static_cast<std::size_t>((duration_us + horizon_us - 1) / horizon_us));
  epochs_.reserve(n_epochs);
  for (std::size_t e = 0; e < n_epochs; ++e) {
    fault::FaultPlan plan = fault::FaultPlan::random(
        seed + static_cast<std::uint64_t>(e), topology, horizon_us, limits);
    plan.validate(topology);
    const Timestamp epoch_base = static_cast<Timestamp>(e) * horizon_us;
    for (const fault::FaultEvent& ev : plan.events) {
      if (ev.kind == fault::FaultKind::kCrash) {
        crashes_.push_back(
            CrashWindow{ev.node, epoch_base + ev.at, ev.duration});
      }
    }
    epochs_.push_back(std::move(plan));
  }
  plan_hash_ = epochs_.front().hash();
  std::sort(crashes_.begin(), crashes_.end(),
            [](const CrashWindow& a, const CrashWindow& b) {
              return a.at < b.at;
            });
}

ChaosLinkState ChaosSchedule::state(DcId src, DcId dst, Timestamp t) const {
  ChaosLinkState s;
  if (t < 0) return s;
  const std::size_t epoch = static_cast<std::size_t>(t / horizon_us_);
  if (epoch >= epochs_.size()) return s;  // past the planned window: calm
  const Timestamp rel = t % horizon_us_;
  for (const fault::FaultEvent& ev : epochs_[epoch].events) {
    if (rel < ev.at || rel >= ev.clears_at()) continue;
    switch (ev.kind) {
      case fault::FaultKind::kPartition:
        if ((ev.dc_a == src && ev.dc_b == dst) ||
            (ev.dc_a == dst && ev.dc_b == src)) {
          s.blocked = true;
        }
        break;
      case fault::FaultKind::kAsymPartition:
        if (ev.dc_a == src && ev.dc_b == dst) s.blocked = true;
        break;
      case fault::FaultKind::kLinkDegrade:
        if (ev.dc_a == src && ev.dc_b == dst) {
          s.extra_delay_us += ev.extra_delay_us;
          s.delay_multiplier *= ev.delay_multiplier;
        }
        break;
      case fault::FaultKind::kCrash:
      case fault::FaultKind::kHeartbeatLoss:
      case fault::FaultKind::kClockSkewRamp:
        break;  // no wire-level meaning
    }
  }
  return s;
}

std::string ChaosSchedule::plan_text() const {
  return epochs_.front().to_string();
}

// ---------------------------------------------------------------- ChaosLink

ChaosLink::ChaosLink(std::uint64_t seed, ChaosProfile profile)
    : profile_(profile), rng_(seed) {}

void ChaosLink::bind_schedule(std::shared_ptr<const ChaosSchedule> schedule,
                              DcId src, DcId dst, Timestamp start_us) {
  schedule_ = std::move(schedule);
  src_ = src;
  dst_ = dst;
  start_us_ = start_us;
}

ChaosLinkState ChaosLink::timed_state(Timestamp now_us) const {
  if (schedule_ == nullptr) return {};
  return schedule_->state(src_, dst_, now_us - start_us_);
}

bool ChaosLink::blocked(Timestamp now_us) const {
  return timed_state(now_us).blocked;
}

ChaosVerdict ChaosLink::on_frame(std::size_t frame_bytes, Timestamp now_us) {
  ChaosVerdict v;
  const ChaosLinkState timed = timed_state(now_us);

  // Propagation + jitter, scaled by any active gray-link window.
  double delay = static_cast<double>(profile_.base_delay_us);
  if (profile_.jitter_mean_us > 0) {
    delay += rng_.exponential(static_cast<double>(profile_.jitter_mean_us));
  }
  delay = delay * timed.delay_multiplier +
          static_cast<double>(timed.extra_delay_us);

  // Segment loss: the kernel retransmits after an RTO, so a lost segment
  // stalls the whole stream. One RTO charge per frame with at least one
  // lost segment; a second consecutive loss (exponential backoff) doubles
  // it with the conditional probability of losing the retransmit too.
  if (profile_.loss_p > 0.0) {
    const std::size_t segs = segments_of(frame_bytes);
    const double p_any =
        1.0 - std::pow(1.0 - profile_.loss_p, static_cast<double>(segs));
    if (rng_.chance(p_any)) {
      delay += static_cast<double>(profile_.rto_penalty_us);
      if (rng_.chance(profile_.loss_p)) {
        delay += 2.0 * static_cast<double>(profile_.rto_penalty_us);
      }
    }
  }

  // Reordered segment: head-of-line blocking until the straggler lands.
  if (profile_.reorder_window_us > 0) {
    delay += static_cast<double>(
        rng_.uniform(static_cast<std::uint64_t>(profile_.reorder_window_us)));
  }

  // Serialization through the bandwidth bottleneck: the link is busy for
  // bytes/bandwidth after the previous frame's transmission finished.
  Timestamp depart = now_us;
  if (profile_.bandwidth_bytes_per_s > 0.0) {
    const double tx_us = static_cast<double>(frame_bytes) * 1e6 /
                         profile_.bandwidth_bytes_per_s;
    busy_until_us_ = std::max(busy_until_us_, now_us) +
                     static_cast<Timestamp>(std::llround(tx_us));
    depart = busy_until_us_;
  }

  Timestamp release =
      depart + static_cast<Timestamp>(std::llround(std::max(0.0, delay)));
  // FIFO clamp: a lucky frame never overtakes an unlucky predecessor —
  // exactly TCP's in-order delivery under reordering/retransmission.
  release = std::max(release, last_release_us_);
  last_release_us_ = release;
  v.delay_us = release - now_us;

  if (profile_.dup_p > 0.0 && rng_.chance(profile_.dup_p)) v.duplicate = true;
  if (profile_.reset_p > 0.0 && rng_.chance(profile_.reset_p)) v.reset = true;
  return v;
}

}  // namespace pocc::net
