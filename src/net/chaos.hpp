// Seed-deterministic wire-level fault injection for the TCP deployment.
//
// The simulator's fault fabric (fault/fault_plan.hpp) degrades a modelled
// network; this module degrades the *real* one, while staying faithful to
// what TCP actually lets an application observe. A faulty IP network under a
// TCP connection cannot reorder, drop or duplicate the frames the
// application reads — the kernel retransmits, resequences and de-dupes
// segments — so naive frame-level loss/reorder would violate the lossless
// FIFO channel the protocol assumes (§II-C) and produce *bogus* checker
// violations. What leaks through TCP instead, and what ChaosLink models:
//
//   * propagation delay + jitter        -> frames arrive late,
//   * segment loss                      -> retransmission-timeout stalls,
//   * segment reordering                -> head-of-line blocking delay,
//   * bandwidth limits                  -> serialization delay (token bucket),
//   * connection resets                 -> the peer sees EOF mid-frame and
//                                          both sides replay from a boundary,
//   * partitions (full or asymmetric)   -> the link is down for a window.
//
// Frame *duplication* is the one exception: it is only meaningful (and only
// safe) on client links, where the server's per-client op_id idempotency
// cache (net/tcp_node_host.cpp) absorbs it — a duplicated server-to-server
// SliceReply would corrupt a transaction. Profiles therefore default dup_p
// to 0 and only the client-facing harnesses raise it.
//
// Determinism: every ChaosLink owns an Rng derived from (campaign seed,
// link id); the timed fault windows come from a ChaosSchedule that
// regenerates a fault::FaultPlan from the same seed — so a soak failure
// reproduces from `--seed N` and proves itself with the plan hash, exactly
// like the simulator fuzz harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "fault/fault_plan.hpp"

namespace pocc::net {

/// Stationary degradation profile of one directed link (what the network
/// "is" between fault windows; the schedule layers timed faults on top).
struct ChaosProfile {
  /// One-way propagation delay added to every frame.
  Duration base_delay_us = 0;
  /// Mean of exponential jitter on top of the base delay.
  Duration jitter_mean_us = 0;
  /// Per-MTU-segment loss probability. A lost segment does not lose the
  /// frame (TCP retransmits); it stalls the stream for rto_penalty_us.
  double loss_p = 0.0;
  /// Stall charged when a segment of the frame needs a retransmission.
  Duration rto_penalty_us = 200'000;
  /// Segment reordering window: a reordered segment head-of-line blocks the
  /// stream for up to this long (uniform). FIFO frame order is preserved.
  Duration reorder_window_us = 0;
  /// Link bandwidth in bytes/second; 0 = unlimited. Frames are serialized
  /// through a token bucket, so a throttled link builds queueing delay.
  double bandwidth_bytes_per_s = 0.0;
  /// Probability a frame is delivered twice (client links ONLY — see above).
  double dup_p = 0.0;
  /// Per-frame probability of a spontaneous connection reset.
  double reset_p = 0.0;
};

/// Timed fault state of a directed link, derived from the active plan
/// windows at one instant.
struct ChaosLinkState {
  bool blocked = false;            // partition window covers this direction
  Duration extra_delay_us = 0;     // sum over active kLinkDegrade windows
  double delay_multiplier = 1.0;   // product over active kLinkDegrade windows
};

/// A fault::FaultPlan projected onto wall-clock time for the real cluster.
/// Replays the exact schedule format the simulator fuzzes: kPartition /
/// kAsymPartition block a direction, kLinkDegrade adds delay, kCrash is
/// exposed for the campaign runner to kill processes. Node-local kinds with
/// no wire meaning (kHeartbeatLoss, kClockSkewRamp) are ignored here.
///
/// Soaks longer than one plan horizon wrap into epochs: epoch e replays
/// FaultPlan::random(seed + e, ...), pre-generated at construction so
/// queries are const and lock-free from any thread.
class ChaosSchedule {
 public:
  /// Covers [0, duration_us) of chaos time with ceil(duration/horizon)
  /// epochs (at least one).
  ChaosSchedule(std::uint64_t seed, const TopologyConfig& topology,
                Duration horizon_us, Duration duration_us,
                const fault::FaultPlanLimits& limits = {});

  /// Fault state of the directed link src -> dst at chaos-relative time `t`.
  [[nodiscard]] ChaosLinkState state(DcId src, DcId dst, Timestamp t) const;

  /// Absolute chaos-relative crash windows (kCrash events across all
  /// epochs, times shifted by their epoch offset), sorted by time.
  struct CrashWindow {
    NodeId node;
    Timestamp at = 0;
    Duration duration = 0;
  };
  [[nodiscard]] const std::vector<CrashWindow>& crashes() const {
    return crashes_;
  }

  /// Content digest of the epoch-0 plan — the repro token printed next to
  /// the seed (`chaos_campaign --seed N` must regenerate this hash).
  [[nodiscard]] std::uint64_t plan_hash() const { return plan_hash_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] Duration horizon_us() const { return horizon_us_; }
  /// Epoch-0 plan, one event per line (artifacts / logs).
  [[nodiscard]] std::string plan_text() const;

 private:
  std::uint64_t seed_;
  Duration horizon_us_;
  std::vector<fault::FaultPlan> epochs_;
  std::vector<CrashWindow> crashes_;
  std::uint64_t plan_hash_ = 0;
};

/// What the chaos layer decided for one frame.
struct ChaosVerdict {
  Duration delay_us = 0;   // hold the frame this long before transmission
  bool duplicate = false;  // transmit the frame twice
  bool reset = false;      // tear the connection down (mid-frame RST)
};

/// Per-directed-link chaos state machine: owns the deterministic Rng, the
/// bandwidth token bucket and the FIFO release clamp. NOT thread-safe — the
/// owner (the transport's poll thread, or the proxy loop) serializes calls.
class ChaosLink {
 public:
  ChaosLink(std::uint64_t seed, ChaosProfile profile);

  /// Attach the timed fault windows: this link is the directed edge
  /// src_dc -> dst_dc, and chaos time 0 is `start_us` on the caller's
  /// monotonic clock. Without a schedule only the profile applies.
  void bind_schedule(std::shared_ptr<const ChaosSchedule> schedule, DcId src,
                     DcId dst, Timestamp start_us);

  /// True while a partition window blocks this direction.
  [[nodiscard]] bool blocked(Timestamp now_us) const;

  /// Decide the fate of one frame entering the link at `now_us`. Must be
  /// called in frame send order; release times are clamped monotone so the
  /// per-link FIFO survives every delay source.
  ChaosVerdict on_frame(std::size_t frame_bytes, Timestamp now_us);

  [[nodiscard]] const ChaosProfile& profile() const { return profile_; }

 private:
  [[nodiscard]] ChaosLinkState timed_state(Timestamp now_us) const;

  ChaosProfile profile_;
  Rng rng_;
  std::shared_ptr<const ChaosSchedule> schedule_;
  DcId src_ = 0;
  DcId dst_ = 0;
  Timestamp start_us_ = 0;
  Timestamp busy_until_us_ = 0;     // token-bucket serialization horizon
  Timestamp last_release_us_ = 0;   // FIFO clamp
};

}  // namespace pocc::net
