#include "net/tcp_client.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "common/assert.hpp"
#include "store/key_space.hpp"

namespace pocc::net {

// ---------------------------------------------------------- TcpSession ----

TcpSession::TcpSession(ClientId id, DcId dc, TcpClientPool& pool)
    : engine_(id, dc, pool.layout().topology.num_dcs,
              /*snapshot_rdv=*/pool.layout().system == rt::System::kCure),
      pool_(pool),
      res_(pool.resilience_),
      retry_rng_(0xc11e47ba0cf0ffULL ^ id) {
  history_.client = id;
  history_.dc = dc;
  history_.snapshot_rdv = pool.layout().system == rt::System::kCure;
}

void TcpSession::deliver(proto::Message m) {
  {
    std::lock_guard lk(mu_);
    if (std::holds_alternative<proto::SessionClosed>(m)) {
      closed_signal_ = true;
    } else {
      reply_ = std::move(m);
    }
  }
  cv_.notify_all();
}

template <typename M>
std::optional<M> TcpSession::await(std::uint64_t op_id, Duration timeout_us,
                                   AwaitOutcome* outcome) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(timeout_us);
  std::unique_lock lk(mu_);
  while (true) {
    if (closed_signal_) return std::nullopt;
    if (reply_.has_value()) {
      if (const M* m = std::get_if<M>(&*reply_); m != nullptr &&
                                                 m->op_id == op_id &&
                                                 m->client == id()) {
        M out = std::move(*std::get_if<M>(&*reply_));
        reply_.reset();
        return out;
      }
      if (const auto* ov = std::get_if<proto::Overloaded>(&*reply_);
          ov != nullptr && ov->op_id == op_id && outcome != nullptr) {
        // The server refused this very attempt: end it now and let the
        // retry loop pace itself by the server's hint.
        outcome->overloaded = true;
        outcome->retry_after_us = ov->retry_after_us;
        reply_.reset();
        return std::nullopt;
      }
      reply_.reset();  // stale answer to an abandoned operation
    }
    if (cv_.wait_until(lk, deadline) == std::cv_status::timeout &&
        !reply_.has_value() && !closed_signal_) {
      return std::nullopt;
    }
  }
}

template <typename Rep, typename Req>
std::optional<Rep> TcpSession::run_op(const Req& req, PartitionId part,
                                      Duration timeout_us) {
  using Clock = std::chrono::steady_clock;
  if (!res_.enabled) {
    pool_.send_to_partition(part, proto::Message{req}, 0);
    return await<Rep>(req.op_id, timeout_us);
  }
  // timeout_us is the op's DEADLINE: attempts, backoff and failover all
  // happen inside it; past it the op fails (history keeps the unanswered
  // request — acknowledged-writes accounting stays honest).
  const auto deadline = Clock::now() + std::chrono::microseconds(timeout_us);
  Duration ceiling = res_.backoff_min_us;
  for (bool first = true;; first = false) {
    auto now = Clock::now();
    if (now >= deadline) {
      ++rstats_.deadline_exhausted;
      return std::nullopt;
    }
    if (breaker_open_until_[replica_] > now &&
        breaker_open_until_[1 - replica_] <= now) {
      // Breaker open on the preferred replica: fail over. When BOTH are
      // open the send below acts as the half-open probe — the breaker
      // bounds wasted work, it never blocks the only path forward.
      replica_ = 1 - replica_;
      ++rstats_.failovers;
    }
    if (!first) ++rstats_.retries;
    const bool sent =
        pool_.send_to_partition(part, proto::Message{req}, replica_);
    AwaitOutcome oc;
    std::optional<Rep> reply;
    if (sent) {
      const Duration remaining = static_cast<Duration>(
          std::chrono::duration_cast<std::chrono::microseconds>(deadline - now)
              .count());
      reply = await<Rep>(req.op_id,
                         std::min(res_.attempt_timeout_us, remaining), &oc);
    }
    if (reply.has_value()) {
      consec_fail_[replica_] = 0;
      return reply;
    }
    {
      std::lock_guard lk(mu_);
      if (closed_signal_) return std::nullopt;  // caller re-initializes
    }
    Duration floor = res_.backoff_min_us;
    if (oc.overloaded) {
      // Shed, not lost: the op never executed. Honor the server's pacing
      // hint as the backoff floor; overload does not trip the breaker
      // (the replica is alive and answering).
      ++rstats_.overloaded;
      floor = std::max(floor, oc.retry_after_us);
    } else {
      ++rstats_.timeouts;
      if (++consec_fail_[replica_] >= res_.breaker_failures) {
        breaker_open_until_[replica_] =
            Clock::now() + std::chrono::microseconds(res_.breaker_open_us);
        consec_fail_[replica_] = 0;
        ++rstats_.breaker_opens;
      }
    }
    // Full jitter: sleep uniform over [floor, max(floor, ceiling)], then
    // double the ceiling. Capped by both the policy and the deadline.
    const Duration span = std::max<Duration>(0, ceiling - floor);
    Duration sleep_us =
        floor + (span > 0
                     ? static_cast<Duration>(retry_rng_.uniform(
                           static_cast<std::uint64_t>(span) + 1))
                     : 0);
    ceiling = std::min(ceiling * 2, res_.backoff_max_us);
    now = Clock::now();
    const Duration left = static_cast<Duration>(
        std::chrono::duration_cast<std::chrono::microseconds>(deadline - now)
            .count());
    if (left <= 0) {
      ++rstats_.deadline_exhausted;
      return std::nullopt;
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(std::min(sleep_us, left)));
  }
}

#if defined(__GNUC__) && !defined(__clang__)
// GCC 12's -Wmaybe-uninitialized misfires on the variant move loop inside
// vector reallocation when this function is fully inlined at -O2/-O3; the
// pushed value is a freshly constructed alternative.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
void TcpSession::record_session_closed() {
  // §III-B client library behaviour, mirroring rt::Session / SimClient.
  {
    std::lock_guard lk(mu_);
    closed_signal_ = false;
    reply_.reset();
  }
  engine_.reinitialize_pessimistic();
  history_.events.push_back(checker::SessionReset{});
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

TcpSession::GetResult TcpSession::get(const std::string& key,
                                      Duration timeout_us) {
  return get_id(store::intern_key(key), timeout_us);
}

TcpSession::GetResult TcpSession::get_id(KeyId key, Duration timeout_us) {
  proto::GetReq req = engine_.make_get(key);
  req.op_id = ++op_seq_;
  history_.events.push_back(req);
  GetResult r;
  auto reply =
      run_op<proto::GetReply>(req, pool_.partition_of(key), timeout_us);
  if (!reply.has_value()) {
    std::unique_lock lk(mu_);
    if (closed_signal_) {
      lk.unlock();
      record_session_closed();
      r.session_closed = true;
    }
    return r;
  }
  history_.events.push_back(*reply);
  engine_.absorb_get(*reply);
  r.ok = true;
  r.found = reply->item.found;
  r.value = reply->item.value;
  r.ut = reply->item.ut;
  r.sr = reply->item.sr;
  r.blocked_us = reply->blocked_us;
  return r;
}

TcpSession::PutResult TcpSession::put(const std::string& key,
                                      const std::string& value,
                                      Duration timeout_us) {
  return put_id(store::intern_key(key), value, timeout_us);
}

TcpSession::PutResult TcpSession::put_id(KeyId key, std::string value,
                                         Duration timeout_us) {
  proto::PutReq req = engine_.make_put(key, std::move(value));
  req.op_id = ++op_seq_;
  history_.events.push_back(req);
  PutResult r;
  auto reply =
      run_op<proto::PutReply>(req, pool_.partition_of(key), timeout_us);
  if (!reply.has_value()) {
    std::unique_lock lk(mu_);
    if (closed_signal_) {
      lk.unlock();
      record_session_closed();
      r.session_closed = true;
    }
    return r;
  }
  history_.events.push_back(*reply);
  engine_.absorb_put(*reply);
  r.ok = true;
  r.ut = reply->ut;
  r.blocked_us = reply->blocked_us;
  return r;
}

TcpSession::TxResult TcpSession::ro_tx(const std::vector<std::string>& keys,
                                       Duration timeout_us) {
  std::vector<KeyId> ids;
  ids.reserve(keys.size());
  for (const std::string& k : keys) ids.push_back(store::intern_key(k));
  return ro_tx_ids(std::move(ids), timeout_us);
}

TcpSession::TxResult TcpSession::ro_tx_ids(std::vector<KeyId> keys,
                                           Duration timeout_us) {
  proto::RoTxReq req = engine_.make_ro_tx(std::move(keys));
  req.op_id = ++op_seq_;
  history_.events.push_back(req);
  // The collocated server coordinates the transaction (§II-C): partition 0
  // plays the role of the session's home node, as in rt::Session.
  TxResult r;
  auto reply = run_op<proto::RoTxReply>(req, 0, timeout_us);
  if (!reply.has_value()) {
    std::unique_lock lk(mu_);
    if (closed_signal_) {
      lk.unlock();
      record_session_closed();
      r.session_closed = true;
    }
    return r;
  }
  history_.events.push_back(*reply);
  engine_.absorb_ro_tx(*reply);
  r.ok = true;
  r.items = std::move(reply->items);
  return r;
}

// ------------------------------------------- TcpSession (pipelined API) ----

template <typename M>
std::optional<M> TcpSession::poll_reply(std::uint64_t op_id, bool* overloaded,
                                        Duration* retry_after_us,
                                        bool* closed) {
  std::lock_guard lk(mu_);
  if (closed_signal_) {
    *closed = true;
    return std::nullopt;
  }
  if (!reply_.has_value()) return std::nullopt;
  if (const M* m = std::get_if<M>(&*reply_);
      m != nullptr && m->op_id == op_id && m->client == id()) {
    M out = std::move(*std::get_if<M>(&*reply_));
    reply_.reset();
    return out;
  }
  if (const auto* ov = std::get_if<proto::Overloaded>(&*reply_);
      ov != nullptr && ov->op_id == op_id && res_.enabled) {
    // Same contract as the blocking await: the refusal ends this attempt
    // and the server's hint paces the retry. (Ignored without resilience,
    // matching the blocking single-attempt mode.)
    *overloaded = true;
    *retry_after_us = ov->retry_after_us;
  }
  reply_.reset();  // stale answer to an abandoned operation
  return std::nullopt;
}

void TcpSession::async_begin(OpKind kind, PartitionId part,
                             Duration timeout_us) {
  async_.kind = kind;
  async_.part = part;
  async_.ceiling = res_.backoff_min_us;
  async_.deadline = std::chrono::steady_clock::now() +
                    std::chrono::microseconds(timeout_us);
}

bool TcpSession::async_send_attempt() {
  switch (async_.kind) {
    case OpKind::kGet:
      return pool_.send_to_partition(async_.part,
                                     proto::Message{async_.get_req}, replica_);
    case OpKind::kPut:
      return pool_.send_to_partition(async_.part,
                                     proto::Message{async_.put_req}, replica_);
    case OpKind::kTx:
      return pool_.send_to_partition(async_.part, proto::Message{async_.tx_req},
                                     replica_);
    case OpKind::kNone:
      break;
  }
  return false;
}

void TcpSession::async_schedule_backoff(Duration floor_us) {
  // Full jitter over [floor, max(floor, ceiling)], ceiling doubling — the
  // same policy as the blocking run_op, with the sleep replaced by a
  // wall-clock gate the next pump() honors.
  const Duration span = std::max<Duration>(0, async_.ceiling - floor_us);
  const Duration sleep_us =
      floor_us + (span > 0 ? static_cast<Duration>(retry_rng_.uniform(
                                 static_cast<std::uint64_t>(span) + 1))
                           : 0);
  async_.ceiling = std::min(async_.ceiling * 2, res_.backoff_max_us);
  async_.backoff_until = std::chrono::steady_clock::now() +
                         std::chrono::microseconds(sleep_us);
  async_.in_backoff = true;
  async_.sent = false;
}

bool TcpSession::start_get(const std::string& key, Duration timeout_us) {
  return start_get_id(store::intern_key(key), timeout_us);
}

bool TcpSession::start_get_id(KeyId key, Duration timeout_us) {
  if (async_.kind != OpKind::kNone) return false;
  proto::GetReq req = engine_.make_get(key);
  req.op_id = ++op_seq_;
  history_.events.push_back(req);
  async_ = AsyncOp{};
  async_.get_req = std::move(req);
  async_begin(OpKind::kGet, pool_.partition_of(key), timeout_us);
  return true;
}

bool TcpSession::start_put(const std::string& key, const std::string& value,
                           Duration timeout_us) {
  return start_put_id(store::intern_key(key), value, timeout_us);
}

bool TcpSession::start_put_id(KeyId key, std::string value,
                              Duration timeout_us) {
  if (async_.kind != OpKind::kNone) return false;
  proto::PutReq req = engine_.make_put(key, std::move(value));
  req.op_id = ++op_seq_;
  history_.events.push_back(req);
  async_ = AsyncOp{};
  async_.put_req = std::move(req);
  async_begin(OpKind::kPut, pool_.partition_of(key), timeout_us);
  return true;
}

bool TcpSession::start_ro_tx(const std::vector<std::string>& keys,
                             Duration timeout_us) {
  std::vector<KeyId> ids;
  ids.reserve(keys.size());
  for (const std::string& k : keys) ids.push_back(store::intern_key(k));
  return start_ro_tx_ids(std::move(ids), timeout_us);
}

bool TcpSession::start_ro_tx_ids(std::vector<KeyId> keys,
                                 Duration timeout_us) {
  if (async_.kind != OpKind::kNone) return false;
  proto::RoTxReq req = engine_.make_ro_tx(std::move(keys));
  req.op_id = ++op_seq_;
  history_.events.push_back(req);
  async_ = AsyncOp{};
  async_.tx_req = std::move(req);
  async_begin(OpKind::kTx, /*part=*/0, timeout_us);
  return true;
}

bool TcpSession::pump() {
  using Clock = std::chrono::steady_clock;
  if (async_.kind == OpKind::kNone || async_.done) return true;

  bool overloaded = false;
  bool closed = false;
  Duration retry_after = 0;
  switch (async_.kind) {
    case OpKind::kGet: {
      auto rep = poll_reply<proto::GetReply>(async_.get_req.op_id, &overloaded,
                                             &retry_after, &closed);
      if (rep.has_value()) {
        history_.events.push_back(*rep);
        engine_.absorb_get(*rep);
        async_.get_res.ok = true;
        async_.get_res.found = rep->item.found;
        async_.get_res.value = rep->item.value;
        async_.get_res.ut = rep->item.ut;
        async_.get_res.sr = rep->item.sr;
        async_.get_res.blocked_us = rep->blocked_us;
      }
      break;
    }
    case OpKind::kPut: {
      auto rep = poll_reply<proto::PutReply>(async_.put_req.op_id, &overloaded,
                                             &retry_after, &closed);
      if (rep.has_value()) {
        history_.events.push_back(*rep);
        engine_.absorb_put(*rep);
        async_.put_res.ok = true;
        async_.put_res.ut = rep->ut;
        async_.put_res.blocked_us = rep->blocked_us;
      }
      break;
    }
    case OpKind::kTx: {
      auto rep = poll_reply<proto::RoTxReply>(async_.tx_req.op_id, &overloaded,
                                              &retry_after, &closed);
      if (rep.has_value()) {
        history_.events.push_back(*rep);
        engine_.absorb_ro_tx(*rep);
        async_.tx_res.ok = true;
        async_.tx_res.items = std::move(rep->items);
      }
      break;
    }
    case OpKind::kNone:
      break;
  }
  const bool completed = (async_.kind == OpKind::kGet && async_.get_res.ok) ||
                         (async_.kind == OpKind::kPut && async_.put_res.ok) ||
                         (async_.kind == OpKind::kTx && async_.tx_res.ok);
  if (completed) {
    consec_fail_[replica_] = 0;
    async_.done = true;
    return true;
  }
  if (closed) {
    record_session_closed();
    if (async_.kind == OpKind::kGet) async_.get_res.session_closed = true;
    if (async_.kind == OpKind::kPut) async_.put_res.session_closed = true;
    if (async_.kind == OpKind::kTx) async_.tx_res.session_closed = true;
    async_.done = true;
    return true;
  }
  auto now = Clock::now();
  if (overloaded) {
    ++rstats_.overloaded;
    async_schedule_backoff(std::max(res_.backoff_min_us, retry_after));
  }
  if (now >= async_.deadline) {
    if (res_.enabled) ++rstats_.deadline_exhausted;
    async_.done = true;  // results keep their default ok = false
    return true;
  }
  if (async_.in_backoff) {
    if (now < async_.backoff_until) return false;
    async_.in_backoff = false;
  }
  if (async_.sent) {
    if (now < async_.attempt_deadline) return false;  // reply still pending
    // Attempt timed out. Without resilience the attempt IS the op.
    if (!res_.enabled) {
      async_.done = true;
      return true;
    }
    ++rstats_.timeouts;
    if (++consec_fail_[replica_] >= res_.breaker_failures) {
      breaker_open_until_[replica_] =
          now + std::chrono::microseconds(res_.breaker_open_us);
      consec_fail_[replica_] = 0;
      ++rstats_.breaker_opens;
    }
    async_schedule_backoff(res_.backoff_min_us);
    return false;
  }
  // Launch an attempt (first send, or a resend after timeout/backoff).
  if (res_.enabled && breaker_open_until_[replica_] > now &&
      breaker_open_until_[1 - replica_] <= now) {
    replica_ = 1 - replica_;
    ++rstats_.failovers;
  }
  if (!async_.first && res_.enabled) ++rstats_.retries;
  const bool sent = async_send_attempt();
  async_.first = false;
  if (!res_.enabled) {
    // Single attempt: wait out the full op timeout whether or not the
    // transport took the frame (the blocking path behaves the same).
    async_.attempt_deadline = async_.deadline;
    async_.sent = true;
    return false;
  }
  if (!sent) {
    // Transport refused (link down / over cap): count it as a failed
    // attempt and back off, exactly like the blocking loop.
    ++rstats_.timeouts;
    if (++consec_fail_[replica_] >= res_.breaker_failures) {
      breaker_open_until_[replica_] =
          now + std::chrono::microseconds(res_.breaker_open_us);
      consec_fail_[replica_] = 0;
      ++rstats_.breaker_opens;
    }
    async_schedule_backoff(res_.backoff_min_us);
    return false;
  }
  const auto remaining = std::chrono::duration_cast<std::chrono::microseconds>(
      async_.deadline - now);
  async_.attempt_deadline =
      now + std::min(std::chrono::microseconds(res_.attempt_timeout_us),
                     remaining);
  async_.sent = true;
  return false;
}

TcpSession::GetResult TcpSession::finish_get() {
  POCC_ASSERT(async_.kind == OpKind::kGet && async_.done);
  GetResult r = std::move(async_.get_res);
  async_ = AsyncOp{};
  return r;
}

TcpSession::PutResult TcpSession::finish_put() {
  POCC_ASSERT(async_.kind == OpKind::kPut && async_.done);
  PutResult r = std::move(async_.put_res);
  async_ = AsyncOp{};
  return r;
}

TcpSession::TxResult TcpSession::finish_tx() {
  POCC_ASSERT(async_.kind == OpKind::kTx && async_.done);
  TxResult r = std::move(async_.tx_res);
  async_ = AsyncOp{};
  return r;
}

// ------------------------------------------------------- TcpClientPool ----

TcpClientPool::TcpClientPool(ClusterLayout layout, DcId dc)
    : TcpClientPool(std::move(layout), dc, {}) {}

TcpClientPool::TcpClientPool(ClusterLayout layout, DcId dc,
                             std::vector<NodeAddress> addresses)
    : layout_(std::move(layout)),
      dc_(dc),
      addresses_(std::move(addresses)),
      transport_(
          TcpTransport::Callbacks{
              [this](ConnId c, proto::Frame f) { on_frame(c, std::move(f)); },
              nullptr,
              nullptr,
              nullptr,
              nullptr,
              nullptr,
          },
          TcpTransport::Options{}) {
  POCC_ASSERT(dc_ < layout_.topology.num_dcs);
  if (addresses_.empty()) addresses_ = layout_.nodes;
}

TcpClientPool::~TcpClientPool() { stop(); }

void TcpClientPool::start() {
  {
    std::lock_guard lk(mu_);
    POCC_ASSERT_MSG(!started_, "start() called twice");
    started_ = true;
  }
  conn_by_part_[0].resize(layout_.topology.partitions_per_dc, kInvalidConn);
  conn_by_part_[1].resize(layout_.topology.partitions_per_dc, kInvalidConn);
  for (PartitionId p = 0; p < layout_.topology.partitions_per_dc; ++p) {
    const NodeAddress* addr = nullptr;
    for (const NodeAddress& a : addresses_) {
      if (a.node == NodeId{dc_, p}) {
        addr = &a;
        break;
      }
    }
    POCC_ASSERT_MSG(addr != nullptr, "no address for a partition of this DC");
    // Greet each connection with the partition it was dialed for (client 0:
    // the pool speaks for many sessions), so a sharded server can pin the
    // socket to the event loop owning that partition's worker. The
    // transport replays the greeting on every reconnect — a fresh socket
    // lands on an arbitrary accept loop and re-pins.
    std::vector<std::uint8_t> hello;
    proto::encode(proto::ClientHello{0, p}, hello);
    conn_by_part_[0][p] = transport_.connect_peer(addr->host, addr->port);
    transport_.set_greeting(conn_by_part_[0][p], hello);
    if (resilience_.enabled) {
      // Sibling (failover) connection: a second TCP stream to the same
      // DC-local endpoint. A mid-frame reset or a wedged primary stream
      // does not strand the session — it retries on the sibling (replies
      // demux by client id, so either connection can carry them).
      conn_by_part_[1][p] = transport_.connect_peer(addr->host, addr->port);
      transport_.set_greeting(conn_by_part_[1][p], std::move(hello));
    }
  }
  transport_.start();
}

void TcpClientPool::stop() {
  {
    std::lock_guard lk(mu_);
    if (!started_) return;
    started_ = false;
  }
  transport_.stop();
}

bool TcpClientPool::wait_connected(Duration timeout_us) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(timeout_us);
  while (true) {
    bool all_up = true;
    for (const ConnId c : conn_by_part_[0]) {
      if (!transport_.connected(c)) {
        all_up = false;
        break;
      }
    }
    if (all_up) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

TcpSession& TcpClientPool::connect(ClientId id) {
  std::lock_guard lk(mu_);
  POCC_ASSERT_MSG(!session_index_.contains(id), "client id already in use");
  auto session = std::unique_ptr<TcpSession>(new TcpSession(id, dc_, *this));
  session_index_[id] = session.get();
  sessions_.push_back(std::move(session));
  return *sessions_.back();
}

std::vector<checker::SessionHistory> TcpClientPool::histories() const {
  std::lock_guard lk(mu_);
  std::vector<checker::SessionHistory> out;
  out.reserve(sessions_.size());
  for (const auto& s : sessions_) out.push_back(s->history());
  return out;
}

ClientResilienceStats TcpClientPool::resilience_stats() const {
  std::lock_guard lk(mu_);
  ClientResilienceStats total;
  for (const auto& s : sessions_) total += s->resilience_stats();
  return total;
}

ConnId TcpClientPool::conn_of(PartitionId part, unsigned replica) const {
  POCC_ASSERT(replica < 2 && part < conn_by_part_[replica].size());
  return conn_by_part_[replica][part];
}

PartitionId TcpClientPool::partition_of(KeyId key) const {
  return store::KeySpace::global().partition(
      key, layout_.topology.partitions_per_dc,
      layout_.topology.partition_scheme);
}

bool TcpClientPool::send_to_partition(PartitionId part, const proto::Message& m,
                                      unsigned replica) {
  POCC_ASSERT(replica < 2 && part < conn_by_part_[replica].size());
  const ConnId conn = conn_by_part_[replica][part];
  if (conn == kInvalidConn) return false;  // sibling not dialed
  std::vector<std::uint8_t> frame;
  proto::encode(m, frame);
  return transport_.send(conn, std::move(frame));
}

void TcpClientPool::on_frame(ConnId /*conn*/, proto::Frame frame) {
  auto* m = std::get_if<proto::Message>(&frame);
  if (m == nullptr) return;  // servers do not greet clients
  ClientId client = 0;
  if (const auto* get_rep = std::get_if<proto::GetReply>(m)) {
    client = get_rep->client;
  } else if (const auto* put_rep = std::get_if<proto::PutReply>(m)) {
    client = put_rep->client;
  } else if (const auto* tx_rep = std::get_if<proto::RoTxReply>(m)) {
    client = tx_rep->client;
  } else if (const auto* closed = std::get_if<proto::SessionClosed>(m)) {
    client = closed->client;
  } else if (const auto* ov = std::get_if<proto::Overloaded>(m)) {
    client = ov->client;
  } else {
    return;  // not client traffic
  }
  TcpSession* session = nullptr;
  {
    std::lock_guard lk(mu_);
    auto it = session_index_.find(client);
    if (it != session_index_.end()) session = it->second;
  }
  if (session != nullptr) session->deliver(std::move(*m));
}

}  // namespace pocc::net
