#include "net/tcp_client.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "common/assert.hpp"
#include "store/key_space.hpp"

namespace pocc::net {

// ---------------------------------------------------------- TcpSession ----

TcpSession::TcpSession(ClientId id, DcId dc, TcpClientPool& pool)
    : engine_(id, dc, pool.layout().topology.num_dcs,
              /*snapshot_rdv=*/pool.layout().system == rt::System::kCure),
      pool_(pool),
      res_(pool.resilience_),
      retry_rng_(0xc11e47ba0cf0ffULL ^ id) {
  history_.client = id;
  history_.dc = dc;
  history_.snapshot_rdv = pool.layout().system == rt::System::kCure;
}

void TcpSession::deliver(proto::Message m) {
  {
    std::lock_guard lk(mu_);
    if (std::holds_alternative<proto::SessionClosed>(m)) {
      closed_signal_ = true;
    } else {
      reply_ = std::move(m);
    }
  }
  cv_.notify_all();
}

template <typename M>
std::optional<M> TcpSession::await(std::uint64_t op_id, Duration timeout_us,
                                   AwaitOutcome* outcome) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(timeout_us);
  std::unique_lock lk(mu_);
  while (true) {
    if (closed_signal_) return std::nullopt;
    if (reply_.has_value()) {
      if (const M* m = std::get_if<M>(&*reply_); m != nullptr &&
                                                 m->op_id == op_id &&
                                                 m->client == id()) {
        M out = std::move(*std::get_if<M>(&*reply_));
        reply_.reset();
        return out;
      }
      if (const auto* ov = std::get_if<proto::Overloaded>(&*reply_);
          ov != nullptr && ov->op_id == op_id && outcome != nullptr) {
        // The server refused this very attempt: end it now and let the
        // retry loop pace itself by the server's hint.
        outcome->overloaded = true;
        outcome->retry_after_us = ov->retry_after_us;
        reply_.reset();
        return std::nullopt;
      }
      reply_.reset();  // stale answer to an abandoned operation
    }
    if (cv_.wait_until(lk, deadline) == std::cv_status::timeout &&
        !reply_.has_value() && !closed_signal_) {
      return std::nullopt;
    }
  }
}

template <typename Rep, typename Req>
std::optional<Rep> TcpSession::run_op(const Req& req, PartitionId part,
                                      Duration timeout_us) {
  using Clock = std::chrono::steady_clock;
  if (!res_.enabled) {
    pool_.send_to_partition(part, proto::Message{req}, 0);
    return await<Rep>(req.op_id, timeout_us);
  }
  // timeout_us is the op's DEADLINE: attempts, backoff and failover all
  // happen inside it; past it the op fails (history keeps the unanswered
  // request — acknowledged-writes accounting stays honest).
  const auto deadline = Clock::now() + std::chrono::microseconds(timeout_us);
  Duration ceiling = res_.backoff_min_us;
  for (bool first = true;; first = false) {
    auto now = Clock::now();
    if (now >= deadline) {
      ++rstats_.deadline_exhausted;
      return std::nullopt;
    }
    if (breaker_open_until_[replica_] > now &&
        breaker_open_until_[1 - replica_] <= now) {
      // Breaker open on the preferred replica: fail over. When BOTH are
      // open the send below acts as the half-open probe — the breaker
      // bounds wasted work, it never blocks the only path forward.
      replica_ = 1 - replica_;
      ++rstats_.failovers;
    }
    if (!first) ++rstats_.retries;
    const bool sent =
        pool_.send_to_partition(part, proto::Message{req}, replica_);
    AwaitOutcome oc;
    std::optional<Rep> reply;
    if (sent) {
      const Duration remaining = static_cast<Duration>(
          std::chrono::duration_cast<std::chrono::microseconds>(deadline - now)
              .count());
      reply = await<Rep>(req.op_id,
                         std::min(res_.attempt_timeout_us, remaining), &oc);
    }
    if (reply.has_value()) {
      consec_fail_[replica_] = 0;
      return reply;
    }
    {
      std::lock_guard lk(mu_);
      if (closed_signal_) return std::nullopt;  // caller re-initializes
    }
    Duration floor = res_.backoff_min_us;
    if (oc.overloaded) {
      // Shed, not lost: the op never executed. Honor the server's pacing
      // hint as the backoff floor; overload does not trip the breaker
      // (the replica is alive and answering).
      ++rstats_.overloaded;
      floor = std::max(floor, oc.retry_after_us);
    } else {
      ++rstats_.timeouts;
      if (++consec_fail_[replica_] >= res_.breaker_failures) {
        breaker_open_until_[replica_] =
            Clock::now() + std::chrono::microseconds(res_.breaker_open_us);
        consec_fail_[replica_] = 0;
        ++rstats_.breaker_opens;
      }
    }
    // Full jitter: sleep uniform over [floor, max(floor, ceiling)], then
    // double the ceiling. Capped by both the policy and the deadline.
    const Duration span = std::max<Duration>(0, ceiling - floor);
    Duration sleep_us =
        floor + (span > 0
                     ? static_cast<Duration>(retry_rng_.uniform(
                           static_cast<std::uint64_t>(span) + 1))
                     : 0);
    ceiling = std::min(ceiling * 2, res_.backoff_max_us);
    now = Clock::now();
    const Duration left = static_cast<Duration>(
        std::chrono::duration_cast<std::chrono::microseconds>(deadline - now)
            .count());
    if (left <= 0) {
      ++rstats_.deadline_exhausted;
      return std::nullopt;
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(std::min(sleep_us, left)));
  }
}

#if defined(__GNUC__) && !defined(__clang__)
// GCC 12's -Wmaybe-uninitialized misfires on the variant move loop inside
// vector reallocation when this function is fully inlined at -O2/-O3; the
// pushed value is a freshly constructed alternative.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
void TcpSession::record_session_closed() {
  // §III-B client library behaviour, mirroring rt::Session / SimClient.
  {
    std::lock_guard lk(mu_);
    closed_signal_ = false;
    reply_.reset();
  }
  engine_.reinitialize_pessimistic();
  history_.events.push_back(checker::SessionReset{});
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

TcpSession::GetResult TcpSession::get(const std::string& key,
                                      Duration timeout_us) {
  return get_id(store::intern_key(key), timeout_us);
}

TcpSession::GetResult TcpSession::get_id(KeyId key, Duration timeout_us) {
  proto::GetReq req = engine_.make_get(key);
  req.op_id = ++op_seq_;
  history_.events.push_back(req);
  GetResult r;
  auto reply =
      run_op<proto::GetReply>(req, pool_.partition_of(key), timeout_us);
  if (!reply.has_value()) {
    std::unique_lock lk(mu_);
    if (closed_signal_) {
      lk.unlock();
      record_session_closed();
      r.session_closed = true;
    }
    return r;
  }
  history_.events.push_back(*reply);
  engine_.absorb_get(*reply);
  r.ok = true;
  r.found = reply->item.found;
  r.value = reply->item.value;
  r.ut = reply->item.ut;
  r.sr = reply->item.sr;
  r.blocked_us = reply->blocked_us;
  return r;
}

TcpSession::PutResult TcpSession::put(const std::string& key,
                                      const std::string& value,
                                      Duration timeout_us) {
  return put_id(store::intern_key(key), value, timeout_us);
}

TcpSession::PutResult TcpSession::put_id(KeyId key, std::string value,
                                         Duration timeout_us) {
  proto::PutReq req = engine_.make_put(key, std::move(value));
  req.op_id = ++op_seq_;
  history_.events.push_back(req);
  PutResult r;
  auto reply =
      run_op<proto::PutReply>(req, pool_.partition_of(key), timeout_us);
  if (!reply.has_value()) {
    std::unique_lock lk(mu_);
    if (closed_signal_) {
      lk.unlock();
      record_session_closed();
      r.session_closed = true;
    }
    return r;
  }
  history_.events.push_back(*reply);
  engine_.absorb_put(*reply);
  r.ok = true;
  r.ut = reply->ut;
  r.blocked_us = reply->blocked_us;
  return r;
}

TcpSession::TxResult TcpSession::ro_tx(const std::vector<std::string>& keys,
                                       Duration timeout_us) {
  std::vector<KeyId> ids;
  ids.reserve(keys.size());
  for (const std::string& k : keys) ids.push_back(store::intern_key(k));
  return ro_tx_ids(std::move(ids), timeout_us);
}

TcpSession::TxResult TcpSession::ro_tx_ids(std::vector<KeyId> keys,
                                           Duration timeout_us) {
  proto::RoTxReq req = engine_.make_ro_tx(std::move(keys));
  req.op_id = ++op_seq_;
  history_.events.push_back(req);
  // The collocated server coordinates the transaction (§II-C): partition 0
  // plays the role of the session's home node, as in rt::Session.
  TxResult r;
  auto reply = run_op<proto::RoTxReply>(req, 0, timeout_us);
  if (!reply.has_value()) {
    std::unique_lock lk(mu_);
    if (closed_signal_) {
      lk.unlock();
      record_session_closed();
      r.session_closed = true;
    }
    return r;
  }
  history_.events.push_back(*reply);
  engine_.absorb_ro_tx(*reply);
  r.ok = true;
  r.items = std::move(reply->items);
  return r;
}

// ------------------------------------------------------- TcpClientPool ----

TcpClientPool::TcpClientPool(ClusterLayout layout, DcId dc)
    : TcpClientPool(std::move(layout), dc, {}) {}

TcpClientPool::TcpClientPool(ClusterLayout layout, DcId dc,
                             std::vector<NodeAddress> addresses)
    : layout_(std::move(layout)),
      dc_(dc),
      addresses_(std::move(addresses)),
      transport_(
          TcpTransport::Callbacks{
              [this](ConnId c, proto::Frame f) { on_frame(c, std::move(f)); },
              nullptr,
              nullptr,
              nullptr,
          },
          TcpTransport::Options{}) {
  POCC_ASSERT(dc_ < layout_.topology.num_dcs);
  if (addresses_.empty()) addresses_ = layout_.nodes;
}

TcpClientPool::~TcpClientPool() { stop(); }

void TcpClientPool::start() {
  {
    std::lock_guard lk(mu_);
    POCC_ASSERT_MSG(!started_, "start() called twice");
    started_ = true;
  }
  conn_by_part_[0].resize(layout_.topology.partitions_per_dc, kInvalidConn);
  conn_by_part_[1].resize(layout_.topology.partitions_per_dc, kInvalidConn);
  for (PartitionId p = 0; p < layout_.topology.partitions_per_dc; ++p) {
    const NodeAddress* addr = nullptr;
    for (const NodeAddress& a : addresses_) {
      if (a.node == NodeId{dc_, p}) {
        addr = &a;
        break;
      }
    }
    POCC_ASSERT_MSG(addr != nullptr, "no address for a partition of this DC");
    conn_by_part_[0][p] = transport_.connect_peer(addr->host, addr->port);
    if (resilience_.enabled) {
      // Sibling (failover) connection: a second TCP stream to the same
      // DC-local endpoint. A mid-frame reset or a wedged primary stream
      // does not strand the session — it retries on the sibling (replies
      // demux by client id, so either connection can carry them).
      conn_by_part_[1][p] = transport_.connect_peer(addr->host, addr->port);
    }
  }
  transport_.start();
}

void TcpClientPool::stop() {
  {
    std::lock_guard lk(mu_);
    if (!started_) return;
    started_ = false;
  }
  transport_.stop();
}

bool TcpClientPool::wait_connected(Duration timeout_us) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(timeout_us);
  while (true) {
    bool all_up = true;
    for (const ConnId c : conn_by_part_[0]) {
      if (!transport_.connected(c)) {
        all_up = false;
        break;
      }
    }
    if (all_up) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

TcpSession& TcpClientPool::connect(ClientId id) {
  std::lock_guard lk(mu_);
  POCC_ASSERT_MSG(!session_index_.contains(id), "client id already in use");
  auto session = std::unique_ptr<TcpSession>(new TcpSession(id, dc_, *this));
  session_index_[id] = session.get();
  sessions_.push_back(std::move(session));
  return *sessions_.back();
}

std::vector<checker::SessionHistory> TcpClientPool::histories() const {
  std::lock_guard lk(mu_);
  std::vector<checker::SessionHistory> out;
  out.reserve(sessions_.size());
  for (const auto& s : sessions_) out.push_back(s->history());
  return out;
}

ClientResilienceStats TcpClientPool::resilience_stats() const {
  std::lock_guard lk(mu_);
  ClientResilienceStats total;
  for (const auto& s : sessions_) total += s->resilience_stats();
  return total;
}

ConnId TcpClientPool::conn_of(PartitionId part, unsigned replica) const {
  POCC_ASSERT(replica < 2 && part < conn_by_part_[replica].size());
  return conn_by_part_[replica][part];
}

PartitionId TcpClientPool::partition_of(KeyId key) const {
  return store::KeySpace::global().partition(
      key, layout_.topology.partitions_per_dc,
      layout_.topology.partition_scheme);
}

bool TcpClientPool::send_to_partition(PartitionId part, const proto::Message& m,
                                      unsigned replica) {
  POCC_ASSERT(replica < 2 && part < conn_by_part_[replica].size());
  const ConnId conn = conn_by_part_[replica][part];
  if (conn == kInvalidConn) return false;  // sibling not dialed
  std::vector<std::uint8_t> frame;
  proto::encode(m, frame);
  return transport_.send(conn, std::move(frame));
}

void TcpClientPool::on_frame(ConnId /*conn*/, proto::Frame frame) {
  auto* m = std::get_if<proto::Message>(&frame);
  if (m == nullptr) return;  // servers do not greet clients
  ClientId client = 0;
  if (const auto* get_rep = std::get_if<proto::GetReply>(m)) {
    client = get_rep->client;
  } else if (const auto* put_rep = std::get_if<proto::PutReply>(m)) {
    client = put_rep->client;
  } else if (const auto* tx_rep = std::get_if<proto::RoTxReply>(m)) {
    client = tx_rep->client;
  } else if (const auto* closed = std::get_if<proto::SessionClosed>(m)) {
    client = closed->client;
  } else if (const auto* ov = std::get_if<proto::Overloaded>(m)) {
    client = ov->client;
  } else {
    return;  // not client traffic
  }
  TcpSession* session = nullptr;
  {
    std::lock_guard lk(mu_);
    auto it = session_index_.find(client);
    if (it != session_index_.end()) session = it->second;
  }
  if (session != nullptr) session->deliver(std::move(*m));
}

}  // namespace pocc::net
