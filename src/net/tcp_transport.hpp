// Sharded TCP transport for the networked deployment (poccd, pocc_loadgen,
// and the in-process e2e tests).
//
// The transport runs Options::num_loops event-loop shards (default 1 — the
// original single-threaded shape). Each shard owns one net::EventLoop
// (epoll, poll(2) or io_uring — Options::backend), one wake pipe, one
// SO_REUSEPORT listening socket, and a disjoint set of connections; a connection is
// only ever touched by its shard's thread, other threads interact through
// the thread-safe send()/connect_peer() and the callbacks (invoked on the
// owning shard's thread). Responsibilities:
//
//   * framing      — inbound bytes are cut into frames by proto::decode_frame
//                    and delivered one decoded Frame at a time,
//   * reconnect    — outbound connections dialed with connect_peer() survive
//                    peer restarts: the ConnId names the *link*, the socket
//                    behind it redials with exponential backoff, and frames
//                    sent while down are buffered so the per-link FIFO the
//                    protocol assumes (§II-C) is preserved across blips,
//   * backpressure — each connection's outbound buffer is capped
//                    (max_outbox_bytes); when a peer stops draining, send()
//                    rejects further frames and reports the overflow instead
//                    of growing without bound,
//   * pinning      — an accepted connection can be migrated to a chosen
//                    shard (migrate()), so a host can co-locate a client's
//                    socket with the worker owning its partition and run
//                    socket → decode → engine on one thread.
//
// A ConnId encodes its owning shard in the upper bits, so routing a send
// to the right shard is a shift, not a global map. A decode error on a
// connection is treated as corruption: the connection is closed (and
// redialed if it is an outbound link). Accepted (inbound) connections get
// fresh ConnIds and never redial — the remote owns recovery.
//
// Syscall discipline: every ::sendmsg/::recv/::accept and wake-pipe
// read/write retries on EINTR — a signal landing mid-syscall must never
// tear down a healthy connection (scripts/check_syscalls.sh enforces that
// new raw syscall sites go through audited files like this one).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/chaos.hpp"
#include "net/event_loop.hpp"
#include "proto/codec.hpp"

namespace pocc::net {

/// Identifier of one transport connection: shard index in the top bits,
/// per-shard sequence below. Outbound ids are stable across reconnects;
/// inbound ids are per-accepted-socket (and change on migrate()).
using ConnId = std::uint64_t;

inline constexpr ConnId kInvalidConn = 0;

struct TransportStats {
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t accepts = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t decode_errors = 0;
  std::uint64_t send_overflows = 0;
  /// Frames dropped because a *down* link's reconnect buffer hit its cap
  /// (max_down_buffer_bytes) — a long partition cannot buffer unboundedly.
  std::uint64_t down_buffer_drops = 0;
  /// Inbound connections re-homed onto another shard (pinning).
  std::uint64_t migrations = 0;
  /// Scatter-gather flush accounting: sendmsg syscalls issued and frames
  /// fully flushed through them — frames/call is the coalescing ratio a
  /// reply burst or LinkBatcher flush achieves.
  std::uint64_t sendmsg_calls = 0;
  std::uint64_t sendmsg_frames = 0;
  /// Buffer-arena accounting: acquisitions served from the pool vs fresh
  /// allocations (connection churn at 100k sockets lives or dies on this).
  std::uint64_t arena_hits = 0;
  std::uint64_t arena_misses = 0;
  /// io_uring backend accounting, summed from the shard EventLoops (all
  /// zero on kEpoll/kPoll).
  std::uint64_t uring_enters = 0;
  std::uint64_t uring_sqes = 0;
  std::uint64_t uring_cqes = 0;
  std::uint64_t uring_no_syscall_waits = 0;
  /// Chaos-injection accounting (zero unless set_chaos() armed a link).
  std::uint64_t chaos_delayed = 0;     // frames held before transmission
  std::uint64_t chaos_duplicates = 0;  // frames transmitted twice
  std::uint64_t chaos_resets = 0;      // connections torn down by chaos

  TransportStats& operator+=(const TransportStats& o) {
    frames_in += o.frames_in;
    frames_out += o.frames_out;
    bytes_in += o.bytes_in;
    bytes_out += o.bytes_out;
    accepts += o.accepts;
    reconnects += o.reconnects;
    decode_errors += o.decode_errors;
    send_overflows += o.send_overflows;
    down_buffer_drops += o.down_buffer_drops;
    migrations += o.migrations;
    sendmsg_calls += o.sendmsg_calls;
    sendmsg_frames += o.sendmsg_frames;
    arena_hits += o.arena_hits;
    arena_misses += o.arena_misses;
    uring_enters += o.uring_enters;
    uring_sqes += o.uring_sqes;
    uring_cqes += o.uring_cqes;
    uring_no_syscall_waits += o.uring_no_syscall_waits;
    chaos_delayed += o.chaos_delayed;
    chaos_duplicates += o.chaos_duplicates;
    chaos_resets += o.chaos_resets;
    return *this;
  }
};

/// Per-shard pool of reusable byte buffers: connection inboxes and finished
/// outbox frames return here instead of freeing, and acquire() hands their
/// capacity to the next conn/frame — at 100k-connection churn the allocator
/// otherwise sees one malloc/free pair per frame and per accept.
///
/// Ownership rule: the arena never holds a buffer that is still reachable
/// from a Conn — release() is called exactly where the owning reference
/// dies (frame fully flushed, connection reaped). Guarded by the owning
/// shard's mutex like everything else it is touched with.
class BufferArena {
 public:
  /// Pop a pooled buffer (cleared; capacity retained) or make a fresh one.
  /// `*hit` reports which, for the arena_hits/arena_misses counters.
  [[nodiscard]] std::vector<std::uint8_t> acquire(bool* hit) {
    if (free_.empty()) {
      *hit = false;
      return {};
    }
    *hit = true;
    std::vector<std::uint8_t> buf = std::move(free_.back());
    free_.pop_back();
    pooled_bytes_ -= buf.capacity();
    buf.clear();
    return buf;
  }

  /// Return a dead buffer's capacity to the pool (bounded; oversized or
  /// overflow buffers are simply freed).
  void release(std::vector<std::uint8_t>&& buf) {
    if (buf.capacity() == 0 || buf.capacity() > kMaxPooledBuffer ||
        free_.size() >= kMaxPooledBuffers ||
        pooled_bytes_ + buf.capacity() > kMaxPooledBytes) {
      return;  // let the vector free on scope exit
    }
    pooled_bytes_ += buf.capacity();
    free_.push_back(std::move(buf));
  }

  [[nodiscard]] std::size_t pooled() const { return free_.size(); }

 private:
  // LIFO: the hottest (cache-warm, grown-to-working-set) buffer is reused
  // first. Caps bound idle memory, not throughput.
  static constexpr std::size_t kMaxPooledBuffers = 4096;
  static constexpr std::size_t kMaxPooledBuffer = 1u << 20;
  static constexpr std::size_t kMaxPooledBytes = 32u << 20;
  std::vector<std::vector<std::uint8_t>> free_;
  std::size_t pooled_bytes_ = 0;
};

class TcpTransport {
 public:
  struct Callbacks {
    /// One decoded frame arrived on `conn`. Owning-shard-thread context:
    /// keep it short (enqueue and return) unless the host deliberately
    /// drives engine work here (the driven NodeGroup mode).
    std::function<void(ConnId, proto::Frame)> on_frame;
    /// Outbound link established (first connect or reconnect), or inbound
    /// connection accepted.
    std::function<void(ConnId)> on_connected;
    /// Connection lost. Outbound links will redial; inbound ids are dead.
    std::function<void(ConnId)> on_disconnected;
    /// Fired on shard 0's thread every Options::tick_interval_us (when
    /// non-zero) — the time axis of the batch flush policy: hosts flush
    /// their staged LinkBatcher batches here, bounding how long a coalesced
    /// message can wait for companions.
    std::function<void()> on_tick;
    /// Fired once per loop iteration on every shard, outside the shard
    /// lock — the driven-NodeGroup seam: the host services the worker that
    /// owns this loop (timers, inbox drain, durability) and returns the
    /// worker's next timer deadline (absolute steady µs; 0 = none), which
    /// bounds how long the loop may sleep.
    std::function<Timestamp(std::uint32_t loop)> on_loop_pass;
    /// An inbound connection finished migrate(): `from` is dead, the same
    /// socket now lives on as `to` on the target shard. Delivered on the
    /// *source* shard's thread, after the connection's final frames there.
    std::function<void(ConnId from, ConnId to)> on_migrated;
  };

  struct Options {
    /// Event-loop shards. 1 keeps the original single-threaded transport;
    /// poccd passes the NodeGroup worker count so loop i drives worker i.
    std::uint32_t num_loops = 1;
    /// Readiness backend of every shard (tests exercise kPoll explicitly;
    /// deployments keep the platform default).
    EventLoop::Backend backend = EventLoop::default_backend();
    /// Per-connection cap on buffered unsent bytes (backpressure bound).
    std::size_t max_outbox_bytes = 64u << 20;
    /// Tighter cap applied while a link has no established socket: frames
    /// buffered across an outage are bounded, and overflow is dropped with
    /// an accounted counter (stats().down_buffer_drops) instead of letting
    /// a long partition grow the outbox to max_outbox_bytes.
    std::size_t max_down_buffer_bytes = 8u << 20;
    /// Reconnect backoff: the *ceiling* doubles deterministically per
    /// failure, but each retry draws uniformly from [min, ceiling] (full
    /// jitter) so links cut by one partition don't redial in lockstep when
    /// it heals.
    Duration reconnect_backoff_min_us = 20'000;
    Duration reconnect_backoff_max_us = 1'000'000;
    /// Seed of the backoff-jitter Rngs (determinism in tests/campaigns).
    std::uint64_t seed = 0xbac0'ff5eULL;
    /// Period of Callbacks::on_tick; 0 disables the tick.
    Duration tick_interval_us = 0;
  };

  TcpTransport(Callbacks callbacks, Options options);
  ~TcpTransport();

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Bind + listen on `port` (0 = ephemeral), all interfaces — one
  /// SO_REUSEPORT socket per shard, so the kernel load-balances accepts
  /// across the loops. Call before start(). Returns the actually bound
  /// port. Asserts on bind failure.
  std::uint16_t listen(std::uint16_t port);

  /// Register a persistent outbound link (dialed once the loop runs;
  /// redials forever with backoff). `loop` pins the link to a shard
  /// (server-to-server FIFO links get a designated owner); -1 assigns
  /// round-robin. Call before or after start().
  ConnId connect_peer(std::string host, std::uint16_t port,
                      std::int32_t loop = -1);

  /// Frame transmitted first on `conn` every time its socket is established
  /// (initial connect and every reconnect), ahead of any buffered frames —
  /// identity announcements (NodeHello/ClientHello) that must precede
  /// protocol traffic.
  void set_greeting(ConnId conn, std::vector<std::uint8_t> frame);

  /// Arm wire-level fault injection on an outbound link: every frame sent
  /// on `conn` passes through `link` (delay/duplicate/reset verdicts), and
  /// while the link's schedule blocks this direction the socket is torn
  /// down and not redialed (a partition window). Call before traffic flows;
  /// nullptr disarms. Thread-safe.
  void set_chaos(ConnId conn, std::shared_ptr<ChaosLink> link);

  void start();
  void stop();

  /// Queue one already-encoded frame. Thread-safe. Returns false when the
  /// connection is unknown/dead-inbound or its outbox is over the cap (the
  /// frame is dropped and counted in stats().send_overflows).
  bool send(ConnId conn, std::vector<std::uint8_t> frame) {
    return try_send(conn, frame);
  }

  /// Like send(), but leaves `frame` intact when the transport refuses it —
  /// the caller can park and retry (LinkBatcher's slow-peer queue) instead
  /// of losing the bytes. Moves from `frame` only on acceptance.
  bool try_send(ConnId conn, std::vector<std::uint8_t>& frame);

  /// Pop a recycled encode buffer (empty, capacity retained) from the arena
  /// of `conn`'s shard — the allocation-free counterpart of send(): frames
  /// the transport finishes writing park their buffers there, and encoding
  /// the next frame into one closes the loop. Thread-safe; falls back to a
  /// fresh vector for unknown conns. Handing the buffer back via send() is
  /// optional (it is an ordinary vector).
  [[nodiscard]] std::vector<std::uint8_t> acquire_buffer(ConnId conn);

  /// Re-home an inbound connection onto shard `target_loop` (connection
  /// pinning: the host moves a client's socket to the loop driving the
  /// worker that owns its partition). Only valid from within a callback on
  /// the connection's current owning shard — in practice, from on_frame of
  /// the pinning handshake. The handoff happens after the current loop
  /// pass delivers the connection's remaining decoded frames, so frame
  /// order is preserved across the move; the connection then answers to a
  /// new ConnId, announced via Callbacks::on_migrated. Returns false for
  /// unknown/outbound connections or an out-of-range target.
  bool migrate(ConnId conn, std::uint32_t target_loop);

  /// True when the connection currently has an established socket.
  [[nodiscard]] bool connected(ConnId conn) const;

  [[nodiscard]] std::uint16_t listen_port() const { return listen_port_; }
  /// Aggregated over every shard.
  [[nodiscard]] TransportStats stats() const;

  [[nodiscard]] std::uint32_t num_loops() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  /// Shard owning `conn` (encoded in the id).
  [[nodiscard]] static std::uint32_t loop_of(ConnId conn) {
    return static_cast<std::uint32_t>(conn >> kShardShift);
  }
  /// Interrupt shard `loop`'s wait (the driven NodeGroup's enqueue wake).
  void wake_loop(std::uint32_t loop);
  /// Native handles of the running loop threads (signal-storm tests aim
  /// pthread_kill at them). Valid between start() and stop().
  [[nodiscard]] std::vector<std::thread::native_handle_type>
  loop_thread_handles();

 private:
  static constexpr unsigned kShardShift = 48;

  struct Conn {
    ConnId id = kInvalidConn;
    int fd = -1;
    bool outbound = false;       // redial on loss
    bool connecting = false;     // non-blocking connect in flight
    bool up = false;             // socket established
    bool announced = false;      // on_connected delivered for this socket
    std::int32_t migrate_to = -1;  // pending migrate() target shard
    std::string host;            // outbound only
    std::uint16_t port = 0;      // outbound only
    Timestamp retry_at = 0;      // next dial attempt (steady us)
    Duration backoff_us = 0;
    std::vector<std::uint8_t> inbox;  // undecoded inbound bytes
    // Outbox as a deque of whole frames, flushed with one scatter-gather
    // sendmsg per burst: frames move in from try_send() without a copy and
    // their buffers recycle through the shard arena once written. A
    // disconnect mid-frame resets frame_written to 0 so the reconnected
    // socket restarts the front frame from byte 0, never resumes its tail
    // (which would garble the peer's framing).
    std::deque<std::vector<std::uint8_t>> outbox;
    std::size_t outbox_bytes = 0;   // unsent bytes across all frames
    std::size_t frame_written = 0;  // bytes of outbox.front() already sent
    std::vector<std::uint8_t> greeting;  // sent first on every establish

    // --- chaos injection (null on unarmed links) ---
    std::shared_ptr<ChaosLink> chaos;
    struct HeldFrame {
      Timestamp release_at = 0;
      std::vector<std::uint8_t> frame;
    };
    /// Frames the chaos link is holding back; released into the outbox in
    /// FIFO order when their delay elapses (ChaosLink clamps release times
    /// monotone, so the front is always the earliest).
    std::deque<HeldFrame> chaos_hold;
    std::size_t chaos_held_bytes = 0;  // counted against the outbox caps
    bool chaos_reset_pending = false;  // tear down on the next loop pass
  };

  /// One event-loop shard: thread, readiness set, wake pipe, listener and
  /// the connections it owns. A shard's conns/by_fd/stats are guarded by
  /// its mu; the loop thread is the only closer of its sockets.
  struct Shard {
    std::uint32_t index = 0;
    std::unique_ptr<EventLoop> loop;
    int wake_pipe[2] = {-1, -1};
    int listen_fd = -1;
    mutable std::mutex mu;
    std::unordered_map<ConnId, std::unique_ptr<Conn>> conns;
    /// fd → owning conn for live sockets: flat and fd-indexed (lazily grown
    /// to the highest fd seen) so the per-event lookup on the wait path is
    /// a load, not a hash — sized-for-100k-fds bookkeeping.
    std::vector<ConnId> by_fd;
    BufferArena arena;
    std::uint64_t next_seq = 1;

    void map_fd(int fd, ConnId id) {
      const auto idx = static_cast<std::size_t>(fd);
      if (idx >= by_fd.size()) {
        by_fd.resize(std::max(idx + 1, by_fd.size() * 2), kInvalidConn);
      }
      by_fd[idx] = id;
    }
    void unmap_fd(int fd) {
      const auto idx = static_cast<std::size_t>(fd);
      if (idx < by_fd.size()) by_fd[idx] = kInvalidConn;
    }
    [[nodiscard]] ConnId conn_at_fd(int fd) const {
      const auto idx = static_cast<std::size_t>(fd);
      return fd >= 0 && idx < by_fd.size() ? by_fd[idx] : kInvalidConn;
    }
    Rng backoff_rng{0};
    TransportStats stats;
    bool stopping = false;
    /// Connections handed over by migrate(), adopted at the top of the
    /// next loop pass (guarded by mu).
    std::vector<std::unique_ptr<Conn>> adopted;
    std::thread thread;
  };

  void run(Shard& s);
  void wake(Shard& s);
  void dial(Shard& s, Conn& c, Timestamp now);
  void mark_established(Shard& s, Conn& c);
  void close_socket(Shard& s, Conn& c);
  /// Append one framed message to the outbox (no copy: the frame buffer
  /// itself becomes the outbox entry).
  static void enqueue_frame(Conn& c, std::vector<std::uint8_t> frame);
  /// Return a dead connection's buffers to the shard arena (call right
  /// before the Conn is erased).
  static void recycle_conn(Shard& s, Conn& c);
  /// Schedule the next dial attempt with full-jitter backoff.
  void arm_backoff(Shard& s, Conn& c, Timestamp now);
  /// Chaos pass of one loop iteration: apply pending resets, enforce
  /// partition windows, release due held frames. Collects lost links.
  void chaos_pass(Shard& s, Timestamp now, std::vector<ConnId>& went_down);
  void drain_outbox(Shard& s, Conn& c);
  void read_ready(Shard& s, Conn& c);
  void accept_ready(Shard& s);
  /// Move conns marked by migrate() to their target shards; returns the
  /// (old, new) id pairs to announce.
  std::vector<std::pair<ConnId, ConnId>> hand_over_migrations(Shard& s);
  [[nodiscard]] Shard* shard_of(ConnId conn) const;
  [[nodiscard]] static Timestamp now_us();

  Callbacks cb_;
  Options opt_;

  std::uint16_t listen_port_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint32_t> next_dial_shard_{0};
  std::atomic<bool> started_{false};
};

/// Coalescing flush policy of one peer link: a staged batch is flushed as
/// soon as it holds max_messages messages or max_bytes of staged body,
/// whichever comes first; whatever is still staged when the transport tick
/// fires goes out then. The tick rides the event-loop timeout, which has
/// millisecond granularity, so the effective straggler delay is
/// ~max(max_delay_us, 1ms) — the default is 1ms accordingly, two orders of
/// magnitude under inter-DC RTTs while letting a loaded link coalesce
/// dozens of Replicates into one frame (Okapi / Cure-style interval
/// aggregation).
struct BatchPolicy {
  std::size_t max_messages = 64;
  std::size_t max_bytes = 48u << 10;
  /// The time threshold — hosts pass it as Options::tick_interval_us.
  Duration max_delay_us = 1'000;
  /// Slow-peer isolation: flushed batches the transport refuses
  /// (backpressure) are parked in a per-link retry queue up to this many
  /// bytes and re-offered on later ticks, so a throttled replica link
  /// sheds load by *delaying* its own batches — not by dropping them, and
  /// not by stalling siblings (each link parks independently). Beyond the
  /// cap batches are dropped and counted (BatchStats::dropped_batches).
  std::size_t max_pending_bytes = 16u << 20;
};

/// Accounting of one link's batching (aggregated into poccd exit stats).
struct BatchStats {
  std::uint64_t messages = 0;
  std::uint64_t batches = 0;
  std::uint64_t protocol_bytes = 0;  // §V-charged bytes inside batches
  std::uint64_t overhead_bytes = 0;  // envelopes + batch headers + prefixes
  std::uint64_t send_failures = 0;   // flushes rejected by backpressure
  std::uint64_t retried_batches = 0;  // parked batches later accepted
  std::uint64_t dropped_batches = 0;  // parked batches lost to the cap

  BatchStats& operator+=(const BatchStats& o) {
    messages += o.messages;
    batches += o.batches;
    protocol_bytes += o.protocol_bytes;
    overhead_bytes += o.overhead_bytes;
    send_failures += o.send_failures;
    retried_batches += o.retried_batches;
    dropped_batches += o.dropped_batches;
    return *this;
  }
};

/// Per-link coalescer: worker threads add() routed server-to-server
/// messages (encoded immediately into the staged frame — no copy at flush
/// time); the staged batch leaves as ONE Batch wire frame when a size
/// threshold trips or the transport tick fires. Thread-safe. FIFO holds
/// end to end: adds are serialized by the batcher mutex, flushed frames
/// enter the transport outbox in flush order, and the transport preserves
/// frame order across reconnects (buffered while a link is down).
class LinkBatcher {
 public:
  LinkBatcher(TcpTransport& transport, ConnId conn, BatchPolicy policy)
      : transport_(transport), conn_(conn), policy_(policy) {}

  LinkBatcher(const LinkBatcher&) = delete;
  LinkBatcher& operator=(const LinkBatcher&) = delete;

  /// Stage one message; flushes inline when a size threshold trips.
  void add(NodeId from, NodeId to, const proto::Message& m);

  /// Flush whatever is staged (no-op when empty) after re-offering any
  /// parked batches. Called from the transport tick and at shutdown.
  void flush();

  [[nodiscard]] BatchStats stats() const;

  /// Bytes of flushed-but-unaccepted batches parked on this link — the
  /// load-shedding signal the host's admission control reads (a congested
  /// replication link pushes back on *client* admission, not on siblings).
  [[nodiscard]] std::size_t pending_bytes() const;

 private:
  void flush_locked();
  void park_locked(std::vector<std::uint8_t> frame);
  void retry_pending_locked();

  TcpTransport& transport_;
  ConnId conn_;
  BatchPolicy policy_;
  mutable std::mutex mu_;
  proto::BatchWriter writer_;
  BatchStats stats_;
  std::deque<std::vector<std::uint8_t>> pending_;  // FIFO ahead of staged
  std::size_t pending_bytes_ = 0;
};

}  // namespace pocc::net
