// Poll-driven TCP transport for the networked deployment (poccd,
// pocc_loadgen, and the in-process e2e tests).
//
// One background thread owns every socket and runs a poll(2) event loop;
// other threads interact only through the thread-safe send() and the
// callbacks (invoked on the transport thread). Responsibilities:
//
//   * framing      — inbound bytes are cut into frames by proto::decode_frame
//                    and delivered one decoded Frame at a time,
//   * reconnect    — outbound connections dialed with connect_peer() survive
//                    peer restarts: the ConnId names the *link*, the socket
//                    behind it redials with exponential backoff, and frames
//                    sent while down are buffered so the per-link FIFO the
//                    protocol assumes (§II-C) is preserved across blips,
//   * backpressure — each connection's outbound buffer is capped
//                    (max_outbox_bytes); when a peer stops draining, send()
//                    rejects further frames and reports the overflow instead
//                    of growing without bound.
//
// A decode error on a connection is treated as corruption: the connection is
// closed (and redialed if it is an outbound link). Accepted (inbound)
// connections get fresh ConnIds and never redial — the remote owns recovery.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "proto/codec.hpp"

namespace pocc::net {

/// Identifier of one transport connection. Outbound ids are stable across
/// reconnects; inbound ids are per-accepted-socket.
using ConnId = std::uint64_t;

inline constexpr ConnId kInvalidConn = 0;

struct TransportStats {
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t accepts = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t decode_errors = 0;
  std::uint64_t send_overflows = 0;
};

class TcpTransport {
 public:
  struct Callbacks {
    /// One decoded frame arrived on `conn`. Transport-thread context: keep it
    /// short (enqueue and return).
    std::function<void(ConnId, proto::Frame)> on_frame;
    /// Outbound link established (first connect or reconnect), or inbound
    /// connection accepted.
    std::function<void(ConnId)> on_connected;
    /// Connection lost. Outbound links will redial; inbound ids are dead.
    std::function<void(ConnId)> on_disconnected;
  };

  struct Options {
    /// Per-connection cap on buffered unsent bytes (backpressure bound).
    std::size_t max_outbox_bytes = 64u << 20;
    Duration reconnect_backoff_min_us = 20'000;
    Duration reconnect_backoff_max_us = 1'000'000;
  };

  TcpTransport(Callbacks callbacks, Options options);
  ~TcpTransport();

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Bind + listen on `port` (0 = ephemeral), all interfaces. Call before
  /// start(). Returns the actually bound port. Asserts on bind failure.
  std::uint16_t listen(std::uint16_t port);

  /// Register a persistent outbound link (dialed once the loop runs; redials
  /// forever with backoff). Call before or after start().
  ConnId connect_peer(std::string host, std::uint16_t port);

  /// Frame transmitted first on `conn` every time its socket is established
  /// (initial connect and every reconnect), ahead of any buffered frames —
  /// identity announcements (NodeHello) that must precede protocol traffic.
  void set_greeting(ConnId conn, std::vector<std::uint8_t> frame);

  void start();
  void stop();

  /// Queue one already-encoded frame. Thread-safe. Returns false when the
  /// connection is unknown/dead-inbound or its outbox is over the cap (the
  /// frame is dropped and counted in stats().send_overflows).
  bool send(ConnId conn, std::vector<std::uint8_t> frame);

  /// True when the connection currently has an established socket.
  [[nodiscard]] bool connected(ConnId conn) const;

  [[nodiscard]] std::uint16_t listen_port() const { return listen_port_; }
  [[nodiscard]] TransportStats stats() const;

 private:
  struct Conn {
    ConnId id = kInvalidConn;
    int fd = -1;
    bool outbound = false;       // redial on loss
    bool connecting = false;     // non-blocking connect in flight
    bool up = false;             // socket established
    bool announced = false;      // on_connected delivered for this socket
    std::string host;            // outbound only
    std::uint16_t port = 0;      // outbound only
    Timestamp retry_at = 0;      // next dial attempt (steady us)
    Duration backoff_us = 0;
    std::vector<std::uint8_t> inbox;   // undecoded inbound bytes
    std::vector<std::uint8_t> outbox;  // unsent outbound bytes
    std::size_t outbox_head = 0;       // bytes of outbox already written
    // Frame boundaries of the bytes at/after the current frame's start, and
    // how far into the front frame the socket got — a disconnect mid-frame
    // rewinds to the boundary so the reconnected socket never resumes with
    // the tail of a half-sent frame (which would garble the peer's framing).
    std::deque<std::size_t> outbox_frames;
    std::size_t frame_written = 0;
    std::vector<std::uint8_t> greeting;  // sent first on every establish
  };

  void run();
  void wake();
  void dial(Conn& c, Timestamp now);
  void mark_established(Conn& c);
  void close_socket(Conn& c, bool notify);
  void drain_outbox(Conn& c);
  void read_ready(Conn& c);
  void accept_ready();
  [[nodiscard]] static Timestamp now_us();

  Callbacks cb_;
  Options opt_;

  int listen_fd_ = -1;
  std::uint16_t listen_port_ = 0;
  int wake_pipe_[2] = {-1, -1};

  mutable std::mutex mu_;
  std::unordered_map<ConnId, std::unique_ptr<Conn>> conns_;
  ConnId next_conn_id_ = 1;
  TransportStats stats_;
  bool stopping_ = false;
  std::thread thread_;
  std::atomic<bool> started_{false};
};

}  // namespace pocc::net
