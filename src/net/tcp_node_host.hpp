// One protocol node served over real TCP: the building block of `poccd` (one
// process per node) and of the in-process e2e tests (many hosts, one
// process — same code path, real sockets either way).
//
// Composition: a TcpTransport (sockets + framing + reconnect) feeding an
// rt::RtNode (the threaded engine host from runtime/), with this class as
// the rt::Router in between — where rt::Cluster moves a message onto its
// in-memory delay line, this host encodes it onto the peer's socket. The
// engine cannot tell the difference (server::Context is identical), which is
// the point: the TCP deployment runs the very same protocol code the
// simulator validates.
//
// Identity on the wire:
//   * to each peer node this host keeps one persistent outbound connection,
//     greeting with NodeHello{self} so the peer can attribute inbound frames
//     (the transport re-sends the greeting on every reconnect, before any
//     buffered frames);
//   * client connections are identified lazily — every client request frame
//     binds its client id to the connection it arrived on; replies (and
//     HA-POCC SessionCloseds) go back over that connection.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "net/cluster_config.hpp"
#include "net/tcp_transport.hpp"
#include "runtime/rt_node.hpp"
#include "server/replica_base.hpp"

namespace pocc::net {

class TcpNodeHost final : public rt::Router {
 public:
  struct Options {
    /// 0 = ephemeral (tests); poccd passes the configured port.
    std::uint16_t listen_port = 0;
    std::uint64_t seed = 1;
    ClockConfig clock = ClockConfig::perfect();
    /// Log connection events and dropped frames to stderr.
    bool verbose = false;
  };

  /// Binds the listening socket immediately (port() is valid afterwards);
  /// serving starts with start().
  TcpNodeHost(NodeId self, const ClusterLayout& layout, Options options);
  ~TcpNodeHost() override;

  TcpNodeHost(const TcpNodeHost&) = delete;
  TcpNodeHost& operator=(const TcpNodeHost&) = delete;

  [[nodiscard]] std::uint16_t port() const { return transport_.listen_port(); }
  [[nodiscard]] NodeId self() const { return self_; }

  /// Dial every peer in `peers` (ignoring the entry for self, if present) and
  /// start the engine. `peers` defaults to the layout's addresses; tests pass
  /// the post-bind ephemeral ports instead.
  void start();
  void start(const std::vector<NodeAddress>& peers);
  void stop();

  /// Engine access for post-shutdown inspection (not thread-safe while
  /// running).
  server::ReplicaBase& engine() { return node_->engine(); }
  [[nodiscard]] TransportStats transport_stats() const {
    return transport_.stats();
  }
  /// Frames that arrived for an unknown peer / departed client (diagnostic).
  [[nodiscard]] std::uint64_t dropped_frames() const;

  // --- rt::Router (called from the node thread) ---
  void route(NodeId from, NodeId to, proto::Message m) override;
  void route_to_client(NodeId from, ClientId client,
                       proto::Message m) override;

 private:
  void on_frame(ConnId conn, proto::Frame frame);
  void on_disconnected(ConnId conn);
  void log(const std::string& what) const;
  [[nodiscard]] static std::uint64_t flat(NodeId n) {
    return (static_cast<std::uint64_t>(n.dc) << 32) | n.part;
  }

  NodeId self_;
  ClusterLayout layout_;
  Options opt_;
  Rng rng_;
  TcpTransport transport_;
  std::unique_ptr<rt::RtNode> node_;

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, ConnId> peer_conn_;  // flat(node) -> conn
  std::unordered_map<ConnId, NodeId> conn_peer_;  // inbound, via NodeHello
  std::unordered_map<ClientId, ConnId> client_conn_;
  std::uint64_t dropped_ = 0;
  bool started_ = false;
};

}  // namespace pocc::net
