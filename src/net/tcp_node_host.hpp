// One protocol PROCESS served over real TCP: since the multi-partition
// runtime landed, a host carries every partition its ProcessSpec names —
// all partitions of a data center in the standard 3-process deployment —
// on an rt::NodeGroup worker pool. This is the building block of `poccd`
// (one process per DC) and of the in-process e2e tests (several hosts, one
// test process — same code path, real sockets either way).
//
// Composition: a TcpTransport (sockets + framing + reconnect + flush tick)
// feeding an rt::NodeGroup (partitions pinned to worker threads), with this
// class as the rt::Router in between — where rt::Cluster moves a message
// onto its in-memory delay line, this host stages it into the destination
// link's LinkBatcher. The engines cannot tell the difference
// (server::Context is identical), which is the point: the TCP deployment
// runs the very same protocol code the simulator validates.
//
// Wire identity and addressing:
//   * to each peer PROCESS this host keeps one persistent outbound
//     connection, greeting with NodeHello{first hosted node} so logs can
//     attribute the link (the transport re-sends the greeting on every
//     reconnect, before any buffered frames);
//   * all server-to-server traffic rides Batch frames whose per-message
//     envelopes carry explicit (from, to) NodeIds — connection identity no
//     longer names the endpoints when both sides host several partitions;
//   * client requests arrive as plain Message frames; each binds its client
//     id to the connection it arrived on (replies and HA-POCC
//     SessionCloseds go back over it), and is dispatched to the hosted
//     partition that owns the request (key placement for GET/PUT, the
//     DC-local coordinator partition for RO-TX).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "net/cluster_config.hpp"
#include "net/http_server.hpp"
#include "net/tcp_transport.hpp"
#include "runtime/node_group.hpp"
#include "server/replica_base.hpp"
#include "stats/registry.hpp"
#include "wal/wal_manager.hpp"

namespace pocc::net {

class TcpNodeHost final : public rt::Router {
 public:
  struct Options {
    /// 0 = ephemeral (tests); poccd passes the configured port.
    std::uint16_t listen_port = 0;
    std::uint64_t seed = 1;
    ClockConfig clock = ClockConfig::perfect();
    /// Replication coalescing thresholds (see BatchPolicy).
    BatchPolicy batch;
    /// Readiness backend of the transport's event-loop shards (poccd
    /// --event-backend; the default honors POCC_EVENT_BACKEND).
    EventLoop::Backend backend = EventLoop::default_backend();
    /// Log connection events and dropped frames to stderr.
    bool verbose = false;
    /// Durable root: every hosted partition keeps its WAL + snapshots under
    /// `<data_dir>/p<part>/`. Empty disables durability entirely (the
    /// pre-WAL behavior; poccd --no-durability).
    std::string data_dir;
    /// Active-segment size that triggers a background checkpoint.
    std::uint64_t checkpoint_bytes = 4u << 20;
    /// Upper bound on the client-admission gate while peer recovery runs;
    /// past it, parked client requests are released even with RecoveryDones
    /// outstanding (a dead peer must not wedge this DC forever).
    Duration recovery_deadline_us = 10'000'000;
    /// Bounded admission: a client request is refused with an Overloaded
    /// reply when the target worker's inbox already holds this many
    /// messages (0 = unbounded). Server-to-server traffic is never shed —
    /// dropping it would break the lossless FIFO channel assumption.
    std::size_t max_inbox_messages = 0;
    /// Backpressure propagation: client requests are also refused while any
    /// replication link has this many bytes of parked (transport-refused)
    /// batches — a throttled peer link pushes back on *admission* instead
    /// of letting the parked queue grow until batches drop.
    std::size_t shed_pending_bytes = 8u << 20;
    /// Backoff hint carried in Overloaded replies.
    Duration overload_retry_after_us = 20'000;
    /// Observability endpoint ("host:port", port 0 = ephemeral): serves
    /// /metrics (Prometheus text), /healthz and /readyz from a dedicated
    /// event-loop thread. Empty disables the HTTP server; the stats
    /// registry is populated either way (SIGUSR2/exit dumps render it).
    std::string metrics_addr;
  };

  /// Binds the listening socket immediately (port() is valid afterwards);
  /// serving starts with start(). `self` must name partitions of one DC
  /// inside the layout topology.
  TcpNodeHost(ProcessSpec self, const ClusterLayout& layout, Options options);
  ~TcpNodeHost() override;

  TcpNodeHost(const TcpNodeHost&) = delete;
  TcpNodeHost& operator=(const TcpNodeHost&) = delete;

  [[nodiscard]] std::uint16_t port() const { return transport_.listen_port(); }
  [[nodiscard]] DcId dc() const { return group_->dc(); }
  [[nodiscard]] const ProcessSpec& spec() const { return self_; }

  /// Dial every peer process in `peers` (ignoring the entry for self) and
  /// start the worker pool. `peers` defaults to the layout's processes;
  /// tests pass the post-bind ephemeral ports instead.
  void start();
  void start(const std::vector<ProcessSpec>& peers);
  void stop();

  /// SIGKILL-equivalent in-process shutdown (crash-recovery tests): stop the
  /// workers and close the sockets WITHOUT flushing the staged batcher
  /// frames or the unsynced WAL tail — exactly the state a kill -9 leaves
  /// on disk. The durable image stays valid for a restart with the same
  /// data_dir.
  void crash_stop();

  /// True while the client-admission gate is closed (peer recovery pending).
  [[nodiscard]] bool recovering() const;

  /// Readiness (the /readyz predicate): started, WAL recovery complete
  /// (client gate open), and every peer link connected.
  [[nodiscard]] bool ready() const;

  /// The unified stats registry. Every quantity this process tracks —
  /// transport, batching, admission, engines, store, WAL — registers here;
  /// /metrics, SIGUSR2 and the exit dump are renders of one snapshot().
  [[nodiscard]] stats::Registry& registry() { return registry_; }

  /// Port of the embedded metrics server (0 when Options::metrics_addr was
  /// empty or the bind failed). Valid after start().
  [[nodiscard]] std::uint16_t metrics_port() const {
    return metrics_server_.port();
  }

  /// Per hosted partition, what the WAL replay restored (empty when
  /// durability is off). Index-aligned with spec().parts.
  [[nodiscard]] const std::vector<wal::PartitionWal::ReplayStats>&
  replay_stats() const {
    return replay_stats_;
  }
  [[nodiscard]] wal::WalManager* wal_manager() { return wal_.get(); }

  /// Engine access for post-shutdown inspection (not thread-safe while
  /// running).
  server::ReplicaBase& engine(PartitionId part) {
    return group_->engine(part);
  }
  rt::NodeGroup& group() { return *group_; }

  /// Chaos hook (campaign/tests): pass outbound replication frames to the
  /// peer process serving `peer_dc` through `link` (delay / partition
  /// verdicts — see net/chaos.hpp). Call after start(); nullptr disarms.
  void arm_chaos(DcId peer_dc, std::shared_ptr<ChaosLink> link);

  [[nodiscard]] TransportStats transport_stats() const {
    return transport_.stats();
  }
  /// Batching accounting summed over every peer link.
  [[nodiscard]] BatchStats batch_stats() const;
  /// Frames that arrived for an unknown partition / departed client.
  [[nodiscard]] std::uint64_t dropped_frames() const;
  /// Client requests refused with an Overloaded reply (admission control).
  [[nodiscard]] std::uint64_t overloaded_replies() const;
  /// Retransmitted client requests absorbed by the idempotency cache
  /// (cached reply resent or duplicate of an in-flight op swallowed).
  [[nodiscard]] std::uint64_t deduped_requests() const;
  /// Client requests that reached dispatch (dedup hit-rate denominator).
  [[nodiscard]] std::uint64_t client_requests() const;

  // --- rt::Router (called from the worker threads) ---
  void route(NodeId from, NodeId to, proto::Message m) override;
  void route_to_client(NodeId from, ClientId client,
                       proto::Message m) override;

 private:
  struct Link {
    ProcessSpec spec;
    ConnId conn = kInvalidConn;
    std::unique_ptr<LinkBatcher> batcher;
  };

  void on_frame(ConnId conn, proto::Frame frame);
  void on_migrated(ConnId from, ConnId to);
  void on_disconnected(ConnId conn);
  void on_tick();
  /// `replayed` marks re-dispatch of a request parked by the recovery gate:
  /// the idempotency bookkeeping already ran at first arrival and must not
  /// mistake the replay for a client retry.
  void dispatch_client_request(ConnId conn, proto::Message m,
                               bool replayed = false);
  /// True while any replication link's parked-batch queue is past the shed
  /// threshold (admission refuses client work until the peer drains).
  [[nodiscard]] bool replication_backlogged() const;
  void send_overloaded(ConnId conn, ClientId client, std::uint64_t op_id);
  void release_parked_clients(const char* why);
  /// Populates registry_ with every instrument this process exposes. Called
  /// once from start(), after links_ is final (the scrape-time callbacks
  /// capture link/engine pointers that must be immutable by then).
  void register_metrics();
  void log(const std::string& what) const;
  [[nodiscard]] static std::uint64_t flat(NodeId n) {
    return (static_cast<std::uint64_t>(n.dc) << 32) | n.part;
  }

  ProcessSpec self_;
  ClusterLayout layout_;
  Options opt_;
  Rng rng_;
  /// Declared before group_ and metrics_server_: the group's workers hold
  /// histogram-cell pointers into it, and the server's handlers snapshot it.
  stats::Registry registry_;
  TcpTransport transport_;
  /// Declared before group_: slots hold raw PartitionWal pointers into it,
  /// so the group must be destroyed first.
  std::unique_ptr<wal::WalManager> wal_;
  std::unique_ptr<rt::NodeGroup> group_;
  std::vector<wal::PartitionWal::ReplayStats> replay_stats_;
  /// Partition coordinating RO-TXs for this DC (0 when hosted, else the
  /// lowest hosted partition — the one clients dial for transactions).
  PartitionId tx_coordinator_part_ = 0;

  // Immutable once start() returns (workers read them lock-free).
  std::vector<std::unique_ptr<Link>> links_;
  std::unordered_map<std::uint64_t, Link*> link_by_node_;

  /// Exactly-once against client retries, extended to pipelined windows:
  /// one entry per client session. The serial protocol only ever needed the
  /// LAST reply (op n+1 is sent once op n resolved); with pipelining a
  /// connection can carry several outstanding ops, so completed replies
  /// live in a bounded FIFO window and admitted-but-unresolved op_ids in a
  /// set. A retry of a completed op gets the cached reply frame resent; a
  /// retry of an op still in flight is swallowed (the original's reply is
  /// coming). Guarded by mu_.
  struct ClientOpCache {
    std::deque<std::uint64_t> done_order;  // completion order, for eviction
    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> done;
    std::unordered_set<std::uint64_t> in_flight;
  };
  /// Completed replies remembered per session — must cover the deepest
  /// pipeline window a client keeps outstanding per session (sessions stay
  /// serial today, so anything >= 1 is safe; headroom is cheap).
  static constexpr std::size_t kOpCacheWindow = 16;

  mutable std::mutex mu_;
  std::unordered_map<ConnId, NodeId> conn_peer_;  // inbound, via NodeHello
  std::unordered_map<ClientId, ConnId> client_conn_;
  std::unordered_map<ClientId, ClientOpCache> client_ops_;
  std::uint64_t dropped_ = 0;
  std::uint64_t overloaded_ = 0;
  std::uint64_t deduped_ = 0;
  std::uint64_t client_requests_ = 0;
  bool started_ = false;
  /// RecoveryDones still outstanding across all hosted partitions; client
  /// requests park in parked_clients_ until it reaches 0 (or the deadline).
  std::uint32_t recovery_dones_pending_ = 0;
  Timestamp recovery_deadline_at_ = 0;
  std::vector<std::pair<ConnId, proto::Message>> parked_clients_;

  /// Last member: destroyed (and thus stopped) before anything its handlers
  /// read — the registry, the group, the transport.
  HttpServer metrics_server_;
};

}  // namespace pocc::net
