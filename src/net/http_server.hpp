// Minimal embedded HTTP/1.0-style server for observability endpoints
// (/metrics, /healthz, /readyz). GET-only, Connection: close, served from a
// dedicated net::EventLoop on its own thread so scrapes never touch the
// transport shards or engine workers.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "net/event_loop.hpp"

namespace pocc::net {

class HttpServer {
 public:
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };
  /// Handlers run on the server thread at request time; they must be safe to
  /// call concurrently with the rest of the process (scrape-only state).
  using Handler = std::function<Response()>;

  HttpServer() = default;
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for an exact path. Must be called before start().
  void handle(std::string path, Handler handler);

  /// Binds `addr` ("host:port"; port 0 = ephemeral) and starts the server
  /// thread. Returns false (with no thread started) on bind failure.
  bool start(const std::string& addr);
  void stop();

  /// Port actually bound (valid after a successful start()).
  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  struct Conn {
    int fd = -1;
    std::string in;    // request bytes until blank line
    std::string out;   // response bytes not yet written
    bool responded = false;
  };

  void run();
  void accept_ready();
  void conn_ready(std::size_t idx, bool readable, bool writable);
  void respond(Conn& c);
  void close_conn(std::size_t idx);

  std::map<std::string, Handler> handlers_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  EventLoop loop_;
  std::vector<Conn> conns_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace pocc::net
