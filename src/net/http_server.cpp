// Syscall discipline (scripts/check_syscalls.sh): accept/recv/send here
// retry on EINTR and treat EAGAIN as "wait for the next readiness event";
// any other errno closes the connection instead of consuming garbage.
#include "net/http_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/assert.hpp"

namespace pocc::net {
namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  POCC_ASSERT(flags >= 0);
  POCC_ASSERT(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

}  // namespace

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(std::string path, Handler handler) {
  POCC_ASSERT_MSG(!thread_.joinable(), "handle() after start()");
  handlers_[std::move(path)] = std::move(handler);
}

bool HttpServer::start(const std::string& addr) {
  const auto colon = addr.rfind(':');
  if (colon == std::string::npos) return false;
  const std::string host = addr.substr(0, colon);
  const int port = std::atoi(addr.c_str() + colon + 1);
  if (port < 0 || port > 65535) return false;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(port));
  if (host.empty() || host == "0.0.0.0") {
    sa.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(sa);
  POCC_ASSERT(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&sa),
                            &len) == 0);
  port_ = ntohs(sa.sin_port);
  set_nonblocking(listen_fd_);
  loop_.watch(listen_fd_, /*read=*/true, /*write=*/false);
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
  return true;
}

void HttpServer::stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_release);
  thread_.join();
  for (std::size_t i = conns_.size(); i-- > 0;) close_conn(i);
  if (listen_fd_ >= 0) {
    loop_.unwatch(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::run() {
  std::vector<EventLoop::Event> events;
  while (!stop_.load(std::memory_order_acquire)) {
    // Short timeout bounds stop() latency; scrape traffic is light enough
    // that the idle wakeup cost is irrelevant.
    loop_.wait(50, events);
    for (const auto& ev : events) {
      if (ev.fd == listen_fd_) {
        if (ev.readable) accept_ready();
        continue;
      }
      for (std::size_t i = 0; i < conns_.size(); ++i) {
        if (conns_[i].fd == ev.fd) {
          if (ev.error && !ev.readable) {
            close_conn(i);
          } else {
            conn_ready(i, ev.readable, ev.writable);
          }
          break;
        }
      }
    }
  }
}

void HttpServer::accept_ready() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN: drained; anything else: retry on next readiness
    }
    set_nonblocking(fd);
    Conn c;
    c.fd = fd;
    conns_.push_back(std::move(c));
    loop_.watch(fd, /*read=*/true, /*write=*/false);
  }
}

void HttpServer::conn_ready(std::size_t idx, bool readable, bool writable) {
  Conn& c = conns_[idx];
  if (readable && !c.responded) {
    char buf[1024];
    for (;;) {
      const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
      if (n > 0) {
        c.in.append(buf, static_cast<std::size_t>(n));
        if (c.in.size() > 8192) {  // header flood: not a scraper
          close_conn(idx);
          return;
        }
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      close_conn(idx);  // orderly EOF before a full request, or hard error
      return;
    }
    if (c.in.find("\r\n\r\n") != std::string::npos ||
        c.in.find("\n\n") != std::string::npos) {
      respond(c);
    }
  }
  if ((writable || c.responded) && !c.out.empty()) {
    for (;;) {
      const ssize_t n = ::send(c.fd, c.out.data(), c.out.size(), MSG_NOSIGNAL);
      if (n > 0) {
        c.out.erase(0, static_cast<std::size_t>(n));
        if (c.out.empty()) break;
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        loop_.watch(c.fd, /*read=*/false, /*write=*/true);
        return;
      }
      close_conn(idx);
      return;
    }
  }
  if (c.responded && c.out.empty()) close_conn(idx);  // Connection: close
}

void HttpServer::respond(Conn& c) {
  // Request line: METHOD SP PATH SP VERSION. Query strings are ignored.
  const auto eol = c.in.find_first_of("\r\n");
  const std::string line = c.in.substr(0, eol);
  const auto sp1 = line.find(' ');
  const auto sp2 = line.find(' ', sp1 == std::string::npos ? 0 : sp1 + 1);
  Response resp;
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    resp = Response{405, "text/plain; charset=utf-8", "bad request\n"};
  } else if (line.substr(0, sp1) != "GET") {
    resp = Response{405, "text/plain; charset=utf-8", "GET only\n"};
  } else {
    std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const auto q = path.find('?');
    if (q != std::string::npos) path.erase(q);
    const auto it = handlers_.find(path);
    if (it == handlers_.end()) {
      resp = Response{404, "text/plain; charset=utf-8", "not found\n"};
    } else {
      resp = it->second();
    }
  }
  c.out = "HTTP/1.0 " + std::to_string(resp.status) + " " +
          status_text(resp.status) + "\r\nContent-Type: " + resp.content_type +
          "\r\nContent-Length: " + std::to_string(resp.body.size()) +
          "\r\nConnection: close\r\n\r\n" + resp.body;
  c.responded = true;  // caller's write pass flushes c.out
}

void HttpServer::close_conn(std::size_t idx) {
  Conn& c = conns_[idx];
  if (c.fd >= 0) {
    loop_.unwatch(c.fd);
    ::close(c.fd);
  }
  conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(idx));
}

}  // namespace pocc::net
