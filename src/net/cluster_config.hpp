// Cluster layout for the TCP deployment: which engine runs, the M x N
// topology, and the host:port every node listens on. Parsed from the poccd
// config file format (one file shared by every process of a deployment):
//
//   # comment / blank lines ignored
//   dcs 3
//   partitions 2
//   system pocc            # pocc | cure | ha
//   scheme hash            # hash | prefix (optional, default hash)
//   heartbeat_us 1000      # optional ProtocolConfig overrides
//   stabilization_us 5000
//   gc_us 50000
//   block_timeout_us 500000
//   ha_stabilization_us 100000
//   put_dependency_wait 1
//   node 0 0 127.0.0.1:7450
//   node 0 1 127.0.0.1:7451
//   ...                    # exactly dcs x partitions node lines
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "runtime/rt_cluster.hpp"

namespace pocc::net {

struct NodeAddress {
  NodeId node;
  std::string host;
  std::uint16_t port = 0;
};

struct ClusterLayout {
  TopologyConfig topology;
  rt::System system = rt::System::kPocc;
  ProtocolConfig protocol;
  std::vector<NodeAddress> nodes;

  [[nodiscard]] const NodeAddress* find(NodeId node) const;
  /// True when every (dc, partition) pair has exactly one address.
  [[nodiscard]] bool complete() const;
};

/// Parse a layout. On failure returns nullopt and sets `*error`.
std::optional<ClusterLayout> parse_cluster_config(std::istream& in,
                                                  std::string* error);

/// Load + parse a layout file.
std::optional<ClusterLayout> load_cluster_config(const std::string& path,
                                                 std::string* error);

/// Render `layout` in the config file format (used by tests and the e2e
/// harness to generate deployments programmatically).
std::string format_cluster_config(const ClusterLayout& layout);

[[nodiscard]] const char* system_name(rt::System system);
std::optional<rt::System> parse_system(const std::string& name);

}  // namespace pocc::net
