// Cluster layout for the TCP deployment: which engine runs, the M x N
// topology, and which process hosts which partitions. Parsed from the poccd
// config file format (one file shared by every process of a deployment):
//
//   # comment / blank lines ignored
//   dcs 3
//   partitions 2
//   system pocc            # pocc | cure | ha
//   scheme hash            # hash | prefix (optional, default hash)
//   heartbeat_us 1000      # optional ProtocolConfig overrides
//   stabilization_us 5000
//   gc_us 50000
//   block_timeout_us 500000
//   ha_stabilization_us 100000
//   put_dependency_wait 1
//   # one line per PROCESS — either the multi-partition group form
//   node dc=0 parts=0-1 threads=2 addr=127.0.0.1:7450
//   node dc=1 parts=0-1 threads=2 addr=127.0.0.1:7451
//   node dc=2 parts=0,1 threads=2 addr=127.0.0.1:7452
//   # ... or the legacy one-partition-per-process form
//   node 0 0 127.0.0.1:7450
//
// Every (dc, partition) pair must be hosted by exactly one process; a
// process's partitions all belong to its one data center.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "runtime/rt_cluster.hpp"

namespace pocc::net {

struct NodeAddress {
  NodeId node;
  std::string host;
  std::uint16_t port = 0;
};

/// One poccd process: the partitions of one DC it hosts, its worker-thread
/// count, and the address it listens on.
struct ProcessSpec {
  DcId dc = 0;
  std::vector<PartitionId> parts;  // sorted, non-empty
  std::uint32_t threads = 1;
  std::string host;
  std::uint16_t port = 0;

  [[nodiscard]] bool hosts(NodeId node) const;
};

struct ClusterLayout {
  TopologyConfig topology;
  rt::System system = rt::System::kPocc;
  ProtocolConfig protocol;
  /// Per-node dial addresses (derived from `processes` when parsing; group
  /// members share their process's address). Kept because clients dial per
  /// partition.
  std::vector<NodeAddress> nodes;
  /// Per-process hosting specs — the deployment's unit of launch.
  std::vector<ProcessSpec> processes;

  [[nodiscard]] const NodeAddress* find(NodeId node) const;
  [[nodiscard]] const ProcessSpec* process_for(NodeId node) const;
  /// True when every (dc, partition) pair has exactly one address.
  [[nodiscard]] bool complete() const;
};

/// Parse a layout. On failure returns nullopt and sets `*error`.
std::optional<ClusterLayout> parse_cluster_config(std::istream& in,
                                                  std::string* error);

/// Load + parse a layout file.
std::optional<ClusterLayout> load_cluster_config(const std::string& path,
                                                 std::string* error);

/// Render `layout` in the config file format (used by tests and the e2e
/// harness to generate deployments programmatically). Multi-partition or
/// multi-threaded processes emit the group form, single-partition ones the
/// legacy positional form.
std::string format_cluster_config(const ClusterLayout& layout);

[[nodiscard]] const char* system_name(rt::System system);
std::optional<rt::System> parse_system(const std::string& name);

}  // namespace pocc::net
