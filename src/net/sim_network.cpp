#include "net/sim_network.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/assert.hpp"

namespace pocc::net {

SimNetwork::SimNetwork(sim::Simulator& simulator, const LatencyConfig& latency,
                       Rng rng)
    : sim_(simulator), latency_(latency), rng_(rng) {}

void SimNetwork::register_node(NodeId id, Endpoint* ep) {
  POCC_ASSERT(ep != nullptr);
  endpoints_[node_addr(id)] = Destination{ep, id.dc};
}

void SimNetwork::register_client(ClientId id, DcId dc, NodeId collocated_with,
                                 Endpoint* ep) {
  POCC_ASSERT(ep != nullptr);
  endpoints_[client_addr(id)] = Destination{ep, dc};
  collocation_[id] = collocated_with;
}

Duration SimNetwork::sample_delay(DcId from, DcId to, bool loopback) {
  const Duration base =
      loopback ? latency_.loopback_us : latency_.base_delay(from, to);
  Duration jitter = 0;
  if (latency_.jitter_mean_us > 0) {
    jitter = static_cast<Duration>(
        rng_.exponential(static_cast<double>(latency_.jitter_mean_us)));
  }
  Duration delay = base + jitter;
  if (const LinkState* ls = link_state(from, to); ls != nullptr) {
    const LinkDegrade& d = ls->degrade;
    if (d.delay_multiplier != 1.0) {
      delay = static_cast<Duration>(
          std::llround(static_cast<double>(delay) * d.delay_multiplier));
    }
    delay += d.extra_delay_us;
  }
  return delay;
}

const SimNetwork::LinkState* SimNetwork::link_state(DcId from, DcId to) const {
  auto it = links_.find(link_key(from, to));
  return it == links_.end() ? nullptr : &it->second;
}

void SimNetwork::account(const proto::Message& m) {
  ++stats_.messages;
  stats_.bytes += proto::wire_size(m);
  switch (m.index()) {
    case 0:  // GetReq
    case 1:  // PutReq
    case 2:  // RoTxReq
    case 3:  // GetReply
    case 4:  // PutReply
    case 5:  // RoTxReply
    case 6:  // SessionClosed
      ++stats_.client_messages;
      break;
    case 7:  // Replicate
      ++stats_.replication_messages;
      break;
    case 8:  // Heartbeat
      ++stats_.heartbeat_messages;
      break;
    case 9:   // SliceReq
    case 10:  // SliceReply
      ++stats_.slice_messages;
      break;
    case 11:  // GcReport
    case 12:  // GcVector
      ++stats_.gc_messages;
      break;
    case 13:  // StabReport
    case 14:  // GssBroadcast
      ++stats_.stabilization_messages;
      break;
    default:
      break;
  }
}

void SimNetwork::schedule_delivery(Destination& dst, Channel& ch, Timestamp at,
                                   NodeId from_node, proto::Message m) {
  ch.last_delivery = at;
  Endpoint* ep = dst.endpoint;
  auto deliver_fn = [ep, from_node, msg = std::move(m)]() mutable {
    ep->deliver(from_node, std::move(msg));
  };
  // Zero-copy invariant: the message is *moved* into the scheduled action's
  // inline buffer — if it stops qualifying (someone grew proto::Message or
  // made it throwing-move), fail the build instead of silently
  // heap-allocating per delivery.
  static_assert(sim::Simulator::Action::stores_inline<decltype(deliver_fn)>,
                "delivery closure no longer fits the simulator's inline "
                "action storage");
  sim_.schedule_at(at, std::move(deliver_fn));
}

void SimNetwork::transmit(std::uint64_t from_addr, DcId from_dc,
                          std::uint64_t to_addr, NodeId from_node,
                          proto::Message m) {
  auto dst_it = endpoints_.find(to_addr);
  POCC_ASSERT_MSG(dst_it != endpoints_.end(), "unknown destination endpoint");
  Destination& dst = dst_it->second;

  // Suppressed heartbeats vanish at the NIC: no buffering, no accounting —
  // heartbeats are safe to lose (the next one carries a fresher clock).
  if (std::holds_alternative<proto::Heartbeat>(m) &&
      (to_addr & kClientTag) == 0 &&
      heartbeats_suppressed(from_node)) {
    ++stats_.dropped_messages;
    return;
  }

  Channel& ch = channels_[ChannelKey{from_addr, to_addr}];
  if (link_blocked(from_dc, dst.dc)) {
    // Lossless link: buffer until the block lifts.
    ch.blocked.emplace_back(from_node, std::move(m));
    return;
  }
  account(m);

  bool loopback = false;
  if ((to_addr & kClientTag) != 0) {
    auto coll = collocation_.find(to_addr & ~kClientTag);
    loopback = coll != collocation_.end() &&
               node_addr(coll->second) == from_addr;
  } else if ((from_addr & kClientTag) != 0) {
    auto coll = collocation_.find(from_addr & ~kClientTag);
    loopback =
        coll != collocation_.end() && node_addr(coll->second) == to_addr;
  }

  const Duration delay = sample_delay(from_dc, dst.dc, loopback);
  const Timestamp at = std::max(sim_.now() + delay, ch.last_delivery);
  schedule_delivery(dst, ch, at, from_node, std::move(m));
}

void SimNetwork::send(NodeId from, NodeId to, proto::Message m) {
  transmit(node_addr(from), from.dc, node_addr(to), from, std::move(m));
}

void SimNetwork::send_to_client(NodeId from, ClientId to, proto::Message m) {
  transmit(node_addr(from), from.dc, client_addr(to), from, std::move(m));
}

void SimNetwork::client_send(ClientId from, NodeId to, proto::Message m) {
  auto src_it = endpoints_.find(client_addr(from));
  POCC_ASSERT_MSG(src_it != endpoints_.end(), "unregistered client");
  // Client traffic is attributed to the client's home node for FIFO purposes.
  auto coll = collocation_.find(from);
  POCC_ASSERT(coll != collocation_.end());
  transmit(client_addr(from), src_it->second.dc, node_addr(to), coll->second,
           std::move(m));
}

// ------------------------------------------------- directed link faults ----

void SimNetwork::block_link(DcId from, DcId to) {
  if (from == to) return;
  LinkState& ls = links_[link_key(from, to)];
  if (ls.block_count++ == 0) ++blocked_links_;
}

void SimNetwork::unblock_link(DcId from, DcId to) {
  if (from == to) return;
  auto it = links_.find(link_key(from, to));
  if (it == links_.end() || it->second.block_count == 0) return;
  if (--it->second.block_count == 0) {
    POCC_ASSERT(blocked_links_ > 0);
    --blocked_links_;
    flush_channels(from, to);
  }
}

bool SimNetwork::link_blocked(DcId from, DcId to) const {
  if (blocked_links_ == 0 || from == to) return false;
  const LinkState* ls = link_state(from, to);
  return ls != nullptr && ls->block_count > 0;
}

void SimNetwork::flush_channels(DcId from, DcId to) {
  // Flush buffered traffic on every channel crossing the healed direction, in
  // the original send order (FIFO is preserved by the per-channel
  // last_delivery clamp; anything sent after the heal lands behind the
  // backlog on its channel for the same reason).
  for (auto& [key, ch] : channels_) {
    if (ch.blocked.empty()) continue;
    auto src = endpoints_.find(key.from);
    auto dst = endpoints_.find(key.to);
    if (src == endpoints_.end() || dst == endpoints_.end()) continue;
    if (src->second.dc != from || dst->second.dc != to) continue;
    std::deque<std::pair<NodeId, proto::Message>> pending;
    pending.swap(ch.blocked);
    for (auto& [from_node, msg] : pending) {
      account(msg);
      const Duration delay = sample_delay(from, to, false);
      const Timestamp at = std::max(sim_.now() + delay, ch.last_delivery);
      // Buffered messages are moved, not copied, on flush (zero-copy).
      schedule_delivery(dst->second, ch, at, from_node, std::move(msg));
    }
  }
}

void SimNetwork::partition_dcs(DcId a, DcId b) {
  block_link(a, b);
  block_link(b, a);
}

void SimNetwork::heal_dcs(DcId a, DcId b) {
  unblock_link(a, b);
  unblock_link(b, a);
}

void SimNetwork::isolate_dc(DcId dc, std::uint32_t num_dcs) {
  for (DcId other = 0; other < num_dcs; ++other) {
    if (other != dc) partition_dcs(dc, other);
  }
}

void SimNetwork::heal_dc(DcId dc, std::uint32_t num_dcs) {
  for (DcId other = 0; other < num_dcs; ++other) {
    if (other != dc) heal_dcs(dc, other);
  }
}

bool SimNetwork::is_partitioned(DcId a, DcId b) const {
  return link_blocked(a, b) || link_blocked(b, a);
}

// ------------------------------------------------------ gray degradation ----

void SimNetwork::degrade_link(DcId from, DcId to, Duration extra_delay_us,
                              double delay_multiplier) {
  POCC_ASSERT(extra_delay_us >= 0);
  POCC_ASSERT(delay_multiplier >= 1.0);
  LinkState& ls = links_[link_key(from, to)];
  ls.degrade.extra_delay_us = extra_delay_us;
  ls.degrade.delay_multiplier = delay_multiplier;
}

void SimNetwork::clear_link_degrade(DcId from, DcId to) {
  auto it = links_.find(link_key(from, to));
  if (it == links_.end()) return;
  it->second.degrade = LinkDegrade{};
}

// -------------------------------------------------- heartbeat suppression ----

void SimNetwork::suppress_heartbeats(NodeId node) {
  ++hb_suppressed_[node_addr(node)];
}

void SimNetwork::resume_heartbeats(NodeId node) {
  auto it = hb_suppressed_.find(node_addr(node));
  if (it == hb_suppressed_.end()) return;
  if (--it->second == 0) hb_suppressed_.erase(it);
}

bool SimNetwork::heartbeats_suppressed(NodeId node) const {
  return hb_suppressed_.contains(node_addr(node));
}

}  // namespace pocc::net
