#include "net/sim_network.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace pocc::net {

SimNetwork::SimNetwork(sim::Simulator& simulator, const LatencyConfig& latency,
                       Rng rng)
    : sim_(simulator), latency_(latency), rng_(rng) {}

void SimNetwork::register_node(NodeId id, Endpoint* ep) {
  POCC_ASSERT(ep != nullptr);
  endpoints_[node_addr(id)] = Destination{ep, id.dc};
}

void SimNetwork::register_client(ClientId id, DcId dc, NodeId collocated_with,
                                 Endpoint* ep) {
  POCC_ASSERT(ep != nullptr);
  Destination d{ep, dc};
  endpoints_[client_addr(id)] = d;
  collocation_[id] = collocated_with;
}

Duration SimNetwork::sample_delay(DcId from, DcId to, bool loopback) {
  const Duration base =
      loopback ? latency_.loopback_us : latency_.base_delay(from, to);
  Duration jitter = 0;
  if (latency_.jitter_mean_us > 0) {
    jitter = static_cast<Duration>(
        rng_.exponential(static_cast<double>(latency_.jitter_mean_us)));
  }
  return base + jitter;
}

void SimNetwork::account(const proto::Message& m) {
  ++stats_.messages;
  stats_.bytes += proto::wire_size(m);
  switch (m.index()) {
    case 0:  // GetReq
    case 1:  // PutReq
    case 2:  // RoTxReq
    case 3:  // GetReply
    case 4:  // PutReply
    case 5:  // RoTxReply
    case 6:  // SessionClosed
      ++stats_.client_messages;
      break;
    case 7:  // Replicate
      ++stats_.replication_messages;
      break;
    case 8:  // Heartbeat
      ++stats_.heartbeat_messages;
      break;
    case 9:   // SliceReq
    case 10:  // SliceReply
      ++stats_.slice_messages;
      break;
    case 11:  // GcReport
    case 12:  // GcVector
      ++stats_.gc_messages;
      break;
    case 13:  // StabReport
    case 14:  // GssBroadcast
      ++stats_.stabilization_messages;
      break;
    default:
      break;
  }
}

void SimNetwork::transmit(std::uint64_t from_addr, DcId from_dc,
                          std::uint64_t to_addr, NodeId from_node,
                          proto::Message m) {
  auto dst_it = endpoints_.find(to_addr);
  POCC_ASSERT_MSG(dst_it != endpoints_.end(), "unknown destination endpoint");
  Destination& dst = dst_it->second;

  Channel& ch = channels_[ChannelKey{from_addr, to_addr}];
  if (is_partitioned(from_dc, dst.dc)) {
    // Lossless link: buffer until the partition heals.
    ch.blocked.emplace_back(from_node, std::move(m));
    return;
  }
  account(m);

  bool loopback = false;
  if ((to_addr & kClientTag) != 0) {
    auto coll = collocation_.find(to_addr & ~kClientTag);
    loopback = coll != collocation_.end() &&
               node_addr(coll->second) == from_addr;
  } else if ((from_addr & kClientTag) != 0) {
    auto coll = collocation_.find(from_addr & ~kClientTag);
    loopback =
        coll != collocation_.end() && node_addr(coll->second) == to_addr;
  }

  const Duration delay = sample_delay(from_dc, dst.dc, loopback);
  const Timestamp at = std::max(sim_.now() + delay, ch.last_delivery);
  ch.last_delivery = at;
  Endpoint* ep = dst.endpoint;
  auto deliver_fn = [ep, from_node, msg = std::move(m)]() mutable {
    ep->deliver(from_node, std::move(msg));
  };
  // Zero-copy invariant: the message is *moved* into the scheduled action's
  // inline buffer — if it stops qualifying (someone grew proto::Message or
  // made it throwing-move), fail the build instead of silently
  // heap-allocating per delivery.
  static_assert(sim::Simulator::Action::stores_inline<decltype(deliver_fn)>,
                "delivery closure no longer fits the simulator's inline "
                "action storage");
  sim_.schedule_at(at, std::move(deliver_fn));
}

void SimNetwork::send(NodeId from, NodeId to, proto::Message m) {
  transmit(node_addr(from), from.dc, node_addr(to), from, std::move(m));
}

void SimNetwork::send_to_client(NodeId from, ClientId to, proto::Message m) {
  transmit(node_addr(from), from.dc, client_addr(to), from, std::move(m));
}

void SimNetwork::client_send(ClientId from, NodeId to, proto::Message m) {
  auto src_it = endpoints_.find(client_addr(from));
  POCC_ASSERT_MSG(src_it != endpoints_.end(), "unregistered client");
  // Client traffic is attributed to the client's home node for FIFO purposes.
  auto coll = collocation_.find(from);
  POCC_ASSERT(coll != collocation_.end());
  transmit(client_addr(from), src_it->second.dc, node_addr(to), coll->second,
           std::move(m));
}

void SimNetwork::partition_dcs(DcId a, DcId b) {
  if (a == b) return;
  partitions_.insert({std::min(a, b), std::max(a, b)});
}

void SimNetwork::heal_dcs(DcId a, DcId b) {
  partitions_.erase({std::min(a, b), std::max(a, b)});
  // Flush buffered traffic on every channel crossing the healed pair, in the
  // original send order (FIFO is preserved by the per-channel last_delivery).
  for (auto& [key, ch] : channels_) {
    if (ch.blocked.empty()) continue;
    auto src = endpoints_.find(key.from);
    auto dst = endpoints_.find(key.to);
    if (src == endpoints_.end() || dst == endpoints_.end()) continue;
    const DcId sd = src->second.dc;
    const DcId dd = dst->second.dc;
    if (!((sd == a && dd == b) || (sd == b && dd == a))) continue;
    std::deque<std::pair<NodeId, proto::Message>> pending;
    pending.swap(ch.blocked);
    for (auto& [from_node, msg] : pending) {
      account(msg);
      const Duration delay = sample_delay(sd, dd, false);
      const Timestamp at = std::max(sim_.now() + delay, ch.last_delivery);
      ch.last_delivery = at;
      Endpoint* ep = dst->second.endpoint;
      // Buffered messages are moved, not copied, on flush (zero-copy).
      sim_.schedule_at(at, [ep, fn = from_node, m = std::move(msg)]() mutable {
        ep->deliver(fn, std::move(m));
      });
    }
  }
}

void SimNetwork::isolate_dc(DcId dc, std::uint32_t num_dcs) {
  for (DcId other = 0; other < num_dcs; ++other) {
    if (other != dc) partition_dcs(dc, other);
  }
}

void SimNetwork::heal_dc(DcId dc, std::uint32_t num_dcs) {
  for (DcId other = 0; other < num_dcs; ++other) {
    if (other != dc) heal_dcs(dc, other);
  }
}

bool SimNetwork::is_partitioned(DcId a, DcId b) const {
  if (a == b) return false;
  return partitions_.contains({std::min(a, b), std::max(a, b)});
}

}  // namespace pocc::net
