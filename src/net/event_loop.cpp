#include "net/event_loop.hpp"

#include <errno.h>
#include <poll.h>
#include <unistd.h>

#include <cstring>

#if defined(__linux__)
#include <sys/epoll.h>
#define POCC_HAVE_EPOLL 1
#endif

#include "common/assert.hpp"

namespace pocc::net {

namespace {

constexpr std::size_t kMaxEventsPerWait = 256;

}  // namespace

EventLoop::Backend EventLoop::default_backend() {
#if defined(POCC_HAVE_EPOLL)
  return Backend::kEpoll;
#else
  return Backend::kPoll;
#endif
}

EventLoop::EventLoop(Backend backend) : backend_(backend) {
#if defined(POCC_HAVE_EPOLL)
  if (backend_ == Backend::kEpoll) {
    epoll_fd_ = ::epoll_create1(0);
    POCC_ASSERT_MSG(epoll_fd_ >= 0, "epoll_create1 failed");
    return;
  }
#endif
  // Platforms without epoll silently get the fallback even when kEpoll was
  // requested — callers pick a backend for *testing*, not for semantics.
  backend_ = Backend::kPoll;
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::watch(int fd, bool read, bool write) {
  POCC_ASSERT(fd >= 0);
  auto it = interest_.find(fd);
  const bool known = it != interest_.end();
  if (known && it->second.read == read && it->second.write == write) return;
  interest_[fd] = Interest{read, write};
#if defined(POCC_HAVE_EPOLL)
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    ev.events = (read ? EPOLLIN : 0u) | (write ? EPOLLOUT : 0u) | EPOLLRDHUP;
    ev.data.fd = fd;
    int rc = ::epoll_ctl(epoll_fd_, known ? EPOLL_CTL_MOD : EPOLL_CTL_ADD, fd,
                         &ev);
    if (rc != 0 && errno == ENOENT) {
      // The kernel dropped the registration behind our back (fd closed and
      // the number recycled); re-add under the fresh identity.
      rc = ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    } else if (rc != 0 && errno == EEXIST) {
      rc = ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
    }
    POCC_ASSERT_MSG(rc == 0, "epoll_ctl failed");
  }
#endif
}

void EventLoop::unwatch(int fd) {
  auto it = interest_.find(fd);
  if (it == interest_.end()) return;
  interest_.erase(it);
#if defined(POCC_HAVE_EPOLL)
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    // Failure is tolerated here (the caller may race a close), but the
    // table stays exact either way.
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, &ev);
  }
#endif
}

std::size_t EventLoop::wait(int timeout_ms, std::vector<Event>& out) {
  out.clear();
#if defined(POCC_HAVE_EPOLL)
  if (backend_ == Backend::kEpoll) {
    epoll_event evs[kMaxEventsPerWait];
    const int n = ::epoll_wait(epoll_fd_, evs,
                               static_cast<int>(kMaxEventsPerWait),
                               timeout_ms);
    if (n < 0) {
      // EINTR: a signal landed mid-wait; the event set is unspecified, so
      // report nothing and let the caller re-enter (satellite: never
      // consume readiness state after an interrupted wait).
      POCC_ASSERT_MSG(errno == EINTR, "epoll_wait failed");
      return 0;
    }
    for (int i = 0; i < n; ++i) {
      Event e;
      e.fd = evs[i].data.fd;
      e.readable = (evs[i].events & (EPOLLIN | EPOLLRDHUP)) != 0;
      e.writable = (evs[i].events & EPOLLOUT) != 0;
      e.error = (evs[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(e);
    }
    return out.size();
  }
#endif
  pfds_.clear();
  pfds_.reserve(interest_.size());
  for (const auto& [fd, in] : interest_) {
    pfds_.push_back(pollfd{
        fd,
        static_cast<short>((in.read ? POLLIN : 0) | (in.write ? POLLOUT : 0)),
        0});
  }
  const int n = ::poll(pfds_.data(), pfds_.size(), timeout_ms);
  if (n < 0) {
    // Same contract as the epoll path: on EINTR `revents` is unspecified
    // and must not be consumed; anything else is a programming error.
    POCC_ASSERT_MSG(errno == EINTR, "poll failed");
    return 0;
  }
  if (n == 0) return 0;
  for (const pollfd& p : pfds_) {
    if (p.revents == 0) continue;
    Event e;
    e.fd = p.fd;
    e.readable = (p.revents & POLLIN) != 0;
    e.writable = (p.revents & POLLOUT) != 0;
    e.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    out.push_back(e);
  }
  return out.size();
}

}  // namespace pocc::net
