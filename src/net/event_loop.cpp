#include "net/event_loop.hpp"

#include <errno.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <sys/epoll.h>
#define POCC_HAVE_EPOLL 1
#endif

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#if defined(__NR_io_uring_setup) && defined(__NR_io_uring_enter)
#define POCC_HAVE_URING 1
#endif
#endif

#include "common/assert.hpp"

// Older uapi headers may predate the flags this backend relies on; the
// values are kernel ABI, so defining them locally is exact.
#if defined(POCC_HAVE_URING)
#ifndef IORING_FEAT_SINGLE_MMAP
#define IORING_FEAT_SINGLE_MMAP (1U << 0)
#endif
#ifndef IORING_FEAT_NODROP
#define IORING_FEAT_NODROP (1U << 1)
#endif
#ifndef IORING_FEAT_EXT_ARG
#define IORING_FEAT_EXT_ARG (1U << 8)
#endif
#ifndef IORING_FEAT_RSRC_TAGS
#define IORING_FEAT_RSRC_TAGS (1U << 10)
#endif
#ifndef IORING_POLL_ADD_MULTI
#define IORING_POLL_ADD_MULTI (1U << 0)
#endif
#ifndef IORING_CQE_F_MORE
#define IORING_CQE_F_MORE (1U << 1)
#endif
#ifndef IORING_ENTER_EXT_ARG
#define IORING_ENTER_EXT_ARG (1U << 3)
#endif
#ifndef IORING_SETUP_CQSIZE
#define IORING_SETUP_CQSIZE (1U << 3)
#endif
#endif  // POCC_HAVE_URING

#ifndef POLLRDHUP
#define POLLRDHUP 0x2000
#endif

namespace pocc::net {

namespace {

constexpr std::size_t kMaxEventsPerWait = 256;

// A process-wide override installed by set_default_backend() (CLI flags);
// -1 = none. Read-mostly; relaxed is fine.
std::atomic<int> g_backend_override{-1};

EventLoop::Backend platform_default() {
#if defined(POCC_HAVE_EPOLL)
  return EventLoop::Backend::kEpoll;
#else
  return EventLoop::Backend::kPoll;
#endif
}

#if defined(POCC_HAVE_URING)

// Submission: (gen << 32) | fd tags every multishot POLL_ADD so a CQE from
// a registration that was since canceled (fd recycled, interest changed)
// is recognizably stale. POLL_REMOVE results carry kIgnoreUd and are
// dropped on sight. fd is a nonnegative int, so the low word never reaches
// 0xffffffff and the sentinel cannot collide.
constexpr std::uint64_t kIgnoreUd = ~std::uint64_t{0};

// Kernel ABI struct for IORING_ENTER_EXT_ARG waits (io_uring_getevents_arg);
// defined locally so pre-5.11 uapi headers still compile this file.
struct GetEventsArg {
  std::uint64_t sigmask;
  std::uint32_t sigmask_sz;
  std::uint32_t pad;
  std::uint64_t ts;
};

// EXT_ARG timeouts take a __kernel_timespec: 64-bit seconds AND nanoseconds
// regardless of the libc timespec layout.
struct KernelTimespec {
  std::int64_t tv_sec;
  std::int64_t tv_nsec;
};

int sys_io_uring_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

long sys_io_uring_enter(int ring_fd, unsigned to_submit, unsigned min_complete,
                        unsigned flags, const void* arg, std::size_t argsz) {
  return ::syscall(__NR_io_uring_enter, ring_fd, to_submit, min_complete,
                   flags, arg, argsz);
}

#endif  // POCC_HAVE_URING

}  // namespace

EventLoop::Backend EventLoop::default_backend() {
  const int forced = g_backend_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Backend>(forced);
  // POCC_EVENT_BACKEND lets every existing harness (tests, e2e scripts,
  // CI legs) exercise a backend without new plumbing. Parsed once.
  static const Backend from_env = [] {
    const char* e = std::getenv("POCC_EVENT_BACKEND");
    if (e != nullptr) {
      Backend b;
      if (parse_backend(e, &b)) return b;
      std::fprintf(stderr,
                   "pocc: ignoring unknown POCC_EVENT_BACKEND '%s' "
                   "(want epoll|poll|uring)\n",
                   e);
    }
    return platform_default();
  }();
  return from_env;
}

void EventLoop::set_default_backend(Backend backend) {
  g_backend_override.store(static_cast<int>(backend),
                           std::memory_order_relaxed);
}

bool EventLoop::parse_backend(const std::string& name, Backend* out) {
  if (name == "epoll") {
    *out = Backend::kEpoll;
  } else if (name == "poll") {
    *out = Backend::kPoll;
  } else if (name == "uring") {
    *out = Backend::kUring;
  } else {
    return false;
  }
  return true;
}

const char* EventLoop::backend_name(Backend backend) {
  switch (backend) {
    case Backend::kEpoll:
      return "epoll";
    case Backend::kPoll:
      return "poll";
    case Backend::kUring:
      return "uring";
  }
  return "?";
}

bool EventLoop::uring_available() {
#if !defined(POCC_HAVE_URING)
  return false;
#else
  // One throwaway ring per process answers both questions: does the
  // kernel/seccomp profile accept the syscalls at all, and is it new
  // enough for this backend's needs — EXT_ARG (5.11) for timed waits and
  // multishot poll (5.13; no feature bit of its own, but RSRC_TAGS landed
  // in the same release and works as a proxy).
  static const bool available = [] {
    io_uring_params p{};
    const int fd = sys_io_uring_setup(4, &p);
    if (fd < 0) return false;
    ::close(fd);
    return (p.features & IORING_FEAT_EXT_ARG) != 0 &&
           (p.features & IORING_FEAT_RSRC_TAGS) != 0;
  }();
  return available;
#endif
}

EventLoop::EventLoop(Backend backend) : backend_(backend) {
  if (backend_ == Backend::kUring) {
    if (uring_available() && uring_init(1024)) return;
    // Graceful degradation, reported once: a kUring request on a kernel
    // without it is a config choice, not a programming error.
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr,
                   "pocc: io_uring backend unavailable on this kernel, "
                   "falling back to %s\n",
                   backend_name(platform_default()));
    }
    backend_ = platform_default();
  }
#if defined(POCC_HAVE_EPOLL)
  if (backend_ == Backend::kEpoll) {
    epoll_fd_ = ::epoll_create1(0);
    POCC_ASSERT_MSG(epoll_fd_ >= 0, "epoll_create1 failed");
    return;
  }
#endif
  // Platforms without epoll silently get the fallback even when kEpoll was
  // requested — callers pick a backend for *testing*, not for semantics.
  backend_ = Backend::kPoll;
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  uring_teardown();
}

EventLoop::Interest& EventLoop::slot(int fd) {
  const auto idx = static_cast<std::size_t>(fd);
  if (idx >= interest_.size()) {
    // Grow geometrically so a dial storm of ascending fds does not
    // reallocate per connection; 100k fds is ~#fds * sizeof(Interest).
    interest_.resize(std::max(idx + 1, interest_.size() * 2));
  }
  return interest_[idx];
}

const EventLoop::Interest* EventLoop::find_slot(int fd) const {
  const auto idx = static_cast<std::size_t>(fd);
  if (fd < 0 || idx >= interest_.size() || !interest_[idx].watched) {
    return nullptr;
  }
  return &interest_[idx];
}

void EventLoop::watch(int fd, bool read, bool write) {
  POCC_ASSERT(fd >= 0);
  Interest& in = slot(fd);
  const bool known = in.watched;
  if (known && in.read == read && in.write == write) return;
  if (!known) {
    in.watched = true;
    ++watched_count_;
  }
  in.read = read;
  in.write = write;
#if defined(POCC_HAVE_EPOLL)
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    ev.events = (read ? EPOLLIN : 0u) | (write ? EPOLLOUT : 0u) | EPOLLRDHUP;
    ev.data.fd = fd;
    int rc = ::epoll_ctl(epoll_fd_, known ? EPOLL_CTL_MOD : EPOLL_CTL_ADD, fd,
                         &ev);
    if (rc != 0 && errno == ENOENT) {
      // The kernel dropped the registration behind our back (fd closed and
      // the number recycled); re-add under the fresh identity.
      rc = ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    } else if (rc != 0 && errno == EEXIST) {
      rc = ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
    }
    POCC_ASSERT_MSG(rc == 0, "epoll_ctl failed");
    return;
  }
#endif
  if (backend_ == Backend::kUring) {
    if (in.armed) {
      // Interest changed under an armed multishot poll: cancel the old
      // registration and rearm under a fresh generation so its in-flight
      // CQEs are dropped as stale. armed goes false FIRST — the pushes can
      // drain CQEs inline, and the drain handler must not rearm the old
      // registration it is about to lose.
      in.armed = false;
      uring_push_poll_remove(fd, in);
      ++in.gen;
    }
    uring_push_poll_add(fd, in);
    in.armed = true;
    return;
  }
  if (known) {
    poll_update(fd, in);
  } else {
    poll_add(fd, in);
  }
}

void EventLoop::unwatch(int fd) {
  if (find_slot(fd) == nullptr) return;
  Interest& in = interest_[static_cast<std::size_t>(fd)];
  in.watched = false;
  --watched_count_;
#if defined(POCC_HAVE_EPOLL)
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    // Failure is tolerated here (the caller may race a close), but the
    // table stays exact either way.
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, &ev);
    return;
  }
#endif
  if (backend_ == Backend::kUring) {
    if (in.armed) {
      in.armed = false;
      uring_push_poll_remove(fd, in);
    }
    // The generation bump outlives the slot: a recycled fd watched later
    // must not resurrect CQEs from this registration.
    ++in.gen;
    return;
  }
  poll_remove(fd);
}

std::size_t EventLoop::wait(int timeout_ms, std::vector<Event>& out) {
  out.clear();
  ++wait_seq_;
#if defined(POCC_HAVE_EPOLL)
  if (backend_ == Backend::kEpoll) {
    epoll_event evs[kMaxEventsPerWait];
    const int n = ::epoll_wait(epoll_fd_, evs,
                               static_cast<int>(kMaxEventsPerWait),
                               timeout_ms);
    if (n < 0) {
      // EINTR: a signal landed mid-wait; the event set is unspecified, so
      // report nothing and let the caller re-enter (satellite: never
      // consume readiness state after an interrupted wait).
      POCC_ASSERT_MSG(errno == EINTR, "epoll_wait failed");
      return 0;
    }
    for (int i = 0; i < n; ++i) {
      Event e;
      e.fd = evs[i].data.fd;
      e.readable = (evs[i].events & (EPOLLIN | EPOLLRDHUP)) != 0;
      e.writable = (evs[i].events & EPOLLOUT) != 0;
      e.error = (evs[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(e);
    }
    return out.size();
  }
#endif
  if (backend_ == Backend::kUring) return wait_uring(timeout_ms, out);
  return wait_poll(timeout_ms, out);
}

void EventLoop::emit_event(int fd, bool readable, bool writable, bool error,
                           std::vector<Event>& out) {
  const Interest* found = find_slot(fd);
  if (found == nullptr) return;  // unwatched since the event was produced
  auto& in = interest_[static_cast<std::size_t>(fd)];
  // The fd check guards against a stamp that points into a *different*
  // vector (an event deferred outside wait() vs the live `out`): merging is
  // only valid when the indexed entry really is this fd's event.
  if (in.seen_seq == wait_seq_ && in.out_index < out.size() &&
      out[in.out_index].fd == fd) {
    Event& ev = out[in.out_index];
    ev.readable = ev.readable || readable;
    ev.writable = ev.writable || writable;
    ev.error = ev.error || error;
    return;
  }
  in.seen_seq = wait_seq_;
  in.out_index = static_cast<std::uint32_t>(out.size());
  out.push_back(Event{fd, readable, writable, error});
}

// ---------------------------------------------------------------------------
// kPoll: the pollfd array is maintained incrementally (swap-remove with an
// index backlink in the interest slot) instead of being rebuilt from the
// table on every wait — the kernel-side O(watched) scan is inherent to
// poll(2), but the userspace one was not.

void EventLoop::poll_add(int fd, const Interest& in) {
  Interest& self = interest_[static_cast<std::size_t>(fd)];
  self.pfd_index = static_cast<std::int32_t>(pfds_.size());
  pfds_.push_back(pollfd{
      fd,
      static_cast<short>((in.read ? POLLIN : 0) | (in.write ? POLLOUT : 0)),
      0});
}

void EventLoop::poll_update(int fd, const Interest& in) {
  const Interest& self = interest_[static_cast<std::size_t>(fd)];
  POCC_ASSERT(self.pfd_index >= 0 &&
              static_cast<std::size_t>(self.pfd_index) < pfds_.size());
  pfds_[static_cast<std::size_t>(self.pfd_index)].events =
      static_cast<short>((in.read ? POLLIN : 0) | (in.write ? POLLOUT : 0));
}

void EventLoop::poll_remove(int fd) {
  Interest& self = interest_[static_cast<std::size_t>(fd)];
  POCC_ASSERT(self.pfd_index >= 0 &&
              static_cast<std::size_t>(self.pfd_index) < pfds_.size());
  const auto idx = static_cast<std::size_t>(self.pfd_index);
  if (idx + 1 != pfds_.size()) {
    pfds_[idx] = pfds_.back();
    interest_[static_cast<std::size_t>(pfds_[idx].fd)].pfd_index =
        static_cast<std::int32_t>(idx);
  }
  pfds_.pop_back();
  self.pfd_index = -1;
}

std::size_t EventLoop::wait_poll(int timeout_ms, std::vector<Event>& out) {
  const int n = ::poll(pfds_.data(), pfds_.size(), timeout_ms);
  if (n < 0) {
    // Same contract as the epoll path: on EINTR `revents` is unspecified
    // and must not be consumed; anything else is a programming error.
    POCC_ASSERT_MSG(errno == EINTR, "poll failed");
    return 0;
  }
  if (n == 0) return 0;
  for (const pollfd& p : pfds_) {
    if (p.revents == 0) continue;
    Event e;
    e.fd = p.fd;
    e.readable = (p.revents & POLLIN) != 0;
    e.writable = (p.revents & POLLOUT) != 0;
    e.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    out.push_back(e);
  }
  return out.size();
}

// ---------------------------------------------------------------------------
// kUring: readiness mode over raw syscalls. Each watched fd carries one
// multishot IORING_OP_POLL_ADD; the kernel streams readiness into the
// shared-memory CQ ring, so a wait() that finds CQEs posted consumes them
// without entering the kernel at all.

#if defined(POCC_HAVE_URING)

bool EventLoop::uring_init(unsigned entries) {
  io_uring_params p{};
  // CQ sized well above SQ: multishot poll posts completions the kernel
  // never waits for us to make room for, and NODROP handles the rest by
  // backlogging (surfaced as EBUSY on submit, handled below).
  p.flags = IORING_SETUP_CQSIZE;
  p.cq_entries = entries * 8;
  ring_fd_ = sys_io_uring_setup(entries, &p);
  if (ring_fd_ < 0) return false;
  sq_ring_bytes_ = p.sq_off.array + p.sq_entries * sizeof(unsigned);
  cq_ring_bytes_ = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
  const bool single_mmap = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap) {
    sq_ring_bytes_ = cq_ring_bytes_ = std::max(sq_ring_bytes_, cq_ring_bytes_);
  }
  sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
  if (sq_ring_ == MAP_FAILED) {
    sq_ring_ = nullptr;
    uring_teardown();
    return false;
  }
  if (single_mmap) {
    cq_ring_ = sq_ring_;
  } else {
    cq_ring_ = ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
    if (cq_ring_ == MAP_FAILED) {
      cq_ring_ = nullptr;
      uring_teardown();
      return false;
    }
  }
  sqes_bytes_ = p.sq_entries * sizeof(io_uring_sqe);
  sqes_ = ::mmap(nullptr, sqes_bytes_, PROT_READ | PROT_WRITE,
                 MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
  if (sqes_ == MAP_FAILED) {
    sqes_ = nullptr;
    uring_teardown();
    return false;
  }
  auto* sqb = static_cast<std::uint8_t*>(sq_ring_);
  sq_head_ = reinterpret_cast<unsigned*>(sqb + p.sq_off.head);
  sq_tail_ = reinterpret_cast<unsigned*>(sqb + p.sq_off.tail);
  sq_mask_ = *reinterpret_cast<unsigned*>(sqb + p.sq_off.ring_mask);
  sq_array_ = reinterpret_cast<unsigned*>(sqb + p.sq_off.array);
  sq_entries_ = p.sq_entries;
  auto* cqb = static_cast<std::uint8_t*>(cq_ring_);
  cq_head_ = reinterpret_cast<unsigned*>(cqb + p.cq_off.head);
  cq_tail_ = reinterpret_cast<unsigned*>(cqb + p.cq_off.tail);
  cq_mask_ = *reinterpret_cast<unsigned*>(cqb + p.cq_off.ring_mask);
  cqes_ = cqb + p.cq_off.cqes;
  return true;
}

void EventLoop::uring_teardown() {
  // Quiesce before closing: submit staged POLL_REMOVEs and reap their
  // completions so ring exit has as little cancel work as possible — exit
  // task-work lands on THIS task and would interrupt a later unrelated
  // syscall with a spurious (contract-permitted, but noisy) EINTR.
  if (ring_fd_ >= 0) {
    uring_submit_pending();
    std::vector<Event> discard;
    uring_drain_cq(discard);
  }
  if (sqes_ != nullptr) ::munmap(sqes_, sqes_bytes_);
  if (cq_ring_ != nullptr && cq_ring_ != sq_ring_) {
    ::munmap(cq_ring_, cq_ring_bytes_);
  }
  if (sq_ring_ != nullptr) ::munmap(sq_ring_, sq_ring_bytes_);
  if (ring_fd_ >= 0) ::close(ring_fd_);
  sqes_ = nullptr;
  cq_ring_ = nullptr;
  sq_ring_ = nullptr;
  ring_fd_ = -1;
}

void* EventLoop::uring_next_sqe() {
  for (;;) {
    const unsigned head = __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
    const unsigned tail = *sq_tail_;  // single producer: plain read
    if (tail - head < sq_entries_) {
      const unsigned idx = tail & sq_mask_;
      auto* sqe = &static_cast<io_uring_sqe*>(sqes_)[idx];
      std::memset(sqe, 0, sizeof(*sqe));
      sq_array_[idx] = idx;
      __atomic_store_n(sq_tail_, tail + 1, __ATOMIC_RELEASE);
      ++to_submit_;
      ++stats_.uring_sqes;
      return sqe;
    }
    // SQ full mid-registration-storm: hand the backlog to the kernel. If
    // it refuses with a CQ-overflow backlog (EBUSY), make room by draining
    // completions into deferred_ — the next wait() delivers them — and
    // nudge the overflow list back into the ring.
    const unsigned before = to_submit_;
    uring_submit_pending();
    if (to_submit_ == before) {
      uring_drain_cq(deferred_);
      const long rc = sys_io_uring_enter(ring_fd_, 0, 0,
                                         IORING_ENTER_GETEVENTS, nullptr, 0);
      ++stats_.uring_enters;
      POCC_ASSERT_MSG(rc >= 0 || errno == EINTR || errno == EBUSY ||
                          errno == EAGAIN,
                      "io_uring_enter(flush) failed");
    }
  }
}

void EventLoop::uring_push_poll_add(int fd, const Interest& in) {
  const unsigned mask = (in.read ? (POLLIN | POLLRDHUP) : 0u) |
                        (in.write ? POLLOUT : 0u);
  auto* sqe = static_cast<io_uring_sqe*>(uring_next_sqe());
  sqe->opcode = IORING_OP_POLL_ADD;
  sqe->fd = fd;
  sqe->poll32_events = mask;  // POLLERR/POLLHUP are always reported
  sqe->len = IORING_POLL_ADD_MULTI;
  sqe->user_data = (static_cast<std::uint64_t>(in.gen) << 32) |
                   static_cast<std::uint32_t>(fd);
}

void EventLoop::uring_push_poll_remove(int fd, const Interest& in) {
  auto* sqe = static_cast<io_uring_sqe*>(uring_next_sqe());
  sqe->opcode = IORING_OP_POLL_REMOVE;
  sqe->fd = -1;
  sqe->addr = (static_cast<std::uint64_t>(in.gen) << 32) |
              static_cast<std::uint32_t>(fd);
  sqe->user_data = kIgnoreUd;
}

void EventLoop::uring_submit_pending() {
  while (to_submit_ > 0) {
    const long rc =
        sys_io_uring_enter(ring_fd_, to_submit_, 0, 0, nullptr, 0);
    ++stats_.uring_enters;
    if (rc < 0) {
      if (errno == EINTR) continue;  // submit-only: safe to retry
      // EBUSY/EAGAIN: CQ overflow backlog — the staged SQEs stay in the
      // ring (tail already advanced) and the next flush retries them.
      POCC_ASSERT_MSG(errno == EBUSY || errno == EAGAIN,
                      "io_uring_enter(submit) failed");
      return;
    }
    to_submit_ -= std::min(to_submit_, static_cast<unsigned>(rc));
    if (rc == 0) return;  // defensive: avoid spinning on a stuck ring
  }
}

std::size_t EventLoop::uring_drain_cq(std::vector<Event>& out) {
  std::size_t drained = 0;
  for (;;) {
    // cq_head_ is reloaded and republished PER ENTRY, and the CQE is
    // copied out before processing: handling a completion can rearm (push
    // an SQE), which on a full SQ reenters this drain — the ring indices
    // must already be consistent at that point.
    const unsigned head = *cq_head_;  // single consumer: plain read
    const unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
    if (head == tail) break;
    const io_uring_cqe cqe =
        static_cast<const io_uring_cqe*>(cqes_)[head & cq_mask_];
    __atomic_store_n(cq_head_, head + 1, __ATOMIC_RELEASE);
    ++drained;
    ++stats_.uring_cqes;
    const std::uint64_t ud = cqe.user_data;
    if (ud == kIgnoreUd) continue;  // POLL_REMOVE result
    const int fd = static_cast<int>(ud & 0xffffffffu);
    const auto gen = static_cast<std::uint32_t>(ud >> 32);
    const Interest* in = find_slot(fd);
    if (in == nullptr || in->gen != gen) continue;  // stale registration
    if (cqe.res < 0) {
      if (cqe.res == -ECANCELED) continue;
      // e.g. -EBADF: surface as an error event; the caller closes and
      // unwatches, so no rearm.
      interest_[static_cast<std::size_t>(fd)].armed = false;
      emit_event(fd, false, false, true, out);
      continue;
    }
    const auto revents = static_cast<unsigned>(cqe.res);
    emit_event(fd, (revents & (POLLIN | POLLRDHUP | POLLHUP)) != 0,
               (revents & POLLOUT) != 0,
               (revents & (POLLERR | POLLHUP)) != 0, out);
    if ((cqe.flags & IORING_CQE_F_MORE) == 0 && in->armed) {
      // Multishot terminated (kernel-side oneshot downgrade or POLLHUP
      // finality); rearm under the same generation. `armed` is false only
      // inside a watch/unwatch transition, which arms its own successor.
      uring_push_poll_add(fd, *in);
    }
  }
  return drained;
}

std::size_t EventLoop::wait_uring(int timeout_ms, std::vector<Event>& out) {
  const std::uint64_t enters_before = stats_.uring_enters.load();
  if (!deferred_.empty()) {
    for (const Event& ev : deferred_) {
      emit_event(ev.fd, ev.readable, ev.writable, ev.error, out);
    }
    deferred_.clear();
  }
  uring_drain_cq(out);
  if (out.empty() && timeout_ms != 0) {
    // Nothing buffered: one combined submit+wait enter. EXT_ARG carries
    // the timeout so no userspace timerfd is needed.
    KernelTimespec ts{};
    GetEventsArg arg{};
    unsigned flags = IORING_ENTER_GETEVENTS;
    const void* argp = nullptr;
    std::size_t argsz = 0;
    if (timeout_ms > 0) {
      ts.tv_sec = timeout_ms / 1000;
      ts.tv_nsec = static_cast<std::int64_t>(timeout_ms % 1000) * 1'000'000;
      arg.ts = reinterpret_cast<std::uintptr_t>(&ts);
      flags |= IORING_ENTER_EXT_ARG;
      argp = &arg;
      argsz = sizeof(arg);
    }
    const long rc =
        sys_io_uring_enter(ring_fd_, to_submit_, 1, flags, argp, argsz);
    ++stats_.uring_enters;
    if (rc < 0) {
      // ETIME: the EXT_ARG timeout elapsed. EINTR: empty set, same
      // contract as the other backends. EBUSY/EAGAIN: overflow backlog —
      // the drain below consumes it.
      POCC_ASSERT_MSG(errno == ETIME || errno == EINTR || errno == EBUSY ||
                          errno == EAGAIN,
                      "io_uring_enter(wait) failed");
    } else {
      // Interrupted-after-submit returns the consumed count instead of
      // -EINTR; either way the wait phase may have been cut short.
      to_submit_ -= std::min(to_submit_, static_cast<unsigned>(rc));
    }
    uring_drain_cq(out);
  }
  // Rearms staged by the drains (and poll-timeout==0 registrations) must
  // reach the kernel before the caller blocks elsewhere.
  if (to_submit_ > 0) uring_submit_pending();
  if (!out.empty() && stats_.uring_enters.load() == enters_before) {
    ++stats_.uring_no_syscall_waits;
  }
  return out.size();
}

#else  // !POCC_HAVE_URING — stubs; the constructor never selects kUring here.

bool EventLoop::uring_init(unsigned) { return false; }
void EventLoop::uring_teardown() {}
void EventLoop::uring_push_poll_add(int, const Interest&) {}
void EventLoop::uring_push_poll_remove(int, const Interest&) {}
void* EventLoop::uring_next_sqe() { return nullptr; }
void EventLoop::uring_submit_pending() {}
std::size_t EventLoop::uring_drain_cq(std::vector<Event>&) { return 0; }
std::size_t EventLoop::wait_uring(int, std::vector<Event>&) { return 0; }

#endif  // POCC_HAVE_URING

}  // namespace pocc::net
