// Client-side endpoint of the TCP deployment: one pool per (process, data
// center) holding a connection to every partition node of that DC, demuxing
// replies to blocking sessions by client id. Used by pocc_loadgen and the
// e2e tests.
//
// A Session mirrors rt::Session (client/client_engine.hpp drives the
// protocol; requests go to the partition owning the key, RO-TXs to the
// collocated partition-0 coordinator) and additionally records every
// operation into a checker::SessionHistory, so a finished run can be
// replayed through the HistoryChecker (checker/client_history.hpp) to verify
// the deployment end to end.
//
// Client ids must be unique across the WHOLE deployment (all loadgen
// processes), and each session must be driven by a single thread.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "checker/client_history.hpp"
#include "client/client_engine.hpp"
#include "net/cluster_config.hpp"
#include "net/tcp_transport.hpp"

namespace pocc::net {

class TcpClientPool;

/// Blocking client session over TCP (sticky to the pool's DC).
class TcpSession {
 public:
  struct GetResult {
    bool ok = false;
    bool session_closed = false;
    bool found = false;
    std::string value;
    Timestamp ut = 0;
    DcId sr = 0;
    Duration blocked_us = 0;
  };
  struct PutResult {
    bool ok = false;
    bool session_closed = false;
    Timestamp ut = 0;
    Duration blocked_us = 0;
  };
  struct TxResult {
    bool ok = false;
    bool session_closed = false;
    std::vector<proto::ReadItem> items;
  };

  GetResult get(const std::string& key, Duration timeout_us = 10'000'000);
  GetResult get_id(KeyId key, Duration timeout_us = 10'000'000);
  PutResult put(const std::string& key, const std::string& value,
                Duration timeout_us = 10'000'000);
  PutResult put_id(KeyId key, std::string value,
                   Duration timeout_us = 10'000'000);
  TxResult ro_tx(const std::vector<std::string>& keys,
                 Duration timeout_us = 10'000'000);
  TxResult ro_tx_ids(std::vector<KeyId> keys,
                     Duration timeout_us = 10'000'000);

  [[nodiscard]] ClientId id() const { return engine_.id(); }
  [[nodiscard]] bool pessimistic() const { return engine_.pessimistic(); }

  /// The recorded history (valid while the session is not mid-operation).
  [[nodiscard]] const checker::SessionHistory& history() const {
    return history_;
  }

 private:
  friend class TcpClientPool;
  TcpSession(ClientId id, DcId dc, TcpClientPool& pool);

  void deliver(proto::Message m);
  /// Wait for a reply matching `op_id` of message type M, discarding stale
  /// replies. nullopt = timeout or session closed (closed_ set).
  template <typename M>
  std::optional<M> await(std::uint64_t op_id, Duration timeout_us);
  void record_session_closed();

  client::ClientEngine engine_;
  TcpClientPool& pool_;
  checker::SessionHistory history_;
  std::uint64_t op_seq_ = 0;

  std::mutex mu_;
  std::condition_variable cv_;
  std::optional<proto::Message> reply_;
  bool closed_signal_ = false;
};

class TcpClientPool {
 public:
  /// `layout` gives the topology; `addresses` the (possibly ephemeral-port)
  /// node addresses to dial — defaults to layout.nodes.
  TcpClientPool(ClusterLayout layout, DcId dc);
  TcpClientPool(ClusterLayout layout, DcId dc,
                std::vector<NodeAddress> addresses);
  ~TcpClientPool();

  TcpClientPool(const TcpClientPool&) = delete;
  TcpClientPool& operator=(const TcpClientPool&) = delete;

  void start();
  void stop();

  /// Block until every partition link is up (false = timed out).
  bool wait_connected(Duration timeout_us);

  /// Open a session. `id` must be unique across the whole deployment.
  TcpSession& connect(ClientId id);

  /// Histories of every session opened on this pool (call after the driving
  /// threads finished).
  [[nodiscard]] std::vector<checker::SessionHistory> histories() const;

  [[nodiscard]] DcId dc() const { return dc_; }
  [[nodiscard]] const ClusterLayout& layout() const { return layout_; }
  [[nodiscard]] TransportStats transport_stats() const {
    return transport_.stats();
  }

 private:
  friend class TcpSession;
  void on_frame(ConnId conn, proto::Frame frame);
  void send_to_partition(PartitionId part, const proto::Message& m);
  [[nodiscard]] PartitionId partition_of(KeyId key) const;

  ClusterLayout layout_;
  DcId dc_;
  std::vector<NodeAddress> addresses_;
  TcpTransport transport_;
  std::vector<ConnId> conn_by_part_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<TcpSession>> sessions_;
  std::unordered_map<ClientId, TcpSession*> session_index_;
  bool started_ = false;
};

}  // namespace pocc::net
