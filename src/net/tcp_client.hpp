// Client-side endpoint of the TCP deployment: one pool per (process, data
// center) holding a connection to every partition node of that DC, demuxing
// replies to blocking sessions by client id. Used by pocc_loadgen and the
// e2e tests.
//
// A Session mirrors rt::Session (client/client_engine.hpp drives the
// protocol; requests go to the partition owning the key, RO-TXs to the
// collocated partition-0 coordinator) and additionally records every
// operation into a checker::SessionHistory, so a finished run can be
// replayed through the HistoryChecker (checker/client_history.hpp) to verify
// the deployment end to end.
//
// Client ids must be unique across the WHOLE deployment (all loadgen
// processes), and each session must be driven by a single thread.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "checker/client_history.hpp"
#include "client/client_engine.hpp"
#include "common/rng.hpp"
#include "net/cluster_config.hpp"
#include "net/tcp_transport.hpp"

namespace pocc::net {

class TcpClientPool;

/// Client-side fault tolerance knobs. Disabled by default: an op makes one
/// attempt and its timeout is simply the await bound (the pre-chaos
/// behavior). Enabled, the op's timeout becomes a DEADLINE inside which the
/// session retries the SAME op_id — with per-attempt timeouts, capped
/// exponential backoff with full jitter, Overloaded-aware pacing, a
/// per-replica circuit breaker, and failover to the sibling connection of
/// the same DC. Retries are idempotent end to end: the server's op_id
/// cache absorbs duplicates, and the session records the request and (at
/// most one) reply into its history exactly once.
struct ClientResilience {
  bool enabled = false;
  /// One attempt waits at most this long before resending.
  Duration attempt_timeout_us = 300'000;
  /// Backoff between attempts: full jitter over [min, ceiling], the
  /// ceiling doubling per attempt up to max.
  Duration backoff_min_us = 5'000;
  Duration backoff_max_us = 200'000;
  /// Consecutive attempt failures on one replica connection that open its
  /// breaker (further ops prefer the sibling until the cooldown passes).
  std::uint32_t breaker_failures = 4;
  Duration breaker_open_us = 500'000;
};

/// Per-session (and pool-aggregated) resilience accounting.
struct ClientResilienceStats {
  std::uint64_t timeouts = 0;            // attempts that hit their timeout
  std::uint64_t retries = 0;             // resends of an op_id
  std::uint64_t failovers = 0;           // switches to the sibling replica
  std::uint64_t overloaded = 0;          // Overloaded replies received
  std::uint64_t breaker_opens = 0;
  std::uint64_t deadline_exhausted = 0;  // ops that failed their deadline

  ClientResilienceStats& operator+=(const ClientResilienceStats& o) {
    timeouts += o.timeouts;
    retries += o.retries;
    failovers += o.failovers;
    overloaded += o.overloaded;
    breaker_opens += o.breaker_opens;
    deadline_exhausted += o.deadline_exhausted;
    return *this;
  }
};

/// Blocking client session over TCP (sticky to the pool's DC).
class TcpSession {
 public:
  struct GetResult {
    bool ok = false;
    bool session_closed = false;
    bool found = false;
    std::string value;
    Timestamp ut = 0;
    DcId sr = 0;
    Duration blocked_us = 0;
  };
  struct PutResult {
    bool ok = false;
    bool session_closed = false;
    Timestamp ut = 0;
    Duration blocked_us = 0;
  };
  struct TxResult {
    bool ok = false;
    bool session_closed = false;
    std::vector<proto::ReadItem> items;
  };

  GetResult get(const std::string& key, Duration timeout_us = 10'000'000);
  GetResult get_id(KeyId key, Duration timeout_us = 10'000'000);
  PutResult put(const std::string& key, const std::string& value,
                Duration timeout_us = 10'000'000);
  PutResult put_id(KeyId key, std::string value,
                   Duration timeout_us = 10'000'000);
  TxResult ro_tx(const std::vector<std::string>& keys,
                 Duration timeout_us = 10'000'000);
  TxResult ro_tx_ids(std::vector<KeyId> keys,
                     Duration timeout_us = 10'000'000);

  // --- Pipelined (non-blocking) operation API --------------------------
  //
  // One operation in flight per session — the session stays SERIAL, which
  // is what keeps its causal guarantees (read-your-writes, monotonic
  // reads) and its checker history sound. Pipelining arises one level up:
  // a driver thread interleaves MANY sessions over the pool's shared
  // per-partition connections, so each connection carries several
  // outstanding ops (distinct sessions) at once.
  //
  // Sequence: start_*() once, then pump() until it returns true, then the
  // matching finish_*(). pump() never blocks; it runs the same
  // deadline/retry/backoff/breaker machinery as the blocking calls
  // (including the non-resilient single-attempt mode). The driving thread
  // must be the session's only one.

  /// False when an operation is already in flight.
  bool start_get(const std::string& key, Duration timeout_us = 10'000'000);
  bool start_get_id(KeyId key, Duration timeout_us = 10'000'000);
  bool start_put(const std::string& key, const std::string& value,
                 Duration timeout_us = 10'000'000);
  bool start_put_id(KeyId key, std::string value,
                    Duration timeout_us = 10'000'000);
  bool start_ro_tx(const std::vector<std::string>& keys,
                   Duration timeout_us = 10'000'000);
  bool start_ro_tx_ids(std::vector<KeyId> keys,
                       Duration timeout_us = 10'000'000);

  /// Advance the in-flight operation without blocking. True when there is
  /// nothing left to drive (op completed or none in flight).
  bool pump();

  /// True while a started operation has not been finish_*()ed yet.
  [[nodiscard]] bool op_pending() const {
    return async_.kind != OpKind::kNone;
  }

  /// Collect the completed operation's result (asserts pump() returned
  /// true for an op of the matching kind) and make the session idle.
  GetResult finish_get();
  PutResult finish_put();
  TxResult finish_tx();

  [[nodiscard]] ClientId id() const { return engine_.id(); }
  [[nodiscard]] bool pessimistic() const { return engine_.pessimistic(); }

  /// The recorded history (valid while the session is not mid-operation).
  [[nodiscard]] const checker::SessionHistory& history() const {
    return history_;
  }

  /// Resilience accounting of this session (stable between operations).
  [[nodiscard]] const ClientResilienceStats& resilience_stats() const {
    return rstats_;
  }

 private:
  friend class TcpClientPool;
  TcpSession(ClientId id, DcId dc, TcpClientPool& pool);

  void deliver(proto::Message m);
  /// Outcome flags of one await: an Overloaded reply for the awaited op
  /// ends the attempt early with the server's pacing hint.
  struct AwaitOutcome {
    bool overloaded = false;
    Duration retry_after_us = 0;
  };
  /// Wait for a reply matching `op_id` of message type M, discarding stale
  /// replies. nullopt = timeout, session closed (closed_signal_ set), or
  /// Overloaded (outcome->overloaded set).
  template <typename M>
  std::optional<M> await(std::uint64_t op_id, Duration timeout_us,
                         AwaitOutcome* outcome = nullptr);
  /// Send-and-await with the session's resilience policy (deadline, retry
  /// of the same op_id, backoff, breaker, failover).
  template <typename Rep, typename Req>
  std::optional<Rep> run_op(const Req& req, PartitionId part,
                            Duration timeout_us);
  void record_session_closed();

  // Pipelined-mode internals: the blocking run_op loop unrolled into a
  // poll-driven state machine (one instance; sessions are serial).
  enum class OpKind : std::uint8_t { kNone, kGet, kPut, kTx };
  struct AsyncOp {
    OpKind kind = OpKind::kNone;
    bool done = false;
    PartitionId part = 0;
    std::chrono::steady_clock::time_point deadline{};
    std::chrono::steady_clock::time_point attempt_deadline{};
    std::chrono::steady_clock::time_point backoff_until{};
    bool in_backoff = false;
    bool sent = false;   // an attempt is outstanding
    bool first = true;   // no attempt made yet (retry accounting)
    Duration ceiling = 0;
    proto::GetReq get_req;
    proto::PutReq put_req;
    proto::RoTxReq tx_req;
    GetResult get_res;
    PutResult put_res;
    TxResult tx_res;
  };
  /// Non-blocking reply check: extracts the matching reply if delivered,
  /// flags an Overloaded for the op or a SessionClosed signal.
  template <typename M>
  std::optional<M> poll_reply(std::uint64_t op_id, bool* overloaded,
                              Duration* retry_after_us, bool* closed);
  void async_begin(OpKind kind, PartitionId part, Duration timeout_us);
  bool async_send_attempt();
  void async_schedule_backoff(Duration floor_us);

  client::ClientEngine engine_;
  TcpClientPool& pool_;
  checker::SessionHistory history_;
  std::uint64_t op_seq_ = 0;

  // Resilience state: the session is single-threaded, no locks needed.
  ClientResilience res_;
  ClientResilienceStats rstats_;
  Rng retry_rng_;
  unsigned replica_ = 0;  // sticky preferred connection (0 or 1)
  std::array<std::uint32_t, 2> consec_fail_{};
  std::array<std::chrono::steady_clock::time_point, 2> breaker_open_until_{};
  AsyncOp async_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::optional<proto::Message> reply_;
  bool closed_signal_ = false;
};

class TcpClientPool {
 public:
  /// `layout` gives the topology; `addresses` the (possibly ephemeral-port)
  /// node addresses to dial — defaults to layout.nodes.
  TcpClientPool(ClusterLayout layout, DcId dc);
  TcpClientPool(ClusterLayout layout, DcId dc,
                std::vector<NodeAddress> addresses);
  ~TcpClientPool();

  TcpClientPool(const TcpClientPool&) = delete;
  TcpClientPool& operator=(const TcpClientPool&) = delete;

  void start();
  void stop();

  /// Block until every partition link is up (false = timed out).
  bool wait_connected(Duration timeout_us);

  /// Resilience policy copied into every session opened AFTER this call.
  /// When enabled, start() also dials a sibling (failover) connection per
  /// partition.
  void set_resilience(const ClientResilience& r) { resilience_ = r; }

  /// Open a session. `id` must be unique across the whole deployment.
  TcpSession& connect(ClientId id);

  /// Histories of every session opened on this pool (call after the driving
  /// threads finished).
  [[nodiscard]] std::vector<checker::SessionHistory> histories() const;

  [[nodiscard]] DcId dc() const { return dc_; }
  [[nodiscard]] const ClusterLayout& layout() const { return layout_; }
  [[nodiscard]] TransportStats transport_stats() const {
    return transport_.stats();
  }
  /// Sum over every session (call when the driving threads are quiescent).
  [[nodiscard]] ClientResilienceStats resilience_stats() const;

  /// Chaos hooks (campaign/tests): the transport and the per-partition
  /// connection ids, so callers can arm ChaosLinks on client links.
  TcpTransport& transport() { return transport_; }
  [[nodiscard]] ConnId conn_of(PartitionId part, unsigned replica = 0) const;

 private:
  friend class TcpSession;
  void on_frame(ConnId conn, proto::Frame frame);
  /// False when the transport refused the frame (link down / over cap).
  bool send_to_partition(PartitionId part, const proto::Message& m,
                         unsigned replica = 0);
  [[nodiscard]] PartitionId partition_of(KeyId key) const;

  ClusterLayout layout_;
  DcId dc_;
  std::vector<NodeAddress> addresses_;
  ClientResilience resilience_;
  TcpTransport transport_;
  /// [replica 0] primary and [replica 1] sibling connection per partition;
  /// the sibling is only dialed when resilience is enabled (kInvalidConn
  /// otherwise — sends on it fail fast and the session falls back).
  std::array<std::vector<ConnId>, 2> conn_by_part_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<TcpSession>> sessions_;
  std::unordered_map<ClientId, TcpSession*> session_index_;
  bool started_ = false;
};

}  // namespace pocc::net
