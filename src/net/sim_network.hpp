// Simulated point-to-point network with a fault-injection fabric.
//
// Implements the paper's network assumptions (§II-C): lossless FIFO channels
// between any two processes. Each (source, destination) pair is an independent
// channel; a message's delivery time is `max(now + sampled_delay,
// last_delivery_on_channel)`, which preserves per-channel FIFO order under
// jitter. Inter-DC delays come from the latency matrix.
//
// Every message — client traffic, replication, heartbeats, maintenance — is
// routed through the fault fabric at send time: directed link blocks buffer
// it, gray degradations stretch its delay, heartbeat suppression drops it.
// Process crashes are handled at the endpoint (SimNode): server-to-server
// streams ride durable sender-side replication logs, so traffic arriving at
// a down node is backlogged in arrival order — which the per-channel
// last_delivery clamp makes identical to per-channel send (FIFO) order — and
// replayed at restart; client requests are dropped (the client library
// reconnects with a fresh session). The fabric is driven by
// fault::FaultInjector (src/fault/) but is independently scriptable from
// tests.
//
// Link faults are *directed* and reference-counted: partition_dcs(a, b) blocks
// both directions, block_link(a, b) only a->b (asymmetric partitions), and
// overlapping fault windows compose — a link is open again only when every
// injected block on it has been lifted. While a link is blocked, affected
// messages are buffered (lossless links: think TCP retransmission) and flushed
// in original send order on heal; messages sent during the heal slot in
// behind the flushed backlog on the same channel, keeping FIFO intact.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/config.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "proto/messages.hpp"
#include "sim/simulator.hpp"

namespace pocc::net {

/// Anything that can receive protocol messages (servers, client sessions).
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  /// `from` is the sending server, or NodeId of the client's home server for
  /// client-originated traffic (senders identify themselves in the payload).
  virtual void deliver(NodeId from, proto::Message m) = 0;
};

/// Byte/message accounting, split by traffic class for the resource-overhead
/// comparisons (§V-B: stabilization/heartbeat overhead vs useful work).
struct NetworkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t replication_messages = 0;
  std::uint64_t heartbeat_messages = 0;
  std::uint64_t stabilization_messages = 0;
  std::uint64_t gc_messages = 0;
  std::uint64_t client_messages = 0;
  std::uint64_t slice_messages = 0;
  /// Messages destroyed by injected faults (crashed endpoints, suppressed
  /// heartbeats, buffered traffic purged when its destination died).
  std::uint64_t dropped_messages = 0;
};

/// Per-directed-DC-pair degradation (a "gray" link: slow, not dead). The
/// sampled delay becomes `(base + jitter) * delay_multiplier + extra_delay_us`.
struct LinkDegrade {
  Duration extra_delay_us = 0;
  double delay_multiplier = 1.0;
};

class SimNetwork {
 public:
  SimNetwork(sim::Simulator& simulator, const LatencyConfig& latency,
             Rng rng);

  /// Register endpoints. Servers are addressed by NodeId; client sessions by
  /// ClientId plus the DC they live in (clients are collocated with servers,
  /// §V-A).
  void register_node(NodeId id, Endpoint* ep);
  void register_client(ClientId id, DcId dc, NodeId collocated_with,
                       Endpoint* ep);

  // --- traffic ---
  void send(NodeId from, NodeId to, proto::Message m);
  void send_to_client(NodeId from, ClientId to, proto::Message m);
  void client_send(ClientId from, NodeId to, proto::Message m);

  // --- fault fabric: directed link blocks (ref-counted) ---
  /// Block the directed link from DC `from` to DC `to`. In-flight messages
  /// already scheduled still arrive (they were on the wire); new messages are
  /// buffered until the block count returns to zero.
  void block_link(DcId from, DcId to);
  /// Lift one block from the directed link; flushes buffered traffic (in
  /// original FIFO order per channel) when the last block is lifted.
  void unblock_link(DcId from, DcId to);
  [[nodiscard]] bool link_blocked(DcId from, DcId to) const;

  /// Symmetric convenience wrappers (both directions).
  void partition_dcs(DcId a, DcId b);
  void heal_dcs(DcId a, DcId b);
  /// Cut `dc` off from every other DC.
  void isolate_dc(DcId dc, std::uint32_t num_dcs);
  void heal_dc(DcId dc, std::uint32_t num_dcs);
  [[nodiscard]] bool is_partitioned(DcId a, DcId b) const;
  [[nodiscard]] bool any_partitions() const { return blocked_links_ != 0; }

  // --- fault fabric: gray link degradation ---
  /// Stretch the directed link: delay = (base + jitter) * mult + extra.
  void degrade_link(DcId from, DcId to, Duration extra_delay_us,
                    double delay_multiplier);
  void clear_link_degrade(DcId from, DcId to);

  // --- fault fabric: heartbeat suppression ---
  /// While suppressed, Heartbeat messages sent by `node` are silently
  /// destroyed (exercises the HA partition-suspicion path without cutting
  /// data traffic). Ref-counted so overlapping fault windows compose.
  void suppress_heartbeats(NodeId node);
  void resume_heartbeats(NodeId node);
  [[nodiscard]] bool heartbeats_suppressed(NodeId node) const;

  /// Account one message destroyed outside the network layer (SimNode drops
  /// client requests addressed to a crashed process).
  void count_dropped() { ++stats_.dropped_messages; }

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  void reset_stats() { stats_ = NetworkStats{}; }

 private:
  // Endpoint addressing: servers in the low half, clients tagged by the top
  // bit, so one channel table covers both.
  static constexpr std::uint64_t kClientTag = 1ULL << 63;
  static std::uint64_t node_addr(NodeId n) {
    return (static_cast<std::uint64_t>(n.dc) << 32) | n.part;
  }
  static std::uint64_t client_addr(ClientId c) { return kClientTag | c; }
  static std::uint64_t link_key(DcId from, DcId to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  struct ChannelKey {
    std::uint64_t from;
    std::uint64_t to;
    bool operator==(const ChannelKey&) const = default;
  };
  // splitmix64 both halves, asymmetrically. The previous `from * φ ^ to`
  // mixing collided structurally: node addresses are (dc << 32) | part, and
  // multiplying by an odd constant cannot move the dc bits into the low bits
  // of the product — every channel {(dc, p) -> t} with the same p and t
  // landed in the same bucket of a power-of-two table (std::hash of a u64 is
  // the identity on libstdc++), clustering D-fold with D DCs.
  struct ChannelKeyHash {
    std::size_t operator()(const ChannelKey& k) const noexcept {
      return static_cast<std::size_t>(splitmix64(splitmix64(k.from) ^ k.to));
    }
  };
  struct Channel {
    Timestamp last_delivery = 0;
    std::deque<std::pair<NodeId, proto::Message>> blocked;  // partition buffer
  };
  struct Destination {
    Endpoint* endpoint = nullptr;
    DcId dc = 0;
  };
  /// Directed DC->DC link fault state (absent entry = healthy link).
  struct LinkState {
    std::uint32_t block_count = 0;
    LinkDegrade degrade;
  };

  void transmit(std::uint64_t from_addr, DcId from_dc, std::uint64_t to_addr,
                NodeId from_node, proto::Message m);
  /// Schedule the final hop at `at`, updating the channel's FIFO clamp.
  void schedule_delivery(Destination& dst, Channel& ch, Timestamp at,
                         NodeId from_node, proto::Message m);
  void flush_channels(DcId from, DcId to);
  void account(const proto::Message& m);
  [[nodiscard]] Duration sample_delay(DcId from, DcId to, bool loopback);
  [[nodiscard]] const LinkState* link_state(DcId from, DcId to) const;

  sim::Simulator& sim_;
  LatencyConfig latency_;
  Rng rng_;
  std::unordered_map<std::uint64_t, Destination> endpoints_;
  std::unordered_map<ClientId, NodeId> collocation_;
  std::unordered_map<ChannelKey, Channel, ChannelKeyHash> channels_;
  std::unordered_map<std::uint64_t, LinkState> links_;  // directed faults
  std::unordered_map<std::uint64_t, std::uint32_t> hb_suppressed_;
  std::uint32_t blocked_links_ = 0;  // number of directed links blocked
  NetworkStats stats_;
};

}  // namespace pocc::net
