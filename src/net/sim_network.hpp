// Simulated point-to-point network.
//
// Implements the paper's network assumptions (§II-C): lossless FIFO channels
// between any two processes. Each (source, destination) pair is an independent
// channel; a message's delivery time is `max(now + sampled_delay,
// last_delivery_on_channel)`, which preserves per-channel FIFO order under
// jitter. Inter-DC delays come from the latency matrix; network partitions
// between DC pairs can be injected and healed at runtime — while a partition
// is up, affected messages are buffered (lossless links: think TCP
// retransmission) and flushed in order on heal.
#pragma once

#include <cstdint>
#include <deque>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "proto/messages.hpp"
#include "sim/simulator.hpp"

namespace pocc::net {

/// Anything that can receive protocol messages (servers, client sessions).
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  /// `from` is the sending server, or NodeId of the client's home server for
  /// client-originated traffic (senders identify themselves in the payload).
  virtual void deliver(NodeId from, proto::Message m) = 0;
};

/// Byte/message accounting, split by traffic class for the resource-overhead
/// comparisons (§V-B: stabilization/heartbeat overhead vs useful work).
struct NetworkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t replication_messages = 0;
  std::uint64_t heartbeat_messages = 0;
  std::uint64_t stabilization_messages = 0;
  std::uint64_t gc_messages = 0;
  std::uint64_t client_messages = 0;
  std::uint64_t slice_messages = 0;
};

class SimNetwork {
 public:
  SimNetwork(sim::Simulator& simulator, const LatencyConfig& latency,
             Rng rng);

  /// Register endpoints. Servers are addressed by NodeId; client sessions by
  /// ClientId plus the DC they live in (clients are collocated with servers,
  /// §V-A).
  void register_node(NodeId id, Endpoint* ep);
  void register_client(ClientId id, DcId dc, NodeId collocated_with,
                       Endpoint* ep);

  // --- traffic ---
  void send(NodeId from, NodeId to, proto::Message m);
  void send_to_client(NodeId from, ClientId to, proto::Message m);
  void client_send(ClientId from, NodeId to, proto::Message m);

  // --- fault injection ---
  /// Cut connectivity between DC a and DC b (both directions). In-flight
  /// messages already scheduled still arrive (they were on the wire); new
  /// messages are buffered until heal_dcs().
  void partition_dcs(DcId a, DcId b);
  void heal_dcs(DcId a, DcId b);
  /// Cut `dc` off from every other DC.
  void isolate_dc(DcId dc, std::uint32_t num_dcs);
  void heal_dc(DcId dc, std::uint32_t num_dcs);
  [[nodiscard]] bool is_partitioned(DcId a, DcId b) const;
  [[nodiscard]] bool any_partitions() const { return !partitions_.empty(); }

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  void reset_stats() { stats_ = NetworkStats{}; }

 private:
  // Endpoint addressing: servers in the low half, clients tagged by the top
  // bit, so one channel table covers both.
  static constexpr std::uint64_t kClientTag = 1ULL << 63;
  static std::uint64_t node_addr(NodeId n) {
    return (static_cast<std::uint64_t>(n.dc) << 32) | n.part;
  }
  static std::uint64_t client_addr(ClientId c) { return kClientTag | c; }

  struct ChannelKey {
    std::uint64_t from;
    std::uint64_t to;
    bool operator==(const ChannelKey&) const = default;
  };
  // splitmix64 both halves, asymmetrically. The previous `from * φ ^ to`
  // mixing collided structurally: node addresses are (dc << 32) | part, and
  // multiplying by an odd constant cannot move the dc bits into the low bits
  // of the product — every channel {(dc, p) -> t} with the same p and t
  // landed in the same bucket of a power-of-two table (std::hash of a u64 is
  // the identity on libstdc++), clustering D-fold with D DCs.
  struct ChannelKeyHash {
    std::size_t operator()(const ChannelKey& k) const noexcept {
      return static_cast<std::size_t>(splitmix64(splitmix64(k.from) ^ k.to));
    }
  };
  struct Channel {
    Timestamp last_delivery = 0;
    std::deque<std::pair<NodeId, proto::Message>> blocked;  // partition buffer
  };
  struct Destination {
    Endpoint* endpoint = nullptr;
    DcId dc = 0;
  };

  void transmit(std::uint64_t from_addr, DcId from_dc, std::uint64_t to_addr,
                NodeId from_node, proto::Message m);
  void account(const proto::Message& m);
  [[nodiscard]] Duration sample_delay(DcId from, DcId to,
                                      bool loopback);

  sim::Simulator& sim_;
  LatencyConfig latency_;
  Rng rng_;
  std::unordered_map<std::uint64_t, Destination> endpoints_;
  std::unordered_map<ClientId, NodeId> collocation_;
  std::unordered_map<ChannelKey, Channel, ChannelKeyHash> channels_;
  std::set<std::pair<DcId, DcId>> partitions_;  // normalized (min,max) pairs
  NetworkStats stats_;
};

}  // namespace pocc::net
