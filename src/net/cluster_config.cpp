#include "net/cluster_config.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>

namespace pocc::net {

bool ProcessSpec::hosts(NodeId node) const {
  return node.dc == dc &&
         std::find(parts.begin(), parts.end(), node.part) != parts.end();
}

const NodeAddress* ClusterLayout::find(NodeId node) const {
  for (const NodeAddress& a : nodes) {
    if (a.node == node) return &a;
  }
  return nullptr;
}

const ProcessSpec* ClusterLayout::process_for(NodeId node) const {
  for (const ProcessSpec& p : processes) {
    if (p.hosts(node)) return &p;
  }
  return nullptr;
}

bool ClusterLayout::complete() const {
  if (nodes.size() != topology.total_nodes()) return false;
  for (DcId dc = 0; dc < topology.num_dcs; ++dc) {
    for (PartitionId p = 0; p < topology.partitions_per_dc; ++p) {
      if (find(NodeId{dc, p}) == nullptr) return false;
    }
  }
  return true;
}

const char* system_name(rt::System system) {
  switch (system) {
    case rt::System::kPocc:
      return "pocc";
    case rt::System::kCure:
      return "cure";
    case rt::System::kHaPocc:
      return "ha";
  }
  return "?";
}

std::optional<rt::System> parse_system(const std::string& name) {
  if (name == "pocc") return rt::System::kPocc;
  if (name == "cure") return rt::System::kCure;
  if (name == "ha" || name == "ha-pocc" || name == "hapocc") {
    return rt::System::kHaPocc;
  }
  return std::nullopt;
}

namespace {

bool fail(std::string* error, int line_no, const std::string& msg) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line_no) + ": " + msg;
  }
  return false;
}

bool parse_host_port(const std::string& spec, std::string* host,
                     std::uint16_t* port) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == spec.size()) {
    return false;
  }
  *host = spec.substr(0, colon);
  const std::string port_str = spec.substr(colon + 1);
  unsigned long value = 0;  // NOLINT(google-runtime-int)
  try {
    value = std::stoul(port_str);
  } catch (...) {
    return false;
  }
  if (value == 0 || value > 65'535) return false;
  *port = static_cast<std::uint16_t>(value);
  return true;
}

bool parse_u64(const std::string& s, std::uint64_t* out) {
  // from_chars reports overflow (result_out_of_range), so absurdly large
  // values are rejected instead of silently wrapping mod 2^64.
  if (s.empty()) return false;
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), end, *out);
  return ec == std::errc{} && ptr == end;
}

/// "0-3" (range), "0,2,5" (list) or "4" (single) -> sorted partition ids.
bool parse_parts(const std::string& spec, std::vector<PartitionId>* out) {
  out->clear();
  const std::size_t dash = spec.find('-');
  if (dash != std::string::npos) {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    if (!parse_u64(spec.substr(0, dash), &lo) ||
        !parse_u64(spec.substr(dash + 1), &hi) || hi < lo || hi >= 4096) {
      return false;
    }
    for (std::uint64_t p = lo; p <= hi; ++p) {
      out->push_back(static_cast<PartitionId>(p));
    }
    return true;
  }
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    const std::size_t comma = spec.find(',', begin);
    const std::string tok =
        spec.substr(begin, comma == std::string::npos ? std::string::npos
                                                      : comma - begin);
    std::uint64_t p = 0;
    if (!parse_u64(tok, &p) || p >= 4096) return false;
    out->push_back(static_cast<PartitionId>(p));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  std::sort(out->begin(), out->end());
  return !out->empty() &&
         std::adjacent_find(out->begin(), out->end()) == out->end();
}

/// Group form: `node dc=0 parts=0-3 threads=4 addr=host:port`.
bool parse_group_node(std::istringstream& ls, const std::string& first_token,
                      ProcessSpec* spec, std::string* why) {
  bool saw_dc = false;
  bool saw_parts = false;
  bool saw_addr = false;
  std::string token = first_token;
  do {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
      *why = "expected key=value, got '" + token + "'";
      return false;
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    std::uint64_t v = 0;
    if (key == "dc") {
      if (!parse_u64(value, &v) || v >= kMaxDcs) {
        *why = "bad dc '" + value + "'";
        return false;
      }
      spec->dc = static_cast<DcId>(v);
      saw_dc = true;
    } else if (key == "parts") {
      if (!parse_parts(value, &spec->parts)) {
        *why = "bad parts '" + value + "' (want N, N-M or N,M,...)";
        return false;
      }
      saw_parts = true;
    } else if (key == "threads") {
      if (!parse_u64(value, &v) || v < 1 || v > 1024) {
        *why = "threads must be 1..1024";
        return false;
      }
      spec->threads = static_cast<std::uint32_t>(v);
    } else if (key == "addr") {
      if (!parse_host_port(value, &spec->host, &spec->port)) {
        *why = "bad address '" + value + "'";
        return false;
      }
      saw_addr = true;
    } else {
      *why = "unknown key '" + key + "'";
      return false;
    }
  } while (ls >> token);
  if (!saw_dc || !saw_parts || !saw_addr) {
    *why = "group node needs dc=, parts= and addr=";
    return false;
  }
  return true;
}

}  // namespace

std::optional<ClusterLayout> parse_cluster_config(std::istream& in,
                                                  std::string* error) {
  ClusterLayout layout;
  std::string line;
  int line_no = 0;
  bool saw_dcs = false;
  bool saw_partitions = false;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword)) continue;  // blank / comment-only line

    auto want_u64 = [&](std::uint64_t* out) {
      std::uint64_t v = 0;
      if (!(ls >> v)) return false;
      *out = v;
      return true;
    };

    std::uint64_t v = 0;
    if (keyword == "dcs") {
      if (!want_u64(&v) || v < 1 || v > kMaxDcs) {
        fail(error, line_no, "dcs must be 1.." + std::to_string(kMaxDcs));
        return std::nullopt;
      }
      layout.topology.num_dcs = static_cast<std::uint32_t>(v);
      saw_dcs = true;
    } else if (keyword == "partitions") {
      if (!want_u64(&v) || v < 1 || v > 4096) {
        fail(error, line_no, "partitions must be 1..4096");
        return std::nullopt;
      }
      layout.topology.partitions_per_dc = static_cast<std::uint32_t>(v);
      saw_partitions = true;
    } else if (keyword == "system") {
      std::string name;
      ls >> name;
      const auto system = parse_system(name);
      if (!system.has_value()) {
        fail(error, line_no, "unknown system '" + name + "'");
        return std::nullopt;
      }
      layout.system = *system;
    } else if (keyword == "scheme") {
      std::string name;
      ls >> name;
      if (name == "hash") {
        layout.topology.partition_scheme = PartitionScheme::kHash;
      } else if (name == "prefix") {
        layout.topology.partition_scheme = PartitionScheme::kPrefix;
      } else {
        fail(error, line_no, "scheme must be hash or prefix");
        return std::nullopt;
      }
    } else if (keyword == "heartbeat_us") {
      if (!want_u64(&v)) {
        fail(error, line_no, "bad value");
        return std::nullopt;
      }
      layout.protocol.heartbeat_interval_us = static_cast<Duration>(v);
    } else if (keyword == "stabilization_us") {
      if (!want_u64(&v)) {
        fail(error, line_no, "bad value");
        return std::nullopt;
      }
      layout.protocol.stabilization_interval_us = static_cast<Duration>(v);
    } else if (keyword == "gc_us") {
      if (!want_u64(&v)) {
        fail(error, line_no, "bad value");
        return std::nullopt;
      }
      layout.protocol.gc_interval_us = static_cast<Duration>(v);
    } else if (keyword == "block_timeout_us") {
      if (!want_u64(&v)) {
        fail(error, line_no, "bad value");
        return std::nullopt;
      }
      layout.protocol.block_timeout_us = static_cast<Duration>(v);
    } else if (keyword == "ha_stabilization_us") {
      if (!want_u64(&v)) {
        fail(error, line_no, "bad value");
        return std::nullopt;
      }
      layout.protocol.ha_stabilization_interval_us = static_cast<Duration>(v);
    } else if (keyword == "put_dependency_wait") {
      if (!want_u64(&v) || v > 1) {
        fail(error, line_no, "put_dependency_wait must be 0 or 1");
        return std::nullopt;
      }
      layout.protocol.put_dependency_wait = v == 1;
    } else if (keyword == "node") {
      std::string first;
      if (!(ls >> first)) {
        fail(error, line_no, "empty node line");
        return std::nullopt;
      }
      ProcessSpec spec;
      if (first.find('=') != std::string::npos) {
        std::string why;
        if (!parse_group_node(ls, first, &spec, &why)) {
          fail(error, line_no, why);
          return std::nullopt;
        }
      } else {
        // Legacy positional form: node DC PART HOST:PORT.
        std::uint64_t dc = 0;
        std::uint64_t part = 0;
        std::string addr;
        if (!parse_u64(first, &dc) || !(ls >> part >> addr)) {
          fail(error, line_no, "expected: node DC PART HOST:PORT");
          return std::nullopt;
        }
        spec.dc = static_cast<DcId>(dc);
        spec.parts = {static_cast<PartitionId>(part)};
        if (!parse_host_port(addr, &spec.host, &spec.port)) {
          fail(error, line_no, "bad address '" + addr + "'");
          return std::nullopt;
        }
      }
      layout.processes.push_back(std::move(spec));
    } else {
      fail(error, line_no, "unknown keyword '" + keyword + "'");
      return std::nullopt;
    }
  }
  if (!saw_dcs || !saw_partitions) {
    if (error != nullptr) *error = "missing dcs/partitions declaration";
    return std::nullopt;
  }
  for (const ProcessSpec& p : layout.processes) {
    for (const PartitionId part : p.parts) {
      if (p.dc >= layout.topology.num_dcs ||
          part >= layout.topology.partitions_per_dc) {
        if (error != nullptr) {
          *error = "node " + NodeId{p.dc, part}.to_string() +
                   " outside the topology";
        }
        return std::nullopt;
      }
      layout.nodes.push_back(NodeAddress{NodeId{p.dc, part}, p.host, p.port});
    }
  }
  if (!layout.complete()) {
    if (error != nullptr) {
      *error = "every (dc, partition) pair needs exactly one hosting process";
    }
    return std::nullopt;
  }
  return layout;
}

std::optional<ClusterLayout> load_cluster_config(const std::string& path,
                                                 std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  return parse_cluster_config(in, error);
}

std::string format_cluster_config(const ClusterLayout& layout) {
  std::ostringstream out;
  out << "dcs " << layout.topology.num_dcs << "\n";
  out << "partitions " << layout.topology.partitions_per_dc << "\n";
  out << "system " << system_name(layout.system) << "\n";
  out << "scheme "
      << (layout.topology.partition_scheme == PartitionScheme::kHash
              ? "hash"
              : "prefix")
      << "\n";
  out << "heartbeat_us " << layout.protocol.heartbeat_interval_us << "\n";
  out << "stabilization_us " << layout.protocol.stabilization_interval_us
      << "\n";
  out << "gc_us " << layout.protocol.gc_interval_us << "\n";
  out << "block_timeout_us " << layout.protocol.block_timeout_us << "\n";
  out << "ha_stabilization_us "
      << layout.protocol.ha_stabilization_interval_us << "\n";
  out << "put_dependency_wait "
      << (layout.protocol.put_dependency_wait ? 1 : 0) << "\n";
  for (const ProcessSpec& p : layout.processes) {
    if (p.parts.size() == 1 && p.threads == 1) {
      out << "node " << p.dc << " " << p.parts.front() << " " << p.host << ":"
          << p.port << "\n";
      continue;
    }
    out << "node dc=" << p.dc << " parts=";
    // Contiguous runs render as a range, anything else as a list.
    bool contiguous = true;
    for (std::size_t i = 1; i < p.parts.size(); ++i) {
      if (p.parts[i] != p.parts[i - 1] + 1) {
        contiguous = false;
        break;
      }
    }
    if (contiguous && p.parts.size() > 1) {
      out << p.parts.front() << "-" << p.parts.back();
    } else {
      for (std::size_t i = 0; i < p.parts.size(); ++i) {
        if (i > 0) out << ",";
        out << p.parts[i];
      }
    }
    out << " threads=" << p.threads << " addr=" << p.host << ":" << p.port
        << "\n";
  }
  return out.str();
}

}  // namespace pocc::net
