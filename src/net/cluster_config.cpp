#include "net/cluster_config.hpp"

#include <fstream>
#include <sstream>

namespace pocc::net {

const NodeAddress* ClusterLayout::find(NodeId node) const {
  for (const NodeAddress& a : nodes) {
    if (a.node == node) return &a;
  }
  return nullptr;
}

bool ClusterLayout::complete() const {
  if (nodes.size() != topology.total_nodes()) return false;
  for (DcId dc = 0; dc < topology.num_dcs; ++dc) {
    for (PartitionId p = 0; p < topology.partitions_per_dc; ++p) {
      if (find(NodeId{dc, p}) == nullptr) return false;
    }
  }
  return true;
}

const char* system_name(rt::System system) {
  switch (system) {
    case rt::System::kPocc:
      return "pocc";
    case rt::System::kCure:
      return "cure";
    case rt::System::kHaPocc:
      return "ha";
  }
  return "?";
}

std::optional<rt::System> parse_system(const std::string& name) {
  if (name == "pocc") return rt::System::kPocc;
  if (name == "cure") return rt::System::kCure;
  if (name == "ha" || name == "ha-pocc" || name == "hapocc") {
    return rt::System::kHaPocc;
  }
  return std::nullopt;
}

namespace {

bool fail(std::string* error, int line_no, const std::string& msg) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line_no) + ": " + msg;
  }
  return false;
}

bool parse_host_port(const std::string& spec, std::string* host,
                     std::uint16_t* port) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == spec.size()) {
    return false;
  }
  *host = spec.substr(0, colon);
  const std::string port_str = spec.substr(colon + 1);
  unsigned long value = 0;  // NOLINT(google-runtime-int)
  try {
    value = std::stoul(port_str);
  } catch (...) {
    return false;
  }
  if (value == 0 || value > 65'535) return false;
  *port = static_cast<std::uint16_t>(value);
  return true;
}

}  // namespace

std::optional<ClusterLayout> parse_cluster_config(std::istream& in,
                                                  std::string* error) {
  ClusterLayout layout;
  std::string line;
  int line_no = 0;
  bool saw_dcs = false;
  bool saw_partitions = false;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword)) continue;  // blank / comment-only line

    auto want_u64 = [&](std::uint64_t* out) {
      std::uint64_t v = 0;
      if (!(ls >> v)) return false;
      *out = v;
      return true;
    };

    std::uint64_t v = 0;
    if (keyword == "dcs") {
      if (!want_u64(&v) || v < 1 || v > kMaxDcs) {
        fail(error, line_no, "dcs must be 1.." + std::to_string(kMaxDcs));
        return std::nullopt;
      }
      layout.topology.num_dcs = static_cast<std::uint32_t>(v);
      saw_dcs = true;
    } else if (keyword == "partitions") {
      if (!want_u64(&v) || v < 1 || v > 4096) {
        fail(error, line_no, "partitions must be 1..4096");
        return std::nullopt;
      }
      layout.topology.partitions_per_dc = static_cast<std::uint32_t>(v);
      saw_partitions = true;
    } else if (keyword == "system") {
      std::string name;
      ls >> name;
      const auto system = parse_system(name);
      if (!system.has_value()) {
        fail(error, line_no, "unknown system '" + name + "'");
        return std::nullopt;
      }
      layout.system = *system;
    } else if (keyword == "scheme") {
      std::string name;
      ls >> name;
      if (name == "hash") {
        layout.topology.partition_scheme = PartitionScheme::kHash;
      } else if (name == "prefix") {
        layout.topology.partition_scheme = PartitionScheme::kPrefix;
      } else {
        fail(error, line_no, "scheme must be hash or prefix");
        return std::nullopt;
      }
    } else if (keyword == "heartbeat_us") {
      if (!want_u64(&v)) {
        fail(error, line_no, "bad value");
        return std::nullopt;
      }
      layout.protocol.heartbeat_interval_us = static_cast<Duration>(v);
    } else if (keyword == "stabilization_us") {
      if (!want_u64(&v)) {
        fail(error, line_no, "bad value");
        return std::nullopt;
      }
      layout.protocol.stabilization_interval_us = static_cast<Duration>(v);
    } else if (keyword == "gc_us") {
      if (!want_u64(&v)) {
        fail(error, line_no, "bad value");
        return std::nullopt;
      }
      layout.protocol.gc_interval_us = static_cast<Duration>(v);
    } else if (keyword == "block_timeout_us") {
      if (!want_u64(&v)) {
        fail(error, line_no, "bad value");
        return std::nullopt;
      }
      layout.protocol.block_timeout_us = static_cast<Duration>(v);
    } else if (keyword == "ha_stabilization_us") {
      if (!want_u64(&v)) {
        fail(error, line_no, "bad value");
        return std::nullopt;
      }
      layout.protocol.ha_stabilization_interval_us = static_cast<Duration>(v);
    } else if (keyword == "put_dependency_wait") {
      if (!want_u64(&v) || v > 1) {
        fail(error, line_no, "put_dependency_wait must be 0 or 1");
        return std::nullopt;
      }
      layout.protocol.put_dependency_wait = v == 1;
    } else if (keyword == "node") {
      std::uint64_t dc = 0;
      std::uint64_t part = 0;
      std::string addr;
      if (!(ls >> dc >> part >> addr)) {
        fail(error, line_no, "expected: node DC PART HOST:PORT");
        return std::nullopt;
      }
      NodeAddress na;
      na.node = NodeId{static_cast<DcId>(dc), static_cast<PartitionId>(part)};
      if (!parse_host_port(addr, &na.host, &na.port)) {
        fail(error, line_no, "bad address '" + addr + "'");
        return std::nullopt;
      }
      layout.nodes.push_back(std::move(na));
    } else {
      fail(error, line_no, "unknown keyword '" + keyword + "'");
      return std::nullopt;
    }
  }
  if (!saw_dcs || !saw_partitions) {
    if (error != nullptr) *error = "missing dcs/partitions declaration";
    return std::nullopt;
  }
  for (const NodeAddress& a : layout.nodes) {
    if (a.node.dc >= layout.topology.num_dcs ||
        a.node.part >= layout.topology.partitions_per_dc) {
      if (error != nullptr) {
        *error = "node " + a.node.to_string() + " outside the topology";
      }
      return std::nullopt;
    }
  }
  if (!layout.complete()) {
    if (error != nullptr) {
      *error = "need exactly one node line per (dc, partition) pair";
    }
    return std::nullopt;
  }
  return layout;
}

std::optional<ClusterLayout> load_cluster_config(const std::string& path,
                                                 std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  return parse_cluster_config(in, error);
}

std::string format_cluster_config(const ClusterLayout& layout) {
  std::ostringstream out;
  out << "dcs " << layout.topology.num_dcs << "\n";
  out << "partitions " << layout.topology.partitions_per_dc << "\n";
  out << "system " << system_name(layout.system) << "\n";
  out << "scheme "
      << (layout.topology.partition_scheme == PartitionScheme::kHash
              ? "hash"
              : "prefix")
      << "\n";
  out << "heartbeat_us " << layout.protocol.heartbeat_interval_us << "\n";
  out << "stabilization_us " << layout.protocol.stabilization_interval_us
      << "\n";
  out << "gc_us " << layout.protocol.gc_interval_us << "\n";
  out << "block_timeout_us " << layout.protocol.block_timeout_us << "\n";
  out << "ha_stabilization_us "
      << layout.protocol.ha_stabilization_interval_us << "\n";
  out << "put_dependency_wait "
      << (layout.protocol.put_dependency_wait ? 1 : 0) << "\n";
  for (const NodeAddress& a : layout.nodes) {
    out << "node " << a.node.dc << " " << a.node.part << " " << a.host << ":"
        << a.port << "\n";
  }
  return out.str();
}

}  // namespace pocc::net
