#include "net/tcp_node_host.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/assert.hpp"
#include "cure/cure_server.hpp"
#include "ha/ha_pocc_server.hpp"
#include "pocc/pocc_server.hpp"
#include "store/key_space.hpp"

namespace pocc::net {

namespace {

/// Per-process rng seed, distinct across the deployment's hosts. Asserts
/// here (rather than in the constructor body) because the member
/// initializer list needs the first hosted partition.
std::uint64_t host_seed(const ProcessSpec& spec, std::uint64_t seed) {
  POCC_ASSERT_MSG(!spec.parts.empty(), "a host serves at least one partition");
  const std::uint64_t flat =
      (static_cast<std::uint64_t>(spec.dc) << 32) | spec.parts.front();
  return seed ^ (flat * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL);
}

}  // namespace

TcpNodeHost::TcpNodeHost(ProcessSpec self, const ClusterLayout& layout,
                         Options options)
    : self_(std::move(self)),
      layout_(layout),
      opt_(options),
      rng_(host_seed(self_, options.seed)),
      transport_(
          TcpTransport::Callbacks{
              [this](ConnId c, proto::Frame f) { on_frame(c, std::move(f)); },
              nullptr,
              [this](ConnId c) { on_disconnected(c); },
              [this] { on_tick(); },
              // Driven mode: transport loop i IS worker i's thread — one
              // service pass per loop iteration, socket → decode → engine
              // with no cross-thread hop for pinned connections.
              [this](std::uint32_t loop) -> Timestamp {
                return group_ == nullptr ? 0 : group_->service(loop);
              },
              [this](ConnId from, ConnId to) { on_migrated(from, to); },
          },
          [this] {
            TcpTransport::Options t;
            t.backend = opt_.backend;
            t.tick_interval_us = opt_.batch.max_delay_us;
            // One event-loop shard per NodeGroup worker (same clamp the
            // group applies), so every worker has exactly one owning loop.
            const auto parts = static_cast<std::uint32_t>(self_.parts.size());
            t.num_loops = std::max<std::uint32_t>(
                1, self_.threads == 0 ? parts
                                      : std::min(self_.threads, parts));
            return t;
          }()) {
  POCC_ASSERT_MSG(self_.dc < layout_.topology.num_dcs,
                  "host dc outside the layout topology");
  for (const PartitionId p : self_.parts) {
    POCC_ASSERT_MSG(p < layout_.topology.partitions_per_dc,
                    "hosted partition outside the layout topology");
  }
  transport_.listen(opt_.listen_port);

  if (!opt_.data_dir.empty()) {
    wal::PartitionWal::Options wal_opt;
    wal_opt.checkpoint_bytes = opt_.checkpoint_bytes;
    wal_ = std::make_unique<wal::WalManager>(opt_.data_dir, wal_opt);
  }

  rt::NodeGroup::Options group_opt;
  group_opt.threads = self_.threads;
  group_opt.clock = opt_.clock;
  group_opt.seed = rng_.next();
  group_opt.wal = wal_.get();
  group_opt.max_inbox_messages = opt_.max_inbox_messages;
  group_opt.registry = &registry_;
  group_opt.driven = true;
  group_opt.wake = [this](std::uint32_t w) { transport_.wake_loop(w); };
  group_ = std::make_unique<rt::NodeGroup>(self_.dc, self_.parts, *this,
                                           group_opt);
  tx_coordinator_part_ = group_->hosts(NodeId{self_.dc, 0})
                             ? 0
                             : group_->partitions().front();

  group_->install_engines([this](NodeId id, server::Context& ctx)
                              -> std::unique_ptr<server::ReplicaBase> {
    switch (layout_.system) {
      case rt::System::kPocc:
        return std::make_unique<PoccServer>(id, layout_.topology,
                                            layout_.protocol, ServiceConfig{},
                                            ctx);
      case rt::System::kCure:
        return std::make_unique<CureServer>(id, layout_.topology,
                                            layout_.protocol, ServiceConfig{},
                                            ctx);
      case rt::System::kHaPocc:
        return std::make_unique<HaPoccServer>(id, layout_.topology,
                                              layout_.protocol,
                                              ServiceConfig{}, ctx);
    }
    POCC_ASSERT_MSG(false, "unknown system");
    return nullptr;
  });

  // Rebuild each engine from its durable image before anything can touch it
  // (no workers yet): newest valid snapshot, then the segment suffix.
  if (wal_ != nullptr) {
    for (const PartitionId p : self_.parts) {
      server::ReplicaBase& eng = group_->engine(p);
      replay_stats_.push_back(wal_->wal_for(p).replay(
          [&eng](const store::Version& v) { eng.restore_version(v); },
          [&eng](const VersionVector& vv) { eng.restore_vv(vv); }));
      const auto& rs = replay_stats_.back();
      log("partition " + std::to_string(p) + " replayed " +
          std::to_string(rs.snapshot_versions) + " snapshot + " +
          std::to_string(rs.log_versions) + " log versions");
    }
  }
}

TcpNodeHost::~TcpNodeHost() { stop(); }

void TcpNodeHost::start() { start(layout_.processes); }

void TcpNodeHost::start(const std::vector<ProcessSpec>& peers) {
  {
    std::lock_guard lk(mu_);
    POCC_ASSERT_MSG(!started_, "start() called twice");
    started_ = true;
  }
  for (const ProcessSpec& peer : peers) {
    if (peer.dc == self_.dc && peer.parts == self_.parts) continue;  // self
    auto link = std::make_unique<Link>();
    link->spec = peer;
    link->conn = transport_.connect_peer(peer.host, peer.port);
    std::vector<std::uint8_t> hello;
    proto::encode(proto::NodeHello{NodeId{self_.dc, self_.parts.front()}},
                  hello);
    transport_.set_greeting(link->conn, std::move(hello));
    link->batcher =
        std::make_unique<LinkBatcher>(transport_, link->conn, opt_.batch);
    for (const PartitionId p : peer.parts) {
      const bool inserted =
          link_by_node_.emplace(flat(NodeId{peer.dc, p}), link.get()).second;
      POCC_ASSERT_MSG(inserted, "two processes host the same (dc, partition)");
    }
    links_.push_back(std::move(link));
  }
  // Every node of the topology must be reachable: hosted here or linked.
  for (DcId dc = 0; dc < layout_.topology.num_dcs; ++dc) {
    for (PartitionId p = 0; p < layout_.topology.partitions_per_dc; ++p) {
      const NodeId node{dc, p};
      POCC_ASSERT_MSG(group_->hosts(node) || link_by_node_.contains(flat(node)),
                      "peer list must cover every node of the topology");
    }
  }
  // Peer recovery: before the workers run, each durable engine asks its
  // sibling replicas for the replication suffix past its restored VV (the
  // RecoveryReqs stage into the batchers here and leave once the transport
  // connects). Client requests park until every RecoveryDone is back — a
  // fresh cluster answers instantly (empty stores), so the gate only bites
  // after a real crash.
  std::uint32_t expected_dones = 0;
  if (wal_ != nullptr && layout_.topology.num_dcs > 1) {
    for (const PartitionId p : self_.parts) {
      group_->engine(p).begin_peer_recovery(opt_.recovery_deadline_us);
      expected_dones += layout_.topology.num_dcs - 1;
    }
  }
  {
    std::lock_guard lk(mu_);
    recovery_dones_pending_ = expected_dones;
    if (expected_dones > 0) {
      recovery_deadline_at_ = rt::steady_now_us() + opt_.recovery_deadline_us;
    }
  }
  register_metrics();
  if (!opt_.metrics_addr.empty()) {
    metrics_server_.handle("/metrics", [this] {
      return HttpServer::Response{
          200, "text/plain; version=0.0.4; charset=utf-8",
          stats::render_prometheus(registry_.snapshot())};
    });
    metrics_server_.handle("/healthz", [] {
      return HttpServer::Response{200, "text/plain; charset=utf-8", "ok\n"};
    });
    metrics_server_.handle("/readyz", [this] {
      return ready() ? HttpServer::Response{200, "text/plain; charset=utf-8",
                                            "ready\n"}
                     : HttpServer::Response{503, "text/plain; charset=utf-8",
                                            "not ready\n"};
    });
    if (metrics_server_.start(opt_.metrics_addr)) {
      log("metrics on " + opt_.metrics_addr + " (port " +
          std::to_string(metrics_server_.port()) + ")");
    } else {
      log("metrics bind FAILED on " + opt_.metrics_addr);
    }
  }
  group_->start();  // driven: marks started, spawns nothing
  transport_.start();
  log("serving " + std::to_string(self_.parts.size()) + " partitions on " +
      std::to_string(group_->threads()) + " workers, port " +
      std::to_string(port()) +
      (expected_dones > 0
           ? ", awaiting " + std::to_string(expected_dones) + " RecoveryDones"
           : ""));
}

void TcpNodeHost::stop() {
  {
    std::lock_guard lk(mu_);
    if (!started_) return;
    started_ = false;
  }
  // Scrape endpoint first: its handlers read state the teardown below
  // dismantles.
  metrics_server_.stop();
  // Driven mode inverts the old order: the transport loops ARE the worker
  // threads, so they stop first (their exit pass drains the outboxes
  // best-effort), then the group runs its final timer/durability pass on
  // this thread.
  for (const auto& link : links_) link->batcher->flush();
  transport_.stop();
  group_->stop();
  if (wal_ != nullptr) wal_->stop();  // drain queued checkpoint commits
}

void TcpNodeHost::crash_stop() {
  {
    std::lock_guard lk(mu_);
    if (!started_) return;
    started_ = false;
  }
  metrics_server_.stop();
  // Deliberately NO batcher flush — staged replication frames die with the
  // process, exactly like kill -9. Same for the WAL tail: records past the
  // last group commit are discarded, not synced (no output depended on
  // them; Slot held those back). Transport first: its loops own the workers
  // in driven mode.
  transport_.stop();
  group_->stop();
  if (wal_ != nullptr) {
    for (const PartitionId p : self_.parts) {
      wal_->wal_for(p).discard_unsynced();
    }
    wal_->stop();
  }
}

bool TcpNodeHost::recovering() const {
  std::lock_guard lk(mu_);
  return recovery_dones_pending_ > 0;
}

bool TcpNodeHost::ready() const {
  {
    std::lock_guard lk(mu_);
    if (!started_ || recovery_dones_pending_ > 0) return false;
  }
  // links_ is immutable once start() returns (and the metrics server only
  // runs after that); connected() is a per-shard atomic read.
  for (const auto& link : links_) {
    if (!transport_.connected(link->conn)) return false;
  }
  return true;
}

void TcpNodeHost::arm_chaos(DcId peer_dc, std::shared_ptr<ChaosLink> link) {
  for (const auto& l : links_) {
    if (l->spec.dc == peer_dc) transport_.set_chaos(l->conn, link);
  }
}

BatchStats TcpNodeHost::batch_stats() const {
  BatchStats total;
  for (const auto& link : links_) total += link->batcher->stats();
  return total;
}

std::uint64_t TcpNodeHost::dropped_frames() const {
  std::lock_guard lk(mu_);
  return dropped_;
}

std::uint64_t TcpNodeHost::overloaded_replies() const {
  std::lock_guard lk(mu_);
  return overloaded_;
}

std::uint64_t TcpNodeHost::deduped_requests() const {
  std::lock_guard lk(mu_);
  return deduped_;
}

std::uint64_t TcpNodeHost::client_requests() const {
  std::lock_guard lk(mu_);
  return client_requests_;
}

void TcpNodeHost::register_metrics() {
  stats::Registry& r = registry_;
  // --- transport (TransportStats aggregates its shards under their locks) --
  struct TransportField {
    const char* name;
    std::uint64_t TransportStats::*field;
  };
  static constexpr TransportField kTransport[] = {
      {"pocc_transport_frames_in_total", &TransportStats::frames_in},
      {"pocc_transport_frames_out_total", &TransportStats::frames_out},
      {"pocc_transport_bytes_in_total", &TransportStats::bytes_in},
      {"pocc_transport_bytes_out_total", &TransportStats::bytes_out},
      {"pocc_transport_accepts_total", &TransportStats::accepts},
      {"pocc_transport_reconnects_total", &TransportStats::reconnects},
      {"pocc_transport_decode_errors_total", &TransportStats::decode_errors},
      {"pocc_transport_send_overflows_total", &TransportStats::send_overflows},
      {"pocc_transport_down_buffer_drops_total",
       &TransportStats::down_buffer_drops},
      {"pocc_transport_migrations_total", &TransportStats::migrations},
      // Copy-path accounting (scatter-gather flush + pooled buffers):
      // sendmsg_frames / sendmsg_calls is the coalescing ratio, arena_hits /
      // (hits + misses) the buffer-recycle rate.
      {"pocc_transport_sendmsg_calls_total", &TransportStats::sendmsg_calls},
      {"pocc_transport_sendmsg_frames_total", &TransportStats::sendmsg_frames},
      {"pocc_transport_arena_hits_total", &TransportStats::arena_hits},
      {"pocc_transport_arena_misses_total", &TransportStats::arena_misses},
      // io_uring backend accounting (all zero on kEpoll/kPoll):
      // no_syscall_waits counts waits served straight from the CQ ring.
      {"pocc_transport_uring_enters_total", &TransportStats::uring_enters},
      {"pocc_transport_uring_sqes_total", &TransportStats::uring_sqes},
      {"pocc_transport_uring_cqes_total", &TransportStats::uring_cqes},
      {"pocc_transport_uring_no_syscall_waits_total",
       &TransportStats::uring_no_syscall_waits},
  };
  for (const auto& f : kTransport) {
    r.counter_fn(f.name, {},
                 [this, field = f.field] { return transport_.stats().*field; });
  }
  // Which readiness backend the transport shards run — the label carries the
  // name, the value is a constant 1 (Prometheus *_info convention).
  r.gauge_fn("pocc_transport_backend_info",
             {{"backend", EventLoop::backend_name(opt_.backend)}},
             [] { return 1; });
  // --- replication batching (summed over peer links) ---
  struct BatchField {
    const char* name;
    std::uint64_t BatchStats::*field;
  };
  static constexpr BatchField kBatch[] = {
      {"pocc_batch_messages_total", &BatchStats::messages},
      {"pocc_batch_batches_total", &BatchStats::batches},
      {"pocc_batch_protocol_bytes_total", &BatchStats::protocol_bytes},
      {"pocc_batch_overhead_bytes_total", &BatchStats::overhead_bytes},
      {"pocc_batch_send_failures_total", &BatchStats::send_failures},
      {"pocc_batch_retried_batches_total", &BatchStats::retried_batches},
      {"pocc_batch_dropped_batches_total", &BatchStats::dropped_batches},
  };
  for (const auto& f : kBatch) {
    r.counter_fn(f.name, {},
                 [this, field = f.field] { return batch_stats().*field; });
  }
  r.gauge_fn("pocc_batch_pending_bytes", {}, [this] {
    std::int64_t total = 0;
    for (const auto& link : links_) {
      total += static_cast<std::int64_t>(link->batcher->pending_bytes());
    }
    return total;
  }, "Replication bytes parked behind transport backpressure");
  // --- host admission / client session plane ---
  r.counter_fn("pocc_host_dropped_frames_total", {},
               [this] { return dropped_frames(); });
  r.counter_fn("pocc_host_overloaded_replies_total", {},
               [this] { return overloaded_replies(); });
  r.counter_fn("pocc_host_deduped_requests_total", {},
               [this] { return deduped_requests(); },
               "Retries absorbed by the idempotency cache (hit rate = this / "
               "pocc_host_client_requests_total)");
  r.counter_fn("pocc_host_client_requests_total", {},
               [this] { return client_requests(); });
  r.counter_fn("pocc_local_deliveries_total", {},
               [this] { return group_->local_deliveries(); },
               "Cross-partition messages delivered without a socket");
  r.gauge_fn("pocc_host_recovering", {},
             [this] { return recovering() ? 1 : 0; });
  r.gauge_fn("pocc_host_ready", {}, [this] { return ready() ? 1 : 0; },
             "The /readyz predicate");
  // --- per-partition: inbox depth, engine counters, store, GC, WAL ---
  for (std::size_t i = 0; i < self_.parts.size(); ++i) {
    const PartitionId p = self_.parts[i];
    const stats::Labels part_label = {{"part", std::to_string(p)}};
    r.gauge_fn("pocc_inbox_depth", part_label, [this, p] {
      return static_cast<std::int64_t>(group_->inbox_depth(p));
    });
    server::ReplicaBase* eng = &group_->engine(p);
    r.counter_fn("pocc_engine_gets_total", part_label,
                 [eng] { return eng->gets_served(); });
    r.counter_fn("pocc_engine_puts_total", part_label,
                 [eng] { return eng->puts_served(); });
    r.counter_fn("pocc_engine_slices_total", part_label,
                 [eng] { return eng->slices_served(); });
    r.counter_fn("pocc_engine_blocking_ops_total", part_label,
                 [eng] { return eng->blocking_stats().operations.load(); });
    r.counter_fn("pocc_engine_blocked_total", part_label,
                 [eng] { return eng->blocking_stats().blocked.load(); });
    r.counter_fn("pocc_engine_blocked_macro_total", part_label,
                 [eng] { return eng->blocking_stats().blocked_macro.load(); });
    r.counter_fn("pocc_engine_reads_total", part_label,
                 [eng] { return eng->staleness_stats().reads.load(); });
    r.counter_fn("pocc_engine_old_reads_total", part_label,
                 [eng] { return eng->staleness_stats().old_reads.load(); });
    r.counter_fn(
        "pocc_engine_unmerged_reads_total", part_label,
        [eng] { return eng->staleness_stats().unmerged_reads.load(); });
    r.gauge_fn("pocc_engine_gc_floor_us", part_label,
               [eng] { return eng->scraped_gc_floor_us(); },
               "Min entry of the last applied aggregate GC vector");
    r.gauge_fn("pocc_store_keys", part_label, [eng] {
      return static_cast<std::int64_t>(eng->partition_store().stats().keys);
    });
    r.gauge_fn("pocc_store_versions", part_label, [eng] {
      return static_cast<std::int64_t>(eng->partition_store().stats().versions);
    });
    r.gauge_fn("pocc_store_multi_version_keys", part_label, [eng] {
      return static_cast<std::int64_t>(
          eng->partition_store().stats().multi_version_keys);
    });
    r.counter_fn("pocc_store_gc_removed_total", part_label, [eng] {
      return eng->partition_store().stats().gc_removed;
    });
    if (wal_ != nullptr) {
      wal::PartitionWal* wal = &wal_->wal_for(p);
      r.counter_fn("pocc_wal_syncs_total", part_label,
                   [wal] { return wal->syncs(); });
      r.counter_fn("pocc_wal_synced_bytes_total", part_label,
                   [wal] { return wal->synced_bytes(); });
      // Replay stats are immutable after the constructor's restore pass.
      const auto& rs = replay_stats_[i];
      r.gauge("pocc_wal_replay_log_versions", part_label)
          ->set(static_cast<std::int64_t>(rs.log_versions));
      r.gauge("pocc_wal_replay_snapshot_versions", part_label)
          ->set(static_cast<std::int64_t>(rs.snapshot_versions));
      r.gauge("pocc_wal_replay_torn_bytes", part_label)
          ->set(static_cast<std::int64_t>(rs.torn_bytes));
    }
  }
}

void TcpNodeHost::log(const std::string& what) const {
  if (!opt_.verbose) return;
  std::fprintf(stderr, "[poccd dc%u] %s\n", self_.dc, what.c_str());
}

void TcpNodeHost::route(NodeId from, NodeId to, proto::Message m) {
  // NodeGroup short-circuits hosted destinations, so everything here leaves
  // the process. links_/link_by_node_ are immutable once the workers run.
  auto it = link_by_node_.find(flat(to));
  POCC_ASSERT_MSG(it != link_by_node_.end(),
                  "send to a node outside the layout");
  it->second->batcher->add(from, to, m);
}

namespace {

/// op_id of a client-facing reply, or 0 when `m` is not one of the three
/// reply kinds (op_ids are non-zero on the wire — clients start at 1).
std::uint64_t reply_op_id(const proto::Message& m) {
  if (const auto* r = std::get_if<proto::GetReply>(&m)) return r->op_id;
  if (const auto* r = std::get_if<proto::PutReply>(&m)) return r->op_id;
  if (const auto* r = std::get_if<proto::RoTxReply>(&m)) return r->op_id;
  return 0;
}

std::uint64_t request_op_id(const proto::Message& m) {
  if (const auto* r = std::get_if<proto::GetReq>(&m)) return r->op_id;
  if (const auto* r = std::get_if<proto::PutReq>(&m)) return r->op_id;
  if (const auto* r = std::get_if<proto::RoTxReq>(&m)) return r->op_id;
  return 0;
}

}  // namespace

void TcpNodeHost::route_to_client(NodeId /*from*/, ClientId client,
                                  proto::Message m) {
  std::vector<std::uint8_t> frame;
  proto::encode(m, frame);
  const std::uint64_t op_id = reply_op_id(m);
  ConnId conn = kInvalidConn;
  {
    std::lock_guard lk(mu_);
    if (op_id != 0) {
      // The reply is the op's completion: cache the encoded frame so a
      // retransmit of this op_id is answered from here (exactly-once), and
      // retire the in-flight marker. Cached even when the client's
      // connection is gone — it will retry the op after reconnecting.
      ClientOpCache& cache = client_ops_[client];
      cache.in_flight.erase(op_id);
      if (cache.done.emplace(op_id, frame).second) {
        cache.done_order.push_back(op_id);
        while (cache.done_order.size() > kOpCacheWindow) {
          cache.done.erase(cache.done_order.front());
          cache.done_order.pop_front();
        }
      }
    } else if (std::holds_alternative<proto::SessionClosed>(m)) {
      // HA-POCC abort: every outstanding op resolves with no reply to
      // cache; the client re-initializes the session rather than retrying.
      auto it = client_ops_.find(client);
      if (it != client_ops_.end()) it->second.in_flight.clear();
    }
    auto it = client_conn_.find(client);
    if (it != client_conn_.end()) conn = it->second;
  }
  if (conn == kInvalidConn) {
    // The client disconnected (or never sent a request here): a reply to a
    // departed session is dropped, exactly like a real server would.
    std::lock_guard lk(mu_);
    ++dropped_;
    return;
  }
  if (!transport_.send(conn, std::move(frame))) {
    std::lock_guard lk(mu_);
    ++dropped_;
  }
}

void TcpNodeHost::on_tick() {
  // Time axis of the flush policy: whatever the size thresholds left staged
  // goes out at most one tick late.
  for (const auto& link : links_) link->batcher->flush();
  // Recovery gate deadline: a dead peer never sends its RecoveryDone; past
  // the deadline this DC serves clients anyway (it is causally consistent
  // with what it has — only the lost suffix's freshness is forfeited).
  bool expired = false;
  {
    std::lock_guard lk(mu_);
    if (recovery_dones_pending_ > 0 && recovery_deadline_at_ != 0 &&
        rt::steady_now_us() >= recovery_deadline_at_) {
      recovery_dones_pending_ = 0;
      expired = true;
    }
  }
  if (expired) release_parked_clients("recovery deadline expired");
}

bool TcpNodeHost::replication_backlogged() const {
  // links_ is immutable once the workers run; pending_bytes() locks per
  // batcher. Any peer link past the threshold sheds NEW client work — its
  // parked replication batches are this DC's own unacknowledged updates,
  // and admitting more PUTs only deepens the queue until batches drop.
  for (const auto& link : links_) {
    if (link->batcher->pending_bytes() >= opt_.shed_pending_bytes) return true;
  }
  return false;
}

void TcpNodeHost::send_overloaded(ConnId conn, ClientId client,
                                  std::uint64_t op_id) {
  proto::Message m =
      proto::Overloaded{client, opt_.overload_retry_after_us, op_id};
  std::vector<std::uint8_t> frame;
  proto::encode(m, frame);
  transport_.send(conn, std::move(frame));
  std::lock_guard lk(mu_);
  ++overloaded_;
}

void TcpNodeHost::dispatch_client_request(ConnId conn, proto::Message m,
                                          bool replayed) {
  // Client requests carry no destination node — the process dispatches by
  // key placement (the client dialed this process because it hosts the
  // partition; recompute instead of trusting the connection).
  ClientId client = 0;
  PartitionId part = 0;
  if (const auto* get = std::get_if<proto::GetReq>(&m)) {
    client = get->client;
    part = store::KeySpace::global().partition(
        get->key, layout_.topology.partitions_per_dc,
        layout_.topology.partition_scheme);
  } else if (const auto* put = std::get_if<proto::PutReq>(&m)) {
    client = put->client;
    part = store::KeySpace::global().partition(
        put->key, layout_.topology.partitions_per_dc,
        layout_.topology.partition_scheme);
  } else if (const auto* tx = std::get_if<proto::RoTxReq>(&m)) {
    client = tx->client;
    part = tx_coordinator_part_;
  }
  const NodeId to{self_.dc, part};
  if (!group_->hosts(to)) {
    std::lock_guard lk(mu_);
    ++dropped_;
    log("dropped " + std::string(proto::message_name(m)) +
        " for partition this process does not host");
    return;
  }
  const std::uint64_t op_id = request_op_id(m);
  std::vector<std::uint8_t> resend;
  {
    std::lock_guard lk(mu_);
    client_conn_[client] = conn;
    if (!replayed) ++client_requests_;
    if (!replayed && op_id != 0) {
      // Idempotent retry absorption: the client retries with the SAME
      // op_id, so a duplicate of a completed op is answered from the
      // cached reply window and a duplicate of an op still in flight is
      // swallowed — a retried PUT never reaches the engine twice.
      ClientOpCache& cache = client_ops_[client];
      auto done_it = cache.done.find(op_id);
      if (done_it != cache.done.end()) {
        ++deduped_;
        resend = done_it->second;  // sent below, outside mu_
      } else if (cache.in_flight.contains(op_id)) {
        ++deduped_;
        return;
      } else {
        cache.in_flight.insert(op_id);
      }
    }
    if (resend.empty() && recovery_dones_pending_ > 0) {
      // Admission gate: until the peers have streamed the lost replication
      // suffix back, a client could read state older than what it already
      // saw before the crash. Park the request; released in arrival order.
      parked_clients_.emplace_back(conn, std::move(m));
      return;
    }
  }
  if (!resend.empty()) {
    transport_.send(conn, std::move(resend));
    return;
  }
  // Self-protection: refuse (rather than queue without bound) when the
  // target worker's inbox is full or a replication link is backed up. The
  // op did NOT execute; the Overloaded reply tells the client to back off
  // and retry the same op_id.
  const bool refused =
      replication_backlogged() || !group_->try_enqueue(to, to, std::move(m));
  if (refused) {
    {
      std::lock_guard lk(mu_);
      auto it = client_ops_.find(client);
      if (it != client_ops_.end()) {
        it->second.in_flight.erase(op_id);  // never admitted; a retry is fresh
      }
    }
    send_overloaded(conn, client, op_id);
  }
}

void TcpNodeHost::release_parked_clients(const char* why) {
  std::vector<std::pair<ConnId, proto::Message>> parked;
  {
    std::lock_guard lk(mu_);
    parked.swap(parked_clients_);
  }
  if (!parked.empty() || opt_.verbose) {
    log("recovery gate open (" + std::string(why) + "), releasing " +
        std::to_string(parked.size()) + " parked client requests");
  }
  for (auto& [conn, m] : parked) {
    dispatch_client_request(conn, std::move(m), /*replayed=*/true);
  }
}

void TcpNodeHost::on_frame(ConnId conn, proto::Frame frame) {
  if (const auto* hello = std::get_if<proto::NodeHello>(&frame)) {
    std::lock_guard lk(mu_);
    conn_peer_[conn] = hello->node;
    return;
  }
  if (const auto* hello = std::get_if<proto::ClientHello>(&frame)) {
    if (hello->client != 0) {
      std::lock_guard lk(mu_);
      client_conn_[hello->client] = conn;
    }
    // Pinning: re-home the socket onto the event loop owning the preferred
    // partition's worker, so its requests run socket → decode → engine on
    // one thread. The client pool greets each connection with the
    // partition it dialed it for; re-sent on every reconnect, so the fresh
    // socket re-pins too.
    if (hello->preferred_part != proto::kNoPreferredPart &&
        group_->hosts(NodeId{self_.dc, hello->preferred_part})) {
      const std::uint32_t target = group_->worker_of(hello->preferred_part);
      if (target != TcpTransport::loop_of(conn)) {
        transport_.migrate(conn, target);
      }
    }
    return;
  }
  if (auto* batch = std::get_if<proto::BatchFrame>(&frame)) {
    // Admission: server-to-server traffic is only accepted from connections
    // that greeted with NodeHello (the transport replays the greeting ahead
    // of buffered frames on every (re)connect) — a client connection must
    // not be able to inject spoofed replication/GC traffic.
    {
      std::lock_guard lk(mu_);
      if (!conn_peer_.contains(conn)) {
        dropped_ += batch->items.size();
        log("dropped batch from un-greeted connection");
        return;
      }
    }
    bool gate_opened = false;
    for (proto::RoutedMessage& item : batch->items) {
      if (!group_->hosts(item.to)) {
        std::lock_guard lk(mu_);
        ++dropped_;
        log("dropped batched " + std::string(proto::message_name(item.msg)) +
            " addressed to " + item.to.to_string());
        continue;
      }
      // Snoop the recovery handshake: the admission gate opens when the
      // last outstanding RecoveryDone goes by (the engine merges its VV
      // moments later on the worker thread; a released request that wins
      // that race simply parks on the normal VV wait).
      if (std::holds_alternative<proto::RecoveryDone>(item.msg)) {
        std::lock_guard lk(mu_);
        if (recovery_dones_pending_ > 0 && --recovery_dones_pending_ == 0) {
          gate_opened = true;
        }
      }
      group_->enqueue(item.from, item.to, std::move(item.msg));
    }
    if (gate_opened) release_parked_clients("all RecoveryDones received");
    return;
  }

  auto& m = std::get<proto::Message>(frame);
  const bool is_client_request = std::holds_alternative<proto::GetReq>(m) ||
                                 std::holds_alternative<proto::PutReq>(m) ||
                                 std::holds_alternative<proto::RoTxReq>(m);
  if (is_client_request) {
    dispatch_client_request(conn, std::move(m));
    return;
  }
  // Server-to-server traffic always rides Batch frames (explicit routing
  // envelopes); a bare protocol message from a peer has no well-defined
  // destination in a multi-partition process.
  std::lock_guard lk(mu_);
  ++dropped_;
  log("dropped unbatched " + std::string(proto::message_name(m)) +
      " from a peer connection");
}

void TcpNodeHost::on_migrated(ConnId from, ConnId to) {
  // The socket kept its byte streams; only its transport identity changed.
  // Rewrite every binding that names the old id (delivered on the source
  // shard's thread, after that shard's last frame for the connection).
  std::lock_guard lk(mu_);
  auto it = conn_peer_.find(from);
  if (it != conn_peer_.end()) {
    conn_peer_.emplace(to, it->second);
    conn_peer_.erase(it);
  }
  for (auto& [client, conn] : client_conn_) {
    if (conn == from) conn = to;
  }
  for (auto& [conn, m] : parked_clients_) {
    if (conn == from) conn = to;
  }
}

void TcpNodeHost::on_disconnected(ConnId conn) {
  std::lock_guard lk(mu_);
  conn_peer_.erase(conn);
  for (auto it = client_conn_.begin(); it != client_conn_.end();) {
    if (it->second == conn) {
      it = client_conn_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace pocc::net
