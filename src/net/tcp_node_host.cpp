#include "net/tcp_node_host.hpp"

#include <cstdio>
#include <utility>

#include "common/assert.hpp"
#include "cure/cure_server.hpp"
#include "ha/ha_pocc_server.hpp"
#include "pocc/pocc_server.hpp"

namespace pocc::net {

TcpNodeHost::TcpNodeHost(NodeId self, const ClusterLayout& layout,
                         Options options)
    : self_(self),
      layout_(layout),
      opt_(options),
      rng_(options.seed ^ (flat(self) * 0x9e3779b97f4a7c15ULL)),
      transport_(
          TcpTransport::Callbacks{
              [this](ConnId c, proto::Frame f) { on_frame(c, std::move(f)); },
              nullptr,
              [this](ConnId c) { on_disconnected(c); },
          },
          TcpTransport::Options{}) {
  POCC_ASSERT_MSG(self.dc < layout_.topology.num_dcs &&
                      self.part < layout_.topology.partitions_per_dc,
                  "node id outside the layout topology");
  transport_.listen(opt_.listen_port);

  node_ = std::make_unique<rt::RtNode>(self_, *this, opt_.clock, rng_);
  std::unique_ptr<server::ReplicaBase> engine;
  switch (layout_.system) {
    case rt::System::kPocc:
      engine = std::make_unique<PoccServer>(self_, layout_.topology,
                                            layout_.protocol, ServiceConfig{},
                                            *node_);
      break;
    case rt::System::kCure:
      engine = std::make_unique<CureServer>(self_, layout_.topology,
                                            layout_.protocol, ServiceConfig{},
                                            *node_);
      break;
    case rt::System::kHaPocc:
      engine = std::make_unique<HaPoccServer>(self_, layout_.topology,
                                              layout_.protocol,
                                              ServiceConfig{}, *node_);
      break;
  }
  node_->install_engine(std::move(engine));
}

TcpNodeHost::~TcpNodeHost() { stop(); }

void TcpNodeHost::start() { start(layout_.nodes); }

void TcpNodeHost::start(const std::vector<NodeAddress>& peers) {
  {
    std::lock_guard lk(mu_);
    POCC_ASSERT_MSG(!started_, "start() called twice");
    started_ = true;
    for (const NodeAddress& peer : peers) {
      if (peer.node == self_) continue;
      const ConnId conn = transport_.connect_peer(peer.host, peer.port);
      std::vector<std::uint8_t> hello;
      proto::encode(proto::NodeHello{self_}, hello);
      transport_.set_greeting(conn, std::move(hello));
      peer_conn_[flat(peer.node)] = conn;
    }
    POCC_ASSERT_MSG(
        peer_conn_.size() + 1 == layout_.topology.total_nodes(),
        "peer list must cover every other node of the topology");
  }
  transport_.start();
  node_->start();
  log("serving on port " + std::to_string(port()));
}

void TcpNodeHost::stop() {
  {
    std::lock_guard lk(mu_);
    if (!started_) return;
    started_ = false;
  }
  node_->stop();
  transport_.stop();
}

std::uint64_t TcpNodeHost::dropped_frames() const {
  std::lock_guard lk(mu_);
  return dropped_;
}

void TcpNodeHost::log(const std::string& what) const {
  if (!opt_.verbose) return;
  std::fprintf(stderr, "[poccd %s] %s\n", self_.to_string().c_str(),
               what.c_str());
}

void TcpNodeHost::route(NodeId from, NodeId to, proto::Message m) {
  if (to == self_) {
    // Loopback (e.g. a partition reporting to itself as DC aggregator).
    node_->enqueue(from, std::move(m));
    return;
  }
  std::vector<std::uint8_t> frame;
  proto::encode(m, frame);
  ConnId conn = kInvalidConn;
  {
    std::lock_guard lk(mu_);
    auto it = peer_conn_.find(flat(to));
    if (it != peer_conn_.end()) conn = it->second;
  }
  POCC_ASSERT_MSG(conn != kInvalidConn, "send to a node outside the layout");
  if (!transport_.send(conn, std::move(frame))) {
    // Outbox overflow: the peer stopped draining long past the backpressure
    // cap. Dropping here breaks FIFO for that link, so surface it loudly.
    std::lock_guard lk(mu_);
    ++dropped_;
    log("OVERFLOW: dropped " + std::string(proto::message_name(m)) + " to " +
        to.to_string());
  }
}

void TcpNodeHost::route_to_client(NodeId /*from*/, ClientId client,
                                  proto::Message m) {
  ConnId conn = kInvalidConn;
  {
    std::lock_guard lk(mu_);
    auto it = client_conn_.find(client);
    if (it != client_conn_.end()) conn = it->second;
  }
  if (conn == kInvalidConn) {
    // The client disconnected (or never sent a request here): a reply to a
    // departed session is dropped, exactly like a real server would.
    std::lock_guard lk(mu_);
    ++dropped_;
    return;
  }
  std::vector<std::uint8_t> frame;
  proto::encode(m, frame);
  if (!transport_.send(conn, std::move(frame))) {
    std::lock_guard lk(mu_);
    ++dropped_;
  }
}

void TcpNodeHost::on_frame(ConnId conn, proto::Frame frame) {
  if (const auto* hello = std::get_if<proto::NodeHello>(&frame)) {
    std::lock_guard lk(mu_);
    conn_peer_[conn] = hello->node;
    return;
  }
  if (const auto* hello = std::get_if<proto::ClientHello>(&frame)) {
    std::lock_guard lk(mu_);
    client_conn_[hello->client] = conn;
    return;
  }
  auto& m = std::get<proto::Message>(frame);

  // Client requests bind their session to the connection they arrived on
  // (replies and SessionCloseds route back over it); everything else must
  // come from a peer that already greeted.
  ClientId request_client = 0;
  if (const auto* get = std::get_if<proto::GetReq>(&m)) {
    request_client = get->client;
  } else if (const auto* put = std::get_if<proto::PutReq>(&m)) {
    request_client = put->client;
  } else if (const auto* tx = std::get_if<proto::RoTxReq>(&m)) {
    request_client = tx->client;
  }

  NodeId from = self_;
  if (request_client != 0) {
    std::lock_guard lk(mu_);
    client_conn_[request_client] = conn;
  } else {
    std::lock_guard lk(mu_);
    auto it = conn_peer_.find(conn);
    if (it == conn_peer_.end()) {
      ++dropped_;
      log("dropped " + std::string(proto::message_name(m)) +
          " from un-greeted connection");
      return;
    }
    from = it->second;
  }
  node_->enqueue(from, std::move(m));
}

void TcpNodeHost::on_disconnected(ConnId conn) {
  std::lock_guard lk(mu_);
  conn_peer_.erase(conn);
  for (auto it = client_conn_.begin(); it != client_conn_.end();) {
    if (it->second == conn) {
      it = client_conn_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace pocc::net
