// Readiness-notification seam of the TCP transport: one EventLoop per
// transport shard, wrapping epoll(7) on Linux with a poll(2) fallback for
// portability and an io_uring readiness backend (multishot poll) for the
// high-connection path.
//
// The abstraction is deliberately thin — registration (watch/unwatch) plus
// one blocking wait() — because the transport keeps its own per-connection
// state and recomputes interest each loop pass; the EventLoop's job is to
// turn that interest into O(ready) wakeups instead of the O(watched) scan
// poll(2) does in the kernel on every call.
//
// Backend matrix:
//   kEpoll — epoll(7); one epoll_wait syscall per pass, O(ready) wakeups.
//   kPoll  — poll(2) over an incrementally-maintained pollfd array; the
//            kernel still scans O(watched) per call, but userspace no
//            longer rebuilds the array per wait.
//   kUring — io_uring readiness mode: raw io_uring_setup/io_uring_enter
//            syscalls (no liburing), IORING_OP_POLL_ADD with
//            IORING_POLL_ADD_MULTI so each fd is armed once and the kernel
//            streams readiness CQEs into the shared-memory completion
//            ring. A wait() that finds CQEs already posted consumes them
//            with ZERO syscalls — the wakeup-latency edge event_loop_bench
//            measures. Runtime-detected (uring_available()); construction
//            falls back to kEpoll when the kernel or seccomp denies it.
//
// Syscall discipline (scripts/check_syscalls.sh): every epoll_wait / poll /
// io_uring_enter return value is checked here. EINTR yields an empty ready
// set — the caller re-enters its loop and re-evaluates timers, which is
// exactly what a spurious wakeup costs; any other failure asserts with the
// errno, never consumes unspecified revents.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "stats/relaxed_counter.hpp"

struct pollfd;  // <poll.h>; only the kPoll backend materializes these

namespace pocc::net {

class EventLoop {
 public:
  enum class Backend {
    kEpoll,  // Linux: epoll(7), O(ready) wakeups
    kPoll,   // portable fallback: poll(2) over the registered set
    kUring,  // io_uring multishot-poll readiness; falls back to kEpoll
  };

  /// Process default: the POCC_EVENT_BACKEND env override ("epoll" /
  /// "poll" / "uring", parsed once) or a set_default_backend() call if
  /// either names a usable backend, else kEpoll where the platform has it,
  /// kPoll elsewhere.
  [[nodiscard]] static Backend default_backend();

  /// Override the process default (CLI flags). An unavailable kUring
  /// request degrades to the platform default at construction, same as the
  /// env override.
  static void set_default_backend(Backend backend);

  /// Parse "epoll" / "poll" / "uring" (case-sensitive). Returns false and
  /// leaves `out` untouched on anything else.
  static bool parse_backend(const std::string& name, Backend* out);

  [[nodiscard]] static const char* backend_name(Backend backend);

  /// True when this kernel accepts io_uring with multishot poll (probed
  /// once per process with a throwaway ring; seccomp denials and pre-5.13
  /// kernels report false).
  [[nodiscard]] static bool uring_available();

  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    /// POLLERR/POLLHUP-class condition. May accompany readable (pending
    /// bytes are still delivered before EOF).
    bool error = false;
  };

  /// Owner-thread counters, readable from the scrape thread (relaxed).
  /// Only the kUring backend moves these; the transport sums them across
  /// shards into TransportStats.
  struct Stats {
    stats::RelaxedU64 uring_enters;  // io_uring_enter syscalls issued
    stats::RelaxedU64 uring_sqes;    // submission entries pushed
    stats::RelaxedU64 uring_cqes;    // completion entries consumed
    stats::RelaxedU64 uring_no_syscall_waits;  // waits served from the CQ
                                               // ring without any syscall
  };

  explicit EventLoop(Backend backend = default_backend());
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Register or update interest in `fd`. Idempotent and cheap when the
  /// interest did not change (no syscall). `read`/`write` both false is a
  /// valid parked registration (error conditions still reported).
  void watch(int fd, bool read, bool write);

  /// Drop `fd` from the set. Must be called before the fd is closed (a
  /// closed fd's registration would otherwise go stale in the fallback
  /// backend's table). No-op when the fd is not registered.
  void unwatch(int fd);

  /// Block up to `timeout_ms` (-1 = indefinitely, 0 = poll) and append the
  /// ready fds to `out` (cleared first). Returns the number of events.
  /// EINTR returns 0 — callers treat it as a timer-less spurious wakeup.
  std::size_t wait(int timeout_ms, std::vector<Event>& out);

  [[nodiscard]] Backend backend() const { return backend_; }
  [[nodiscard]] std::size_t watched() const { return watched_count_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  // Flat fd-indexed interest table (grown lazily to the highest watched
  // fd): the hot wait path at 100k connections does O(1) loads instead of
  // hashing into an unordered_map per event.
  struct Interest {
    bool watched = false;
    bool read = false;
    bool write = false;
    bool armed = false;        // kUring: a multishot POLL_ADD is in flight
    std::int32_t pfd_index = -1;  // kPoll: slot in pfds_, -1 when absent
    std::uint32_t gen = 0;     // kUring: stale-CQE guard across re-watch
    std::uint64_t seen_seq = 0;   // wait()-local dedup stamp
    std::uint32_t out_index = 0;  // index into `out` when seen_seq matches
  };

  Interest& slot(int fd);
  [[nodiscard]] const Interest* find_slot(int fd) const;

  /// Append (or merge into) `out`, deduping by fd within one wait() pass —
  /// multishot poll can post several CQEs for one fd between waits.
  void emit_event(int fd, bool readable, bool writable, bool error,
                  std::vector<Event>& out);

  // kPoll: incremental pollfd maintenance (satellite: no per-wait rebuild).
  void poll_add(int fd, const Interest& in);
  void poll_update(int fd, const Interest& in);
  void poll_remove(int fd);
  std::size_t wait_poll(int timeout_ms, std::vector<Event>& out);

  // kUring internals (no-ops unless backend_ == kUring).
  bool uring_init(unsigned entries);
  void uring_teardown();
  void uring_push_poll_add(int fd, const Interest& in);
  void uring_push_poll_remove(int fd, const Interest& in);
  void* uring_next_sqe();  // flushes via io_uring_enter when the SQ is full
  void uring_submit_pending();
  std::size_t uring_drain_cq(std::vector<Event>& out);
  std::size_t wait_uring(int timeout_ms, std::vector<Event>& out);

  Backend backend_;
  int epoll_fd_ = -1;  // kEpoll only
  std::vector<Interest> interest_;
  std::size_t watched_count_ = 0;
  std::uint64_t wait_seq_ = 0;  // bumped per wait(); powers Event dedup
  std::vector<pollfd> pfds_;    // kPoll: maintained by poll_add/update/remove

  // kUring ring state. The SQ/CQ control blocks live in kernel-shared
  // mmaps; these members cache the offsets resolved at setup time.
  int ring_fd_ = -1;
  void* sq_ring_ = nullptr;
  std::size_t sq_ring_bytes_ = 0;
  void* cq_ring_ = nullptr;  // == sq_ring_ under IORING_FEAT_SINGLE_MMAP
  std::size_t cq_ring_bytes_ = 0;
  void* sqes_ = nullptr;
  std::size_t sqes_bytes_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned sq_entries_ = 0;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  void* cqes_ = nullptr;
  unsigned to_submit_ = 0;  // SQEs staged but not yet handed to the kernel
  // Events surfaced while making SQ room outside wait() (registration
  // storms); delivered at the head of the next wait().
  std::vector<Event> deferred_;
  Stats stats_;
};

}  // namespace pocc::net
