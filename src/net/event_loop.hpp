// Readiness-notification seam of the TCP transport: one EventLoop per
// transport shard, wrapping epoll(7) on Linux with a poll(2) fallback for
// portability (and for exercising both code paths in tests).
//
// The abstraction is deliberately thin — registration (watch/unwatch) plus
// one blocking wait() — because the transport keeps its own per-connection
// state and recomputes interest each loop pass; the EventLoop's job is to
// turn that interest into O(ready) wakeups instead of the O(watched) scan
// poll(2) does in the kernel on every call.
//
// Syscall discipline (scripts/check_syscalls.sh): every epoll_wait/poll
// return value is checked here. EINTR yields an empty ready set — the
// caller re-enters its loop and re-evaluates timers, which is exactly what
// a spurious wakeup costs; any other failure asserts with the errno, never
// consumes unspecified revents.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

struct pollfd;  // <poll.h>; only the kPoll backend materializes these

namespace pocc::net {

class EventLoop {
 public:
  enum class Backend {
    kEpoll,  // Linux: epoll(7), O(ready) wakeups
    kPoll,   // portable fallback: poll(2) over the registered set
  };

  /// kEpoll where the platform has it, kPoll elsewhere.
  [[nodiscard]] static Backend default_backend();

  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    /// POLLERR/POLLHUP-class condition. May accompany readable (pending
    /// bytes are still delivered before EOF).
    bool error = false;
  };

  explicit EventLoop(Backend backend = default_backend());
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Register or update interest in `fd`. Idempotent and cheap when the
  /// interest did not change (no syscall). `read`/`write` both false is a
  /// valid parked registration (error conditions still reported).
  void watch(int fd, bool read, bool write);

  /// Drop `fd` from the set. Must be called before the fd is closed (a
  /// closed fd's registration would otherwise go stale in the fallback
  /// backend's table). No-op when the fd is not registered.
  void unwatch(int fd);

  /// Block up to `timeout_ms` (-1 = indefinitely, 0 = poll) and append the
  /// ready fds to `out` (cleared first). Returns the number of events.
  /// EINTR returns 0 — callers treat it as a timer-less spurious wakeup.
  std::size_t wait(int timeout_ms, std::vector<Event>& out);

  [[nodiscard]] Backend backend() const { return backend_; }
  [[nodiscard]] std::size_t watched() const { return interest_.size(); }

 private:
  struct Interest {
    bool read = false;
    bool write = false;
  };

  Backend backend_;
  int epoll_fd_ = -1;  // kEpoll only
  std::unordered_map<int, Interest> interest_;
  // kPoll scratch (rebuilt per wait; member to reuse the allocation).
  std::vector<pollfd> pfds_;
};

}  // namespace pocc::net
