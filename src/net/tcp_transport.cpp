#include "net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/assert.hpp"
#include "runtime/rt_node.hpp"

namespace pocc::net {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

/// Scatter-gather width of one sendmsg flush: enough to drain a reply
/// burst or a batcher flush in one syscall, small enough to stack-allocate.
constexpr std::size_t kMaxFlushIov = 64;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  POCC_ASSERT(flags >= 0);
  POCC_ASSERT(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

}  // namespace

// The deployment's single monotonic time base (also what poccd aligns to
// CLOCK_REALTIME via offset_bias_us); only used here for backoff timing.
Timestamp TcpTransport::now_us() { return rt::steady_now_us(); }

TcpTransport::TcpTransport(Callbacks callbacks, Options options)
    : cb_(std::move(callbacks)), opt_(options) {
  const std::uint32_t n = std::max<std::uint32_t>(1, opt_.num_loops);
  shards_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    auto s = std::make_unique<Shard>();
    s->index = i;
    s->loop = std::make_unique<EventLoop>(opt_.backend);
    POCC_ASSERT(::pipe(s->wake_pipe) == 0);
    set_nonblocking(s->wake_pipe[0]);
    set_nonblocking(s->wake_pipe[1]);
    s->backoff_rng = Rng(opt_.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
    shards_.push_back(std::move(s));
  }
}

TcpTransport::~TcpTransport() {
  stop();
  for (auto& s : shards_) {
    if (s->listen_fd >= 0) ::close(s->listen_fd);
    for (auto& [id, conn] : s->conns) {
      if (conn->fd >= 0) ::close(conn->fd);
    }
    for (auto& conn : s->adopted) {
      if (conn->fd >= 0) ::close(conn->fd);
    }
    ::close(s->wake_pipe[0]);
    ::close(s->wake_pipe[1]);
  }
}

std::uint16_t TcpTransport::listen(std::uint16_t port) {
  POCC_ASSERT_MSG(shards_[0]->listen_fd < 0, "listen() called twice");
  // One listening socket per shard, all bound to the same port with
  // SO_REUSEPORT: the kernel spreads incoming connections across the
  // shards' accept queues, so no loop is an accept bottleneck. An
  // ephemeral request (port 0) resolves on the first socket; the rest
  // join that port.
  std::uint16_t bound = port;
  for (auto& sp : shards_) {
    Shard& s = *sp;
    s.listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    POCC_ASSERT(s.listen_fd >= 0);
    const int one = 1;
    ::setsockopt(s.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (shards_.size() > 1) {
      POCC_ASSERT_MSG(::setsockopt(s.listen_fd, SOL_SOCKET, SO_REUSEPORT, &one,
                                   sizeof(one)) == 0,
                      "SO_REUSEPORT unavailable for sharded accept");
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(bound);
    POCC_ASSERT_MSG(
        ::bind(s.listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) == 0,
        "cannot bind listen socket (port in use?)");
    POCC_ASSERT(::listen(s.listen_fd, 512) == 0);
    socklen_t len = sizeof(addr);
    POCC_ASSERT(::getsockname(s.listen_fd, reinterpret_cast<sockaddr*>(&addr),
                              &len) == 0);
    set_nonblocking(s.listen_fd);
    bound = ntohs(addr.sin_port);
  }
  listen_port_ = bound;
  return listen_port_;
}

TcpTransport::Shard* TcpTransport::shard_of(ConnId conn) const {
  const std::uint32_t idx = loop_of(conn);
  if (idx >= shards_.size()) return nullptr;
  return shards_[idx].get();
}

ConnId TcpTransport::connect_peer(std::string host, std::uint16_t port,
                                  std::int32_t loop) {
  // Outbound links get a designated owning loop (peer FIFO links are
  // spread deterministically by the host); -1 assigns round-robin.
  const std::uint32_t idx =
      loop >= 0 && static_cast<std::size_t>(loop) < shards_.size()
          ? static_cast<std::uint32_t>(loop)
          : next_dial_shard_.fetch_add(1, std::memory_order_relaxed) %
                static_cast<std::uint32_t>(shards_.size());
  Shard& s = *shards_[idx];
  std::lock_guard lk(s.mu);
  auto conn = std::make_unique<Conn>();
  conn->id = (static_cast<ConnId>(idx) << kShardShift) | s.next_seq++;
  conn->outbound = true;
  conn->host = std::move(host);
  conn->port = port;
  conn->retry_at = 0;  // dial on the next loop iteration
  const ConnId id = conn->id;
  s.conns.emplace(id, std::move(conn));
  if (started_.load(std::memory_order_relaxed)) wake(s);
  return id;
}

void TcpTransport::start() {
  POCC_ASSERT(!started_.exchange(true));
  for (auto& s : shards_) {
    s->thread = std::thread([this, shard = s.get()] { run(*shard); });
  }
}

void TcpTransport::stop() {
  for (auto& s : shards_) {
    {
      std::lock_guard lk(s->mu);
      s->stopping = true;  // idempotent: a second stop only re-joins
    }
    wake(*s);
  }
  for (auto& s : shards_) {
    if (s->thread.joinable()) s->thread.join();
  }
}

void TcpTransport::wake(Shard& s) {
  const char b = 1;
  while (true) {
    const ssize_t n = ::write(s.wake_pipe[1], &b, 1);
    if (n >= 0) return;
    // A signal mid-write must not lose the wakeup; a full pipe means a
    // wake is already pending, which is all a wake means.
    if (errno == EINTR) continue;
    return;
  }
}

void TcpTransport::wake_loop(std::uint32_t loop) {
  if (loop >= shards_.size()) return;
  wake(*shards_[loop]);
}

std::vector<std::thread::native_handle_type>
TcpTransport::loop_thread_handles() {
  std::vector<std::thread::native_handle_type> out;
  for (auto& s : shards_) {
    if (s->thread.joinable()) out.push_back(s->thread.native_handle());
  }
  return out;
}

bool TcpTransport::try_send(ConnId conn, std::vector<std::uint8_t>& frame) {
  Shard* sp = shard_of(conn);
  if (sp == nullptr) return false;
  Shard& s = *sp;
  std::lock_guard lk(s.mu);
  auto it = s.conns.find(conn);
  if (it == s.conns.end()) return false;
  Conn& c = *it->second;
  if (!c.outbound && !c.up) return false;
  const std::size_t pending = c.outbox_bytes + c.chaos_held_bytes;
  // While the socket is down the tighter reconnect-buffer cap applies: a
  // long outage must not buffer up to the full backpressure bound.
  const bool socket_down = !c.up;
  const std::size_t cap =
      socket_down ? std::min(opt_.max_down_buffer_bytes, opt_.max_outbox_bytes)
                  : opt_.max_outbox_bytes;
  if (pending + frame.size() > cap) {
    if (socket_down && pending + frame.size() <= opt_.max_outbox_bytes) {
      ++s.stats.down_buffer_drops;
    } else {
      ++s.stats.send_overflows;
    }
    return false;
  }
  if (c.chaos != nullptr) {
    const Timestamp now = now_us();
    const ChaosVerdict v = c.chaos->on_frame(frame.size(), now);
    if (v.reset) c.chaos_reset_pending = true;
    ++s.stats.frames_out;
    if (v.duplicate) {
      ++s.stats.frames_out;
      ++s.stats.chaos_duplicates;
    }
    // Once anything is held, everything queues behind it (FIFO).
    if (v.delay_us > 0 || !c.chaos_hold.empty()) {
      ++s.stats.chaos_delayed;
      c.chaos_held_bytes += frame.size() * (v.duplicate ? 2 : 1);
      if (v.duplicate) {
        c.chaos_hold.push_back(Conn::HeldFrame{now + v.delay_us, frame});
      }
      c.chaos_hold.push_back(
          Conn::HeldFrame{now + v.delay_us, std::move(frame)});
      wake(s);
      return true;
    }
    if (v.duplicate) {
      enqueue_frame(c, frame);  // copy: the original goes below
    }
    enqueue_frame(c, std::move(frame));
    wake(s);
    return true;
  }
  enqueue_frame(c, std::move(frame));
  ++s.stats.frames_out;
  wake(s);
  return true;
}

void TcpTransport::enqueue_frame(Conn& c, std::vector<std::uint8_t> frame) {
  // Zero-copy: the caller's encode buffer IS the outbox entry; it returns
  // to the shard arena once the socket has written it.
  c.outbox_bytes += frame.size();
  c.outbox.push_back(std::move(frame));
}

void TcpTransport::recycle_conn(Shard& s, Conn& c) {
  s.arena.release(std::move(c.inbox));
  c.inbox = {};
  while (!c.outbox.empty()) {
    s.arena.release(std::move(c.outbox.front()));
    c.outbox.pop_front();
  }
  c.outbox_bytes = 0;
  c.frame_written = 0;
}

std::vector<std::uint8_t> TcpTransport::acquire_buffer(ConnId conn) {
  Shard* sp = shard_of(conn);
  if (sp == nullptr) return {};
  std::lock_guard lk(sp->mu);
  bool hit = false;
  std::vector<std::uint8_t> buf = sp->arena.acquire(&hit);
  if (hit) {
    ++sp->stats.arena_hits;
  } else {
    ++sp->stats.arena_misses;
  }
  return buf;
}

void TcpTransport::set_chaos(ConnId conn, std::shared_ptr<ChaosLink> link) {
  Shard* sp = shard_of(conn);
  if (sp == nullptr) return;
  std::lock_guard lk(sp->mu);
  auto it = sp->conns.find(conn);
  if (it == sp->conns.end()) return;
  it->second->chaos = std::move(link);
  if (started_.load(std::memory_order_relaxed)) wake(*sp);
}

void TcpTransport::set_greeting(ConnId conn, std::vector<std::uint8_t> frame) {
  Shard* sp = shard_of(conn);
  if (sp == nullptr) return;
  std::lock_guard lk(sp->mu);
  auto it = sp->conns.find(conn);
  if (it == sp->conns.end()) return;
  it->second->greeting = std::move(frame);
}

bool TcpTransport::migrate(ConnId conn, std::uint32_t target_loop) {
  Shard* sp = shard_of(conn);
  if (sp == nullptr || target_loop >= shards_.size()) return false;
  if (target_loop == sp->index) return false;
  std::lock_guard lk(sp->mu);
  auto it = sp->conns.find(conn);
  if (it == sp->conns.end()) return false;
  Conn& c = *it->second;
  // Only live accepted connections move: an outbound link's id is a stable
  // handle held by its LinkBatcher, and its shard is its designated owner.
  if (c.outbound || !c.up || c.fd < 0) return false;
  c.migrate_to = static_cast<std::int32_t>(target_loop);
  return true;
}

std::vector<std::pair<ConnId, ConnId>> TcpTransport::hand_over_migrations(
    Shard& s) {
  std::vector<std::unique_ptr<Conn>> moving;
  std::vector<std::pair<ConnId, ConnId>> renames;
  {
    std::lock_guard lk(s.mu);
    for (auto it = s.conns.begin(); it != s.conns.end();) {
      Conn& c = *it->second;
      if (c.migrate_to < 0) {
        ++it;
        continue;
      }
      if (!c.up || c.fd < 0) {  // died before the handoff; reaped normally
        c.migrate_to = -1;
        ++it;
        continue;
      }
      s.loop->unwatch(c.fd);
      s.unmap_fd(c.fd);
      ++s.stats.migrations;
      moving.push_back(std::move(it->second));
      it = s.conns.erase(it);
    }
  }
  for (auto& cp : moving) {
    Shard& t = *shards_[static_cast<std::size_t>(cp->migrate_to)];
    cp->migrate_to = -1;
    const ConnId old_id = cp->id;
    {
      std::lock_guard lk(t.mu);
      cp->id = (static_cast<ConnId>(t.index) << kShardShift) | t.next_seq++;
      renames.emplace_back(old_id, cp->id);
      t.adopted.push_back(std::move(cp));
    }
    wake(t);
  }
  return renames;
}

bool TcpTransport::connected(ConnId conn) const {
  Shard* sp = shard_of(conn);
  if (sp == nullptr) return false;
  std::lock_guard lk(sp->mu);
  auto it = sp->conns.find(conn);
  return it != sp->conns.end() && it->second->up;
}

TransportStats TcpTransport::stats() const {
  TransportStats total;
  for (const auto& s : shards_) {
    {
      std::lock_guard lk(s->mu);
      total += s->stats;
    }
    // EventLoop counters are relaxed atomics written by the loop thread;
    // the loop outlives every scrape, so reading them outside the shard
    // lock is safe and keeps the scrape off the hot path.
    const EventLoop::Stats& ls = s->loop->stats();
    total.uring_enters += ls.uring_enters.load();
    total.uring_sqes += ls.uring_sqes.load();
    total.uring_cqes += ls.uring_cqes.load();
    total.uring_no_syscall_waits += ls.uring_no_syscall_waits.load();
  }
  return total;
}

void TcpTransport::dial(Shard& s, Conn& c, Timestamp now) {
  c.retry_at = 0;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(c.port);
  if (::getaddrinfo(c.host.c_str(), port_str.c_str(), &hints, &res) != 0 ||
      res == nullptr) {
    arm_backoff(s, c, now);
    return;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  POCC_ASSERT(fd >= 0);
  set_nonblocking(fd);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const int rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  if (rc == 0) {
    c.fd = fd;
    s.map_fd(fd, c.id);
    mark_established(s, c);
    return;
  }
  if (errno == EINPROGRESS) {
    c.fd = fd;
    s.map_fd(fd, c.id);
    c.connecting = true;
    return;
  }
  ::close(fd);
  arm_backoff(s, c, now);
}

void TcpTransport::arm_backoff(Shard& s, Conn& c, Timestamp now) {
  // The ceiling doubles deterministically; the actual retry draws uniformly
  // from [min, ceiling] (full jitter) so a partition heal doesn't trigger a
  // synchronized redial storm across every cut link.
  c.backoff_us = std::clamp<Duration>(
      c.backoff_us == 0 ? opt_.reconnect_backoff_min_us : c.backoff_us * 2,
      opt_.reconnect_backoff_min_us, opt_.reconnect_backoff_max_us);
  const Duration span = c.backoff_us - opt_.reconnect_backoff_min_us;
  const Duration jittered =
      opt_.reconnect_backoff_min_us +
      (span > 0
           ? static_cast<Duration>(
                 s.backoff_rng.uniform(static_cast<std::uint64_t>(span) + 1))
           : 0);
  c.retry_at = now + jittered;
}

void TcpTransport::mark_established(Shard& /*s*/, Conn& c) {
  c.connecting = false;
  c.up = true;
  c.backoff_us = 0;
  if (!c.greeting.empty()) {
    // close_socket rewound frame_written to 0, so the front frame has no
    // partially-sent prefix and the greeting can jump the queue whole.
    POCC_ASSERT(c.frame_written == 0);
    c.outbox_bytes += c.greeting.size();
    c.outbox.push_front(c.greeting);  // copy: re-sent on every reconnect
  }
}

void TcpTransport::close_socket(Shard& s, Conn& c) {
  if (c.fd >= 0) {
    s.loop->unwatch(c.fd);
    s.unmap_fd(c.fd);
    ::close(c.fd);
    c.fd = -1;
  }
  c.connecting = false;
  c.up = false;
  c.announced = false;
  c.inbox.clear();
  // Rewind a partially-written frame to its boundary: the reconnected
  // socket must restart the frame from byte 0, never resume its tail.
  c.outbox_bytes += c.frame_written;
  c.frame_written = 0;
  if (c.outbound) {
    arm_backoff(s, c, now_us());
    ++s.stats.reconnects;
  }
}

void TcpTransport::chaos_pass(Shard& s, Timestamp now,
                              std::vector<ConnId>& went_down) {
  for (auto& [id, cp] : s.conns) {
    Conn& c = *cp;
    if (c.chaos == nullptr) continue;
    const bool was_up = c.up;
    if (c.chaos_reset_pending) {
      c.chaos_reset_pending = false;
      if (c.up || c.connecting) {
        ++s.stats.chaos_resets;
        close_socket(s, c);
      }
    }
    if ((c.up || c.connecting) && c.chaos->blocked(now)) {
      // A partition window cuts the established socket too, not only new
      // dials — the peer sees the link die, exactly like a real outage.
      close_socket(s, c);
    }
    // Release frames whose chaos delay elapsed into the real outbox. They
    // buffer there even while the socket is down (reconnect semantics).
    while (!c.chaos_hold.empty() && c.chaos_hold.front().release_at <= now) {
      std::vector<std::uint8_t> frame = std::move(c.chaos_hold.front().frame);
      c.chaos_hold.pop_front();
      c.chaos_held_bytes -= frame.size();
      enqueue_frame(c, std::move(frame));
    }
    if (was_up && !c.up) went_down.push_back(c.id);
  }
}

void TcpTransport::drain_outbox(Shard& s, Conn& c) {
  while (!c.outbox.empty()) {
    // Gather the front frame's unsent tail plus whole queued frames into
    // one sendmsg — a reply burst or a batcher flush leaves the process in
    // a single syscall instead of one send() per contiguity break.
    iovec iov[kMaxFlushIov];
    std::size_t niov = 0;
    for (const auto& f : c.outbox) {
      const std::size_t off = niov == 0 ? c.frame_written : 0;
      iov[niov].iov_base =
          const_cast<std::uint8_t*>(f.data()) + off;  // sendmsg won't write
      iov[niov].iov_len = f.size() - off;
      if (++niov == kMaxFlushIov) break;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = niov;
    const ssize_t w = ::sendmsg(c.fd, &msg, MSG_NOSIGNAL);
    if (w > 0) {
      ++s.stats.sendmsg_calls;
      s.stats.bytes_out += static_cast<std::uint64_t>(w);
      c.outbox_bytes -= static_cast<std::size_t>(w);
      c.frame_written += static_cast<std::size_t>(w);
      // Recycle fully-written frames through the shard arena; a partial
      // frame keeps its cursor for the next writable edge.
      while (!c.outbox.empty() && c.frame_written >= c.outbox.front().size()) {
        c.frame_written -= c.outbox.front().size();
        ++s.stats.sendmsg_frames;
        s.arena.release(std::move(c.outbox.front()));
        c.outbox.pop_front();
      }
      continue;
    }
    // EINTR: a signal landed mid-send — the connection is healthy, retry
    // (tearing it down here was the spurious-reconnect bug the signal
    // storm test pins down).
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    close_socket(s, c);
    return;
  }
}

void TcpTransport::read_ready(Shard& s, Conn& c) {
  std::uint8_t buf[kReadChunk];
  while (true) {
    const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      c.inbox.insert(c.inbox.end(), buf, buf + n);
      s.stats.bytes_in += static_cast<std::uint64_t>(n);
      if (static_cast<std::size_t>(n) < sizeof(buf)) return;
      continue;
    }
    // EINTR is not EOF: retry instead of closing a healthy connection.
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    close_socket(s, c);  // orderly EOF or error
    return;
  }
}

void TcpTransport::accept_ready(Shard& s) {
  while (true) {
    const int fd = ::accept(s.listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;       // signal: the queue may be non-empty
      if (errno == ECONNABORTED) continue;  // peer gave up; try the next one
      return;  // EAGAIN (queue drained) or a resource error; retried on the
               // next readiness report either way
    }
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Conn>();
    conn->id = (static_cast<ConnId>(s.index) << kShardShift) | s.next_seq++;
    conn->fd = fd;
    conn->up = true;
    bool hit = false;
    conn->inbox = s.arena.acquire(&hit);  // accept churn reuses capacity
    if (hit) {
      ++s.stats.arena_hits;
    } else {
      ++s.stats.arena_misses;
    }
    ++s.stats.accepts;
    s.map_fd(fd, conn->id);
    s.conns.emplace(conn->id, std::move(conn));
  }
}

void TcpTransport::run(Shard& s) {
  std::vector<EventLoop::Event> events;

  // Deferred callback work collected under the lock, invoked outside it so
  // handlers may call back into send()/connect_peer()/migrate().
  struct Delivery {
    ConnId conn;
    proto::Frame frame;
  };
  std::vector<ConnId> went_up;
  std::vector<ConnId> went_down;
  std::vector<Delivery> deliveries;
  std::vector<ConnId> to_erase;

  // Batch-flush tick: shard 0 owns the host tick; the wait timeout is
  // clamped to the next tick so staged batches never wait longer than one
  // interval for the flush callback.
  const Duration tick_us = opt_.tick_interval_us;
  Timestamp next_tick = (s.index == 0 && tick_us > 0) ? now_us() + tick_us : 0;

  s.loop->watch(s.wake_pipe[0], true, false);
  if (s.listen_fd >= 0) s.loop->watch(s.listen_fd, true, false);

  while (true) {
    int timeout_ms = -1;
    {
      std::lock_guard lk(s.mu);
      if (s.stopping) break;
      // Adopt connections migrated here by other shards (pinning): they
      // arrive up-and-announced, carrying any undecoded inbox remainder.
      for (auto& cp : s.adopted) {
        s.map_fd(cp->fd, cp->id);
        s.conns.emplace(cp->id, std::move(cp));
      }
      s.adopted.clear();
      const Timestamp now = now_us();
      Timestamp next_timer = 0;
      for (auto& [id, cp] : s.conns) {
        Conn& c = *cp;
        if (c.fd < 0) {
          if (!c.outbound) continue;
          if (c.chaos != nullptr && c.chaos->blocked(now)) {
            // Partition window: don't redial; recheck shortly.
            c.retry_at = now + 5'000;
          } else if (c.retry_at <= now) {
            dial(s, c, now);
          }
        }
        if (!c.chaos_hold.empty() &&
            (next_timer == 0 || c.chaos_hold.front().release_at < next_timer)) {
          next_timer = c.chaos_hold.front().release_at;
        }
        if (c.fd >= 0) {
          // Interest delta only — EventLoop::watch no-ops when unchanged,
          // so the scan costs one epoll_ctl per actual transition.
          s.loop->watch(c.fd, true, c.connecting || c.outbox_bytes > 0);
        } else if (c.retry_at > 0 &&
                   (next_timer == 0 || c.retry_at < next_timer)) {
          next_timer = c.retry_at;
        }
      }
      if (next_tick > 0 && (next_timer == 0 || next_tick < next_timer)) {
        next_timer = next_tick;
      }
      if (next_timer > 0) {
        const Timestamp now2 = now_us();
        timeout_ms = next_timer <= now2
                         ? 0
                         : static_cast<int>((next_timer - now2) / 1000 + 1);
      }
      // A dial that completed synchronously still needs its on_connected
      // announcement (made in the post-wait section): don't block for it.
      for (auto& [id, cp] : s.conns) {
        if (cp->up && !cp->announced) {
          timeout_ms = 0;
          break;
        }
      }
    }

    // Driven-host pass (outside the shard lock): service the NodeGroup
    // worker this loop owns; its next engine timer bounds the sleep. Work
    // the pass produced (replies into this shard's outboxes) left a wake
    // in the pipe, so the wait below returns immediately.
    if (cb_.on_loop_pass) {
      const Timestamp worker_deadline = cb_.on_loop_pass(s.index);
      if (worker_deadline > 0) {
        const Timestamp now2 = now_us();
        const int ms =
            worker_deadline <= now2
                ? 0
                : static_cast<int>((worker_deadline - now2) / 1000 + 1);
        if (timeout_ms < 0 || ms < timeout_ms) timeout_ms = ms;
      }
    }

    s.loop->wait(timeout_ms, events);

    went_up.clear();
    went_down.clear();
    deliveries.clear();
    to_erase.clear();
    {
      std::lock_guard lk(s.mu);
      if (s.stopping) break;
      chaos_pass(s, now_us(), went_down);
      bool accept_pending = false;
      for (const EventLoop::Event& ev : events) {
        if (ev.fd == s.wake_pipe[0]) {
          char buf[256];
          while (true) {
            const ssize_t n = ::read(s.wake_pipe[0], buf, sizeof(buf));
            if (n > 0) continue;
            if (n < 0 && errno == EINTR) continue;  // drain fully, then stop
            break;  // EAGAIN: pipe empty
          }
          continue;
        }
        if (ev.fd == s.listen_fd) {
          // Accept after the connection events: a recycled fd number can
          // then never receive a stale event meant for its predecessor.
          accept_pending = true;
          continue;
        }
        const ConnId cid = s.conn_at_fd(ev.fd);
        if (cid == kInvalidConn) continue;  // closed earlier this pass
        auto it = s.conns.find(cid);
        if (it == s.conns.end()) continue;
        Conn& c = *it->second;
        if (c.fd != ev.fd) continue;
        if (c.connecting && (ev.writable || ev.error)) {
          int err = 0;
          socklen_t len = sizeof(err);
          ::getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &len);
          if (err == 0 && !ev.error) {
            mark_established(s, c);
          } else {
            close_socket(s, c);
          }
          continue;
        }
        const bool was_up = c.up;
        if (ev.error && !ev.readable) {
          close_socket(s, c);
        } else {
          if (ev.readable) read_ready(s, c);
          if (c.up && ev.writable) drain_outbox(s, c);
        }

        // Cut the inbox into decoded frames.
        std::size_t off = 0;
        while (c.up && off < c.inbox.size()) {
          proto::DecodeResult res =
              proto::decode_frame(c.inbox.data() + off, c.inbox.size() - off);
          if (res.status == proto::DecodeResult::Status::kOk) {
            ++s.stats.frames_in;
            deliveries.push_back(Delivery{c.id, std::move(res.frame)});
            off += res.consumed;
            continue;
          }
          if (res.status == proto::DecodeResult::Status::kNeedMore) break;
          ++s.stats.decode_errors;
          close_socket(s, c);
          break;
        }
        if (off > 0 && c.fd >= 0) {
          c.inbox.erase(c.inbox.begin(),
                        c.inbox.begin() + static_cast<std::ptrdiff_t>(off));
        }
        if (was_up && !c.up) went_down.push_back(c.id);
      }
      if (accept_pending) accept_ready(s);
      // Optimistic flush: drain every queued outbox now instead of waiting
      // for the next writable event. Multishot-poll readiness (kUring) is
      // edge-like — a socket that stayed writable never re-posts a CQE — so
      // write interest must mean "kernel buffer filled up", whose clearing
      // IS a real edge; on epoll/poll this also saves one loop pass of
      // latency per reply burst.
      for (auto& [id, cp] : s.conns) {
        Conn& c = *cp;
        if (c.fd < 0 || !c.up || c.outbox_bytes == 0) continue;
        const bool was_up = c.up;
        drain_outbox(s, c);
        if (was_up && !c.up) went_down.push_back(c.id);
      }
      // Announce newly established sockets (accepted, connected or
      // reconnected — close_socket resets `announced`) and reap dead
      // inbound connections (the remote owns their recovery).
      for (auto& [id, cp] : s.conns) {
        Conn& c = *cp;
        if (c.up && !c.announced) {
          c.announced = true;
          went_up.push_back(c.id);
        }
        if (!c.outbound && !c.up) to_erase.push_back(id);
      }
      for (const ConnId id : to_erase) {
        auto dead = s.conns.find(id);
        if (dead == s.conns.end()) continue;
        recycle_conn(s, *dead->second);
        s.conns.erase(dead);
      }
    }

    for (const ConnId id : went_up) {
      if (cb_.on_connected) cb_.on_connected(id);
    }
    for (Delivery& d : deliveries) {
      if (cb_.on_frame) cb_.on_frame(d.conn, std::move(d.frame));
    }
    for (const ConnId id : went_down) {
      if (cb_.on_disconnected) cb_.on_disconnected(id);
    }
    // Hand over connections on_frame marked for migration — after the
    // deliveries above, so every frame this shard decoded for them was
    // delivered before the target shard can read more (FIFO across the
    // move). The rename is announced from here, the source thread.
    for (const auto& [from, to] : hand_over_migrations(s)) {
      if (cb_.on_migrated) cb_.on_migrated(from, to);
    }
    if (next_tick > 0 && now_us() >= next_tick) {
      next_tick = now_us() + tick_us;
      if (cb_.on_tick) cb_.on_tick();
    }
  }

  // Best-effort final drain: push out what shutdown staged (a host flushes
  // its batchers right before stop()) without blocking — anything the
  // kernel won't take now dies with the process, as before.
  {
    std::lock_guard lk(s.mu);
    for (auto& [id, cp] : s.conns) {
      if (cp->fd >= 0 && cp->up) drain_outbox(s, *cp);
    }
  }
}

// ------------------------------------------------------------ LinkBatcher ---

void LinkBatcher::add(NodeId from, NodeId to, const proto::Message& m) {
  std::lock_guard lk(mu_);
  writer_.add(from, to, m);
  ++stats_.messages;
  if (writer_.count() >= policy_.max_messages ||
      writer_.body_bytes() >= policy_.max_bytes) {
    flush_locked();
  }
}

void LinkBatcher::flush() {
  std::lock_guard lk(mu_);
  retry_pending_locked();
  if (!writer_.empty()) flush_locked();
}

void LinkBatcher::flush_locked() {
  stats_.protocol_bytes += writer_.stats().protocol_bytes;
  stats_.overhead_bytes +=
      writer_.stats().overhead_bytes + proto::kFrameHeaderBytes;
  // Encode into a recycled shard-arena buffer: the flushed frame's vector
  // returns there once the transport writes it, closing the reuse loop.
  std::vector<std::uint8_t> frame = transport_.acquire_buffer(conn_);
  writer_.flush_to(frame);
  ++stats_.batches;
  // FIFO: while older batches are parked, new ones must queue behind them
  // even if the transport would accept them now.
  if (!pending_.empty()) {
    park_locked(std::move(frame));
    return;
  }
  if (!transport_.try_send(conn_, frame)) {
    // Backpressure: park and re-offer on later ticks instead of dropping —
    // a throttled link trades latency for losslessness (§II-C channels).
    ++stats_.send_failures;
    park_locked(std::move(frame));
  }
}

void LinkBatcher::park_locked(std::vector<std::uint8_t> frame) {
  if (pending_bytes_ + frame.size() > policy_.max_pending_bytes) {
    ++stats_.dropped_batches;
    return;
  }
  pending_bytes_ += frame.size();
  pending_.push_back(std::move(frame));
}

void LinkBatcher::retry_pending_locked() {
  while (!pending_.empty() && transport_.try_send(conn_, pending_.front())) {
    pending_bytes_ -= pending_.front().size();
    ++stats_.retried_batches;
    pending_.pop_front();
  }
}

BatchStats LinkBatcher::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

std::size_t LinkBatcher::pending_bytes() const {
  std::lock_guard lk(mu_);
  return pending_bytes_;
}

}  // namespace pocc::net
