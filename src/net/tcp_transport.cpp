#include "net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/assert.hpp"
#include "runtime/rt_node.hpp"

namespace pocc::net {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  POCC_ASSERT(flags >= 0);
  POCC_ASSERT(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

}  // namespace

// The deployment's single monotonic time base (also what poccd aligns to
// CLOCK_REALTIME via offset_bias_us); only used here for backoff timing.
Timestamp TcpTransport::now_us() { return rt::steady_now_us(); }

TcpTransport::TcpTransport(Callbacks callbacks, Options options)
    : cb_(std::move(callbacks)), opt_(options), backoff_rng_(options.seed) {
  POCC_ASSERT(::pipe(wake_pipe_) == 0);
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);
}

TcpTransport::~TcpTransport() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (auto& [id, conn] : conns_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
}

std::uint16_t TcpTransport::listen(std::uint16_t port) {
  POCC_ASSERT_MSG(listen_fd_ < 0, "listen() called twice");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  POCC_ASSERT(listen_fd_ >= 0);
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  POCC_ASSERT_MSG(
      ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
          0,
      "cannot bind listen socket (port in use?)");
  POCC_ASSERT(::listen(listen_fd_, 128) == 0);
  socklen_t len = sizeof(addr);
  POCC_ASSERT(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                            &len) == 0);
  set_nonblocking(listen_fd_);
  listen_port_ = ntohs(addr.sin_port);
  return listen_port_;
}

ConnId TcpTransport::connect_peer(std::string host, std::uint16_t port) {
  std::lock_guard lk(mu_);
  auto conn = std::make_unique<Conn>();
  conn->id = next_conn_id_++;
  conn->outbound = true;
  conn->host = std::move(host);
  conn->port = port;
  conn->retry_at = 0;  // dial on the next loop iteration
  const ConnId id = conn->id;
  conns_.emplace(id, std::move(conn));
  if (started_.load(std::memory_order_relaxed)) wake();
  return id;
}

void TcpTransport::start() {
  POCC_ASSERT(!started_.exchange(true));
  thread_ = std::thread([this] { run(); });
}

void TcpTransport::stop() {
  {
    std::lock_guard lk(mu_);
    stopping_ = true;  // idempotent: a second stop only re-joins
  }
  wake();
  if (thread_.joinable()) thread_.join();
}

void TcpTransport::wake() {
  const char b = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &b, 1);
}

bool TcpTransport::try_send(ConnId conn, std::vector<std::uint8_t>& frame) {
  std::lock_guard lk(mu_);
  auto it = conns_.find(conn);
  if (it == conns_.end()) return false;
  Conn& c = *it->second;
  if (!c.outbound && !c.up) return false;
  const std::size_t pending =
      c.outbox.size() - c.outbox_head + c.chaos_held_bytes;
  // While the socket is down the tighter reconnect-buffer cap applies: a
  // long outage must not buffer up to the full backpressure bound.
  const bool socket_down = !c.up;
  const std::size_t cap =
      socket_down ? std::min(opt_.max_down_buffer_bytes, opt_.max_outbox_bytes)
                  : opt_.max_outbox_bytes;
  if (pending + frame.size() > cap) {
    if (socket_down && pending + frame.size() <= opt_.max_outbox_bytes) {
      ++stats_.down_buffer_drops;
    } else {
      ++stats_.send_overflows;
    }
    return false;
  }
  if (c.chaos != nullptr) {
    const Timestamp now = now_us();
    const ChaosVerdict v = c.chaos->on_frame(frame.size(), now);
    if (v.reset) c.chaos_reset_pending = true;
    ++stats_.frames_out;
    if (v.duplicate) {
      ++stats_.frames_out;
      ++stats_.chaos_duplicates;
    }
    // Once anything is held, everything queues behind it (FIFO).
    if (v.delay_us > 0 || !c.chaos_hold.empty()) {
      ++stats_.chaos_delayed;
      c.chaos_held_bytes += frame.size() * (v.duplicate ? 2 : 1);
      if (v.duplicate) {
        c.chaos_hold.push_back(Conn::HeldFrame{now + v.delay_us, frame});
      }
      c.chaos_hold.push_back(
          Conn::HeldFrame{now + v.delay_us, std::move(frame)});
      wake();
      return true;
    }
    if (v.duplicate) {
      enqueue_frame(c, frame);  // copy: the original goes below
    }
    enqueue_frame(c, std::move(frame));
    wake();
    return true;
  }
  enqueue_frame(c, std::move(frame));
  ++stats_.frames_out;
  wake();
  return true;
}

void TcpTransport::enqueue_frame(Conn& c, std::vector<std::uint8_t> frame) {
  // Compact the consumed prefix before appending when it dominates — but
  // only up to the current frame's start: a disconnect rewinds into those
  // bytes (see close_socket), so they must stay resident.
  const std::size_t compactable = c.outbox_head - c.frame_written;
  if (compactable > 0 && compactable >= c.outbox.size() / 2) {
    c.outbox.erase(c.outbox.begin(),
                   c.outbox.begin() + static_cast<std::ptrdiff_t>(compactable));
    c.outbox_head = c.frame_written;
  }
  c.outbox_frames.push_back(frame.size());
  c.outbox.insert(c.outbox.end(), frame.begin(), frame.end());
}

void TcpTransport::set_chaos(ConnId conn, std::shared_ptr<ChaosLink> link) {
  std::lock_guard lk(mu_);
  auto it = conns_.find(conn);
  if (it == conns_.end()) return;
  it->second->chaos = std::move(link);
  if (started_.load(std::memory_order_relaxed)) wake();
}

void TcpTransport::set_greeting(ConnId conn, std::vector<std::uint8_t> frame) {
  std::lock_guard lk(mu_);
  auto it = conns_.find(conn);
  if (it == conns_.end()) return;
  it->second->greeting = std::move(frame);
}

void TcpTransport::mark_established(Conn& c) {
  c.connecting = false;
  c.up = true;
  c.backoff_us = 0;
  if (!c.greeting.empty()) {
    // close_socket rewound to a frame boundary, so the head is one here.
    c.outbox.insert(
        c.outbox.begin() + static_cast<std::ptrdiff_t>(c.outbox_head),
        c.greeting.begin(), c.greeting.end());
    c.outbox_frames.push_front(c.greeting.size());
  }
}

bool TcpTransport::connected(ConnId conn) const {
  std::lock_guard lk(mu_);
  auto it = conns_.find(conn);
  return it != conns_.end() && it->second->up;
}

TransportStats TcpTransport::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

void TcpTransport::dial(Conn& c, Timestamp now) {
  c.retry_at = 0;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(c.port);
  if (::getaddrinfo(c.host.c_str(), port_str.c_str(), &hints, &res) != 0 ||
      res == nullptr) {
    arm_backoff(c, now);
    return;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  POCC_ASSERT(fd >= 0);
  set_nonblocking(fd);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const int rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  if (rc == 0) {
    c.fd = fd;
    mark_established(c);
    return;
  }
  if (errno == EINPROGRESS) {
    c.fd = fd;
    c.connecting = true;
    return;
  }
  ::close(fd);
  arm_backoff(c, now);
}

void TcpTransport::arm_backoff(Conn& c, Timestamp now) {
  // The ceiling doubles deterministically; the actual retry draws uniformly
  // from [min, ceiling] (full jitter) so a partition heal doesn't trigger a
  // synchronized redial storm across every cut link.
  c.backoff_us = std::clamp<Duration>(
      c.backoff_us == 0 ? opt_.reconnect_backoff_min_us : c.backoff_us * 2,
      opt_.reconnect_backoff_min_us, opt_.reconnect_backoff_max_us);
  const Duration span = c.backoff_us - opt_.reconnect_backoff_min_us;
  const Duration jittered =
      opt_.reconnect_backoff_min_us +
      (span > 0 ? static_cast<Duration>(
                      backoff_rng_.uniform(static_cast<std::uint64_t>(span) + 1))
                : 0);
  c.retry_at = now + jittered;
}

void TcpTransport::close_socket(Conn& c, bool /*notify*/) {
  if (c.fd >= 0) {
    ::close(c.fd);
    c.fd = -1;
  }
  c.connecting = false;
  c.up = false;
  c.announced = false;
  c.inbox.clear();
  // Rewind a partially-written frame to its boundary: the reconnected
  // socket must restart the frame from byte 0, never resume its tail.
  c.outbox_head -= c.frame_written;
  c.frame_written = 0;
  if (c.outbound) {
    arm_backoff(c, now_us());
    ++stats_.reconnects;
  }
}

void TcpTransport::chaos_pass(Timestamp now, std::vector<ConnId>& went_down) {
  for (auto& [id, cp] : conns_) {
    Conn& c = *cp;
    if (c.chaos == nullptr) continue;
    const bool was_up = c.up;
    if (c.chaos_reset_pending) {
      c.chaos_reset_pending = false;
      if (c.up || c.connecting) {
        ++stats_.chaos_resets;
        close_socket(c, true);
      }
    }
    if ((c.up || c.connecting) && c.chaos->blocked(now)) {
      // A partition window cuts the established socket too, not only new
      // dials — the peer sees the link die, exactly like a real outage.
      close_socket(c, true);
    }
    // Release frames whose chaos delay elapsed into the real outbox. They
    // buffer there even while the socket is down (reconnect semantics).
    while (!c.chaos_hold.empty() && c.chaos_hold.front().release_at <= now) {
      std::vector<std::uint8_t> frame =
          std::move(c.chaos_hold.front().frame);
      c.chaos_hold.pop_front();
      c.chaos_held_bytes -= frame.size();
      enqueue_frame(c, std::move(frame));
    }
    if (was_up && !c.up) went_down.push_back(c.id);
  }
}

void TcpTransport::drain_outbox(Conn& c) {
  while (c.outbox_head < c.outbox.size()) {
    const std::size_t n = c.outbox.size() - c.outbox_head;
    const ssize_t w = ::send(c.fd, c.outbox.data() + c.outbox_head, n,
                             MSG_NOSIGNAL);
    if (w > 0) {
      c.outbox_head += static_cast<std::size_t>(w);
      stats_.bytes_out += static_cast<std::uint64_t>(w);
      // Advance the frame cursor past fully-written frames.
      c.frame_written += static_cast<std::size_t>(w);
      while (!c.outbox_frames.empty() &&
             c.frame_written >= c.outbox_frames.front()) {
        c.frame_written -= c.outbox_frames.front();
        c.outbox_frames.pop_front();
      }
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    close_socket(c, true);
    return;
  }
  c.outbox.clear();
  c.outbox_head = 0;
}

void TcpTransport::read_ready(Conn& c) {
  std::uint8_t buf[kReadChunk];
  while (true) {
    const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      c.inbox.insert(c.inbox.end(), buf, buf + n);
      stats_.bytes_in += static_cast<std::uint64_t>(n);
      if (static_cast<std::size_t>(n) < sizeof(buf)) return;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    close_socket(c, true);  // orderly EOF or error
    return;
  }
}

void TcpTransport::accept_ready() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Conn>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    conn->up = true;
    ++stats_.accepts;
    conns_.emplace(conn->id, std::move(conn));
  }
}

void TcpTransport::run() {
  std::vector<pollfd> pfds;
  std::vector<ConnId> pfd_conn;  // parallel to pfds; 0 for listener/pipe

  // Deferred callback work collected under the lock, invoked outside it so
  // handlers may call back into send()/connect_peer().
  struct Delivery {
    ConnId conn;
    proto::Frame frame;
  };
  std::vector<ConnId> went_up;
  std::vector<ConnId> went_down;
  std::vector<Delivery> deliveries;
  std::vector<ConnId> to_erase;

  // Batch-flush tick: the poll timeout is clamped to the next tick so staged
  // batches never wait longer than one interval for the flush callback.
  const Duration tick_us = opt_.tick_interval_us;
  Timestamp next_tick = tick_us > 0 ? now_us() + tick_us : 0;

  while (true) {
    pfds.clear();
    pfd_conn.clear();
    int timeout_ms = -1;
    {
      std::lock_guard lk(mu_);
      if (stopping_) break;
      pfds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
      pfd_conn.push_back(0);
      if (listen_fd_ >= 0) {
        pfds.push_back(pollfd{listen_fd_, POLLIN, 0});
        pfd_conn.push_back(0);
      }
      const Timestamp now = now_us();
      Timestamp next_timer = 0;
      for (auto& [id, cp] : conns_) {
        Conn& c = *cp;
        if (c.fd < 0) {
          if (!c.outbound) continue;
          if (c.chaos != nullptr && c.chaos->blocked(now)) {
            // Partition window: don't redial; recheck shortly.
            c.retry_at = now + 5'000;
          } else if (c.retry_at <= now) {
            dial(c, now);
          }
        }
        if (!c.chaos_hold.empty() &&
            (next_timer == 0 || c.chaos_hold.front().release_at < next_timer)) {
          next_timer = c.chaos_hold.front().release_at;
        }
        if (c.fd >= 0) {
          short events = POLLIN;
          if (c.connecting || c.outbox_head < c.outbox.size()) {
            events |= POLLOUT;
          }
          pfds.push_back(pollfd{c.fd, events, 0});
          pfd_conn.push_back(c.id);
        } else if (c.retry_at > 0 &&
                   (next_timer == 0 || c.retry_at < next_timer)) {
          next_timer = c.retry_at;
        }
      }
      if (tick_us > 0 && (next_timer == 0 || next_tick < next_timer)) {
        next_timer = next_tick;
      }
      if (next_timer > 0) {
        const Timestamp now2 = now_us();
        timeout_ms = next_timer <= now2
                         ? 0
                         : static_cast<int>((next_timer - now2) / 1000 + 1);
      }
      // A dial that completed synchronously still needs its on_connected
      // announcement (made in the post-poll section): don't block for it.
      for (auto& [id, cp] : conns_) {
        if (cp->up && !cp->announced) {
          timeout_ms = 0;
          break;
        }
      }
    }

    ::poll(pfds.data(), pfds.size(), timeout_ms);

    went_up.clear();
    went_down.clear();
    deliveries.clear();
    to_erase.clear();
    {
      std::lock_guard lk(mu_);
      if (stopping_) break;
      chaos_pass(now_us(), went_down);
      for (std::size_t i = 0; i < pfds.size(); ++i) {
        const pollfd& p = pfds[i];
        if (p.revents == 0) continue;
        if (p.fd == wake_pipe_[0]) {
          char buf[256];
          while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
          }
          continue;
        }
        if (p.fd == listen_fd_) {
          accept_ready();
          continue;
        }
        auto it = conns_.find(pfd_conn[i]);
        if (it == conns_.end()) continue;
        Conn& c = *it->second;
        if (c.fd != p.fd) continue;  // socket was replaced this iteration
        if (c.connecting && (p.revents & (POLLOUT | POLLERR | POLLHUP)) != 0) {
          int err = 0;
          socklen_t len = sizeof(err);
          ::getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &len);
          if (err == 0 && (p.revents & (POLLERR | POLLHUP)) == 0) {
            mark_established(c);
          } else {
            close_socket(c, false);
          }
          continue;
        }
        const bool was_up = c.up;
        if ((p.revents & (POLLERR | POLLHUP)) != 0 &&
            (p.revents & POLLIN) == 0) {
          close_socket(c, true);
        } else {
          if ((p.revents & POLLIN) != 0) read_ready(c);
          if (c.up && (p.revents & POLLOUT) != 0) drain_outbox(c);
        }

        // Cut the inbox into decoded frames.
        std::size_t off = 0;
        while (c.up && off < c.inbox.size()) {
          proto::DecodeResult res =
              proto::decode_frame(c.inbox.data() + off, c.inbox.size() - off);
          if (res.status == proto::DecodeResult::Status::kOk) {
            ++stats_.frames_in;
            deliveries.push_back(Delivery{c.id, std::move(res.frame)});
            off += res.consumed;
            continue;
          }
          if (res.status == proto::DecodeResult::Status::kNeedMore) break;
          ++stats_.decode_errors;
          close_socket(c, true);
          break;
        }
        if (off > 0 && c.fd >= 0) {
          c.inbox.erase(c.inbox.begin(),
                        c.inbox.begin() + static_cast<std::ptrdiff_t>(off));
        }
        if (was_up && !c.up) went_down.push_back(c.id);
      }
      // Announce newly established sockets (accepted, connected or
      // reconnected — close_socket resets `announced`) and reap dead
      // inbound connections (the remote owns their recovery).
      for (auto& [id, cp] : conns_) {
        Conn& c = *cp;
        if (c.up && !c.announced) {
          c.announced = true;
          went_up.push_back(c.id);
        }
        if (!c.outbound && !c.up) to_erase.push_back(id);
      }
      for (const ConnId id : to_erase) conns_.erase(id);
    }

    for (const ConnId id : went_up) {
      if (cb_.on_connected) cb_.on_connected(id);
    }
    for (Delivery& d : deliveries) {
      if (cb_.on_frame) cb_.on_frame(d.conn, std::move(d.frame));
    }
    for (const ConnId id : went_down) {
      if (cb_.on_disconnected) cb_.on_disconnected(id);
    }
    if (tick_us > 0 && now_us() >= next_tick) {
      next_tick = now_us() + tick_us;
      if (cb_.on_tick) cb_.on_tick();
    }
  }
}

// ------------------------------------------------------------ LinkBatcher ---

void LinkBatcher::add(NodeId from, NodeId to, const proto::Message& m) {
  std::lock_guard lk(mu_);
  writer_.add(from, to, m);
  ++stats_.messages;
  if (writer_.count() >= policy_.max_messages ||
      writer_.body_bytes() >= policy_.max_bytes) {
    flush_locked();
  }
}

void LinkBatcher::flush() {
  std::lock_guard lk(mu_);
  retry_pending_locked();
  if (!writer_.empty()) flush_locked();
}

void LinkBatcher::flush_locked() {
  stats_.protocol_bytes += writer_.stats().protocol_bytes;
  stats_.overhead_bytes +=
      writer_.stats().overhead_bytes + proto::kFrameHeaderBytes;
  std::vector<std::uint8_t> frame;
  writer_.flush_to(frame);
  ++stats_.batches;
  // FIFO: while older batches are parked, new ones must queue behind them
  // even if the transport would accept them now.
  if (!pending_.empty()) {
    park_locked(std::move(frame));
    return;
  }
  if (!transport_.try_send(conn_, frame)) {
    // Backpressure: park and re-offer on later ticks instead of dropping —
    // a throttled link trades latency for losslessness (§II-C channels).
    ++stats_.send_failures;
    park_locked(std::move(frame));
  }
}

void LinkBatcher::park_locked(std::vector<std::uint8_t> frame) {
  if (pending_bytes_ + frame.size() > policy_.max_pending_bytes) {
    ++stats_.dropped_batches;
    return;
  }
  pending_bytes_ += frame.size();
  pending_.push_back(std::move(frame));
}

void LinkBatcher::retry_pending_locked() {
  while (!pending_.empty() && transport_.try_send(conn_, pending_.front())) {
    pending_bytes_ -= pending_.front().size();
    ++stats_.retried_batches;
    pending_.pop_front();
  }
}

BatchStats LinkBatcher::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

std::size_t LinkBatcher::pending_bytes() const {
  std::lock_guard lk(mu_);
  return pending_bytes_;
}

}  // namespace pocc::net
