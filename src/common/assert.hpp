// Lightweight runtime assertion that is active in all build types.
//
// Protocol invariants (e.g. FIFO delivery order, version-vector monotonicity)
// guard correctness of the consistency protocols; violating them silently
// would invalidate every experiment, so they stay on in release builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace pocc::detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "POCC_ASSERT failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}
}  // namespace pocc::detail

#define POCC_ASSERT(expr)                                              \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::pocc::detail::assert_fail(#expr, __FILE__, __LINE__, "");      \
    }                                                                  \
  } while (false)

#define POCC_ASSERT_MSG(expr, msg)                                     \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::pocc::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));   \
    }                                                                  \
  } while (false)
