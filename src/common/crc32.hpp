// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
// framing every WAL record and snapshot body (src/wal/). Table-driven,
// byte-at-a-time: recovery replay is sequential disk I/O, not a hot loop.
#pragma once

#include <cstddef>
#include <cstdint>

namespace pocc {

/// Incremental update: feed `crc32_update(crc, ...)` the next chunk, starting
/// from crc32_init() and finishing with crc32_final().
[[nodiscard]] inline std::uint32_t crc32_init() { return 0xFFFFFFFFu; }
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                                         std::size_t len);
[[nodiscard]] inline std::uint32_t crc32_final(std::uint32_t crc) {
  return crc ^ 0xFFFFFFFFu;
}

/// One-shot CRC-32 of [data, data+len).
[[nodiscard]] inline std::uint32_t crc32(const void* data, std::size_t len) {
  return crc32_final(crc32_update(crc32_init(), data, len));
}

}  // namespace pocc
