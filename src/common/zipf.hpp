// Zipf-distributed key sampling.
//
// The paper's workload (§V-A) chooses keys "within each partition according to
// a zipf distribution with parameter 0.99". We use the rejection-inversion
// sampler of Hörmann & Derflinger (1996), which needs O(1) memory and O(1)
// expected time per sample regardless of the key-space size (1M keys per
// partition at paper scale).
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace pocc {

/// Samples ranks in [0, n) with P(rank = k) proportional to 1 / (k+1)^theta.
class ZipfGenerator {
 public:
  /// n: number of elements (> 0); theta: skew exponent (>= 0; 0 = uniform).
  ZipfGenerator(std::uint64_t n, double theta);

  /// Draw one rank in [0, n). Rank 0 is the most popular element.
  std::uint64_t next(Rng& rng) const;

  [[nodiscard]] std::uint64_t n() const { return n_; }
  [[nodiscard]] double theta() const { return theta_; }

 private:
  [[nodiscard]] double h_integral(double x) const;
  [[nodiscard]] double h(double x) const;
  [[nodiscard]] double h_integral_inverse(double x) const;

  std::uint64_t n_;
  double theta_;
  double h_integral_x1_ = 0.0;
  double h_integral_n_ = 0.0;
  double s_ = 0.0;
};

}  // namespace pocc
