// Key hashing and deterministic key->partition placement (paper §II-C: "each
// key is deterministically assigned to a single partition according to a hash
// function").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/config.hpp"
#include "common/types.hpp"

namespace pocc {

/// FNV-1a 64-bit hash. Stable across platforms (unlike std::hash).
constexpr std::uint64_t fnv1a(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Finalizer from MurmurHash3 — used to mix integer keys.
constexpr std::uint64_t mix64(std::uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

/// Deterministic partition placement for a key.
inline PartitionId partition_of(std::string_view key, std::uint32_t partitions) {
  return static_cast<PartitionId>(fnv1a(key) % partitions);
}

/// Scheme-aware placement: kPrefix parses a decimal "<partition>:" prefix
/// (falling back to hashing when absent), kHash always hashes.
PartitionId partition_of(std::string_view key, std::uint32_t partitions,
                         PartitionScheme scheme);

/// Builds a key that `partition_of(..., kPrefix)` places on `part`.
std::string make_partition_key(PartitionId part, std::uint64_t rank);

}  // namespace pocc
