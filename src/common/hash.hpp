// Key hashing and deterministic key->partition placement (paper §II-C: "each
// key is deterministically assigned to a single partition according to a hash
// function").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/config.hpp"
#include "common/types.hpp"

namespace pocc {

/// FNV-1a 64-bit hash. Stable across platforms (unlike std::hash).
constexpr std::uint64_t fnv1a(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// splitmix64 step function (Steele, Lea, Flood 2014). A full-avalanche
/// 64-bit mix: every input bit affects every output bit, including the low
/// ones — safe to truncate into power-of-two hash-table buckets.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Finalizer from MurmurHash3 — used to mix integer keys.
constexpr std::uint64_t mix64(std::uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

/// Deterministic partition placement for a key.
inline PartitionId partition_of(std::string_view key, std::uint32_t partitions) {
  return static_cast<PartitionId>(fnv1a(key) % partitions);
}

/// Parses the decimal "<partition>:" prefix of `key` into `part`. Returns
/// false when the key has no valid prefix. Single source of truth for the
/// prefix syntax (shared by partition_of and the KeySpace interner).
bool parse_partition_prefix(std::string_view key, std::uint32_t* part);

/// Scheme-aware placement: kPrefix parses a decimal "<partition>:" prefix
/// (falling back to hashing when absent), kHash always hashes.
PartitionId partition_of(std::string_view key, std::uint32_t partitions,
                         PartitionScheme scheme);

/// Builds a key that `partition_of(..., kPrefix)` places on `part`.
std::string make_partition_key(PartitionId part, std::uint64_t rank);

}  // namespace pocc
