// Core identifier and time types shared by every module.
//
// The system model (paper §II-C): a key-value store sharded into N partitions,
// each replicated at M data centers. A node is therefore addressed by the pair
// (data center, partition). Timestamps are physical-clock microseconds, the
// granularity used for update times and dependency/version vectors.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace pocc {

/// Identifier of a data center (replica site). The paper calls this the
/// "source replica" id when attached to an item version.
using DcId = std::uint32_t;

/// Identifier of a partition (shard) within a data center.
using PartitionId = std::uint32_t;

/// Identifier of a client session, unique across the whole deployment.
using ClientId = std::uint64_t;

/// Dense identifier of an interned key (see store/key_space.hpp). Keys are
/// interned once at the workload/client boundary; every hop below it (wire
/// messages, stores, engines, checker) carries this 4-byte id instead of a
/// heap-allocated string. A pure simulation-host optimization: protocol
/// metadata and wire-size accounting still model full key strings.
using KeyId = std::uint32_t;

inline constexpr KeyId kInvalidKeyId = 0xffffffffu;

/// Physical-clock timestamp in microseconds. Also used for simulated time.
using Timestamp = std::int64_t;

/// Time duration in microseconds.
using Duration = std::int64_t;

inline constexpr Timestamp kTimestampMin = std::numeric_limits<Timestamp>::min();
inline constexpr Timestamp kTimestampMax = std::numeric_limits<Timestamp>::max();

inline constexpr Duration operator""_us(unsigned long long v) {
  return static_cast<Duration>(v);
}
inline constexpr Duration operator""_ms(unsigned long long v) {
  return static_cast<Duration>(v) * 1000;
}
inline constexpr Duration operator""_s(unsigned long long v) {
  return static_cast<Duration>(v) * 1000 * 1000;
}

/// Address of a server: partition `part` of data center `dc`. The paper's
/// notation p^m_n maps to NodeId{.dc = m, .part = n}.
struct NodeId {
  DcId dc = 0;
  PartitionId part = 0;

  friend bool operator==(const NodeId&, const NodeId&) = default;
  friend auto operator<=>(const NodeId&, const NodeId&) = default;

  /// Dense encoding usable as a flat-array index given the partition count.
  [[nodiscard]] std::size_t flat_index(std::size_t partitions_per_dc) const {
    return static_cast<std::size_t>(dc) * partitions_per_dc +
           static_cast<std::size_t>(part);
  }

  [[nodiscard]] std::string to_string() const {
    return "dc" + std::to_string(dc) + "/p" + std::to_string(part);
  }
};

struct NodeIdHash {
  std::size_t operator()(const NodeId& n) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(n.dc) << 32) | n.part);
  }
};

}  // namespace pocc
