// Deterministic pseudo-random number generation.
//
// All randomness in the simulator (clock skew, network jitter, workload key
// choice, think-time sampling) flows through these generators so that a single
// seed reproduces an experiment bit-for-bit. We implement the generators
// ourselves instead of using <random> distributions because libstdc++ does not
// guarantee cross-version stability of distribution algorithms.
#pragma once

#include <cstdint>

namespace pocc {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA'14).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ — fast, high-quality 64-bit generator (Blackman & Vigna).
/// Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Derive an independent generator (for per-node / per-client streams).
  [[nodiscard]] Rng split();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Standard normal via Box–Muller (deterministic, platform independent).
  double normal(double mean = 0.0, double stddev = 1.0);

 private:
  std::uint64_t s_[4];
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace pocc
