#include "common/hash.hpp"

#include <charconv>

#include "common/assert.hpp"
#include "common/config.hpp"

namespace pocc {

bool parse_partition_prefix(std::string_view key, std::uint32_t* part) {
  const std::size_t colon = key.find(':');
  if (colon == std::string_view::npos || colon == 0) return false;
  const auto [ptr, ec] = std::from_chars(key.data(), key.data() + colon, *part);
  return ec == std::errc{} && ptr == key.data() + colon;
}

PartitionId partition_of(std::string_view key, std::uint32_t partitions,
                         PartitionScheme scheme) {
  POCC_ASSERT(partitions > 0);
  std::uint32_t part = 0;
  if (scheme == PartitionScheme::kPrefix &&
      parse_partition_prefix(key, &part)) {
    return part % partitions;
  }
  // Keys without a valid prefix are hashed.
  return partition_of(key, partitions);
}

std::string make_partition_key(PartitionId part, std::uint64_t rank) {
  return std::to_string(part) + ":" + std::to_string(rank);
}

}  // namespace pocc
