// Power-of-two ring deque over contiguous storage.
//
// Extracted from sim::CpuQueue::JobRing (which is now an instantiation) so
// the threaded runtime's per-worker inboxes reuse the same structure:
// std::deque allocates a 512-byte node per handful of elements, putting one
// malloc/free on every busy producer/consumer path, while this ring grows
// geometrically and then stays allocation-free. Elements emplace directly
// into their ring cell; pop_front moves the element out.
//
// Not thread-safe by itself — CpuQueue uses it single-threaded, the runtime
// workers guard theirs with the inbox mutex.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>

namespace pocc::common {

template <typename T>
class Ring {
 public:
  [[nodiscard]] bool empty() const { return head_ == tail_; }
  [[nodiscard]] std::size_t size() const { return tail_ - head_; }

  template <typename U>
  void push_back(U&& element) {
    if (tail_ - head_ == cap_) grow();
    ring_[tail_++ & (cap_ - 1)] = std::forward<U>(element);
  }

  T pop_front() {
    T out = std::move(ring_[head_ & (cap_ - 1)]);
    ++head_;
    return out;
  }

 private:
  void grow() {
    const std::size_t cap = cap_ == 0 ? 16 : cap_ * 2;
    // Default-init (new T[cap]), not value-init: value-init would zero every
    // element's storage (a Job's ~200-byte inline buffer, say) on each grow.
    std::unique_ptr<T[]> bigger(new T[cap]);
    const std::size_t n = tail_ - head_;
    for (std::size_t i = 0; i < n; ++i) {
      bigger[i] = std::move(ring_[(head_ + i) & (cap_ - 1)]);
    }
    ring_ = std::move(bigger);
    cap_ = cap;
    head_ = 0;
    tail_ = n;
  }

  std::unique_ptr<T[]> ring_;  // default-init storage, power-of-two capacity
  std::size_t cap_ = 0;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
};

}  // namespace pocc::common
