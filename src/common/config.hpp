// Deployment-level configuration shared by the simulator host, the threaded
// runtime host, the workload generators and the benchmark harnesses.
//
// Defaults mirror the paper's test-bed (§V-A): 3 DCs (Oregon, Virginia,
// Ireland), 32 partitions per DC, NTP-synchronized clocks, 1 ms heartbeat
// interval, 5 ms Cure* stabilization interval, last-writer-wins with the PUT
// wait enabled.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace pocc {

/// How keys map to partitions. `kHash` is the production scheme (§II-C:
/// "each key is deterministically assigned to a single partition according to
/// a hash function"); `kPrefix` reads an explicit "<partition>:" key prefix,
/// which the workload generators use to target specific partitions the way
/// the paper's workloads do ("Each GET operation targets a different
/// partition", §V-B).
enum class PartitionScheme { kHash, kPrefix };

/// Shape of the deployment: M data centers × N partitions per DC.
struct TopologyConfig {
  std::uint32_t num_dcs = 3;
  std::uint32_t partitions_per_dc = 32;
  PartitionScheme partition_scheme = PartitionScheme::kHash;

  [[nodiscard]] std::size_t total_nodes() const {
    return static_cast<std::size_t>(num_dcs) * partitions_per_dc;
  }
};

/// One-way network delays. Channels are lossless and FIFO (paper §II-C); the
/// sampled delay adds exponential jitter but delivery order per channel is
/// preserved by the network layer.
struct LatencyConfig {
  /// One-way delay between two servers in the same DC.
  Duration intra_dc_base_us = 250;
  /// One-way delay between a client and the server it is collocated with.
  Duration loopback_us = 20;
  /// Exponential jitter mean added on top of any base delay.
  Duration jitter_mean_us = 50;
  /// inter_dc_base_us[i][j]: one-way delay from DC i to DC j (i != j).
  std::vector<std::vector<Duration>> inter_dc_base_us;
  /// Used to fill the matrix for DC pairs not explicitly configured.
  Duration default_inter_dc_us = 40'000;

  /// One-way base delay from DC a to DC b (a == b gives intra-DC delay).
  [[nodiscard]] Duration base_delay(DcId a, DcId b) const;

  /// The paper's deployment: Oregon (0), Virginia (1), Ireland (2).
  /// One-way delays approximating the public inter-region RTT/2 figures.
  static LatencyConfig aws_three_dc();

  /// A fast LAN-like configuration for unit tests.
  static LatencyConfig uniform(Duration one_way_us, Duration jitter_us = 0);
};

/// Physical-clock behaviour. The protocol only assumes *loose* synchronization
/// (NTP); correctness never depends on the skew bound, but performance does
/// (PUT waits until max(DV_c) < local clock, Alg. 2 line 7).
struct ClockConfig {
  /// Per-node constant offset is drawn from N(offset_bias_us,
  /// offset_sigma_us). NTP inside a DC (LAN) syncs to ~100 us.
  double offset_sigma_us = 150.0;
  /// Shared per-DC bias drawn from N(0, dc_offset_sigma_us) — WAN-level NTP
  /// error between sites (~1 ms). Applied by the cluster host via
  /// offset_bias_us.
  double dc_offset_sigma_us = 1'000.0;
  /// Constant bias added to the drawn offset (set per node by the host).
  Timestamp offset_bias_us = 0;
  /// Per-node drift drawn from N(0, drift_ppm_sigma) parts-per-million.
  double drift_ppm_sigma = 10.0;
  /// Per-read jitter (models OS/timer quantization), uniform in [0, read_jitter_us].
  Duration read_jitter_us = 0;

  static ClockConfig perfect() {
    ClockConfig c;
    c.offset_sigma_us = 0.0;
    c.dc_offset_sigma_us = 0.0;
    c.offset_bias_us = 0;
    c.drift_ppm_sigma = 0.0;
    c.read_jitter_us = 0;
    return c;
  }
};

/// CPU cost model for the discrete-event host. Each node is a FIFO queueing
/// station with `cores` servers; each handler invocation costs a base service
/// time plus per-unit increments reported by the protocol engine (e.g. version
/// chain hops for Cure* GETs). Calibrated so that a 96-node full-scale
/// deployment saturates around the paper's ~0.65 Mops/s (§V-B).
struct ServiceConfig {
  std::uint32_t cores = 2;           // c4.large: 2 vCPUs
  /// Guaranteed CPU share of the background (replication-apply/maintenance)
  /// class under overload: one dispatch in `background_share_den` (see
  /// sim/cpu_queue.hpp).
  std::uint32_t background_share_den = 8;
  Duration get_us = 110;             // client-facing GET handling
  Duration put_us = 130;             // client-facing PUT handling
  Duration replicate_us = 25;        // applying one replicated update
  Duration heartbeat_us = 4;         // applying a heartbeat
  Duration version_hop_us = 9;       // traversing one version in a chain
  Duration tx_coord_us = 60;         // RO-TX coordinator fixed cost
  Duration tx_coord_per_part_us = 18;// RO-TX coordinator per contacted partition
  Duration slice_us = 70;            // SliceReq handling fixed cost
  Duration slice_per_key_us = 25;    // per key read within a slice
  Duration stabilization_us = 12;    // processing one stabilization message
  Duration gc_round_us = 40;         // processing one GC exchange message
};

/// Protocol intervals and switches (paper §IV-B and §V-A).
struct ProtocolConfig {
  /// Heartbeat idleness threshold Δ: a partition that has not served a PUT for
  /// this long broadcasts its clock to its replicas.
  Duration heartbeat_interval_us = 1'000;
  /// Cure* stabilization period (GSS recomputation).
  Duration stabilization_interval_us = 5'000;
  /// POCC garbage-collection exchange period.
  Duration gc_interval_us = 50'000;
  /// Whether PUT waits for the client's dependencies to be locally installed
  /// (Alg. 2 line 6 — optional for LWW; the paper enables it, §V-A).
  bool put_dependency_wait = true;
  /// HA-POCC: how long a request may stay parked before the server suspects a
  /// network partition and closes the session (§III-B).
  Duration block_timeout_us = 500'000;
  /// HA-POCC: stabilization period while operating optimistically (run much
  /// less frequently than Cure's, §IV-C).
  Duration ha_stabilization_interval_us = 100'000;
};

/// Number of keys pre-loaded per partition (paper: 1M; tests use fewer).
struct DatasetConfig {
  std::uint64_t keys_per_partition = 1'000'000;
  double zipf_theta = 0.99;
  std::uint32_t value_size = 8;
};

}  // namespace pocc
