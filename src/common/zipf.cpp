#include "common/zipf.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace pocc {

namespace {
// helper1(x) = log1p(x) / x, stable near 0.
double helper1(double x) {
  if (std::abs(x) > 1e-8) return std::log1p(x) / x;
  return 1.0 - x * (0.5 - x * (1.0 / 3.0 - x * 0.25));
}

// helper2(x) = expm1(x) / x, stable near 0.
double helper2(double x) {
  if (std::abs(x) > 1e-8) return std::expm1(x) / x;
  return 1.0 + x * 0.5 * (1.0 + x * (1.0 / 3.0) * (1.0 + x * 0.25));
}
}  // namespace

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  POCC_ASSERT(n > 0);
  POCC_ASSERT(theta >= 0.0);
  h_integral_x1_ = h_integral(1.5) - 1.0;
  h_integral_n_ = h_integral(static_cast<double>(n) + 0.5);
  s_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
}

double ZipfGenerator::h_integral(double x) const {
  const double log_x = std::log(x);
  return helper2((1.0 - theta_) * log_x) * log_x;
}

double ZipfGenerator::h(double x) const {
  return std::exp(-theta_ * std::log(x));
}

double ZipfGenerator::h_integral_inverse(double x) const {
  double t = x * (1.0 - theta_);
  if (t < -1.0) t = -1.0;  // Numerical guard per the reference implementation.
  return std::exp(helper1(t) * x);
}

std::uint64_t ZipfGenerator::next(Rng& rng) const {
  if (n_ == 1) return 0;
  while (true) {
    const double u =
        h_integral_n_ + rng.next_double() * (h_integral_x1_ - h_integral_n_);
    const double x = h_integral_inverse(u);
    auto k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= s_ || u >= h_integral(kd + 0.5) - h(kd)) {
      return k - 1;  // external rank is 0-based
    }
  }
}

}  // namespace pocc
