#include "common/crc32.hpp"

#include <array>

namespace pocc {

namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;  // reflected IEEE 802.3

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? kPoly ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                           std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

}  // namespace pocc
