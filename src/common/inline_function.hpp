// Move-only callable with small-buffer inline storage.
//
// std::function heap-allocates any callable whose captures exceed its tiny
// internal buffer (16 bytes on libstdc++) — on the simulation hot path that
// meant one malloc/free per scheduled event and per CPU job, since the common
// closure captures a full proto::Message. InlineFunction stores callables up
// to `Capacity` bytes inline (no allocation, the common case by construction:
// the event-loop call sites static_assert their closures fit) and falls back
// to a heap box only for oversized ones.
//
// Trivially copyable captures (plain payloads, pointer pairs — the majority
// of scheduled actions) relocate by memcpy with no indirect call; everything
// else relocates through a type-erased manage function.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace pocc::common {

template <typename Signature, std::size_t Capacity = 48>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
  static_assert(Capacity >= sizeof(void*), "capacity below pointer size");
  static_assert(Capacity <= 0xffff, "capacity exceeds size field");

  template <typename F>
  static constexpr bool stored_inline_v =
      sizeof(F) <= Capacity && alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  template <typename F>
  static constexpr bool trivially_relocatable_v =
      stored_inline_v<F> && std::is_trivially_copyable_v<F> &&
      std::is_trivially_destructible_v<F>;

  template <typename F>
  using enable_callable_t = std::enable_if_t<
      !std::is_same_v<std::decay_t<F>, InlineFunction> &&
      std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>;

 public:
  InlineFunction() noexcept = default;

  template <typename F, typename = enable_callable_t<F>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  template <typename F, typename = enable_callable_t<F>>
  InlineFunction& operator=(F&& f) {
    reset();
    emplace(std::forward<F>(f));
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  R operator()(Args... args) {
    return invoke_(storage(), static_cast<Args&&>(args)...);
  }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  /// True when the held callable lives in the inline buffer (tests).
  [[nodiscard]] bool is_inline() const noexcept { return inline_; }

  /// Inline capture budget in bytes.
  static constexpr std::size_t capacity() { return Capacity; }

  /// True when a callable of type F would be stored inline (size, alignment
  /// AND nothrow-movability) — the predicate no-allocation call sites should
  /// static_assert, rather than a bare sizeof check.
  template <typename F>
  static constexpr bool stores_inline = stored_inline_v<std::decay_t<F>>;

 private:
  enum class Op { kRelocate, kDestroy };
  using Invoke = R (*)(void*, Args&&...);
  // kRelocate: move the stored state from `self` into `dst` and end `self`'s
  // lifetime (ownership transfers). kDestroy: destroy the state in `self`.
  // Null manage = trivially relocatable: memcpy `size_` bytes, no destructor.
  using Manage = void (*)(void* self, void* dst, Op);

  void* storage() noexcept { return static_cast<void*>(buf_); }

  template <typename F>
  void emplace(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (trivially_relocatable_v<Fn>) {
      ::new (storage()) Fn(std::forward<F>(f));
      inline_ = true;
      size_ = sizeof(Fn);
      invoke_ = [](void* s, Args&&... args) -> R {
        return (*static_cast<Fn*>(s))(static_cast<Args&&>(args)...);
      };
      manage_ = nullptr;
    } else if constexpr (stored_inline_v<Fn>) {
      ::new (storage()) Fn(std::forward<F>(f));
      inline_ = true;
      invoke_ = [](void* s, Args&&... args) -> R {
        return (*static_cast<Fn*>(s))(static_cast<Args&&>(args)...);
      };
      manage_ = [](void* self, void* dst, Op op) {
        auto* fn = static_cast<Fn*>(self);
        if (op == Op::kRelocate) ::new (dst) Fn(std::move(*fn));
        fn->~Fn();
      };
    } else {
      ::new (storage()) Fn*(new Fn(std::forward<F>(f)));
      inline_ = false;
      invoke_ = [](void* s, Args&&... args) -> R {
        return (**static_cast<Fn**>(s))(static_cast<Args&&>(args)...);
      };
      manage_ = [](void* self, void* dst, Op op) {
        auto** box = static_cast<Fn**>(self);
        if (op == Op::kRelocate) {
          ::new (dst) Fn*(*box);  // pointer transfer, no deep move
        } else {
          delete *box;
        }
      };
    }
  }

  void move_from(InlineFunction& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    size_ = other.size_;
    inline_ = other.inline_;
    if (invoke_ != nullptr) {
      if (manage_ != nullptr) {
        manage_(other.storage(), storage(), Op::kRelocate);
      } else {
        std::memcpy(storage(), other.storage(), size_);
      }
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  void reset() noexcept {
    if (manage_ != nullptr) manage_(storage(), nullptr, Op::kDestroy);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  alignas(std::max_align_t) std::byte buf_[Capacity];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
  std::uint16_t size_ = 0;
  bool inline_ = false;
};

}  // namespace pocc::common
