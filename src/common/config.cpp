#include "common/config.hpp"

#include "common/assert.hpp"

namespace pocc {

Duration LatencyConfig::base_delay(DcId a, DcId b) const {
  if (a == b) return intra_dc_base_us;
  if (a < inter_dc_base_us.size() && b < inter_dc_base_us[a].size() &&
      inter_dc_base_us[a][b] > 0) {
    return inter_dc_base_us[a][b];
  }
  return default_inter_dc_us;
}

LatencyConfig LatencyConfig::aws_three_dc() {
  LatencyConfig cfg;
  cfg.intra_dc_base_us = 250;
  cfg.jitter_mean_us = 50;
  // One-way delays (us): Oregon<->Virginia ~36ms, Oregon<->Ireland ~62ms,
  // Virginia<->Ireland ~38ms.
  cfg.inter_dc_base_us = {
      {0, 36'000, 62'000},
      {36'000, 0, 38'000},
      {62'000, 38'000, 0},
  };
  cfg.default_inter_dc_us = 40'000;
  return cfg;
}

LatencyConfig LatencyConfig::uniform(Duration one_way_us, Duration jitter_us) {
  POCC_ASSERT(one_way_us >= 0);
  LatencyConfig cfg;
  cfg.intra_dc_base_us = one_way_us;
  cfg.jitter_mean_us = jitter_us;
  cfg.inter_dc_base_us.clear();
  cfg.default_inter_dc_us = one_way_us;
  return cfg;
}

}  // namespace pocc
