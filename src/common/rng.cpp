#include "common/rng.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace pocc {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::split() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

double Rng::next_double() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  POCC_ASSERT(bound > 0);
  // Lemire's multiply-shift rejection method for unbiased bounded integers.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  POCC_ASSERT(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::exponential(double mean) {
  POCC_ASSERT(mean > 0.0);
  double u = next_double();
  // Guard against log(0).
  if (u >= 1.0) u = std::nextafter(1.0, 0.0);
  return -mean * std::log1p(-u);
}

double Rng::normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586;
  spare_normal_ = mag * std::sin(two_pi * u2);
  has_spare_normal_ = true;
  return mean + stddev * mag * std::cos(two_pi * u2);
}

}  // namespace pocc
