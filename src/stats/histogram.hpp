// Log-bucketed streaming histogram for latency-like quantities.
//
// HDR-style layout: values are bucketed by (exponent, 1/16 sub-bucket), giving
// <= ~6.25% relative error per bucket over the full int64 range with a small
// fixed memory footprint. Used for response times, blocking times and
// staleness measurements.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace pocc::stats {

class Histogram {
 public:
  static constexpr std::uint32_t kSubBits = 4;  // 16 sub-buckets per octave
  static constexpr std::uint32_t kSub = 1u << kSubBits;
  static constexpr std::uint32_t kOctaves = 48;  // values up to 2^48 us
  static constexpr std::uint32_t kBuckets = kOctaves * kSub;

  void record(std::int64_t value);
  void record_n(std::int64_t value, std::uint64_t n);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] std::int64_t min() const { return count_ ? min_ : 0; }
  [[nodiscard]] std::int64_t max() const { return count_ ? max_ : 0; }

  /// Samples recorded at or below `bound` (Prometheus cumulative-bucket
  /// semantics). Accurate to the bucket resolution (<= ~6.25% relative
  /// error): a bucket counts as <= bound when its representative midpoint is.
  [[nodiscard]] std::uint64_t count_le(std::int64_t bound) const;

  /// p in [0, 100]. Returns a representative value of the bucket containing
  /// the requested rank.
  [[nodiscard]] std::int64_t percentile(double p) const;

  void merge(const Histogram& other);
  void reset();

 private:
  static std::uint32_t bucket_of(std::uint64_t v);
  static std::int64_t bucket_mid(std::uint32_t b);

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

/// JSON fragment `"<prefix>_p50_us":N,"<prefix>_p99_us":N,"<prefix>_p999_us":N`
/// (no surrounding braces or trailing comma) — the one definition of which
/// percentiles a latency report carries, shared by the loadgen JSON line and
/// the bench baselines so they can never drift apart.
std::string latency_json_fields(const std::string& prefix, const Histogram& h);

}  // namespace pocc::stats
