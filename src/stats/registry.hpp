// Unified instrument registry: named, labeled counters / gauges / histograms
// that a live scrape thread can snapshot without blocking the hot paths.
//
// Sharding model
// --------------
// Hot-path writers never contend with each other or with scrapes:
//   * `Counter` / `Gauge` are single relaxed atomics — writers increment
//     wait-free, the scrape loads.
//   * `counter_fn` / `gauge_fn` adopt an *existing* thread-safe accessor
//     (e.g. TcpTransport::stats(), LinkBatcher::pending_bytes()) instead of
//     duplicating the count; the callback runs only at scrape time and MUST
//     be safe to call from the scrape thread.
//   * `histogram(...)` returns a HistogramCell — a mutex + stats::Histogram.
//     Registering the same (name, labels) repeatedly creates a NEW cell each
//     time, so each writer thread records into its own shard and the cell
//     mutex is uncontended except during the rare scrape, which merges all
//     shards of a name.
//
// `snapshot()` merges shards by (name, labels) preserving first-registration
// order and returns plain data; `render_prometheus()` / `render_human()` are
// two renders of the same snapshot (satisfying the "SIGUSR2 live dump ==
// /metrics" unification).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "stats/histogram.hpp"

namespace pocc::stats {

/// Label set, rendered in the given order: {{"part", "0"}, {"dc", "1"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Wait-free monotonic counter instrument.
class Counter {
 public:
  void inc(std::uint64_t d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Wait-free point-in-time gauge instrument.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// One histogram shard. Writers lock only their own cell, so the mutex is
/// uncontended on the hot path; the scrape takes each cell briefly to merge.
class HistogramCell {
 public:
  void record(std::int64_t v) {
    std::lock_guard<std::mutex> lk(mu_);
    hist_.record(v);
  }
  [[nodiscard]] Histogram snapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    return hist_;
  }

 private:
  mutable std::mutex mu_;
  Histogram hist_;
};

/// Plain-data scrape result (instruments already merged by name + labels).
struct Snapshot {
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  struct Sample {
    std::string name;
    Labels labels;
    Kind kind = Kind::kCounter;
    double value = 0.0;   // counter / gauge value
    Histogram hist;       // kHistogram only
    std::string help;
  };
  std::vector<Sample> samples;
};

class Registry {
 public:
  /// Counter names should end in `_total` (Prometheus convention); gauges
  /// and histograms should not.
  Counter* counter(std::string name, Labels labels = {}, std::string help = {});
  Gauge* gauge(std::string name, Labels labels = {}, std::string help = {});
  HistogramCell* histogram(std::string name, Labels labels = {},
                           std::string help = {});

  /// Scrape-time callbacks adopting existing thread-safe accessors. The
  /// callable runs on the scrape thread — it must not touch thread-affine
  /// state.
  void counter_fn(std::string name, Labels labels,
                  std::function<std::uint64_t()> fn, std::string help = {});
  void gauge_fn(std::string name, Labels labels,
                std::function<std::int64_t()> fn, std::string help = {});

  /// Merges all shards of each (name, labels) pair, preserving the order of
  /// first registration. Safe to call concurrently with hot-path writes.
  [[nodiscard]] Snapshot snapshot() const;

 private:
  struct Instrument {
    std::string name;
    Labels labels;
    Snapshot::Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramCell> hist;
    std::function<std::uint64_t()> counter_fn;
    std::function<std::int64_t()> gauge_fn;
  };

  mutable std::mutex mu_;  // guards instruments_ layout, not the hot writes
  std::vector<Instrument> instruments_;
};

/// Prometheus text exposition format: `# HELP` / `# TYPE` headers, cumulative
/// `le` buckets (microsecond ladder) plus `_sum` / `_count` for histograms,
/// full label-value escaping.
std::string render_prometheus(const Snapshot& snap);

/// One human line per instrument: `name{k=v}=value` with the `pocc_` prefix
/// and `_total` suffix stripped; histograms as `_count/_p50/_p99/_p999`.
/// Samples are joined with a single space (fits poccd's one-line dumps).
std::string render_human(const Snapshot& snap);

}  // namespace pocc::stats
