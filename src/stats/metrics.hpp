// Protocol-level metrics mirroring the quantities the paper reports:
//   * operation throughput and response times (Fig. 1, Fig. 3a/3b),
//   * blocking probability and blocking time of stalled ops (Fig. 2a, 3c),
//   * data staleness: % old / % unmerged reads and the number of fresher /
//     unmerged versions in the affected chains (Fig. 2b, 3d).
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "stats/histogram.hpp"
#include "stats/relaxed_counter.hpp"

namespace pocc::stats {

/// Server-side blocking behaviour (POCC §V-B "Blocking dynamics").
/// An operation "blocks" when it is parked because a dependency has not been
/// received yet; blocking time is how long it stays parked.
struct BlockingStats {
  /// Stalls longer than this count as "macro" blocking — the granularity a
  /// real deployment's measurement would register (sub-ms parking caused by
  /// inter-partition VV skew is indistinguishable from scheduling noise).
  static constexpr Duration kMacroThresholdUs = 1'000;

  // Counters are relaxed atomics so a live /metrics scrape may read them
  // from another thread while the owning engine thread keeps incrementing.
  RelaxedU64 operations;     // ops subject to blocking (GET/PUT/slice)
  RelaxedU64 blocked;        // ops that stalled at all
  RelaxedU64 blocked_macro;  // ops that stalled > kMacroThresholdUs
  Histogram blocked_time_us;  // blocking duration of blocked ops

  void record_op(Duration blocked_us) {
    ++operations;
    if (blocked_us > 0) {
      ++blocked;
      if (blocked_us > kMacroThresholdUs) ++blocked_macro;
      blocked_time_us.record(blocked_us);
    }
  }
  [[nodiscard]] double blocking_probability() const {
    return operations == 0
               ? 0.0
               : static_cast<double>(blocked) / static_cast<double>(operations);
  }
  [[nodiscard]] double macro_blocking_probability() const {
    return operations == 0 ? 0.0
                           : static_cast<double>(blocked_macro) /
                                 static_cast<double>(operations);
  }
  [[nodiscard]] double avg_blocking_time_us() const {
    return blocked_time_us.mean();
  }
  void merge(const BlockingStats& o) {
    operations += o.operations;
    blocked += o.blocked;
    blocked_macro += o.blocked_macro;
    blocked_time_us.merge(o.blocked_time_us);
  }
  void reset() {
    operations = 0;
    blocked = 0;
    blocked_macro = 0;
    blocked_time_us.reset();
  }
};

/// Read staleness (§V-B definitions):
///  - a returned item is "old" if it is not the version with the highest
///    timestamp in its chain;
///  - an item is "unmerged" if at least one version of it is not yet stable,
///    regardless of the freshness of the returned version.
struct StalenessStats {
  RelaxedU64 reads;
  RelaxedU64 old_reads;
  RelaxedU64 unmerged_reads;
  RelaxedU64 fresher_versions;   // summed over old reads
  RelaxedU64 unmerged_versions;  // summed over unmerged reads

  void record_read(std::uint32_t fresher, std::uint32_t unmerged) {
    ++reads;
    if (fresher > 0) {
      ++old_reads;
      fresher_versions += fresher;
    }
    if (unmerged > 0) {
      ++unmerged_reads;
      unmerged_versions += unmerged;
    }
  }
  [[nodiscard]] double pct_old() const {
    return reads == 0 ? 0.0
                      : 100.0 * static_cast<double>(old_reads) /
                            static_cast<double>(reads);
  }
  [[nodiscard]] double pct_unmerged() const {
    return reads == 0 ? 0.0
                      : 100.0 * static_cast<double>(unmerged_reads) /
                            static_cast<double>(reads);
  }
  /// Average number of fresher versions in the chain of an old read.
  [[nodiscard]] double avg_fresher_versions() const {
    return old_reads == 0 ? 0.0
                          : static_cast<double>(fresher_versions) /
                                static_cast<double>(old_reads);
  }
  /// Average number of unmerged versions in the chain of an unmerged read.
  [[nodiscard]] double avg_unmerged_versions() const {
    return unmerged_reads == 0 ? 0.0
                               : static_cast<double>(unmerged_versions) /
                                     static_cast<double>(unmerged_reads);
  }
  void merge(const StalenessStats& o) {
    reads += o.reads;
    old_reads += o.old_reads;
    unmerged_reads += o.unmerged_reads;
    fresher_versions += o.fresher_versions;
    unmerged_versions += o.unmerged_versions;
  }
  void reset() { *this = StalenessStats{}; }
};

/// Client-side operation latencies and counts.
struct OpStats {
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t ro_txs = 0;
  Histogram get_latency_us;
  Histogram put_latency_us;
  Histogram tx_latency_us;

  [[nodiscard]] std::uint64_t total_ops() const {
    return gets + puts + ro_txs;
  }
  void merge(const OpStats& o) {
    gets += o.gets;
    puts += o.puts;
    ro_txs += o.ro_txs;
    get_latency_us.merge(o.get_latency_us);
    put_latency_us.merge(o.put_latency_us);
    tx_latency_us.merge(o.tx_latency_us);
  }
  void reset() {
    gets = puts = ro_txs = 0;
    get_latency_us.reset();
    put_latency_us.reset();
    tx_latency_us.reset();
  }
  /// Mean latency over all operations.
  [[nodiscard]] double avg_latency_us() const;
};

/// Formats `v` with engineering-style precision for result tables.
std::string format_double(double v, int precision = 3);

}  // namespace pocc::stats
