#include "stats/metrics.hpp"

#include <cstdio>

namespace pocc::stats {

double OpStats::avg_latency_us() const {
  const std::uint64_t n = total_ops();
  if (n == 0) return 0.0;
  const double sum = get_latency_us.mean() * static_cast<double>(gets) +
                     put_latency_us.mean() * static_cast<double>(puts) +
                     tx_latency_us.mean() * static_cast<double>(ro_txs);
  return sum / static_cast<double>(n);
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

}  // namespace pocc::stats
