// Monotonic counters that stay plain-looking on the owner thread but are
// safe to READ from any thread (live /metrics scrapes): relaxed atomics
// with value semantics, so the structs that embed them keep their copy /
// merge / aggregate idioms. Relaxed is sufficient — every counter here is
// an independent statistic; scrapes tolerate instantaneous skew between
// counters exactly like any monitoring system does.
#pragma once

#include <atomic>
#include <cstdint>

namespace pocc::stats {

class RelaxedU64 {
 public:
  RelaxedU64() = default;
  RelaxedU64(std::uint64_t v) : v_(v) {}  // NOLINT(google-explicit-constructor)
  RelaxedU64(const RelaxedU64& o) : v_(o.load()) {}
  RelaxedU64& operator=(const RelaxedU64& o) {
    store(o.load());
    return *this;
  }
  RelaxedU64& operator=(std::uint64_t v) {
    store(v);
    return *this;
  }

  [[nodiscard]] std::uint64_t load() const {
    return v_.load(std::memory_order_relaxed);
  }
  void store(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  // NOLINTNEXTLINE(google-explicit-constructor)
  operator std::uint64_t() const { return load(); }

  RelaxedU64& operator++() {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  RelaxedU64& operator+=(std::uint64_t d) {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Signed variant for gauges mirrored off the owner thread (GC floors).
class RelaxedI64 {
 public:
  RelaxedI64() = default;
  RelaxedI64(std::int64_t v) : v_(v) {}  // NOLINT(google-explicit-constructor)
  RelaxedI64(const RelaxedI64& o) : v_(o.load()) {}
  RelaxedI64& operator=(const RelaxedI64& o) {
    store(o.load());
    return *this;
  }
  RelaxedI64& operator=(std::int64_t v) {
    store(v);
    return *this;
  }

  [[nodiscard]] std::int64_t load() const {
    return v_.load(std::memory_order_relaxed);
  }
  void store(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  // NOLINTNEXTLINE(google-explicit-constructor)
  operator std::int64_t() const { return load(); }

 private:
  std::atomic<std::int64_t> v_{0};
};

}  // namespace pocc::stats
