#include "stats/registry.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace pocc::stats {
namespace {

std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string render_labels(const Labels& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    out += escape_label_value(v);
    out += "\"";
  }
  out += "}";
  return out;
}

/// Extra labels appended to an existing label set (for `le` buckets).
std::string render_labels_with(const Labels& labels, const std::string& key,
                               const std::string& value) {
  Labels all = labels;
  all.emplace_back(key, value);
  return render_labels(all);
}

std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string fmt_value(double v) {
  // Counters/gauges are integral in practice; render without a spurious ".0"
  // when exact, with full precision otherwise.
  const auto as_i = static_cast<std::int64_t>(v);
  if (static_cast<double>(as_i) == v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, as_i);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Cumulative-bucket upper bounds for latency histograms, in microseconds.
/// Chosen to bracket the latencies the paper's evaluation reports (tens of
/// microseconds locally up to geo-replication RTTs of hundreds of ms).
constexpr std::int64_t kLeBoundsUs[] = {
    50,     100,    250,    500,     1'000,   2'500,     5'000,    10'000,
    25'000, 50'000, 100'000, 250'000, 500'000, 1'000'000,
};

}  // namespace

Counter* Registry::counter(std::string name, Labels labels, std::string help) {
  std::lock_guard<std::mutex> lk(mu_);
  Instrument ins;
  ins.name = std::move(name);
  ins.labels = std::move(labels);
  ins.kind = Snapshot::Kind::kCounter;
  ins.help = std::move(help);
  ins.counter = std::make_unique<Counter>();
  Counter* out = ins.counter.get();
  instruments_.push_back(std::move(ins));
  return out;
}

Gauge* Registry::gauge(std::string name, Labels labels, std::string help) {
  std::lock_guard<std::mutex> lk(mu_);
  Instrument ins;
  ins.name = std::move(name);
  ins.labels = std::move(labels);
  ins.kind = Snapshot::Kind::kGauge;
  ins.help = std::move(help);
  ins.gauge = std::make_unique<Gauge>();
  Gauge* out = ins.gauge.get();
  instruments_.push_back(std::move(ins));
  return out;
}

HistogramCell* Registry::histogram(std::string name, Labels labels,
                                   std::string help) {
  std::lock_guard<std::mutex> lk(mu_);
  Instrument ins;
  ins.name = std::move(name);
  ins.labels = std::move(labels);
  ins.kind = Snapshot::Kind::kHistogram;
  ins.help = std::move(help);
  ins.hist = std::make_unique<HistogramCell>();
  HistogramCell* out = ins.hist.get();
  instruments_.push_back(std::move(ins));
  return out;
}

void Registry::counter_fn(std::string name, Labels labels,
                          std::function<std::uint64_t()> fn, std::string help) {
  std::lock_guard<std::mutex> lk(mu_);
  Instrument ins;
  ins.name = std::move(name);
  ins.labels = std::move(labels);
  ins.kind = Snapshot::Kind::kCounter;
  ins.help = std::move(help);
  ins.counter_fn = std::move(fn);
  instruments_.push_back(std::move(ins));
}

void Registry::gauge_fn(std::string name, Labels labels,
                        std::function<std::int64_t()> fn, std::string help) {
  std::lock_guard<std::mutex> lk(mu_);
  Instrument ins;
  ins.name = std::move(name);
  ins.labels = std::move(labels);
  ins.kind = Snapshot::Kind::kGauge;
  ins.help = std::move(help);
  ins.gauge_fn = std::move(fn);
  instruments_.push_back(std::move(ins));
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  Snapshot snap;
  for (const auto& ins : instruments_) {
    // Merge into an existing sample with the same (name, labels) — this is
    // how per-thread shards (and split counters like the per-shard transport
    // stats) fold into one series.
    Snapshot::Sample* target = nullptr;
    for (auto& s : snap.samples) {
      if (s.name == ins.name && s.labels == ins.labels) {
        target = &s;
        break;
      }
    }
    if (target == nullptr) {
      snap.samples.emplace_back();
      target = &snap.samples.back();
      target->name = ins.name;
      target->labels = ins.labels;
      target->kind = ins.kind;
      target->help = ins.help;
    }
    switch (ins.kind) {
      case Snapshot::Kind::kCounter:
        target->value += static_cast<double>(
            ins.counter ? ins.counter->value() : ins.counter_fn());
        break;
      case Snapshot::Kind::kGauge:
        target->value += static_cast<double>(ins.gauge ? ins.gauge->value()
                                                       : ins.gauge_fn());
        break;
      case Snapshot::Kind::kHistogram:
        target->hist.merge(ins.hist->snapshot());
        break;
    }
  }
  return snap;
}

std::string render_prometheus(const Snapshot& snap) {
  std::string out;
  out.reserve(snap.samples.size() * 96);
  std::string last_typed;  // emit HELP/TYPE once per metric family
  for (const auto& s : snap.samples) {
    if (s.name != last_typed) {
      last_typed = s.name;
      if (!s.help.empty()) {
        out += "# HELP " + s.name + " " + s.help + "\n";
      }
      out += "# TYPE " + s.name + " ";
      switch (s.kind) {
        case Snapshot::Kind::kCounter: out += "counter"; break;
        case Snapshot::Kind::kGauge: out += "gauge"; break;
        case Snapshot::Kind::kHistogram: out += "histogram"; break;
      }
      out += "\n";
    }
    if (s.kind == Snapshot::Kind::kHistogram) {
      for (const std::int64_t bound : kLeBoundsUs) {
        out += s.name + "_bucket" +
               render_labels_with(s.labels, "le", fmt_u64(bound)) + " " +
               fmt_u64(s.hist.count_le(bound)) + "\n";
      }
      out += s.name + "_bucket" + render_labels_with(s.labels, "le", "+Inf") +
             " " + fmt_u64(s.hist.count()) + "\n";
      out += s.name + "_sum" + render_labels(s.labels) + " " +
             fmt_value(s.hist.sum()) + "\n";
      out += s.name + "_count" + render_labels(s.labels) + " " +
             fmt_u64(s.hist.count()) + "\n";
    } else {
      out += s.name + render_labels(s.labels) + " " + fmt_value(s.value) + "\n";
    }
  }
  return out;
}

std::string render_human(const Snapshot& snap) {
  std::string out;
  out.reserve(snap.samples.size() * 32);
  for (const auto& s : snap.samples) {
    std::string name = s.name;
    if (name.rfind("pocc_", 0) == 0) name.erase(0, 5);
    if (s.kind == Snapshot::Kind::kCounter && name.size() > 6 &&
        name.compare(name.size() - 6, 6, "_total") == 0) {
      name.erase(name.size() - 6);
    }
    std::string tag;
    if (!s.labels.empty()) {
      tag = "{";
      bool first = true;
      for (const auto& [k, v] : s.labels) {
        if (!first) tag += ",";
        first = false;
        tag += k + "=" + v;
      }
      tag += "}";
    }
    if (!out.empty()) out += " ";
    if (s.kind == Snapshot::Kind::kHistogram) {
      out += name + tag + "_count=" + fmt_u64(s.hist.count());
      out += " " + name + tag + "_p50=" + fmt_u64(static_cast<std::uint64_t>(
                                              s.hist.percentile(50)));
      out += " " + name + tag + "_p99=" + fmt_u64(static_cast<std::uint64_t>(
                                              s.hist.percentile(99)));
      out += " " + name + tag + "_p999=" + fmt_u64(static_cast<std::uint64_t>(
                                               s.hist.percentile(99.9)));
    } else {
      out += name + tag + "=" + fmt_value(s.value);
    }
  }
  return out;
}

}  // namespace pocc::stats
