#include "stats/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>

namespace pocc::stats {

std::uint32_t Histogram::bucket_of(std::uint64_t v) {
  if (v < kSub) return static_cast<std::uint32_t>(v);
  const auto msb = static_cast<std::uint32_t>(63 - std::countl_zero(v));
  const std::uint32_t octave = msb - (kSubBits - 1);
  const auto sub =
      static_cast<std::uint32_t>((v >> (msb - kSubBits)) & (kSub - 1));
  const std::uint32_t b = octave * kSub + sub;
  return std::min(b, kBuckets - 1);
}

std::int64_t Histogram::bucket_mid(std::uint32_t b) {
  if (b < kSub) return b;
  const std::uint32_t octave = b / kSub;
  const std::uint32_t sub = b % kSub;
  const std::uint32_t msb = octave + kSubBits - 1;
  const std::uint64_t base = (1ULL << msb) | (static_cast<std::uint64_t>(sub)
                                              << (msb - kSubBits));
  const std::uint64_t width = 1ULL << (msb - kSubBits);
  return static_cast<std::int64_t>(base + width / 2);
}

void Histogram::record(std::int64_t value) { record_n(value, 1); }

void Histogram::record_n(std::int64_t value, std::uint64_t n) {
  if (n == 0) return;
  const std::int64_t clamped = std::max<std::int64_t>(value, 0);
  if (count_ == 0) {
    min_ = clamped;
    max_ = clamped;
  } else {
    min_ = std::min(min_, clamped);
    max_ = std::max(max_, clamped);
  }
  buckets_[bucket_of(static_cast<std::uint64_t>(clamped))] += n;
  count_ += n;
  sum_ += static_cast<double>(clamped) * static_cast<double>(n);
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

std::int64_t Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::uint64_t>(
      p / 100.0 * static_cast<double>(count_ - 1) + 0.5);
  std::uint64_t seen = 0;
  for (std::uint32_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen > rank) {
      return std::clamp(bucket_mid(b), min_, max_);
    }
  }
  return max_;
}

std::uint64_t Histogram::count_le(std::int64_t bound) const {
  if (bound < 0) return 0;
  std::uint64_t seen = 0;
  for (std::uint32_t b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    if (bucket_mid(b) > bound) break;  // bucket_mid is monotone in b
    seen += buckets_[b];
  }
  return seen;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (std::uint32_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0;
  max_ = 0;
}

std::string latency_json_fields(const std::string& prefix,
                                const Histogram& h) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "\"%s_p50_us\":%" PRId64 ",\"%s_p99_us\":%" PRId64
                ",\"%s_p999_us\":%" PRId64,
                prefix.c_str(), h.percentile(50), prefix.c_str(),
                h.percentile(99), prefix.c_str(), h.percentile(99.9));
  return buf;
}

}  // namespace pocc::stats
