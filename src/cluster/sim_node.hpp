// One simulated server: protocol engine + CPU queue + physical clock,
// implementing the engine's Context against the discrete-event simulator.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "clock/physical_clock.hpp"
#include "common/config.hpp"
#include "net/sim_network.hpp"
#include "server/context.hpp"
#include "server/replica_base.hpp"
#include "sim/cpu_queue.hpp"
#include "sim/simulator.hpp"
#include "wal/memory_log.hpp"

namespace pocc::cluster {

class SimNode final : public net::Endpoint, public server::Context {
 public:
  /// `engine_factory` builds the protocol engine against this node's Context.
  SimNode(NodeId self, const ServiceConfig& service,
          const ClockConfig& clock_cfg, sim::Simulator& simulator,
          net::SimNetwork& network, Rng& seeder);

  void install_engine(std::unique_ptr<server::ReplicaBase> engine);
  void start();

  /// Builds a fresh protocol engine against a node's Context (same signature
  /// as rt::NodeGroup::EngineFactory — one factory serves both substrates).
  using EngineFactory = std::function<std::unique_ptr<server::ReplicaBase>(
      NodeId, server::Context&)>;

  /// Switch this node from the idealized durable-store crash model to WAL
  /// mode: the engine logs every durable mutation to an in-memory WAL
  /// (wal::MemoryLog — the sim stand-in for PartitionWal, lossless and
  /// filesystem-free so seed replay stays bit-identical), and restart()
  /// discards the engine object entirely, rebuilding it through `rebuild`
  /// and replaying the log through restore_version/restore_vv — the same
  /// restore calls the real recovery path drives from disk. Call before the
  /// engine starts.
  void enable_wal_mode(EngineFactory rebuild);

  // --- fault injection: fail-stop crash with durable storage ---
  /// Kill the process: pending CPU jobs and timers become no-ops (epoch
  /// guard) and RAM state is lost on restart. The engine object (modelling
  /// the durable store + checkpointed metadata) survives. While down,
  /// incoming client requests are dropped (connection refused — the client
  /// library reconnects), while server-to-server traffic is backlogged in
  /// arrival order: those streams ride the peers' durable replication logs
  /// (paper §II-C lossless FIFO channels), so a process crash delays them
  /// but never tears a hole into them. Rebuilding replica state from a
  /// peer's *store* instead would be unsound: each DC garbage-collects with
  /// its own stability floor, so a peer's store may lack exactly the
  /// versions this DC's snapshots still need.
  void crash();
  /// Reboot. Idealized mode: clears the engine's volatile state
  /// (ReplicaBase::recover). WAL mode: rebuilds a fresh engine and replays
  /// the in-memory WAL through the restore_* calls (see enable_wal_mode).
  /// Either way timers are then re-armed and the backlogged peer streams
  /// replayed in FIFO order through the normal delivery path. Returns the
  /// number of replicated versions recovered from peers this way.
  std::uint64_t restart();
  [[nodiscard]] bool down() const { return down_; }

  [[nodiscard]] NodeId id() const { return self_; }
  server::ReplicaBase& engine() { return *engine_; }
  [[nodiscard]] const server::ReplicaBase& engine() const { return *engine_; }
  sim::CpuQueue& cpu() { return cpu_; }
  PhysicalClock& clock() { return clock_; }

  // --- net::Endpoint ---
  void deliver(NodeId from, proto::Message m) override;

  // --- server::Context ---
  Timestamp clock_now() override { return clock_.read(sim_.now()); }
  Timestamp clock_peek() override { return clock_.peek(sim_.now()); }
  Timestamp time() override { return sim_.now(); }
  void send(NodeId to, proto::Message m) override {
    net_.send(self_, to, std::move(m));
  }
  void reply(ClientId client, proto::Message m) override {
    net_.send_to_client(self_, client, std::move(m));
  }
  void set_timer(Duration delay, std::uint64_t timer_id) override;
  server::DurabilityLog* durability() override { return wal_log_.get(); }

 private:
  /// A delivered message awaiting its CPU job. `from` and the arrival
  /// sequence are kept so a crash can sweep unprocessed messages into the
  /// crash backlog in arrival order (a dead job must not lose server
  /// traffic: the peer's durable log still holds it).
  struct ParkedMsg {
    proto::Message msg;
    NodeId from;
    std::uint64_t seq = 0;
    bool live = false;
  };

  /// Park a delivered message until its CPU job runs; returns its pool slot.
  std::uint32_t park_message(NodeId from, proto::Message m);
  /// Take the parked message back out, recycling the slot.
  proto::Message unpark_message(std::uint32_t idx);

  NodeId self_;
  sim::Simulator& sim_;
  net::SimNetwork& net_;
  sim::CpuQueue cpu_;
  PhysicalClock clock_;
  std::unique_ptr<server::ReplicaBase> engine_;
  /// WAL mode (enable_wal_mode): the in-memory WAL and the factory restart()
  /// rebuilds the engine with. Null in idealized mode.
  std::unique_ptr<wal::MemoryLog> wal_log_;
  EngineFactory rebuild_;
  bool down_ = false;
  /// Bumped on crash: CPU jobs and timer events capture the epoch they were
  /// created under and turn into no-ops when it no longer matches.
  std::uint32_t epoch_ = 0;
  /// Server-to-server traffic that arrived while down (peer replication
  /// logs), replayed in arrival order on restart.
  std::deque<std::pair<NodeId, proto::Message>> crash_backlog_;

  // Pool for messages awaiting CPU dispatch: the queued job captures a u32
  // index instead of the ~160-byte message, keeping CpuQueue jobs slim.
  // (std::deque: stable addresses, chunked growth.)
  std::deque<ParkedMsg> parked_messages_;
  std::vector<std::uint32_t> parked_free_;
  std::uint64_t next_arrival_seq_ = 0;
};

}  // namespace pocc::cluster
