// One simulated server: protocol engine + CPU queue + physical clock,
// implementing the engine's Context against the discrete-event simulator.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "clock/physical_clock.hpp"
#include "common/config.hpp"
#include "net/sim_network.hpp"
#include "server/context.hpp"
#include "server/replica_base.hpp"
#include "sim/cpu_queue.hpp"
#include "sim/simulator.hpp"

namespace pocc::cluster {

class SimNode final : public net::Endpoint, public server::Context {
 public:
  /// `engine_factory` builds the protocol engine against this node's Context.
  SimNode(NodeId self, const ServiceConfig& service,
          const ClockConfig& clock_cfg, sim::Simulator& simulator,
          net::SimNetwork& network, Rng& seeder);

  void install_engine(std::unique_ptr<server::ReplicaBase> engine);
  void start();

  [[nodiscard]] NodeId id() const { return self_; }
  server::ReplicaBase& engine() { return *engine_; }
  [[nodiscard]] const server::ReplicaBase& engine() const { return *engine_; }
  sim::CpuQueue& cpu() { return cpu_; }
  PhysicalClock& clock() { return clock_; }

  // --- net::Endpoint ---
  void deliver(NodeId from, proto::Message m) override;

  // --- server::Context ---
  Timestamp clock_now() override { return clock_.read(sim_.now()); }
  Timestamp clock_peek() override { return clock_.peek(sim_.now()); }
  Timestamp time() override { return sim_.now(); }
  void send(NodeId to, proto::Message m) override {
    net_.send(self_, to, std::move(m));
  }
  void reply(ClientId client, proto::Message m) override {
    net_.send_to_client(self_, client, std::move(m));
  }
  void set_timer(Duration delay, std::uint64_t timer_id) override;

 private:
  /// Park a delivered message until its CPU job runs; returns its pool slot.
  std::uint32_t park_message(proto::Message m);
  /// Take the parked message back out, recycling the slot.
  proto::Message unpark_message(std::uint32_t idx);

  NodeId self_;
  sim::Simulator& sim_;
  net::SimNetwork& net_;
  sim::CpuQueue cpu_;
  PhysicalClock clock_;
  std::unique_ptr<server::ReplicaBase> engine_;

  // Pool for messages awaiting CPU dispatch: the queued job captures a u32
  // index instead of the ~160-byte message, keeping CpuQueue jobs slim.
  // (std::deque: stable addresses, chunked growth.)
  std::deque<proto::Message> parked_messages_;
  std::vector<std::uint32_t> parked_free_;
};

}  // namespace pocc::cluster
