#include "cluster/sim_client.hpp"

#include <utility>

#include "cluster/sim_cluster.hpp"
#include "common/assert.hpp"
#include "store/key_space.hpp"

namespace pocc::cluster {

namespace {
/// Delay before a session re-connects after a SessionClosed (models the
/// client library re-establishing a session, §III-B).
constexpr Duration kReconnectDelayUs = 1'000;
}  // namespace

SimClient::SimClient(ClientId id, DcId dc, NodeId home, Mode mode,
                     SimCluster& cluster, Rng rng, bool snapshot_rdv)
    : engine_(id, dc, cluster.config().topology.num_dcs, snapshot_rdv),
      home_(home),
      mode_(mode),
      cluster_(cluster),
      rng_(rng) {}

void SimClient::start_workload(const workload::WorkloadConfig& wl) {
  POCC_ASSERT(mode_ == Mode::kWorkload);
  generator_ = std::make_unique<workload::Generator>(
      wl, cluster_.config().topology.partitions_per_dc, rng_.next());
  // Desynchronize client phases across the cluster.
  const Duration phase = wl.think_time_us > 0
                             ? static_cast<Duration>(rng_.uniform(
                                   static_cast<std::uint64_t>(wl.think_time_us)))
                             : 0;
  cluster_.simulator().schedule(phase, [this] { issue_next_workload_op(); });
}

NodeId SimClient::target_for_key(KeyId key) const {
  const auto& topo = cluster_.config().topology;
  return NodeId{engine_.dc(),
                store::KeySpace::global().partition(
                    key, topo.partitions_per_dc, topo.partition_scheme)};
}

void SimClient::issue_next_workload_op() {
  if (stopped_) return;
  current_op_ = generator_->next();
  issue_op(current_op_);
}

void SimClient::issue_op(const workload::Op& op) {
  POCC_ASSERT(!awaiting_reply_);
  awaiting_reply_ = true;
  ++op_seq_;
  issued_at_ = cluster_.simulator().now();
  if (mode_ == Mode::kWorkload && generator_ != nullptr) {
    const Duration timeout = generator_->config().op_timeout_us;
    if (timeout > 0) {
      cluster_.simulator().schedule(
          timeout, [this, seq = op_seq_] { on_op_timeout(seq); });
    }
  }
  auto* checker = cluster_.checker();
  switch (op.type) {
    case workload::OpType::kGet: {
      proto::GetReq req = engine_.make_get(op.keys.front());
      req.op_id = op_seq_;
      if (checker != nullptr) checker->on_get_issued(id(), req);
      cluster_.network().client_send(id(), target_for_key(op.keys.front()),
                                     std::move(req));
      break;
    }
    case workload::OpType::kPut: {
      proto::PutReq req = engine_.make_put(op.keys.front(), op.value);
      req.op_id = op_seq_;
      if (checker != nullptr) checker->on_put_issued(id(), req);
      cluster_.network().client_send(id(), target_for_key(op.keys.front()),
                                     std::move(req));
      break;
    }
    case workload::OpType::kRoTx: {
      proto::RoTxReq req = engine_.make_ro_tx(op.keys);
      req.op_id = op_seq_;
      if (checker != nullptr) checker->on_tx_issued(id(), req);
      // The collocated server coordinates the transaction (§II-C).
      cluster_.network().client_send(id(), home_, std::move(req));
      break;
    }
  }
}

void SimClient::record_latency(workload::OpType type, Duration latency) {
  if (!cluster_.measuring()) return;
  switch (type) {
    case workload::OpType::kGet:
      ++ops_.gets;
      ops_.get_latency_us.record(latency);
      break;
    case workload::OpType::kPut:
      ++ops_.puts;
      ops_.put_latency_us.record(latency);
      break;
    case workload::OpType::kRoTx:
      ++ops_.ro_txs;
      ops_.tx_latency_us.record(latency);
      break;
  }
  ++completed_;
}

void SimClient::deliver(NodeId from, proto::Message m) {
  (void)from;
  if (std::holds_alternative<proto::SessionClosed>(m)) {
    handle_session_closed(std::get<proto::SessionClosed>(m));
    return;
  }
  if (!awaiting_reply_) return;  // stale reply from an aborted session
  handle_reply(std::move(m));
}

void SimClient::handle_session_closed(const proto::SessionClosed& msg) {
  POCC_ASSERT(msg.client == id());
  ++fallbacks_;
  const bool was_awaiting = awaiting_reply_;
  awaiting_reply_ = false;
  // §III-B: re-initialize the session; the new session runs the pessimistic
  // protocol and may not observe items read/written by the old session.
  engine_.reinitialize_pessimistic();
  if (auto* checker = cluster_.checker()) checker->on_session_reset(id());
  if (mode_ == Mode::kManual) {
    manual_session_closed_ = true;
    return;
  }
  // A SessionClosed can arrive for an operation this client already
  // abandoned (fault injection: a stale transaction replayed from a crashed
  // node's backlog aborts long after the op timed out). The session reset
  // above still applies, but there is no in-flight op to retry — scheduling
  // one would race the closed loop's own next-op event.
  if (stopped_ || !was_awaiting) return;
  cluster_.simulator().schedule(kReconnectDelayUs, [this] {
    if (!awaiting_reply_) issue_op(current_op_);  // retry under the new session
  });
}

void SimClient::on_op_timeout(std::uint64_t seq) {
  if (stopped_ || !awaiting_reply_ || seq != op_seq_) return;
  // No reply after the give-up deadline: the request (or its answer) died
  // with a crashed server. The client library behaves as after a
  // SessionClosed — re-initialize the session and retry the operation under
  // it. A late reply from the old attempt is absorbed like any other reply
  // (the session reset already forgot the old causal past, so it stays
  // consistent); the superseded attempt's answer is then dropped as stale.
  ++fallbacks_;
  awaiting_reply_ = false;
  engine_.reinitialize_pessimistic();
  if (auto* checker = cluster_.checker()) checker->on_session_reset(id());
  cluster_.simulator().schedule(kReconnectDelayUs, [this] {
    if (!awaiting_reply_ && !stopped_) issue_op(current_op_);
  });
}

void SimClient::handle_reply(proto::Message m) {
  const Duration latency = cluster_.simulator().now() - issued_at_;
  auto* checker = cluster_.checker();
  workload::OpType type;
  // Replies echo the request's op_id; anything else answers an operation
  // this session already abandoned (timed out during a fault window and
  // retried under a fresh session) — the RPC layer discards it.
  if (std::holds_alternative<proto::GetReply>(m)) {
    const auto& reply = std::get<proto::GetReply>(m);
    if (reply.client != id() || reply.op_id != op_seq_) return;
    if (checker != nullptr) checker->on_get_reply(id(), reply);
    engine_.absorb_get(reply);
    type = workload::OpType::kGet;
  } else if (std::holds_alternative<proto::PutReply>(m)) {
    const auto& reply = std::get<proto::PutReply>(m);
    if (reply.client != id() || reply.op_id != op_seq_) return;
    if (checker != nullptr) checker->on_put_reply(id(), reply);
    engine_.absorb_put(reply);
    type = workload::OpType::kPut;
  } else if (std::holds_alternative<proto::RoTxReply>(m)) {
    const auto& reply = std::get<proto::RoTxReply>(m);
    if (reply.client != id() || reply.op_id != op_seq_) return;
    if (checker != nullptr) checker->on_tx_reply(id(), reply);
    engine_.absorb_ro_tx(reply);
    type = workload::OpType::kRoTx;
  } else {
    POCC_ASSERT_MSG(false, "client received unexpected message type");
    return;
  }
  awaiting_reply_ = false;
  record_latency(type, latency);

  // Session promotion (§III-B): once the partition healed, the session can be
  // promoted back to the optimistic protocol. The client library probes the
  // connectivity state; promotion keeps the session's dependency vectors.
  if (engine_.pessimistic() && !cluster_.has_active_partitions()) {
    engine_.promote_optimistic();
    if (checker != nullptr) checker->on_session_promoted(id());
  }

  if (mode_ == Mode::kManual) {
    manual_reply_ = std::move(m);
    return;
  }
  if (stopped_) return;
  cluster_.simulator().schedule(generator_->think_time(),
                                [this] { issue_next_workload_op(); });
}

SimClient::GetResult SimClient::get(const std::string& key,
                                    Duration max_wait) {
  POCC_ASSERT(mode_ == Mode::kManual);
  manual_reply_.reset();
  manual_session_closed_ = false;
  workload::Op op;
  op.type = workload::OpType::kGet;
  op.keys.push_back(store::intern_key(key));
  issue_op(op);
  cluster_.pump_until(
      [this] { return manual_reply_.has_value() || manual_session_closed_; },
      max_wait);
  GetResult r;
  if (!manual_reply_.has_value()) {
    awaiting_reply_ = false;
    return r;  // timed out or session closed
  }
  const auto& reply = std::get<proto::GetReply>(*manual_reply_);
  r.ok = true;
  r.found = reply.item.found;
  r.value = reply.item.value;
  r.ut = reply.item.ut;
  r.sr = reply.item.sr;
  r.blocked_us = reply.blocked_us;
  return r;
}

SimClient::PutResult SimClient::put(const std::string& key,
                                    const std::string& value,
                                    Duration max_wait) {
  POCC_ASSERT(mode_ == Mode::kManual);
  manual_reply_.reset();
  manual_session_closed_ = false;
  workload::Op op;
  op.type = workload::OpType::kPut;
  op.keys.push_back(store::intern_key(key));
  op.value = value;
  issue_op(op);
  cluster_.pump_until(
      [this] { return manual_reply_.has_value() || manual_session_closed_; },
      max_wait);
  PutResult r;
  if (!manual_reply_.has_value()) {
    awaiting_reply_ = false;
    return r;
  }
  const auto& reply = std::get<proto::PutReply>(*manual_reply_);
  r.ok = true;
  r.ut = reply.ut;
  r.blocked_us = reply.blocked_us;
  return r;
}

SimClient::TxResult SimClient::ro_tx(const std::vector<std::string>& keys,
                                     Duration max_wait) {
  POCC_ASSERT(mode_ == Mode::kManual);
  manual_reply_.reset();
  manual_session_closed_ = false;
  workload::Op op;
  op.type = workload::OpType::kRoTx;
  op.keys.reserve(keys.size());
  for (const std::string& k : keys) op.keys.push_back(store::intern_key(k));
  issue_op(op);
  cluster_.pump_until(
      [this] { return manual_reply_.has_value() || manual_session_closed_; },
      max_wait);
  TxResult r;
  if (!manual_reply_.has_value()) {
    awaiting_reply_ = false;
    return r;
  }
  auto& reply = std::get<proto::RoTxReply>(*manual_reply_);
  r.ok = true;
  r.items = std::move(reply.items);
  r.blocked_us = reply.blocked_us;
  return r;
}

}  // namespace pocc::cluster
