// Simulated client session: either a closed-loop workload driver (the paper's
// benchmark clients, §V-A: collocated with a server, think time between
// operations) or a manually driven client with blocking calls (tests and
// examples).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "client/client_engine.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/sim_network.hpp"
#include "stats/metrics.hpp"
#include "workload/workload.hpp"

namespace pocc::cluster {

class SimCluster;

class SimClient final : public net::Endpoint {
 public:
  enum class Mode { kWorkload, kManual };

  SimClient(ClientId id, DcId dc, NodeId home, Mode mode, SimCluster& cluster,
            Rng rng, bool snapshot_rdv);

  /// Workload mode: install the generator and schedule the first operation.
  void start_workload(const workload::WorkloadConfig& wl);

  /// Stop issuing new operations after the current one completes.
  void stop() { stopped_ = true; }

  // ----- manual (blocking) operations -----
  struct GetResult {
    bool ok = false;       // reply received (false: timed out / session closed)
    bool found = false;    // an explicit version exists
    std::string value;
    Timestamp ut = 0;
    DcId sr = 0;
    Duration blocked_us = 0;
  };
  struct PutResult {
    bool ok = false;
    Timestamp ut = 0;
    Duration blocked_us = 0;
  };
  struct TxResult {
    bool ok = false;
    std::vector<proto::ReadItem> items;
    Duration blocked_us = 0;
  };

  // Manual operations intern their keys at this boundary; everything below
  // carries KeyIds.
  GetResult get(const std::string& key, Duration max_wait = 600'000'000);
  PutResult put(const std::string& key, const std::string& value,
                Duration max_wait = 600'000'000);
  TxResult ro_tx(const std::vector<std::string>& keys,
                 Duration max_wait = 600'000'000);

  // ----- observers -----
  [[nodiscard]] ClientId id() const { return engine_.id(); }
  [[nodiscard]] DcId dc() const { return engine_.dc(); }
  client::ClientEngine& engine() { return engine_; }
  [[nodiscard]] const stats::OpStats& op_stats() const { return ops_; }
  [[nodiscard]] std::uint64_t completed_ops() const { return completed_; }
  [[nodiscard]] std::uint64_t session_fallbacks() const { return fallbacks_; }
  void reset_stats() {
    ops_.reset();
    completed_ = 0;
  }

  // --- net::Endpoint ---
  void deliver(NodeId from, proto::Message m) override;

 private:
  void issue_next_workload_op();
  void issue_op(const workload::Op& op);
  void handle_reply(proto::Message m);
  void handle_session_closed(const proto::SessionClosed& msg);
  /// Watchdog for workload ops under fault injection: fires
  /// WorkloadConfig::op_timeout_us after issue; a still-unanswered operation
  /// is presumed lost (crashed server), the session re-initializes and the
  /// operation is retried.
  void on_op_timeout(std::uint64_t seq);
  void record_latency(workload::OpType type, Duration latency);
  [[nodiscard]] NodeId target_for_key(KeyId key) const;

  client::ClientEngine engine_;
  NodeId home_;
  Mode mode_;
  SimCluster& cluster_;
  Rng rng_;
  std::unique_ptr<workload::Generator> generator_;

  bool stopped_ = false;
  bool awaiting_reply_ = false;
  workload::Op current_op_;
  Timestamp issued_at_ = 0;
  std::uint64_t op_seq_ = 0;  // distinguishes watchdog targets across retries

  // Manual-mode reply capture.
  std::optional<proto::Message> manual_reply_;
  bool manual_session_closed_ = false;

  stats::OpStats ops_;
  std::uint64_t completed_ = 0;
  std::uint64_t fallbacks_ = 0;
};

}  // namespace pocc::cluster
