#include "cluster/sim_node.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace pocc::cluster {

SimNode::SimNode(NodeId self, const ServiceConfig& service,
                 const ClockConfig& clock_cfg, sim::Simulator& simulator,
                 net::SimNetwork& network, Rng& seeder)
    : self_(self),
      sim_(simulator),
      net_(network),
      cpu_(simulator, service.cores, service.background_share_den),
      clock_(clock_cfg, seeder) {
  net_.register_node(self_, this);
}

void SimNode::install_engine(std::unique_ptr<server::ReplicaBase> engine) {
  POCC_ASSERT(engine_ == nullptr);
  engine_ = std::move(engine);
}

void SimNode::enable_wal_mode(EngineFactory rebuild) {
  POCC_ASSERT_MSG(rebuild != nullptr, "WAL mode needs an engine factory");
  POCC_ASSERT_MSG(wal_log_ == nullptr, "WAL mode enabled twice");
  rebuild_ = std::move(rebuild);
  wal_log_ = std::make_unique<wal::MemoryLog>();
}

namespace {
/// Client-facing traffic (requests and the RO-TX slice path) takes the
/// foreground CPU class; replication, heartbeats, stabilization and GC take
/// the background class and lag under load like a real server's maintenance
/// path (see sim/cpu_queue.hpp).
bool is_foreground(const proto::Message& m) {
  switch (m.index()) {
    case 0:   // GetReq
    case 1:   // PutReq
    case 2:   // RoTxReq
    case 9:   // SliceReq
    case 10:  // SliceReply
      return true;
    default:
      return false;
  }
}

/// Client-originated requests die with a crashed process (the connection is
/// refused; the client library reconnects). Everything else is
/// server-to-server stream traffic, which survives crashes in the peers'
/// durable logs (see SimNode::crash).
bool is_client_request(const proto::Message& m) {
  return std::holds_alternative<proto::GetReq>(m) ||
         std::holds_alternative<proto::PutReq>(m) ||
         std::holds_alternative<proto::RoTxReq>(m);
}
}  // namespace

void SimNode::start() {
  POCC_ASSERT(engine_ != nullptr);
  engine_->start();
}

void SimNode::crash() {
  POCC_ASSERT_MSG(!down_, "node crashed twice without restart");
  down_ = true;
  // Invalidate every pending CPU job and timer: the process they belonged to
  // is gone. Parked message slots are recycled when the dead jobs drain.
  ++epoch_;
  // Sweep messages that were delivered but not yet processed (their CPU jobs
  // just died) into the crash backlog, in arrival order: server streams ride
  // the peers' durable logs, so an unprocessed message is retransmitted, not
  // lost. Without this sweep a crash arriving shortly after a restart would
  // destroy the previous backlog replay while it was still queued — found by
  // the cluster-fuzz harness (double-crash plans). Client requests die with
  // the connection, as on any crash.
  std::vector<std::uint32_t> live;
  for (std::uint32_t i = 0; i < parked_messages_.size(); ++i) {
    if (parked_messages_[i].live) live.push_back(i);
  }
  std::sort(live.begin(), live.end(), [this](std::uint32_t a, std::uint32_t b) {
    return parked_messages_[a].seq < parked_messages_[b].seq;
  });
  for (const std::uint32_t idx : live) {
    ParkedMsg& p = parked_messages_[idx];
    p.live = false;  // the dead job's unpark recycles the slot later
    if (is_client_request(p.msg)) {
      net_.count_dropped();
      continue;
    }
    crash_backlog_.emplace_back(p.from, std::move(p.msg));
  }
}

std::uint64_t SimNode::restart() {
  POCC_ASSERT_MSG(down_, "restart of a node that is up");
  down_ = false;
  if (wal_log_ != nullptr) {
    // WAL mode: the process image — engine object included — is gone.
    // Rebuild the engine from scratch and replay the logged mutations
    // through the same restore calls the real disk recovery path drives
    // (TcpNodeHost + PartitionWal::replay). Restored state equals the
    // pre-crash durable state: MemoryLog is lossless, so the restored VV
    // matches the pre-crash VV and the FIFO backlog replayed below still
    // lands in timestamp order (no fifo_tolerant_ needed).
    engine_ = rebuild_(self_, *this);
    wal_log_->replay(
        [this](const store::Version& v) { engine_->restore_version(v); },
        [this](const VersionVector& vv) { engine_->restore_vv(vv); });
  } else {
    // Idealized mode: RAM is gone; the engine object models the durable
    // store + checkpointed metadata and survives.
    engine_->recover();
  }
  // Timers armed before the crash carry the old epoch and are dead; re-arm.
  engine_->start();
  // Rebuild from peers: replay the backlogged replication/maintenance
  // streams (held by the peers' durable logs while this process was dead) in
  // arrival order, which equals per-channel FIFO send order. The replay is
  // synchronous — one atomic recovery burst inside the restart event — so no
  // later fault can land between "restarted" and "caught up" and tear the
  // stream (the CPU-queue path would leave exactly that window).
  std::uint64_t recovered = 0;
  std::deque<std::pair<NodeId, proto::Message>> backlog;
  backlog.swap(crash_backlog_);
  for (auto& [from, msg] : backlog) {
    if (std::holds_alternative<proto::Replicate>(msg)) ++recovered;
    engine_->handle_message(from, std::move(msg));
  }
  return recovered;
}

std::uint32_t SimNode::park_message(NodeId from, proto::Message m) {
  std::uint32_t idx;
  if (!parked_free_.empty()) {
    idx = parked_free_.back();
    parked_free_.pop_back();
    parked_messages_[idx].msg = std::move(m);
  } else {
    parked_messages_.push_back(ParkedMsg{std::move(m), from, 0, false});
    idx = static_cast<std::uint32_t>(parked_messages_.size() - 1);
  }
  ParkedMsg& p = parked_messages_[idx];
  p.from = from;
  p.seq = next_arrival_seq_++;
  p.live = true;
  return idx;
}

proto::Message SimNode::unpark_message(std::uint32_t idx) {
  ParkedMsg& p = parked_messages_[idx];
  proto::Message m = std::move(p.msg);
  p.live = false;
  parked_free_.push_back(idx);
  return m;
}

void SimNode::deliver(NodeId from, proto::Message m) {
  if (down_) {
    // Client requests bounce (connection refused; the client library
    // reconnects under a fresh session). Server-to-server streams are
    // lossless across the crash: the peer's durable replication log holds
    // the traffic until this process is back (see crash()).
    if (is_client_request(m)) {
      net_.count_dropped();
      return;
    }
    crash_backlog_.emplace_back(from, std::move(m));
    return;
  }
  // Message handling contends for this node's CPU: the handler runs when a
  // core picks the job up, and the job reports the CPU time it consumed.
  // The message is parked (moved, not copied) in this node's pool; the job
  // captures only its index, staying within the slim CPU-job inline budget.
  const bool fg = is_foreground(m);
  const std::uint32_t idx = park_message(from, std::move(m));
  auto job = [this, from, idx, ep = epoch_]() -> Duration {
    proto::Message msg = unpark_message(idx);  // always recycle the slot
    if (ep != epoch_) return 0;  // job outlived its process (crash)
    return engine_->handle_message(from, std::move(msg));
  };
  static_assert(sim::CpuQueue::Job::stores_inline<decltype(job)>,
                "message-handler job no longer fits the CPU queue's inline "
                "job storage");
  if (fg) {
    cpu_.submit(std::move(job));
  } else {
    cpu_.submit_background(std::move(job));
  }
}

void SimNode::set_timer(Duration delay, std::uint64_t timer_id) {
  // Timers run foreground: heartbeat/stabilization *sending* is cheap and
  // keeps flowing on a loaded server (dedicated sender threads in real
  // systems); it is the receive/apply path that lags under load.
  sim_.schedule(delay, [this, timer_id, ep = epoch_] {
    if (ep != epoch_) return;  // timer armed by a crashed incarnation
    cpu_.submit([this, timer_id, ep]() -> Duration {
      if (ep != epoch_) return 0;
      return engine_->on_timer(timer_id);
    });
  });
}

}  // namespace pocc::cluster
