#include "cluster/sim_node.hpp"

#include <utility>

#include "common/assert.hpp"

namespace pocc::cluster {

SimNode::SimNode(NodeId self, const ServiceConfig& service,
                 const ClockConfig& clock_cfg, sim::Simulator& simulator,
                 net::SimNetwork& network, Rng& seeder)
    : self_(self),
      sim_(simulator),
      net_(network),
      cpu_(simulator, service.cores, service.background_share_den),
      clock_(clock_cfg, seeder) {
  net_.register_node(self_, this);
}

void SimNode::install_engine(std::unique_ptr<server::ReplicaBase> engine) {
  POCC_ASSERT(engine_ == nullptr);
  engine_ = std::move(engine);
}

void SimNode::start() {
  POCC_ASSERT(engine_ != nullptr);
  engine_->start();
}

namespace {
/// Client-facing traffic (requests and the RO-TX slice path) takes the
/// foreground CPU class; replication, heartbeats, stabilization and GC take
/// the background class and lag under load like a real server's maintenance
/// path (see sim/cpu_queue.hpp).
bool is_foreground(const proto::Message& m) {
  switch (m.index()) {
    case 0:   // GetReq
    case 1:   // PutReq
    case 2:   // RoTxReq
    case 9:   // SliceReq
    case 10:  // SliceReply
      return true;
    default:
      return false;
  }
}
}  // namespace

void SimNode::deliver(NodeId from, proto::Message m) {
  // Message handling contends for this node's CPU: the handler runs when a
  // core picks the job up, and the job reports the CPU time it consumed.
  const bool fg = is_foreground(m);
  auto job = [this, from, msg = std::move(m)]() mutable -> Duration {
    return engine_->handle_message(from, std::move(msg));
  };
  if (fg) {
    cpu_.submit(std::move(job));
  } else {
    cpu_.submit_background(std::move(job));
  }
}

void SimNode::set_timer(Duration delay, std::uint64_t timer_id) {
  // Timers run foreground: heartbeat/stabilization *sending* is cheap and
  // keeps flowing on a loaded server (dedicated sender threads in real
  // systems); it is the receive/apply path that lags under load.
  sim_.schedule(delay, [this, timer_id] {
    cpu_.submit([this, timer_id]() -> Duration {
      return engine_->on_timer(timer_id);
    });
  });
}

}  // namespace pocc::cluster
