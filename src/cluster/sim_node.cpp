#include "cluster/sim_node.hpp"

#include <utility>

#include "common/assert.hpp"

namespace pocc::cluster {

SimNode::SimNode(NodeId self, const ServiceConfig& service,
                 const ClockConfig& clock_cfg, sim::Simulator& simulator,
                 net::SimNetwork& network, Rng& seeder)
    : self_(self),
      sim_(simulator),
      net_(network),
      cpu_(simulator, service.cores, service.background_share_den),
      clock_(clock_cfg, seeder) {
  net_.register_node(self_, this);
}

void SimNode::install_engine(std::unique_ptr<server::ReplicaBase> engine) {
  POCC_ASSERT(engine_ == nullptr);
  engine_ = std::move(engine);
}

void SimNode::start() {
  POCC_ASSERT(engine_ != nullptr);
  engine_->start();
}

namespace {
/// Client-facing traffic (requests and the RO-TX slice path) takes the
/// foreground CPU class; replication, heartbeats, stabilization and GC take
/// the background class and lag under load like a real server's maintenance
/// path (see sim/cpu_queue.hpp).
bool is_foreground(const proto::Message& m) {
  switch (m.index()) {
    case 0:   // GetReq
    case 1:   // PutReq
    case 2:   // RoTxReq
    case 9:   // SliceReq
    case 10:  // SliceReply
      return true;
    default:
      return false;
  }
}
}  // namespace

std::uint32_t SimNode::park_message(proto::Message m) {
  if (!parked_free_.empty()) {
    const std::uint32_t idx = parked_free_.back();
    parked_free_.pop_back();
    parked_messages_[idx] = std::move(m);
    return idx;
  }
  parked_messages_.push_back(std::move(m));
  return static_cast<std::uint32_t>(parked_messages_.size() - 1);
}

proto::Message SimNode::unpark_message(std::uint32_t idx) {
  proto::Message m = std::move(parked_messages_[idx]);
  parked_free_.push_back(idx);
  return m;
}

void SimNode::deliver(NodeId from, proto::Message m) {
  // Message handling contends for this node's CPU: the handler runs when a
  // core picks the job up, and the job reports the CPU time it consumed.
  // The message is parked (moved, not copied) in this node's pool; the job
  // captures only its index, staying within the slim CPU-job inline budget.
  const bool fg = is_foreground(m);
  const std::uint32_t idx = park_message(std::move(m));
  auto job = [this, from, idx]() -> Duration {
    return engine_->handle_message(from, unpark_message(idx));
  };
  static_assert(sim::CpuQueue::Job::stores_inline<decltype(job)>,
                "message-handler job no longer fits the CPU queue's inline "
                "job storage");
  if (fg) {
    cpu_.submit(std::move(job));
  } else {
    cpu_.submit_background(std::move(job));
  }
}

void SimNode::set_timer(Duration delay, std::uint64_t timer_id) {
  // Timers run foreground: heartbeat/stabilization *sending* is cheap and
  // keeps flowing on a loaded server (dedicated sender threads in real
  // systems); it is the receive/apply path that lags under load.
  sim_.schedule(delay, [this, timer_id] {
    cpu_.submit([this, timer_id]() -> Duration {
      return engine_->on_timer(timer_id);
    });
  });
}

}  // namespace pocc::cluster
