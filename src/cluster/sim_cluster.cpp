#include "cluster/sim_cluster.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "common/hash.hpp"
#include "store/key_space.hpp"
#include "cure/cure_server.hpp"
#include "ha/ha_pocc_server.hpp"
#include "pocc/pocc_server.hpp"
#include "pocc/scalar_pocc_server.hpp"

namespace pocc::cluster {

const char* system_name(SystemKind k) {
  switch (k) {
    case SystemKind::kPocc:
      return "POCC";
    case SystemKind::kCure:
      return "Cure*";
    case SystemKind::kHaPocc:
      return "HA-POCC";
    case SystemKind::kScalarPocc:
      return "Scalar-OCC";
  }
  return "?";
}

SimCluster::SimCluster(SimClusterConfig cfg)
    : cfg_(std::move(cfg)), root_rng_(cfg_.seed) {
  net_ = std::make_unique<net::SimNetwork>(sim_, cfg_.latency,
                                           root_rng_.split());
  if (cfg_.enable_checker) {
    checker_ =
        std::make_unique<checker::HistoryChecker>(cfg_.topology.num_dcs);
  }

  const auto& topo = cfg_.topology;
  nodes_.reserve(topo.total_nodes());
  // WAN-level NTP error: one clock bias per data center; node clocks add a
  // smaller LAN-level offset on top (see ClockConfig).
  std::vector<Timestamp> dc_bias(topo.num_dcs, 0);
  for (DcId dc = 0; dc < topo.num_dcs; ++dc) {
    dc_bias[dc] = static_cast<Timestamp>(
        root_rng_.normal(0.0, cfg_.clock.dc_offset_sigma_us));
  }
  for (DcId dc = 0; dc < topo.num_dcs; ++dc) {
    for (PartitionId p = 0; p < topo.partitions_per_dc; ++p) {
      const NodeId id{dc, p};
      ClockConfig node_clock = cfg_.clock;
      node_clock.offset_bias_us += dc_bias[dc];
      auto node = std::make_unique<SimNode>(id, cfg_.service, node_clock,
                                            sim_, *net_, root_rng_);
      if (cfg_.durability == DurabilityMode::kWal) {
        // The same factory that builds the engine here rebuilds it after a
        // crash, so the recovered incarnation gets its checker observer
        // re-wired exactly like the original.
        node->enable_wal_mode([this](NodeId nid, server::Context& ctx) {
          return make_engine(nid, ctx);
        });
      }
      node->install_engine(make_engine(id, *node));
      nodes_.push_back(std::move(node));
    }
  }
  // Start nodes with a per-node phase so periodic timers do not fire in
  // lockstep across the whole deployment.
  for (auto& node : nodes_) {
    const Duration phase = static_cast<Duration>(root_rng_.uniform(
        static_cast<std::uint64_t>(cfg_.protocol.heartbeat_interval_us) + 1));
    sim_.schedule(phase, [n = node.get()] { n->start(); });
  }
}

SimCluster::~SimCluster() = default;

std::unique_ptr<server::ReplicaBase> SimCluster::make_engine(
    NodeId id, server::Context& ctx) {
  const auto& topo = cfg_.topology;
  std::unique_ptr<server::ReplicaBase> engine;
  switch (cfg_.system) {
    case SystemKind::kPocc:
      engine = std::make_unique<PoccServer>(id, topo, cfg_.protocol,
                                            cfg_.service, ctx);
      break;
    case SystemKind::kCure:
      engine = std::make_unique<CureServer>(id, topo, cfg_.protocol,
                                            cfg_.service, ctx);
      break;
    case SystemKind::kHaPocc:
      engine = std::make_unique<HaPoccServer>(id, topo, cfg_.protocol,
                                              cfg_.service, ctx);
      break;
    case SystemKind::kScalarPocc:
      engine = std::make_unique<ScalarPoccServer>(id, topo, cfg_.protocol,
                                                  cfg_.service, ctx);
      break;
  }
  if (checker_ != nullptr) {
    engine->set_version_observer(
        [chk = checker_.get()](ClientId c, std::uint64_t op_id,
                               const store::Version& v) {
          chk->on_version_created(c, op_id, v.key, v.ut, v.sr, v.dv);
        });
  }
  return engine;
}

SimNode& SimCluster::node_at(NodeId id) {
  const std::size_t idx = id.flat_index(cfg_.topology.partitions_per_dc);
  POCC_ASSERT(idx < nodes_.size());
  return *nodes_[idx];
}

server::ReplicaBase& SimCluster::engine(NodeId id) {
  return node_at(id).engine();
}

NodeId SimCluster::node_for_key(DcId dc, KeyId key) const {
  return NodeId{dc, store::KeySpace::global().partition(
                        key, cfg_.topology.partitions_per_dc,
                        cfg_.topology.partition_scheme)};
}

void SimCluster::add_workload_clients(std::uint32_t per_partition,
                                      const workload::WorkloadConfig& wl) {
  const bool snapshot_rdv = cfg_.system == SystemKind::kCure;
  const auto& topo = cfg_.topology;
  for (DcId dc = 0; dc < topo.num_dcs; ++dc) {
    for (PartitionId p = 0; p < topo.partitions_per_dc; ++p) {
      for (std::uint32_t i = 0; i < per_partition; ++i) {
        const ClientId id = next_client_id_++;
        const NodeId home{dc, p};
        auto c = std::make_unique<SimClient>(id, dc, home,
                                             SimClient::Mode::kWorkload, *this,
                                             root_rng_.split(), snapshot_rdv);
        net_->register_client(id, dc, home, c.get());
        if (checker_ != nullptr) {
          checker_->register_client(id, dc, snapshot_rdv);
        }
        c->start_workload(wl);
        clients_.push_back(std::move(c));
      }
    }
  }
}

SimClient& SimCluster::create_manual_client(DcId dc, PartitionId home) {
  POCC_ASSERT(dc < cfg_.topology.num_dcs);
  POCC_ASSERT(home < cfg_.topology.partitions_per_dc);
  const bool snapshot_rdv = cfg_.system == SystemKind::kCure;
  const ClientId id = next_client_id_++;
  auto c = std::make_unique<SimClient>(id, dc, NodeId{dc, home},
                                       SimClient::Mode::kManual, *this,
                                       root_rng_.split(), snapshot_rdv);
  net_->register_client(id, dc, NodeId{dc, home}, c.get());
  if (checker_ != nullptr) checker_->register_client(id, dc, snapshot_rdv);
  clients_.push_back(std::move(c));
  return *clients_.back();
}

void SimCluster::stop_clients() {
  for (auto& c : clients_) c->stop();
}

void SimCluster::run_for(Duration d) {
  POCC_ASSERT(d >= 0);
  sim_.run_until(sim_.now() + d);
}

bool SimCluster::pump_until(const std::function<bool()>& pred,
                            Duration max_wait) {
  const Timestamp deadline = sim_.now() + max_wait;
  while (!pred() && sim_.now() <= deadline) {
    if (!sim_.step()) break;
  }
  return pred();
}

void SimCluster::begin_measurement() {
  for (auto& node : nodes_) {
    node->engine().reset_stats();
    node->cpu().reset_stats();
  }
  for (auto& c : clients_) c->reset_stats();
  net_->reset_stats();
  measuring_ = true;
  window_start_ = sim_.now();
}

ClusterMetrics SimCluster::end_measurement() {
  measuring_ = false;
  ClusterMetrics m;
  m.window_us = sim_.now() - window_start_;
  for (const auto& c : clients_) {
    m.client_ops.merge(c->op_stats());
    m.completed_ops += c->completed_ops();
    m.session_fallbacks += c->session_fallbacks();
  }
  if (m.window_us > 0) {
    m.throughput_ops_per_sec = static_cast<double>(m.completed_ops) /
                               (static_cast<double>(m.window_us) * 1e-6);
  }
  double util_sum = 0.0;
  for (const auto& node : nodes_) {
    m.blocking.merge(node->engine().blocking_stats());
    m.staleness.merge(node->engine().staleness_stats());
    util_sum += node->cpu().utilization(window_start_, sim_.now());
  }
  m.avg_cpu_utilization = util_sum / static_cast<double>(nodes_.size());
  m.network = net_->stats();
  return m;
}

void SimCluster::partition_dcs(DcId a, DcId b) { net_->partition_dcs(a, b); }
void SimCluster::heal_dcs(DcId a, DcId b) { net_->heal_dcs(a, b); }
void SimCluster::isolate_dc(DcId dc) {
  net_->isolate_dc(dc, cfg_.topology.num_dcs);
}
void SimCluster::heal_dc(DcId dc) {
  net_->heal_dc(dc, cfg_.topology.num_dcs);
}
bool SimCluster::has_active_partitions() const {
  return net_->any_partitions();
}

void SimCluster::crash_node(NodeId id) { node_at(id).crash(); }

std::uint64_t SimCluster::restart_node(NodeId id) {
  return node_at(id).restart();
}

bool SimCluster::node_down(NodeId id) { return node_at(id).down(); }

PhysicalClock& SimCluster::clock_at(NodeId id) { return node_at(id).clock(); }

std::uint64_t SimCluster::state_digest() const {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  auto mix = [&h](std::uint64_t x) { h = splitmix64(h ^ x); };
  auto mix_str = [&](const std::string& s) {
    mix(s.size());
    for (const char c : s) mix(static_cast<std::uint8_t>(c));
  };
  mix(sim_.executed_events());
  for (const auto& node : nodes_) {
    const server::ReplicaBase& e = node->engine();
    const VersionVector& vv = e.version_vector();
    for (std::uint32_t i = 0; i < vv.size(); ++i) {
      mix(static_cast<std::uint64_t>(vv[i]));
    }
    mix(e.puts_served());
    mix(e.gets_served());
    // chains() is densely packed in insertion order — deterministic for a
    // given seed (the only ordering this digest is used under).
    for (const auto& [key, chain] : e.partition_store().chains()) {
      mix_str(store::key_name(key));
      for (const store::Version& v : chain.versions()) {
        mix(static_cast<std::uint64_t>(v.ut));
        mix(v.sr);
        mix_str(v.value);
        for (std::uint32_t i = 0; i < v.dv.size(); ++i) {
          mix(static_cast<std::uint64_t>(v.dv[i]));
        }
      }
    }
  }
  for (const auto& c : clients_) mix(c->completed_ops());
  const net::NetworkStats& ns = net_->stats();
  mix(ns.messages);
  mix(ns.bytes);
  mix(ns.dropped_messages);
  if (checker_ != nullptr) {
    mix(checker_->checks_performed());
    mix(checker_->versions_registered());
    mix(checker_->violations().size());
  }
  return h;
}

std::uint64_t SimCluster::declare_dc_lost(DcId dc) {
  POCC_ASSERT_MSG(cfg_.system == SystemKind::kHaPocc,
                  "lost-update recovery is an HA-POCC mechanism");
  std::uint64_t discarded = 0;
  for (auto& node : nodes_) {
    if (node->id().dc == dc) continue;
    auto* ha = dynamic_cast<HaPoccServer*>(&node->engine());
    POCC_ASSERT(ha != nullptr);
    discarded += ha->discard_lost_updates(dc);
  }
  return discarded;
}

std::vector<std::string> SimCluster::divergent_keys() const {
  std::vector<std::string> divergent;
  const auto& topo = cfg_.topology;
  for (PartitionId p = 0; p < topo.partitions_per_dc; ++p) {
    // Union of keys over the partition's replicas.
    std::unordered_map<KeyId, bool> keys;
    for (DcId dc = 0; dc < topo.num_dcs; ++dc) {
      const auto& store =
          nodes_[NodeId{dc, p}.flat_index(topo.partitions_per_dc)]
              ->engine()
              .partition_store();
      for (const auto& [key, chain] : store.chains()) keys[key] = true;
    }
    for (const auto& [key, unused] : keys) {
      const store::Version* first = nullptr;
      bool diverged = false;
      for (DcId dc = 0; dc < topo.num_dcs; ++dc) {
        const auto& store =
            nodes_[NodeId{dc, p}.flat_index(topo.partitions_per_dc)]
                ->engine()
                .partition_store();
        const store::VersionChain* chain = store.find(key);
        const store::Version* head =
            chain != nullptr ? chain->freshest() : nullptr;
        if (dc == 0) {
          first = head;
          continue;
        }
        const bool both_null = (first == nullptr && head == nullptr);
        if (both_null) continue;
        if (first == nullptr || head == nullptr || first->ut != head->ut ||
            first->sr != head->sr || first->value != head->value) {
          diverged = true;
        }
      }
      if (diverged) divergent.push_back(store::key_name(key));
    }
  }
  return divergent;
}

std::size_t SimCluster::total_parked_requests() const {
  std::size_t n = 0;
  for (const auto& node : nodes_) n += node->engine().parked_requests();
  return n;
}

}  // namespace pocc::cluster
