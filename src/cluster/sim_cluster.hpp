// SimCluster — the simulated geo-replicated deployment.
//
// Wires M data centers x N partitions of protocol engines (POCC, Cure* or
// HA-POCC) onto the discrete-event simulator: per-node CPUs (queueing
// stations), skewed physical clocks, and a latency-modeled FIFO network. Adds
// closed-loop workload clients, the measurement machinery that reproduces the
// paper's metrics, fault injection (DC partitions) and the online causal-
// consistency checker. This is the substrate substituting for the paper's
// 96-node AWS test-bed (see docs/DESIGN.md).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "checker/history_checker.hpp"
#include "cluster/sim_client.hpp"
#include "cluster/sim_node.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "net/sim_network.hpp"
#include "sim/simulator.hpp"
#include "stats/metrics.hpp"
#include "workload/workload.hpp"

namespace pocc::cluster {

/// Which protocol the cluster runs. kScalarPocc is the scalar-granularity
/// ablation of POCC's dependency tracking (see pocc/scalar_pocc_server.hpp).
enum class SystemKind { kPocc, kCure, kHaPocc, kScalarPocc };

[[nodiscard]] const char* system_name(SystemKind k);

/// How a crashed node's durable state is modeled (see SimNode::crash).
/// kIdealized: the engine object survives the crash as an abstract durable
/// store. kWal: every durable mutation is logged to an in-memory WAL and a
/// restart rebuilds a fresh engine by replaying it — the sim twin of the real
/// PartitionWal recovery path, still bit-identical under seed replay.
enum class DurabilityMode { kIdealized, kWal };

struct SimClusterConfig {
  TopologyConfig topology{3, 8, PartitionScheme::kPrefix};
  LatencyConfig latency = LatencyConfig::aws_three_dc();
  ClockConfig clock;
  ServiceConfig service;
  ProtocolConfig protocol;
  SystemKind system = SystemKind::kPocc;
  DurabilityMode durability = DurabilityMode::kIdealized;
  std::uint64_t seed = 1;
  /// Attach the causal-consistency checker (tests; costs memory and time).
  bool enable_checker = false;
};

/// Metrics aggregated over one measurement window — the quantities plotted in
/// the paper's Figures 1-3.
struct ClusterMetrics {
  Duration window_us = 0;
  std::uint64_t completed_ops = 0;
  double throughput_ops_per_sec = 0.0;
  stats::OpStats client_ops;        // client-observed latencies
  stats::BlockingStats blocking;    // server-side blocking (Fig. 2a/3c)
  stats::StalenessStats staleness;  // server-side staleness (Fig. 2b/3d)
  double avg_cpu_utilization = 0.0;
  net::NetworkStats network;
  std::uint64_t session_fallbacks = 0;  // HA: sessions closed by timeout
};

class SimCluster {
 public:
  explicit SimCluster(SimClusterConfig cfg);
  ~SimCluster();

  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;

  // ----- clients -----
  /// Add `per_partition` closed-loop workload clients per partition per DC
  /// (the paper's "#Clients/partition", §V-C).
  void add_workload_clients(std::uint32_t per_partition,
                            const workload::WorkloadConfig& wl);

  /// A client driven manually with blocking calls (tests, examples). Lives in
  /// `dc`, collocated with partition `home`.
  SimClient& create_manual_client(DcId dc, PartitionId home = 0);

  /// Stop issuing new workload operations (lets the cluster drain).
  void stop_clients();

  // ----- time control -----
  /// Advance virtual time by `d`.
  void run_for(Duration d);
  /// Run events until `pred()` holds or `max_wait` virtual time elapses.
  /// Returns true if the predicate held.
  bool pump_until(const std::function<bool()>& pred, Duration max_wait);

  // ----- measurement -----
  /// Clear all statistics and start a measurement window.
  void begin_measurement();
  /// Close the window and aggregate.
  ClusterMetrics end_measurement();
  [[nodiscard]] bool measuring() const { return measuring_; }

  // ----- fault injection -----
  void partition_dcs(DcId a, DcId b);
  void heal_dcs(DcId a, DcId b);
  void isolate_dc(DcId dc);
  void heal_dc(DcId dc);
  [[nodiscard]] bool has_active_partitions() const;

  /// Fail-stop crash of one node (fault layer, src/fault/). The process
  /// dies: its RAM state (parked requests, pending transactions) is lost and
  /// client requests bounce; the multiversion store and checkpointed
  /// metadata survive (durable storage), and peer replication streams are
  /// held by the peers' durable logs (see SimNode::crash).
  void crash_node(NodeId id);
  /// Reboot a crashed node: volatile state cleared, timers re-armed, replica
  /// state rebuilt from the peers' backlogged streams in FIFO order.
  /// Returns the number of replicated versions recovered.
  std::uint64_t restart_node(NodeId id);
  [[nodiscard]] bool node_down(NodeId id);
  /// Physical clock of one node (fault layer: bounded skew/drift ramps).
  PhysicalClock& clock_at(NodeId id);

  /// Deterministic digest of the end state: every store, version vector, the
  /// event/op counters and network totals. Two runs of the same seed and the
  /// same fault plan must produce bit-identical digests (fuzz replay check).
  [[nodiscard]] std::uint64_t state_digest() const;
  /// HA-POCC: declare `dc` permanently lost; every node discards versions
  /// depending on updates that will never arrive (§III-B). Returns the total
  /// number of versions discarded.
  std::uint64_t declare_dc_lost(DcId dc);

  // ----- introspection -----
  [[nodiscard]] const SimClusterConfig& config() const { return cfg_; }
  server::ReplicaBase& engine(NodeId id);
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  sim::Simulator& simulator() { return sim_; }
  net::SimNetwork& network() { return *net_; }
  checker::HistoryChecker* checker() { return checker_.get(); }
  [[nodiscard]] const std::vector<std::unique_ptr<SimClient>>& clients()
      const {
    return clients_;
  }

  /// After the workload stopped and replication drained: keys whose freshest
  /// version differs across DCs (must be empty — convergence, §II-B).
  [[nodiscard]] std::vector<std::string> divergent_keys() const;

  /// Sum of parked (stalled) requests across all servers.
  [[nodiscard]] std::size_t total_parked_requests() const;

 private:
  friend class SimClient;

  SimNode& node_at(NodeId id);
  [[nodiscard]] NodeId node_for_key(DcId dc, KeyId key) const;
  /// Builds a protocol engine for the configured system, checker observer
  /// wired. Used at construction and, in DurabilityMode::kWal, by
  /// SimNode::restart to rebuild a crashed node's engine.
  std::unique_ptr<server::ReplicaBase> make_engine(NodeId id,
                                                   server::Context& ctx);

  SimClusterConfig cfg_;
  sim::Simulator sim_;
  Rng root_rng_;
  std::unique_ptr<net::SimNetwork> net_;
  std::vector<std::unique_ptr<SimNode>> nodes_;
  std::vector<std::unique_ptr<SimClient>> clients_;
  std::unique_ptr<checker::HistoryChecker> checker_;
  ClientId next_client_id_ = 1;
  bool measuring_ = false;
  Timestamp window_start_ = 0;
};

}  // namespace pocc::cluster
