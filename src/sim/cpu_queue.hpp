// CPU contention model for simulated nodes.
//
// Each node's protocol handlers execute as jobs on a small work-conserving
// multi-server queue (one server per vCPU) with two priority classes:
//
//   * foreground — client-facing request handling (GET/PUT/RO-TX and the
//     transaction slice path). These correspond to the RPC worker path of a
//     real server and get the CPU first.
//   * background — replication apply, heartbeats, stabilization, GC and
//     protocol timers: the maintenance path that, in real deployments, lags
//     behind client traffic when the node saturates.
//
// The priority split is what lets the simulation reproduce the paper's
// high-load dynamics: delayed update/heartbeat processing under load is
// exactly what drives POCC's blocking spike near saturation (Fig. 2a/3c:
// "higher contention on physical resources slows down ... the delayed
// processing of updates and heartbeats messages, yielding very high blocking
// times") and Cure*'s staleness growth (Fig. 2b).
//
// A job is a callable that runs at its *start* time and returns the service
// time it consumed; the core stays busy for that long before starting the
// next job. Returning the cost from the job lets service time depend on work
// that is only known during execution (e.g. version-chain hops).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/inline_function.hpp"
#include "common/ring.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace pocc::sim {

/// A work-conserving two-priority queueing station with `cores` servers.
///
/// Background work is not starved outright: when both classes are backlogged,
/// one dispatch in `background_share_den` takes a background job (a small
/// guaranteed share, like a real server's apply/maintenance threads getting
/// scheduled occasionally under overload).
class CpuQueue {
 public:
  /// Runs when a core picks the job up; returns CPU time consumed (>= 0).
  /// Jobs are deliberately small (hosts capture a pooled message *index*,
  /// not the message itself — see cluster/sim_node.cpp): queued jobs live in
  /// a contiguous ring, and slim cells keep the busy-server queue traffic to
  /// about one cache line per job.
  static constexpr std::size_t kJobInline = 48;
  using Job = common::InlineFunction<Duration(), kJobInline>;

  /// FIFO of waiting jobs. A power-of-two ring over contiguous storage
  /// (common/ring.hpp, extracted from here): std::deque would allocate a
  /// 512-byte node per two Jobs (a Job is ~200 bytes), putting one
  /// malloc/free back on the busy-server path. Callables emplace directly
  /// into their ring cell (no temporary Job).
  using JobRing = common::Ring<Job>;

  CpuQueue(Simulator& simulator, std::uint32_t cores,
           std::uint32_t background_share_den = 16);

  /// Enqueue a foreground (client-path) job. If a core is idle the job starts
  /// immediately; otherwise it waits, ahead of all background work.
  template <typename F>
  void submit(F&& job) {
    if (busy_cores_ < cores_) {
      run_job(std::forward<F>(job));
    } else {
      foreground_.push_back(std::forward<F>(job));
    }
  }

  /// Enqueue a background (replication/maintenance) job. Served only when no
  /// foreground work is waiting (work-conserving, non-preemptive).
  template <typename F>
  void submit_background(F&& job) {
    if (busy_cores_ < cores_) {
      run_job(std::forward<F>(job));
    } else {
      background_.push_back(std::forward<F>(job));
    }
  }

  [[nodiscard]] Duration busy_time() const { return busy_time_; }
  [[nodiscard]] std::uint64_t jobs_executed() const { return jobs_; }
  [[nodiscard]] std::size_t queue_length() const {
    return foreground_.size() + background_.size();
  }
  [[nodiscard]] std::size_t background_queue_length() const {
    return background_.size();
  }
  [[nodiscard]] std::uint32_t cores() const { return cores_; }

  /// Utilization in [0,1] over the window [since, now].
  [[nodiscard]] double utilization(Timestamp since, Timestamp now) const;

  /// Reset counters at the start of a measurement window.
  void reset_stats();

 private:
  void run_job(Job job);
  void core_finished();

  Simulator& sim_;
  std::uint32_t cores_;
  std::uint32_t background_share_den_;
  std::uint32_t busy_cores_ = 0;
  std::uint32_t dispatches_ = 0;
  JobRing foreground_;
  JobRing background_;
  Duration busy_time_ = 0;
  std::uint64_t jobs_ = 0;
};

}  // namespace pocc::sim
