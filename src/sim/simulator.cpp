#include "sim/simulator.hpp"

#include <utility>

#include "common/assert.hpp"

namespace pocc::sim {

void Simulator::schedule(Duration delay, Action fn) {
  POCC_ASSERT(delay >= 0);
  schedule_at(now_ + delay, std::move(fn));
}

void Simulator::schedule_at(Timestamp at, Action fn) {
  POCC_ASSERT_MSG(at >= now_, "cannot schedule events in the past");
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

std::uint64_t Simulator::run_until(Timestamp until) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.top().at <= until) {
    // Move the action out before popping: the action may schedule new events.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    ev.fn();
    ++n;
  }
  executed_ += n;
  if (now_ < until) now_ = until;
  return n;
}

std::uint64_t Simulator::run_all(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (!queue_.empty() && n < max_events) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    ev.fn();
    ++n;
  }
  executed_ += n;
  return n;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.at;
  ev.fn();
  ++executed_;
  return true;
}

void Simulator::clear() {
  while (!queue_.empty()) queue_.pop();
}

}  // namespace pocc::sim
