#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/assert.hpp"

namespace pocc::sim {

std::uint32_t Simulator::acquire_slot() {
  if (!free_.empty()) {
    const std::uint32_t s = free_.back();
    free_.pop_back();
    return s;
  }
  const std::uint32_t s = slots_in_use_++;
  if ((s >> kChunkShift) == chunks_.size()) {
    // Default-init, NOT make_unique: value-initialization would zero every
    // action's whole inline buffer (~50KB of memset per chunk).
    chunks_.emplace_back(new Slot[kChunkSize]);
  }
  return s;
}

void Simulator::bucket_append(int level, std::uint32_t idx, std::uint32_t s) {
  Bucket& b = buckets_[level][idx];
  slot(s).meta.next = kNil;
  if (b.head == kNil) {
    b.head = s;
    occupied_[level] |= 1ULL << idx;
  } else {
    slot(b.tail).meta.next = s;
  }
  b.tail = s;
}

void Simulator::place(std::uint32_t s) {
  const EventRec& m = slot(s).meta;
  const auto at = static_cast<std::uint64_t>(m.at);
  const std::uint64_t d = at ^ static_cast<std::uint64_t>(now_);
  if (d >> (kLevelShift * kLevels) != 0) {
    // Beyond the wheel horizon: overflow heap (cold path).
    overflow_.push_back(Overflow{m.at, m.seq, s});
    std::push_heap(overflow_.begin(), overflow_.end(),
                   [](const Overflow& a, const Overflow& b) {
                     if (a.at != b.at) return a.at > b.at;
                     return a.seq > b.seq;
                   });
    return;
  }
  const int level = d == 0 ? 0 : (std::bit_width(d) - 1) / kLevelShift;
  bucket_append(level,
                static_cast<std::uint32_t>(at >> (kLevelShift * level)) &
                    kBucketMask,
                s);
}

std::uint32_t Simulator::scan_level(int level, std::uint32_t from) const {
  const std::uint64_t bits = occupied_[level] >> from;
  if (bits == 0) return kNil;
  return from + static_cast<std::uint32_t>(std::countr_zero(bits));
}

void Simulator::cascade(int level, std::uint32_t idx) {
  Bucket& b = buckets_[level][idx];
  std::uint32_t s = b.head;
  b.head = kNil;
  b.tail = kNil;
  occupied_[level] &= ~(1ULL << idx);
  // Walking in FIFO (seq) order and re-placing keeps every target bucket's
  // FIFO-by-seq invariant.
  while (s != kNil) {
    const std::uint32_t next = slot(s).meta.next;
    place(s);
    s = next;
  }
}

std::uint32_t Simulator::pop_next(Timestamp bound) {
  if (pending_ == 0) return kNil;
  for (;;) {
    // Level 0: exact-timestamp buckets of the current 64 us block.
    const auto unow = static_cast<std::uint64_t>(now_);
    const std::uint32_t i =
        scan_level(0, static_cast<std::uint32_t>(unow & kBucketMask));
    if (i != kNil) {
      const Timestamp at =
          static_cast<Timestamp>((unow & ~static_cast<std::uint64_t>(
                                             kBucketMask)) |
                                 i);
      Bucket& b = buckets_[0][i];
      const std::uint32_t s = b.head;
      // Ultra-long runs only: an overflow event can become due before the
      // wheel's earliest once now_ has advanced ~the full horizon past its
      // insertion point. Checked before the bound cut so an in-bound
      // overflow event is never masked by an out-of-bound wheel event.
      if (!overflow_.empty() &&
          (overflow_.front().at < at ||
           (overflow_.front().at == at &&
            overflow_.front().seq < slot(s).meta.seq))) {
        break;  // take from the overflow heap instead
      }
      if (at > bound) return kNil;
      b.head = slot(s).meta.next;
      if (b.head == kNil) {
        b.tail = kNil;
        occupied_[0] &= ~(1ULL << i);
      }
      now_ = at;
      --pending_;
      return s;
    }
    // Current block exhausted: cascade the next occupied bucket of the
    // lowest level that has one. Scans are inclusive of now_'s own digit to
    // pick up buckets left behind by idle time-jumps (run_until past
    // pending events); cascading re-files those correctly, upward if needed.
    int level = 1;
    for (; level < kLevels; ++level) {
      const auto digit = static_cast<std::uint32_t>(
          (unow >> (kLevelShift * level)) & kBucketMask);
      const std::uint32_t j = scan_level(level, digit);
      if (j == kNil) continue;
      const std::uint64_t span = 1ULL << (kLevelShift * level);
      const std::uint64_t base =
          (unow & ~(span * kBucketsPerLevel - 1)) + j * span;
      // The earliest possible wheel event sits at/after `base`.
      if (!overflow_.empty() &&
          overflow_.front().at < static_cast<Timestamp>(base)) {
        level = kLevels;  // prefer the earlier overflow event
        break;
      }
      if (static_cast<Timestamp>(base) > bound) return kNil;
      if (base > unow) now_ = static_cast<Timestamp>(base);
      cascade(level, j);
      break;
    }
    if (level < kLevels) continue;  // cascaded (or deferred): rescan
    // Wheels empty (or overflow is due first).
    if (overflow_.empty()) return kNil;
    break;
  }
  // Overflow pop (cold).
  if (overflow_.front().at > bound) return kNil;
  std::pop_heap(overflow_.begin(), overflow_.end(),
                [](const Overflow& a, const Overflow& b) {
                  if (a.at != b.at) return a.at > b.at;
                  return a.seq > b.seq;
                });
  const Overflow top = overflow_.back();
  overflow_.pop_back();
  POCC_ASSERT(top.at >= now_);
  now_ = top.at;
  --pending_;
  return top.slot;
}

std::uint64_t Simulator::run_until(Timestamp until) {
  std::uint64_t n = 0;
  for (;;) {
    const std::uint32_t s = pop_next(until);
    if (s == kNil) break;
    Action fn = std::move(slot(s).fn);
    free_.push_back(s);
    fn();
    ++n;
  }
  executed_ += n;
  if (now_ < until) now_ = until;
  return n;
}

std::uint64_t Simulator::run_all(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events) {
    const std::uint32_t s = pop_next(kTimestampMax);
    if (s == kNil) break;
    Action fn = std::move(slot(s).fn);
    free_.push_back(s);
    fn();
    ++n;
  }
  executed_ += n;
  return n;
}

bool Simulator::step() {
  const std::uint32_t s = pop_next(kTimestampMax);
  if (s == kNil) return false;
  Action fn = std::move(slot(s).fn);
  free_.push_back(s);
  fn();
  ++executed_;
  return true;
}

void Simulator::clear() {
  for (int level = 0; level < kLevels; ++level) {
    for (std::uint32_t idx = 0; idx < kBucketsPerLevel; ++idx) {
      std::uint32_t s = buckets_[level][idx].head;
      while (s != kNil) {
        slot(s).fn = Action{};
        s = slot(s).meta.next;
      }
      buckets_[level][idx] = Bucket{};
    }
    occupied_[level] = 0;
  }
  for (const Overflow& o : overflow_) slot(o.slot).fn = Action{};
  overflow_.clear();
  free_.clear();
  slots_in_use_ = 0;
  pending_ = 0;
}

}  // namespace pocc::sim
