// Discrete-event simulation core.
//
// A single-threaded event loop with virtual time. Events scheduled for the
// same instant fire in scheduling order (monotonic sequence numbers break
// ties), which makes every run bit-for-bit deterministic for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace pocc::sim {

/// Discrete-event scheduler. Virtual time is `Timestamp` microseconds.
class Simulator {
 public:
  using Action = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] Timestamp now() const { return now_; }

  /// Schedule `fn` to run `delay` microseconds from now (delay >= 0).
  void schedule(Duration delay, Action fn);

  /// Schedule `fn` at absolute virtual time `at` (>= now()).
  void schedule_at(Timestamp at, Action fn);

  /// Run events until the queue is empty or virtual time would exceed `until`.
  /// Returns the number of events executed.
  std::uint64_t run_until(Timestamp until);

  /// Run until the queue drains (or `max_events` is hit, to bound runaways).
  std::uint64_t run_all(std::uint64_t max_events = UINT64_MAX);

  /// Execute exactly one event. Returns false when the queue is empty.
  bool step();

  /// Drop all pending events (used between benchmark phases).
  void clear();

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    Timestamp at;
    std::uint64_t seq;
    Action fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Timestamp now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
};

}  // namespace pocc::sim
