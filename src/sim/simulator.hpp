// Discrete-event simulation core.
//
// A single-threaded event loop with virtual time. Events scheduled for the
// same instant fire in scheduling order (monotonic sequence numbers break
// ties), which makes every run bit-for-bit deterministic for a given seed.
//
// The loop is allocation-free in steady state and avoids comparison-heap
// costs entirely on the hot path:
//   * actions are small-buffer inline callables (no heap for captures up to
//     kActionInline bytes — sized so a network-delivery closure carrying a
//     full proto::Message fits), stored in chunked pooled slots that are
//     recycled (growth allocates a new chunk, never moves existing actions);
//   * events are ordered by a hierarchical timing wheel (6 levels x 64
//     buckets, 1 us granularity, ~19 virtual hours of horizon): scheduling
//     is an O(1) bucket append, popping is a one-word bitmap scan plus
//     occasional bucket cascades — no O(log n) sift, no per-event
//     comparisons;
//   * events beyond the wheel horizon go to a small overflow heap (cold
//     path, unused by any current workload).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/inline_function.hpp"
#include "common/types.hpp"

namespace pocc::sim {

/// Discrete-event scheduler. Virtual time is `Timestamp` microseconds.
class Simulator {
 public:
  /// Inline capture budget for scheduled actions. 192 bytes covers the
  /// largest hot-path closure — SimNetwork's delivery lambda capturing an
  /// Endpoint*, the sender NodeId and a moved-in proto::Message (176 bytes
  /// today) — with headroom for message growth (call sites static_assert).
  static constexpr std::size_t kActionInline = 192;
  using Action = common::InlineFunction<void(), kActionInline>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] Timestamp now() const { return now_; }

  /// Schedule `fn` to run `delay` microseconds from now (delay >= 0).
  /// The callable is emplaced directly into its pooled slot — no temporary
  /// Action, no second move.
  template <typename F>
  void schedule(Duration delay, F&& fn) {
    POCC_ASSERT(delay >= 0);
    schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Schedule `fn` at absolute virtual time `at` (>= now()).
  template <typename F>
  void schedule_at(Timestamp at, F&& fn) {
    POCC_ASSERT_MSG(at >= now_, "cannot schedule events in the past");
    const std::uint32_t s = acquire_slot();
    Slot& sl = slot(s);
    sl.fn = std::forward<F>(fn);
    sl.meta = EventRec{at, next_seq_++, kNil};
    place(s);
    ++pending_;
  }

  /// Run events until the queue is empty or virtual time would exceed `until`.
  /// Returns the number of events executed.
  std::uint64_t run_until(Timestamp until);

  /// Run until the queue drains (or `max_events` is hit, to bound runaways).
  std::uint64_t run_all(std::uint64_t max_events = UINT64_MAX);

  /// Execute exactly one event. Returns false when the queue is empty.
  bool step();

  /// Drop all pending events (used between benchmark phases).
  void clear();

  [[nodiscard]] std::size_t pending_events() const { return pending_; }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  // Wheel geometry: 64 buckets per level, 1 us granularity at level 0.
  // Six levels give a 64^6 us ~ 19-virtual-hour horizon with a single-word
  // occupancy bitmap per level; the whole wheel is ~3KB.
  static constexpr int kLevels = 6;  // horizon 64^6 us ~ 19 virtual hours
  static constexpr int kLevelShift = 6;
  static constexpr std::uint32_t kBucketsPerLevel = 1u << kLevelShift;
  static constexpr std::uint32_t kBucketMask = kBucketsPerLevel - 1;

  // Per-pending-event bookkeeping. The intrusive `next` link forms each
  // bucket's FIFO list; FIFO order within a bucket is scheduling (seq) order
  // by construction, which preserves the same-instant tie-break.
  struct EventRec {
    Timestamp at;
    std::uint64_t seq;
    std::uint32_t next;
  };
  // One pooled event: the callable plus its bookkeeping. The record sits
  // directly after the action's control words, so the scheduler's hot fields
  // share a cache line instead of living in a parallel array.
  struct Slot {
    Action fn;
    EventRec meta;
  };
  struct Bucket {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };
  // Far-future overflow (beyond the wheel horizon): binary min-heap entries.
  struct Overflow {
    Timestamp at;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  // Slot storage: fixed-size chunks so growth never moves existing actions.
  static constexpr std::uint32_t kChunkShift = 8;  // 256 actions per chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  Slot& slot(std::uint32_t s) {
    return chunks_[s >> kChunkShift][s & (kChunkSize - 1)];
  }

  std::uint32_t acquire_slot();
  /// Files `s` (with meta_[s] filled in) into its wheel bucket or the
  /// overflow heap, based on the distance from now_.
  void place(std::uint32_t s);
  void bucket_append(int level, std::uint32_t idx, std::uint32_t s);
  /// Pops the earliest event at or before `bound`; kNil if none. Advances
  /// now_ to the popped event's timestamp (never beyond `bound`).
  std::uint32_t pop_next(Timestamp bound);
  /// Re-files every event of bucket (level, idx) after now_ advanced into
  /// the bucket's time range.
  void cascade(int level, std::uint32_t idx);
  /// First occupied bucket index >= from at `level`, or kNil.
  [[nodiscard]] std::uint32_t scan_level(int level, std::uint32_t from) const;

  Timestamp now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t pending_ = 0;

  Bucket buckets_[kLevels][kBucketsPerLevel];
  std::uint64_t occupied_[kLevels] = {};
  std::vector<Overflow> overflow_;  // heap by (at, seq), cold path

  std::vector<std::unique_ptr<Slot[]>> chunks_;  // pooled event storage
  std::uint32_t slots_in_use_ = 0;                 // high-water mark
  std::vector<std::uint32_t> free_;                // recycled slot indices
};

}  // namespace pocc::sim
