#include "sim/cpu_queue.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace pocc::sim {

CpuQueue::CpuQueue(Simulator& simulator, std::uint32_t cores,
                   std::uint32_t background_share_den)
    : sim_(simulator),
      cores_(std::max<std::uint32_t>(cores, 1)),
      background_share_den_(std::max<std::uint32_t>(background_share_den, 2)) {
}

void CpuQueue::run_job(Job job) {
  ++busy_cores_;
  const Duration service = job();
  POCC_ASSERT(service >= 0);
  busy_time_ += service;
  ++jobs_;
  sim_.schedule(service, [this] { core_finished(); });
}

void CpuQueue::core_finished() {
  POCC_ASSERT(busy_cores_ > 0);
  --busy_cores_;
  ++dispatches_;
  const bool background_turn =
      !background_.empty() &&
      (foreground_.empty() || dispatches_ % background_share_den_ == 0);
  if (background_turn) {
    run_job(background_.pop_front());
  } else if (!foreground_.empty()) {
    run_job(foreground_.pop_front());
  }
}

double CpuQueue::utilization(Timestamp since, Timestamp now) const {
  const auto window =
      static_cast<double>(now - since) * static_cast<double>(cores_);
  if (window <= 0) return 0.0;
  return std::min(1.0, static_cast<double>(busy_time_) / window);
}

void CpuQueue::reset_stats() {
  busy_time_ = 0;
  jobs_ = 0;
}

}  // namespace pocc::sim
