#include "runtime/rt_node.hpp"

#include <chrono>
#include <utility>

#include "common/assert.hpp"

namespace pocc::rt {

namespace {
const std::chrono::steady_clock::time_point kEpoch =
    std::chrono::steady_clock::now();
}

Timestamp steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - kEpoch)
      .count();
}

RtNode::RtNode(NodeId self, Router& router, const ClockConfig& clock_cfg,
               Rng& seeder)
    : self_(self), router_(router), clock_(clock_cfg, seeder) {}

RtNode::~RtNode() { stop(); }

void RtNode::install_engine(std::unique_ptr<server::ReplicaBase> engine) {
  POCC_ASSERT(engine_ == nullptr);
  engine_ = std::move(engine);
}

void RtNode::start() {
  POCC_ASSERT(engine_ != nullptr);
  thread_ = std::thread([this] { run(); });
}

void RtNode::stop() {
  {
    std::lock_guard lk(mu_);
    if (stopping_) {
      if (thread_.joinable()) thread_.join();
      return;
    }
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void RtNode::enqueue(NodeId from, proto::Message m) {
  {
    std::lock_guard lk(mu_);
    inbox_.push_back(Incoming{from, std::move(m)});
  }
  cv_.notify_all();
}

void RtNode::send(NodeId to, proto::Message m) {
  router_.route(self_, to, std::move(m));
}

void RtNode::reply(ClientId client, proto::Message m) {
  router_.route_to_client(self_, client, std::move(m));
}

void RtNode::set_timer(Duration delay, std::uint64_t timer_id) {
  // Only ever called from the node thread (within a handler); no lock needed.
  timers_.push(Timer{steady_now_us() + delay, timer_id});
}

void RtNode::run() {
  engine_->start();
  std::unique_lock lk(mu_);
  while (true) {
    // Fire due timers first (engine calls run unlocked; the engine is only
    // ever touched from this thread).
    while (!timers_.empty() && timers_.top().at <= steady_now_us()) {
      const std::uint64_t id = timers_.top().id;
      timers_.pop();
      lk.unlock();
      engine_->on_timer(id);
      lk.lock();
    }
    if (stopping_) break;
    if (!inbox_.empty()) {
      Incoming in = std::move(inbox_.front());
      inbox_.pop_front();
      lk.unlock();
      engine_->handle_message(in.from, std::move(in.msg));
      lk.lock();
      continue;
    }
    if (timers_.empty()) {
      cv_.wait(lk, [this] { return stopping_ || !inbox_.empty(); });
    } else {
      const auto deadline = kEpoch + std::chrono::microseconds(timers_.top().at);
      cv_.wait_until(lk, deadline,
                     [this] { return stopping_ || !inbox_.empty(); });
    }
  }
}

}  // namespace pocc::rt
