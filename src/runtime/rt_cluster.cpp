#include "runtime/rt_cluster.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/assert.hpp"
#include "store/key_space.hpp"
#include "cure/cure_server.hpp"
#include "ha/ha_pocc_server.hpp"
#include "pocc/pocc_server.hpp"

namespace pocc::rt {

// ----------------------------------------------------------- Session ----

Session::Session(ClientId id, DcId dc, NodeId home, Cluster& cluster)
    : engine_(id, dc, cluster.config().topology.num_dcs,
              /*snapshot_rdv=*/cluster.config().system == System::kCure),
      home_(home),
      cluster_(cluster) {}

void Session::deliver(proto::Message m) {
  {
    std::lock_guard lk(mu_);
    if (std::holds_alternative<proto::SessionClosed>(m)) {
      closed_signal_ = true;
    } else {
      reply_ = std::move(m);
    }
  }
  cv_.notify_all();
}

std::optional<proto::Message> Session::await_reply(Duration timeout_us) {
  std::unique_lock lk(mu_);
  cv_.wait_for(lk, std::chrono::microseconds(timeout_us),
               [this] { return reply_.has_value() || closed_signal_; });
  if (closed_signal_) {
    closed_signal_ = false;
    reply_.reset();
    engine_.reinitialize_pessimistic();
    return std::nullopt;
  }
  std::optional<proto::Message> r = std::move(reply_);
  reply_.reset();
  return r;
}

Session::GetResult Session::get(const std::string& key, Duration timeout_us) {
  const auto& topo = cluster_.config().topology;
  const KeyId id = store::intern_key(key);
  proto::GetReq req = engine_.make_get(id);
  cluster_.route(home_,
                 NodeId{engine_.dc(), store::KeySpace::global().partition(
                                          id, topo.partitions_per_dc,
                                          topo.partition_scheme)},
                 std::move(req));
  GetResult r;
  auto reply = await_reply(timeout_us);
  if (!reply.has_value()) {
    r.session_closed = engine_.pessimistic();
    return r;
  }
  const auto& get_reply = std::get<proto::GetReply>(*reply);
  engine_.absorb_get(get_reply);
  r.ok = true;
  r.found = get_reply.item.found;
  r.value = get_reply.item.value;
  r.ut = get_reply.item.ut;
  r.sr = get_reply.item.sr;
  r.blocked_us = get_reply.blocked_us;
  return r;
}

Session::PutResult Session::put(const std::string& key,
                                const std::string& value,
                                Duration timeout_us) {
  const auto& topo = cluster_.config().topology;
  const KeyId id = store::intern_key(key);
  proto::PutReq req = engine_.make_put(id, value);
  cluster_.route(home_,
                 NodeId{engine_.dc(), store::KeySpace::global().partition(
                                          id, topo.partitions_per_dc,
                                          topo.partition_scheme)},
                 std::move(req));
  PutResult r;
  auto reply = await_reply(timeout_us);
  if (!reply.has_value()) {
    r.session_closed = engine_.pessimistic();
    return r;
  }
  const auto& put_reply = std::get<proto::PutReply>(*reply);
  engine_.absorb_put(put_reply);
  r.ok = true;
  r.ut = put_reply.ut;
  return r;
}

Session::TxResult Session::ro_tx(const std::vector<std::string>& keys,
                                 Duration timeout_us) {
  std::vector<KeyId> ids;
  ids.reserve(keys.size());
  for (const std::string& k : keys) ids.push_back(store::intern_key(k));
  proto::RoTxReq req = engine_.make_ro_tx(std::move(ids));
  cluster_.route(home_, NodeId{engine_.dc(), home_.part}, std::move(req));
  TxResult r;
  auto reply = await_reply(timeout_us);
  if (!reply.has_value()) {
    r.session_closed = engine_.pessimistic();
    return r;
  }
  auto& tx_reply = std::get<proto::RoTxReply>(*reply);
  engine_.absorb_ro_tx(tx_reply);
  r.ok = true;
  r.items = std::move(tx_reply.items);
  return r;
}

// ----------------------------------------------------------- Cluster ----

Cluster::Cluster(RtClusterConfig cfg) : cfg_(std::move(cfg)), rng_(cfg_.seed) {
  const auto& topo = cfg_.topology;
  nodes_.reserve(topo.total_nodes());
  for (DcId dc = 0; dc < topo.num_dcs; ++dc) {
    for (PartitionId p = 0; p < topo.partitions_per_dc; ++p) {
      const NodeId id{dc, p};
      auto node = std::make_unique<RtNode>(id, *this, cfg_.clock, rng_);
      std::unique_ptr<server::ReplicaBase> engine;
      switch (cfg_.system) {
        case System::kPocc:
          engine = std::make_unique<PoccServer>(id, topo, cfg_.protocol,
                                                cfg_.service, *node);
          break;
        case System::kCure:
          engine = std::make_unique<CureServer>(id, topo, cfg_.protocol,
                                                cfg_.service, *node);
          break;
        case System::kHaPocc:
          engine = std::make_unique<HaPoccServer>(id, topo, cfg_.protocol,
                                                  cfg_.service, *node);
          break;
      }
      node->install_engine(std::move(engine));
      nodes_.push_back(std::move(node));
    }
  }
  delay_thread_ = std::thread([this] { delay_line_run(); });
  for (auto& node : nodes_) node->start();
  started_ = true;
}

Cluster::~Cluster() { shutdown(); }

void Cluster::shutdown() {
  if (!started_) return;
  started_ = false;
  for (auto& node : nodes_) node->stop();
  {
    std::lock_guard lk(net_mu_);
    net_stopping_ = true;
  }
  net_cv_.notify_all();
  if (delay_thread_.joinable()) delay_thread_.join();
}

RtNode& Cluster::node_at(NodeId id) {
  const std::size_t idx = id.flat_index(cfg_.topology.partitions_per_dc);
  POCC_ASSERT(idx < nodes_.size());
  return *nodes_[idx];
}

Session& Cluster::connect(DcId dc) {
  POCC_ASSERT(dc < cfg_.topology.num_dcs);
  std::lock_guard lk(net_mu_);
  const ClientId id = next_client_id_++;
  auto session =
      std::unique_ptr<Session>(new Session(id, dc, NodeId{dc, 0}, *this));
  session_index_[id] = session.get();
  sessions_.push_back(std::move(session));
  return *sessions_.back();
}

Duration Cluster::link_delay(DcId a, DcId b) const {
  return a == b ? cfg_.intra_dc_delay_us : cfg_.inter_dc_delay_us;
}

void Cluster::route(NodeId from, NodeId to, proto::Message m) {
  Pending p;
  p.from = from;
  p.to = to;
  p.client = 0;
  p.msg = std::move(m);
  {
    std::lock_guard lk(net_mu_);
    if (partitions_.contains({std::min(from.dc, to.dc),
                              std::max(from.dc, to.dc)})) {
      p.deliver_at = 0;
      blocked_.push_back(std::move(p));
      return;
    }
    p.deliver_at = steady_now_us() + link_delay(from.dc, to.dc);
    delay_line_.push(std::move(p));
  }
  net_cv_.notify_all();
}

void Cluster::route_to_client(NodeId from, ClientId client,
                              proto::Message m) {
  Pending p;
  p.from = from;
  p.client = client;
  p.msg = std::move(m);
  {
    std::lock_guard lk(net_mu_);
    p.deliver_at = steady_now_us() + cfg_.intra_dc_delay_us;
    delay_line_.push(std::move(p));
  }
  net_cv_.notify_all();
}

void Cluster::delay_line_run() {
  std::unique_lock lk(net_mu_);
  while (true) {
    if (net_stopping_) break;
    if (delay_line_.empty()) {
      net_cv_.wait(lk, [this] { return net_stopping_ || !delay_line_.empty(); });
      continue;
    }
    const Timestamp next_at = delay_line_.top().deliver_at;
    if (next_at > steady_now_us()) {
      net_cv_.wait_for(lk, std::chrono::microseconds(
                               next_at - steady_now_us()));
      continue;
    }
    Pending p = std::move(const_cast<Pending&>(delay_line_.top()));
    delay_line_.pop();
    lk.unlock();
    if (p.client != 0) {
      Session* s = nullptr;
      {
        std::lock_guard slk(net_mu_);
        auto it = session_index_.find(p.client);
        if (it != session_index_.end()) s = it->second;
      }
      if (s != nullptr) s->deliver(std::move(p.msg));
    } else {
      node_at(p.to).enqueue(p.from, std::move(p.msg));
    }
    lk.lock();
  }
}

void Cluster::partition_dcs(DcId a, DcId b) {
  if (a == b) return;
  std::lock_guard lk(net_mu_);
  partitions_.insert({std::min(a, b), std::max(a, b)});
}

void Cluster::heal_dcs(DcId a, DcId b) {
  std::vector<Pending> to_flush;
  {
    std::lock_guard lk(net_mu_);
    partitions_.erase({std::min(a, b), std::max(a, b)});
    for (auto it = blocked_.begin(); it != blocked_.end();) {
      const DcId fd = it->from.dc;
      const DcId td = it->to.dc;
      if ((fd == a && td == b) || (fd == b && td == a)) {
        to_flush.push_back(std::move(*it));
        it = blocked_.erase(it);
      } else {
        ++it;
      }
    }
    // Flush in the original order to preserve FIFO.
    Timestamp at = steady_now_us() + link_delay(a, b);
    for (auto& p : to_flush) {
      p.deliver_at = at++;
      delay_line_.push(std::move(p));
    }
  }
  net_cv_.notify_all();
}

bool Cluster::has_active_partitions() const {
  std::lock_guard lk(net_mu_);
  return !partitions_.empty();
}

}  // namespace pocc::rt
