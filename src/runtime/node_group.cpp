#include "runtime/node_group.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/assert.hpp"
#include "wal/wal_format.hpp"

namespace pocc::rt {

NodeGroup::NodeGroup(DcId dc, std::vector<PartitionId> parts, Router& router,
                     Options options)
    : dc_(dc),
      parts_(std::move(parts)),
      router_(router),
      opt_(options),
      rng_(options.seed ^ (0x9e3779b97f4a7c15ULL * (dc + 1))) {
  POCC_ASSERT_MSG(!parts_.empty(), "a node group hosts at least one partition");
  std::sort(parts_.begin(), parts_.end());
  POCC_ASSERT_MSG(
      std::adjacent_find(parts_.begin(), parts_.end()) == parts_.end(),
      "duplicate partition in the node group");

  std::uint32_t threads = opt_.threads;
  if (threads == 0) threads = static_cast<std::uint32_t>(parts_.size());
  threads = std::min<std::uint32_t>(
      threads, static_cast<std::uint32_t>(parts_.size()));
  for (std::uint32_t w = 0; w < threads; ++w) {
    workers_.push_back(std::make_unique<Worker>());
    workers_.back()->index = w;
    if (opt_.registry != nullptr) {
      // One histogram shard per worker per op: repeated registration of the
      // same (name, labels) yields a fresh cell, merged at scrape time.
      Worker& wk = *workers_.back();
      wk.lat_get = opt_.registry->histogram(
          "pocc_server_op_us", {{"op", "get"}},
          "Server-side request latency at the engine seam (us)");
      wk.lat_put = opt_.registry->histogram("pocc_server_op_us",
                                            {{"op", "put"}});
      wk.lat_tx = opt_.registry->histogram("pocc_server_op_us",
                                           {{"op", "ro_tx"}});
    }
  }
  POCC_ASSERT_MSG(!opt_.driven || opt_.wake != nullptr,
                  "driven mode needs a wake callback");

  by_part_.assign(parts_.back() + 1, nullptr);
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    auto slot = std::make_unique<Slot>(*this, NodeId{dc_, parts_[i]},
                                       opt_.clock, rng_);
    // Thread affinity: partition i of the group always lives on worker
    // i mod M — the engine is only ever touched by that worker.
    Worker& w = *workers_[i % workers_.size()];
    slot->worker = &w;
    if (opt_.wal != nullptr) slot->wal = &opt_.wal->wal_for(parts_[i]);
    w.slots.push_back(slot.get());
    by_part_[parts_[i]] = slot.get();
    slots_.push_back(std::move(slot));
  }
}

NodeGroup::~NodeGroup() { stop(); }

NodeGroup::Slot::Slot(NodeGroup& g, NodeId self_id,
                      const ClockConfig& clock_cfg, Rng& seeder)
    : group(g), self(self_id), clock(clock_cfg, seeder) {}

void NodeGroup::Slot::send(NodeId to, proto::Message m) {
  if (wal != nullptr && wal->unsynced_bytes() > 0) {
    // Output commit: this send may depend on records a crash could still
    // lose. Park it until the covering group commit (flush_durability).
    // Sibling-partition sends are held too — a sibling could otherwise
    // leak the unsynced state to a client through its own replies.
    held.push_back(HeldOutput{false, to, 0, std::move(m)});
    return;
  }
  if (group.hosts(to)) {
    // Sibling partition in this process: a queue push, not a socket write.
    group.local_deliveries_.fetch_add(1, std::memory_order_relaxed);
    group.enqueue(self, to, std::move(m));
    return;
  }
  group.router_.route(self, to, std::move(m));
}

void NodeGroup::Slot::reply(ClientId client, proto::Message m) {
  if (wal != nullptr && wal->unsynced_bytes() > 0) {
    held.push_back(HeldOutput{true, NodeId{}, client, std::move(m)});
    return;
  }
  group.router_.route_to_client(self, client, std::move(m));
}

void NodeGroup::Slot::flush_durability() {
  if (wal == nullptr) return;
  if (wal->unsynced_bytes() > 0) wal->sync();
  if (!held.empty()) {
    // Re-route through send()/reply(): with the tail synced they go
    // straight out, in the order the handlers produced them.
    std::vector<HeldOutput> outs;
    outs.swap(held);
    for (HeldOutput& o : outs) {
      if (o.is_reply) {
        reply(o.client, std::move(o.msg));
      } else {
        send(o.to, std::move(o.msg));
      }
    }
  }
  if (wal->wants_checkpoint()) {
    // Step 1 on the owner thread: rotate, then serialize the cut — between
    // the two nothing appends (same thread), so the snapshot is exactly
    // "everything in segments < seq". Step 2 (durable write + prune) runs
    // on the manager's flusher thread.
    const std::uint64_t seq = wal->begin_checkpoint();
    group.opt_.wal->submit_checkpoint(
        wal, seq,
        wal::encode_snapshot(engine->partition_store(),
                             engine->version_vector()));
  }
}

void NodeGroup::Slot::set_timer(Duration delay, std::uint64_t timer_id) {
  // Only ever called from the owning worker's thread (within a handler), the
  // sole thread that touches the worker's timer heap — no lock needed.
  worker->timers.push(Timer{steady_now_us() + delay, this, timer_id});
}

void NodeGroup::install_engines(const EngineFactory& make) {
  for (auto& slot : slots_) {
    POCC_ASSERT_MSG(slot->engine == nullptr, "engines already installed");
    slot->engine = make(slot->self, *slot);
    POCC_ASSERT(slot->engine != nullptr);
  }
}

void NodeGroup::start() {
  POCC_ASSERT_MSG(!started_, "start() called twice");
  for (auto& slot : slots_) {
    POCC_ASSERT_MSG(slot->engine != nullptr,
                    "install_engines() must precede start()");
  }
  started_ = true;
  if (opt_.driven) return;  // the owning event loops call service()
  for (auto& w : workers_) {
    w->thread = std::thread([this, worker = w.get()] { run_worker(*worker); });
  }
}

void NodeGroup::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  if (opt_.driven) {
    // The owning loops have already been joined (the host stops the
    // transport first), so this thread is now each worker's sole toucher.
    // One final pass per worker drains what the loops left behind and
    // flushes unsynced WAL tails — the same exit-time flush the
    // thread-per-worker mode performs in run_worker.
    for (auto& w : workers_) service(w->index);
    return;
  }
  for (auto& w : workers_) {
    {
      std::lock_guard lk(w->mu);
      w->stopping = true;
    }
    w->cv.notify_all();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void NodeGroup::enqueue(NodeId from, NodeId to, proto::Message m) {
  POCC_ASSERT_MSG(hosts(to),
                  "enqueue for a partition this group does not host");
  Slot* slot = by_part_[to.part];
  Worker& w = *slot->worker;
  {
    std::lock_guard lk(w.mu);
    w.inbox.push_back(Incoming{from, slot, std::move(m)});
  }
  if (opt_.driven) {
    opt_.wake(w.index);
  } else {
    w.cv.notify_one();
  }
}

bool NodeGroup::try_enqueue(NodeId from, NodeId to, proto::Message m) {
  POCC_ASSERT_MSG(hosts(to),
                  "enqueue for a partition this group does not host");
  Slot* slot = by_part_[to.part];
  Worker& w = *slot->worker;
  {
    std::lock_guard lk(w.mu);
    if (opt_.max_inbox_messages > 0 &&
        w.inbox.size() >= opt_.max_inbox_messages) {
      return false;
    }
    w.inbox.push_back(Incoming{from, slot, std::move(m)});
  }
  if (opt_.driven) {
    opt_.wake(w.index);
  } else {
    w.cv.notify_one();
  }
  return true;
}

std::size_t NodeGroup::inbox_depth(PartitionId part) const {
  POCC_ASSERT(hosts(NodeId{dc_, part}));
  Worker& w = *by_part_[part]->worker;
  std::lock_guard lk(w.mu);
  return w.inbox.size();
}

server::ReplicaBase& NodeGroup::engine(PartitionId part) {
  POCC_ASSERT(hosts(NodeId{dc_, part}));
  return *by_part_[part]->engine;
}

NodeGroupStats NodeGroup::stats() const {
  NodeGroupStats s;
  for (const auto& slot : slots_) {
    if (slot->engine == nullptr) continue;
    s.gets += slot->engine->gets_served();
    s.puts += slot->engine->puts_served();
    s.slices += slot->engine->slices_served();
    s.parked += slot->engine->parked_requests();
  }
  s.local_deliveries = local_deliveries_.load(std::memory_order_relaxed);
  return s;
}

std::uint32_t NodeGroup::worker_of(PartitionId part) const {
  POCC_ASSERT(hosts(NodeId{dc_, part}));
  return by_part_[part]->worker->index;
}

Timestamp NodeGroup::service(std::uint32_t worker) {
  POCC_ASSERT(worker < workers_.size());
  Worker& w = *workers_[worker];
  // Engine timer arming (start()) must run on the owner thread: it calls
  // set_timer, which touches this worker's heap. Lazily on the first pass
  // so driven loops need no separate startup hook.
  if (!w.engines_started) {
    w.engines_started = true;
    for (Slot* slot : w.slots) slot->engine->start();
  }
  while (true) {
    // Fire due timers first; engine calls run with no lock held (the
    // engine and the timer heap belong to this thread alone).
    while (!w.timers.empty() && w.timers.top().at <= steady_now_us()) {
      const Timer t = w.timers.top();
      w.timers.pop();
      t.slot->engine->on_timer(t.id);
    }
    // Group-commit anything the timer callbacks appended (heartbeat VV
    // raises) before returning to the loop's sleep — held outputs must
    // never straddle a wait.
    if (std::any_of(w.slots.begin(), w.slots.end(),
                    [](const Slot* s) { return s->needs_flush(); })) {
      for (Slot* slot : w.slots) slot->flush_durability();
    }
    bool drained = false;
    {
      std::lock_guard lk(w.mu);
      if (w.stopping) break;
      if (!w.inbox.empty()) {
        // Swap-drain: take the whole backlog in ONE lock cycle instead of
        // a mutex round-trip per message — a 64-message Batch frame
        // enqueues 64 items back-to-back, and producers must not contend
        // with the drain.
        std::swap(w.backlog, w.inbox);
        drained = true;
      }
    }
    if (!drained) break;
    while (!w.backlog.empty()) {
      Incoming in = w.backlog.pop_front();
      // Server-side op latency at the engine seam: time only the
      // client-visible request types, and only when a registry is wired
      // (one steady-clock read pair per timed message).
      stats::HistogramCell* cell = nullptr;
      if (w.lat_get != nullptr) {
        if (std::holds_alternative<proto::GetReq>(in.msg)) {
          cell = w.lat_get;
        } else if (std::holds_alternative<proto::PutReq>(in.msg)) {
          cell = w.lat_put;
        } else if (std::holds_alternative<proto::RoTxReq>(in.msg)) {
          cell = w.lat_tx;
        }
      }
      if (cell == nullptr) {
        in.slot->engine->handle_message(in.from, std::move(in.msg));
      } else {
        const Timestamp t0 = steady_now_us();
        in.slot->engine->handle_message(in.from, std::move(in.msg));
        cell->record(static_cast<std::int64_t>(steady_now_us() - t0));
      }
    }
    // One fdatasync covers the whole drained batch (group commit), then
    // the batch's replies and sends leave together.
    for (Slot* slot : w.slots) slot->flush_durability();
  }
  return w.timers.empty() ? 0 : w.timers.top().at;
}

void NodeGroup::run_worker(Worker& w) {
  while (true) {
    const Timestamp next = service(w.index);
    std::unique_lock lk(w.mu);
    if (w.stopping) break;
    if (!w.inbox.empty()) continue;  // raced a producer; go again
    if (next == 0) {
      w.cv.wait(lk, [&w] { return w.stopping || !w.inbox.empty(); });
    } else {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(next - steady_now_us());
      w.cv.wait_until(lk, deadline,
                      [&w] { return w.stopping || !w.inbox.empty(); });
    }
  }
}

}  // namespace pocc::rt
