// Multi-partition, multi-threaded runtime host: every partition engine of
// one data center lives in ONE process, pinned onto a pool of worker
// threads. This is the DC-scale generalization of rt::RtNode (one thread =
// one engine), and what a `poccd` process hosts since the 3-process
// deployment (one process per DC) replaced the one-process-per-partition
// layout.
//
// Threading model (docs/ARCHITECTURE.md, "Threading model"):
//   * partitions are THREAD-AFFINE: partition p is served by worker
//     p mod M forever — an engine's state (PartitionStore, VV, parking lot)
//     is only ever touched by its worker, so the protocol hot path takes no
//     locks beyond each worker's inbox mutex;
//   * each worker owns one MPSC inbox (common::Ring under a mutex — the same
//     ring the simulator's CpuQueue uses) fed by the TCP transport thread
//     and by sibling workers;
//   * cross-partition messages between two partitions of the group never
//     touch a socket: Slot::send() detects a locally-hosted destination and
//     pushes straight into the target worker's inbox (the intra-DC
//     SliceReq/GC/stabilization traffic of Alg. 2 becomes a queue push);
//   * timers are per-worker (armed and fired only on the owning worker
//     thread, like rt::RtNode).
//
// Everything leaving the group — messages to other processes and client
// replies — flows through the rt::Router seam, exactly as with RtNode; the
// TCP host batches those per peer link (net/tcp_node_host.hpp).
#pragma once

#include <condition_variable>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "clock/physical_clock.hpp"
#include "common/config.hpp"
#include "common/ring.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "proto/messages.hpp"
#include "runtime/rt_node.hpp"
#include "server/context.hpp"
#include "server/replica_base.hpp"
#include "stats/registry.hpp"
#include "wal/wal_manager.hpp"

namespace pocc::rt {

/// Aggregate over every engine of the group (poccd exit stats, tests).
struct NodeGroupStats {
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t slices = 0;
  std::uint64_t parked = 0;
  /// Cross-partition messages delivered in-process (never hit a socket).
  std::uint64_t local_deliveries = 0;
};

class NodeGroup {
 public:
  struct Options {
    /// Worker threads the partitions are pinned onto (clamped to the number
    /// of partitions; 0 means one worker per partition).
    std::uint32_t threads = 1;
    ClockConfig clock = ClockConfig::perfect();
    std::uint64_t seed = 1;
    /// When set, every hosted partition writes a WAL under the manager's
    /// data directory, with OUTPUT COMMIT: a worker withholds the replies
    /// and sends a handler produces while its partition's WAL holds
    /// unsynced records, group-commits (one fdatasync per drained batch)
    /// at the end of each drain cycle, and only then releases the held
    /// outputs in order. Nothing externally visible ever depends on state
    /// a crash could lose. nullptr = no durability (simulator, tests,
    /// --no-durability).
    wal::WalManager* wal = nullptr;
    /// Bounded admission: try_enqueue() refuses new work once the target
    /// worker's inbox holds this many messages (0 = unbounded). Only the
    /// droppable admission class (client requests via try_enqueue) is
    /// refused; enqueue() — server-to-server traffic whose loss would
    /// violate the lossless FIFO channel assumption — always delivers.
    std::size_t max_inbox_messages = 0;
    /// Driven mode: the group spawns NO worker threads. An external event
    /// loop owns each worker and calls service(w) from its thread (the
    /// sharded TCP transport runs worker w on loop w: socket → decode →
    /// engine with zero cross-thread hops for pinned connections). enqueue
    /// from a foreign thread then signals readiness through `wake` instead
    /// of a condition variable.
    bool driven = false;
    /// Driven mode only: called (possibly from any thread, including the
    /// worker's own) when worker `w` gained inbox work and its loop must
    /// schedule a service(w) pass.
    std::function<void(std::uint32_t)> wake;
    /// When set, each worker registers one shard of the server-side
    /// `pocc_server_op_us{op=get|put|ro_tx}` latency histograms and times
    /// client-visible requests around handle_message (the engine seam).
    /// Must outlive the group. nullptr = no op-latency accounting.
    stats::Registry* registry = nullptr;
  };

  /// Builds one engine bound to `ctx` (its partition-private Context).
  using EngineFactory = std::function<std::unique_ptr<server::ReplicaBase>(
      NodeId, server::Context&)>;

  /// The group hosts `parts` of data center `dc`; `router` carries
  /// everything addressed outside the group.
  NodeGroup(DcId dc, std::vector<PartitionId> parts, Router& router,
            Options options);
  ~NodeGroup();

  NodeGroup(const NodeGroup&) = delete;
  NodeGroup& operator=(const NodeGroup&) = delete;

  /// Instantiate every partition's engine. Call once, before start().
  void install_engines(const EngineFactory& make);

  void start();
  void stop();

  [[nodiscard]] DcId dc() const { return dc_; }
  [[nodiscard]] const std::vector<PartitionId>& partitions() const {
    return parts_;
  }
  [[nodiscard]] std::uint32_t threads() const {
    return static_cast<std::uint32_t>(workers_.size());
  }
  [[nodiscard]] bool hosts(NodeId node) const {
    return node.dc == dc_ && node.part < by_part_.size() &&
           by_part_[node.part] != nullptr;
  }

  /// Deliver one message to a hosted partition (thread-safe; the TCP host
  /// calls this from the transport thread, workers from each other).
  void enqueue(NodeId from, NodeId to, proto::Message m);

  /// Admission-controlled variant for droppable work (client requests):
  /// refuses (returns false, message untouched beyond the move) when the
  /// target worker's inbox is at Options::max_inbox_messages. The caller
  /// owns the refusal path (an Overloaded reply). Thread-safe.
  [[nodiscard]] bool try_enqueue(NodeId from, NodeId to, proto::Message m);

  /// Driven mode: run one scheduling pass of worker `w` — fire due timers,
  /// drain the inbox to empty (group-committing per drained batch), flush
  /// durability — and return the earliest pending timer deadline (0 = none)
  /// so the owning loop can bound its sleep. MUST always be called from the
  /// same thread per worker (that thread becomes the worker's owner; the
  /// engines and timer heap are touched from it exclusively). Also the
  /// internal core of the thread-per-worker mode.
  Timestamp service(std::uint32_t worker);

  /// Index of the worker thread/loop that owns `part` (stable for the
  /// group's lifetime — the pinning target for inbound client connections).
  [[nodiscard]] std::uint32_t worker_of(PartitionId part) const;

  /// Current depth of the worker inbox serving `part` (thread-safe; a
  /// load-shedding signal, instantaneously stale like any queue depth).
  [[nodiscard]] std::size_t inbox_depth(PartitionId part) const;

  /// Engine access for post-shutdown inspection (not thread-safe while
  /// running).
  server::ReplicaBase& engine(PartitionId part);

  /// Sum over all hosted engines. Only stable after stop() — engine counters
  /// belong to their worker threads while running.
  [[nodiscard]] NodeGroupStats stats() const;

  /// Cross-partition messages delivered in-process so far (thread-safe).
  [[nodiscard]] std::uint64_t local_deliveries() const {
    return local_deliveries_.load(std::memory_order_relaxed);
  }

 private:
  struct Worker;

  /// Per-partition server::Context: the engine's private seam to its clock,
  /// its worker's timer heap and the group's routing.
  struct Slot final : server::Context {
    Slot(NodeGroup& group, NodeId self, const ClockConfig& clock_cfg,
         Rng& seeder);

    Timestamp clock_now() override { return clock.read(steady_now_us()); }
    Timestamp clock_peek() override { return clock.peek(steady_now_us()); }
    Timestamp time() override { return steady_now_us(); }
    void send(NodeId to, proto::Message m) override;
    void reply(ClientId client, proto::Message m) override;
    void set_timer(Duration delay, std::uint64_t timer_id) override;
    server::DurabilityLog* durability() override { return wal; }

    /// True when the group-commit pass has work for this slot.
    [[nodiscard]] bool needs_flush() const {
      return wal != nullptr && (wal->unsynced_bytes() > 0 || !held.empty() ||
                                wal->wants_checkpoint());
    }
    /// Owner thread, unlocked: sync the WAL, release held outputs in
    /// order, and hand a due checkpoint to the background flusher.
    void flush_durability();

    /// An output produced while the WAL tail was unsynced, parked until
    /// the covering group commit lands.
    struct HeldOutput {
      bool is_reply = false;
      NodeId to;
      ClientId client = 0;
      proto::Message msg;
    };

    NodeGroup& group;
    NodeId self;
    PhysicalClock clock;
    Worker* worker = nullptr;
    std::unique_ptr<server::ReplicaBase> engine;
    wal::PartitionWal* wal = nullptr;  // owned by Options::wal's manager
    std::vector<HeldOutput> held;
  };

  struct Incoming {
    NodeId from;
    Slot* slot = nullptr;
    proto::Message msg;
  };
  struct Timer {
    Timestamp at = 0;
    Slot* slot = nullptr;
    std::uint64_t id = 0;
    bool operator>(const Timer& o) const { return at > o.at; }
  };

  struct Worker {
    std::uint32_t index = 0;
    std::mutex mu;
    std::condition_variable cv;
    common::Ring<Incoming> inbox;  // MPSC: any thread pushes, owner pops
    bool stopping = false;
    // Armed and fired exclusively on this worker's owner thread, as is
    // everything below (no lock).
    std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers;
    std::vector<Slot*> slots;
    common::Ring<Incoming> backlog;  // swap-drain scratch (owner thread)
    bool engines_started = false;
    // This worker's shards of the op-latency histograms (nullptr without
    // Options::registry). Each worker records only into its own cells, so
    // the cell mutexes are uncontended except during a scrape merge.
    stats::HistogramCell* lat_get = nullptr;
    stats::HistogramCell* lat_put = nullptr;
    stats::HistogramCell* lat_tx = nullptr;
    std::thread thread;  // empty in driven mode
  };

  void run_worker(Worker& w);

  DcId dc_;
  std::vector<PartitionId> parts_;
  Router& router_;
  Options opt_;
  Rng rng_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<Slot*> by_part_;  // index: PartitionId
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::uint64_t> local_deliveries_{0};
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace pocc::rt
