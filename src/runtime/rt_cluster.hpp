// In-process multi-threaded deployment of the protocol engines: a real
// (wall-clock) geo-replicated store in miniature. Inter-DC links get an
// artificial delay via a delay-line thread; DC partitions can be injected and
// healed at runtime, with buffered (lossless FIFO) delivery on heal.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "client/client_engine.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "proto/messages.hpp"
#include "runtime/rt_node.hpp"

namespace pocc::rt {

class Cluster;

enum class System { kPocc, kCure, kHaPocc };

struct RtClusterConfig {
  TopologyConfig topology{3, 4, PartitionScheme::kHash};
  ClockConfig clock = ClockConfig::perfect();
  ProtocolConfig protocol;
  ServiceConfig service;  // cost model unused at runtime, kept for symmetry
  System system = System::kPocc;
  Duration intra_dc_delay_us = 200;
  Duration inter_dc_delay_us = 20'000;
  std::uint64_t seed = 1;
};

/// Blocking client session against the runtime cluster (sticky to one DC).
class Session {
 public:
  struct GetResult {
    bool ok = false;
    bool session_closed = false;
    bool found = false;
    std::string value;
    Timestamp ut = 0;
    DcId sr = 0;
    Duration blocked_us = 0;
  };
  struct PutResult {
    bool ok = false;
    bool session_closed = false;
    Timestamp ut = 0;
  };
  struct TxResult {
    bool ok = false;
    bool session_closed = false;
    std::vector<proto::ReadItem> items;
  };

  GetResult get(const std::string& key, Duration timeout_us = 10'000'000);
  PutResult put(const std::string& key, const std::string& value,
                Duration timeout_us = 10'000'000);
  TxResult ro_tx(const std::vector<std::string>& keys,
                 Duration timeout_us = 10'000'000);

  [[nodiscard]] ClientId id() const { return engine_.id(); }
  [[nodiscard]] bool pessimistic() const { return engine_.pessimistic(); }
  client::ClientEngine& engine() { return engine_; }

 private:
  friend class Cluster;
  Session(ClientId id, DcId dc, NodeId home, Cluster& cluster);
  void deliver(proto::Message m);
  std::optional<proto::Message> await_reply(Duration timeout_us);

  client::ClientEngine engine_;
  NodeId home_;
  Cluster& cluster_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::optional<proto::Message> reply_;
  bool closed_signal_ = false;
};

class Cluster final : public Router {
 public:
  explicit Cluster(RtClusterConfig cfg);
  ~Cluster() override;

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Open a blocking client session in `dc` (collocated with partition 0).
  Session& connect(DcId dc);

  // --- fault injection ---
  void partition_dcs(DcId a, DcId b);
  void heal_dcs(DcId a, DcId b);
  [[nodiscard]] bool has_active_partitions() const;

  /// Stop all node threads (destructor does this too).
  void shutdown();

  [[nodiscard]] const RtClusterConfig& config() const { return cfg_; }

 private:
  friend class RtNode;
  friend class Session;

  // rt::Router: deliveries go onto the delay line (and the partition buffer
  // while the DCs involved are partitioned).
  void route(NodeId from, NodeId to, proto::Message m) override;
  void route_to_client(NodeId from, ClientId client,
                       proto::Message m) override;
  void delay_line_run();
  [[nodiscard]] Duration link_delay(DcId a, DcId b) const;
  RtNode& node_at(NodeId id);

  struct Pending {
    Timestamp deliver_at;
    NodeId from;
    NodeId to;          // valid when client == 0
    ClientId client;    // != 0 for client deliveries
    proto::Message msg;
  };
  struct PendingLater {
    bool operator()(const Pending& a, const Pending& b) const {
      return a.deliver_at > b.deliver_at;
    }
  };

  RtClusterConfig cfg_;
  Rng rng_;
  std::vector<std::unique_ptr<RtNode>> nodes_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::unordered_map<ClientId, Session*> session_index_;
  ClientId next_client_id_ = 1;
  bool started_ = false;

  mutable std::mutex net_mu_;
  std::condition_variable net_cv_;
  std::priority_queue<Pending, std::vector<Pending>, PendingLater> delay_line_;
  std::set<std::pair<DcId, DcId>> partitions_;
  std::vector<Pending> blocked_;  // buffered during partitions
  bool net_stopping_ = false;
  std::thread delay_thread_;
};

}  // namespace pocc::rt
