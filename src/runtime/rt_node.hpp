// Threaded runtime host: one OS thread per server node, driving the very same
// protocol engines as the discrete-event host. Used by the examples, the
// wall-clock integration tests and — through the Router seam — the TCP
// deployment (net/tcp_node_host.hpp): the node thread is identical whether
// its messages cross a mutex (rt::Cluster) or a socket (poccd).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <variant>

#include "clock/physical_clock.hpp"
#include "common/config.hpp"
#include "common/types.hpp"
#include "proto/messages.hpp"
#include "server/context.hpp"
#include "server/replica_base.hpp"

namespace pocc::rt {

/// Wall-clock microseconds on a monotonic clock, shared by every node.
Timestamp steady_now_us();

/// Where a node's outbound messages go. The in-process rt::Cluster routes
/// them onto its delay line; the TCP host encodes them onto sockets. `from`
/// is always the sending node (kept explicit so a router can serve several
/// nodes).
class Router {
 public:
  virtual ~Router() = default;
  virtual void route(NodeId from, NodeId to, proto::Message m) = 0;
  virtual void route_to_client(NodeId from, ClientId client,
                               proto::Message m) = 0;
};

class RtNode final : public server::Context {
 public:
  RtNode(NodeId self, Router& router, const ClockConfig& clock_cfg,
         Rng& seeder);
  ~RtNode() override;

  RtNode(const RtNode&) = delete;
  RtNode& operator=(const RtNode&) = delete;

  void install_engine(std::unique_ptr<server::ReplicaBase> engine);
  void start();
  void stop();

  [[nodiscard]] NodeId id() const { return self_; }
  /// Engine access for post-shutdown inspection (not thread-safe while
  /// running).
  server::ReplicaBase& engine() { return *engine_; }

  /// Enqueue a message for this node's thread.
  void enqueue(NodeId from, proto::Message m);

  // --- server::Context (called only from this node's thread) ---
  Timestamp clock_now() override { return clock_.read(steady_now_us()); }
  Timestamp clock_peek() override { return clock_.peek(steady_now_us()); }
  Timestamp time() override { return steady_now_us(); }
  void send(NodeId to, proto::Message m) override;
  void reply(ClientId client, proto::Message m) override;
  void set_timer(Duration delay, std::uint64_t timer_id) override;

 private:
  struct Incoming {
    NodeId from;
    proto::Message msg;
  };
  struct Timer {
    Timestamp at;
    std::uint64_t id;
    bool operator>(const Timer& o) const { return at > o.at; }
  };

  void run();

  NodeId self_;
  Router& router_;
  PhysicalClock clock_;
  std::unique_ptr<server::ReplicaBase> engine_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Incoming> inbox_;
  bool stopping_ = false;

  // Timers are armed and fired exclusively on the node thread.
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;

  std::thread thread_;
};

}  // namespace pocc::rt
