// Shared machinery for the POCC and Cure* server engines.
//
// Both systems share (paper §V: "the two mainly differ in that POCC does not
// run any stabilization protocol and does not need to search for a stable
// version of a key when serving a GET"):
//   * the multiversion store and LWW convergent conflict handling,
//   * the PUT path (clock wait, version creation, asynchronous replication in
//     timestamp order),
//   * update replication and heartbeats driving the version vector,
//   * the RO-TX coordinator/slice structure,
//   * the intra-DC garbage-collection exchange.
// They differ in the visibility rule and in the wait conditions, expressed
// here as virtual hooks overridden by PoccServer / CureServer / HaPoccServer.
//
// Every handler returns the CPU time it consumed (per the ServiceConfig cost
// model); the discrete-event host feeds this into the node's CpuQueue.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "proto/messages.hpp"
#include "server/context.hpp"
#include "server/parking_lot.hpp"
#include "stats/metrics.hpp"
#include "store/partition_store.hpp"
#include "vclock/version_vector.hpp"

namespace pocc::server {

/// Timer identifiers used by engines (hosts just echo them back).
enum TimerId : std::uint64_t {
  kTimerHeartbeat = 1,
  kTimerGc = 2,
  kTimerStabilization = 3,
  kTimerClockWait = 4,
  kTimerExpire = 5,
};

class ReplicaBase {
 public:
  ReplicaBase(NodeId self, const TopologyConfig& topology,
              const ProtocolConfig& protocol, const ServiceConfig& service,
              Context& ctx);
  virtual ~ReplicaBase() = default;

  ReplicaBase(const ReplicaBase&) = delete;
  ReplicaBase& operator=(const ReplicaBase&) = delete;

  /// Arm periodic timers. Call once before the first event.
  virtual void start();

  /// Crash recovery (fault injection): drop every piece of volatile (RAM)
  /// state — parked requests, pending transaction coordination, aggregation
  /// buffers, armed-wakeup bookkeeping. Durable state (the multiversion
  /// store, VV, GSS — metadata a real deployment checkpoints with the store)
  /// survives. The host re-arms timers via start() afterwards; missed remote
  /// updates are recovered from peer replicas by the cluster host.
  virtual void recover();

  // --- WAL restore + peer recovery (src/wal/, net/tcp_node_host.cpp) ---

  /// Re-install one version from a WAL/snapshot replay: idempotent store
  /// insert (the chain dedupes on (ut, sr)) + VV raise — exactly what
  /// serve_put/on_replicate did originally, minus replication, observers and
  /// durability logging. Only legal before start().
  void restore_version(const store::Version& v);

  /// Merge a WAL-replayed VV record (heartbeat-driven raises).
  void restore_vv(const VersionVector& vv);

  /// Ask every sibling replica for the replication suffix lost past the
  /// durable cut (vv_ as restored): sends RecoveryReq per peer DC and arms
  /// recovery_complete(). Also makes on_replicate tolerate below-VV
  /// duplicates permanently: recovery answers and live replication race on
  /// independent FIFO links, so the timestamp-order invariant of a single
  /// channel no longer covers the merged stream. Heartbeats stay muted for
  /// up to `heartbeat_gate_us` while RecoveryDones are outstanding: a
  /// heartbeat promises "every update <= ts was sent", and right after a
  /// crash some of those sends died in flight — broadcasting the restored
  /// clock before on_recovery_done() pushed the repair suffix would raise
  /// peer VVs past versions they never received.
  void begin_peer_recovery(Duration heartbeat_gate_us = 10'000'000);

  /// True once every sibling's RecoveryDone was processed (vacuously true
  /// with one DC or before begin_peer_recovery()).
  [[nodiscard]] bool recovery_complete() const { return recovering_dcs_ == 0; }

  /// Versions ingested via RecoveryVersion (stats/tests).
  [[nodiscard]] std::uint64_t versions_recovered() const {
    return versions_recovered_;
  }

  /// Dispatch any message (client request, replica traffic). Returns CPU time
  /// consumed by the handler, including any parked work it resumed.
  Duration handle_message(NodeId from, proto::Message m);

  /// Timer callback. Returns CPU time consumed.
  virtual Duration on_timer(std::uint64_t timer_id);

  // --- observers (tests, metrics aggregation) ---
  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] const VersionVector& version_vector() const { return vv_; }
  [[nodiscard]] const store::PartitionStore& partition_store() const {
    return store_;
  }
  [[nodiscard]] const stats::BlockingStats& blocking_stats() const {
    return blocking_;
  }
  [[nodiscard]] const stats::StalenessStats& staleness_stats() const {
    return staleness_;
  }
  [[nodiscard]] std::size_t parked_requests() const { return lot_.size(); }
  [[nodiscard]] std::uint64_t puts_served() const { return puts_served_; }
  [[nodiscard]] std::uint64_t gets_served() const { return gets_served_; }
  [[nodiscard]] std::uint64_t slices_served() const { return slices_served_; }

  /// Min entry of the last aggregate GC vector this engine applied (the GC
  /// floor). Relaxed-published so a live scrape thread may read it.
  [[nodiscard]] std::int64_t scraped_gc_floor_us() const {
    return gc_floor_us_;
  }
  void reset_stats() {
    blocking_.reset();
    staleness_.reset();
  }

  /// Observer invoked whenever a PUT creates a version (used by the history
  /// checker to register versions the instant they become readable). The
  /// second argument is the creating PutReq's op_id (RPC framing), so the
  /// observer can attribute the version to the exact request that made it.
  using VersionObserver =
      std::function<void(ClientId, std::uint64_t, const store::Version&)>;
  void set_version_observer(VersionObserver obs) {
    version_observer_ = std::move(obs);
  }

 protected:
  // ----- protocol-specific hooks -----

  /// True when a GET can be served without stalling (POCC Alg. 2 line 2;
  /// Cure* checks the GSS instead; HA-POCC switches on req.pessimistic).
  [[nodiscard]] virtual bool get_ready(const proto::GetReq& req) const = 0;

  /// Pick the version to return for a GET and fill the measurement fields.
  /// May assume get_ready(req) holds. Must charge chain hops.
  virtual proto::ReadItem choose_get_version(const proto::GetReq& req) = 0;

  /// Snapshot vector for a read-only transaction (POCC Alg. 2 line 32:
  /// max(VV, RDV); Cure*: GSS-based).
  [[nodiscard]] virtual VersionVector compute_tx_snapshot(
      const proto::RoTxReq& req) const = 0;

  /// True when a slice against `tv` can be served (Alg. 2 line 40).
  [[nodiscard]] virtual bool slice_ready(const VersionVector& tv) const;

  /// Visibility of a version within snapshot `tv` (Alg. 2 line 43 for POCC;
  /// commit-vector rule for Cure* and for HA-POCC's pessimistic sessions).
  [[nodiscard]] virtual bool slice_visible(const store::Version& v,
                                           const VersionVector& tv,
                                           bool pessimistic) const = 0;

  /// Count of not-yet-stable versions in a chain (staleness metric). POCC has
  /// no stability notion during GETs and returns 0.
  [[nodiscard]] virtual std::uint32_t count_unmerged(
      const store::VersionChain& chain) const;

  /// Low watermark this node contributes to the GC exchange.
  [[nodiscard]] virtual VersionVector gc_watermark() const;

  /// Deadline for parked requests (0 = none). HA-POCC overrides with the
  /// partition-suspicion timeout.
  [[nodiscard]] virtual Duration park_deadline() const { return 0; }

  /// Called when a parked request expires (HA-POCC closes the session).
  virtual void on_park_timeout(ClientId client, Duration blocked_us);

  /// Extra visibility restriction applied when a *pessimistic* session reads
  /// a slice under HA-POCC (optimistically-created local items must be
  /// stable). The test MUST be a function of `v` and the transaction
  /// snapshot `tv` only — never of node-local state like the GSS: two slice
  /// nodes of one transaction can hold different GSS views, and a
  /// node-dependent predicate lets one slice return an item whose causal
  /// past a sibling slice hides, breaking the snapshot property (found by
  /// the cluster-fuzz harness).
  [[nodiscard]] virtual bool visible_to_pessimistic(
      const store::Version& v, const VersionVector& tv) const;

  /// Whether versions created by this PUT carry the optimistic-origin tag
  /// (HA-POCC §IV-C). Base protocols never tag.
  [[nodiscard]] virtual bool mark_opt_origin(const proto::PutReq& req) const;

  /// GC retention floor: true when `v` is at or below the aggregate GC vector
  /// (POCC: dv <= GV, Alg. §IV-B; Cure*: commit vector <= GV).
  [[nodiscard]] virtual bool gc_version_at_floor(const store::Version& v,
                                                 const VersionVector& gv) const;

  /// Called when a parked slice expires (HA-POCC aborts the transaction).
  virtual void on_slice_timeout(std::uint64_t tx_id, NodeId coordinator,
                                Duration blocked_us);

  // ----- shared handler implementations -----
  Duration on_get(const proto::GetReq& req);
  Duration on_put(const proto::PutReq& req);
  Duration on_replicate(const proto::Replicate& msg);
  Duration on_heartbeat(NodeId from, const proto::Heartbeat& msg);
  Duration on_ro_tx(const proto::RoTxReq& req);
  Duration on_slice_req(NodeId from, const proto::SliceReq& req);
  Duration on_slice_reply(NodeId from, const proto::SliceReply& msg);
  Duration on_gc_report(const proto::GcReport& msg);
  Duration on_gc_vector(const proto::GcVector& msg);
  virtual Duration on_stab_report(const proto::StabReport& msg);
  virtual Duration on_gss_broadcast(const proto::GssBroadcast& msg);
  Duration on_recovery_req(const proto::RecoveryReq& req);
  Duration on_recovery_version(const proto::RecoveryVersion& msg);
  Duration on_recovery_done(const proto::RecoveryDone& msg);

  void serve_get(const proto::GetReq& req, Duration blocked_us);
  [[nodiscard]] bool put_ready(const proto::PutReq& req) const;
  void serve_put(const proto::PutReq& req, Duration blocked_us);
  void dispatch_slice(std::uint64_t tx_id, NodeId coordinator,
                      const std::vector<KeyId>& keys, const VersionVector& tv,
                      bool pessimistic);
  void serve_slice(std::uint64_t tx_id, NodeId coordinator,
                   const std::vector<KeyId>& keys, const VersionVector& tv,
                   bool pessimistic, Duration blocked_us);
  void accumulate_slice(std::uint64_t tx_id,
                        std::vector<proto::ReadItem> items,
                        Duration blocked_us);
  void finish_tx_if_complete(std::uint64_t tx_id);

  /// Read a single key against snapshot `tv` (shared by slices).
  proto::ReadItem read_in_snapshot(KeyId key, const VersionVector& tv,
                                   bool pessimistic);

  /// Re-evaluate parked requests after VV/GSS/clock advances.
  void poke();

  /// Add `d` microseconds of CPU work to the current handler.
  void charge(Duration d) { work_ += d; }

  /// Arm a one-shot wakeup so clock-condition waits make progress even on an
  /// otherwise idle node.
  void arm_clock_wakeup(Timestamp clock_target);

  /// Arm the deadline timer for parked requests (HA-POCC only).
  void arm_expiry();

  [[nodiscard]] DcId local_dc() const { return self_.dc; }
  [[nodiscard]] std::int32_t skip_local() const {
    return static_cast<std::int32_t>(self_.dc);
  }
  [[nodiscard]] bool is_gc_aggregator() const { return self_.part == 0; }

  // ----- state -----
  NodeId self_;
  TopologyConfig topology_;
  ProtocolConfig protocol_;
  ServiceConfig service_;
  Context& ctx_;

  VersionVector vv_;             // version vector VV^m_n (paper §IV-A)
  store::PartitionStore store_;  // this partition's version chains
  ParkingLot lot_;

  stats::BlockingStats blocking_;
  stats::StalenessStats staleness_;
  // Relaxed so /metrics scrapes may read them while the engine thread runs.
  stats::RelaxedU64 puts_served_;
  stats::RelaxedU64 gets_served_;
  stats::RelaxedU64 slices_served_;

  stats::RelaxedI64 gc_floor_us_;  // min entry of the last applied GC vector

  /// In-flight read-only transactions this node coordinates.
  struct PendingTx {
    ClientId client = 0;
    std::uint64_t op_id = 0;  // echoed into the RoTxReply (RPC framing)
    VersionVector tv;
    std::uint32_t awaiting = 0;
    std::vector<proto::ReadItem> items;
    Duration max_blocked_us = 0;
  };
  std::unordered_map<std::uint64_t, PendingTx> pending_tx_;
  std::uint64_t next_tx_seq_ = 0;

  /// Latest GC reports per partition (aggregator role, partition 0).
  std::unordered_map<PartitionId, VersionVector> gc_reports_;

  Duration work_ = 0;  // CPU time accumulated by the current handler
  bool clock_wakeup_armed_ = false;
  Timestamp armed_clock_target_ = kTimestampMax;
  VersionObserver version_observer_;

  /// Sibling DCs whose RecoveryDone is still outstanding (peer recovery).
  std::uint32_t recovering_dcs_ = 0;
  /// Heartbeats are suppressed while recovering_dcs_ > 0 and ctx_.time() is
  /// below this mark (a dead sibling must not mute this replica forever).
  Timestamp recovery_heartbeat_gate_until_ = 0;
  /// Set by begin_peer_recovery(): on_replicate accepts versions below the
  /// VV as idempotent duplicates instead of asserting channel order.
  bool fifo_tolerant_ = false;
  std::uint64_t versions_recovered_ = 0;
};

}  // namespace pocc::server
